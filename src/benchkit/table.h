// table.h — fixed-width text tables for the bench harness output (the
// "rows/series the paper reports").
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace benchkit {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : kEmpty;
        std::fprintf(out, "%c %-*s", c == 0 ? '|' : '|',
                     static_cast<int>(width[c]), v.c_str());
      }
      std::fprintf(out, " |\n");
    };
    line(headers_);
    for (std::size_t c = 0; c < width.size(); ++c) {
      std::fprintf(out, "|%s", std::string(width[c] + 2, '-').c_str());
    }
    std::fprintf(out, "|\n");
    for (const auto& row : rows_) line(row);
  }

 private:
  inline static const std::string kEmpty;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style cell formatting helpers
std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));

// "12.34" style seconds/milliseconds from nanoseconds
std::string sec(std::uint64_t ns, int decimals = 2);
std::string msec(std::uint64_t ns, int decimals = 2);

}  // namespace benchkit
