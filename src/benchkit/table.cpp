#include "benchkit/table.h"

#include <cstdarg>

namespace benchkit {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

std::string sec(std::uint64_t ns, int decimals) {
  return fmt("%.*f", decimals, static_cast<double>(ns) / 1e9);
}

std::string msec(std::uint64_t ns, int decimals) {
  return fmt("%.*f", decimals, static_cast<double>(ns) / 1e6);
}

}  // namespace benchkit
