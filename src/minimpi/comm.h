// comm.h — minimpi: a thread-rank message-passing substrate.
//
// Stands in for Open MPI in the Figure 6 experiment: SPMD ranks with
// barrier / send / recv / allreduce, plus a coordinated-checkpoint protocol
// in the style of Hursey et al. (local snapshots aggregated into one global
// snapshot on NFS).  Ranks are threads in one process sharing the CheCL
// runtime — each rank owns its own context/queue/buffers in the shared
// object database, which is what makes a single coordinated checkpoint cover
// all of them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "core/cpr.h"

namespace minimpi {

class World;

// Per-rank view of the communicator.
class Comm {
 public:
  Comm(World& world, int rank) : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  void barrier();
  void send(int dst, int tag, std::vector<std::uint8_t> data);
  std::vector<std::uint8_t> recv(int src, int tag);  // blocks
  double allreduce_sum(double value);

  // Coordinated checkpoint (Figure 6): every rank synchronizes its queues
  // and reaches a barrier; rank 0 then drives the CheCL engine to write the
  // global snapshot through the NFS storage model, charging the per-node
  // aggregation cost.  Returns the same PhaseTimes on every rank.
  // With runtime.store_checkpoints on, the global snapshot goes through the
  // content-addressed snapstore instead: buffers replicated across ranks
  // (SPMD runs on a shared filesystem) dedup to one set of pool chunks, so
  // file_bytes stays near the 1-rank size while logical_bytes scales with N.
  checl::cpr::PhaseTimes coordinated_checkpoint(const std::string& path);

 private:
  World& world_;
  int rank_;
};

class World {
 public:
  friend class Comm;

  // Runs `fn(comm)` on `nranks` threads; returns when all finish.
  static void run(int nranks, const std::function<void(Comm&)>& fn);

  // Extra virtual time charged per node during global-snapshot aggregation
  // (coordination + local-snapshot metadata on NFS).
  static constexpr std::uint64_t kPerNodeAggregationNs = 5'000'000;

 private:
  explicit World(int nranks) : nranks_(nranks) {}

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> q;
  };

  Mailbox& box(int src, int dst, int tag);

  int nranks_;
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;

  std::mutex box_mu_;
  std::map<std::tuple<int, int, int>, Mailbox> boxes_;

  std::mutex reduce_mu_;
  double reduce_acc_ = 0.0;
  double reduce_result_ = 0.0;
  int reduce_count_ = 0;

  checl::cpr::PhaseTimes ckpt_times_{};
  cl_int ckpt_err_ = CL_SUCCESS;
};

}  // namespace minimpi
