#include "minimpi/comm.h"

#include <algorithm>
#include <thread>

#include "core/runtime.h"

namespace minimpi {

int Comm::size() const noexcept { return world_.nranks_; }

void Comm::barrier() {
  std::unique_lock<std::mutex> lk(world_.barrier_mu_);
  const std::uint64_t gen = world_.barrier_gen_;
  if (++world_.barrier_count_ == world_.nranks_) {
    world_.barrier_count_ = 0;
    ++world_.barrier_gen_;
    world_.barrier_cv_.notify_all();
  } else {
    world_.barrier_cv_.wait(lk, [&] { return world_.barrier_gen_ != gen; });
  }
}

World::Mailbox& World::box(int src, int dst, int tag) {
  std::lock_guard<std::mutex> lk(box_mu_);
  return boxes_[{src, dst, tag}];
}

void Comm::send(int dst, int tag, std::vector<std::uint8_t> data) {
  World::Mailbox& b = world_.box(rank_, dst, tag);
  {
    std::lock_guard<std::mutex> lk(b.mu);
    b.q.push_back(std::move(data));
  }
  b.cv.notify_one();
}

std::vector<std::uint8_t> Comm::recv(int src, int tag) {
  World::Mailbox& b = world_.box(src, rank_, tag);
  std::unique_lock<std::mutex> lk(b.mu);
  b.cv.wait(lk, [&] { return !b.q.empty(); });
  std::vector<std::uint8_t> data = std::move(b.q.front());
  b.q.pop_front();
  return data;
}

double Comm::allreduce_sum(double value) {
  {
    std::lock_guard<std::mutex> lk(world_.reduce_mu_);
    world_.reduce_acc_ += value;
    if (++world_.reduce_count_ == world_.nranks_) {
      world_.reduce_result_ = world_.reduce_acc_;
      world_.reduce_acc_ = 0.0;
      world_.reduce_count_ = 0;
    }
  }
  barrier();
  const double result = world_.reduce_result_;
  barrier();  // nobody starts the next reduction before everyone read this one
  return result;
}

checl::cpr::PhaseTimes Comm::coordinated_checkpoint(const std::string& path) {
  auto& rt = checl::CheclRuntime::instance();
  const bool live = rt.live_checkpoints && rt.store_checkpoints;
  // Live pre-copy: rank 0 streams chunks BEFORE the coordination point,
  // while the other ranks are still computing toward it — so the barrier
  // below fences only the stop-the-world residue phase, not the bulk copy.
  cl_int live_err = CL_SUCCESS;
  if (live && rank_ == 0) live_err = rt.engine().live_begin(path);
  // Phase 1: everyone reaches the coordination point (their queues are
  // synchronized inside the engine; the barrier orders the ranks).
  barrier();
  if (rank_ == 0) {
    world_.ckpt_err_ =
        live ? (live_err == CL_SUCCESS
                    ? rt.engine().live_finish(path, &world_.ckpt_times_)
                    : live_err)
             : rt.engine().checkpoint(path, &world_.ckpt_times_);
    // Aggregating N local snapshots into the global NFS snapshot costs a
    // per-node coordination + metadata overhead on top of the data itself.
    // With a sharded snapstore the ranks stripe across the shard daemons, so
    // the aggregation fans out and the charge divides by the shard count.
    if (proxy::Client* c = rt.client(); c != nullptr) {
      unsigned fanout = 1;
      if (const snapstore::StoreIface* st = rt.engine().store_if_open();
          st != nullptr) {
        fanout = std::max(1u, st->shard_count());
      }
      const std::uint64_t agg =
          static_cast<std::uint64_t>(world_.nranks_) *
          World::kPerNodeAggregationNs / fanout;
      c->sim_advance_host_ns(agg);
      world_.ckpt_times_.write_ns += agg;
    }
  }
  barrier();
  return world_.ckpt_times_;
}

void World::run(int nranks, const std::function<void(Comm&)>& fn) {
  World world(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, r] {
      Comm comm(world, r);
      fn(comm);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace minimpi
