// snapshot.h — the slimcr host checkpointer (BLCR substitute).
//
// BLCR dumps a process's host memory image to a file and restores it.  Our
// substitute serializes *registered regions* — named byte sections — with a
// versioned, CRC-checked container format.  CheCL registers its object
// database and buffer snapshots; applications can register their own state.
// Every write/read returns the simulated I/O duration from a StorageModel so
// the caller can charge the virtual clock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "slimcr/storage.h"

namespace slimcr {

// CRC-32 (IEEE 802.3, reflected) over a byte run.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed = 0) noexcept;

struct Section {
  std::string name;
  std::vector<std::uint8_t> data;
};

struct IoResult {
  bool ok = false;
  std::string error;
  std::uint64_t bytes = 0;        // container size on disk
  std::uint64_t duration_ns = 0;  // simulated I/O time per the storage model
};

class Snapshot {
 public:
  // Adds/overwrites a named section.
  void set(std::string name, std::vector<std::uint8_t> data);
  [[nodiscard]] const std::vector<std::uint8_t>* get(const std::string& name) const;
  [[nodiscard]] std::size_t section_count() const noexcept { return sections_.size(); }
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept;
  void clear() { sections_.clear(); }

  // Serializes all sections to `path` through `storage`'s cost model.
  IoResult save(const std::string& path, const StorageModel& storage) const;
  // Loads a snapshot; on failure the snapshot is left empty.
  IoResult load(const std::string& path, const StorageModel& storage);

 private:
  std::map<std::string, std::vector<std::uint8_t>> sections_;
};

}  // namespace slimcr
