// snapshot.h — the slimcr host checkpointer (BLCR substitute).
//
// BLCR dumps a process's host memory image to a file and restores it.  Our
// substitute serializes *registered regions* — named byte sections — with a
// versioned, CRC-checked container format.  CheCL registers its object
// database and buffer snapshots; applications can register their own state.
// Every write/read returns the simulated I/O duration from a StorageModel so
// the caller can charge the virtual clock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "slimcr/storage.h"

namespace slimcr {

// CRC-32 (IEEE 802.3, reflected) over a byte run.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed = 0) noexcept;

struct Section {
  std::string name;
  std::vector<std::uint8_t> data;
};

// Typed failure classes so callers can branch on *what* went wrong (missing
// file vs. torn write vs. corruption) instead of string-matching `error`.
enum class IoError : std::uint8_t {
  None = 0,
  OpenFailed,   // file absent or unreadable/unwritable
  ShortWrite,   // write-side I/O failure
  BadMagic,     // not a slimcr snapshot
  Truncated,    // file ends before its headers say it should
  CrcMismatch,  // section payload corrupted
  BadFormat,    // implausible structure (e.g. absurd name length)
  MissingBase,  // incremental chain references a base that cannot be loaded
};

[[nodiscard]] const char* io_error_name(IoError e) noexcept;

struct IoResult {
  bool ok = false;
  IoError kind = IoError::None;
  std::string error;
  std::uint64_t bytes = 0;        // container size on disk
  std::uint64_t duration_ns = 0;  // simulated I/O time per the storage model
};

class Snapshot {
 public:
  // Adds/overwrites a named section.
  void set(std::string name, std::vector<std::uint8_t> data);
  [[nodiscard]] const std::vector<std::uint8_t>* get(const std::string& name) const;
  [[nodiscard]] std::size_t section_count() const noexcept { return sections_.size(); }
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept;
  // Ordered view of every section — the snapstore chunker iterates this.
  [[nodiscard]] const std::map<std::string, std::vector<std::uint8_t>>&
  sections() const noexcept {
    return sections_;
  }
  void clear() { sections_.clear(); }

  // Serializes all sections to `path` through `storage`'s cost model.
  IoResult save(const std::string& path, const StorageModel& storage) const;
  // Loads a snapshot; on failure the snapshot is left empty.
  IoResult load(const std::string& path, const StorageModel& storage);

 private:
  std::map<std::string, std::vector<std::uint8_t>> sections_;
};

}  // namespace slimcr
