// storage.h — storage performance models for checkpoint files.
//
// Table I of the paper measured (Bonnie++, sequential block I/O):
//   local disk : 110 MB/s write / 106 MB/s read
//   NFS        : 72.5 MB/s write / 21.2 MB/s read
//   RAM disk   : 2881 MB/s write / 4800 MB/s read
// The write phase dominating checkpoint time (Figure 5, corr 0.99 with file
// size) falls directly out of these numbers.
//
// Like every rate in the simulation, the modeled bandwidths are divided by
// the global bandwidth scale (see simcl::kBandwidthScale): data sizes are scaled down
// by about the same factor, so durations and all time ratios match the
// paper's regime.
#pragma once

#include <cstdint>
#include <string>

namespace slimcr {

// Mirror of simcl::kBandwidthScale (kept dependency-free).
inline constexpr double kRateScale = 32.0;

struct StorageModel {
  std::string name = "local-disk";
  double write_bytes_per_sec = 110.0e6 / kRateScale;
  double read_bytes_per_sec = 106.0e6 / kRateScale;
  std::uint64_t open_latency_ns = 2'000'000;  // open/close + metadata

  [[nodiscard]] std::uint64_t write_ns(std::uint64_t bytes) const noexcept {
    return open_latency_ns +
           static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                      write_bytes_per_sec * 1e9);
  }
  [[nodiscard]] std::uint64_t read_ns(std::uint64_t bytes) const noexcept {
    return open_latency_ns +
           static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                      read_bytes_per_sec * 1e9);
  }
};

inline StorageModel local_disk() {
  return {"local-disk", 110.0e6 / kRateScale, 106.0e6 / kRateScale, 2'000'000};
}
inline StorageModel nfs() {
  return {"nfs", 72.5e6 / kRateScale, 21.2e6 / kRateScale, 8'000'000};
}
inline StorageModel ram_disk() {
  return {"ram-disk", 2881.0e6 / kRateScale, 4800.0e6 / kRateScale, 50'000};
}

}  // namespace slimcr
