#include "slimcr/snapshot.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>

namespace slimcr {

namespace {

constexpr char kMagic[8] = {'S', 'L', 'I', 'M', 'C', 'R', '0', '1'};

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return kTable;
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool write_u64(std::FILE* f, std::uint64_t v) {
  return std::fwrite(&v, sizeof v, 1, f) == 1;
}
bool read_u64(std::FILE* f, std::uint64_t& v) {
  return std::fread(&v, sizeof v, 1, f) == 1;
}

}  // namespace

const char* io_error_name(IoError e) noexcept {
  switch (e) {
    case IoError::None: return "none";
    case IoError::OpenFailed: return "open-failed";
    case IoError::ShortWrite: return "short-write";
    case IoError::BadMagic: return "bad-magic";
    case IoError::Truncated: return "truncated";
    case IoError::CrcMismatch: return "crc-mismatch";
    case IoError::BadFormat: return "bad-format";
    case IoError::MissingBase: return "missing-base";
  }
  return "unknown";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n, std::uint32_t seed) noexcept {
  const auto& t = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void Snapshot::set(std::string name, std::vector<std::uint8_t> data) {
  sections_[std::move(name)] = std::move(data);
}

const std::vector<std::uint8_t>* Snapshot::get(const std::string& name) const {
  const auto it = sections_.find(name);
  return it != sections_.end() ? &it->second : nullptr;
}

std::uint64_t Snapshot::payload_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, data] : sections_) total += name.size() + data.size();
  return total;
}

IoResult Snapshot::save(const std::string& path, const StorageModel& storage) const {
  IoResult res;
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    res.kind = IoError::OpenFailed;
    res.error = "cannot open " + path + " for writing";
    return res;
  }
  std::uint64_t total = sizeof kMagic;
  if (std::fwrite(kMagic, sizeof kMagic, 1, f.get()) != 1 ||
      !write_u64(f.get(), sections_.size())) {
    res.kind = IoError::ShortWrite;
    res.error = "short write to " + path;
    return res;
  }
  total += 8;
  for (const auto& [name, data] : sections_) {
    const std::uint32_t crc = crc32(data.data(), data.size());
    if (!write_u64(f.get(), name.size()) ||
        (name.size() != 0 &&
         std::fwrite(name.data(), name.size(), 1, f.get()) != 1) ||
        !write_u64(f.get(), data.size()) ||
        (!data.empty() &&
         std::fwrite(data.data(), data.size(), 1, f.get()) != 1) ||
        std::fwrite(&crc, sizeof crc, 1, f.get()) != 1) {
      res.kind = IoError::ShortWrite;
      res.error = "short write to " + path;
      return res;
    }
    total += 8 + name.size() + 8 + data.size() + 4;
  }
  res.ok = true;
  res.bytes = total;
  res.duration_ns = storage.write_ns(total);
  return res;
}

IoResult Snapshot::load(const std::string& path, const StorageModel& storage) {
  IoResult res;
  sections_.clear();
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    res.kind = IoError::OpenFailed;
    res.error = "cannot open " + path + " for reading";
    return res;
  }
  char magic[sizeof kMagic];
  if (std::fread(magic, sizeof magic, 1, f.get()) != 1 ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    res.kind = IoError::BadMagic;
    res.error = path + " is not a slimcr snapshot (bad magic)";
    return res;
  }
  std::uint64_t count = 0;
  if (!read_u64(f.get(), count)) {
    res.kind = IoError::Truncated;
    res.error = "truncated snapshot header";
    return res;
  }
  std::uint64_t total = sizeof kMagic + 8;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t name_len = 0;
    if (!read_u64(f.get(), name_len) || name_len > (1u << 20)) {
      res.kind = IoError::BadFormat;
      res.error = "corrupt section name length";
      sections_.clear();
      return res;
    }
    std::string name(name_len, '\0');
    if (name_len != 0 && std::fread(name.data(), name_len, 1, f.get()) != 1) {
      res.kind = IoError::Truncated;
      res.error = "truncated section name";
      sections_.clear();
      return res;
    }
    std::uint64_t data_len = 0;
    if (!read_u64(f.get(), data_len)) {
      res.kind = IoError::Truncated;
      res.error = "truncated section length";
      sections_.clear();
      return res;
    }
    std::vector<std::uint8_t> data(data_len);
    if (data_len != 0 && std::fread(data.data(), data_len, 1, f.get()) != 1) {
      res.kind = IoError::Truncated;
      res.error = "truncated section data";
      sections_.clear();
      return res;
    }
    std::uint32_t crc = 0;
    if (std::fread(&crc, sizeof crc, 1, f.get()) != 1 ||
        crc != crc32(data.data(), data.size())) {
      res.kind = IoError::CrcMismatch;
      res.error = "CRC mismatch in section '" + name + "'";
      sections_.clear();
      return res;
    }
    total += 8 + name_len + 8 + data_len + 4;
    sections_[std::move(name)] = std::move(data);
  }
  res.ok = true;
  res.bytes = total;
  res.duration_ns = storage.read_ns(total);
  return res;
}

}  // namespace slimcr
