#include "slimcr/snapshot.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>

#include "chaoskit/chaoskit.h"

namespace slimcr {

namespace {

constexpr char kMagic[8] = {'S', 'L', 'I', 'M', 'C', 'R', '0', '1'};

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return kTable;
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool write_u64(std::FILE* f, std::uint64_t v) {
  return std::fwrite(&v, sizeof v, 1, f) == 1;
}
bool read_u64(std::FILE* f, std::uint64_t& v) {
  return std::fread(&v, sizeof v, 1, f) == 1;
}

// Damage an already-written snapshot in place: truncate it to `truncate_to`
// bytes (when non-zero) or XOR one byte at `flip_at` (when >= 0).  Used only
// by fault injection, so best-effort — if the reopen fails the file simply
// stays intact.
void corrupt_saved_file(const std::string& path, std::uint64_t truncate_to,
                        std::int64_t flip_at) {
  if (truncate_to != 0) {
    FilePtr in(std::fopen(path.c_str(), "rb"));
    if (in == nullptr) return;
    std::vector<unsigned char> head(truncate_to);
    const std::size_t got = std::fread(head.data(), 1, head.size(), in.get());
    in.reset();
    FilePtr out(std::fopen(path.c_str(), "wb"));
    if (out == nullptr) return;
    if (got != 0) std::fwrite(head.data(), 1, got, out.get());
    return;
  }
  if (flip_at >= 0) {
    FilePtr f(std::fopen(path.c_str(), "rb+"));
    if (f == nullptr) return;
    if (std::fseek(f.get(), static_cast<long>(flip_at), SEEK_SET) != 0) return;
    const int c = std::fgetc(f.get());
    if (c == EOF) return;
    if (std::fseek(f.get(), static_cast<long>(flip_at), SEEK_SET) != 0) return;
    std::fputc(c ^ 0x20, f.get());
  }
}

}  // namespace

const char* io_error_name(IoError e) noexcept {
  switch (e) {
    case IoError::None: return "none";
    case IoError::OpenFailed: return "open-failed";
    case IoError::ShortWrite: return "short-write";
    case IoError::BadMagic: return "bad-magic";
    case IoError::Truncated: return "truncated";
    case IoError::CrcMismatch: return "crc-mismatch";
    case IoError::BadFormat: return "bad-format";
    case IoError::MissingBase: return "missing-base";
  }
  return "unknown";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n, std::uint32_t seed) noexcept {
  const auto& t = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void Snapshot::set(std::string name, std::vector<std::uint8_t> data) {
  sections_[std::move(name)] = std::move(data);
}

const std::vector<std::uint8_t>* Snapshot::get(const std::string& name) const {
  const auto it = sections_.find(name);
  return it != sections_.end() ? &it->second : nullptr;
}

std::uint64_t Snapshot::payload_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, data] : sections_) total += name.size() + data.size();
  return total;
}

IoResult Snapshot::save(const std::string& path, const StorageModel& storage) const {
  IoResult res;
  auto& chaos = chaoskit::Engine::instance();
  if (chaos.should_fire(chaoskit::Site::SlimcrEnospc)) {
    res.kind = IoError::ShortWrite;
    res.error = "short write to " + path + " (no space left on device)";
    return res;
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    res.kind = IoError::OpenFailed;
    res.error = "cannot open " + path + " for writing";
    return res;
  }
  std::uint64_t total = sizeof kMagic;
  if (std::fwrite(kMagic, sizeof kMagic, 1, f.get()) != 1 ||
      !write_u64(f.get(), sections_.size())) {
    res.kind = IoError::ShortWrite;
    res.error = "short write to " + path;
    return res;
  }
  total += 8;
  for (const auto& [name, data] : sections_) {
    const std::uint32_t crc = crc32(data.data(), data.size());
    if (!write_u64(f.get(), name.size()) ||
        (name.size() != 0 &&
         std::fwrite(name.data(), name.size(), 1, f.get()) != 1) ||
        !write_u64(f.get(), data.size()) ||
        (!data.empty() &&
         std::fwrite(data.data(), data.size(), 1, f.get()) != 1) ||
        std::fwrite(&crc, sizeof crc, 1, f.get()) != 1) {
      res.kind = IoError::ShortWrite;
      res.error = "short write to " + path;
      return res;
    }
    total += 8 + name.size() + 8 + data.size() + 4;
  }
  // Faults that corrupt the container *after* a save the caller believes
  // succeeded: a torn write (crash before the tail reached the disk) and a
  // flipped byte.  load() must come back with a typed error, never a partial
  // snapshot.
  if (chaos.should_fire(chaoskit::Site::SlimcrTornWrite)) {
    std::fflush(f.get());
    f.reset();
    corrupt_saved_file(path, /*truncate_to=*/total / 2, /*flip_at=*/-1);
  } else if (chaos.should_fire(chaoskit::Site::SlimcrBitFlip)) {
    std::fflush(f.get());
    f.reset();
    // arg counts back from the end of the container, so it lands in the last
    // section's CRC-covered payload rather than a header byte.
    corrupt_saved_file(path, /*truncate_to=*/0,
                       /*flip_at=*/static_cast<std::int64_t>(
                           total - 1 - static_cast<std::uint64_t>(chaos.arg()) % total));
  }
  res.ok = true;
  res.bytes = total;
  res.duration_ns = storage.write_ns(total);
  return res;
}

IoResult Snapshot::load(const std::string& path, const StorageModel& storage) {
  IoResult res;
  sections_.clear();
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    res.kind = IoError::OpenFailed;
    res.error = "cannot open " + path + " for reading";
    return res;
  }
  char magic[sizeof kMagic];
  if (std::fread(magic, sizeof magic, 1, f.get()) != 1 ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    res.kind = IoError::BadMagic;
    res.error = path + " is not a slimcr snapshot (bad magic)";
    return res;
  }
  std::uint64_t count = 0;
  if (!read_u64(f.get(), count)) {
    res.kind = IoError::Truncated;
    res.error = "truncated snapshot header";
    return res;
  }
  std::uint64_t total = sizeof kMagic + 8;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t name_len = 0;
    if (!read_u64(f.get(), name_len) || name_len > (1u << 20)) {
      res.kind = IoError::BadFormat;
      res.error = "corrupt section name length";
      sections_.clear();
      return res;
    }
    std::string name(name_len, '\0');
    if (name_len != 0 && std::fread(name.data(), name_len, 1, f.get()) != 1) {
      res.kind = IoError::Truncated;
      res.error = "truncated section name";
      sections_.clear();
      return res;
    }
    std::uint64_t data_len = 0;
    if (!read_u64(f.get(), data_len)) {
      res.kind = IoError::Truncated;
      res.error = "truncated section length";
      sections_.clear();
      return res;
    }
    std::vector<std::uint8_t> data(data_len);
    if (data_len != 0 && std::fread(data.data(), data_len, 1, f.get()) != 1) {
      res.kind = IoError::Truncated;
      res.error = "truncated section data";
      sections_.clear();
      return res;
    }
    std::uint32_t crc = 0;
    if (std::fread(&crc, sizeof crc, 1, f.get()) != 1 ||
        crc != crc32(data.data(), data.size())) {
      res.kind = IoError::CrcMismatch;
      res.error = "CRC mismatch in section '" + name + "'";
      sections_.clear();
      return res;
    }
    total += 8 + name_len + 8 + data_len + 4;
    sections_[std::move(name)] = std::move(data);
  }
  res.ok = true;
  res.bytes = total;
  res.duration_ns = storage.read_ns(total);
  return res;
}

}  // namespace slimcr
