// retry.h — the shared retry/backoff policy for the self-healing runtime.
//
// One policy object describes how persistently an operation may be retried:
// capped exponential backoff with deterministic jitter, bounded both by an
// attempt count and by a wall-clock deadline budget.  The same policy type is
// threaded through channel connect (spawn.cpp), proxy respawn (supervisor),
// and checkpoint I/O (cpr.cpp: snapstore puts/gets and slimcr saves/loads,
// where transient ENOSPC/EIO becomes retry-then-degrade).
//
// The default policy performs exactly ONE attempt — retries are opt-in.
// That keeps fault-injection semantics crisp: with supervision off, a
// chaoskit fault fails the operation exactly as it did before this layer
// existed; enabling supervision (or an explicit io_retry policy) is what
// turns transient faults into latency.
//
// Jitter is deterministic (a SplitMix64 hash of the seed and attempt index),
// never wall-clock or global-PRNG derived, so crash schedules that include
// retries replay bit-identically.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace checl {

struct Retry {
  unsigned max_attempts = 1;                   // 1 = no retry (the default)
  std::uint64_t base_delay_ns = 2'000'000;     // first backoff step: 2 ms
  std::uint64_t max_delay_ns = 200'000'000;    // cap per step: 200 ms
  std::uint64_t budget_ns = 2'000'000'000;     // total deadline across retries
  double jitter = 0.25;                        // +/- fraction of each step
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  // jitter stream selector

  // Backoff before attempt `attempt` (1-based; attempt 0 never sleeps).
  [[nodiscard]] std::uint64_t delay_ns(unsigned attempt) const noexcept {
    if (attempt == 0) return 0;
    std::uint64_t d = base_delay_ns;
    for (unsigned i = 1; i < attempt && d < max_delay_ns; ++i) d *= 2;
    if (d > max_delay_ns) d = max_delay_ns;
    if (jitter > 0.0) {
      // SplitMix64 over (seed, attempt): deterministic per policy instance.
      std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (attempt + 1);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      z ^= z >> 31;
      const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
      const double f = 1.0 + jitter * (2.0 * u - 1.0);
      d = static_cast<std::uint64_t>(static_cast<double>(d) * f);
    }
    return d;
  }

  // Runs fn() until it returns true, attempts and budget permitting.
  // Returns the final fn() verdict.  fn is invoked at least once.
  template <class Fn>
  bool run(Fn&& fn) const {
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned attempt = 0;; ++attempt) {
      if (fn()) return true;
      if (attempt + 1 >= max_attempts) return false;
      const std::uint64_t d = delay_ns(attempt + 1);
      const auto spent = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
      if (static_cast<std::uint64_t>(spent) + d > budget_ns) return false;
      std::this_thread::sleep_for(std::chrono::nanoseconds(d));
    }
  }
};

}  // namespace checl
