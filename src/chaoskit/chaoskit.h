// chaoskit.h — deterministic, seed-driven fault injection for the CPR stack.
//
// The paper's value claim is that a checkpoint survives proxy loss and
// storage failure at arbitrary points; the happy-path tests cannot say
// anything about that.  chaoskit threads *named injection sites* through the
// layers that can actually fail in production — the IPC channel, the API
// proxy's serve loop, the flat-snapshot and chunk-store writers, and the
// restore executor — and lets a torture harness arm exactly one fault per
// run, selected by a PRNG schedule, so every crash scenario is reproducible
// from a single integer seed.
//
// Design constraints:
//   * Zero hot-path cost when disarmed.  Every hook is
//     `if (Engine::instance().should_fire(Site::X))`, which compiles to one
//     relaxed atomic load and a never-taken branch — ipc_micro must not move.
//   * Deterministic.  A fault is (site, nth, arg, actor): it fires on the
//     nth matching consultation of that site, once, on threads acting for
//     the chosen side (app or proxy).  Counting only the armed site on the
//     armed actor keeps the hit sequence a function of the workload alone,
//     even with the proxy serving on another thread.
//   * Cross-process.  Under Transport::Process the proxy-side sites live in
//     the fork/exec'd checl_proxyd; arming serializes into the CHECL_CHAOS
//     environment variable, which the daemon parses on startup.
//
// This library depends on nothing but the C++ standard library so that the
// lowest layers (ipc, slimcr) can link it without cycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace chaoskit {

// One enumerator per place a fault can be injected.  Names are stable: they
// appear in CHECL_CHAOS, in last_error() annotations, and in the chaos_sweep
// coverage table.
enum class Site : std::uint8_t {
  None = 0,
  // ipc/channel: the transport between application and API proxy.
  IpcShortWrite,    // part of a frame leaves the wire, then the peer is gone
  IpcSendEpipe,     // send fails outright (EPIPE from a dead peer)
  IpcRecvTimeout,   // recv gives up as if the peer went silent
  // proxy/server: the serve loop of the API proxy.
  ProxyDieBeforeReply,  // proxy exits after executing a request, before replying
  ProxyDieAfterReply,   // proxy exits right after replying
  ProxyInjectClError,   // a request is answered with an injected CL error (arg)
  // snapstore: the chunk pool and manifest writers.
  StoreTornWrite,   // a pool/manifest file persists only a prefix but "succeeds"
  StoreEnospc,      // the write fails (no space left on device)
  StoreBitFlip,     // one byte of the file is flipped before it hits the disk
  // slimcr: the flat snapshot container.
  SlimcrTornWrite,  // the snapshot file is truncated after a "successful" save
  SlimcrEnospc,     // the save fails mid-write
  SlimcrBitFlip,    // one byte of the container is flipped after the save
  // core/replay: the transactional restore executor.
  ExecCrashBetweenWaves,  // the proxy is lost at a wave boundary
  ExecWaveFail,           // the next recreated node fails with CL error (arg)
  // simcl/progcache: the on-disk compile cache.
  CompileCachePoison,  // a cached bytecode blob is corrupted on read: byte at
                       // index `arg` is flipped (arg < 0 truncates) — the
                       // cache must detect it and fall back to recompiling
  // proxyd: the multi-tenant daemon event loop.
  ProxydClientDeath,   // the daemon drops the session whose frame it is about
                       // to process, as if the client died mid-transfer; the
                       // other clients' namespaces must be untouched
  ProxydNamespaceLeak, // session teardown "forgets" to release the client's
                       // owned handles — the leak detector must count them
  // core/cpr + proxy: the live (pre-copy) checkpoint engine.
  PrecopyRoundCrash,   // the streaming session dies at a pre-copy round
                       // boundary — the open manifest must abort with zero
                       // orphan chunks and the previous checkpoint intact
  DirtyMapDesync,      // the proxy's MemDirtyFetch reply under-reports: the
                       // set bit at index `arg` (mod popcount) is cleared —
                       // live_verify must catch and heal the stale chunk
  // snapd: the distributed (sharded, replicated) snapstore.
  SnapdShardDeath,     // a shard daemon _exit()s mid-manifest-write (tmp file
                       // written, rename never happens) — the sealed manifest
                       // must land complete on the surviving replicas or the
                       // seal must fail cleanly; never a torn manifest
  SnapdReplicaCorrupt, // the client flips byte `arg` (mod size) of the chunk
                       // payload sent to exactly one replica — restore must
                       // detect the CRC mismatch and fail over to the next
};
inline constexpr std::size_t kSiteCount = 22;

[[nodiscard]] const char* site_name(Site s) noexcept;
[[nodiscard]] Site site_from_name(std::string_view name) noexcept;  // None if unknown

// Which side of the proxy boundary a thread is acting for.  serve() tags its
// thread Proxy; everything else defaults to App.  An armed fault may filter
// on this so concurrent app/proxy consultations cannot race the hit counter.
enum class Actor : std::uint8_t { Any = 0, App, Proxy };

void set_thread_actor(Actor a) noexcept;
[[nodiscard]] Actor thread_actor() noexcept;

// RAII tag for serve(): marks the current thread as the proxy side.
struct ScopedThreadActor {
  explicit ScopedThreadActor(Actor a) noexcept : prev(thread_actor()) {
    set_thread_actor(a);
  }
  ~ScopedThreadActor() { set_thread_actor(prev); }
  Actor prev;
};

// A single-shot fault: where, on which hit, with what argument.
struct Fault {
  Site site = Site::None;
  std::uint32_t nth = 0;   // fires on the nth matching consultation (0 = first)
  std::int64_t arg = 0;    // site-specific (CL error code, byte index, ...)
  Actor actor = Actor::Any;
};

class Engine {
 public:
  // Defined inline below the class: the consultation hooks sit on RPC hot
  // paths (one per dispatched op in the proxy's serve loop), so instance()
  // must compile down to the address of a global — no call, no magic-static
  // guard.
  static Engine& instance() noexcept;

  // The hook every instrumented layer calls.  Disarmed (the production
  // state): one relaxed load, false.  Armed: the slow path takes a mutex,
  // counts the consultation and decides.
  [[nodiscard]] bool should_fire(Site s) noexcept {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return fire_slow(s);
  }

  void arm(const Fault& f) noexcept;
  void disarm() noexcept;

  // The armed fault's argument (e.g. the CL error to inject) — sites read it
  // right after should_fire() returned true.
  [[nodiscard]] std::int64_t arg() noexcept;

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool fired() noexcept;
  [[nodiscard]] Fault current() noexcept;
  [[nodiscard]] std::uint32_t hits() noexcept;  // consultations of the armed site

  // Cumulative fires per site over the process lifetime (chaos_sweep's
  // coverage table).
  [[nodiscard]] std::uint64_t fires_total(Site s) noexcept;

  // Appends " [chaos: <site>]" when an armed fault has fired, so
  // Engine::last_error() names the culprit site.  No-op when disarmed.
  void annotate(std::string& message) noexcept;

  // Environment serialization: "<site-name>:<nth>:<arg>[:app|:proxy]".
  // arm_from_env() parses CHECL_CHAOS (used by the exec'd proxy daemon);
  // to_env() builds the value the spawner should export.
  [[nodiscard]] static std::string to_env(const Fault& f);
  void arm_from_env() noexcept;

 private:
  constexpr Engine() noexcept = default;
  bool fire_slow(Site s) noexcept;

  std::atomic<bool> armed_{false};
  std::mutex mu_;
  Fault fault_;
  std::uint32_t hit_count_ = 0;
  bool fired_ = false;
  std::uint64_t fires_total_[kSiteCount] = {};

  static Engine g_instance;
};

// constinit: zero-initialized before any dynamic initializer can consult it.
// The exec'd proxy daemon (which can't be armed in-process) must call
// arm_from_env() itself at startup; see proxyd_main.cpp.
inline constinit Engine Engine::g_instance;

inline Engine& Engine::instance() noexcept { return g_instance; }

// SplitMix64: the one PRNG both the chaos schedules and the seeded property
// tests derive from, so "same seed => same schedule" holds across harnesses.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) noexcept { return n != 0 ? next() % n : 0; }

 private:
  std::uint64_t state_;
};

}  // namespace chaoskit
