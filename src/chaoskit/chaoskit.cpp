#include "chaoskit/chaoskit.h"

#include <cstdlib>
#include <cstring>

namespace chaoskit {

namespace {

// Indexed by Site; keep in sync with the enum.
constexpr const char* kSiteNames[kSiteCount] = {
    "none",
    "ipc-short-write",
    "ipc-send-epipe",
    "ipc-recv-timeout",
    "proxy-die-before-reply",
    "proxy-die-after-reply",
    "proxy-inject-cl-error",
    "store-torn-write",
    "store-enospc",
    "store-bit-flip",
    "slimcr-torn-write",
    "slimcr-enospc",
    "slimcr-bit-flip",
    "exec-crash-between-waves",
    "exec-wave-fail",
    "compile_cache_poison",
    "proxyd_client_death",
    "proxyd_namespace_leak",
    "precopy_round_crash",
    "dirty_map_desync",
    "snapd_shard_death",
    "snapd_replica_corrupt",
};

thread_local Actor t_actor = Actor::App;

}  // namespace

const char* site_name(Site s) noexcept {
  const auto i = static_cast<std::size_t>(s);
  return i < kSiteCount ? kSiteNames[i] : "invalid";
}

Site site_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) return static_cast<Site>(i);
  }
  return Site::None;
}

void set_thread_actor(Actor a) noexcept { t_actor = a; }
Actor thread_actor() noexcept { return t_actor; }

void Engine::arm(const Fault& f) noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  fault_ = f;
  hit_count_ = 0;
  fired_ = false;
  armed_.store(f.site != Site::None, std::memory_order_relaxed);
}

void Engine::disarm() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  fault_ = Fault{};
  hit_count_ = 0;
  fired_ = false;
  armed_.store(false, std::memory_order_relaxed);
}

bool Engine::fire_slow(Site s) noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  if (s != fault_.site || fired_) return false;
  if (fault_.actor != Actor::Any && t_actor != fault_.actor) return false;
  if (hit_count_++ < fault_.nth) return false;
  fired_ = true;
  fires_total_[static_cast<std::size_t>(s)]++;
  return true;
}

std::int64_t Engine::arg() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return fault_.arg;
}

bool Engine::fired() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return fired_;
}

Fault Engine::current() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return fault_;
}

std::uint32_t Engine::hits() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return hit_count_;
}

std::uint64_t Engine::fires_total(Site s) noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  const auto i = static_cast<std::size_t>(s);
  return i < kSiteCount ? fires_total_[i] : 0;
}

void Engine::annotate(std::string& message) noexcept {
  if (!armed_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (!fired_) return;
  message += " [chaos: ";
  message += site_name(fault_.site);
  message += "]";
}

std::string Engine::to_env(const Fault& f) {
  std::string s = site_name(f.site);
  s += ":" + std::to_string(f.nth) + ":" + std::to_string(f.arg);
  if (f.actor == Actor::App) s += ":app";
  if (f.actor == Actor::Proxy) s += ":proxy";
  return s;
}

void Engine::arm_from_env() noexcept {
  const char* v = std::getenv("CHECL_CHAOS");
  if (v == nullptr || *v == '\0') return;
  std::string_view sv(v);
  const auto field = [&sv]() -> std::string_view {
    const std::size_t colon = sv.find(':');
    std::string_view f = sv.substr(0, colon);
    sv = colon == std::string_view::npos ? std::string_view{} : sv.substr(colon + 1);
    return f;
  };
  Fault f;
  f.site = site_from_name(field());
  if (f.site == Site::None) return;
  const auto to_i64 = [](std::string_view s) -> std::int64_t {
    return s.empty() ? 0 : std::strtoll(std::string(s).c_str(), nullptr, 10);
  };
  f.nth = static_cast<std::uint32_t>(to_i64(field()));
  f.arg = to_i64(field());
  const std::string_view actor = field();
  if (actor == "app") f.actor = Actor::App;
  if (actor == "proxy") f.actor = Actor::Proxy;
  arm(f);
}

// Arm from the environment at load time, so every process linking chaoskit —
// the application as well as the exec'd daemon — honors CHECL_CHAOS with no
// code changes.  Safe ordering: g_instance is constinit, so it exists before
// any dynamic initializer runs.  (checl_proxyd additionally calls
// arm_from_env() explicitly; harmless, nothing has consulted a site yet.)
static const bool g_env_armed [[maybe_unused]] =
    (Engine::instance().arm_from_env(), true);

}  // namespace chaoskit
