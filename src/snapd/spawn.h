// spawn.h — bringing a fleet of checl_snapd shard daemons to life.
//
// Each shard is a genuinely separate process (fork + exec of the checl_snapd
// helper), so killing one mid-write loses real state — exactly the failure
// the replication layer exists to survive.  The child binds an ephemeral port
// (--port 0) and announces the kernel's choice back over a pipe, so spawning
// N shards needs no port coordination and never races another test suite.
//
// `chaos_env` arms CHECL_CHAOS in the CHILD only: the daemon under test dies
// on schedule while the spawning client (and every other shard) stays clean.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>

namespace snapd {

struct SpawnedShard {
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::string root;
  std::string error;
  [[nodiscard]] bool ok() const noexcept { return pid > 0 && port != 0; }
};

// Spawns one daemon rooted at `root` (created if needed) on `port`
// (0 = ephemeral).  Blocks until the child announces its bound port or dies.
SpawnedShard spawn_snapd(const std::string& root, std::uint16_t port = 0,
                         const std::string& chaos_env = "");

// SIGKILL + waitpid; safe on an already-dead child.  Use ShardClient::
// shutdown() first for a polite stop.
void kill_snapd(SpawnedShard& s);

// Reaps the child if it already exited on its own (e.g. a chaos _exit or a
// Shutdown frame); non-blocking.  True once the pid has been collected.
bool reap_snapd(SpawnedShard& s);

// Path of the checl_snapd helper ($CHECL_SNAPD, else next to this binary).
std::string find_snapd();

}  // namespace snapd
