// proto.h — the checl_snapd wire protocol (version 1).
//
// One frame per request and per reply, symmetric both ways:
//
//   magic u32 'SPD1' | version u16 | op u16 | status u16 | reserved u16 |
//   body_len u32 | body[body_len] | fnv u64
//
// The trailing FNV-1a 64 covers header + body, so a frame torn or bit-flipped
// anywhere on the wire is rejected by the receiver before its body is
// interpreted — the shard client treats that exactly like a dead peer and
// fails over to the next replica.  `status` is meaningful in replies only
// (requests carry Ok).
//
// Bodies are little-endian, same byte helpers as the snapstore container
// formats (format.h).  A chunk travels as the complete chunk FILE
// ("SNAPCHK1" header + compressed payload + its own CRC): the daemon stores
// opaque bytes and never needs the codec, and any reader can verify a replica
// end-to-end with the snapstore decoder alone.
//
// Frames are pinned by the golden corpus in tests/data/snapd_v1_frames.bin —
// a byte changed here is a protocol revision, not a refactor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapstore/chunk.h"

namespace snapd {

inline constexpr std::uint32_t kMagic = 0x31445053u;  // 'S','P','D','1' LE
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 2 + 2 + 4;  // 16
inline constexpr std::size_t kTrailerBytes = 8;                     // fnv u64
// A declared body above this kills the connection instead of allocating.
inline constexpr std::uint32_t kMaxBody = 1u << 30;  // 1 GiB

enum class Op : std::uint16_t {
  Ping = 1,
  PutChunk,       // key(20) + chunk-file bytes        -> Ok | Io
  GetChunk,       // key(20)                           -> Ok + chunk-file | Missing
  HasChunk,       // key(20)                           -> Ok | Missing
  DelChunk,       // key(20)                           -> Ok | Missing
  PutManifest,    // seal_seq u64 + name_len u16 + name + payload -> Ok | Io
  GetManifest,    // name_len u16 + name               -> Ok + seal_seq u64 + payload | Missing
  DelManifest,    // name_len u16 + name               -> Ok | Missing
  ListManifests,  // (empty) -> u32 n + n * (name_len u16 + name + seal_seq u64)
  ListChunks,     // (empty) -> u32 n + n * (key(20) + file_len u64)
  Stat,           // (empty) -> StatReply (7 * u64)
  Shutdown,       // (empty) -> Ok, then the daemon exits its loop
};

enum class Wire : std::uint16_t {
  Ok = 0,
  Missing,      // named chunk / manifest not on this shard
  Io,           // shard-side filesystem failure
  BadRequest,   // malformed body
  Corrupt,      // frame checksum mismatch (reported by either side)
  Unsupported,  // unknown op or version
};

[[nodiscard]] const char* wire_name(Wire w) noexcept;

// key on the wire: hash u64 + len u64 + uniq u32
inline constexpr std::size_t kKeyBytes = 8 + 8 + 4;

struct StatReply {
  std::uint64_t chunks = 0;
  std::uint64_t chunk_bytes = 0;   // chunk files as stored on the shard
  std::uint64_t manifests = 0;
  std::uint64_t puts = 0;          // PutChunk + PutManifest served
  std::uint64_t gets = 0;          // GetChunk + GetManifest served
  std::uint64_t bytes_in = 0;      // request body bytes received
  std::uint64_t bytes_out = 0;     // reply body bytes sent
};
inline constexpr std::size_t kStatReplyBytes = 7 * 8;

struct Frame {
  Op op = Op::Ping;
  Wire status = Wire::Ok;
  std::vector<std::uint8_t> body;
};

// ---- encoding ---------------------------------------------------------------

// Serializes a complete frame (header + body + FNV trailer).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    Op op, Wire status, const std::uint8_t* body, std::size_t body_len);

// Validates header magic/version and the FNV trailer of a complete frame
// buffer.  Returns false on any mismatch (f is unspecified then).
[[nodiscard]] bool decode_frame(const std::uint8_t* p, std::size_t n, Frame& f);

void put_key(std::vector<std::uint8_t>& b, const snapstore::ChunkKey& k);
[[nodiscard]] bool get_key(const std::uint8_t* p, std::size_t n,
                           snapstore::ChunkKey& k);

// ---- blocking fd transport --------------------------------------------------

// Full-buffer write/read loops (EINTR-safe).  Used by the client; the daemon
// reads through its epoll buffer but replies with send_frame.
[[nodiscard]] bool write_all(int fd, const std::uint8_t* p, std::size_t n);
[[nodiscard]] bool read_all(int fd, std::uint8_t* p, std::size_t n);

[[nodiscard]] bool send_frame(int fd, Op op, Wire status,
                              const std::uint8_t* body, std::size_t body_len);
// Reads one frame; false on EOF, a torn read, or a checksum/header mismatch.
[[nodiscard]] bool recv_frame(int fd, Frame& f);

}  // namespace snapd
