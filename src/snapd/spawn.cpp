#include "snapd/spawn.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

namespace snapd {

namespace fs = std::filesystem;

std::string find_snapd() {
  if (const char* env = std::getenv("CHECL_SNAPD");
      env != nullptr && *env != '\0' && fs::exists(env))
    return env;
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const fs::path dir = self.parent_path();
    for (const char* rel :
         {"checl_snapd", "../src/snapd/checl_snapd", "../snapd/checl_snapd",
          "../../src/snapd/checl_snapd"}) {
      const fs::path cand = dir / rel;
      if (fs::exists(cand)) return fs::canonical(cand).string();
    }
  }
  return "checl_snapd";  // hope PATH has it
}

SpawnedShard spawn_snapd(const std::string& root, std::uint16_t port,
                         const std::string& chaos_env) {
  SpawnedShard s;
  s.root = root;
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    s.error = "cannot create shard root " + root + ": " + ec.message();
    return s;
  }
  // Announce pipe: deliberately NOT cloexec — the child inherits the write
  // end across exec and prints its bound port there.  If exec fails the
  // child _exit()s, the write end closes, and the parent's read sees EOF.
  int afds[2] = {-1, -1};
  if (::pipe(afds) != 0) {
    s.error = "pipe failed";
    return s;
  }
  const std::string exe = find_snapd();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(afds[0]);
    ::close(afds[1]);
    s.error = "fork failed";
    return s;
  }
  if (pid == 0) {
    ::close(afds[0]);
    // Chaos arms in the daemon only: the schedule the caller wrote for this
    // shard must not leak into sibling shards or back into the client.
    if (!chaos_env.empty())
      ::setenv("CHECL_CHAOS", chaos_env.c_str(), 1);
    else
      ::unsetenv("CHECL_CHAOS");
    char port_s[16], afd_s[16];
    std::snprintf(port_s, sizeof port_s, "%u", static_cast<unsigned>(port));
    std::snprintf(afd_s, sizeof afd_s, "%d", afds[1]);
    ::execl(exe.c_str(), exe.c_str(), "--root", root.c_str(), "--port", port_s,
            "--announce-fd", afd_s, static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(afds[1]);
  // Read the announced port ("<port>\n").
  char buf[16] = {0};
  std::size_t got = 0;
  while (got < sizeof buf - 1) {
    const ssize_t r = ::read(afds[0], buf + got, 1);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    if (buf[got] == '\n') break;
    got += static_cast<std::size_t>(r);
  }
  ::close(afds[0]);
  const unsigned long announced = std::strtoul(buf, nullptr, 10);
  if (announced == 0 || announced > 65535) {
    s.error = "checl_snapd (" + exe + ") died before announcing a port";
    int status = 0;
    ::waitpid(pid, &status, 0);
    return s;
  }
  s.pid = pid;
  s.port = static_cast<std::uint16_t>(announced);
  return s;
}

void kill_snapd(SpawnedShard& s) {
  if (s.pid <= 0) return;
  ::kill(s.pid, SIGKILL);
  int status = 0;
  ::waitpid(s.pid, &status, 0);
  s.pid = -1;
}

bool reap_snapd(SpawnedShard& s) {
  if (s.pid <= 0) return true;
  int status = 0;
  const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
  if (r == s.pid || (r < 0 && errno == ECHILD)) {
    s.pid = -1;
    return true;
  }
  return false;
}

}  // namespace snapd
