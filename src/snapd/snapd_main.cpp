// snapd_main.cpp — the checl_snapd shard daemon entry point.
//
//   checl_snapd --root DIR [--port N] [--announce-fd FD]
//
// Binds (port 0 = kernel-assigned), writes "<port>\n" to --announce-fd when
// given (the spawn handshake), then serves until a Shutdown frame or SIGTERM.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaoskit/chaoskit.h"
#include "snapd/server.h"

namespace {

snapd::Server* g_server = nullptr;

void on_term(int) {
  if (g_server != nullptr) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  long port = 0;
  int announce_fd = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--port" && i + 1 < argc) {
      port = std::strtol(argv[++i], nullptr, 10);
    } else if (a == "--announce-fd" && i + 1 < argc) {
      announce_fd = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: checl_snapd --root DIR [--port N] "
                   "[--announce-fd FD]\n");
      return 2;
    }
  }
  if (root.empty() || port < 0 || port > 65535) {
    std::fprintf(stderr, "checl_snapd: --root is required\n");
    return 2;
  }

  // The spawner exports CHECL_CHAOS for the schedule THIS shard should die
  // on; arm it before the first frame is served.
  chaoskit::Engine::instance().arm_from_env();

  snapd::Server server(root, static_cast<std::uint16_t>(port));
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.error().c_str());
    return 1;
  }
  if (announce_fd >= 0) {
    char buf[16];
    const int n =
        std::snprintf(buf, sizeof buf, "%u\n", unsigned{server.port()});
    if (::write(announce_fd, buf, static_cast<std::size_t>(n)) != n) return 1;
    ::close(announce_fd);
  }

  g_server = &server;
  ::signal(SIGTERM, on_term);
  ::signal(SIGINT, on_term);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the shard
  server.run();
  return 0;
}
