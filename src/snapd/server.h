// server.h — one checl_snapd storage shard.
//
// A deliberately dumb byte hotel with an epoll front door: the daemon stores
// opaque chunk files and versioned manifest payloads under one root directory
// and speaks proto.h over TCP.  All placement intelligence — the consistent-
// hash ring, R-way replication, failover, repair — lives in the CLIENT
// (snapstore/shard.h); a shard never knows its peers exist.  That asymmetry
// is what makes the torture tests honest: killing a daemon kills real state,
// and the client must reconstruct from the survivors.
//
// Layout under root:
//   <root>/chunks/<hash16hex>-<rawlen>[-u<serial>].chk   opaque chunk files
//   <root>/manifests/<name>.m                            u64 seal_seq + payload
//
// Manifest writes are tmp + rename, so a daemon that dies mid-PutManifest
// (the snapd_shard_death chaos site _exit()s between the tmp write and the
// rename) leaves either the old complete manifest or the new complete
// manifest — never a torn file.  Chunk files are content-addressed and
// immutable, so a torn chunk write is caught by the snapstore CRC on read
// and repaired from another replica.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "snapd/proto.h"

namespace snapd {

class Server {
 public:
  // Binds immediately (port 0 = kernel-assigned; read the result from
  // port()).  Creates <root>/chunks and <root>/manifests.
  Server(std::string root, std::uint16_t port);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] bool ok() const noexcept { return listen_fd_ >= 0; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& root() const noexcept { return root_; }

  // The event loop; returns after stop(), a Shutdown frame, or a fatal
  // listener error.
  void run();
  // Thread-safe: wakes the loop via the self-pipe and makes run() return.
  void stop();

  [[nodiscard]] StatReply stats() const noexcept { return stats_; }

 private:
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> buf;  // partial inbound frames
  };

  void accept_ready();
  bool read_ready(Conn& c);                 // false => close this connection
  bool handle_frame(Conn& c, const Frame& f);  // false => close
  bool reply(Conn& c, Op op, Wire w, const std::uint8_t* body, std::size_t n);

  std::string chunk_path(const snapstore::ChunkKey& k) const;
  std::string manifest_path(const std::string& safe) const;

  std::string root_;
  std::string error_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  bool stopping_ = false;
  std::unordered_map<int, Conn> conns_;
  StatReply stats_;
};

}  // namespace snapd
