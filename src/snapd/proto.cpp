#include "snapd/proto.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace snapd {

const char* wire_name(Wire w) noexcept {
  switch (w) {
    case Wire::Ok: return "ok";
    case Wire::Missing: return "missing";
    case Wire::Io: return "io";
    case Wire::BadRequest: return "bad-request";
    case Wire::Corrupt: return "corrupt";
    case Wire::Unsupported: return "unsupported";
  }
  return "unknown";
}

namespace {

void put16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}
void put32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}
void put64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}

template <typename T>
T rd(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(Op op, Wire status,
                                       const std::uint8_t* body,
                                       std::size_t body_len) {
  std::vector<std::uint8_t> b;
  b.reserve(kHeaderBytes + body_len + kTrailerBytes);
  put32(b, kMagic);
  put16(b, kVersion);
  put16(b, static_cast<std::uint16_t>(op));
  put16(b, static_cast<std::uint16_t>(status));
  put16(b, 0);  // reserved
  put32(b, static_cast<std::uint32_t>(body_len));
  if (body_len != 0) b.insert(b.end(), body, body + body_len);
  put64(b, snapstore::hash64(b.data(), b.size()));
  return b;
}

bool decode_frame(const std::uint8_t* p, std::size_t n, Frame& f) {
  if (n < kHeaderBytes + kTrailerBytes) return false;
  if (rd<std::uint32_t>(p) != kMagic) return false;
  if (rd<std::uint16_t>(p + 4) != kVersion) return false;
  const std::uint32_t body_len = rd<std::uint32_t>(p + 12);
  if (body_len > kMaxBody || n != kHeaderBytes + body_len + kTrailerBytes)
    return false;
  const std::uint64_t want = rd<std::uint64_t>(p + n - kTrailerBytes);
  if (snapstore::hash64(p, n - kTrailerBytes) != want) return false;
  f.op = static_cast<Op>(rd<std::uint16_t>(p + 6));
  f.status = static_cast<Wire>(rd<std::uint16_t>(p + 8));
  f.body.assign(p + kHeaderBytes, p + kHeaderBytes + body_len);
  return true;
}

void put_key(std::vector<std::uint8_t>& b, const snapstore::ChunkKey& k) {
  put64(b, k.hash);
  put64(b, k.len);
  put32(b, k.uniq);
}

bool get_key(const std::uint8_t* p, std::size_t n, snapstore::ChunkKey& k) {
  if (n < kKeyBytes) return false;
  k.hash = rd<std::uint64_t>(p);
  k.len = rd<std::uint64_t>(p + 8);
  k.uniq = rd<std::uint32_t>(p + 16);
  return true;
}

bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n != 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* p, std::size_t n) {
  while (n != 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool send_frame(int fd, Op op, Wire status, const std::uint8_t* body,
                std::size_t body_len) {
  const std::vector<std::uint8_t> b = encode_frame(op, status, body, body_len);
  return write_all(fd, b.data(), b.size());
}

bool recv_frame(int fd, Frame& f) {
  std::uint8_t hdr[kHeaderBytes];
  if (!read_all(fd, hdr, sizeof hdr)) return false;
  if (rd<std::uint32_t>(hdr) != kMagic) return false;
  if (rd<std::uint16_t>(hdr + 4) != kVersion) return false;
  const std::uint32_t body_len = rd<std::uint32_t>(hdr + 12);
  if (body_len > kMaxBody) return false;
  std::vector<std::uint8_t> whole(kHeaderBytes + body_len + kTrailerBytes);
  std::memcpy(whole.data(), hdr, sizeof hdr);
  if (!read_all(fd, whole.data() + kHeaderBytes, body_len + kTrailerBytes))
    return false;
  return decode_frame(whole.data(), whole.size(), f);
}

}  // namespace snapd
