#include "snapd/client.h"

#include <unistd.h>

#include <cstring>

#include "ipc/channel.h"

namespace snapd {

namespace {

template <typename T>
T rd(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

template <typename T>
void wr(std::vector<std::uint8_t>& b, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}

void put_name(std::vector<std::uint8_t>& b, const std::string& name) {
  wr(b, static_cast<std::uint16_t>(name.size()));
  b.insert(b.end(), name.begin(), name.end());
}

}  // namespace

ShardClient::~ShardClient() { close(); }

bool ShardClient::connect(const std::string& host, std::uint16_t port,
                          const std::string& label, const checl::Retry& retry) {
  close();
  int fd = -1;
  retry.run([&] {
    fd = ipc::tcp_connect(host.c_str(), port);
    return fd >= 0;
  });
  endpoint_ = label + "@" + host + ":" + std::to_string(port);
  fd_ = fd;
  return fd_ >= 0;
}

void ShardClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Wire ShardClient::call(Op op, const std::vector<std::uint8_t>& body,
                       Frame& rep) {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return Wire::Io;
  if (!send_frame(fd_, op, Wire::Ok, body.data(), body.size()) ||
      !recv_frame(fd_, rep) || rep.op != op) {
    // transport failure or a mismatched/corrupt reply: this replica is gone
    ::close(fd_);
    fd_ = -1;
    return Wire::Io;
  }
  return rep.status;
}

Wire ShardClient::ping() {
  Frame rep;
  return call(Op::Ping, {}, rep);
}

Wire ShardClient::put_chunk(const snapstore::ChunkKey& k,
                            const std::uint8_t* file, std::size_t file_len) {
  std::vector<std::uint8_t> body;
  body.reserve(kKeyBytes + file_len);
  put_key(body, k);
  body.insert(body.end(), file, file + file_len);
  Frame rep;
  return call(Op::PutChunk, body, rep);
}

Wire ShardClient::get_chunk(const snapstore::ChunkKey& k,
                            std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> body;
  put_key(body, k);
  Frame rep;
  const Wire w = call(Op::GetChunk, body, rep);
  if (w == Wire::Ok) out = std::move(rep.body);
  return w;
}

Wire ShardClient::has_chunk(const snapstore::ChunkKey& k) {
  std::vector<std::uint8_t> body;
  put_key(body, k);
  Frame rep;
  return call(Op::HasChunk, body, rep);
}

Wire ShardClient::del_chunk(const snapstore::ChunkKey& k) {
  std::vector<std::uint8_t> body;
  put_key(body, k);
  Frame rep;
  return call(Op::DelChunk, body, rep);
}

Wire ShardClient::put_manifest(const std::string& name, std::uint64_t seal_seq,
                               const std::uint8_t* payload,
                               std::size_t payload_len) {
  std::vector<std::uint8_t> body;
  body.reserve(8 + 2 + name.size() + payload_len);
  wr(body, seal_seq);
  put_name(body, name);
  body.insert(body.end(), payload, payload + payload_len);
  Frame rep;
  return call(Op::PutManifest, body, rep);
}

Wire ShardClient::get_manifest(const std::string& name, std::uint64_t& seal_seq,
                               std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> body;
  put_name(body, name);
  Frame rep;
  const Wire w = call(Op::GetManifest, body, rep);
  if (w != Wire::Ok) return w;
  if (rep.body.size() < 8) return Wire::Corrupt;
  seal_seq = rd<std::uint64_t>(rep.body.data());
  payload.assign(rep.body.begin() + 8, rep.body.end());
  return Wire::Ok;
}

Wire ShardClient::del_manifest(const std::string& name) {
  std::vector<std::uint8_t> body;
  put_name(body, name);
  Frame rep;
  return call(Op::DelManifest, body, rep);
}

Wire ShardClient::list_manifests(std::vector<ManifestEntry>& out) {
  Frame rep;
  const Wire w = call(Op::ListManifests, {}, rep);
  if (w != Wire::Ok) return w;
  const std::uint8_t* p = rep.body.data();
  std::size_t n = rep.body.size();
  if (n < 4) return Wire::Corrupt;
  const std::uint32_t count = rd<std::uint32_t>(p);
  p += 4;
  n -= 4;
  out.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    if (n < 2) return Wire::Corrupt;
    const std::uint16_t name_len = rd<std::uint16_t>(p);
    if (n < 2u + name_len + 8u) return Wire::Corrupt;
    ManifestEntry e;
    e.name.assign(reinterpret_cast<const char*>(p + 2), name_len);
    e.seal_seq = rd<std::uint64_t>(p + 2 + name_len);
    out.push_back(std::move(e));
    p += 2 + name_len + 8;
    n -= 2 + name_len + 8;
  }
  return Wire::Ok;
}

Wire ShardClient::list_chunks(std::vector<ChunkEntry>& out) {
  Frame rep;
  const Wire w = call(Op::ListChunks, {}, rep);
  if (w != Wire::Ok) return w;
  const std::uint8_t* p = rep.body.data();
  std::size_t n = rep.body.size();
  if (n < 4) return Wire::Corrupt;
  const std::uint32_t count = rd<std::uint32_t>(p);
  p += 4;
  n -= 4;
  out.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    if (n < kKeyBytes + 8) return Wire::Corrupt;
    ChunkEntry e;
    if (!get_key(p, n, e.key)) return Wire::Corrupt;
    e.file_len = rd<std::uint64_t>(p + kKeyBytes);
    out.push_back(e);
    p += kKeyBytes + 8;
    n -= kKeyBytes + 8;
  }
  return Wire::Ok;
}

Wire ShardClient::stat(StatReply& out) {
  Frame rep;
  const Wire w = call(Op::Stat, {}, rep);
  if (w != Wire::Ok) return w;
  if (rep.body.size() < kStatReplyBytes) return Wire::Corrupt;
  const std::uint8_t* p = rep.body.data();
  out.chunks = rd<std::uint64_t>(p);
  out.chunk_bytes = rd<std::uint64_t>(p + 8);
  out.manifests = rd<std::uint64_t>(p + 16);
  out.puts = rd<std::uint64_t>(p + 24);
  out.gets = rd<std::uint64_t>(p + 32);
  out.bytes_in = rd<std::uint64_t>(p + 40);
  out.bytes_out = rd<std::uint64_t>(p + 48);
  return Wire::Ok;
}

Wire ShardClient::shutdown() {
  Frame rep;
  const Wire w = call(Op::Shutdown, {}, rep);
  close();
  return w;
}

}  // namespace snapd
