#include "snapd/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "chaoskit/chaoskit.h"
#include "ipc/channel.h"

namespace snapd {

namespace fs = std::filesystem;

namespace {

// Names arrive pre-sanitized from our own client, but the daemon still never
// trusts the wire: anything that could traverse out of <root>/manifests maps
// to '_' here, independently of the client-side sanitize.
std::string safe_name(const std::string& name) {
  std::string out = name.empty() ? "_" : name;
  for (char& c : out) {
    const bool okc = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!okc) c = '_';
  }
  return out;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (sz < 0) {
    std::fclose(f);
    return false;
  }
  out.resize(static_cast<std::size_t>(sz));
  const bool okr = out.empty() || std::fread(out.data(), out.size(), 1, f) == 1;
  std::fclose(f);
  return okr;
}

bool write_file(const std::string& path, const std::uint8_t* p, std::size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool okw = n == 0 || std::fwrite(p, n, 1, f) == 1;
  const bool okf = std::fflush(f) == 0;
  std::fclose(f);
  return okw && okf;
}

template <typename T>
T rd(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

template <typename T>
void wr(std::vector<std::uint8_t>& b, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}

}  // namespace

std::string Server::chunk_path(const snapstore::ChunkKey& k) const {
  char buf[64];
  if (k.uniq == 0) {
    std::snprintf(buf, sizeof buf, "%016llx-%llu.chk",
                  static_cast<unsigned long long>(k.hash),
                  static_cast<unsigned long long>(k.len));
  } else {
    std::snprintf(buf, sizeof buf, "%016llx-%llu-u%u.chk",
                  static_cast<unsigned long long>(k.hash),
                  static_cast<unsigned long long>(k.len), k.uniq);
  }
  return root_ + "/chunks/" + buf;
}

std::string Server::manifest_path(const std::string& safe) const {
  return root_ + "/manifests/" + safe + ".m";
}

Server::Server(std::string root, std::uint16_t port) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_ + "/chunks", ec);
  fs::create_directories(root_ + "/manifests", ec);
  if (ec) {
    error_ = "snapd: cannot create " + root_ + ": " + ec.message();
    return;
  }
  listen_fd_ = ipc::tcp_listen(port);
  if (listen_fd_ < 0) {
    error_ = "snapd: cannot listen on port " + std::to_string(port);
    return;
  }
  // non-blocking listener: accept_ready() drains the whole backlog per wakeup
  ::fcntl(listen_fd_, F_SETFL,
          ::fcntl(listen_fd_, F_GETFL, 0) | O_NONBLOCK);
  sockaddr_in addr{};
  socklen_t alen = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) == 0)
    port_ = ntohs(addr.sin_port);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (::pipe2(wake_fds_, O_CLOEXEC | O_NONBLOCK) != 0 || epoll_fd_ < 0) {
    error_ = "snapd: cannot set up event loop";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fds_[0];
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);

  // Rebuild the persistent counters from what survives on disk, so a
  // restarted shard reports its true inventory.
  for (const auto& e : fs::directory_iterator(root_ + "/chunks", ec)) {
    if (!e.is_regular_file()) continue;
    stats_.chunks++;
    std::error_code sec;
    const auto sz = e.file_size(sec);
    stats_.chunk_bytes += sec ? 0 : sz;
  }
  for (const auto& e : fs::directory_iterator(root_ + "/manifests", ec))
    if (e.is_regular_file()) stats_.manifests++;
}

Server::~Server() {
  for (auto& [fd, c] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  for (const int fd : wake_fds_)
    if (fd >= 0) ::close(fd);
}

void Server::stop() {
  const std::uint8_t one = 1;
  [[maybe_unused]] const ssize_t w = ::write(wake_fds_[1], &one, 1);
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ipc::tcp_accept(listen_fd_);
    if (fd < 0) return;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      return;
    }
    conns_[fd].fd = fd;
    // level-triggered + one accept per readiness is fine, but drain the
    // backlog eagerly so N clients connecting at once attach in one pass
  }
}

bool Server::reply(Conn& c, Op op, Wire w, const std::uint8_t* body,
                   std::size_t n) {
  stats_.bytes_out += n;
  return send_frame(c.fd, op, w, body, n);
}

bool Server::read_ready(Conn& c) {
  std::uint8_t tmp[1 << 16];
  const ssize_t r = ::read(c.fd, tmp, sizeof tmp);
  if (r < 0) return errno == EINTR || errno == EAGAIN;
  if (r == 0) return false;  // peer gone
  c.buf.insert(c.buf.end(), tmp, tmp + r);

  // Serve every complete frame sitting in the buffer.
  while (c.buf.size() >= kHeaderBytes) {
    if (rd<std::uint32_t>(c.buf.data()) != kMagic ||
        rd<std::uint16_t>(c.buf.data() + 4) != kVersion)
      return false;  // unframed garbage: drop the connection
    const std::uint32_t body_len = rd<std::uint32_t>(c.buf.data() + 12);
    if (body_len > kMaxBody) return false;
    const std::size_t total = kHeaderBytes + body_len + kTrailerBytes;
    if (c.buf.size() < total) break;
    Frame f;
    if (!decode_frame(c.buf.data(), total, f)) {
      // checksum mismatch: tell the peer, then drop the connection — the
      // stream may be desynchronized beyond this frame
      (void)reply(c, Op::Ping, Wire::Corrupt, nullptr, 0);
      return false;
    }
    c.buf.erase(c.buf.begin(),
                c.buf.begin() + static_cast<std::ptrdiff_t>(total));
    stats_.bytes_in += body_len;
    if (!handle_frame(c, f)) return false;
  }
  return true;
}

bool Server::handle_frame(Conn& c, const Frame& f) {
  const std::uint8_t* p = f.body.data();
  const std::size_t n = f.body.size();
  switch (f.op) {
    case Op::Ping:
      return reply(c, f.op, Wire::Ok, nullptr, 0);

    case Op::PutChunk: {
      snapstore::ChunkKey k;
      if (!get_key(p, n, k))
        return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      const std::string path = chunk_path(k);
      const bool existed = fs::exists(path);
      if (!write_file(path, p + kKeyBytes, n - kKeyBytes))
        return reply(c, f.op, Wire::Io, nullptr, 0);
      if (!existed) {
        stats_.chunks++;
        stats_.chunk_bytes += n - kKeyBytes;
      }
      stats_.puts++;
      return reply(c, f.op, Wire::Ok, nullptr, 0);
    }

    case Op::GetChunk: {
      snapstore::ChunkKey k;
      if (!get_key(p, n, k))
        return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      std::vector<std::uint8_t> data;
      if (!read_file(chunk_path(k), data))
        return reply(c, f.op, Wire::Missing, nullptr, 0);
      stats_.gets++;
      return reply(c, f.op, Wire::Ok, data.data(), data.size());
    }

    case Op::HasChunk: {
      snapstore::ChunkKey k;
      if (!get_key(p, n, k))
        return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      return reply(c, f.op,
                   fs::exists(chunk_path(k)) ? Wire::Ok : Wire::Missing,
                   nullptr, 0);
    }

    case Op::DelChunk: {
      snapstore::ChunkKey k;
      if (!get_key(p, n, k))
        return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      const std::string path = chunk_path(k);
      std::error_code sec;
      const auto sz = fs::file_size(path, sec);
      if (!fs::remove(path))
        return reply(c, f.op, Wire::Missing, nullptr, 0);
      stats_.chunks--;
      stats_.chunk_bytes -= sec ? 0 : sz;
      return reply(c, f.op, Wire::Ok, nullptr, 0);
    }

    case Op::PutManifest: {
      if (n < 8 + 2) return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      const std::uint64_t seq = rd<std::uint64_t>(p);
      const std::uint16_t name_len = rd<std::uint16_t>(p + 8);
      if (n < 8 + 2 + static_cast<std::size_t>(name_len))
        return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      const std::string name(reinterpret_cast<const char*>(p + 10), name_len);
      const std::uint8_t* payload = p + 10 + name_len;
      const std::size_t payload_len = n - 10 - name_len;
      const std::string path = manifest_path(safe_name(name));
      const bool existed = fs::exists(path);
      std::vector<std::uint8_t> file;
      file.reserve(8 + payload_len);
      wr(file, seq);
      file.insert(file.end(), payload, payload + payload_len);
      if (!write_file(path + ".tmp", file.data(), file.size()))
        return reply(c, f.op, Wire::Io, nullptr, 0);
      // The torture lever: a shard that dies RIGHT HERE has written the new
      // manifest bytes but never published them.  The rename below is what
      // makes the write atomic; _exit (no destructors, no flush) models a
      // machine-level crash, and the client must treat the silence as a
      // failed replica — the old manifest (or none) is what this shard
      // serves after restart.
      if (chaoskit::Engine::instance().should_fire(
              chaoskit::Site::SnapdShardDeath))
        ::_exit(9);
      if (std::rename((path + ".tmp").c_str(), path.c_str()) != 0)
        return reply(c, f.op, Wire::Io, nullptr, 0);
      if (!existed) stats_.manifests++;
      stats_.puts++;
      return reply(c, f.op, Wire::Ok, nullptr, 0);
    }

    case Op::GetManifest: {
      if (n < 2) return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      const std::uint16_t name_len = rd<std::uint16_t>(p);
      if (n < 2 + static_cast<std::size_t>(name_len))
        return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      const std::string name(reinterpret_cast<const char*>(p + 2), name_len);
      std::vector<std::uint8_t> file;
      if (!read_file(manifest_path(safe_name(name)), file) || file.size() < 8)
        return reply(c, f.op, Wire::Missing, nullptr, 0);
      stats_.gets++;
      return reply(c, f.op, Wire::Ok, file.data(), file.size());
    }

    case Op::DelManifest: {
      if (n < 2) return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      const std::uint16_t name_len = rd<std::uint16_t>(p);
      if (n < 2 + static_cast<std::size_t>(name_len))
        return reply(c, f.op, Wire::BadRequest, nullptr, 0);
      const std::string name(reinterpret_cast<const char*>(p + 2), name_len);
      if (!fs::remove(manifest_path(safe_name(name))))
        return reply(c, f.op, Wire::Missing, nullptr, 0);
      stats_.manifests--;
      return reply(c, f.op, Wire::Ok, nullptr, 0);
    }

    case Op::ListManifests: {
      std::vector<std::uint8_t> body;
      std::uint32_t count = 0;
      wr(body, count);  // patched below
      std::error_code ec;
      for (const auto& e : fs::directory_iterator(root_ + "/manifests", ec)) {
        if (!e.is_regular_file()) continue;
        std::string fname = e.path().filename().string();
        if (fname.size() < 2 || fname.substr(fname.size() - 2) != ".m")
          continue;
        fname.resize(fname.size() - 2);
        std::vector<std::uint8_t> file;
        if (!read_file(e.path().string(), file) || file.size() < 8) continue;
        wr(body, static_cast<std::uint16_t>(fname.size()));
        body.insert(body.end(), fname.begin(), fname.end());
        wr(body, rd<std::uint64_t>(file.data()));  // seal_seq
        count++;
      }
      std::memcpy(body.data(), &count, sizeof count);
      return reply(c, f.op, Wire::Ok, body.data(), body.size());
    }

    case Op::ListChunks: {
      std::vector<std::uint8_t> body;
      std::uint32_t count = 0;
      wr(body, count);
      std::error_code ec;
      for (const auto& e : fs::directory_iterator(root_ + "/chunks", ec)) {
        if (!e.is_regular_file()) continue;
        const std::string fname = e.path().filename().string();
        snapstore::ChunkKey k{};
        unsigned long long hash = 0, len = 0;
        unsigned uniq = 0;
        if (std::sscanf(fname.c_str(), "%16llx-%llu-u%u.chk", &hash, &len,
                        &uniq) < 2)
          continue;
        k.hash = hash;
        k.len = len;
        k.uniq = uniq;
        put_key(body, k);
        std::error_code sec;
        const auto sz = e.file_size(sec);
        wr(body, static_cast<std::uint64_t>(sec ? 0 : sz));
        count++;
      }
      std::memcpy(body.data(), &count, sizeof count);
      return reply(c, f.op, Wire::Ok, body.data(), body.size());
    }

    case Op::Stat: {
      std::vector<std::uint8_t> body;
      body.reserve(kStatReplyBytes);
      wr(body, stats_.chunks);
      wr(body, stats_.chunk_bytes);
      wr(body, stats_.manifests);
      wr(body, stats_.puts);
      wr(body, stats_.gets);
      wr(body, stats_.bytes_in);
      wr(body, stats_.bytes_out);
      return reply(c, f.op, Wire::Ok, body.data(), body.size());
    }

    case Op::Shutdown:
      (void)reply(c, f.op, Wire::Ok, nullptr, 0);
      stopping_ = true;
      return true;
  }
  return reply(c, f.op, Wire::Unsupported, nullptr, 0);
}

void Server::run() {
  if (!ok()) return;
  epoll_event events[32];
  while (!stopping_) {
    const int nev = ::epoll_wait(epoll_fd_, events, 32, -1);
    if (nev < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < nev && !stopping_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fds_[0]) {
        stopping_ = true;
        break;
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (!read_ready(it->second)) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
        conns_.erase(it);
      }
    }
  }
}

}  // namespace snapd
