// client.h — one client connection to one checl_snapd shard.
//
// Thin typed wrapper over proto.h: one request/reply exchange per call,
// serialized by a mutex so the fan-out worker threads of the sharded store
// can share a connection.  A transport failure (connect refused, EOF, torn
// frame, checksum mismatch) marks the client dead — dead it stays, and every
// later call fails fast; the sharded store treats a dead client as a failed
// replica and works around it.  `endpoint()` names the shard
// ("shard2@127.0.0.1:40113") so every error a caller surfaces says WHICH
// replica went away.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.h"
#include "snapd/proto.h"

namespace snapd {

struct ManifestEntry {
  std::string name;
  std::uint64_t seal_seq = 0;
};

struct ChunkEntry {
  snapstore::ChunkKey key;
  std::uint64_t file_len = 0;
};

class ShardClient {
 public:
  ShardClient() = default;
  ~ShardClient();
  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  // Connects with retry/backoff (the daemon may still be binding).  `label`
  // becomes the endpoint prefix in error strings ("shard0").
  bool connect(const std::string& host, std::uint16_t port,
               const std::string& label,
               const checl::Retry& retry = default_retry());
  void close();

  [[nodiscard]] bool alive() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }

  // Every call returns the wire status; transport death maps to Wire::Io and
  // kills the connection.
  Wire ping();
  Wire put_chunk(const snapstore::ChunkKey& k, const std::uint8_t* file,
                 std::size_t file_len);
  Wire get_chunk(const snapstore::ChunkKey& k, std::vector<std::uint8_t>& out);
  Wire has_chunk(const snapstore::ChunkKey& k);
  Wire del_chunk(const snapstore::ChunkKey& k);
  Wire put_manifest(const std::string& name, std::uint64_t seal_seq,
                    const std::uint8_t* payload, std::size_t payload_len);
  Wire get_manifest(const std::string& name, std::uint64_t& seal_seq,
                    std::vector<std::uint8_t>& payload);
  Wire del_manifest(const std::string& name);
  Wire list_manifests(std::vector<ManifestEntry>& out);
  Wire list_chunks(std::vector<ChunkEntry>& out);
  Wire stat(StatReply& out);
  Wire shutdown();  // polite daemon stop; the connection dies with it

  [[nodiscard]] static checl::Retry default_retry() noexcept {
    checl::Retry r;
    r.max_attempts = 50;
    r.base_delay_ns = 2'000'000;
    r.max_delay_ns = 100'000'000;
    r.budget_ns = 2'000'000'000;
    return r;
  }

 private:
  // One framed round trip under the lock; Io + dead connection on transport
  // failure.
  Wire call(Op op, const std::vector<std::uint8_t>& body, Frame& rep);

  int fd_ = -1;
  std::string endpoint_ = "unconnected";
  std::mutex mu_;
};

}  // namespace snapd
