#include "clc/program.h"

#include "clc/bytecode.h"
#include "clc/lexer.h"
#include "clc/parser.h"
#include "clc/pp.h"

namespace clc {

CompileResult compile(std::string_view source, std::string_view options) {
  CompileResult result;

  std::string opts(options);
  opts += " -D CLK_LOCAL_MEM_FENCE=1 -D CLK_GLOBAL_MEM_FENCE=2";
  Preprocessor pp(opts);
  std::string expanded;
  if (!pp.run(source, expanded, result.diag)) {
    result.build_log = result.diag.to_string();
    return result;
  }

  Lexer lexer(expanded);
  std::vector<Token> tokens;
  if (!lexer.run(tokens, result.diag)) {
    result.build_log = result.diag.to_string();
    return result;
  }

  auto mod = std::make_unique<Module>();
  Parser parser(std::move(tokens));
  if (!parser.parse_module(*mod, result.diag)) {
    result.build_log = result.diag.to_string();
    return result;
  }
  result.module = std::move(mod);
  result.module->bc = compile_bytecode(*result.module);
  return result;
}

}  // namespace clc
