// parser.h — recursive-descent parser for the OpenCL C subset.
//
// Single pass: declarations must precede uses (helper functions before the
// kernels that call them), which every workload in this repo satisfies and
// OpenCL C itself requires.  The parser resolves names to frame slots and
// computes result types inline, so the interpreter never looks anything up.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "clc/ast.h"
#include "clc/diag.h"
#include "clc/token.h"

namespace clc {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  // Parses a whole translation unit into `m`; false + diag on error.
  bool parse_module(Module& m, Diag& diag);

 private:
  struct VarInfo {
    int slot = -1;
    Type type;
  };

  // -- token helpers ------------------------------------------------------
  [[nodiscard]] const Token& peek(int ahead = 0) const noexcept;
  const Token& advance() noexcept;
  bool accept(Tok k) noexcept;
  bool expect(Tok k, const char* what);
  [[noreturn]] void fail(std::string msg);

  // -- types ----------------------------------------------------------------
  // True if the upcoming tokens begin a type (used for cast disambiguation).
  [[nodiscard]] bool starts_type(int ahead = 0) const noexcept;
  // Parses qualifiers + base + optional '*'; addr space applies to pointers.
  // Sets last_type_const_ when any position of the declarator carried `const`.
  Type parse_type();
  bool last_type_const_ = false;
  bool parse_named_scalar(std::string_view name, Type& out) const noexcept;
  void parse_struct_body(StructDef& def);

  // -- declarations -----------------------------------------------------------
  void parse_top_level();
  void parse_function(Type ret, std::string name, bool is_kernel);

  // -- statements ----------------------------------------------------------
  StmtPtr parse_stmt();
  StmtPtr parse_block();
  StmtPtr parse_decl_stmt();

  // -- expressions ------------------------------------------------------------
  ExprPtr parse_expr();          // comma-free full expression
  ExprPtr parse_assign();
  ExprPtr parse_cond();
  ExprPtr parse_binary(int min_prec);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
  ExprPtr parse_call(std::string name, int line);

  // -- typing helpers ----------------------------------------------------------
  Type binary_result(Tok op, const Type& a, const Type& b, int line);
  void check_lvalue(const Expr& e, int line);
  bool const_int(const Expr& e, std::int64_t& out) const noexcept;

  // -- scopes ------------------------------------------------------------------
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  int declare_var(const std::string& name, const Type& t, int line);
  [[nodiscard]] const VarInfo* lookup_var(std::string_view name) const noexcept;

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  Module* mod_ = nullptr;
  FuncDecl* cur_ = nullptr;
  std::vector<std::unordered_map<std::string, VarInfo>> scopes_;
  std::unordered_map<std::string, std::int16_t> struct_names_;  // tag/typedef -> id
  Diag diag_;
};

}  // namespace clc
