#include "clc/type.h"

namespace clc {

std::size_t size_of(const Type& t, const std::vector<StructDef>& structs) noexcept {
  switch (t.kind) {
    case Kind::Void: return 0;
    case Kind::Struct:
      return t.struct_id >= 0 &&
                     static_cast<std::size_t>(t.struct_id) < structs.size()
                 ? structs[static_cast<std::size_t>(t.struct_id)].size
                 : 0;
    case Kind::Image2D:
    case Kind::Image3D:
    case Kind::Sampler:
    case Kind::Pointer: return 8;
    default: {
      const std::size_t w = t.vec == 3 ? 4 : t.vec;  // vec3 padded to vec4
      return scalar_size(t.kind) * w;
    }
  }
}

std::size_t align_of(const Type& t, const std::vector<StructDef>& structs) noexcept {
  if (t.kind == Kind::Struct) {
    return t.struct_id >= 0 &&
                   static_cast<std::size_t>(t.struct_id) < structs.size()
               ? structs[static_cast<std::size_t>(t.struct_id)].align
               : 1;
  }
  const std::size_t s = size_of(t, structs);
  return s == 0 ? 1 : s;
}

std::string type_name(const Type& t, const std::vector<StructDef>& structs) {
  auto base = [&](Kind k, std::uint8_t vec, std::int16_t sid) -> std::string {
    std::string n;
    switch (k) {
      case Kind::Void: n = "void"; break;
      case Kind::Bool: n = "bool"; break;
      case Kind::I8: n = "char"; break;
      case Kind::U8: n = "uchar"; break;
      case Kind::I16: n = "short"; break;
      case Kind::U16: n = "ushort"; break;
      case Kind::I32: n = "int"; break;
      case Kind::U32: n = "uint"; break;
      case Kind::I64: n = "long"; break;
      case Kind::U64: n = "ulong"; break;
      case Kind::F32: n = "float"; break;
      case Kind::F64: n = "double"; break;
      case Kind::Image2D: return "image2d_t";
      case Kind::Image3D: return "image3d_t";
      case Kind::Sampler: return "sampler_t";
      case Kind::Struct:
        return sid >= 0 && static_cast<std::size_t>(sid) < structs.size()
                   ? "struct " + structs[static_cast<std::size_t>(sid)].name
                   : "struct <anon>";
      default: n = "?"; break;
    }
    if (vec > 1) n += std::to_string(static_cast<int>(vec));
    return n;
  };
  if (t.kind == Kind::Pointer) {
    std::string prefix;
    switch (t.as) {
      case AddrSpace::Global: prefix = "__global "; break;
      case AddrSpace::Local: prefix = "__local "; break;
      case AddrSpace::Constant: prefix = "__constant "; break;
      case AddrSpace::Private: break;
    }
    const Kind ek = t.struct_id >= 0 ? Kind::Struct : t.elem_kind;
    return prefix + base(ek, t.elem_vec, t.struct_id) + "*";
  }
  return base(t.kind, t.vec, t.struct_id);
}

}  // namespace clc
