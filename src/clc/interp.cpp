#include "clc/interp.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>

#include "clc/builtins.h"
#include "clc/vm.h"

namespace clc {

namespace {

[[noreturn]] void interp_fail(std::string msg, int line) {
  throw InterpError{std::move(msg), line};
}

}  // namespace

std::size_t ptr_stride(const Type& ptr_t, const std::vector<StructDef>& structs) noexcept {
  if (ptr_t.struct_id >= 0)
    return structs[static_cast<std::size_t>(ptr_t.struct_id)].size;
  return size_of(make_scalar(ptr_t.elem_kind, ptr_t.elem_vec), structs);
}

Type local_ptr_type(const Type& decl) noexcept {
  if (decl.kind == Kind::Struct)
    return make_ptr(Kind::Struct, 1, AddrSpace::Local, decl.struct_id);
  return make_ptr(decl.kind, decl.vec, AddrSpace::Local);
}

// ---------------------------------------------------------------------------
// function execution
// ---------------------------------------------------------------------------

Value Interp::run_function(const FuncDecl& fn, std::span<const Value> args) {
  if (++depth_ > 64) interp_fail("call depth limit exceeded (recursion?)", 0);
  Frame f;
  f.slots.resize(static_cast<std::size_t>(fn.num_slots));
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    const ParamInfo& p = fn.params[i];
    Value v = args[i];
    if (p.type.kind == Kind::Struct) {
      // by-value struct: copy the caller's bytes into our own storage
      const std::size_t sz = size_of(p.type, mod_.structs);
      f.allocas.emplace_back(sz);
      std::memcpy(f.allocas.back().data(), v.ptr(), sz);
      v = Value::of_ptr(p.type, f.allocas.back().data());
    } else if (p.type.kind != Kind::Image2D && p.type.kind != Kind::Image3D &&
               p.type.kind != Kind::Sampler && p.type.kind != Kind::Pointer) {
      v = convert(v, p.type);
    }
    f.slots[static_cast<std::size_t>(p.slot)] = v;
  }
  if (fn.body) exec(*fn.body, f);
  --depth_;
  if (fn.ret.kind != Kind::Void && !f.returned)
    interp_fail("function '" + fn.name + "' did not return a value", 0);
  return f.ret;
}

Interp::Flow Interp::exec(const Stmt& s, Frame& f) {
  ++ctx_.ops;
  switch (s.k) {
    case Stmt::K::ExprStmt:
      if (s.e) eval(*s.e, f);
      return Flow::Normal;

    case Stmt::K::Decl: {
      Value& slot = f.slots[static_cast<std::size_t>(s.slot)];
      if (s.local_id >= 0) {
        slot = Value::of_ptr(local_ptr_type(s.decl_type),
                             ctx_.local_base + s.local_offset);
      } else if (s.array_len > 0) {
        const std::size_t sz = size_of(s.decl_type, mod_.structs) *
                               static_cast<std::size_t>(s.array_len);
        f.allocas.emplace_back(sz);
        Type pt = s.decl_type.kind == Kind::Struct
                      ? make_ptr(Kind::Struct, 1, AddrSpace::Private,
                                 s.decl_type.struct_id)
                      : make_ptr(s.decl_type.kind, s.decl_type.vec,
                                 AddrSpace::Private);
        slot = Value::of_ptr(pt, f.allocas.back().data());
      } else if (s.decl_type.kind == Kind::Struct) {
        f.allocas.emplace_back(size_of(s.decl_type, mod_.structs));
        slot = Value::of_ptr(s.decl_type, f.allocas.back().data());
        if (s.e) {
          const Value init = eval(*s.e, f);
          std::memcpy(slot.ptr(), init.ptr(), size_of(s.decl_type, mod_.structs));
        }
      } else {
        slot = Value(s.decl_type);
        if (s.e) slot = convert(eval(*s.e, f), s.decl_type);
      }
      return Flow::Normal;
    }

    case Stmt::K::Block:
      for (const auto& st : s.body) {
        const Flow fl = exec(*st, f);
        if (fl != Flow::Normal) return fl;
      }
      return Flow::Normal;

    case Stmt::K::If:
      if (eval(*s.e, f).truthy()) return exec(*s.then_s, f);
      if (s.else_s) return exec(*s.else_s, f);
      return Flow::Normal;

    case Stmt::K::While:
      while (eval(*s.e, f).truthy()) {
        const Flow fl = exec(*s.then_s, f);
        if (fl == Flow::Break) break;
        if (fl == Flow::Return) return fl;
      }
      return Flow::Normal;

    case Stmt::K::DoWhile:
      do {
        const Flow fl = exec(*s.then_s, f);
        if (fl == Flow::Break) break;
        if (fl == Flow::Return) return fl;
      } while (eval(*s.e, f).truthy());
      return Flow::Normal;

    case Stmt::K::For: {
      if (s.init) exec(*s.init, f);
      while (s.e == nullptr || eval(*s.e, f).truthy()) {
        const Flow fl = exec(*s.then_s, f);
        if (fl == Flow::Break) break;
        if (fl == Flow::Return) return fl;
        if (s.inc) eval(*s.inc, f);
      }
      return Flow::Normal;
    }

    case Stmt::K::Return:
      if (s.e) f.ret = eval(*s.e, f);
      f.returned = true;
      return Flow::Return;
    case Stmt::K::Break: return Flow::Break;
    case Stmt::K::Continue: return Flow::Continue;
  }
  return Flow::Normal;
}

// ---------------------------------------------------------------------------
// lvalues
// ---------------------------------------------------------------------------

std::uint8_t* Interp::lvalue(const Expr& e, Frame& f, Type& t) {
  switch (e.k) {
    case Expr::K::VarRef: {
      Value& slot = f.slots[static_cast<std::size_t>(e.slot)];
      t = e.type;
      if (e.type.kind == Kind::Struct)
        return static_cast<std::uint8_t*>(slot.ptr());
      return slot.raw;
    }
    case Expr::K::Index: {
      const Value base = eval(*e.a, f);
      const Value idx = eval(*e.b, f);
      auto* p = base.bytes_ptr();
      if (p == nullptr) interp_fail("null pointer subscript", e.line);
      t = e.type;
      return p + idx.elem_i() *
                     static_cast<std::int64_t>(ptr_stride(base.type, mod_.structs));
    }
    case Expr::K::Member: {
      Type bt;
      std::uint8_t* base = lvalue(*e.a, f, bt);
      if (e.member_index >= 0) {
        const auto& sd = mod_.structs[static_cast<std::size_t>(bt.struct_id)];
        const auto& fld = sd.fields[static_cast<std::size_t>(e.member_index)];
        t = fld.type;
        return base + fld.offset;
      }
      // swizzle lvalue: single component only
      if (e.swizzle_len != 1)
        interp_fail("cannot assign to a multi-component swizzle", e.line);
      t = e.type;
      return base + e.swizzle[0] * scalar_size(bt.kind);
    }
    case Expr::K::Unary:
      if (e.op == Tok::Star) {
        const Value p = eval(*e.a, f);
        if (p.ptr() == nullptr) interp_fail("null pointer dereference", e.line);
        t = e.type;
        return p.bytes_ptr();
      }
      break;
    default: break;
  }
  interp_fail("expression is not an lvalue", e.line);
}

// ---------------------------------------------------------------------------
// expressions
// ---------------------------------------------------------------------------

Value binary_op(Tok op, const Value& a, const Value& b, const Type& rt,
                int line, const std::vector<StructDef>& structs) {
  // pointer arithmetic
  if (a.type.kind == Kind::Pointer || b.type.kind == Kind::Pointer) {
    if (op == Tok::Minus && a.type.kind == Kind::Pointer &&
        b.type.kind == Kind::Pointer) {
      const auto stride =
          static_cast<std::int64_t>(ptr_stride(a.type, structs));
      return Value::of_i64((a.bytes_ptr() - b.bytes_ptr()) / stride);
    }
    // comparisons on pointers
    switch (op) {
      case Tok::EqEq: return Value::of_i32(a.ptr() == b.ptr() ? 1 : 0);
      case Tok::NotEq: return Value::of_i32(a.ptr() != b.ptr() ? 1 : 0);
      case Tok::Lt: return Value::of_i32(a.bytes_ptr() < b.bytes_ptr() ? 1 : 0);
      case Tok::Gt: return Value::of_i32(a.bytes_ptr() > b.bytes_ptr() ? 1 : 0);
      case Tok::Le: return Value::of_i32(a.bytes_ptr() <= b.bytes_ptr() ? 1 : 0);
      case Tok::Ge: return Value::of_i32(a.bytes_ptr() >= b.bytes_ptr() ? 1 : 0);
      default: break;
    }
    const Value& pv = a.type.kind == Kind::Pointer ? a : b;
    const Value& iv = a.type.kind == Kind::Pointer ? b : a;
    std::int64_t off = iv.elem_i();
    if (op == Tok::Minus) off = -off;
    const auto stride =
        static_cast<std::int64_t>(ptr_stride(pv.type, structs));
    return Value::of_ptr(pv.type, pv.bytes_ptr() + off * stride);
  }

  // comparisons: promote to a common arithmetic type, compare element 0
  switch (op) {
    case Tok::EqEq:
    case Tok::NotEq:
    case Tok::Lt:
    case Tok::Gt:
    case Tok::Le:
    case Tok::Ge: {
      const bool fp = is_float(a.type.kind) || is_float(b.type.kind);
      bool r = false;
      if (fp) {
        const double x = a.elem_f();
        const double y = b.elem_f();
        switch (op) {
          case Tok::EqEq: r = x == y; break;
          case Tok::NotEq: r = x != y; break;
          case Tok::Lt: r = x < y; break;
          case Tok::Gt: r = x > y; break;
          case Tok::Le: r = x <= y; break;
          default: r = x >= y; break;
        }
      } else {
        const bool both_signed =
            is_signed_int(a.type.kind) && is_signed_int(b.type.kind);
        if (both_signed) {
          const std::int64_t x = a.elem_i();
          const std::int64_t y = b.elem_i();
          switch (op) {
            case Tok::EqEq: r = x == y; break;
            case Tok::NotEq: r = x != y; break;
            case Tok::Lt: r = x < y; break;
            case Tok::Gt: r = x > y; break;
            case Tok::Le: r = x <= y; break;
            default: r = x >= y; break;
          }
        } else {
          const std::uint64_t x = a.elem_u();
          const std::uint64_t y = b.elem_u();
          switch (op) {
            case Tok::EqEq: r = x == y; break;
            case Tok::NotEq: r = x != y; break;
            case Tok::Lt: r = x < y; break;
            case Tok::Gt: r = x > y; break;
            case Tok::Le: r = x <= y; break;
            default: r = x >= y; break;
          }
        }
      }
      return Value::of_i32(r ? 1 : 0);
    }
    case Tok::AmpAmp:
      return Value::of_i32(a.truthy() && b.truthy() ? 1 : 0);
    case Tok::PipePipe:
      return Value::of_i32(a.truthy() || b.truthy() ? 1 : 0);
    default: break;
  }

  // arithmetic / bitwise: convert both operands to the result type, apply
  // element-wise with exact-width wrap-around on store
  const Value ca = convert(a, rt);
  const Value cb = convert(b, rt);
  Value r(rt);
  const unsigned bits = static_cast<unsigned>(scalar_size(rt.kind)) * 8;
  for (unsigned i = 0; i < rt.vec; ++i) {
    if (is_float(rt.kind)) {
      const double x = ca.elem_f(i);
      const double y = cb.elem_f(i);
      double v = 0;
      switch (op) {
        case Tok::Plus: v = x + y; break;
        case Tok::Minus: v = x - y; break;
        case Tok::Star: v = x * y; break;
        case Tok::Slash: v = x / y; break;
        default: interp_fail("invalid float operator", line);
      }
      r.set_elem_f(i, v);
    } else {
      const std::uint64_t x = ca.elem_u(i);
      const std::uint64_t y = cb.elem_u(i);
      std::uint64_t v = 0;
      switch (op) {
        case Tok::Plus: v = x + y; break;
        case Tok::Minus: v = x - y; break;
        case Tok::Star: v = x * y; break;
        case Tok::Slash:
          if (y == 0) interp_fail("integer division by zero", line);
          if (is_signed_int(rt.kind))
            v = static_cast<std::uint64_t>(ca.elem_i(i) / cb.elem_i(i));
          else
            v = x / y;
          break;
        case Tok::Percent:
          if (y == 0) interp_fail("integer modulo by zero", line);
          if (is_signed_int(rt.kind))
            v = static_cast<std::uint64_t>(ca.elem_i(i) % cb.elem_i(i));
          else
            v = x % y;
          break;
        case Tok::Amp: v = x & y; break;
        case Tok::Pipe: v = x | y; break;
        case Tok::Caret: v = x ^ y; break;
        case Tok::Shl: v = x << (y & (bits - 1)); break;
        case Tok::Shr:
          if (is_signed_int(rt.kind))
            v = static_cast<std::uint64_t>(ca.elem_i(i) >> (y & (bits - 1)));
          else
            v = x >> (y & (bits - 1));
          break;
        default: interp_fail("invalid integer operator", line);
      }
      r.set_elem_i(i, static_cast<std::int64_t>(v));
    }
  }
  return r;
}

Value Interp::eval_binary(Tok op, const Value& a, const Value& b, const Type& rt,
                          int line) {
  return binary_op(op, a, b, rt, line, mod_.structs);
}

Value Interp::call_user(const FuncDecl& fn, const Expr& e, Frame& f) {
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (std::size_t i = 0; i < e.args.size(); ++i) {
    Value v = eval(*e.args[i], f);
    const Type& pt = fn.params[i].type;
    if (pt.kind != Kind::Pointer && pt.kind != Kind::Struct &&
        pt.kind != Kind::Image2D && pt.kind != Kind::Image3D &&
        pt.kind != Kind::Sampler)
      v = convert(v, pt);
    args.push_back(v);
  }
  return run_function(fn, args);
}

Value Interp::eval(const Expr& e, Frame& f) {
  ++ctx_.ops;
  switch (e.k) {
    case Expr::K::IntLit: {
      Value v(e.type);
      v.set_elem_i(0, static_cast<std::int64_t>(e.int_val));
      return v;
    }
    case Expr::K::FloatLit: {
      Value v(e.type);
      v.set_elem_f(0, e.float_val);
      return v;
    }
    case Expr::K::VarRef: return f.slots[static_cast<std::size_t>(e.slot)];
    case Expr::K::Binary: {
      if (e.op == Tok::AmpAmp) {
        const Value a = eval(*e.a, f);
        if (!a.truthy()) return Value::of_i32(0);
        return Value::of_i32(eval(*e.b, f).truthy() ? 1 : 0);
      }
      if (e.op == Tok::PipePipe) {
        const Value a = eval(*e.a, f);
        if (a.truthy()) return Value::of_i32(1);
        return Value::of_i32(eval(*e.b, f).truthy() ? 1 : 0);
      }
      const Value a = eval(*e.a, f);
      const Value b = eval(*e.b, f);
      return eval_binary(e.op, a, b, e.type, e.line);
    }
    case Expr::K::Unary: {
      switch (e.op) {
        case Tok::Minus: {
          const Value a = eval(*e.a, f);
          Value zero(e.type);
          return eval_binary(Tok::Minus, zero, a, e.type, e.line);
        }
        case Tok::Bang: return Value::of_i32(eval(*e.a, f).truthy() ? 0 : 1);
        case Tok::Tilde: {
          const Value a = convert(eval(*e.a, f), e.type);
          Value r(e.type);
          for (unsigned i = 0; i < e.type.vec; ++i)
            r.set_elem_i(i, static_cast<std::int64_t>(~a.elem_u(i)));
          return r;
        }
        case Tok::Star: {
          const Value p = eval(*e.a, f);
          if (p.ptr() == nullptr)
            interp_fail("null pointer dereference", e.line);
          if (e.type.kind == Kind::Struct)
            return Value::of_ptr(e.type, p.ptr());
          return load_value(p.bytes_ptr(), e.type);
        }
        case Tok::Amp: {
          Type t;
          std::uint8_t* addr = lvalue(*e.a, f, t);
          return Value::of_ptr(e.type, addr);
        }
        default: interp_fail("bad unary operator", e.line);
      }
    }
    case Expr::K::Assign: {
      Type lt;
      std::uint8_t* addr = lvalue(*e.a, f, lt);
      Value rhs = eval(*e.b, f);
      if (e.op != Tok::Assign) {
        Tok base_op = Tok::End;
        switch (e.op) {
          case Tok::PlusAssign: base_op = Tok::Plus; break;
          case Tok::MinusAssign: base_op = Tok::Minus; break;
          case Tok::StarAssign: base_op = Tok::Star; break;
          case Tok::SlashAssign: base_op = Tok::Slash; break;
          case Tok::PercentAssign: base_op = Tok::Percent; break;
          case Tok::AmpAssign: base_op = Tok::Amp; break;
          case Tok::PipeAssign: base_op = Tok::Pipe; break;
          case Tok::CaretAssign: base_op = Tok::Caret; break;
          case Tok::ShlAssign: base_op = Tok::Shl; break;
          case Tok::ShrAssign: base_op = Tok::Shr; break;
          default: interp_fail("bad compound assignment", e.line);
        }
        const Value cur = load_value(addr, lt);
        if (lt.kind == Kind::Pointer) {
          rhs = eval_binary(base_op, cur, rhs, lt, e.line);
        } else {
          rhs = eval_binary(base_op, cur, rhs, lt, e.line);
        }
      }
      if (lt.kind == Kind::Struct) {
        std::memcpy(addr, rhs.ptr(), size_of(lt, mod_.structs));
        return rhs;
      }
      const Value conv = lt.kind == Kind::Pointer ? rhs : convert(rhs, lt);
      store_value(addr, conv);
      return conv;
    }
    case Expr::K::Cond:
      return eval(*e.a, f).truthy() ? convert(eval(*e.b, f), e.type)
                                    : convert(eval(*e.c, f), e.type);
    case Expr::K::Call: {
      if (e.callee != nullptr) return call_user(*e.callee, e, f);
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) args.push_back(eval(*a, f));
      return call_builtin(static_cast<Builtin>(e.builtin_id), args, ctx_);
    }
    case Expr::K::Index: {
      Type t;
      std::uint8_t* addr = lvalue(e, f, t);
      if (t.kind == Kind::Struct) return Value::of_ptr(t, addr);
      return load_value(addr, t);
    }
    case Expr::K::Member: {
      if (e.member_index >= 0) {
        Type t;
        std::uint8_t* addr = lvalue(e, f, t);
        if (t.kind == Kind::Struct) return Value::of_ptr(t, addr);
        return load_value(addr, t);
      }
      // swizzle read: evaluate the base as a value (works for rvalues too)
      const Value base = eval(*e.a, f);
      Value r(e.type);
      for (unsigned i = 0; i < e.swizzle_len; ++i) {
        if (is_float(base.type.kind))
          r.set_elem_f(i, base.elem_f(e.swizzle[i]));
        else
          r.set_elem_i(i, base.elem_i(e.swizzle[i]));
      }
      return r;
    }
    case Expr::K::Cast: {
      const Value v = eval(*e.a, f);
      return convert(v, e.type);
    }
    case Expr::K::VecLit: {
      Value r(e.type);
      if (e.args.size() == 1 && e.args[0]->type.vec == 1) {
        const Value v = convert(eval(*e.args[0], f), make_scalar(e.type.kind));
        for (unsigned i = 0; i < e.type.vec; ++i) {
          if (is_float(e.type.kind))
            r.set_elem_f(i, v.elem_f());
          else
            r.set_elem_i(i, v.elem_i());
        }
        return r;
      }
      unsigned out = 0;
      for (const auto& a : e.args) {
        const Value v = eval(*a, f);
        for (unsigned i = 0; i < v.type.vec; ++i, ++out) {
          if (is_float(e.type.kind))
            r.set_elem_f(out, v.elem_f(i));
          else
            r.set_elem_i(out, is_float(v.type.kind)
                                  ? static_cast<std::int64_t>(v.elem_f(i))
                                  : v.elem_i(i));
        }
      }
      return r;
    }
    case Expr::K::PreIncDec:
    case Expr::K::PostIncDec: {
      Type t;
      std::uint8_t* addr = lvalue(*e.a, f, t);
      const Value cur = load_value(addr, t);
      Value one = t.kind == Kind::Pointer ? Value::of_i32(1) : Value(t);
      if (t.kind != Kind::Pointer) {
        if (is_float(t.kind)) one.set_elem_f(0, 1.0);
        else one.set_elem_i(0, 1);
      }
      const Value next = eval_binary(e.op, cur, one, t, e.line);
      store_value(addr, t.kind == Kind::Pointer ? next : convert(next, t));
      return e.k == Expr::K::PreIncDec ? next : cur;
    }
  }
  interp_fail("unhandled expression", e.line);
}

// ---------------------------------------------------------------------------
// NDRange execution
// ---------------------------------------------------------------------------

namespace {

// Builds per-work-item argument Values.  The local arena layout is: first the
// kernel's static __local declarations (offsets assigned at parse time), then
// one 16-byte-aligned block per LocalAlloc argument.
struct ArgPlan {
  std::vector<std::size_t> local_offsets;  // per arg index (LocalAlloc only)
  std::size_t arena_bytes = 0;
  std::vector<ImageDesc> images;
  std::vector<SamplerDesc> samplers;
  std::vector<int> image_index;    // arg -> index into images
  std::vector<int> sampler_index;  // arg -> index into samplers
};

ArgPlan plan_args(const FuncDecl& kernel, std::span<const KernelArg> args) {
  ArgPlan plan;
  plan.local_offsets.assign(args.size(), 0);
  plan.image_index.assign(args.size(), -1);
  plan.sampler_index.assign(args.size(), -1);
  std::size_t off = (kernel.local_mem_bytes + 15) / 16 * 16;
  for (std::size_t i = 0; i < args.size(); ++i) {
    switch (args[i].k) {
      case KernelArg::K::LocalAlloc:
        plan.local_offsets[i] = off;
        off += (args[i].local_bytes + 15) / 16 * 16;
        break;
      case KernelArg::K::Image:
        plan.image_index[i] = static_cast<int>(plan.images.size());
        plan.images.push_back(args[i].image);
        break;
      case KernelArg::K::Sampler:
        plan.sampler_index[i] = static_cast<int>(plan.samplers.size());
        plan.samplers.push_back(args[i].sampler);
        break;
      default: break;
    }
  }
  plan.arena_bytes = off;
  return plan;
}

void build_arg_values(const FuncDecl& kernel, std::span<const KernelArg> args,
                      const ArgPlan& plan, std::uint8_t* arena,
                      std::vector<Value>& out) {
  out.clear();
  out.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const ParamInfo& p = kernel.params[i];
    const KernelArg& a = args[i];
    switch (a.k) {
      case KernelArg::K::Bytes:
        if (p.type.kind == Kind::Struct) {
          // run_function copies the bytes into frame storage
          Value v = Value::of_ptr(p.type, const_cast<std::uint8_t*>(a.bytes.data()));
          out.push_back(v);
        } else {
          out.push_back(load_value(a.bytes.data(), p.type));
        }
        break;
      case KernelArg::K::GlobalPtr:
        out.push_back(Value::of_ptr(p.type, a.ptr));
        break;
      case KernelArg::K::LocalAlloc:
        out.push_back(Value::of_ptr(p.type, arena + plan.local_offsets[i]));
        break;
      case KernelArg::K::Image: {
        Value v(p.type);
        const ImageDesc* d = &plan.images[static_cast<std::size_t>(plan.image_index[i])];
        std::memcpy(v.raw, &d, sizeof d);
        out.push_back(v);
        break;
      }
      case KernelArg::K::Sampler: {
        Value v(p.type);
        const SamplerDesc* d =
            &plan.samplers[static_cast<std::size_t>(plan.sampler_index[i])];
        std::memcpy(v.raw, &d, sizeof d);
        out.push_back(v);
        break;
      }
    }
  }
}

void set_item_ids(WorkItemCtx& ctx, const NDRange& nd, std::size_t group_lin,
                  std::size_t item_lin) {
  const std::size_t ng0 = nd.groups(0);
  const std::size_t ng1 = nd.groups(1);
  ctx.grp[0] = group_lin % ng0;
  ctx.grp[1] = (group_lin / ng0) % ng1;
  ctx.grp[2] = group_lin / (ng0 * ng1);
  ctx.lid[0] = item_lin % nd.local[0];
  ctx.lid[1] = (item_lin / nd.local[0]) % nd.local[1];
  ctx.lid[2] = item_lin / (nd.local[0] * nd.local[1]);
  for (int d = 0; d < 3; ++d)
    ctx.gid[d] = nd.offset[d] + ctx.grp[d] * nd.local[d] + ctx.lid[d];
}

// True if this work item lies inside the global range (ragged edge groups).
bool item_in_range(const WorkItemCtx& ctx, const NDRange& nd) {
  for (int d = 0; d < 3; ++d)
    if (ctx.gid[d] >= nd.offset[d] + nd.global[d]) return false;
  return true;
}

// Engine selection and dispatch accounting.  env_engine() reads CHECL_CLC_VM
// once; the counters feed checl::stats_json().
ExecEngine env_engine() noexcept {
  static const ExecEngine e = [] {
    const char* v = std::getenv("CHECL_CLC_VM");
    return v != nullptr && std::string_view(v) == "interp" ? ExecEngine::Interp
                                                           : ExecEngine::Vm;
  }();
  return e;
}

struct ExecCounters {
  std::atomic<std::uint64_t> vm_launches{0};
  std::atomic<std::uint64_t> interp_launches{0};
  std::atomic<std::uint64_t> vm_items{0};
  std::atomic<std::uint64_t> interp_items{0};
};
ExecCounters g_exec;

// The NDRange engine, parameterized over the per-thread work-item runner.
// `make(ctx)` builds one runner per host thread (an Interp or a Vm bound to
// that thread's WorkItemCtx); `runner(argv)` executes one work-item.
template <typename MakeRunner>
LaunchResult execute_ndrange_with(const Module& mod, const FuncDecl& kernel,
                                  std::span<const KernelArg> args,
                                  const NDRange& nd, const LaunchOptions& opts,
                                  MakeRunner make,
                                  std::atomic<std::uint64_t>& item_counter) {
  LaunchResult result;
  const ArgPlan plan = plan_args(kernel, args);
  const std::size_t total_groups = nd.total_groups();
  const std::size_t local_total = nd.local_total();

  std::atomic<std::uint64_t> total_ops{0};
  std::mutex err_mu;
  std::string first_error;
  std::atomic<bool> failed{false};

  auto record_error = [&](const InterpError& err) {
    std::lock_guard<std::mutex> lk(err_mu);
    if (first_error.empty()) {
      first_error = err.message;
      if (err.line > 0) first_error += " (kernel line " + std::to_string(err.line) + ")";
    }
    failed.store(true, std::memory_order_release);
  };

  if (!kernel.uses_barrier) {
    // Serial work-items per group; groups striped across host threads.
    unsigned nthreads = opts.max_threads != 0
                            ? opts.max_threads
                            : std::max(1u, std::thread::hardware_concurrency());
    nthreads = static_cast<unsigned>(
        std::min<std::size_t>(nthreads, std::max<std::size_t>(total_groups, 1)));
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) {
      threads.emplace_back([&, t] {
        std::vector<std::uint8_t> arena(plan.arena_bytes);
        WorkItemCtx ctx;
        ctx.nd = &nd;
        ctx.mod = &mod;
        ctx.local_base = arena.data();
        auto runner = make(ctx);
        std::uint64_t items = 0;
        std::vector<Value> argv;
        for (std::size_t g = t; g < total_groups && !failed.load(std::memory_order_acquire);
             g += nthreads) {
          for (std::size_t li = 0; li < local_total; ++li) {
            set_item_ids(ctx, nd, g, li);
            if (!item_in_range(ctx, nd)) continue;
            build_arg_values(kernel, args, plan, arena.data(), argv);
            ++items;
            try {
              runner(argv);
            } catch (const InterpError& err) {
              record_error(err);
              break;
            }
          }
        }
        total_ops.fetch_add(ctx.ops, std::memory_order_relaxed);
        item_counter.fetch_add(items, std::memory_order_relaxed);
      });
    }
    for (auto& th : threads) th.join();
  } else {
    // Lockstep: one thread per work-item slot, shared arena, barrier sync.
    std::vector<std::uint8_t> arena(plan.arena_bytes);
    std::barrier bar(static_cast<std::ptrdiff_t>(local_total));
    std::vector<std::thread> threads;
    threads.reserve(local_total);
    for (std::size_t li = 0; li < local_total; ++li) {
      threads.emplace_back([&, li] {
        WorkItemCtx ctx;
        ctx.nd = &nd;
        ctx.mod = &mod;
        ctx.local_base = arena.data();
        ctx.bar = &bar;
        auto runner = make(ctx);
        std::uint64_t items = 0;
        std::vector<Value> argv;
        for (std::size_t g = 0; g < total_groups; ++g) {
          set_item_ids(ctx, nd, g, li);
          if (item_in_range(ctx, nd) && !failed.load(std::memory_order_acquire)) {
            build_arg_values(kernel, args, plan, arena.data(), argv);
            ++items;
            try {
              runner(argv);
            } catch (const InterpError& err) {
              record_error(err);
              total_ops.fetch_add(ctx.ops, std::memory_order_relaxed);
              item_counter.fetch_add(items, std::memory_order_relaxed);
              bar.arrive_and_drop();
              return;
            }
          }
          // group boundary: everyone syncs before the arena is reused
          bar.arrive_and_wait();
        }
        total_ops.fetch_add(ctx.ops, std::memory_order_relaxed);
        item_counter.fetch_add(items, std::memory_order_relaxed);
      });
    }
    for (auto& th : threads) th.join();
  }

  result.ops = total_ops.load(std::memory_order_relaxed);
  if (failed.load(std::memory_order_acquire)) {
    result.ok = false;
    result.error = first_error;
  }
  return result;
}

}  // namespace

int func_index(const Module& mod, const FuncDecl& fn) noexcept {
  for (std::size_t i = 0; i < mod.funcs.size(); ++i)
    if (mod.funcs[i].get() == &fn) return static_cast<int>(i);
  return -1;
}

ExecStats exec_stats() noexcept {
  ExecStats s;
  s.vm_launches = g_exec.vm_launches.load(std::memory_order_relaxed);
  s.interp_launches = g_exec.interp_launches.load(std::memory_order_relaxed);
  s.vm_items = g_exec.vm_items.load(std::memory_order_relaxed);
  s.interp_items = g_exec.interp_items.load(std::memory_order_relaxed);
  return s;
}

void reset_exec_stats() noexcept {
  g_exec.vm_launches.store(0, std::memory_order_relaxed);
  g_exec.interp_launches.store(0, std::memory_order_relaxed);
  g_exec.vm_items.store(0, std::memory_order_relaxed);
  g_exec.interp_items.store(0, std::memory_order_relaxed);
}

LaunchResult execute_ndrange(const Module& mod, const FuncDecl& kernel,
                             std::span<const KernelArg> args, const NDRange& nd,
                             const LaunchOptions& opts) {
  LaunchResult result;
  if (args.size() != kernel.params.size()) {
    result.ok = false;
    result.error = "kernel '" + kernel.name + "' expects " +
                   std::to_string(kernel.params.size()) + " args, got " +
                   std::to_string(args.size());
    return result;
  }

  const int kidx = func_index(mod, kernel);
  const bool can_vm = mod.bc != nullptr && kidx >= 0 &&
                      static_cast<std::size_t>(kidx) < mod.bc->funcs.size();
  const bool can_interp = kernel.body != nullptr;
  ExecEngine eng = opts.engine == ExecEngine::Auto ? env_engine() : opts.engine;
  // Fall back across engines rather than fail: hand-built modules have no
  // bytecode, cache-deserialized modules have no AST bodies.
  if (eng == ExecEngine::Vm && !can_vm) eng = ExecEngine::Interp;
  if (eng == ExecEngine::Interp && !can_interp && can_vm) eng = ExecEngine::Vm;
  if (eng == ExecEngine::Interp && !can_interp) {
    result.ok = false;
    result.error = "kernel '" + kernel.name + "' has no executable body";
    return result;
  }

  if (eng == ExecEngine::Vm) {
    g_exec.vm_launches.fetch_add(1, std::memory_order_relaxed);
    return execute_ndrange_with(
        mod, kernel, args, nd, opts,
        [&mod, kidx](WorkItemCtx& ctx) {
          return [vm = std::make_shared<Vm>(mod, ctx),
                  kidx](std::span<const Value> argv) {
            vm->run_kernel(static_cast<std::size_t>(kidx), argv);
          };
        },
        g_exec.vm_items);
  }
  g_exec.interp_launches.fetch_add(1, std::memory_order_relaxed);
  return execute_ndrange_with(
      mod, kernel, args, nd, opts,
      [&mod, &kernel](WorkItemCtx& ctx) {
        return [interp = std::make_shared<Interp>(mod, ctx),
                &kernel](std::span<const Value> argv) {
          interp->run_function(kernel, argv);
        };
      },
      g_exec.interp_items);
}

}  // namespace clc
