#include "clc/bytecode.h"

#include <cstring>
#include <utility>

#include "clc/builtins.h"
#include "clc/interp.h"

namespace clc {

namespace {

// ---------------------------------------------------------------------------
// AST -> bytecode
// ---------------------------------------------------------------------------

class Compiler {
 public:
  explicit Compiler(const Module& mod) : mod_(mod) {
    bc_.types.push_back(Type{});  // index 0: Void
  }

  std::shared_ptr<BytecodeModule> run() {
    for (const auto& f : mod_.funcs) bc_.funcs.push_back(compile_func(*f));
    return std::make_shared<BytecodeModule>(std::move(bc_));
  }

 private:
  struct Loop {
    std::vector<std::size_t> breaks;  // Jump insns to patch to loop end
    std::vector<std::size_t> conts;   // Jump insns to patch to continue target
  };

  // -- pools ---------------------------------------------------------------

  // True when evaluating `e` cannot write a variable slot or memory, so a
  // slot-resident operand read before `e` (in the interpreter's
  // left-to-right order) still holds the same value after it.  Conservative:
  // calls, assignments and inc/dec — and anything containing them — are
  // impure.
  static bool pure_expr(const Expr& e) {
    switch (e.k) {
      case Expr::K::IntLit:
      case Expr::K::FloatLit:
      case Expr::K::VarRef:
        return true;
      case Expr::K::Unary:
      case Expr::K::Cast:
      case Expr::K::Member:
        return pure_expr(*e.a);
      case Expr::K::Binary:
      case Expr::K::Index:
        return pure_expr(*e.a) && pure_expr(*e.b);
      case Expr::K::Cond:
        return pure_expr(*e.a) && pure_expr(*e.b) && pure_expr(*e.c);
      case Expr::K::VecLit:
        for (const auto& a : e.args)
          if (!pure_expr(*a)) return false;
        return true;
      default:
        return false;
    }
  }

  // Operand peephole: a plain variable reference is already slot-resident,
  // so ops that take arbitrary source registers can read the slot directly
  // instead of paying a Move into a temp.  Only legal for an operand the
  // consuming op reads immediately after its (virtual) evaluation point —
  // the caller vouches that nothing impure runs in between.
  std::uint16_t operand_reg(const Expr& e) {
    if (e.k == Expr::K::VarRef) return static_cast<std::uint16_t>(e.slot);
    const std::uint16_t t = push();
    gen_expr(e, t);
    return t;
  }

  // Conversion peephole: convert() to the value's own type is the identity
  // (value.cpp returns `v` verbatim), so when the source register's static
  // type already equals the target, a plain Move — or nothing at all when
  // src == dst — is bit-identical to the Conv and skips the per-element
  // conversion loop at run time.
  void emit_conv(std::uint16_t dst, std::uint16_t src, const Type& from,
                 const Type& to, std::int32_t line) {
    if (from == to) {
      if (dst != src) emit({BOp::Move, 0, dst, src, 0, 0, 0, line});
      return;
    }
    emit({BOp::Conv, 0, dst, src, 0, type_idx(to), 0, line});
  }

  std::uint32_t type_idx(const Type& t) {
    for (std::size_t i = 0; i < bc_.types.size(); ++i)
      if (bc_.types[i] == t) return static_cast<std::uint32_t>(i);
    bc_.types.push_back(t);
    return static_cast<std::uint32_t>(bc_.types.size() - 1);
  }

  std::uint32_t const_idx(const Value& v) {
    for (std::size_t i = 0; i < bc_.consts.size(); ++i)
      if (bc_.consts[i].type == v.type &&
          std::memcmp(bc_.consts[i].raw, v.raw, sizeof v.raw) == 0)
        return static_cast<std::uint32_t>(i);
    bc_.consts.push_back(v);
    return static_cast<std::uint32_t>(bc_.consts.size() - 1);
  }

  std::uint32_t str_idx(std::string s) {
    for (std::size_t i = 0; i < bc_.strings.size(); ++i)
      if (bc_.strings[i] == s) return static_cast<std::uint32_t>(i);
    bc_.strings.push_back(std::move(s));
    return static_cast<std::uint32_t>(bc_.strings.size() - 1);
  }

  // -- registers -----------------------------------------------------------

  std::uint16_t push() {
    const std::uint32_t r = temp_top_++;
    if (temp_top_ > max_regs_) max_regs_ = temp_top_;
    if (temp_top_ > 0xFFFFu) overflow_ = true;
    return static_cast<std::uint16_t>(r);
  }

  // -- emission ------------------------------------------------------------

  std::size_t emit(BInsn i) {
    code_.push_back(i);
    return code_.size() - 1;
  }
  std::size_t emit_jump(BOp op, std::uint16_t a = 0, int line = 0) {
    return emit({op, 0, a, 0, 0, 0, 0, line});
  }
  void patch(std::size_t at, std::size_t target) {
    code_[at].imm = static_cast<std::uint32_t>(target);
  }
  std::size_t here() const { return code_.size(); }

  void emit_fail(std::string msg, int line) {
    emit({BOp::Fail, 0, 0, 0, 0, 0, str_idx(std::move(msg)), line});
  }

  // -- function ------------------------------------------------------------

  BcFunc compile_func(const FuncDecl& fn) {
    code_.clear();
    loops_.clear();
    temp_top_ = static_cast<std::uint32_t>(fn.num_slots);
    max_regs_ = temp_top_;
    overflow_ = false;

    if (fn.body) gen_stmt(*fn.body);

    // Epilogue: falling off the end (including stray break/continue, which
    // the interpreter lets bubble out of the body) is a plain return for
    // void functions and the interpreter's missing-return fault otherwise.
    const std::size_t epilogue = here();
    for (std::size_t at : stray_) patch(at, epilogue);
    stray_.clear();
    if (fn.ret.kind == Kind::Void) {
      emit({BOp::RetVoid, 0, 0, 0, 0, 0, 0, 0});
    } else {
      emit_fail("function '" + fn.name + "' did not return a value", 0);
    }

    BcFunc out;
    if (overflow_) {
      // Practically unreachable: a function needing >64k registers.  Keep
      // the promise that corrupt code is never executed by replacing the
      // body with a fault.
      code_.clear();
      emit_fail("function '" + fn.name + "' too large for bytecode", 0);
      out.num_regs = static_cast<std::uint32_t>(fn.num_slots) + 1;
    } else {
      out.num_regs = max_regs_;
    }
    out.code = std::move(code_);
    return out;
  }

  // -- statements ----------------------------------------------------------

  void gen_stmt(const Stmt& s) {
    switch (s.k) {
      case Stmt::K::ExprStmt:
        if (s.e) {
          const std::uint32_t mark = temp_top_;
          const std::uint16_t t = push();
          gen_expr(*s.e, t);
          temp_top_ = mark;
        }
        return;

      case Stmt::K::Decl:
        gen_decl(s);
        return;

      case Stmt::K::Block:
        for (const auto& st : s.body) gen_stmt(*st);
        return;

      case Stmt::K::If: {
        const std::uint32_t mark = temp_top_;
        const std::uint16_t c = push();
        gen_expr(*s.e, c);
        const std::size_t jz = emit_jump(BOp::Jz, c, s.line);
        temp_top_ = mark;
        gen_stmt(*s.then_s);
        if (s.else_s) {
          const std::size_t jend = emit_jump(BOp::Jump);
          patch(jz, here());
          gen_stmt(*s.else_s);
          patch(jend, here());
        } else {
          patch(jz, here());
        }
        return;
      }

      case Stmt::K::While: {
        const std::size_t top = here();
        const std::uint32_t mark = temp_top_;
        const std::uint16_t c = push();
        gen_expr(*s.e, c);
        const std::size_t jz = emit_jump(BOp::Jz, c, s.line);
        temp_top_ = mark;
        loops_.emplace_back();
        gen_stmt(*s.then_s);
        patch(emit_jump(BOp::Jump), top);
        close_loop(here(), top);
        patch(jz, here());
        return;
      }

      case Stmt::K::DoWhile: {
        const std::size_t top = here();
        loops_.emplace_back();
        gen_stmt(*s.then_s);
        const std::size_t cond_at = here();
        const std::uint32_t mark = temp_top_;
        const std::uint16_t c = push();
        gen_expr(*s.e, c);
        emit({BOp::Jnz, 0, c, 0, 0, 0, static_cast<std::uint32_t>(top), s.line});
        temp_top_ = mark;
        close_loop(here(), cond_at);
        return;
      }

      case Stmt::K::For: {
        if (s.init) gen_stmt(*s.init);
        const std::size_t top = here();
        std::size_t jz = SIZE_MAX;
        if (s.e) {
          const std::uint32_t mark = temp_top_;
          const std::uint16_t c = push();
          gen_expr(*s.e, c);
          jz = emit_jump(BOp::Jz, c, s.line);
          temp_top_ = mark;
        }
        loops_.emplace_back();
        gen_stmt(*s.then_s);
        const std::size_t inc_at = here();
        if (s.inc) {
          const std::uint32_t mark = temp_top_;
          const std::uint16_t t = push();
          gen_expr(*s.inc, t);
          temp_top_ = mark;
        }
        patch(emit_jump(BOp::Jump), top);
        close_loop(here(), inc_at);
        if (jz != SIZE_MAX) patch(jz, here());
        return;
      }

      case Stmt::K::Return:
        if (s.e) {
          const std::uint32_t mark = temp_top_;
          const std::uint16_t t = push();
          gen_expr(*s.e, t);
          emit({BOp::Ret, 0, t, 0, 0, 0, 0, s.line});
          temp_top_ = mark;
        } else {
          emit({BOp::RetVoid, 0, 0, 0, 0, 0, 0, s.line});
        }
        return;

      case Stmt::K::Break:
        if (loops_.empty())
          stray_.push_back(emit_jump(BOp::Jump));
        else
          loops_.back().breaks.push_back(emit_jump(BOp::Jump));
        return;

      case Stmt::K::Continue:
        if (loops_.empty())
          stray_.push_back(emit_jump(BOp::Jump));
        else
          loops_.back().conts.push_back(emit_jump(BOp::Jump));
        return;
    }
  }

  void close_loop(std::size_t break_target, std::size_t cont_target) {
    Loop l = std::move(loops_.back());
    loops_.pop_back();
    for (std::size_t at : l.breaks) patch(at, break_target);
    for (std::size_t at : l.conts) patch(at, cont_target);
  }

  void gen_decl(const Stmt& s) {
    const auto slot = static_cast<std::uint16_t>(s.slot);
    if (s.local_id >= 0) {
      emit({BOp::LocalPtr, 0, slot, 0, 0, type_idx(local_ptr_type(s.decl_type)),
            static_cast<std::uint32_t>(s.local_offset), s.line});
      return;
    }
    if (s.array_len > 0) {
      const std::size_t sz = size_of(s.decl_type, mod_.structs) *
                             static_cast<std::size_t>(s.array_len);
      const Type pt =
          s.decl_type.kind == Kind::Struct
              ? make_ptr(Kind::Struct, 1, AddrSpace::Private, s.decl_type.struct_id)
              : make_ptr(s.decl_type.kind, s.decl_type.vec, AddrSpace::Private);
      emit({BOp::Alloca, 0, slot, 0, 0, type_idx(pt),
            static_cast<std::uint32_t>(sz), s.line});
      return;
    }
    if (s.decl_type.kind == Kind::Struct) {
      const std::size_t sz = size_of(s.decl_type, mod_.structs);
      emit({BOp::Alloca, 0, slot, 0, 0, type_idx(s.decl_type),
            static_cast<std::uint32_t>(sz), s.line});
      if (s.e) {
        const std::uint32_t mark = temp_top_;
        const std::uint16_t t = push();
        gen_expr(*s.e, t);
        emit({BOp::CopyMem, 0, slot, t, 0, 0, static_cast<std::uint32_t>(sz),
              s.line});
        temp_top_ = mark;
      }
      return;
    }
    emit({BOp::ZeroInit, 0, slot, 0, 0, type_idx(s.decl_type), 0, s.line});
    if (s.e) {
      const std::uint32_t mark = temp_top_;
      const std::uint16_t t = push();
      gen_expr(*s.e, t);
      emit_conv(slot, t, s.e->type, s.decl_type, s.line);
      temp_top_ = mark;
    }
  }

  // -- lvalues -------------------------------------------------------------

  // Emits code leaving the lvalue's address (a pointer Value) in a fresh
  // temp; returns {temp, value type at that address} — the static analogue of
  // Interp::lvalue.
  std::pair<std::uint16_t, Type> gen_addr(const Expr& e) {
    switch (e.k) {
      case Expr::K::VarRef: {
        const std::uint16_t t = push();
        const auto slot = static_cast<std::uint16_t>(e.slot);
        if (e.type.kind == Kind::Struct)
          emit({BOp::AddrOf, 0, t, slot, 0, type_idx(e.type), 0, e.line});
        else
          emit({BOp::AddrSlot, 0, t, slot, 0, type_idx(e.type), 0, e.line});
        return {t, e.type};
      }
      case Expr::K::Index: {
        const std::uint16_t base = push();
        std::uint16_t pbase = base;
        // A pointer-typed variable base can be read straight from its slot
        // when the index is pure (nothing can rebind the slot before the
        // AddrIndex consumes it); the index itself is consumed immediately.
        if (e.a->k == Expr::K::VarRef && e.a->type.kind == Kind::Pointer &&
            pure_expr(*e.b))
          pbase = static_cast<std::uint16_t>(e.a->slot);
        else
          gen_expr(*e.a, base);
        const std::uint32_t mark = temp_top_;
        const std::uint16_t idx = operand_reg(*e.b);
        emit({BOp::AddrIndex, 0, base, pbase, idx, type_idx(e.type),
              static_cast<std::uint32_t>(ptr_stride(e.a->type, mod_.structs)),
              e.line});
        temp_top_ = mark;
        return {base, e.type};
      }
      case Expr::K::Member: {
        auto [base, bt] = gen_addr(*e.a);
        if (e.member_index >= 0) {
          const auto& sd = mod_.structs[static_cast<std::size_t>(bt.struct_id)];
          const auto& fld = sd.fields[static_cast<std::size_t>(e.member_index)];
          emit({BOp::AddrOff, 0, base, base, 0, type_idx(fld.type),
                static_cast<std::uint32_t>(fld.offset), e.line});
          return {base, fld.type};
        }
        if (e.swizzle_len != 1) {
          emit_fail("cannot assign to a multi-component swizzle", e.line);
          return {base, e.type};
        }
        emit({BOp::AddrOff, 0, base, base, 0, type_idx(e.type),
              static_cast<std::uint32_t>(e.swizzle[0] * scalar_size(bt.kind)),
              e.line});
        return {base, e.type};
      }
      case Expr::K::Unary:
        if (e.op == Tok::Star) {
          const std::uint16_t t = push();
          gen_expr(*e.a, t);
          emit({BOp::CheckNull, 0, t, 0, 0, 0,
                str_idx("null pointer dereference"), e.line});
          return {t, e.type};
        }
        break;
      default:
        break;
    }
    emit_fail("expression is not an lvalue", e.line);
    return {push(), e.type};
  }

  // -- expressions ---------------------------------------------------------

  // Emits code computing e into register dst.  Temps allocated internally
  // are released before returning.
  void gen_expr(const Expr& e, std::uint16_t dst) {
    const std::uint32_t mark = temp_top_;
    gen_expr_inner(e, dst);
    temp_top_ = mark;
  }

  void gen_expr_inner(const Expr& e, std::uint16_t dst) {
    switch (e.k) {
      case Expr::K::IntLit: {
        Value v(e.type);
        v.set_elem_i(0, static_cast<std::int64_t>(e.int_val));
        emit({BOp::Const, 0, dst, 0, 0, 0, const_idx(v), e.line});
        return;
      }
      case Expr::K::FloatLit: {
        Value v(e.type);
        v.set_elem_f(0, e.float_val);
        emit({BOp::Const, 0, dst, 0, 0, 0, const_idx(v), e.line});
        return;
      }
      case Expr::K::VarRef:
        emit({BOp::Move, 0, dst, static_cast<std::uint16_t>(e.slot), 0, 0, 0,
              e.line});
        return;

      case Expr::K::Binary: {
        if (e.op == Tok::AmpAmp || e.op == Tok::PipePipe) {
          gen_expr(*e.a, dst);
          const std::size_t jshort = emit_jump(
              e.op == Tok::AmpAmp ? BOp::Jz : BOp::Jnz, dst, e.line);
          gen_expr(*e.b, dst);
          emit({BOp::Truthy, 0, dst, dst, 0, 0, 0, e.line});
          const std::size_t jend = emit_jump(BOp::Jump);
          patch(jshort, here());
          emit({BOp::Const, 0, dst, 0, 0, 0,
                const_idx(Value::of_i32(e.op == Tok::AmpAmp ? 0 : 1)), e.line});
          patch(jend, here());
          return;
        }
        // Both operands may come straight from variable slots: the rhs is
        // consumed immediately, and the lhs slot is only reused when the rhs
        // is pure (so its value at Bin time equals its value at the lhs's
        // left-to-right evaluation point).
        std::uint16_t ra = dst;
        if (e.a->k == Expr::K::VarRef && pure_expr(*e.b))
          ra = static_cast<std::uint16_t>(e.a->slot);
        else
          gen_expr(*e.a, dst);
        const std::uint16_t rb = operand_reg(*e.b);
        emit({BOp::Bin, static_cast<std::uint8_t>(e.op), dst, ra, rb,
              type_idx(e.type), 0, e.line});
        return;
      }

      case Expr::K::Unary:
        switch (e.op) {
          case Tok::Minus:
            gen_expr(*e.a, dst);
            emit({BOp::Neg, 0, dst, dst, 0, type_idx(e.type), 0, e.line});
            return;
          case Tok::Bang:
            gen_expr(*e.a, dst);
            emit({BOp::Not, 0, dst, dst, 0, 0, 0, e.line});
            return;
          case Tok::Tilde:
            gen_expr(*e.a, dst);
            emit({BOp::BitNot, 0, dst, dst, 0, type_idx(e.type), 0, e.line});
            return;
          case Tok::Star:
            gen_expr(*e.a, dst);
            emit({BOp::CheckNull, 0, dst, 0, 0, 0,
                  str_idx("null pointer dereference"), e.line});
            emit({BOp::Load, 0, dst, dst, 0, type_idx(e.type), 0, e.line});
            return;
          case Tok::Amp: {
            const auto [addr, lt] = gen_addr(*e.a);
            (void)lt;
            emit({BOp::AddrOf, 0, dst, addr, 0, type_idx(e.type), 0, e.line});
            return;
          }
          default:
            emit_fail("bad unary operator", e.line);
            return;
        }

      case Expr::K::Assign: {
        const auto [addr, lt] = gen_addr(*e.a);
        gen_expr(*e.b, dst);
        if (e.op != Tok::Assign) {
          Tok base_op = Tok::End;
          switch (e.op) {
            case Tok::PlusAssign: base_op = Tok::Plus; break;
            case Tok::MinusAssign: base_op = Tok::Minus; break;
            case Tok::StarAssign: base_op = Tok::Star; break;
            case Tok::SlashAssign: base_op = Tok::Slash; break;
            case Tok::PercentAssign: base_op = Tok::Percent; break;
            case Tok::AmpAssign: base_op = Tok::Amp; break;
            case Tok::PipeAssign: base_op = Tok::Pipe; break;
            case Tok::CaretAssign: base_op = Tok::Caret; break;
            case Tok::ShlAssign: base_op = Tok::Shl; break;
            case Tok::ShrAssign: base_op = Tok::Shr; break;
            default: emit_fail("bad compound assignment", e.line); return;
          }
          const std::uint16_t cur = push();
          emit({BOp::Load, 0, cur, addr, 0, type_idx(lt), 0, e.line});
          emit({BOp::Bin, static_cast<std::uint8_t>(base_op), dst, cur, dst,
                type_idx(lt), 0, e.line});
        }
        if (lt.kind == Kind::Struct) {
          emit({BOp::CopyMem, 0, addr, dst, 0, 0,
                static_cast<std::uint32_t>(size_of(lt, mod_.structs)), e.line});
          return;  // result is the (unconverted) rhs, already in dst
        }
        if (lt.kind != Kind::Pointer) {
          // A compound op's Bin already produced exactly `lt` (binary_op's
          // arithmetic path returns the requested result type), so its Conv
          // is the identity — unless the rhs dragged in pointer arithmetic,
          // which yields a pointer regardless of the result type.
          if (e.op == Tok::Assign)
            emit_conv(dst, dst, e.b->type, lt, e.line);
          else if (e.b->type.kind == Kind::Pointer)
            emit({BOp::Conv, 0, dst, dst, 0, type_idx(lt), 0, e.line});
        }
        emit({BOp::Store, 0, addr, dst, 0, 0, 0, e.line});
        return;
      }

      case Expr::K::Cond: {
        gen_expr(*e.a, dst);
        const std::size_t jz = emit_jump(BOp::Jz, dst, e.line);
        gen_expr(*e.b, dst);
        emit_conv(dst, dst, e.b->type, e.type, e.line);
        const std::size_t jend = emit_jump(BOp::Jump);
        patch(jz, here());
        gen_expr(*e.c, dst);
        emit_conv(dst, dst, e.c->type, e.type, e.line);
        patch(jend, here());
        return;
      }

      case Expr::K::Call: {
        const auto n = static_cast<std::uint16_t>(e.args.size());
        const std::uint16_t w = static_cast<std::uint16_t>(temp_top_);
        for (const auto& a : e.args) {
          const std::uint16_t r = push();
          gen_expr(*a, r);
        }
        if (e.callee != nullptr) {
          for (std::size_t i = 0; i < e.args.size(); ++i) {
            const Type& pt = e.callee->params[i].type;
            if (pt.kind != Kind::Pointer && pt.kind != Kind::Struct &&
                pt.kind != Kind::Image2D && pt.kind != Kind::Image3D &&
                pt.kind != Kind::Sampler)
              emit_conv(static_cast<std::uint16_t>(w + i),
                        static_cast<std::uint16_t>(w + i), e.args[i]->type,
                        pt, e.line);
          }
          const int fidx = func_index(mod_, *e.callee);
          emit({BOp::CallUser, 0, dst, w, n, 0,
                static_cast<std::uint32_t>(fidx), e.line});
        } else {
          emit({BOp::CallBuiltin, 0, dst, w, n, 0,
                static_cast<std::uint32_t>(e.builtin_id), e.line});
        }
        return;
      }

      case Expr::K::Index: {
        const auto [addr, lt] = gen_addr(e);
        emit({BOp::Load, 0, dst, addr, 0, type_idx(lt), 0, e.line});
        return;
      }

      case Expr::K::Member: {
        if (e.member_index >= 0) {
          const auto [addr, lt] = gen_addr(e);
          emit({BOp::Load, 0, dst, addr, 0, type_idx(lt), 0, e.line});
          return;
        }
        gen_expr(*e.a, dst);
        std::uint32_t lanes = 0;
        for (unsigned i = 0; i < e.swizzle_len; ++i)
          lanes |= static_cast<std::uint32_t>(e.swizzle[i]) << (8 * i);
        emit({BOp::Swizzle, e.swizzle_len, dst, dst, 0, type_idx(e.type),
              lanes, e.line});
        return;
      }

      case Expr::K::Cast:
        gen_expr(*e.a, dst);
        emit_conv(dst, dst, e.a->type, e.type, e.line);
        return;

      case Expr::K::VecLit: {
        if (e.args.size() == 1 && e.args[0]->type.vec == 1) {
          gen_expr(*e.args[0], dst);
          emit({BOp::Splat, 0, dst, dst, 0, type_idx(e.type), 0, e.line});
          return;
        }
        const auto n = static_cast<std::uint16_t>(e.args.size());
        const std::uint16_t w = static_cast<std::uint16_t>(temp_top_);
        for (const auto& a : e.args) {
          const std::uint16_t r = push();
          gen_expr(*a, r);
        }
        emit({BOp::BuildVec, 0, dst, w, n, type_idx(e.type), 0, e.line});
        return;
      }

      case Expr::K::PreIncDec:
      case Expr::K::PostIncDec: {
        const auto [addr, lt] = gen_addr(*e.a);
        const std::uint16_t cur = push();
        emit({BOp::Load, 0, cur, addr, 0, type_idx(lt), 0, e.line});
        Value one;
        if (lt.kind == Kind::Pointer) {
          one = Value::of_i32(1);
        } else {
          one = Value(lt);
          if (is_float(lt.kind)) one.set_elem_f(0, 1.0);
          else one.set_elem_i(0, 1);
        }
        const std::uint16_t tmp = push();
        emit({BOp::Const, 0, tmp, 0, 0, 0, const_idx(one), e.line});
        emit({BOp::Bin, static_cast<std::uint8_t>(e.op), dst, cur, tmp,
              type_idx(lt), 0, e.line});
        // For non-pointers, Bin(cur, one) with result type `lt` and
        // non-pointer operands already produced exactly `lt`, so the old
        // re-convert before the store was the identity; pointers store the
        // stepped pointer unconverted.  Either way: store the Bin result.
        emit({BOp::Store, 0, addr, dst, 0, 0, 0, e.line});
        if (e.k == Expr::K::PostIncDec)
          emit({BOp::Move, 0, dst, cur, 0, 0, 0, e.line});
        return;
      }
    }
    emit_fail("unhandled expression", e.line);
  }

  const Module& mod_;
  BytecodeModule bc_;
  std::vector<BInsn> code_;
  std::vector<Loop> loops_;
  std::vector<std::size_t> stray_;  // break/continue outside any loop
  std::uint32_t temp_top_ = 0;
  std::uint32_t max_regs_ = 0;
  bool overflow_ = false;
};

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

constexpr std::uint32_t kMagic = 0x43424C43u;  // "CLBC" little-endian
// v2 appends ParamInfo::is_const (v1 streams still decode; the flag defaults
// to false there, which only costs dirty-tracking precision, never safety).
constexpr std::uint32_t kVersion = 2;

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct Writer {
  std::vector<std::uint8_t> buf;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf.insert(buf.end(), b, b + n);
  }
  void u8(std::uint8_t v) { buf.push_back(v); }
  void u16(std::uint16_t v) { bytes(&v, sizeof v); }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i32(std::int32_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  void type(const Type& t) {
    u8(static_cast<std::uint8_t>(t.kind));
    u8(t.vec);
    u8(static_cast<std::uint8_t>(t.as));
    i32(t.struct_id);
    u8(static_cast<std::uint8_t>(t.elem_kind));
    u8(t.elem_vec);
  }
  void value(const Value& v) {
    type(v.type);
    bytes(v.raw, sizeof v.raw);
  }
};

struct Reader {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;
  bool fail = false;

  bool need(std::size_t n) {
    if (in.size() - pos < n) {
      fail = true;
      return false;
    }
    return true;
  }
  void bytes(void* p, std::size_t n) {
    if (!need(n)) {
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, in.data() + pos, n);
    pos += n;
  }
  std::uint8_t u8() { std::uint8_t v = 0; bytes(&v, 1); return v; }
  std::uint16_t u16() { std::uint16_t v = 0; bytes(&v, sizeof v); return v; }
  std::uint32_t u32() { std::uint32_t v = 0; bytes(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v = 0; bytes(&v, sizeof v); return v; }
  std::int32_t i32() { std::int32_t v = 0; bytes(&v, sizeof v); return v; }
  std::int64_t i64() { std::int64_t v = 0; bytes(&v, sizeof v); return v; }
  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(in.data() + pos), n);
    pos += n;
    return s;
  }
  Type type() {
    Type t;
    t.kind = static_cast<Kind>(u8());
    t.vec = u8();
    t.as = static_cast<AddrSpace>(u8());
    const std::int32_t sid = i32();
    t.struct_id = static_cast<std::int16_t>(sid);
    t.elem_kind = static_cast<Kind>(u8());
    t.elem_vec = u8();
    if (static_cast<std::uint8_t>(t.kind) > static_cast<std::uint8_t>(Kind::Sampler) ||
        static_cast<std::uint8_t>(t.elem_kind) > static_cast<std::uint8_t>(Kind::Sampler) ||
        static_cast<std::uint8_t>(t.as) > static_cast<std::uint8_t>(AddrSpace::Constant) ||
        t.vec == 0 || t.vec > 4 || t.elem_vec == 0 || t.elem_vec > 4 ||
        sid < -1 || sid > INT16_MAX)
      fail = true;
    return t;
  }
  Value value() {
    Value v(type());
    bytes(v.raw, sizeof v.raw);
    return v;
  }
};

// A hard cap on element counts so a corrupt length field cannot trigger a
// multi-gigabyte allocation before the checksum would have caught it.
constexpr std::uint32_t kMaxCount = 1u << 22;

bool count_ok(Reader& r, std::uint32_t n) {
  if (n > kMaxCount) {
    r.fail = true;
    return false;
  }
  return true;
}

// Post-load structural validation of one function's code: every register,
// pool index, jump target, and callee index must be in range.  This is what
// lets the VM dispatch without per-instruction bounds checks even on
// deserialized (cache-loaded) modules.
bool validate_code(const BcFunc& f, const BytecodeModule& bc,
                   std::size_t nfuncs, std::string* error) {
  const auto bad = [&](const char* what) {
    if (error) *error = std::string("bytecode validation failed: ") + what;
    return false;
  };
  const std::uint32_t nr = f.num_regs;
  if (nr == 0 || nr > 0x10000u) return bad("register count");
  const std::size_t ni = f.code.size();
  for (const BInsn& I : f.code) {
    if (I.op > BOp::Fail) return bad("opcode");
    if (I.a >= nr || I.b >= nr) return bad("register index");
    if (I.ty >= bc.types.size()) return bad("type index");
    switch (I.op) {
      case BOp::Bin:
      case BOp::AddrIndex:
        if (I.c >= nr) return bad("register index");
        break;
      case BOp::Const:
        if (I.imm >= bc.consts.size()) return bad("constant index");
        break;
      case BOp::CheckNull:
      case BOp::Fail:
        if (I.imm >= bc.strings.size()) return bad("string index");
        break;
      case BOp::Jump:
      case BOp::Jz:
      case BOp::Jnz:
        if (I.imm >= ni) return bad("jump target");
        break;
      case BOp::CallUser:
        if (I.imm >= nfuncs) return bad("callee index");
        if (static_cast<std::uint32_t>(I.b) + I.c > nr) return bad("call window");
        break;
      case BOp::CallBuiltin:
        if (I.imm > static_cast<std::uint32_t>(Builtin::GetImageHeight))
          return bad("builtin index");
        if (static_cast<std::uint32_t>(I.b) + I.c > nr) return bad("call window");
        break;
      case BOp::BuildVec:
        if (static_cast<std::uint32_t>(I.b) + I.c > nr) return bad("vec window");
        break;
      default:
        break;
    }
  }
  // Execution must never run past the end of the stream.
  if (ni == 0 || (f.code.back().op != BOp::Ret &&
                  f.code.back().op != BOp::RetVoid &&
                  f.code.back().op != BOp::Fail &&
                  f.code.back().op != BOp::Jump))
    return bad("missing terminator");
  return true;
}

}  // namespace

std::shared_ptr<const BytecodeModule> compile_bytecode(const Module& mod) {
  return Compiler(mod).run();
}

std::vector<std::uint8_t> serialize_module(const Module& mod) {
  std::shared_ptr<const BytecodeModule> bc = mod.bc;
  if (!bc) bc = compile_bytecode(mod);

  Writer w;
  // -- structs
  w.u32(static_cast<std::uint32_t>(mod.structs.size()));
  for (const StructDef& sd : mod.structs) {
    w.str(sd.name);
    w.u32(static_cast<std::uint32_t>(sd.fields.size()));
    for (const StructField& fl : sd.fields) {
      w.str(fl.name);
      w.type(fl.type);
      w.u64(fl.offset);
    }
    w.u64(sd.size);
    w.u64(sd.align);
  }
  // -- function metadata
  w.u32(static_cast<std::uint32_t>(mod.funcs.size()));
  for (const auto& f : mod.funcs) {
    w.str(f->name);
    w.type(f->ret);
    w.u32(static_cast<std::uint32_t>(f->params.size()));
    for (const ParamInfo& p : f->params) {
      w.str(p.name);
      w.type(p.type);
      w.i32(p.slot);
      w.u8(p.is_handle ? 1 : 0);
      w.u8(p.is_local_ptr ? 1 : 0);
      w.u8(p.is_const ? 1 : 0);
    }
    w.u8(f->is_kernel ? 1 : 0);
    w.u8(f->uses_barrier ? 1 : 0);
    w.i32(f->num_slots);
    w.u32(static_cast<std::uint32_t>(f->locals.size()));
    for (const LocalDecl& l : f->locals) {
      w.type(l.type);
      w.i64(l.array_len);
      w.u64(l.offset);
    }
    w.u64(f->local_mem_bytes);
  }
  // -- bytecode pools
  w.u32(static_cast<std::uint32_t>(bc->types.size()));
  for (const Type& t : bc->types) w.type(t);
  w.u32(static_cast<std::uint32_t>(bc->consts.size()));
  for (const Value& v : bc->consts) w.value(v);
  w.u32(static_cast<std::uint32_t>(bc->strings.size()));
  for (const std::string& s : bc->strings) w.str(s);
  w.u32(static_cast<std::uint32_t>(bc->funcs.size()));
  for (const BcFunc& f : bc->funcs) {
    w.u32(f.num_regs);
    w.u32(static_cast<std::uint32_t>(f.code.size()));
    for (const BInsn& I : f.code) {
      w.u8(static_cast<std::uint8_t>(I.op));
      w.u8(I.aux);
      w.u16(I.a);
      w.u16(I.b);
      w.u16(I.c);
      w.u32(I.ty);
      w.u32(I.imm);
      w.i32(I.line);
    }
  }

  Writer out;
  out.u32(kMagic);
  out.u32(kVersion);
  out.u64(w.buf.size());
  out.u64(fnv1a(w.buf.data(), w.buf.size()));
  out.buf.insert(out.buf.end(), w.buf.begin(), w.buf.end());
  return std::move(out.buf);
}

std::shared_ptr<const Module> deserialize_module(
    std::span<const std::uint8_t> bytes, std::string* error) {
  const auto bad = [&](const char* why) -> std::shared_ptr<const Module> {
    if (error) *error = why;
    return nullptr;
  };

  Reader hdr{bytes};
  const std::uint32_t magic = hdr.u32();
  const std::uint32_t version = hdr.u32();
  const std::uint64_t payload_size = hdr.u64();
  const std::uint64_t checksum = hdr.u64();
  if (hdr.fail || magic != kMagic) return bad("bad magic");
  if (version != kVersion && version != 1) return bad("unsupported version");
  if (bytes.size() - hdr.pos != payload_size) return bad("size mismatch");
  const std::uint8_t* payload = bytes.data() + hdr.pos;
  if (fnv1a(payload, payload_size) != checksum) return bad("checksum mismatch");

  Reader r{{payload, payload_size}};
  auto mod = std::make_shared<Module>();

  // -- structs
  const std::uint32_t nstructs = r.u32();
  if (!count_ok(r, nstructs)) return bad("struct count");
  mod->structs.resize(nstructs);
  for (StructDef& sd : mod->structs) {
    sd.name = r.str();
    const std::uint32_t nf = r.u32();
    if (!count_ok(r, nf)) return bad("field count");
    sd.fields.resize(nf);
    for (StructField& fl : sd.fields) {
      fl.name = r.str();
      fl.type = r.type();
      fl.offset = r.u64();
    }
    sd.size = r.u64();
    sd.align = r.u64();
  }
  // -- function metadata
  const std::uint32_t nfuncs = r.u32();
  if (!count_ok(r, nfuncs)) return bad("function count");
  for (std::uint32_t i = 0; i < nfuncs; ++i) {
    auto f = std::make_unique<FuncDecl>();
    f->name = r.str();
    f->ret = r.type();
    const std::uint32_t np = r.u32();
    if (!count_ok(r, np)) return bad("param count");
    f->params.resize(np);
    for (ParamInfo& p : f->params) {
      p.name = r.str();
      p.type = r.type();
      p.slot = r.i32();
      p.is_handle = r.u8() != 0;
      p.is_local_ptr = r.u8() != 0;
      if (version >= 2) p.is_const = r.u8() != 0;
    }
    f->is_kernel = r.u8() != 0;
    f->uses_barrier = r.u8() != 0;
    f->num_slots = r.i32();
    const std::uint32_t nl = r.u32();
    if (!count_ok(r, nl)) return bad("local count");
    f->locals.resize(nl);
    for (LocalDecl& l : f->locals) {
      l.type = r.type();
      l.array_len = r.i64();
      l.offset = r.u64();
    }
    f->local_mem_bytes = r.u64();
    if (f->num_slots < 0 || f->num_slots > static_cast<int>(kMaxCount))
      return bad("slot count");
    for (const ParamInfo& p : f->params)
      if (p.slot < 0 || p.slot >= f->num_slots) return bad("param slot");
    mod->funcs.push_back(std::move(f));
  }
  // -- bytecode pools
  auto bc = std::make_shared<BytecodeModule>();
  const std::uint32_t ntypes = r.u32();
  if (!count_ok(r, ntypes) || ntypes == 0) return bad("type pool");
  bc->types.resize(ntypes);
  for (Type& t : bc->types) t = r.type();
  const std::uint32_t nconsts = r.u32();
  if (!count_ok(r, nconsts)) return bad("const pool");
  bc->consts.resize(nconsts);
  for (Value& v : bc->consts) v = r.value();
  const std::uint32_t nstrings = r.u32();
  if (!count_ok(r, nstrings)) return bad("string pool");
  bc->strings.resize(nstrings);
  for (std::string& s : bc->strings) s = r.str();
  const std::uint32_t nbcfuncs = r.u32();
  if (nbcfuncs != nfuncs) return bad("function table mismatch");
  bc->funcs.resize(nbcfuncs);
  for (BcFunc& f : bc->funcs) {
    f.num_regs = r.u32();
    const std::uint32_t ni = r.u32();
    if (!count_ok(r, ni)) return bad("instruction count");
    f.code.resize(ni);
    for (BInsn& I : f.code) {
      I.op = static_cast<BOp>(r.u8());
      I.aux = r.u8();
      I.a = r.u16();
      I.b = r.u16();
      I.c = r.u16();
      I.ty = r.u32();
      I.imm = r.u32();
      I.line = r.i32();
    }
  }
  if (r.fail) return bad("truncated payload");
  if (r.pos != payload_size) return bad("trailing bytes");

  // Structural validation: struct ids inside every type, then per-function
  // register/pool/jump ranges.
  const auto sid_ok = [&](const Type& t) {
    return t.struct_id < static_cast<std::int32_t>(mod->structs.size());
  };
  for (const Type& t : bc->types)
    if (!sid_ok(t)) return bad("struct index");
  for (const Value& v : bc->consts)
    if (!sid_ok(v.type)) return bad("struct index");
  for (const StructDef& sd : mod->structs)
    for (const StructField& fl : sd.fields)
      if (!sid_ok(fl.type)) return bad("struct index");
  for (const auto& f : mod->funcs) {
    if (!sid_ok(f->ret)) return bad("struct index");
    for (const ParamInfo& p : f->params)
      if (!sid_ok(p.type)) return bad("struct index");
    for (const LocalDecl& l : f->locals)
      if (!sid_ok(l.type)) return bad("struct index");
  }
  for (std::size_t i = 0; i < bc->funcs.size(); ++i) {
    if (bc->funcs[i].num_regs <
        static_cast<std::uint32_t>(mod->funcs[i]->num_slots))
      return bad("bytecode validation failed: frame smaller than slots");
    if (!validate_code(bc->funcs[i], *bc, bc->funcs.size(), error))
      return nullptr;
  }

  mod->bc = std::move(bc);
  return mod;
}

}  // namespace clc
