#include "clc/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace clc {

namespace {

const std::unordered_map<std::string_view, Tok>& keyword_map() {
  static const std::unordered_map<std::string_view, Tok> kMap = {
      {"__kernel", Tok::KwKernel},     {"kernel", Tok::KwKernel},
      {"__global", Tok::KwGlobal},     {"global", Tok::KwGlobal},
      {"__local", Tok::KwLocal},       {"local", Tok::KwLocal},
      {"__constant", Tok::KwConstant}, {"constant", Tok::KwConstant},
      {"__private", Tok::KwPrivate},   {"private", Tok::KwPrivate},
      {"const", Tok::KwConst},         {"restrict", Tok::KwRestrict},
      {"__restrict", Tok::KwRestrict}, {"volatile", Tok::KwVolatile},
      {"unsigned", Tok::KwUnsigned},   {"signed", Tok::KwSigned},
      {"void", Tok::KwVoid},           {"bool", Tok::KwBool},
      {"char", Tok::KwChar},           {"short", Tok::KwShort},
      {"int", Tok::KwInt},             {"long", Tok::KwLong},
      {"float", Tok::KwFloat},         {"double", Tok::KwDouble},
      {"size_t", Tok::KwSizeT},
      {"struct", Tok::KwStruct},       {"typedef", Tok::KwTypedef},
      {"if", Tok::KwIf},               {"else", Tok::KwElse},
      {"for", Tok::KwFor},             {"while", Tok::KwWhile},
      {"do", Tok::KwDo},               {"return", Tok::KwReturn},
      {"break", Tok::KwBreak},         {"continue", Tok::KwContinue},
      {"image2d_t", Tok::KwImage2d},   {"image3d_t", Tok::KwImage3d},
      {"sampler_t", Tok::KwSampler},
  };
  return kMap;
}

bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_cont(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

const char* tok_name(Tok t) noexcept {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::StrLit: return "string literal";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Question: return "'?'";
    case Tok::Dot: return "'.'";
    case Tok::Arrow: return "'->'";
    case Tok::Assign: return "'='";
    case Tok::KwKernel: return "'__kernel'";
    case Tok::KwStruct: return "'struct'";
    default: return "token";
  }
}

Lexer::Lexer(std::string_view source) : src_(source) {}

char Lexer::peek(int ahead) const noexcept {
  const std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  return p < src_.size() ? src_[p] : '\0';
}

char Lexer::advance() noexcept {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::skip_ws_and_comments() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
      if (!at_end()) {
        advance();
        advance();
      }
    } else {
      return;
    }
  }
}

bool Lexer::lex_ident_or_keyword(Token& t) {
  std::string s;
  while (!at_end() && is_ident_cont(peek())) s.push_back(advance());
  const auto& kw = keyword_map();
  if (const auto it = kw.find(s); it != kw.end()) {
    t.kind = it->second;
  } else {
    t.kind = Tok::Ident;
    t.text = std::move(s);
  }
  return true;
}

bool Lexer::lex_number(Token& t, Diag& diag) {
  std::string s;
  bool is_float = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    s.push_back(advance());
    s.push_back(advance());
    while (std::isxdigit(static_cast<unsigned char>(peek())) != 0)
      s.push_back(advance());
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0)
      s.push_back(advance());
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0) {
      is_float = true;
      s.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0)
        s.push_back(advance());
    } else if (peek() == '.' && !is_ident_start(peek(1))) {
      // "1." style literal (but not "1.x" vector swizzle on a literal,
      // which OpenCL C does not allow anyway).
      is_float = true;
      s.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E') {
      is_float = true;
      s.push_back(advance());
      if (peek() == '+' || peek() == '-') s.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0)
        s.push_back(advance());
    }
  }

  if (is_float) {
    t.kind = Tok::FloatLit;
    t.float_value = std::strtod(s.c_str(), nullptr);
    if (peek() == 'f' || peek() == 'F') {
      advance();
      t.is_float32 = true;
    }
    return true;
  }

  t.kind = Tok::IntLit;
  errno = 0;
  t.int_value = std::strtoull(s.c_str(), nullptr, 0);
  if (errno != 0) {
    diag = {"integer literal out of range: " + s, t.line, t.col};
    return false;
  }
  for (;;) {
    if (peek() == 'u' || peek() == 'U') {
      advance();
      t.is_unsigned = true;
    } else if (peek() == 'l' || peek() == 'L') {
      advance();
      t.is_long = true;
    } else if (peek() == 'f' || peek() == 'F') {
      // "1f" is not valid C, but accept it as a float literal for robustness.
      advance();
      t.kind = Tok::FloatLit;
      t.float_value = static_cast<double>(t.int_value);
      t.is_float32 = true;
      break;
    } else {
      break;
    }
  }
  return true;
}

bool Lexer::lex_one(Token& t, Diag& diag) {
  skip_ws_and_comments();
  t = Token{};
  t.line = line_;
  t.col = col_;
  if (at_end()) {
    t.kind = Tok::End;
    return true;
  }
  const char c = peek();
  if (is_ident_start(c)) return lex_ident_or_keyword(t);
  if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
    return lex_number(t, diag);
  }
  if (c == '"') {
    advance();
    std::string s;
    while (!at_end() && peek() != '"') {
      char ch = advance();
      if (ch == '\\' && !at_end()) {
        const char esc = advance();
        switch (esc) {
          case 'n': ch = '\n'; break;
          case 't': ch = '\t'; break;
          case '\\': ch = '\\'; break;
          case '"': ch = '"'; break;
          default: ch = esc; break;
        }
      }
      s.push_back(ch);
    }
    if (at_end()) {
      diag = {"unterminated string literal", t.line, t.col};
      return false;
    }
    advance();
    t.kind = Tok::StrLit;
    t.text = std::move(s);
    return true;
  }

  advance();
  auto two = [&](char next, Tok if2, Tok if1) {
    if (peek() == next) {
      advance();
      t.kind = if2;
    } else {
      t.kind = if1;
    }
  };
  switch (c) {
    case '(': t.kind = Tok::LParen; break;
    case ')': t.kind = Tok::RParen; break;
    case '{': t.kind = Tok::LBrace; break;
    case '}': t.kind = Tok::RBrace; break;
    case '[': t.kind = Tok::LBracket; break;
    case ']': t.kind = Tok::RBracket; break;
    case ',': t.kind = Tok::Comma; break;
    case ';': t.kind = Tok::Semi; break;
    case ':': t.kind = Tok::Colon; break;
    case '?': t.kind = Tok::Question; break;
    case '.': t.kind = Tok::Dot; break;
    case '~': t.kind = Tok::Tilde; break;
    case '+':
      if (peek() == '+') { advance(); t.kind = Tok::PlusPlus; }
      else two('=', Tok::PlusAssign, Tok::Plus);
      break;
    case '-':
      if (peek() == '-') { advance(); t.kind = Tok::MinusMinus; }
      else if (peek() == '>') { advance(); t.kind = Tok::Arrow; }
      else two('=', Tok::MinusAssign, Tok::Minus);
      break;
    case '*': two('=', Tok::StarAssign, Tok::Star); break;
    case '/': two('=', Tok::SlashAssign, Tok::Slash); break;
    case '%': two('=', Tok::PercentAssign, Tok::Percent); break;
    case '^': two('=', Tok::CaretAssign, Tok::Caret); break;
    case '!': two('=', Tok::NotEq, Tok::Bang); break;
    case '=': two('=', Tok::EqEq, Tok::Assign); break;
    case '&':
      if (peek() == '&') { advance(); t.kind = Tok::AmpAmp; }
      else two('=', Tok::AmpAssign, Tok::Amp);
      break;
    case '|':
      if (peek() == '|') { advance(); t.kind = Tok::PipePipe; }
      else two('=', Tok::PipeAssign, Tok::Pipe);
      break;
    case '<':
      if (peek() == '<') {
        advance();
        two('=', Tok::ShlAssign, Tok::Shl);
      } else {
        two('=', Tok::Le, Tok::Lt);
      }
      break;
    case '>':
      if (peek() == '>') {
        advance();
        two('=', Tok::ShrAssign, Tok::Shr);
      } else {
        two('=', Tok::Ge, Tok::Gt);
      }
      break;
    default:
      diag = {std::string("unexpected character '") + c + "'", t.line, t.col};
      return false;
  }
  return true;
}

bool Lexer::run(std::vector<Token>& out, Diag& diag) {
  out.clear();
  for (;;) {
    Token t;
    if (!lex_one(t, diag)) return false;
    out.push_back(t);
    if (t.kind == Tok::End) return true;
  }
}

}  // namespace clc
