// lexer.h — hand-written lexer for the OpenCL C subset.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "clc/diag.h"
#include "clc/token.h"

namespace clc {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  // Tokenize the whole input.  Returns false and fills `diag` on error.
  bool run(std::vector<Token>& out, Diag& diag);

 private:
  bool lex_one(Token& t, Diag& diag);
  bool lex_number(Token& t, Diag& diag);
  bool lex_ident_or_keyword(Token& t);
  void skip_ws_and_comments();
  [[nodiscard]] char peek(int ahead = 0) const noexcept;
  char advance() noexcept;
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= src_.size(); }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace clc
