#include "clc/builtins.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "clc/interp.h"

namespace clc {

namespace {

const std::unordered_map<std::string_view, Builtin>& builtin_map() {
  static const std::unordered_map<std::string_view, Builtin> kMap = {
      {"get_global_id", Builtin::GetGlobalId},
      {"get_local_id", Builtin::GetLocalId},
      {"get_group_id", Builtin::GetGroupId},
      {"get_global_size", Builtin::GetGlobalSize},
      {"get_local_size", Builtin::GetLocalSize},
      {"get_num_groups", Builtin::GetNumGroups},
      {"get_work_dim", Builtin::GetWorkDim},
      {"barrier", Builtin::Barrier},
      {"mem_fence", Builtin::MemFence},
      {"read_mem_fence", Builtin::MemFence},
      {"write_mem_fence", Builtin::MemFence},
      {"sqrt", Builtin::Sqrt},
      {"rsqrt", Builtin::Rsqrt},
      {"fabs", Builtin::Fabs},
      {"exp", Builtin::Exp},
      {"exp2", Builtin::Exp2},
      {"log", Builtin::Log},
      {"log2", Builtin::Log2},
      {"log10", Builtin::Log10},
      {"sin", Builtin::Sin},
      {"cos", Builtin::Cos},
      {"tan", Builtin::Tan},
      {"asin", Builtin::Asin},
      {"acos", Builtin::Acos},
      {"atan", Builtin::Atan},
      {"sinh", Builtin::Sinh},
      {"cosh", Builtin::Cosh},
      {"tanh", Builtin::Tanh},
      {"floor", Builtin::Floor},
      {"ceil", Builtin::Ceil},
      {"round", Builtin::Round},
      {"trunc", Builtin::Trunc},
      {"native_sin", Builtin::NativeSin},
      {"native_cos", Builtin::NativeCos},
      {"native_exp", Builtin::NativeExp},
      {"native_log", Builtin::NativeLog},
      {"native_sqrt", Builtin::NativeSqrt},
      {"native_recip", Builtin::NativeRecip},
      {"half_sqrt", Builtin::NativeSqrt},
      {"pow", Builtin::Pow},
      {"powr", Builtin::NativePowr},
      {"fmod", Builtin::Fmod},
      {"fmin", Builtin::Fmin},
      {"fmax", Builtin::Fmax},
      {"atan2", Builtin::Atan2},
      {"hypot", Builtin::Hypot},
      {"native_divide", Builtin::NativeDivide},
      {"native_powr", Builtin::NativePowr},
      {"mad", Builtin::Mad},
      {"fma", Builtin::Fma},
      {"clamp", Builtin::Clamp},
      {"mix", Builtin::Mix},
      {"min", Builtin::MinI},
      {"max", Builtin::MaxI},
      {"abs", Builtin::AbsI},
      {"mul24", Builtin::Mul24},
      {"mad24", Builtin::Mad24},
      {"rotate", Builtin::Rotate},
      {"dot", Builtin::Dot},
      {"length", Builtin::Length},
      {"distance", Builtin::Distance},
      {"normalize", Builtin::Normalize},
      {"cross", Builtin::Cross},
      {"fast_length", Builtin::FastLength},
      {"atomic_add", Builtin::AtomicAdd},
      {"atom_add", Builtin::AtomicAdd},
      {"atomic_sub", Builtin::AtomicSub},
      {"atom_sub", Builtin::AtomicSub},
      {"atomic_inc", Builtin::AtomicInc},
      {"atom_inc", Builtin::AtomicInc},
      {"atomic_dec", Builtin::AtomicDec},
      {"atom_dec", Builtin::AtomicDec},
      {"atomic_min", Builtin::AtomicMin},
      {"atomic_max", Builtin::AtomicMax},
      {"atomic_xchg", Builtin::AtomicXchg},
      {"atomic_cmpxchg", Builtin::AtomicCmpxchg},
      {"atomic_and", Builtin::AtomicAnd},
      {"atomic_or", Builtin::AtomicOr},
      {"atomic_xor", Builtin::AtomicXor},
      {"as_float", Builtin::AsFloat},
      {"as_int", Builtin::AsInt},
      {"as_uint", Builtin::AsUint},
      {"read_imagef", Builtin::ReadImageF},
      {"read_imageui", Builtin::ReadImageUI},
      {"write_imagef", Builtin::WriteImageF},
      {"write_imageui", Builtin::WriteImageUI},
      {"get_image_width", Builtin::GetImageWidth},
      {"get_image_height", Builtin::GetImageHeight},
  };
  return kMap;
}

bool is_math1(Builtin b) noexcept {
  return b >= Builtin::Sqrt && b <= Builtin::NativeRecip;
}
bool is_math2(Builtin b) noexcept {
  return b >= Builtin::Pow && b <= Builtin::NativePowr;
}
bool is_math3(Builtin b) noexcept { return b >= Builtin::Mad && b <= Builtin::Mix; }
bool is_atomic(Builtin b) noexcept {
  return b >= Builtin::AtomicAdd && b <= Builtin::AtomicXor;
}

double apply_math1(Builtin b, double x) noexcept {
  switch (b) {
    case Builtin::Sqrt:
    case Builtin::NativeSqrt: return std::sqrt(x);
    case Builtin::Rsqrt: return 1.0 / std::sqrt(x);
    case Builtin::Fabs: return std::fabs(x);
    case Builtin::Exp:
    case Builtin::NativeExp: return std::exp(x);
    case Builtin::Exp2: return std::exp2(x);
    case Builtin::Log:
    case Builtin::NativeLog: return std::log(x);
    case Builtin::Log2: return std::log2(x);
    case Builtin::Log10: return std::log10(x);
    case Builtin::Sin:
    case Builtin::NativeSin: return std::sin(x);
    case Builtin::Cos:
    case Builtin::NativeCos: return std::cos(x);
    case Builtin::Tan: return std::tan(x);
    case Builtin::Asin: return std::asin(x);
    case Builtin::Acos: return std::acos(x);
    case Builtin::Atan: return std::atan(x);
    case Builtin::Sinh: return std::sinh(x);
    case Builtin::Cosh: return std::cosh(x);
    case Builtin::Tanh: return std::tanh(x);
    case Builtin::Floor: return std::floor(x);
    case Builtin::Ceil: return std::ceil(x);
    case Builtin::Round: return std::round(x);
    case Builtin::Trunc: return std::trunc(x);
    case Builtin::NativeRecip: return 1.0 / x;
    default: return x;
  }
}

double apply_math2(Builtin b, double x, double y) noexcept {
  switch (b) {
    case Builtin::Pow:
    case Builtin::NativePowr: return std::pow(x, y);
    case Builtin::Fmod: return std::fmod(x, y);
    case Builtin::Fmin: return std::fmin(x, y);
    case Builtin::Fmax: return std::fmax(x, y);
    case Builtin::Atan2: return std::atan2(x, y);
    case Builtin::Hypot: return std::hypot(x, y);
    case Builtin::NativeDivide: return x / y;
    default: return x;
  }
}

double apply_math3(Builtin b, double x, double y, double z) noexcept {
  switch (b) {
    case Builtin::Mad: return x * y + z;
    case Builtin::Fma: return std::fma(x, y, z);
    case Builtin::Clamp: return std::fmin(std::fmax(x, y), z);
    case Builtin::Mix: return x + (y - x) * z;
    default: return x;
  }
}

// 32-bit atomic op on p (global or local memory).
std::int64_t apply_atomic(Builtin b, std::uint8_t* p, std::int64_t operand,
                          std::int64_t operand2, Kind k) {
  const bool sgn = is_signed_int(k);
  auto* a32 = reinterpret_cast<std::atomic<std::uint32_t>*>(p);
  const auto op32 = static_cast<std::uint32_t>(operand);
  std::uint32_t old = 0;
  switch (b) {
    case Builtin::AtomicAdd: old = a32->fetch_add(op32); break;
    case Builtin::AtomicSub: old = a32->fetch_sub(op32); break;
    case Builtin::AtomicInc: old = a32->fetch_add(1); break;
    case Builtin::AtomicDec: old = a32->fetch_sub(1); break;
    case Builtin::AtomicAnd: old = a32->fetch_and(op32); break;
    case Builtin::AtomicOr: old = a32->fetch_or(op32); break;
    case Builtin::AtomicXor: old = a32->fetch_xor(op32); break;
    case Builtin::AtomicXchg: old = a32->exchange(op32); break;
    case Builtin::AtomicMin: {
      old = a32->load();
      for (;;) {
        const bool le = sgn ? static_cast<std::int32_t>(old) <=
                                  static_cast<std::int32_t>(op32)
                            : old <= op32;
        if (le || a32->compare_exchange_weak(old, op32)) break;
      }
      break;
    }
    case Builtin::AtomicMax: {
      old = a32->load();
      for (;;) {
        const bool ge = sgn ? static_cast<std::int32_t>(old) >=
                                  static_cast<std::int32_t>(op32)
                            : old >= op32;
        if (ge || a32->compare_exchange_weak(old, op32)) break;
      }
      break;
    }
    case Builtin::AtomicCmpxchg: {
      auto expected = static_cast<std::uint32_t>(operand);
      const auto desired = static_cast<std::uint32_t>(operand2);
      a32->compare_exchange_strong(expected, desired);
      old = expected;
      break;
    }
    default: break;
  }
  return sgn ? static_cast<std::int64_t>(static_cast<std::int32_t>(old))
             : static_cast<std::int64_t>(old);
}

int clamp_coord(std::int64_t v, std::size_t n) noexcept {
  if (v < 0) return 0;
  if (v >= static_cast<std::int64_t>(n)) return static_cast<int>(n - 1);
  return static_cast<int>(v);
}

const ImageDesc* image_of(const Value& v) noexcept {
  const ImageDesc* d = nullptr;
  std::memcpy(&d, v.raw, sizeof d);
  return d;
}
const SamplerDesc* sampler_of(const Value& v) noexcept {
  const SamplerDesc* d = nullptr;
  std::memcpy(&d, v.raw, sizeof d);
  return d;
}

Value read_image(const ImageDesc& img, int x, int y, bool as_float) {
  Value r(make_scalar(as_float ? Kind::F32 : Kind::U32, 4));
  const std::size_t elem = (img.float_channels ? 4 : 4) * img.channels;
  const std::uint8_t* px = img.data + static_cast<std::size_t>(y) * img.row_pitch +
                           static_cast<std::size_t>(x) * elem;
  for (unsigned c = 0; c < 4; ++c) {
    double v = c == 3 ? 1.0 : 0.0;  // default alpha 1
    if (c < img.channels) {
      if (img.float_channels) {
        float fv;
        std::memcpy(&fv, px + c * 4, 4);
        v = fv;
      } else {
        std::uint32_t uv;
        std::memcpy(&uv, px + c * 4, 4);
        v = uv;
      }
    }
    if (as_float) r.set_elem_f(c, v);
    else r.set_elem_i(c, static_cast<std::int64_t>(v));
  }
  return r;
}

void write_image(const ImageDesc& img, int x, int y, const Value& color) {
  if (x < 0 || y < 0 || static_cast<std::size_t>(x) >= img.width ||
      static_cast<std::size_t>(y) >= img.height)
    return;
  const std::size_t elem = 4 * img.channels;
  std::uint8_t* px = img.data + static_cast<std::size_t>(y) * img.row_pitch +
                     static_cast<std::size_t>(x) * elem;
  for (unsigned c = 0; c < img.channels; ++c) {
    if (img.float_channels) {
      const auto fv = static_cast<float>(color.elem_f(c));
      std::memcpy(px + c * 4, &fv, 4);
    } else {
      const auto uv = static_cast<std::uint32_t>(color.elem_u(c));
      std::memcpy(px + c * 4, &uv, 4);
    }
  }
}

}  // namespace

Builtin lookup_builtin(std::string_view name) noexcept {
  const auto& m = builtin_map();
  const auto it = m.find(name);
  return it != m.end() ? it->second : Builtin::None;
}

Type builtin_result_type(Builtin id, std::span<const Type> args) noexcept {
  switch (id) {
    case Builtin::GetGlobalId:
    case Builtin::GetLocalId:
    case Builtin::GetGroupId:
    case Builtin::GetGlobalSize:
    case Builtin::GetLocalSize:
    case Builtin::GetNumGroups: return make_scalar(Kind::U64);  // size_t
    case Builtin::GetWorkDim: return make_scalar(Kind::U32);
    case Builtin::Barrier:
    case Builtin::MemFence:
    case Builtin::WriteImageF:
    case Builtin::WriteImageUI: return make_scalar(Kind::Void);
    case Builtin::Dot:
    case Builtin::Length:
    case Builtin::Distance:
    case Builtin::FastLength:
      return make_scalar(args.empty() ? Kind::F32 : args[0].kind);
    case Builtin::Normalize:
    case Builtin::Cross: return args.empty() ? make_scalar(Kind::F32, 4) : args[0];
    case Builtin::AsFloat: return make_scalar(Kind::F32);
    case Builtin::AsInt: return make_scalar(Kind::I32);
    case Builtin::AsUint: return make_scalar(Kind::U32);
    case Builtin::ReadImageF: return make_scalar(Kind::F32, 4);
    case Builtin::ReadImageUI: return make_scalar(Kind::U32, 4);
    case Builtin::GetImageWidth:
    case Builtin::GetImageHeight: return make_scalar(Kind::I32);
    case Builtin::AbsI:
      if (!args.empty() && is_integer(args[0].kind)) {
        Kind k = args[0].kind;
        // abs() returns the unsigned counterpart in OpenCL; keep width
        switch (k) {
          case Kind::I8: k = Kind::U8; break;
          case Kind::I16: k = Kind::U16; break;
          case Kind::I32: k = Kind::U32; break;
          case Kind::I64: k = Kind::U64; break;
          default: break;
        }
        return make_scalar(k, args[0].vec);
      }
      return make_scalar(Kind::U32);
    case Builtin::Mul24:
    case Builtin::Mad24:
    case Builtin::Rotate:
      return args.empty() ? make_scalar(Kind::I32) : args[0];
    default: break;
  }
  if (is_atomic(id)) {
    // returns the old value: the pointee type
    if (!args.empty() && args[0].kind == Kind::Pointer)
      return make_scalar(args[0].elem_kind);
    return make_scalar(Kind::I32);
  }
  if (is_math1(id) || is_math2(id) || is_math3(id)) {
    // element-wise; the widest float-ness among args wins, ints promote to
    // the arg's float type (min/max/clamp on ints keep int)
    Type r = args.empty() ? make_scalar(Kind::F32) : args[0];
    for (const Type& a : args) {
      if (a.vec > r.vec) r.vec = a.vec;
      if (is_float(a.kind) && !is_float(r.kind)) r.kind = a.kind;
      if (a.kind == Kind::F64) r.kind = Kind::F64;
    }
    if (!is_float(r.kind) &&
        (id == Builtin::Fmin || id == Builtin::Fmax || is_math1(id) ||
         is_math2(id) || id == Builtin::Mad || id == Builtin::Fma ||
         id == Builtin::Mix))
      r.kind = Kind::F32;
    r.as = AddrSpace::Private;
    r.struct_id = -1;
    return r;
  }
  if (id == Builtin::MinI || id == Builtin::MaxI || id == Builtin::Clamp) {
    Type r = args.empty() ? make_scalar(Kind::I32) : args[0];
    for (const Type& a : args) {
      if (a.vec > r.vec) r.vec = a.vec;
      if (is_float(a.kind) && !is_float(r.kind)) r.kind = a.kind;
    }
    return r;
  }
  return make_scalar(Kind::Void);
}

Value call_builtin(Builtin id, std::span<Value> args, WorkItemCtx& ctx) {
  auto dim_arg = [&]() -> unsigned {
    return args.empty() ? 0u
                        : static_cast<unsigned>(args[0].elem_u() & 3u);
  };
  switch (id) {
    case Builtin::GetGlobalId:
      return Value::of_u64(ctx.gid[dim_arg()]);
    case Builtin::GetLocalId:
      return Value::of_u64(ctx.lid[dim_arg()]);
    case Builtin::GetGroupId:
      return Value::of_u64(ctx.grp[dim_arg()]);
    case Builtin::GetGlobalSize:
      return Value::of_u64(ctx.nd->global[dim_arg()]);
    case Builtin::GetLocalSize:
      return Value::of_u64(ctx.nd->local[dim_arg()]);
    case Builtin::GetNumGroups:
      return Value::of_u64(ctx.nd->groups(dim_arg()));
    case Builtin::GetWorkDim: return Value::of_u32(ctx.nd->dim);
    case Builtin::Barrier:
      if (ctx.bar != nullptr) ctx.bar->arrive_and_wait();
      return Value(make_scalar(Kind::Void));
    case Builtin::MemFence:
      std::atomic_thread_fence(std::memory_order_seq_cst);
      return Value(make_scalar(Kind::Void));
    case Builtin::AsFloat: {
      Value r(make_scalar(Kind::F32));
      std::memcpy(r.raw, args[0].raw, 4);
      return r;
    }
    case Builtin::AsInt: {
      Value r(make_scalar(Kind::I32));
      std::memcpy(r.raw, args[0].raw, 4);
      return r;
    }
    case Builtin::AsUint: {
      Value r(make_scalar(Kind::U32));
      std::memcpy(r.raw, args[0].raw, 4);
      return r;
    }
    default: break;
  }

  if (is_atomic(id)) {
    std::uint8_t* p = args[0].bytes_ptr();
    if (p == nullptr) throw InterpError{"atomic on null pointer", 0};
    const Kind k = args[0].type.elem_kind;
    const std::int64_t op1 = args.size() > 1 ? args[1].elem_i() : 0;
    const std::int64_t op2 = args.size() > 2 ? args[2].elem_i() : 0;
    Value r(make_scalar(k));
    r.set_elem_i(0, apply_atomic(id, p, op1, op2, k));
    return r;
  }

  const Type rt = [&] {
    std::vector<Type> at;
    at.reserve(args.size());
    for (const auto& a : args) at.push_back(a.type);
    return builtin_result_type(id, at);
  }();

  if (is_math1(id)) {
    Value r(rt);
    const Value a = convert(args[0], rt);
    for (unsigned i = 0; i < rt.vec; ++i) r.set_elem_f(i, apply_math1(id, a.elem_f(i)));
    return r;
  }
  if (is_math2(id)) {
    Value r(rt);
    const Value a = convert(args[0], rt);
    const Value b = convert(args[1], rt);
    for (unsigned i = 0; i < rt.vec; ++i)
      r.set_elem_f(i, apply_math2(id, a.elem_f(i), b.elem_f(i)));
    return r;
  }
  if (is_math3(id) && is_float(rt.kind)) {
    Value r(rt);
    const Value a = convert(args[0], rt);
    const Value b = convert(args[1], rt);
    const Value c = convert(args[2], rt);
    for (unsigned i = 0; i < rt.vec; ++i) {
      // clamp(x, lo, hi): note apply_math3 argument order
      r.set_elem_f(i, id == Builtin::Mix
                          ? apply_math3(id, a.elem_f(i), b.elem_f(i), c.elem_f(i))
                          : apply_math3(id, a.elem_f(i), b.elem_f(i), c.elem_f(i)));
    }
    return r;
  }

  switch (id) {
    case Builtin::MinI:
    case Builtin::MaxI: {
      Value r(rt);
      const Value a = convert(args[0], rt);
      const Value b = convert(args[1], rt);
      for (unsigned i = 0; i < rt.vec; ++i) {
        if (is_float(rt.kind)) {
          const double x = a.elem_f(i);
          const double y = b.elem_f(i);
          r.set_elem_f(i, id == Builtin::MinI ? std::fmin(x, y) : std::fmax(x, y));
        } else if (is_signed_int(rt.kind)) {
          const std::int64_t x = a.elem_i(i);
          const std::int64_t y = b.elem_i(i);
          r.set_elem_i(i, id == Builtin::MinI ? std::min(x, y) : std::max(x, y));
        } else {
          const std::uint64_t x = a.elem_u(i);
          const std::uint64_t y = b.elem_u(i);
          r.set_elem_i(i, static_cast<std::int64_t>(
                              id == Builtin::MinI ? std::min(x, y) : std::max(x, y)));
        }
      }
      return r;
    }
    case Builtin::Clamp: {  // integer clamp
      Value r(rt);
      const Value x = convert(args[0], rt);
      const Value lo = convert(args[1], rt);
      const Value hi = convert(args[2], rt);
      for (unsigned i = 0; i < rt.vec; ++i) {
        const std::int64_t v =
            std::min(std::max(x.elem_i(i), lo.elem_i(i)), hi.elem_i(i));
        r.set_elem_i(i, v);
      }
      return r;
    }
    case Builtin::AbsI: {
      Value r(rt);
      for (unsigned i = 0; i < rt.vec; ++i) {
        const std::int64_t v = args[0].elem_i(i);
        r.set_elem_i(i, v < 0 ? -v : v);
      }
      return r;
    }
    case Builtin::Mul24: {
      const std::int64_t a = args[0].elem_i() & 0xFFFFFF;
      const std::int64_t b = args[1].elem_i() & 0xFFFFFF;
      Value r(rt);
      r.set_elem_i(0, a * b);
      return r;
    }
    case Builtin::Mad24: {
      const std::int64_t a = args[0].elem_i() & 0xFFFFFF;
      const std::int64_t b = args[1].elem_i() & 0xFFFFFF;
      Value r(rt);
      r.set_elem_i(0, a * b + args[2].elem_i());
      return r;
    }
    case Builtin::Rotate: {
      const auto v = static_cast<std::uint32_t>(args[0].elem_u());
      const unsigned s = static_cast<unsigned>(args[1].elem_u()) & 31u;
      Value r(rt);
      r.set_elem_i(0, static_cast<std::int64_t>((v << s) | (v >> ((32 - s) & 31))));
      return r;
    }
    case Builtin::Dot: {
      double acc = 0;
      for (unsigned i = 0; i < args[0].type.vec; ++i)
        acc += args[0].elem_f(i) * args[1].elem_f(i);
      Value r(rt);
      r.set_elem_f(0, acc);
      return r;
    }
    case Builtin::Length:
    case Builtin::FastLength: {
      double acc = 0;
      for (unsigned i = 0; i < args[0].type.vec; ++i)
        acc += args[0].elem_f(i) * args[0].elem_f(i);
      Value r(rt);
      r.set_elem_f(0, std::sqrt(acc));
      return r;
    }
    case Builtin::Distance: {
      double acc = 0;
      for (unsigned i = 0; i < args[0].type.vec; ++i) {
        const double d = args[0].elem_f(i) - args[1].elem_f(i);
        acc += d * d;
      }
      Value r(rt);
      r.set_elem_f(0, std::sqrt(acc));
      return r;
    }
    case Builtin::Normalize: {
      double acc = 0;
      for (unsigned i = 0; i < args[0].type.vec; ++i)
        acc += args[0].elem_f(i) * args[0].elem_f(i);
      const double inv = acc > 0 ? 1.0 / std::sqrt(acc) : 0.0;
      Value r(args[0].type);
      for (unsigned i = 0; i < args[0].type.vec; ++i)
        r.set_elem_f(i, args[0].elem_f(i) * inv);
      return r;
    }
    case Builtin::Cross: {
      Value r(args[0].type);
      const auto& a = args[0];
      const auto& b = args[1];
      r.set_elem_f(0, a.elem_f(1) * b.elem_f(2) - a.elem_f(2) * b.elem_f(1));
      r.set_elem_f(1, a.elem_f(2) * b.elem_f(0) - a.elem_f(0) * b.elem_f(2));
      r.set_elem_f(2, a.elem_f(0) * b.elem_f(1) - a.elem_f(1) * b.elem_f(0));
      if (args[0].type.vec == 4) r.set_elem_f(3, 0.0);
      return r;
    }
    case Builtin::ReadImageF:
    case Builtin::ReadImageUI: {
      const ImageDesc* img = image_of(args[0]);
      if (img == nullptr || img->data == nullptr)
        throw InterpError{"read_image on null image", 0};
      // args: (image, sampler, coord) or (image, coord)
      const Value& coord = args.size() > 2 ? args[2] : args[1];
      double cx = coord.elem_f(0);
      double cy = coord.type.vec > 1 ? coord.elem_f(1) : 0.0;
      if (args.size() > 2) {
        const SamplerDesc* s = sampler_of(args[1]);
        if (s != nullptr && s->normalized) {
          cx *= static_cast<double>(img->width);
          cy *= static_cast<double>(img->height);
        }
      }
      const int x = clamp_coord(static_cast<std::int64_t>(cx), img->width);
      const int y = clamp_coord(static_cast<std::int64_t>(cy), img->height);
      return read_image(*img, x, y, id == Builtin::ReadImageF);
    }
    case Builtin::WriteImageF:
    case Builtin::WriteImageUI: {
      const ImageDesc* img = image_of(args[0]);
      if (img == nullptr || img->data == nullptr)
        throw InterpError{"write_image on null image", 0};
      const Value& coord = args[1];
      write_image(*img, static_cast<int>(coord.elem_i(0)),
                  coord.type.vec > 1 ? static_cast<int>(coord.elem_i(1)) : 0,
                  args[2]);
      return Value(make_scalar(Kind::Void));
    }
    case Builtin::GetImageWidth: {
      const ImageDesc* img = image_of(args[0]);
      return Value::of_i32(img != nullptr ? static_cast<std::int32_t>(img->width) : 0);
    }
    case Builtin::GetImageHeight: {
      const ImageDesc* img = image_of(args[0]);
      return Value::of_i32(img != nullptr ? static_cast<std::int32_t>(img->height) : 0);
    }
    default: break;
  }
  throw InterpError{"unimplemented builtin", 0};
}

}  // namespace clc
