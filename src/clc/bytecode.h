// bytecode.h — compact register-based bytecode for the clc OpenCL C subset.
//
// The tree-walking interpreter (interp.cpp) is the semantic reference; this
// layer compiles the typed AST into a flat instruction stream executed by the
// register VM in vm.cpp.  Design goals, in order:
//
//  1. Bit-identical results.  Every instruction bottoms out in the same
//     helpers the interpreter uses (convert / load_value / store_value /
//     binary_op / call_builtin), so a kernel's output under the VM is
//     byte-for-byte what the interpreter produces — the interpreter stays on
//     as the differential-testing oracle.
//  2. Serializability.  A compiled module round-trips through a checked
//     binary container (magic + version + FNV-1a checksum + index
//     validation), which is what the simcl compile cache stores in snapstore.
//     A deserialized module carries function metadata but no AST bodies; it
//     can only execute on the VM.
//  3. Speed.  One malloc per frame, no per-node recursion, builtin arguments
//     passed as a contiguous register window instead of a heap vector.
//
// Frame layout: registers [0, num_slots) are the function's variable slots
// (same numbering the parser assigned, so slot addresses stay stable for
// pointers into private variables); [num_slots, num_regs) are expression
// temporaries.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "clc/ast.h"
#include "clc/value.h"

namespace clc {

enum class BOp : std::uint8_t {
  Nop = 0,
  Const,        // r[a] = consts[imm]
  Move,         // r[a] = r[b]
  Conv,         // r[a] = convert(r[b], ty)
  Bin,          // r[a] = binary_op(Tok(aux), r[b], r[c], ty, line)
  Neg,          // r[a] = binary_op(Minus, Value(ty), r[b], ty, line)
  BitNot,       // r[a] = ~convert(r[b], ty), element-wise
  Not,          // r[a] = i32(!truthy(r[b]))
  Truthy,       // r[a] = i32(truthy(r[b]))
  Jump,         // pc = imm
  Jz,           // if (!truthy(r[a])) pc = imm
  Jnz,          // if (truthy(r[a])) pc = imm
  AddrSlot,     // r[a] = ptr(ty, &r[b].raw)   — address of a non-struct slot
  AddrOf,       // r[a] = ptr(ty, r[b].ptr())  — retype / struct slot / deref
  AddrOff,      // r[a] = ptr(ty, r[b].ptr() + imm)       — member / swizzle lane
  AddrIndex,    // r[a] = ptr(ty, r[b].ptr() + r[c].elem_i() * imm); null-checked
  CheckNull,    // fail strings[imm] if r[a].ptr() == nullptr
  Load,         // r[a] = load ty at r[b].ptr() (struct loads as a reference)
  Store,        // store r[b] (already converted) at r[a].ptr()
  CopyMem,      // memcpy(r[a].ptr(), r[b].ptr(), imm)
  ZeroInit,     // r[a] = Value(ty)
  LocalPtr,     // r[a] = ptr(ty, ctx.local_base + imm)
  Alloca,       // r[a] = ptr(ty, fresh zeroed frame storage of imm bytes)
  Splat,        // r[a] = broadcast convert(r[b], scalar(ty.kind)) into ty
  BuildVec,     // r[a] = concat r[b] .. r[b+c-1] into ty (VecLit semantics)
  Swizzle,      // r[a] = swizzle read of r[b]; lanes packed in imm, len in aux
  CallBuiltin,  // r[a] = builtin imm over window r[b] .. r[b+c-1]
  CallUser,     // r[a] = call funcs[imm] with args r[b] .. r[b+c-1]
  Ret,          // return r[a]
  RetVoid,      // return void
  Fail,         // throw InterpError{strings[imm], line}
};

struct BInsn {
  BOp op = BOp::Nop;
  std::uint8_t aux = 0;  // Tok for Bin; swizzle length for Swizzle
  std::uint16_t a = 0, b = 0, c = 0;
  std::uint32_t ty = 0;   // index into BytecodeModule::types
  std::uint32_t imm = 0;  // op-specific: jump target, pool index, offset, ...
  std::int32_t line = 0;  // source line for runtime diagnostics
};

// One compiled function; parallel to Module::funcs by index.
struct BcFunc {
  std::uint32_t num_regs = 0;
  std::vector<BInsn> code;
};

struct BytecodeModule {
  std::vector<Type> types;         // index 0 is always Kind::Void
  std::vector<Value> consts;       // scalar / vector literals only
  std::vector<std::string> strings;  // runtime diagnostic messages
  std::vector<BcFunc> funcs;       // parallel to Module::funcs
};

// Compiles every function of `mod` to bytecode.  Infallible for any module
// the parser accepts: constructs that cannot be compiled statically (e.g. an
// ill-formed lvalue the interpreter would reject at runtime) become Fail
// instructions carrying the interpreter's exact message.
std::shared_ptr<const BytecodeModule> compile_bytecode(const Module& mod);

// Serializes `mod` (structs, function metadata, and its bytecode — compiled
// on the fly when absent) into the cacheable binary container.
std::vector<std::uint8_t> serialize_module(const Module& mod);

// Rebuilds a Module from a serialized container.  The result has full
// function metadata (params, locals, kernel/barrier flags) but null bodies:
// execution must go through the VM.  Returns nullptr on any corruption —
// bad magic, size mismatch, checksum failure, or out-of-range indices — with
// the reason in *error; corrupt input is never executed.
std::shared_ptr<const Module> deserialize_module(
    std::span<const std::uint8_t> bytes, std::string* error = nullptr);

}  // namespace clc
