#include "clc/parser.h"

#include <cstdlib>
#include <stdexcept>

#include "clc/builtins.h"

namespace clc {

namespace {

// Thrown internally to unwind to parse_module on the first hard error.
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
  int line = 0;
  int col = 0;
};

int binop_prec(Tok t) noexcept {
  switch (t) {
    case Tok::PipePipe: return 1;
    case Tok::AmpAmp: return 2;
    case Tok::Pipe: return 3;
    case Tok::Caret: return 4;
    case Tok::Amp: return 5;
    case Tok::EqEq:
    case Tok::NotEq: return 6;
    case Tok::Lt:
    case Tok::Gt:
    case Tok::Le:
    case Tok::Ge: return 7;
    case Tok::Shl:
    case Tok::Shr: return 8;
    case Tok::Plus:
    case Tok::Minus: return 9;
    case Tok::Star:
    case Tok::Slash:
    case Tok::Percent: return 10;
    default: return -1;
  }
}

bool is_compound_assign(Tok t) noexcept {
  switch (t) {
    case Tok::PlusAssign:
    case Tok::MinusAssign:
    case Tok::StarAssign:
    case Tok::SlashAssign:
    case Tok::PercentAssign:
    case Tok::AmpAssign:
    case Tok::PipeAssign:
    case Tok::CaretAssign:
    case Tok::ShlAssign:
    case Tok::ShrAssign: return true;
    default: return false;
  }
}

// Integer rank for usual arithmetic conversions.
int int_rank(Kind k) noexcept {
  switch (k) {
    case Kind::Bool: return 0;
    case Kind::I8:
    case Kind::U8: return 1;
    case Kind::I16:
    case Kind::U16: return 2;
    case Kind::I32:
    case Kind::U32: return 3;
    case Kind::I64:
    case Kind::U64: return 4;
    default: return -1;
  }
}

Kind promote_int(Kind a, Kind b) noexcept {
  // Promote both to at least int, then higher rank wins; unsigned wins ties.
  auto prom = [](Kind k) { return int_rank(k) < 3 ? (is_signed_int(k) || k == Kind::Bool ? Kind::I32 : Kind::I32) : k; };
  const Kind pa = prom(a);
  const Kind pb = prom(b);
  const int ra = int_rank(pa);
  const int rb = int_rank(pb);
  if (ra != rb) return ra > rb ? pa : pb;
  if (!is_signed_int(pa)) return pa;
  if (!is_signed_int(pb)) return pb;
  return pa;
}

}  // namespace

Parser::Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {
  if (toks_.empty()) toks_.push_back(Token{});
}

const Token& Parser::peek(int ahead) const noexcept {
  const std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  return p < toks_.size() ? toks_[p] : toks_.back();
}

const Token& Parser::advance() noexcept {
  const Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::accept(Tok k) noexcept {
  if (peek().kind == k) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expect(Tok k, const char* what) {
  if (!accept(k)) fail(std::string("expected ") + what);
  return true;
}

void Parser::fail(std::string msg) {
  ParseError e(std::move(msg));
  e.line = peek().line;
  e.col = peek().col;
  throw e;
}

// ---------------------------------------------------------------------------
// types
// ---------------------------------------------------------------------------

bool Parser::parse_named_scalar(std::string_view name, Type& out) const noexcept {
  static const struct {
    std::string_view name;
    Kind kind;
  } kBases[] = {
      {"bool", Kind::Bool},   {"char", Kind::I8},    {"uchar", Kind::U8},
      {"short", Kind::I16},   {"ushort", Kind::U16}, {"int", Kind::I32},
      {"uint", Kind::U32},    {"long", Kind::I64},   {"ulong", Kind::U64},
      {"float", Kind::F32},   {"double", Kind::F64}, {"size_t", Kind::U64},
      {"ptrdiff_t", Kind::I64},
  };
  for (const auto& b : kBases) {
    if (name.rfind(b.name, 0) != 0) continue;
    const std::string_view suffix = name.substr(b.name.size());
    if (suffix.empty()) {
      out = make_scalar(b.kind);
      return true;
    }
    if (suffix == "2" || suffix == "3" || suffix == "4") {
      out = make_scalar(b.kind, static_cast<std::uint8_t>(suffix[0] - '0'));
      return true;
    }
  }
  return false;
}

bool Parser::starts_type(int ahead) const noexcept {
  const Token& t = peek(ahead);
  switch (t.kind) {
    case Tok::KwGlobal:
    case Tok::KwLocal:
    case Tok::KwConstant:
    case Tok::KwPrivate:
    case Tok::KwConst:
    case Tok::KwVolatile:
    case Tok::KwRestrict:
    case Tok::KwUnsigned:
    case Tok::KwSigned:
    case Tok::KwVoid:
    case Tok::KwBool:
    case Tok::KwChar:
    case Tok::KwShort:
    case Tok::KwInt:
    case Tok::KwLong:
    case Tok::KwFloat:
    case Tok::KwDouble:
    case Tok::KwSizeT:
    case Tok::KwStruct:
    case Tok::KwImage2d:
    case Tok::KwImage3d:
    case Tok::KwSampler: return true;
    case Tok::Ident: {
      Type tmp;
      return parse_named_scalar(t.text, tmp) ||
             struct_names_.count(t.text) != 0;
    }
    default: return false;
  }
}

Type Parser::parse_type() {
  AddrSpace space = AddrSpace::Private;
  bool space_set = false;
  last_type_const_ = false;
  // qualifiers
  for (;;) {
    switch (peek().kind) {
      case Tok::KwGlobal: space = AddrSpace::Global; space_set = true; advance(); continue;
      case Tok::KwLocal: space = AddrSpace::Local; space_set = true; advance(); continue;
      case Tok::KwConstant: space = AddrSpace::Constant; space_set = true; advance(); continue;
      case Tok::KwPrivate: space = AddrSpace::Private; space_set = true; advance(); continue;
      case Tok::KwConst: last_type_const_ = true; advance(); continue;
      case Tok::KwVolatile:
      case Tok::KwRestrict: advance(); continue;
      default: break;
    }
    break;
  }

  Type base;
  const Token& t = peek();
  switch (t.kind) {
    case Tok::KwVoid: advance(); base = make_scalar(Kind::Void); break;
    case Tok::KwBool: advance(); base = make_scalar(Kind::Bool); break;
    case Tok::KwChar: advance(); base = make_scalar(Kind::I8); break;
    case Tok::KwShort: advance(); base = make_scalar(Kind::I16); break;
    case Tok::KwInt: advance(); base = make_scalar(Kind::I32); break;
    case Tok::KwLong: advance(); base = make_scalar(Kind::I64); break;
    case Tok::KwFloat: advance(); base = make_scalar(Kind::F32); break;
    case Tok::KwDouble: advance(); base = make_scalar(Kind::F64); break;
    case Tok::KwSizeT: advance(); base = make_scalar(Kind::U64); break;
    case Tok::KwImage2d: advance(); base = Type{Kind::Image2D, 1, space, -1, Kind::Void, 1}; break;
    case Tok::KwImage3d: advance(); base = Type{Kind::Image3D, 1, space, -1, Kind::Void, 1}; break;
    case Tok::KwSampler: advance(); base = Type{Kind::Sampler, 1, space, -1, Kind::Void, 1}; break;
    case Tok::KwUnsigned: {
      advance();
      Kind k = Kind::U32;
      switch (peek().kind) {
        case Tok::KwChar: advance(); k = Kind::U8; break;
        case Tok::KwShort: advance(); k = Kind::U16; break;
        case Tok::KwInt: advance(); k = Kind::U32; break;
        case Tok::KwLong: advance(); k = Kind::U64; break;
        default: break;
      }
      base = make_scalar(k);
      break;
    }
    case Tok::KwSigned: {
      advance();
      Kind k = Kind::I32;
      switch (peek().kind) {
        case Tok::KwChar: advance(); k = Kind::I8; break;
        case Tok::KwShort: advance(); k = Kind::I16; break;
        case Tok::KwInt: advance(); k = Kind::I32; break;
        case Tok::KwLong: advance(); k = Kind::I64; break;
        default: break;
      }
      base = make_scalar(k);
      break;
    }
    case Tok::KwStruct: {
      advance();
      if (peek().kind != Tok::Ident) fail("expected struct tag");
      const std::string tag = advance().text;
      const auto it = struct_names_.find(tag);
      if (it == struct_names_.end()) fail("unknown struct '" + tag + "'");
      base = make_struct(it->second);
      break;
    }
    case Tok::Ident: {
      Type named;
      if (parse_named_scalar(t.text, named)) {
        advance();
        base = named;
      } else if (const auto it = struct_names_.find(t.text); it != struct_names_.end()) {
        advance();
        base = make_struct(it->second);
      } else {
        fail("expected type, got '" + t.text + "'");
      }
      break;
    }
    default: fail("expected type");
  }

  // trailing qualifiers like "const" in "float const *"
  while (peek().kind == Tok::KwConst || peek().kind == Tok::KwVolatile ||
         peek().kind == Tok::KwRestrict) {
    if (peek().kind == Tok::KwConst) last_type_const_ = true;
    advance();
  }

  if (accept(Tok::Star)) {
    // Qualifiers after the '*' bind to the pointer itself ("float* const"),
    // not the pointee — they do not make the buffer read-only.
    while (peek().kind == Tok::KwConst || peek().kind == Tok::KwRestrict ||
           peek().kind == Tok::KwVolatile)
      advance();
    if (peek().kind == Tok::Star) fail("pointer-to-pointer types are not supported");
    if (base.kind == Kind::Struct)
      return make_ptr(Kind::Struct, 1, space, base.struct_id);
    return make_ptr(base.kind, base.vec, space);
  }
  if (space_set && space != AddrSpace::Private && base.kind != Kind::Pointer &&
      base.kind != Kind::Image2D && base.kind != Kind::Image3D &&
      base.kind != Kind::Sampler) {
    // "__local float x[...]" — keep the space; the decl statement uses it.
    base.as = space;
  }
  return base;
}

void Parser::parse_struct_body(StructDef& def) {
  expect(Tok::LBrace, "'{'");
  while (!accept(Tok::RBrace)) {
    Type ft = parse_type();
    for (;;) {
      if (peek().kind != Tok::Ident) fail("expected field name");
      StructField f;
      f.name = advance().text;
      f.type = ft;
      if (accept(Tok::LBracket)) fail("array struct fields are not supported");
      def.fields.push_back(std::move(f));
      if (!accept(Tok::Comma)) break;
    }
    expect(Tok::Semi, "';' after struct field");
  }
  // layout: natural alignment
  std::size_t off = 0;
  std::size_t maxal = 1;
  for (auto& f : def.fields) {
    const std::size_t al = align_of(f.type, mod_->structs);
    const std::size_t sz = size_of(f.type, mod_->structs);
    off = (off + al - 1) / al * al;
    f.offset = off;
    off += sz;
    if (al > maxal) maxal = al;
  }
  def.align = maxal;
  def.size = (off + maxal - 1) / maxal * maxal;
  if (def.size == 0) def.size = 1;
}

// ---------------------------------------------------------------------------
// declarations
// ---------------------------------------------------------------------------

bool Parser::parse_module(Module& m, Diag& diag) {
  mod_ = &m;
  try {
    while (peek().kind != Tok::End) parse_top_level();
    return true;
  } catch (const ParseError& e) {
    diag = {e.what(), e.line, e.col};
    return false;
  }
}

void Parser::parse_top_level() {
  // typedef struct {...} Name; | struct Name {...}; | [__kernel] func
  if (accept(Tok::KwTypedef)) {
    expect(Tok::KwStruct, "'struct' after typedef");
    std::string tag;
    if (peek().kind == Tok::Ident) tag = advance().text;
    StructDef def;
    def.name = tag.empty() ? "<anon>" : tag;
    const auto id = static_cast<std::int16_t>(mod_->structs.size());
    mod_->structs.push_back({});  // reserve id for self-reference via pointer
    parse_struct_body(def);
    if (def.name == "<anon>") def.name = "anon" + std::to_string(id);
    mod_->structs[static_cast<std::size_t>(id)] = std::move(def);
    if (!tag.empty()) struct_names_[tag] = id;
    if (peek().kind != Tok::Ident) fail("expected typedef name");
    struct_names_[advance().text] = id;
    expect(Tok::Semi, "';'");
    return;
  }
  if (peek().kind == Tok::KwStruct && peek(1).kind == Tok::Ident &&
      peek(2).kind == Tok::LBrace) {
    advance();
    const std::string tag = advance().text;
    const auto id = static_cast<std::int16_t>(mod_->structs.size());
    struct_names_[tag] = id;  // allow self-referencing pointers
    mod_->structs.push_back({});
    StructDef def;
    def.name = tag;
    parse_struct_body(def);
    mod_->structs[static_cast<std::size_t>(id)] = std::move(def);
    expect(Tok::Semi, "';'");
    return;
  }

  bool is_kernel = false;
  while (accept(Tok::KwKernel)) is_kernel = true;
  Type ret = parse_type();
  if (peek().kind != Tok::Ident) fail("expected function name");
  std::string name = advance().text;
  parse_function(ret, std::move(name), is_kernel);
}

void Parser::parse_function(Type ret, std::string name, bool is_kernel) {
  auto fn = std::make_unique<FuncDecl>();
  fn->name = std::move(name);
  fn->ret = ret;
  fn->is_kernel = is_kernel;
  cur_ = fn.get();
  push_scope();

  expect(Tok::LParen, "'('");
  if (!accept(Tok::RParen)) {
    for (;;) {
      if (accept(Tok::KwVoid) && peek().kind == Tok::RParen) {
        advance();
        break;
      }
      ParamInfo p;
      p.type = parse_type();
      p.is_const = last_type_const_;
      if (peek().kind == Tok::Ident) p.name = advance().text;
      // Handle classification — the property CheCL's ksig parser extracts.
      if (p.type.kind == Kind::Pointer &&
          (p.type.as == AddrSpace::Global || p.type.as == AddrSpace::Local ||
           p.type.as == AddrSpace::Constant)) {
        p.is_handle = true;
        p.is_local_ptr = p.type.as == AddrSpace::Local;
      } else if (p.type.kind == Kind::Image2D || p.type.kind == Kind::Image3D ||
                 p.type.kind == Kind::Sampler) {
        p.is_handle = true;
      }
      p.slot = declare_var(p.name.empty() ? "<unnamed>" : p.name, p.type,
                           peek().line);
      fn->params.push_back(std::move(p));
      if (accept(Tok::RParen)) break;
      expect(Tok::Comma, "',' or ')'");
    }
  }

  // Register the declaration before parsing the body so the name resolves
  // for self-recursive calls (the interpreter's depth limit handles runaway
  // recursion at execution time).
  FuncDecl* fnp = fn.get();
  mod_->funcs.push_back(std::move(fn));
  if (accept(Tok::Semi)) {
    // forward declaration: signature only
    pop_scope();
    cur_ = nullptr;
    return;
  }
  fnp->body = parse_block();
  pop_scope();
  cur_ = nullptr;
}

int Parser::declare_var(const std::string& name, const Type& t, int line) {
  (void)line;
  auto& scope = scopes_.back();
  const int slot = cur_->num_slots++;
  scope[name] = VarInfo{slot, t};
  return slot;
}

const Parser::VarInfo* Parser::lookup_var(std::string_view name) const noexcept {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    const auto f = it->find(std::string(name));
    if (f != it->end()) return &f->second;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parse_block() {
  expect(Tok::LBrace, "'{'");
  auto s = std::make_unique<Stmt>();
  s->k = Stmt::K::Block;
  s->line = peek().line;
  push_scope();
  while (!accept(Tok::RBrace)) {
    if (peek().kind == Tok::End) fail("unexpected end of input in block");
    s->body.push_back(parse_stmt());
  }
  pop_scope();
  return s;
}

StmtPtr Parser::parse_decl_stmt() {
  auto s = std::make_unique<Stmt>();
  s->k = Stmt::K::Decl;
  s->line = peek().line;
  const Type t = parse_type();

  // Possibly multiple declarators: chain extra ones as a block.
  std::vector<StmtPtr> extra;
  bool first = true;
  for (;;) {
    StmtPtr d;
    if (first) {
      d = std::move(s);
    } else {
      d = std::make_unique<Stmt>();
      d->k = Stmt::K::Decl;
      d->line = peek().line;
    }
    if (peek().kind != Tok::Ident) fail("expected variable name");
    const std::string name = advance().text;
    Type vt = t;
    d->decl_space = t.as;
    if (accept(Tok::LBracket)) {
      ExprPtr len = parse_cond();
      std::int64_t n = 0;
      if (!const_int(*len, n))
        fail("array size must be a constant expression");
      if (n <= 0) fail("array size must be positive");
      expect(Tok::RBracket, "']'");
      d->array_len = n;
    }
    d->decl_type = vt;
    if (d->decl_space == AddrSpace::Local) {
      if (!cur_->is_kernel)
        fail("__local declarations are only supported in kernels");
      LocalDecl ld;
      ld.type = vt;
      ld.array_len = d->array_len > 0 ? d->array_len : 1;
      // align the arena offset
      const std::size_t al = align_of(vt, mod_->structs);
      std::size_t off = cur_->local_mem_bytes;
      off = (off + al - 1) / al * al;
      ld.offset = off;
      cur_->local_mem_bytes =
          off + size_of(vt, mod_->structs) * static_cast<std::size_t>(ld.array_len);
      d->local_id = static_cast<int>(cur_->locals.size());
      d->local_offset = ld.offset;
      cur_->locals.push_back(ld);
      // the slot holds a pointer into the group arena
      // Both arrays and scalar __local variables are accessed through a
      // pointer into the group-shared arena.
      Type pt = vt.kind == Kind::Struct
                    ? make_ptr(Kind::Struct, 1, AddrSpace::Local, vt.struct_id)
                    : make_ptr(vt.kind, vt.vec, AddrSpace::Local);
      d->slot = declare_var(name, pt, d->line);
    } else if (d->array_len > 0) {
      Type pt = vt.kind == Kind::Struct
                    ? make_ptr(Kind::Struct, 1, AddrSpace::Private, vt.struct_id)
                    : make_ptr(vt.kind, vt.vec, AddrSpace::Private);
      d->slot = declare_var(name, pt, d->line);
    } else {
      d->slot = declare_var(name, vt, d->line);
    }
    if (accept(Tok::Assign)) {
      if (d->array_len > 0 || d->decl_space == AddrSpace::Local)
        fail("initializers on arrays/__local variables are not supported");
      d->e = parse_assign();
    }
    if (first) {
      s = std::move(d);
      first = false;
    } else {
      extra.push_back(std::move(d));
    }
    if (accept(Tok::Comma)) continue;
    expect(Tok::Semi, "';'");
    break;
  }
  if (extra.empty()) return s;
  auto blk = std::make_unique<Stmt>();
  blk->k = Stmt::K::Block;
  blk->line = s->line;
  blk->body.push_back(std::move(s));
  for (auto& d : extra) blk->body.push_back(std::move(d));
  return blk;
}

StmtPtr Parser::parse_stmt() {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::LBrace: return parse_block();
    case Tok::Semi: {
      advance();
      auto s = std::make_unique<Stmt>();
      s->k = Stmt::K::Block;
      return s;
    }
    case Tok::KwIf: {
      advance();
      auto s = std::make_unique<Stmt>();
      s->k = Stmt::K::If;
      s->line = t.line;
      expect(Tok::LParen, "'('");
      s->e = parse_expr();
      expect(Tok::RParen, "')'");
      s->then_s = parse_stmt();
      if (accept(Tok::KwElse)) s->else_s = parse_stmt();
      return s;
    }
    case Tok::KwWhile: {
      advance();
      auto s = std::make_unique<Stmt>();
      s->k = Stmt::K::While;
      s->line = t.line;
      expect(Tok::LParen, "'('");
      s->e = parse_expr();
      expect(Tok::RParen, "')'");
      s->then_s = parse_stmt();
      return s;
    }
    case Tok::KwDo: {
      advance();
      auto s = std::make_unique<Stmt>();
      s->k = Stmt::K::DoWhile;
      s->line = t.line;
      s->then_s = parse_stmt();
      expect(Tok::KwWhile, "'while'");
      expect(Tok::LParen, "'('");
      s->e = parse_expr();
      expect(Tok::RParen, "')'");
      expect(Tok::Semi, "';'");
      return s;
    }
    case Tok::KwFor: {
      advance();
      auto s = std::make_unique<Stmt>();
      s->k = Stmt::K::For;
      s->line = t.line;
      expect(Tok::LParen, "'('");
      push_scope();
      if (!accept(Tok::Semi)) {
        if (starts_type()) {
          s->init = parse_decl_stmt();
        } else {
          auto is = std::make_unique<Stmt>();
          is->k = Stmt::K::ExprStmt;
          is->e = parse_expr();
          s->init = std::move(is);
          expect(Tok::Semi, "';'");
        }
      }
      if (!accept(Tok::Semi)) {
        s->e = parse_expr();
        expect(Tok::Semi, "';'");
      }
      if (!accept(Tok::RParen)) {
        s->inc = parse_expr();
        expect(Tok::RParen, "')'");
      }
      s->then_s = parse_stmt();
      pop_scope();
      return s;
    }
    case Tok::KwReturn: {
      advance();
      auto s = std::make_unique<Stmt>();
      s->k = Stmt::K::Return;
      s->line = t.line;
      if (!accept(Tok::Semi)) {
        s->e = parse_expr();
        expect(Tok::Semi, "';'");
      }
      return s;
    }
    case Tok::KwBreak: {
      advance();
      expect(Tok::Semi, "';'");
      auto s = std::make_unique<Stmt>();
      s->k = Stmt::K::Break;
      s->line = t.line;
      return s;
    }
    case Tok::KwContinue: {
      advance();
      expect(Tok::Semi, "';'");
      auto s = std::make_unique<Stmt>();
      s->k = Stmt::K::Continue;
      s->line = t.line;
      return s;
    }
    default:
      if (starts_type()) {
        // Disambiguate "a * b;" style false positives: types here start with
        // keywords or known type names, so this is safe.
        return parse_decl_stmt();
      }
      auto s = std::make_unique<Stmt>();
      s->k = Stmt::K::ExprStmt;
      s->line = t.line;
      s->e = parse_expr();
      expect(Tok::Semi, "';'");
      return s;
  }
}

// ---------------------------------------------------------------------------
// expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expr() { return parse_assign(); }

void Parser::check_lvalue(const Expr& e, int line) {
  switch (e.k) {
    case Expr::K::VarRef:
    case Expr::K::Index:
    case Expr::K::Member: return;
    case Expr::K::Unary:
      if (e.op == Tok::Star) return;
      break;
    default: break;
  }
  ParseError err("expression is not assignable");
  err.line = line;
  throw err;
}

ExprPtr Parser::parse_assign() {
  ExprPtr lhs = parse_cond();
  const Tok k = peek().kind;
  if (k == Tok::Assign || is_compound_assign(k)) {
    const int line = peek().line;
    advance();
    check_lvalue(*lhs, line);
    auto e = std::make_unique<Expr>();
    e->k = Expr::K::Assign;
    e->op = k;
    e->line = line;
    e->type = lhs->type;
    e->a = std::move(lhs);
    e->b = parse_assign();
    return e;
  }
  return lhs;
}

ExprPtr Parser::parse_cond() {
  ExprPtr c = parse_binary(0);
  if (accept(Tok::Question)) {
    auto e = std::make_unique<Expr>();
    e->k = Expr::K::Cond;
    e->line = peek().line;
    e->a = std::move(c);
    e->b = parse_assign();
    expect(Tok::Colon, "':'");
    e->c = parse_cond();
    e->type = e->b->type;
    return e;
  }
  return c;
}

Type Parser::binary_result(Tok op, const Type& a, const Type& b, int line) {
  auto err = [&](const char* m) {
    ParseError e(m);
    e.line = line;
    throw e;
  };
  switch (op) {
    case Tok::AmpAmp:
    case Tok::PipePipe:
    case Tok::EqEq:
    case Tok::NotEq:
    case Tok::Lt:
    case Tok::Gt:
    case Tok::Le:
    case Tok::Ge: return make_scalar(Kind::I32);
    default: break;
  }
  // pointer arithmetic
  if (a.kind == Kind::Pointer && is_integer(b.kind) &&
      (op == Tok::Plus || op == Tok::Minus))
    return a;
  if (b.kind == Kind::Pointer && is_integer(a.kind) && op == Tok::Plus) return b;
  if (a.kind == Kind::Pointer && b.kind == Kind::Pointer && op == Tok::Minus)
    return make_scalar(Kind::I64);
  if (!is_arith(a.kind) || !is_arith(b.kind))
    err("invalid operand types for binary operator");

  const std::uint8_t vec = a.vec > 1 ? a.vec : b.vec;
  if (a.vec > 1 && b.vec > 1 && a.vec != b.vec)
    err("vector width mismatch in binary operator");
  switch (op) {
    case Tok::Shl:
    case Tok::Shr:
    case Tok::Percent:
    case Tok::Amp:
    case Tok::Pipe:
    case Tok::Caret: {
      if (!is_integer(a.kind) || !is_integer(b.kind))
        err("bitwise operator requires integer operands");
      Type r = make_scalar(op == Tok::Shl || op == Tok::Shr
                               ? (int_rank(a.kind) < 3 ? promote_int(a.kind, a.kind) : a.kind)
                               : promote_int(a.kind, b.kind),
                           vec);
      return r;
    }
    default: break;
  }
  if (is_float(a.kind) || is_float(b.kind)) {
    const Kind k = a.kind == Kind::F64 || b.kind == Kind::F64 ? Kind::F64 : Kind::F32;
    return make_scalar(k, vec);
  }
  return make_scalar(promote_int(a.kind, b.kind), vec);
}

ExprPtr Parser::parse_binary(int min_prec) {
  ExprPtr lhs = parse_unary();
  for (;;) {
    const Tok op = peek().kind;
    const int prec = binop_prec(op);
    if (prec < 0 || prec < min_prec) return lhs;
    const int line = peek().line;
    advance();
    ExprPtr rhs = parse_binary(prec + 1);
    auto e = std::make_unique<Expr>();
    e->k = Expr::K::Binary;
    e->op = op;
    e->line = line;
    e->type = binary_result(op, lhs->type, rhs->type, line);
    e->a = std::move(lhs);
    e->b = std::move(rhs);
    lhs = std::move(e);
  }
}

ExprPtr Parser::parse_unary() {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::Minus:
    case Tok::Bang:
    case Tok::Tilde: {
      advance();
      auto e = std::make_unique<Expr>();
      e->k = Expr::K::Unary;
      e->op = t.kind;
      e->line = t.line;
      e->a = parse_unary();
      if (t.kind == Tok::Bang) {
        e->type = make_scalar(Kind::I32);
      } else if (t.kind == Tok::Tilde) {
        if (!is_integer(e->a->type.kind)) fail("'~' requires an integer operand");
        e->type = make_scalar(promote_int(e->a->type.kind, e->a->type.kind),
                              e->a->type.vec);
      } else {
        e->type = e->a->type;
        if (is_integer(e->type.kind) && int_rank(e->type.kind) < 3)
          e->type = make_scalar(Kind::I32, e->type.vec);
      }
      return e;
    }
    case Tok::Plus: advance(); return parse_unary();
    case Tok::Star: {
      advance();
      auto e = std::make_unique<Expr>();
      e->k = Expr::K::Unary;
      e->op = Tok::Star;
      e->line = t.line;
      e->a = parse_unary();
      if (e->a->type.kind != Kind::Pointer) fail("cannot dereference non-pointer");
      if (e->a->type.struct_id >= 0)
        e->type = make_struct(e->a->type.struct_id);
      else
        e->type = make_scalar(e->a->type.elem_kind, e->a->type.elem_vec);
      e->type.as = e->a->type.as;
      return e;
    }
    case Tok::Amp: {
      advance();
      auto e = std::make_unique<Expr>();
      e->k = Expr::K::Unary;
      e->op = Tok::Amp;
      e->line = t.line;
      e->a = parse_unary();
      check_lvalue(*e->a, t.line);
      const Type& it = e->a->type;
      if (it.kind == Kind::Struct)
        e->type = make_ptr(Kind::Struct, 1, it.as, it.struct_id);
      else
        e->type = make_ptr(it.kind, it.vec, it.as);
      return e;
    }
    case Tok::PlusPlus:
    case Tok::MinusMinus: {
      advance();
      auto e = std::make_unique<Expr>();
      e->k = Expr::K::PreIncDec;
      e->op = t.kind == Tok::PlusPlus ? Tok::Plus : Tok::Minus;
      e->line = t.line;
      e->a = parse_unary();
      check_lvalue(*e->a, t.line);
      e->type = e->a->type;
      return e;
    }
    case Tok::LParen: {
      // cast or parenthesized expression
      if (starts_type(1)) {
        advance();
        const Type ct = parse_type();
        expect(Tok::RParen, "')'");
        if (ct.vec > 1 && peek().kind == Tok::LParen) {
          // vector literal: (float4)(a, b, c, d)
          advance();
          auto e = std::make_unique<Expr>();
          e->k = Expr::K::VecLit;
          e->type = ct;
          e->line = t.line;
          if (!accept(Tok::RParen)) {
            for (;;) {
              e->args.push_back(parse_assign());
              if (accept(Tok::RParen)) break;
              expect(Tok::Comma, "',' or ')'");
            }
          }
          // widths: either one broadcast scalar or components summing to vec
          std::size_t total = 0;
          for (const auto& a : e->args) total += a->type.vec;
          if (!(e->args.size() == 1 && e->args[0]->type.vec == 1) && total != ct.vec)
            fail("vector literal component count mismatch");
          return e;
        }
        auto e = std::make_unique<Expr>();
        e->k = Expr::K::Cast;
        e->type = ct;
        e->line = t.line;
        e->a = parse_unary();
        return e;
      }
      break;
    }
    default: break;
  }
  return parse_postfix();
}

ExprPtr Parser::parse_call(std::string name, int line) {
  auto e = std::make_unique<Expr>();
  e->k = Expr::K::Call;
  e->line = line;
  if (!accept(Tok::RParen)) {
    for (;;) {
      e->args.push_back(parse_assign());
      if (accept(Tok::RParen)) break;
      expect(Tok::Comma, "',' or ')'");
    }
  }
  // convert_<type>(x) becomes a cast
  if (name.rfind("convert_", 0) == 0) {
    Type ct;
    std::string tn = name.substr(8);
    // strip saturation/rounding suffixes like _sat, _rte
    if (const auto p = tn.find("_sat"); p != std::string::npos) tn = tn.substr(0, p);
    if (const auto p = tn.find("_rt"); p != std::string::npos) tn = tn.substr(0, p);
    if (parse_named_scalar(tn, ct) && e->args.size() == 1) {
      e->k = Expr::K::Cast;
      e->type = ct;
      e->a = std::move(e->args[0]);
      e->args.clear();
      return e;
    }
    fail("malformed convert_* call: " + name);
  }
  const Builtin b = lookup_builtin(name);
  if (b != Builtin::None) {
    e->builtin_id = static_cast<int>(b);
    std::vector<Type> at;
    at.reserve(e->args.size());
    for (const auto& a : e->args) at.push_back(a->type);
    e->type = builtin_result_type(b, at);
    if (b == Builtin::Barrier) cur_->uses_barrier = true;
    return e;
  }
  const FuncDecl* fd = mod_->find_func(name);
  if (fd == nullptr) fail("call to undefined function '" + name + "'");
  if (fd->params.size() != e->args.size())
    fail("wrong number of arguments to '" + name + "'");
  if (fd->uses_barrier) cur_->uses_barrier = true;
  e->callee = fd;
  e->type = fd->ret;
  return e;
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  for (;;) {
    const Token& t = peek();
    if (t.kind == Tok::LBracket) {
      advance();
      auto idx = std::make_unique<Expr>();
      idx->k = Expr::K::Index;
      idx->line = t.line;
      idx->a = std::move(e);
      idx->b = parse_expr();
      expect(Tok::RBracket, "']'");
      if (idx->a->type.kind != Kind::Pointer)
        fail("subscripted value is not a pointer");
      if (idx->a->type.struct_id >= 0)
        idx->type = make_struct(idx->a->type.struct_id);
      else
        idx->type = make_scalar(idx->a->type.elem_kind, idx->a->type.elem_vec);
      idx->type.as = idx->a->type.as;
      e = std::move(idx);
    } else if (t.kind == Tok::Dot || t.kind == Tok::Arrow) {
      advance();
      if (peek().kind != Tok::Ident) fail("expected member name");
      const std::string member = advance().text;
      auto m = std::make_unique<Expr>();
      m->k = Expr::K::Member;
      m->line = t.line;
      if (t.kind == Tok::Arrow) {
        // a->f  ==  (*a).f
        auto d = std::make_unique<Expr>();
        d->k = Expr::K::Unary;
        d->op = Tok::Star;
        d->line = t.line;
        if (e->type.kind != Kind::Pointer || e->type.struct_id < 0)
          fail("'->' requires a struct pointer");
        d->type = make_struct(e->type.struct_id);
        d->type.as = e->type.as;
        d->a = std::move(e);
        m->a = std::move(d);
      } else {
        m->a = std::move(e);
      }
      const Type& bt = m->a->type;
      if (bt.kind == Kind::Struct) {
        const auto& sd = mod_->structs[static_cast<std::size_t>(bt.struct_id)];
        const int fi = sd.field_index(member);
        if (fi < 0) fail("no field '" + member + "' in struct " + sd.name);
        m->member_index = fi;
        m->type = sd.fields[static_cast<std::size_t>(fi)].type;
      } else if (bt.vec > 1) {
        // swizzle
        std::uint8_t comps[4];
        std::size_t n = 0;
        if (member.size() >= 1 && (member[0] == 's' || member[0] == 'S') &&
            member.size() <= 5 && member.size() >= 2 &&
            std::isdigit(static_cast<unsigned char>(member[1])) != 0) {
          for (std::size_t i = 1; i < member.size(); ++i) {
            if (n >= 4 || member[i] < '0' || member[i] > '7')
              fail("bad swizzle '" + member + "'");
            comps[n++] = static_cast<std::uint8_t>(member[i] - '0');
          }
        } else {
          for (const char c : member) {
            std::uint8_t ci = 0;
            switch (c) {
              case 'x': ci = 0; break;
              case 'y': ci = 1; break;
              case 'z': ci = 2; break;
              case 'w': ci = 3; break;
              case 'l': {  // .lo / .hi / .even / .odd unsupported
                fail("unsupported vector accessor '" + member + "'");
              }
              default: fail("bad swizzle '" + member + "'");
            }
            if (n >= 4) fail("swizzle too long");
            comps[n++] = ci;
          }
        }
        for (std::size_t i = 0; i < n; ++i)
          if (comps[i] >= bt.vec) fail("swizzle component out of range");
        m->swizzle_len = static_cast<std::uint8_t>(n);
        for (std::size_t i = 0; i < n; ++i) m->swizzle[i] = comps[i];
        m->type = make_scalar(bt.kind, n == 1 ? 1 : static_cast<std::uint8_t>(n));
      } else {
        fail("member access on non-struct, non-vector value");
      }
      e = std::move(m);
    } else if (t.kind == Tok::PlusPlus || t.kind == Tok::MinusMinus) {
      advance();
      check_lvalue(*e, t.line);
      auto p = std::make_unique<Expr>();
      p->k = Expr::K::PostIncDec;
      p->op = t.kind == Tok::PlusPlus ? Tok::Plus : Tok::Minus;
      p->line = t.line;
      p->type = e->type;
      p->a = std::move(e);
      e = std::move(p);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parse_primary() {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::IntLit: {
      advance();
      auto e = std::make_unique<Expr>();
      e->k = Expr::K::IntLit;
      e->line = t.line;
      e->int_val = t.int_value;
      Kind k = Kind::I32;
      if (t.is_long) k = t.is_unsigned ? Kind::U64 : Kind::I64;
      else if (t.is_unsigned) k = Kind::U32;
      else if (t.int_value > 0x7FFFFFFFull)
        k = t.int_value > 0xFFFFFFFFull ? Kind::I64 : Kind::U32;
      e->type = make_scalar(k);
      return e;
    }
    case Tok::FloatLit: {
      advance();
      auto e = std::make_unique<Expr>();
      e->k = Expr::K::FloatLit;
      e->line = t.line;
      e->float_val = t.float_value;
      e->type = make_scalar(t.is_float32 ? Kind::F32 : Kind::F64);
      return e;
    }
    case Tok::Ident: {
      const std::string name = t.text;
      const int line = t.line;
      advance();
      if (accept(Tok::LParen)) return parse_call(name, line);
      const VarInfo* v = lookup_var(name);
      if (v == nullptr) fail("use of undeclared identifier '" + name + "'");
      auto e = std::make_unique<Expr>();
      e->k = Expr::K::VarRef;
      e->line = line;
      e->slot = v->slot;
      e->type = v->type;
      return e;
    }
    case Tok::LParen: {
      advance();
      ExprPtr e = parse_expr();
      expect(Tok::RParen, "')'");
      return e;
    }
    default:
      fail(std::string("unexpected token ") + tok_name(t.kind));
  }
}

bool Parser::const_int(const Expr& e, std::int64_t& out) const noexcept {
  switch (e.k) {
    case Expr::K::IntLit:
      out = static_cast<std::int64_t>(e.int_val);
      return true;
    case Expr::K::Unary: {
      std::int64_t v = 0;
      if (e.op == Tok::Minus && const_int(*e.a, v)) {
        out = -v;
        return true;
      }
      return false;
    }
    case Expr::K::Binary: {
      std::int64_t a = 0;
      std::int64_t b = 0;
      if (!const_int(*e.a, a) || !const_int(*e.b, b)) return false;
      switch (e.op) {
        case Tok::Plus: out = a + b; return true;
        case Tok::Minus: out = a - b; return true;
        case Tok::Star: out = a * b; return true;
        case Tok::Slash:
          if (b == 0) return false;
          out = a / b;
          return true;
        case Tok::Shl: out = a << b; return true;
        case Tok::Shr: out = a >> b; return true;
        default: return false;
      }
    }
    case Expr::K::Cast: return const_int(*e.a, out);
    default: return false;
  }
}

}  // namespace clc
