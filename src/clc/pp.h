// pp.h — minimal preprocessor for the OpenCL C subset.
//
// Supports: // and /* */ comments (left to the lexer), line continuations,
// object-like and function-like #define, #undef, #ifdef/#ifndef/#else/#endif,
// and -D definitions from clBuildProgram options.  No #include (OpenCL
// programs here are self-contained strings), no token pasting/stringizing.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "clc/diag.h"

namespace clc {

struct MacroDef {
  bool function_like = false;
  std::vector<std::string> params;
  std::string body;
};

class Preprocessor {
 public:
  // `build_options` is the clBuildProgram option string; "-D NAME" and
  // "-DNAME=VALUE" forms are honoured, everything else is ignored.
  explicit Preprocessor(std::string_view build_options = {});

  // Expands `source`; returns false and fills diag on error.
  bool run(std::string_view source, std::string& out, Diag& diag);

 private:
  bool process_directive(std::string_view line, int line_no, Diag& diag);
  std::string expand_line(std::string_view line, int depth);
  [[nodiscard]] bool active() const noexcept;

  std::unordered_map<std::string, MacroDef> macros_;
  // #if-stack: each entry is "this branch is taken".
  std::vector<bool> cond_stack_;
};

}  // namespace clc
