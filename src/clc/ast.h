// ast.h — typed AST for the OpenCL C subset.
//
// Nodes are deliberately "fat" (one struct per category with a kind tag)
// rather than a class hierarchy: the interpreter is a tight switch and the
// parser fills in only the fields its kind uses.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "clc/token.h"
#include "clc/type.h"

namespace clc {

struct FuncDecl;
struct BytecodeModule;  // bytecode.h

struct Expr {
  enum class K : std::uint8_t {
    IntLit, FloatLit,
    VarRef,        // slot
    Binary,        // op, a, b
    Unary,         // op, a  (Minus, Bang, Tilde, Star=deref, Amp=addr-of)
    Assign,        // op (Assign or compound), a = lvalue, b = rhs
    Cond,          // a ? b : c
    Call,          // builtin_id or callee, args
    Index,         // a[b]
    Member,        // a.field (struct: member_index) or swizzle (vector)
    Cast,          // (type)a
    VecLit,        // (float4)(a, b, c, d) — args
    PreIncDec,     // op Plus/Minus, a
    PostIncDec,    // op Plus/Minus, a
  };

  K k = K::IntLit;
  Type type;  // result type
  int line = 0;

  std::uint64_t int_val = 0;
  double float_val = 0.0;
  int slot = -1;
  Tok op = Tok::End;
  std::unique_ptr<Expr> a, b, c;
  std::vector<std::unique_ptr<Expr>> args;
  int builtin_id = -1;
  const FuncDecl* callee = nullptr;
  int member_index = -1;               // struct field
  std::uint8_t swizzle[4] = {0, 0, 0, 0};
  std::uint8_t swizzle_len = 0;        // >0 => vector swizzle
};

using ExprPtr = std::unique_ptr<Expr>;

struct Stmt {
  enum class K : std::uint8_t {
    ExprStmt, Decl, Block, If, For, While, DoWhile, Return, Break, Continue,
  };

  K k = K::ExprStmt;
  int line = 0;

  ExprPtr e;      // ExprStmt expr; Decl initializer; Return value; loop cond
  ExprPtr inc;    // For increment
  std::unique_ptr<Stmt> init;    // For init
  std::unique_ptr<Stmt> then_s;  // If then / loop body
  std::unique_ptr<Stmt> else_s;  // If else
  std::vector<std::unique_ptr<Stmt>> body;  // Block

  // Decl:
  int slot = -1;
  Type decl_type;
  std::int64_t array_len = 0;     // >0: local array of decl_type elements
  AddrSpace decl_space = AddrSpace::Private;
  int local_id = -1;              // __local declaration id within the kernel
  std::size_t local_offset = 0;   // offset into the group-local arena
};

using StmtPtr = std::unique_ptr<Stmt>;

// One parameter of a (kernel or helper) function.
struct ParamInfo {
  std::string name;
  Type type;
  int slot = -1;
  // True when the formal receives an OpenCL handle through clSetKernelArg —
  // __global/__local/__constant pointers, image2d_t/image3d_t, sampler_t.
  // This is exactly the classification CheCL's source parser needs.
  bool is_handle = false;
  bool is_local_ptr = false;  // __local pointer (size-only clSetKernelArg)
  // `const`-qualified pointer parameter: the kernel body cannot store through
  // it, so the substrate's dirty tracker may skip the backing buffer.
  bool is_const = false;
};

// A __local declaration inside a kernel body; storage is one region per
// work-group, shared by all work-items.
struct LocalDecl {
  Type type;
  std::int64_t array_len = 1;
  std::size_t offset = 0;  // into the group-local arena
};

struct FuncDecl {
  std::string name;
  Type ret;
  std::vector<ParamInfo> params;
  StmtPtr body;
  bool is_kernel = false;
  bool uses_barrier = false;  // barrier() reachable: selects the lockstep engine
  int num_slots = 0;          // frame size (params + locals)
  std::vector<LocalDecl> locals;     // __local body declarations
  std::size_t local_mem_bytes = 0;   // total static __local usage
};

struct Module {
  std::vector<StructDef> structs;
  std::vector<std::unique_ptr<FuncDecl>> funcs;
  // Register bytecode, parallel to `funcs` by index; attached by
  // clc::compile() and deserialize_module().  Null for hand-built modules —
  // the NDRange engine falls back to the tree-walking interpreter then.
  std::shared_ptr<const BytecodeModule> bc;

  [[nodiscard]] const FuncDecl* find_func(std::string_view name) const noexcept {
    for (const auto& f : funcs)
      if (f->name == name) return f.get();
    return nullptr;
  }
  [[nodiscard]] std::vector<const FuncDecl*> kernels() const {
    std::vector<const FuncDecl*> ks;
    for (const auto& f : funcs)
      if (f->is_kernel) ks.push_back(f.get());
    return ks;
  }
};

}  // namespace clc
