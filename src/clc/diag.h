// diag.h — diagnostics for the clc front-end.
#pragma once

#include <string>

namespace clc {

// A single compile diagnostic.  clc reports the first hard error it hits;
// the substrate surfaces it through clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG).
struct Diag {
  std::string message;
  int line = 0;
  int col = 0;

  [[nodiscard]] bool ok() const noexcept { return message.empty(); }
  [[nodiscard]] std::string to_string() const {
    if (ok()) return {};
    return "clc error at " + std::to_string(line) + ":" + std::to_string(col) +
           ": " + message;
  }
};

}  // namespace clc
