// token.h — token kinds for the OpenCL C subset front-end.
#pragma once

#include <cstdint>
#include <string>

namespace clc {

enum class Tok : std::uint8_t {
  End,
  Ident,
  IntLit,    // value in Token::int_value, unsignedness/width in suffix flags
  FloatLit,  // value in Token::float_value
  StrLit,

  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Colon, Question, Dot, Arrow,

  // operators
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr,
  Lt, Gt, Le, Ge, EqEq, NotEq,
  AmpAmp, PipePipe,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
  PlusPlus, MinusMinus,

  // keywords
  KwKernel, KwGlobal, KwLocal, KwConstant, KwPrivate,
  KwConst, KwRestrict, KwVolatile, KwUnsigned, KwSigned,
  KwVoid, KwBool, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
  KwSizeT,
  KwStruct, KwTypedef,
  KwIf, KwElse, KwFor, KwWhile, KwDo, KwReturn, KwBreak, KwContinue,
  KwImage2d, KwImage3d, KwSampler,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;        // identifier / string spelling
  std::uint64_t int_value = 0;
  double float_value = 0.0;
  bool is_unsigned = false;  // integer literal had a 'u' suffix
  bool is_long = false;      // integer literal had an 'l' suffix
  bool is_float32 = false;   // float literal had an 'f' suffix
  int line = 0;
  int col = 0;
};

// Human-readable spelling for diagnostics.
const char* tok_name(Tok t) noexcept;

}  // namespace clc
