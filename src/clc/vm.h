// vm.h — register VM executing the bytecode of bytecode.h for one work-item.
//
// Drop-in peer of Interp: same WorkItemCtx, same InterpError faults, same
// Value/convert/call_builtin machinery underneath, so results are
// bit-identical to the tree-walking interpreter (asserted by the
// differential tests).  What changes is the execution shape: a flat
// instruction loop over a contiguous register file instead of recursive AST
// descent, and builtin arguments passed as a register window instead of a
// heap vector.
//
// A Vm instance persists for a host thread's whole launch (one per thread in
// execute_ndrange), so per-work-item state is pooled rather than allocated:
// register files are kept per call depth and grown monotonically, and frame
// scratch memory (private arrays, by-value structs) comes from a chunked
// bump arena with mark/release per call.  After the first work-item a thread
// executes with zero heap allocations per item.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "clc/bytecode.h"
#include "clc/interp.h"

namespace clc {

class Vm {
 public:
  // Requires mod.bc != nullptr.
  Vm(const Module& mod, WorkItemCtx& ctx)
      : mod_(mod), bc_(*mod.bc), ctx_(ctx) {}

  // Runs the function at `func_idx` (index into mod.funcs / bc.funcs).
  // Throws InterpError on runtime faults, like Interp::run_function.
  Value run_kernel(std::size_t func_idx, std::span<const Value> args) {
    return run(func_idx, args);
  }

  // Name-compatible entry: resolves `fn` to its module index first.
  Value run_function(const FuncDecl& fn, std::span<const Value> args);

 private:
  Value run(std::size_t fidx, std::span<const Value> args);

  // Bump-allocates `n` zero-filled bytes (16-byte aligned) from the arena,
  // growing it by fixed-size blocks.  Blocks never move once created, so
  // pointers held in registers stay valid across arena growth; a call frame
  // releases its allocations by rewinding to the mark it took on entry.
  // Zero fill matches the interpreter's value-initialised alloca vectors, so
  // reads of uninitialised private arrays stay bit-identical.
  std::uint8_t* arena_alloc(std::size_t n);

  const Module& mod_;
  const BytecodeModule& bc_;
  WorkItemCtx& ctx_;
  int depth_ = 0;

  // One register file per call depth, reused across work-items and grown to
  // the widest frame seen at that depth.  Stale values from a previous item
  // are never observed: the compiler writes every register before it is read
  // (parameters in the prologue, ZeroInit on every scalar declaration,
  // Alloca/LocalPtr on every aggregate, temporaries in straight-line order).
  std::vector<std::vector<Value>> frames_;
  std::vector<std::unique_ptr<std::uint8_t[]>> arena_blocks_;
  std::vector<std::size_t> arena_cap_;
  std::size_t arena_block_ = 0;  // cursor: current block ...
  std::size_t arena_off_ = 0;    // ... and offset within it
};

}  // namespace clc
