// value.h — runtime values for the clc interpreter.
//
// A Value is a typed 32-byte cell: scalars and vectors are stored inline
// element-wise (element i of a vector at raw + i * scalar_size), pointers and
// struct references store a raw host address (simcl device buffers live in
// host memory), images store a pointer to an ImageDesc.
#pragma once

#include <cstdint>
#include <cstring>

#include "clc/type.h"

namespace clc {

// Descriptor the interpreter uses for image2d_t access; owned by the caller
// (simcl's memory object).
struct ImageDesc {
  std::uint8_t* data = nullptr;
  std::size_t width = 0;
  std::size_t height = 0;
  std::size_t row_pitch = 0;   // bytes
  std::uint32_t channels = 4;  // 1 (CL_R), 2 (CL_RG) or 4 (CL_RGBA)
  bool float_channels = true;  // CL_FLOAT vs CL_UNSIGNED_INT*
};

// Sampler state as seen by read_image*.
struct SamplerDesc {
  bool normalized = false;
  std::uint32_t addressing = 0;  // CL_ADDRESS_* value
  std::uint32_t filter = 0;      // CL_FILTER_* value
};

struct Value {
  Type type;
  alignas(8) std::uint8_t raw[32] = {};

  Value() = default;
  explicit Value(const Type& t) : type(t) {}

  // -- scalar constructors ------------------------------------------------
  static Value of_i32(std::int32_t v) { return scalar(Kind::I32, v); }
  static Value of_u32(std::uint32_t v) { return scalar(Kind::U32, v); }
  static Value of_i64(std::int64_t v) { return scalar(Kind::I64, v); }
  static Value of_u64(std::uint64_t v) { return scalar(Kind::U64, v); }
  static Value of_f32(float v) {
    Value r(make_scalar(Kind::F32));
    std::memcpy(r.raw, &v, sizeof v);
    return r;
  }
  static Value of_f64(double v) {
    Value r(make_scalar(Kind::F64));
    std::memcpy(r.raw, &v, sizeof v);
    return r;
  }
  static Value of_bool(bool v) { return scalar(Kind::Bool, v ? 1 : 0); }
  static Value of_ptr(const Type& ptr_type, void* p) {
    Value r(ptr_type);
    std::memcpy(r.raw, &p, sizeof p);
    return r;
  }

  template <typename T>
  static Value scalar(Kind k, T v) {
    Value r(make_scalar(k));
    const auto widened = static_cast<std::int64_t>(v);
    std::memcpy(r.raw, &widened, scalar_size(k) <= 8 ? 8 : 8);
    return r;
  }

  // -- element accessors ----------------------------------------------------
  // Load element `i` of this (vector) value as a widened i64/u64/f64.
  [[nodiscard]] std::int64_t elem_i(unsigned i = 0) const noexcept;
  [[nodiscard]] std::uint64_t elem_u(unsigned i = 0) const noexcept;
  [[nodiscard]] double elem_f(unsigned i = 0) const noexcept;
  void set_elem_i(unsigned i, std::int64_t v) noexcept;
  void set_elem_f(unsigned i, double v) noexcept;

  [[nodiscard]] void* ptr() const noexcept {
    void* p = nullptr;
    std::memcpy(&p, raw, sizeof p);
    return p;
  }
  [[nodiscard]] std::uint8_t* bytes_ptr() const noexcept {
    return static_cast<std::uint8_t*>(ptr());
  }

  // Truthiness for conditions (scalar only).
  [[nodiscard]] bool truthy() const noexcept {
    if (is_float(type.kind)) return elem_f() != 0.0;
    if (type.kind == Kind::Pointer) return ptr() != nullptr;
    return elem_u() != 0;
  }
};

// Load/store a scalar element of kind k at memory address p (exact width).
std::int64_t load_int(const std::uint8_t* p, Kind k) noexcept;
double load_float(const std::uint8_t* p, Kind k) noexcept;
void store_int(std::uint8_t* p, Kind k, std::int64_t v) noexcept;
void store_float(std::uint8_t* p, Kind k, double v) noexcept;

// Load/store a whole (possibly vector) value of type t at p.
Value load_value(const std::uint8_t* p, const Type& t) noexcept;
void store_value(std::uint8_t* p, const Value& v) noexcept;

// Convert v to type `to` (C conversion semantics incl. float->int trunc).
Value convert(const Value& v, const Type& to) noexcept;

}  // namespace clc
