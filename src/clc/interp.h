// interp.h — tree-walking interpreter and NDRange execution engine for the
// OpenCL C subset.
//
// Two execution paths:
//  * kernels that never reach barrier(): work-items run sequentially within a
//    group, groups parallelized across a host thread pool;
//  * kernels using barrier(): one host thread per work-item slot, lockstep via
//    std::barrier, groups processed one after another.
// Every evaluated AST node bumps an op counter; the total feeds the device
// cost model in simcl (kernel time = ops / device op-throughput).
#pragma once

#include <barrier>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "clc/ast.h"
#include "clc/value.h"

namespace clc {

// One kernel argument, as prepared by the runtime from clSetKernelArg data.
struct KernelArg {
  enum class K : std::uint8_t {
    Bytes,       // scalar / vector / struct passed by value
    GlobalPtr,   // __global or __constant pointer (buffer storage)
    LocalAlloc,  // __local pointer: size only, storage allocated per group
    Image,       // image2d_t
    Sampler,     // sampler_t
  };
  K k = K::Bytes;
  std::vector<std::uint8_t> bytes;
  void* ptr = nullptr;
  std::size_t local_bytes = 0;
  ImageDesc image;
  SamplerDesc sampler;
};

struct NDRange {
  std::uint32_t dim = 1;
  std::size_t global[3] = {1, 1, 1};
  std::size_t local[3] = {1, 1, 1};
  std::size_t offset[3] = {0, 0, 0};

  [[nodiscard]] std::size_t groups(unsigned d) const noexcept {
    return (global[d] + local[d] - 1) / local[d];
  }
  [[nodiscard]] std::size_t total_groups() const noexcept {
    return groups(0) * groups(1) * groups(2);
  }
  [[nodiscard]] std::size_t local_total() const noexcept {
    return local[0] * local[1] * local[2];
  }
};

// Per-work-item execution context, visible to builtins.
struct WorkItemCtx {
  std::size_t gid[3] = {0, 0, 0};
  std::size_t lid[3] = {0, 0, 0};
  std::size_t grp[3] = {0, 0, 0};
  const NDRange* nd = nullptr;
  std::uint8_t* local_base = nullptr;      // this group's __local arena
  std::barrier<>* bar = nullptr;           // lockstep barrier; null = serial path
  std::uint64_t ops = 0;                   // executed-node counter
  const Module* mod = nullptr;
};

// Thrown on runtime faults (null deref, missing return, ...); the launch
// wrapper converts it into a LaunchResult error.
struct InterpError {
  std::string message;
  int line = 0;
};

// Element stride of a pointer type (struct size or element size).
std::size_t ptr_stride(const Type& ptr_t,
                       const std::vector<StructDef>& structs) noexcept;

// Pointer type of a __local declaration of `decl` (what its slot holds).
Type local_ptr_type(const Type& decl) noexcept;

// Index of `fn` within mod.funcs (pointer identity), -1 when absent.
int func_index(const Module& mod, const FuncDecl& fn) noexcept;

// The arithmetic core shared by the interpreter and the bytecode VM: pointer
// arithmetic, promoted comparisons, and element-wise arithmetic/bitwise ops
// converted to the result type.  Both engines route every binary operation
// through this one function, which is what makes their results bit-identical.
// Throws InterpError on division by zero and invalid operators.
Value binary_op(Tok op, const Value& a, const Value& b, const Type& rt,
                int line, const std::vector<StructDef>& structs);

// Interpreter for one work-item.
class Interp {
 public:
  Interp(const Module& mod, WorkItemCtx& ctx) : mod_(mod), ctx_(ctx) {}

  // Runs `fn` with `args` already converted to the parameter types.
  Value run_function(const FuncDecl& fn, std::span<const Value> args);

 private:
  enum class Flow : std::uint8_t { Normal, Break, Continue, Return };

  struct Frame {
    std::vector<Value> slots;
    // Stable backing store for private arrays and by-value structs.
    std::deque<std::vector<std::uint8_t>> allocas;
    Value ret;
    bool returned = false;
  };

  Flow exec(const Stmt& s, Frame& f);
  Value eval(const Expr& e, Frame& f);
  // Address of an lvalue (slot storage or memory) + its value type.
  std::uint8_t* lvalue(const Expr& e, Frame& f, Type& t);
  Value eval_binary(Tok op, const Value& a, const Value& b, const Type& rt, int line);
  Value call_user(const FuncDecl& fn, const Expr& e, Frame& f);

  const Module& mod_;
  WorkItemCtx& ctx_;
  int depth_ = 0;
};

struct LaunchResult {
  bool ok = true;
  std::string error;
  std::uint64_t ops = 0;  // total AST ops executed over all work-items
};

// Which engine executes work-items.  Auto consults the CHECL_CLC_VM
// environment variable once per process: "interp" selects the tree-walking
// interpreter (the differential-testing oracle); anything else — including
// unset — selects the bytecode VM.  Explicit values override the environment.
enum class ExecEngine : std::uint8_t { Auto, Interp, Vm };

struct LaunchOptions {
  unsigned max_threads = 0;  // 0 = hardware concurrency
  ExecEngine engine = ExecEngine::Auto;
};

// Process-wide engine dispatch counters, surfaced by checl::stats_json()
// under the "clc" section.
struct ExecStats {
  std::uint64_t vm_launches = 0;
  std::uint64_t interp_launches = 0;
  std::uint64_t vm_items = 0;      // work-items executed by the VM
  std::uint64_t interp_items = 0;  // work-items executed by the interpreter
};
[[nodiscard]] ExecStats exec_stats() noexcept;
void reset_exec_stats() noexcept;

// Executes `kernel` over `nd`.  `args` must match the kernel's parameter list.
LaunchResult execute_ndrange(const Module& mod, const FuncDecl& kernel,
                             std::span<const KernelArg> args, const NDRange& nd,
                             const LaunchOptions& opts = {});

}  // namespace clc
