#include "clc/vm.h"

#include <cstring>

#include "clc/builtins.h"

namespace clc {

namespace {

constexpr std::size_t kArenaBlock = 64 * 1024;

// Scalar fast path for BOp::Bin, mirroring binary_op's semantics exactly:
// comparisons on the raw operands, arithmetic evaluated in double precision
// (floats) or as uint64 with wrap-on-store (ints) — so results stay
// bit-identical to the interpreter.  Returns false for every shape it does
// not cover (vectors, mixed or pointer operands, integer division/modulo
// with their fail-on-zero diagnostics, logical && / ||), in which case the
// caller takes the generic binary_op path.
inline bool fast_bin(Tok op, const Value& x, const Value& y, const Type& rt,
                     Value& out) {
  if (x.type.vec != 1 || !(x.type == y.type) || x.type.kind == Kind::Pointer)
    return false;
  switch (op) {
    case Tok::EqEq:
    case Tok::NotEq:
    case Tok::Lt:
    case Tok::Gt:
    case Tok::Le:
    case Tok::Ge: {
      bool r = false;
      if (is_float(x.type.kind)) {
        const double a = x.elem_f(), b = y.elem_f();
        switch (op) {
          case Tok::EqEq: r = a == b; break;
          case Tok::NotEq: r = a != b; break;
          case Tok::Lt: r = a < b; break;
          case Tok::Gt: r = a > b; break;
          case Tok::Le: r = a <= b; break;
          default: r = a >= b; break;
        }
      } else if (is_signed_int(x.type.kind)) {
        const std::int64_t a = x.elem_i(), b = y.elem_i();
        switch (op) {
          case Tok::EqEq: r = a == b; break;
          case Tok::NotEq: r = a != b; break;
          case Tok::Lt: r = a < b; break;
          case Tok::Gt: r = a > b; break;
          case Tok::Le: r = a <= b; break;
          default: r = a >= b; break;
        }
      } else {
        const std::uint64_t a = x.elem_u(), b = y.elem_u();
        switch (op) {
          case Tok::EqEq: r = a == b; break;
          case Tok::NotEq: r = a != b; break;
          case Tok::Lt: r = a < b; break;
          case Tok::Gt: r = a > b; break;
          case Tok::Le: r = a <= b; break;
          default: r = a >= b; break;
        }
      }
      out = Value::of_i32(r ? 1 : 0);
      return true;
    }
    default:
      break;
  }
  if (!(x.type == rt)) return false;
  if (is_float(rt.kind)) {
    const double a = x.elem_f(), b = y.elem_f();
    double v = 0;
    switch (op) {
      case Tok::Plus: v = a + b; break;
      case Tok::Minus: v = a - b; break;
      case Tok::Star: v = a * b; break;
      case Tok::Slash: v = a / b; break;
      default: return false;
    }
    Value r(rt);
    r.set_elem_f(0, v);
    out = r;
    return true;
  }
  if (is_integer(rt.kind)) {
    const std::uint64_t a = x.elem_u(), b = y.elem_u();
    const unsigned bits = static_cast<unsigned>(scalar_size(rt.kind)) * 8;
    std::uint64_t v = 0;
    switch (op) {
      case Tok::Plus: v = a + b; break;
      case Tok::Minus: v = a - b; break;
      case Tok::Star: v = a * b; break;
      case Tok::Amp: v = a & b; break;
      case Tok::Pipe: v = a | b; break;
      case Tok::Caret: v = a ^ b; break;
      case Tok::Shl: v = a << (b & (bits - 1)); break;
      case Tok::Shr:
        v = is_signed_int(rt.kind)
                ? static_cast<std::uint64_t>(x.elem_i() >> (b & (bits - 1)))
                : a >> (b & (bits - 1));
        break;
      default:
        return false;
    }
    Value r(rt);
    r.set_elem_i(0, static_cast<std::int64_t>(v));
    out = r;
    return true;
  }
  return false;
}

}  // namespace

Value Vm::run_function(const FuncDecl& fn, std::span<const Value> args) {
  const int idx = func_index(mod_, fn);
  if (idx < 0 || static_cast<std::size_t>(idx) >= bc_.funcs.size())
    throw InterpError{"function '" + fn.name + "' has no bytecode", 0};
  return run(static_cast<std::size_t>(idx), args);
}

std::uint8_t* Vm::arena_alloc(std::size_t n) {
  n = (n + 15) & ~static_cast<std::size_t>(15);
  for (;;) {
    if (arena_block_ < arena_blocks_.size()) {
      if (arena_off_ + n <= arena_cap_[arena_block_]) {
        std::uint8_t* p = arena_blocks_[arena_block_].get() + arena_off_;
        arena_off_ += n;
        std::memset(p, 0, n);
        return p;
      }
      // No room in this block: advance.  The tail left behind is reclaimed
      // when the frame that took the mark rewinds past it.
      ++arena_block_;
      arena_off_ = 0;
      continue;
    }
    const std::size_t cap = n > kArenaBlock ? n : kArenaBlock;
    arena_blocks_.push_back(std::make_unique<std::uint8_t[]>(cap));
    arena_cap_.push_back(cap);
  }
}

Value Vm::run(std::size_t fidx, std::span<const Value> args) {
  if (++depth_ > 64) {
    --depth_;
    throw InterpError{"call depth limit exceeded (recursion?)", 0};
  }
  const FuncDecl& fn = *mod_.funcs[fidx];
  const BcFunc& bf = bc_.funcs[fidx];

  // Pooled register file for this call depth.  Taking the raw data pointer
  // is safe across nested calls: deeper frames use other pool entries, and
  // growing the outer vector moves the inner vectors' headers, not their
  // heap buffers.
  const auto frame = static_cast<std::size_t>(depth_ - 1);
  if (frame >= frames_.size()) frames_.resize(frame + 1);
  std::vector<Value>& fregs = frames_[frame];
  if (fregs.size() < bf.num_regs) fregs.resize(bf.num_regs);
  Value* const regs = fregs.data();

  // Frame scratch comes from the arena; rewind to this mark on every exit.
  const std::size_t mark_block = arena_block_;
  const std::size_t mark_off = arena_off_;

  // Parameter prologue — mirrors Interp::run_function.
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    const ParamInfo& p = fn.params[i];
    Value v = args[i];
    if (p.type.kind == Kind::Struct) {
      const std::size_t sz = size_of(p.type, mod_.structs);
      std::uint8_t* copy = arena_alloc(sz);
      std::memcpy(copy, v.ptr(), sz);
      v = Value::of_ptr(p.type, copy);
    } else if (p.type.kind != Kind::Image2D && p.type.kind != Kind::Image3D &&
               p.type.kind != Kind::Sampler && p.type.kind != Kind::Pointer) {
      v = convert(v, p.type);
    }
    regs[static_cast<std::size_t>(p.slot)] = v;
  }

  const BInsn* code = bf.code.data();
  std::uint64_t ops = 0;
  std::size_t pc = 0;
  Value ret;
  try {
    for (;;) {
      const BInsn& I = code[pc++];
      ++ops;
      switch (I.op) {
        case BOp::Nop:
          break;
        case BOp::Const:
          regs[I.a] = bc_.consts[I.imm];
          break;
        case BOp::Move:
          regs[I.a] = regs[I.b];
          break;
        case BOp::Conv:
          regs[I.a] = convert(regs[I.b], bc_.types[I.ty]);
          break;
        case BOp::Bin: {
          const Tok op = static_cast<Tok>(I.aux);
          if (!fast_bin(op, regs[I.b], regs[I.c], bc_.types[I.ty], regs[I.a]))
            regs[I.a] = binary_op(op, regs[I.b], regs[I.c], bc_.types[I.ty],
                                  I.line, mod_.structs);
          break;
        }
        case BOp::Neg:
          regs[I.a] = binary_op(Tok::Minus, Value(bc_.types[I.ty]), regs[I.b],
                                bc_.types[I.ty], I.line, mod_.structs);
          break;
        case BOp::BitNot: {
          const Type& t = bc_.types[I.ty];
          const Value a = convert(regs[I.b], t);
          Value r(t);
          for (unsigned i = 0; i < t.vec; ++i)
            r.set_elem_i(i, static_cast<std::int64_t>(~a.elem_u(i)));
          regs[I.a] = r;
          break;
        }
        case BOp::Not:
          regs[I.a] = Value::of_i32(regs[I.b].truthy() ? 0 : 1);
          break;
        case BOp::Truthy:
          regs[I.a] = Value::of_i32(regs[I.b].truthy() ? 1 : 0);
          break;
        case BOp::Jump:
          pc = I.imm;
          break;
        case BOp::Jz:
          if (!regs[I.a].truthy()) pc = I.imm;
          break;
        case BOp::Jnz:
          if (regs[I.a].truthy()) pc = I.imm;
          break;
        case BOp::AddrSlot:
          // Address of the slot register's inline storage; the compiler
          // guarantees a != b, so the pointer stays valid after the write.
          regs[I.a] = Value::of_ptr(bc_.types[I.ty], regs[I.b].raw);
          break;
        case BOp::AddrOf:
          regs[I.a] = Value::of_ptr(bc_.types[I.ty], regs[I.b].ptr());
          break;
        case BOp::AddrOff:
          regs[I.a] =
              Value::of_ptr(bc_.types[I.ty], regs[I.b].bytes_ptr() + I.imm);
          break;
        case BOp::AddrIndex: {
          std::uint8_t* p = regs[I.b].bytes_ptr();
          if (p == nullptr) throw InterpError{"null pointer subscript", I.line};
          regs[I.a] = Value::of_ptr(
              bc_.types[I.ty],
              p + regs[I.c].elem_i() * static_cast<std::int64_t>(I.imm));
          break;
        }
        case BOp::CheckNull:
          if (regs[I.a].ptr() == nullptr)
            throw InterpError{bc_.strings[I.imm], I.line};
          break;
        case BOp::Load: {
          const Type& t = bc_.types[I.ty];
          const std::uint8_t* p = regs[I.b].bytes_ptr();
          regs[I.a] = t.kind == Kind::Struct
                          ? Value::of_ptr(t, const_cast<std::uint8_t*>(p))
                          : load_value(p, t);
          break;
        }
        case BOp::Store:
          store_value(regs[I.a].bytes_ptr(), regs[I.b]);
          break;
        case BOp::CopyMem:
          std::memcpy(regs[I.a].ptr(), regs[I.b].ptr(), I.imm);
          break;
        case BOp::ZeroInit:
          regs[I.a] = Value(bc_.types[I.ty]);
          break;
        case BOp::LocalPtr:
          regs[I.a] = Value::of_ptr(bc_.types[I.ty], ctx_.local_base + I.imm);
          break;
        case BOp::Alloca:
          regs[I.a] = Value::of_ptr(bc_.types[I.ty], arena_alloc(I.imm));
          break;
        case BOp::Splat: {
          const Type& t = bc_.types[I.ty];
          const Value v = convert(regs[I.b], make_scalar(t.kind));
          Value r(t);
          for (unsigned i = 0; i < t.vec; ++i) {
            if (is_float(t.kind))
              r.set_elem_f(i, v.elem_f());
            else
              r.set_elem_i(i, v.elem_i());
          }
          regs[I.a] = r;
          break;
        }
        case BOp::BuildVec: {
          const Type& t = bc_.types[I.ty];
          Value r(t);
          unsigned out = 0;
          for (unsigned k = 0; k < I.c; ++k) {
            const Value& v = regs[I.b + k];
            for (unsigned i = 0; i < v.type.vec; ++i, ++out) {
              if (is_float(t.kind))
                r.set_elem_f(out, v.elem_f(i));
              else
                r.set_elem_i(out, is_float(v.type.kind)
                                      ? static_cast<std::int64_t>(v.elem_f(i))
                                      : v.elem_i(i));
            }
          }
          regs[I.a] = r;
          break;
        }
        case BOp::Swizzle: {
          const Value base = regs[I.b];
          Value r(bc_.types[I.ty]);
          for (unsigned i = 0; i < I.aux; ++i) {
            const unsigned lane = (I.imm >> (8 * i)) & 0xffu;
            if (is_float(base.type.kind))
              r.set_elem_f(i, base.elem_f(lane));
            else
              r.set_elem_i(i, base.elem_i(lane));
          }
          regs[I.a] = r;
          break;
        }
        case BOp::CallBuiltin: {
          const Value r = call_builtin(
              static_cast<Builtin>(static_cast<std::int16_t>(I.imm)),
              std::span<Value>(regs + I.b, I.c), ctx_);
          regs[I.a] = r;
          break;
        }
        case BOp::CallUser: {
          const Value r =
              run(I.imm, std::span<const Value>(regs + I.b, I.c));
          regs[I.a] = r;
          break;
        }
        case BOp::Ret:
          ret = regs[I.a];
          goto done;
        case BOp::RetVoid:
          goto done;
        case BOp::Fail:
          throw InterpError{bc_.strings[I.imm], I.line};
      }
    }
  } catch (...) {
    ctx_.ops += ops;
    arena_block_ = mark_block;
    arena_off_ = mark_off;
    --depth_;
    throw;
  }
done:
  ctx_.ops += ops;
  arena_block_ = mark_block;
  arena_off_ = mark_off;
  --depth_;
  return ret;
}

}  // namespace clc
