// builtins.h — OpenCL C built-in functions recognized by the front-end and
// evaluated by the interpreter.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "clc/value.h"

namespace clc {

enum class Builtin : std::int16_t {
  None = -1,
  // work-item functions
  GetGlobalId, GetLocalId, GetGroupId, GetGlobalSize, GetLocalSize,
  GetNumGroups, GetWorkDim,
  // synchronization
  Barrier, MemFence,
  // 1-arg math (element-wise over vectors)
  Sqrt, Rsqrt, Fabs, Exp, Exp2, Log, Log2, Log10, Sin, Cos, Tan,
  Asin, Acos, Atan, Sinh, Cosh, Tanh, Floor, Ceil, Round, Trunc,
  NativeSin, NativeCos, NativeExp, NativeLog, NativeSqrt, NativeRecip,
  // 2-arg math
  Pow, Fmod, Fmin, Fmax, Atan2, Hypot, NativeDivide, NativePowr,
  // 3-arg math
  Mad, Fma, Clamp, Mix,
  // integer
  MinI, MaxI, AbsI, Mul24, Mad24, Rotate,
  // geometric (float vectors)
  Dot, Length, Distance, Normalize, Cross, FastLength,
  // atomics (global/local integer pointers)
  AtomicAdd, AtomicSub, AtomicInc, AtomicDec, AtomicMin, AtomicMax,
  AtomicXchg, AtomicCmpxchg, AtomicAnd, AtomicOr, AtomicXor,
  // reinterpret
  AsFloat, AsInt, AsUint,
  // images
  ReadImageF, ReadImageUI, WriteImageF, WriteImageUI,
  GetImageWidth, GetImageHeight,
};

// Name lookup; Builtin::None when not a builtin.  `convert_<type>` names are
// handled separately by the parser (they become casts).
Builtin lookup_builtin(std::string_view name) noexcept;

struct WorkItemCtx;  // defined in interp.h

// Evaluate builtin `id` on already-evaluated arguments.  `ctx` supplies
// work-item ids and the barrier hook.  Returns the result value (void-typed
// Value for barrier/mem_fence/write_image*).
Value call_builtin(Builtin id, std::span<Value> args, WorkItemCtx& ctx);

// Result type of a builtin given argument types (used at parse time).
Type builtin_result_type(Builtin id, std::span<const Type> arg_types) noexcept;

}  // namespace clc
