#include "clc/pp.h"

#include <cctype>

namespace clc {

namespace {

bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_cont(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

// Splits "NAME(a,b) body" or "NAME body" after "#define ".
bool parse_define(std::string_view rest, std::string& name, MacroDef& def) {
  rest = trim(rest);
  std::size_t i = 0;
  if (i >= rest.size() || !ident_start(rest[i])) return false;
  while (i < rest.size() && ident_cont(rest[i])) ++i;
  name.assign(rest.substr(0, i));
  if (i < rest.size() && rest[i] == '(') {
    def.function_like = true;
    ++i;
    std::string cur;
    for (; i < rest.size(); ++i) {
      const char c = rest[i];
      if (c == ',' || c == ')') {
        const auto p = trim(cur);
        if (!p.empty()) def.params.emplace_back(p);
        cur.clear();
        if (c == ')') {
          ++i;
          break;
        }
      } else {
        cur.push_back(c);
      }
    }
  }
  def.body.assign(trim(rest.substr(std::min(i, rest.size()))));
  return true;
}

}  // namespace

Preprocessor::Preprocessor(std::string_view build_options) {
  // Scan "-D NAME", "-DNAME", "-D NAME=V", "-DNAME=V".
  std::size_t i = 0;
  while (i < build_options.size()) {
    while (i < build_options.size() && build_options[i] == ' ') ++i;
    std::size_t j = i;
    while (j < build_options.size() && build_options[j] != ' ') ++j;
    std::string_view word = build_options.substr(i, j - i);
    if (word.rfind("-D", 0) == 0) {
      std::string_view spec = word.substr(2);
      if (spec.empty() && j < build_options.size()) {
        // "-D NAME=V": the definition is the next word.
        std::size_t k = j + 1;
        std::size_t m = k;
        while (m < build_options.size() && build_options[m] != ' ') ++m;
        spec = build_options.substr(k, m - k);
        j = m;
      }
      if (!spec.empty()) {
        const auto eq = spec.find('=');
        MacroDef def;
        std::string name;
        if (eq == std::string_view::npos) {
          name.assign(spec);
          def.body = "1";
        } else {
          name.assign(spec.substr(0, eq));
          def.body.assign(spec.substr(eq + 1));
        }
        macros_[name] = std::move(def);
      }
    }
    i = j;
  }
}

bool Preprocessor::active() const noexcept {
  for (const bool b : cond_stack_)
    if (!b) return false;
  return true;
}

bool Preprocessor::process_directive(std::string_view line, int line_no, Diag& diag) {
  std::string_view body = trim(line);
  body.remove_prefix(1);  // '#'
  body = trim(body);
  auto starts = [&](std::string_view kw) {
    return body.rfind(kw, 0) == 0 &&
           (body.size() == kw.size() || !ident_cont(body[kw.size()]));
  };
  if (starts("define")) {
    if (!active()) return true;
    std::string name;
    MacroDef def;
    if (!parse_define(body.substr(6), name, def)) {
      diag = {"malformed #define", line_no, 1};
      return false;
    }
    macros_[name] = std::move(def);
    return true;
  }
  if (starts("undef")) {
    if (active()) macros_.erase(std::string(trim(body.substr(5))));
    return true;
  }
  if (starts("ifdef")) {
    cond_stack_.push_back(macros_.count(std::string(trim(body.substr(5)))) != 0);
    return true;
  }
  if (starts("ifndef")) {
    cond_stack_.push_back(macros_.count(std::string(trim(body.substr(6)))) == 0);
    return true;
  }
  if (starts("else")) {
    if (cond_stack_.empty()) {
      diag = {"#else without #if", line_no, 1};
      return false;
    }
    cond_stack_.back() = !cond_stack_.back();
    return true;
  }
  if (starts("endif")) {
    if (cond_stack_.empty()) {
      diag = {"#endif without #if", line_no, 1};
      return false;
    }
    cond_stack_.pop_back();
    return true;
  }
  if (starts("pragma")) return true;  // OPENCL EXTENSION pragmas: accepted, ignored
  diag = {"unsupported preprocessor directive: " + std::string(body), line_no, 1};
  return false;
}

std::string Preprocessor::expand_line(std::string_view line, int depth) {
  if (depth > 16) return std::string(line);  // recursion guard
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == '"') {  // don't expand inside string literals
      out.push_back(c);
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) out.push_back(line[i++]);
        out.push_back(line[i++]);
      }
      if (i < line.size()) out.push_back(line[i++]);
      continue;
    }
    if (!ident_start(c)) {
      out.push_back(c);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < line.size() && ident_cont(line[j])) ++j;
    std::string word(line.substr(i, j - i));
    const auto it = macros_.find(word);
    if (it == macros_.end()) {
      out += word;
      i = j;
      continue;
    }
    const MacroDef& def = it->second;
    if (!def.function_like) {
      out += expand_line(def.body, depth + 1);
      i = j;
      continue;
    }
    // function-like: need '('
    std::size_t k = j;
    while (k < line.size() && (line[k] == ' ' || line[k] == '\t')) ++k;
    if (k >= line.size() || line[k] != '(') {
      out += word;
      i = j;
      continue;
    }
    ++k;
    std::vector<std::string> args;
    std::string cur;
    int paren = 1;
    for (; k < line.size() && paren > 0; ++k) {
      const char a = line[k];
      if (a == '(') {
        ++paren;
        cur.push_back(a);
      } else if (a == ')') {
        --paren;
        if (paren == 0) {
          if (!cur.empty() || !args.empty() || !def.params.empty())
            args.push_back(cur);
        } else {
          cur.push_back(a);
        }
      } else if (a == ',' && paren == 1) {
        args.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(a);
      }
    }
    // substitute params
    std::string expanded;
    std::size_t b = 0;
    const std::string& body = def.body;
    while (b < body.size()) {
      if (!ident_start(body[b])) {
        expanded.push_back(body[b++]);
        continue;
      }
      std::size_t e = b;
      while (e < body.size() && ident_cont(body[e])) ++e;
      std::string_view w(body.data() + b, e - b);
      bool replaced = false;
      for (std::size_t pi = 0; pi < def.params.size(); ++pi) {
        if (w == def.params[pi]) {
          expanded += pi < args.size() ? args[pi] : std::string();
          replaced = true;
          break;
        }
      }
      if (!replaced) expanded.append(w);
      b = e;
    }
    out += expand_line(expanded, depth + 1);
    i = k;
  }
  return out;
}

bool Preprocessor::run(std::string_view source, std::string& out, Diag& diag) {
  out.clear();
  out.reserve(source.size());
  // Join line continuations first.
  std::string joined;
  joined.reserve(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '\\' && i + 1 < source.size() &&
        (source[i + 1] == '\n' ||
         (source[i + 1] == '\r' && i + 2 < source.size() && source[i + 2] == '\n'))) {
      i += source[i + 1] == '\r' ? 2 : 1;
      joined.push_back(' ');
      continue;
    }
    joined.push_back(source[i]);
  }

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= joined.size()) {
    const std::size_t nl = joined.find('\n', pos);
    const std::string_view line =
        nl == std::string::npos
            ? std::string_view(joined).substr(pos)
            : std::string_view(joined).substr(pos, nl - pos);
    ++line_no;
    const std::string_view t = trim(line);
    if (!t.empty() && t.front() == '#') {
      if (!process_directive(t, line_no, diag)) return false;
      out.push_back('\n');  // keep line numbers aligned
    } else if (active()) {
      out += expand_line(line, 0);
      out.push_back('\n');
    } else {
      out.push_back('\n');
    }
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  if (!cond_stack_.empty()) {
    diag = {"unterminated #if block", line_no, 1};
    return false;
  }
  return true;
}

}  // namespace clc
