// program.h — top-level compile entry for the clc OpenCL C subset compiler.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "clc/ast.h"
#include "clc/diag.h"

namespace clc {

struct CompileResult {
  std::unique_ptr<Module> module;  // null on failure
  Diag diag;
  std::string build_log;  // empty on success, diagnostic text on failure

  [[nodiscard]] bool ok() const noexcept { return module != nullptr; }
};

// Preprocess + lex + parse `source` with clBuildProgram-style `options`
// ("-D NAME=V" definitions are honoured).  The OpenCL barrier-flag macros
// CLK_LOCAL_MEM_FENCE / CLK_GLOBAL_MEM_FENCE are predefined.
CompileResult compile(std::string_view source, std::string_view options = {});

}  // namespace clc
