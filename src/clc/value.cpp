#include "clc/value.h"

namespace clc {

std::int64_t load_int(const std::uint8_t* p, Kind k) noexcept {
  switch (k) {
    case Kind::Bool:
    case Kind::U8: {
      std::uint8_t v;
      std::memcpy(&v, p, 1);
      return v;
    }
    case Kind::I8: {
      std::int8_t v;
      std::memcpy(&v, p, 1);
      return v;
    }
    case Kind::I16: {
      std::int16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case Kind::U16: {
      std::uint16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case Kind::I32: {
      std::int32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case Kind::U32: {
      std::uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case Kind::I64:
    case Kind::U64: {
      std::int64_t v;
      std::memcpy(&v, p, 8);
      return v;
    }
    default: return 0;
  }
}

double load_float(const std::uint8_t* p, Kind k) noexcept {
  if (k == Kind::F32) {
    float v;
    std::memcpy(&v, p, 4);
    return v;
  }
  if (k == Kind::F64) {
    double v;
    std::memcpy(&v, p, 8);
    return v;
  }
  return static_cast<double>(load_int(p, k));
}

void store_int(std::uint8_t* p, Kind k, std::int64_t v) noexcept {
  switch (k) {
    case Kind::Bool: {
      const std::uint8_t b = v != 0 ? 1 : 0;
      std::memcpy(p, &b, 1);
      break;
    }
    case Kind::I8:
    case Kind::U8: {
      const auto b = static_cast<std::uint8_t>(v);
      std::memcpy(p, &b, 1);
      break;
    }
    case Kind::I16:
    case Kind::U16: {
      const auto b = static_cast<std::uint16_t>(v);
      std::memcpy(p, &b, 2);
      break;
    }
    case Kind::I32:
    case Kind::U32: {
      const auto b = static_cast<std::uint32_t>(v);
      std::memcpy(p, &b, 4);
      break;
    }
    case Kind::I64:
    case Kind::U64: std::memcpy(p, &v, 8); break;
    case Kind::F32: {
      const auto f = static_cast<float>(v);
      std::memcpy(p, &f, 4);
      break;
    }
    case Kind::F64: {
      const auto f = static_cast<double>(v);
      std::memcpy(p, &f, 8);
      break;
    }
    default: break;
  }
}

void store_float(std::uint8_t* p, Kind k, double v) noexcept {
  if (k == Kind::F32) {
    const auto f = static_cast<float>(v);
    std::memcpy(p, &f, 4);
  } else if (k == Kind::F64) {
    std::memcpy(p, &v, 8);
  } else {
    store_int(p, k, static_cast<std::int64_t>(v));
  }
}

std::int64_t Value::elem_i(unsigned i) const noexcept {
  return load_int(raw + i * scalar_size(type.kind), type.kind);
}
std::uint64_t Value::elem_u(unsigned i) const noexcept {
  const std::int64_t v = load_int(raw + i * scalar_size(type.kind), type.kind);
  // Narrow unsigned kinds are already zero-extended by load_int; for U64 the
  // bit pattern is what we want.
  return static_cast<std::uint64_t>(v);
}
double Value::elem_f(unsigned i) const noexcept {
  if (is_float(type.kind))
    return load_float(raw + i * scalar_size(type.kind), type.kind);
  if (is_signed_int(type.kind)) return static_cast<double>(elem_i(i));
  return static_cast<double>(elem_u(i));
}
void Value::set_elem_i(unsigned i, std::int64_t v) noexcept {
  store_int(raw + i * scalar_size(type.kind), type.kind, v);
}
void Value::set_elem_f(unsigned i, double v) noexcept {
  store_float(raw + i * scalar_size(type.kind), type.kind, v);
}

Value load_value(const std::uint8_t* p, const Type& t) noexcept {
  Value v(t);
  if (t.kind == Kind::Pointer || t.kind == Kind::Struct ||
      t.kind == Kind::Image2D || t.kind == Kind::Image3D ||
      t.kind == Kind::Sampler) {
    std::memcpy(v.raw, p, 8);
    return v;
  }
  const std::size_t es = scalar_size(t.kind);
  std::memcpy(v.raw, p, es * t.vec);
  return v;
}

void store_value(std::uint8_t* p, const Value& v) noexcept {
  const Type& t = v.type;
  if (t.kind == Kind::Pointer || t.kind == Kind::Struct ||
      t.kind == Kind::Image2D || t.kind == Kind::Image3D ||
      t.kind == Kind::Sampler) {
    std::memcpy(p, v.raw, 8);
    return;
  }
  std::memcpy(p, v.raw, scalar_size(t.kind) * t.vec);
}

Value convert(const Value& v, const Type& to) noexcept {
  if (v.type == to) return v;
  Value r(to);
  if (to.kind == Kind::Pointer) {
    // pointer <- pointer (reinterpretation) or integer.
    std::memcpy(r.raw, v.raw, 8);
    return r;
  }
  const unsigned n = to.vec;
  for (unsigned i = 0; i < n; ++i) {
    // Scalars broadcast into vectors; vectors convert element-wise.
    const unsigned si = v.type.vec == 1 ? 0 : i;
    if (is_float(to.kind)) {
      r.set_elem_f(i, v.type.kind == Kind::Pointer
                          ? static_cast<double>(
                                reinterpret_cast<std::uintptr_t>(v.ptr()))
                          : v.elem_f(si));
    } else if (is_float(v.type.kind)) {
      r.set_elem_i(i, static_cast<std::int64_t>(v.elem_f(si)));
    } else if (v.type.kind == Kind::Pointer) {
      r.set_elem_i(i, static_cast<std::int64_t>(
                          reinterpret_cast<std::uintptr_t>(v.ptr())));
    } else {
      r.set_elem_i(i, v.elem_i(si));
    }
  }
  return r;
}

}  // namespace clc
