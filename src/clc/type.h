// type.h — the clc type system: OpenCL C scalars, short vectors (2/3/4),
// pointers with address spaces, user structs, and the opaque image/sampler
// types that matter to CheCL's handle classification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace clc {

enum class Kind : std::uint8_t {
  Void, Bool,
  I8, U8, I16, U16, I32, U32, I64, U64,
  F32, F64,
  Pointer, Struct, Image2D, Image3D, Sampler,
};

enum class AddrSpace : std::uint8_t { Private, Global, Local, Constant };

// Value type.  For Kind::Pointer, `elem_*` describe the pointee (pointers to
// pointers are not supported — OpenCL C kernels don't need them) and `as` is
// the pointee's address space.  `vec` is the vector width (1 for scalars).
struct Type {
  Kind kind = Kind::Void;
  std::uint8_t vec = 1;
  AddrSpace as = AddrSpace::Private;
  std::int16_t struct_id = -1;  // Kind::Struct, or pointee struct id
  Kind elem_kind = Kind::Void;  // pointee for Kind::Pointer
  std::uint8_t elem_vec = 1;

  friend bool operator==(const Type&, const Type&) = default;
};

constexpr Type make_scalar(Kind k, std::uint8_t vec = 1) noexcept {
  return Type{k, vec, AddrSpace::Private, -1, Kind::Void, 1};
}
constexpr Type make_ptr(Kind elem, std::uint8_t elem_vec, AddrSpace space,
                        std::int16_t struct_id = -1) noexcept {
  return Type{Kind::Pointer, 1, space, struct_id, elem, elem_vec};
}
constexpr Type make_struct(std::int16_t id) noexcept {
  return Type{Kind::Struct, 1, AddrSpace::Private, id, Kind::Void, 1};
}

constexpr bool is_integer(Kind k) noexcept {
  return k >= Kind::Bool && k <= Kind::U64;
}
constexpr bool is_signed_int(Kind k) noexcept {
  return k == Kind::I8 || k == Kind::I16 || k == Kind::I32 || k == Kind::I64;
}
constexpr bool is_float(Kind k) noexcept { return k == Kind::F32 || k == Kind::F64; }
constexpr bool is_arith(Kind k) noexcept { return is_integer(k) || is_float(k); }

// Size in bytes of one scalar element of kind k.
constexpr std::size_t scalar_size(Kind k) noexcept {
  switch (k) {
    case Kind::Bool:
    case Kind::I8:
    case Kind::U8: return 1;
    case Kind::I16:
    case Kind::U16: return 2;
    case Kind::I32:
    case Kind::U32:
    case Kind::F32: return 4;
    case Kind::I64:
    case Kind::U64:
    case Kind::F64:
    case Kind::Pointer: return 8;
    default: return 0;
  }
}

struct StructField {
  std::string name;
  Type type;
  std::size_t offset = 0;
};

struct StructDef {
  std::string name;
  std::vector<StructField> fields;
  std::size_t size = 0;
  std::size_t align = 1;

  [[nodiscard]] int field_index(std::string_view n) const noexcept {
    for (std::size_t i = 0; i < fields.size(); ++i)
      if (fields[i].name == n) return static_cast<int>(i);
    return -1;
  }
};

// Memory size of a value of type t.  Vector-3 occupies 4 elements (OpenCL
// alignment rule).  Struct sizes come from the module's struct table.
std::size_t size_of(const Type& t, const std::vector<StructDef>& structs) noexcept;

// Alignment of t (natural alignment; vec3 aligns as vec4).
std::size_t align_of(const Type& t, const std::vector<StructDef>& structs) noexcept;

// Spelling for diagnostics ("float4", "__global int*", ...).
std::string type_name(const Type& t, const std::vector<StructDef>& structs);

}  // namespace clc
