#include "proxy/client.h"

#include <cstdlib>
#include <cstring>

#include "proxy/config_io.h"

namespace proxy {

namespace {
constexpr cl_int kProxyGone = CL_OUT_OF_RESOURCES;
}

Client::Client(std::unique_ptr<ipc::Channel> channel) : ch_(std::move(channel)) {
  if (const char* env = std::getenv("CHECL_IPC_BATCH");
      env != nullptr && *env != '\0' && *env != '0')
    batching_ = true;
}

ipc::Writer Client::acquire_writer() { return ipc::Writer(std::move(wpool_)); }

cl_int Client::surface(cl_int actual) noexcept {
  if (deferred_err_ != CL_SUCCESS) {
    const cl_int e = deferred_err_;
    deferred_err_ = CL_SUCCESS;
    return e;
  }
  return actual;
}

// Invokes the recovery handler (once, never reentrantly) after a broken
// round-trip.  Returns the handler's verdict; Failed when no handler is
// installed or recovery is already in progress.
Client::Recovery Client::attempt_recovery(Op op) {
  if (!recovery_ || in_recovery_) return Recovery::Failed;
  const ipc::ChannelError e = ch_->last_error();
  in_recovery_ = true;
  Recovery verdict;
  try {
    verdict = recovery_(*this, op, e);
  } catch (...) {
    verdict = Recovery::Failed;
  }
  in_recovery_ = false;
  return verdict;
}

cl_int Client::flush_batch_locked() {
  if (batch_count_ == 0) return CL_SUCCESS;
  batch_count_ = 0;
  ipc::Message req;
  req.op = static_cast<std::uint32_t>(Op::Batch);
  req.payload = batch_.take();
  if (dead_) return kProxyGone;
  bool ok = ch_->send(req) && ch_->recv(resp_);
  batch_ = ipc::Writer(std::move(req.payload));  // keep the big buffer warm
  if (!ok) {
    // A batch frame is NOT re-sent after recovery: every mutating call in it
    // was journaled when queued, so the supervisor's replay already re-issued
    // them against the fresh proxy.  Recovery success = the batch is done
    // (and any staged handle remap is moot — nothing is re-sent).
    switch (attempt_recovery(Op::Batch)) {
      case Recovery::Retry:
      case Recovery::FailCall:
        retry_remap_.clear();
        return CL_SUCCESS;
      case Recovery::Failed:
        break;
    }
    dead_ = true;
    if (deferred_err_ == CL_SUCCESS) deferred_err_ = kProxyGone;
    return kProxyGone;
  }
  stats_.rpc_roundtrips++;
  stats_.batch_flushes++;
  ipc::Reader r(resp_.bytes());
  const cl_int err = r.i32();
  if (err != CL_SUCCESS && deferred_err_ == CL_SUCCESS) deferred_err_ = err;
  return CL_SUCCESS;
}

std::optional<ipc::Reader> Client::call(Op op, ipc::Writer& w,
                                        std::span<const std::uint8_t> bulk) {
  if (dead_) return std::nullopt;
  flush_batch_locked();  // batched calls stay ordered before this one
  if (dead_) return std::nullopt;
  ipc::Message req;
  req.op = static_cast<std::uint32_t>(op);
  req.payload = w.take();
  bool ok = ch_->send2(req, bulk) && ch_->recv(resp_);
  if (!ok) {
    switch (attempt_recovery(op)) {
      case Recovery::Retry:
        // Channel healed + state replayed: re-issue the in-flight call once.
        // The frame was marshalled against the dead peer, so its handle
        // fields are rewritten through the remap the handler staged.
        if (!retry_remap_.empty()) {
          remap_request_handles(op, req.payload.data(), req.payload.size(),
                                [this](std::uint64_t h) {
                                  const auto it = retry_remap_.find(h);
                                  return it == retry_remap_.end() ? h
                                                                  : it->second;
                                });
          retry_remap_.clear();
        }
        ok = ch_->send2(req, bulk) && ch_->recv(resp_);
        break;
      case Recovery::FailCall:
        // effectful call against a surviving peer: fails exactly once, the
        // client stays alive for the next call
        retry_remap_.clear();
        wpool_ = std::move(req.payload);
        return std::nullopt;
      case Recovery::Failed:
        break;
    }
  }
  wpool_ = std::move(req.payload);  // recycle the marshalling buffer
  if (!ok) {
    dead_ = true;
    return std::nullopt;
  }
  stats_.rpc_roundtrips++;
  return ipc::Reader(resp_.bytes());
}

void Client::set_recovery_handler(RecoveryHandler h) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  recovery_ = std::move(h);
}

void Client::stage_retry_remap(std::unordered_map<RemoteHandle, RemoteHandle> m) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  retry_remap_ = std::move(m);
}

void Client::reset_channel(std::unique_ptr<ipc::Channel> ch) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  // Drop any borrowed view first: it points into the old channel's shm ring.
  resp_ = ipc::Message{};
  ch_ = std::move(ch);
  dead_ = false;
  // Pending batched calls are discarded, not re-sent: they were journaled at
  // queue time and the supervisor replays them from the journal.
  batch_ = ipc::Writer();
  batch_count_ = 0;
  if (deadline_ms_ != 0) ch_->set_recv_deadline_ms(deadline_ms_);
}

void Client::set_recv_deadline_ms(std::uint32_t ms) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  deadline_ms_ = ms;
  ch_->set_recv_deadline_ms(ms);
}

cl_int Client::post(Op op, ipc::Writer& w, std::span<const std::uint8_t> bulk) {
  if (dead_) return kProxyGone;
  if (!batching_) {
    auto r = call(op, w, bulk);
    return r ? r->i32() : kProxyGone;
  }
  std::vector<std::uint8_t> payload = w.take();
  batch_.u32(static_cast<std::uint32_t>(op));
  batch_.u32(static_cast<std::uint32_t>(payload.size() + bulk.size()));
  batch_.raw(payload.data(), payload.size());
  if (!bulk.empty()) batch_.raw(bulk.data(), bulk.size());
  wpool_ = std::move(payload);
  ++batch_count_;
  stats_.batched_calls++;
  if (batch_count_ >= kMaxBatchCalls || batch_.size() >= kMaxBatchBytes)
    flush_batch_locked();
  return CL_SUCCESS;
}

void Client::set_batching(bool on) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (!on && batching_) flush_batch_locked();
  batching_ = on;
}

cl_int Client::sync() {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  flush_batch_locked();
  return surface(CL_SUCCESS);
}

cl_int Client::configure(const std::vector<simcl::PlatformSpec>& platforms,
                         const IpcCosts& costs, bool reset_clock,
                         const simcl::ProgCacheConfig& cache) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  write_config(w, platforms, costs, reset_clock, cache);
  auto r = call(Op::Configure, w);
  return r ? r->i32() : kProxyGone;
}

cl_int Client::ping(std::uint32_t* pid) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  auto r = call(Op::Ping, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  const std::uint32_t p = r->u32();
  if (pid != nullptr) *pid = p;
  return err;
}

cl_int Client::shutdown() {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  auto r = call(Op::Shutdown, w);
  dead_ = true;  // no further traffic either way
  return r ? r->i32() : kProxyGone;
}

cl_int Client::get_platform_ids(cl_uint num_entries, std::vector<RemoteHandle>& out,
                                cl_uint& total) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u32(num_entries);
  auto r = call(Op::GetPlatformIDs, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  total = r->u32();
  const cl_uint n = r->u32();
  out.clear();
  for (cl_uint i = 0; i < n; ++i) out.push_back(r->u64());
  return err;
}

cl_int Client::get_device_ids(RemoteHandle platform, cl_device_type type,
                              cl_uint num_entries, std::vector<RemoteHandle>& out,
                              cl_uint& total) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(platform);
  w.u64(type);
  w.u32(num_entries);
  auto r = call(Op::GetDeviceIDs, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  total = r->u32();
  const cl_uint n = r->u32();
  out.clear();
  for (cl_uint i = 0; i < n; ++i) out.push_back(r->u64());
  return err;
}

namespace {

cl_int read_info_reply(ipc::Reader& r, std::size_t size, void* value,
                       std::size_t* size_ret) {
  const cl_int err = r.i32();
  const std::uint64_t sr = r.u64();
  auto data = r.bytes_view();
  if (size_ret != nullptr) *size_ret = sr;
  if (value != nullptr && err == CL_SUCCESS)
    std::memcpy(value, data.data(), std::min<std::size_t>(size, data.size()));
  return err;
}

}  // namespace

cl_int Client::get_info(Op op, RemoteHandle h, cl_uint param, std::size_t size,
                        void* value, std::size_t* size_ret) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(h);
  w.u32(param);
  w.u64(size);
  w.boolean(value != nullptr);
  auto r = call(op, w);
  if (!r) return kProxyGone;
  return read_info_reply(*r, size, value, size_ret);
}

cl_int Client::get_info2(Op op, RemoteHandle a, RemoteHandle b, cl_uint param,
                         std::size_t size, void* value, std::size_t* size_ret) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(a);
  w.u64(b);
  w.u32(param);
  w.u64(size);
  w.boolean(value != nullptr);
  auto r = call(op, w);
  if (!r) return kProxyGone;
  return read_info_reply(*r, size, value, size_ret);
}

cl_int Client::create_context(std::span<const std::int64_t> props,
                              std::span<const RemoteHandle> devices,
                              RemoteHandle& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u32(static_cast<std::uint32_t>(props.size()));
  for (const std::int64_t p : props) w.i64(p);
  w.u32(static_cast<std::uint32_t>(devices.size()));
  for (const RemoteHandle d : devices) w.u64(d);
  auto r = call(Op::CreateContext, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  out = r->u64();
  return err;
}

cl_int Client::retain_release(Op op, RemoteHandle h) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(h);
  auto r = call(op, w);
  return r ? r->i32() : kProxyGone;
}

cl_int Client::create_queue(RemoteHandle ctx, RemoteHandle dev,
                            cl_command_queue_properties props, RemoteHandle& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(ctx);
  w.u64(dev);
  w.u64(props);
  auto r = call(Op::CreateCommandQueue, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  out = r->u64();
  return err;
}

cl_int Client::flush(RemoteHandle q) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  return post(Op::Flush, w);  // fire-and-forget: batched when batching is on
}

cl_int Client::finish(RemoteHandle q) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  auto r = call(Op::Finish, w);
  return surface(r ? r->i32() : kProxyGone);  // sync point: deferred errors land
}

cl_int Client::create_buffer(RemoteHandle ctx, cl_mem_flags flags, std::size_t size,
                             std::span<const std::uint8_t> data, RemoteHandle& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(ctx);
  w.u64(flags);
  w.u64(size);
  w.boolean(!data.empty());
  // wire format of w.bytes(data), with the data scatter-sent copy-free
  if (!data.empty()) w.u64(data.size());
  auto r = call(Op::CreateBuffer, w, data);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  out = r->u64();
  return err;
}

cl_int Client::create_image2d(RemoteHandle ctx, cl_mem_flags flags,
                              const cl_image_format& fmt, std::size_t width,
                              std::size_t height, std::size_t pitch,
                              std::span<const std::uint8_t> data, RemoteHandle& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(ctx);
  w.u64(flags);
  w.u32(fmt.image_channel_order);
  w.u32(fmt.image_channel_data_type);
  w.u64(width);
  w.u64(height);
  w.u64(pitch);
  w.boolean(!data.empty());
  if (!data.empty()) w.u64(data.size());
  auto r = call(Op::CreateImage2D, w, data);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  out = r->u64();
  return err;
}

cl_int Client::create_sampler(RemoteHandle ctx, cl_bool norm, cl_addressing_mode am,
                              cl_filter_mode fm, RemoteHandle& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(ctx);
  w.u32(norm);
  w.u32(am);
  w.u32(fm);
  auto r = call(Op::CreateSampler, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  out = r->u64();
  return err;
}

cl_int Client::create_program_with_source(RemoteHandle ctx, std::string_view source,
                                          RemoteHandle& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(ctx);
  w.str(source);
  auto r = call(Op::CreateProgramWithSource, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  out = r->u64();
  return err;
}

cl_int Client::create_program_with_binary(RemoteHandle ctx,
                                          std::span<const RemoteHandle> devices,
                                          std::span<const std::uint8_t> binary,
                                          cl_int& binary_status, RemoteHandle& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(ctx);
  w.u32(static_cast<std::uint32_t>(devices.size()));
  for (const RemoteHandle d : devices) w.u64(d);
  w.bytes(binary);
  auto r = call(Op::CreateProgramWithBinary, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  binary_status = r->i32();
  out = r->u64();
  return err;
}

cl_int Client::build_program(RemoteHandle prog, std::span<const RemoteHandle> devices,
                             std::string_view options) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(prog);
  w.u32(static_cast<std::uint32_t>(devices.size()));
  for (const RemoteHandle d : devices) w.u64(d);
  w.str(options);
  auto r = call(Op::BuildProgram, w);
  return r ? r->i32() : kProxyGone;
}

cl_int Client::create_kernel(RemoteHandle prog, std::string_view name,
                             RemoteHandle& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(prog);
  w.str(name);
  auto r = call(Op::CreateKernel, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  out = r->u64();
  return err;
}

cl_int Client::create_kernels_in_program(RemoteHandle prog, cl_uint num,
                                         std::vector<RemoteHandle>& out,
                                         cl_uint& total) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(prog);
  w.u32(num);
  auto r = call(Op::CreateKernelsInProgram, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  total = r->u32();
  const cl_uint n = r->u32();
  out.clear();
  for (cl_uint i = 0; i < n; ++i) out.push_back(r->u64());
  return err;
}

cl_int Client::set_kernel_arg_bytes(RemoteHandle k, cl_uint idx,
                                    std::span<const std::uint8_t> data) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(k);
  w.u32(idx);
  w.u8(static_cast<std::uint8_t>(ArgKind::Bytes));
  w.bytes(data);
  return post(Op::SetKernelArg, w);
}

cl_int Client::set_kernel_arg_mem(RemoteHandle k, cl_uint idx, RemoteHandle mem) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(k);
  w.u32(idx);
  w.u8(static_cast<std::uint8_t>(ArgKind::MemHandle));
  w.u64(mem);
  return post(Op::SetKernelArg, w);
}

cl_int Client::set_kernel_arg_sampler(RemoteHandle k, cl_uint idx,
                                      RemoteHandle sampler) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(k);
  w.u32(idx);
  w.u8(static_cast<std::uint8_t>(ArgKind::SamplerHandle));
  w.u64(sampler);
  return post(Op::SetKernelArg, w);
}

cl_int Client::set_kernel_arg_local(RemoteHandle k, cl_uint idx, std::size_t size) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(k);
  w.u32(idx);
  w.u8(static_cast<std::uint8_t>(ArgKind::Local));
  w.u64(size);
  return post(Op::SetKernelArg, w);
}

cl_int Client::wait_for_events(std::span<const RemoteHandle> events) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const RemoteHandle e : events) w.u64(e);
  auto r = call(Op::WaitForEvents, w);
  return surface(r ? r->i32() : kProxyGone);  // sync point
}

cl_int Client::enqueue_read(RemoteHandle q, RemoteHandle mem, std::size_t off,
                            std::size_t cb, void* dst, bool want_event,
                            RemoteHandle& ev) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  w.u64(mem);
  w.u64(off);
  w.u64(cb);
  w.boolean(want_event);
  auto r = call(Op::EnqueueReadBuffer, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  ev = r->u64();
  auto data = r->bytes_view();
  if (err == CL_SUCCESS && dst != nullptr)
    std::memcpy(dst, data.data(), std::min(cb, data.size()));
  // data may be a borrowed shm view; hand the ring space back right away so
  // the proxy can reserve the next bulk response without falling back
  ch_->release_rx();
  return err;
}

cl_int Client::enqueue_write(RemoteHandle q, RemoteHandle mem, std::size_t off,
                             std::span<const std::uint8_t> data, bool want_event,
                             RemoteHandle& ev) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  w.u64(mem);
  w.u64(off);
  w.boolean(want_event);
  w.u64(data.size());  // wire format of w.bytes(data), data scatter-sent
  if (!want_event) {
    ev = 0;
    return post(Op::EnqueueWriteBuffer, w, data);
  }
  auto r = call(Op::EnqueueWriteBuffer, w, data);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  ev = r->u64();
  return err;
}

cl_int Client::enqueue_copy(RemoteHandle q, RemoteHandle src, RemoteHandle dst,
                            std::size_t soff, std::size_t doff, std::size_t cb,
                            bool want_event, RemoteHandle& ev) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  w.u64(src);
  w.u64(dst);
  w.u64(soff);
  w.u64(doff);
  w.u64(cb);
  w.boolean(want_event);
  if (!want_event) {
    ev = 0;
    return post(Op::EnqueueCopyBuffer, w);
  }
  auto r = call(Op::EnqueueCopyBuffer, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  ev = r->u64();
  return err;
}

cl_int Client::enqueue_ndrange(RemoteHandle q, RemoteHandle k, cl_uint dim,
                               const std::size_t* goff, const std::size_t* gsz,
                               const std::size_t* lsz, bool want_event,
                               RemoteHandle& ev) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  w.u64(k);
  w.u32(dim);
  w.boolean(goff != nullptr);
  for (int d = 0; d < 3; ++d)
    w.u64(goff != nullptr && d < static_cast<int>(dim) ? goff[d] : 0);
  for (int d = 0; d < 3; ++d)
    w.u64(d < static_cast<int>(dim) ? gsz[d] : 1);
  w.boolean(lsz != nullptr);
  for (int d = 0; d < 3; ++d)
    w.u64(lsz != nullptr && d < static_cast<int>(dim) ? lsz[d] : 1);
  w.boolean(want_event);
  if (!want_event) {
    ev = 0;
    return post(Op::EnqueueNDRangeKernel, w);
  }
  auto r = call(Op::EnqueueNDRangeKernel, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  ev = r->u64();
  return err;
}

cl_int Client::enqueue_task(RemoteHandle q, RemoteHandle k, bool want_event,
                            RemoteHandle& ev) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  w.u64(k);
  w.boolean(want_event);
  if (!want_event) {
    ev = 0;
    return post(Op::EnqueueTask, w);
  }
  auto r = call(Op::EnqueueTask, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  ev = r->u64();
  return err;
}

cl_int Client::enqueue_marker(RemoteHandle q, RemoteHandle& ev) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  auto r = call(Op::EnqueueMarker, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  ev = r->u64();
  return err;
}

cl_int Client::enqueue_barrier(RemoteHandle q) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  return post(Op::EnqueueBarrier, w);
}

cl_int Client::enqueue_wait_for_events(RemoteHandle q,
                                       std::span<const RemoteHandle> events) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(q);
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const RemoteHandle e : events) w.u64(e);
  return post(Op::EnqueueWaitForEvents, w);
}

cl_int Client::sim_get_host_time_ns(cl_ulong& t) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  auto r = call(Op::SimGetHostTimeNS, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  t = r->u64();
  return err;
}

cl_int Client::mem_dirty_fetch(RemoteHandle mem, std::size_t chunk_bytes,
                               bool clear, std::uint64_t& nchunks,
                               std::vector<std::uint8_t>& bits) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(mem);
  w.u64(chunk_bytes);
  w.boolean(clear);
  auto r = call(Op::MemDirtyFetch, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  nchunks = r->u64();
  const auto view = r->bytes_view();
  bits.assign(view.begin(), view.end());
  ch_->release_rx();
  return err;
}

cl_int Client::mem_chunk_hashes(RemoteHandle mem, std::size_t chunk_bytes,
                                std::vector<std::uint64_t>& hashes) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(mem);
  w.u64(chunk_bytes);
  auto r = call(Op::MemChunkHash, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  const std::uint64_t n = r->u64();
  hashes.clear();
  hashes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) hashes.push_back(r->u64());
  ch_->release_rx();
  return err;
}

cl_int Client::sim_advance_host_ns(cl_ulong dt) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u64(dt);
  auto r = call(Op::SimAdvanceHostNS, w);
  return r ? r->i32() : kProxyGone;
}

cl_int Client::group_begin(std::uint32_t workers) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  w.u32(workers);
  auto r = call(Op::GroupBegin, w);
  return r ? r->i32() : kProxyGone;
}

cl_int Client::group_end(std::uint64_t* serial_ns, std::uint64_t* makespan_ns) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ipc::Writer w = acquire_writer();
  // call() flushes any pending batch first, so calls queued inside the group
  // are scheduled onto the group's workers before the clock is collapsed.
  auto r = call(Op::GroupEnd, w);
  if (!r) return kProxyGone;
  const cl_int err = r->i32();
  const std::uint64_t serial = r->u64();
  const std::uint64_t makespan = r->u64();
  if (serial_ns != nullptr) *serial_ns = serial;
  if (makespan_ns != nullptr) *makespan_ns = makespan;
  return err;
}

}  // namespace proxy
