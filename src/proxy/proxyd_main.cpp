// proxyd_main.cpp — the API proxy daemon.
//
// Spawned by the CheCL layer (fork + exec) with one end of a socketpair, run
// standalone with --tcp-port for the remote-proxy extension, or run as the
// multi-tenant daemon with --socket PATH: a long-lived epoll event loop that
// serves any number of attaching clients (see proxyd/daemon.h).  This process
// is the only one that touches the OpenCL substrate; the application process
// stays a plain checkpointable process.  With --shm it attaches the spawner's
// shared-memory segment and serves bulk payloads through it (see ipc/shm.h).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "chaoskit/chaoskit.h"
#include "ipc/channel.h"
#include "ipc/shm.h"
#include "proxy/server.h"
#include "proxyd/daemon.h"

int main(int argc, char** argv) {
  int fd = -1;
  int tcp_port = -1;
  const char* socket_path = nullptr;
  const char* shm_name = nullptr;
  std::size_t shm_threshold = ipc::kShmDefaultThreshold;
  bool use_writev = true;
  proxyd::Options dopts = proxyd::options_from_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fd") == 0 && i + 1 < argc) {
      fd = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--tcp-port") == 0 && i + 1 < argc) {
      tcp_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-clients") == 0 && i + 1 < argc) {
      dopts.max_clients = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      dopts.max_inflight = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--mem-cap") == 0 && i + 1 < argc) {
      dopts.max_client_mem_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quantum") == 0 && i + 1 < argc) {
      dopts.quantum_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shm") == 0 && i + 1 < argc) {
      shm_name = argv[++i];
    } else if (std::strcmp(argv[i], "--shm-threshold") == 0 && i + 1 < argc) {
      shm_threshold = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-writev") == 0) {
      use_writev = false;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: checl_proxyd --fd N [--shm NAME --shm-threshold T]"
          " [--no-writev] | --tcp-port P | --socket PATH [--max-clients N]"
          " [--max-inflight N] [--mem-cap BYTES] [--quantum BYTES]\n");
      return 0;
    }
  }

  // Fault injection across exec: the spawner exports CHECL_CHAOS; arming
  // happens here because the daemon can't be armed in-process.
  chaoskit::Engine::instance().arm_from_env();

  if (socket_path != nullptr) {
    proxyd::Daemon d(socket_path, dopts);
    if (!d.ok()) {
      std::fprintf(stderr, "checl_proxyd: %s\n", d.error().c_str());
      return 1;
    }
    d.run();
    return 0;
  }

  if (tcp_port >= 0) {
    const int lfd = ipc::tcp_listen(static_cast<std::uint16_t>(tcp_port));
    if (lfd < 0) {
      std::fprintf(stderr, "checl_proxyd: cannot listen on port %d\n", tcp_port);
      return 1;
    }
    const int cfd = ipc::tcp_accept(lfd);
    ::close(lfd);
    if (cfd < 0) {
      std::fprintf(stderr, "checl_proxyd: accept failed\n");
      return 1;
    }
    ipc::SocketChannel ch(cfd);
    proxy::serve(ch);
    return 0;
  }

  if (fd < 0) {
    std::fprintf(stderr, "checl_proxyd: missing --fd\n");
    return 2;
  }
  auto sock = std::make_unique<ipc::SocketChannel>(fd);
  sock->set_use_writev(use_writev);
  std::unique_ptr<ipc::Channel> ch;
  if (shm_name != nullptr) {
    auto seg = ipc::ShmSegment::attach(shm_name);
    if (seg == nullptr) {
      // the spawner will route bulk payloads through the segment; serving
      // without it would deadlock on the first descriptor frame
      std::fprintf(stderr, "checl_proxyd: cannot attach shm %s\n", shm_name);
      return 3;
    }
    ch = std::make_unique<ipc::ShmChannel>(std::move(sock), std::move(seg),
                                           /*creator=*/false, shm_threshold);
  } else {
    ch = std::move(sock);
  }
  proxy::serve(*ch);
  return 0;
}
