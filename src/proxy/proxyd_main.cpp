// proxyd_main.cpp — the API proxy daemon.
//
// Spawned by the CheCL layer (fork + exec) with one end of a socketpair, or
// run standalone with --tcp-port for the remote-proxy extension.  This process
// is the only one that touches the OpenCL substrate; the application process
// stays a plain checkpointable process.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ipc/channel.h"
#include "proxy/server.h"

int main(int argc, char** argv) {
  int fd = -1;
  int tcp_port = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fd") == 0 && i + 1 < argc) {
      fd = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--tcp-port") == 0 && i + 1 < argc) {
      tcp_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: checl_proxyd --fd N | --tcp-port P\n");
      return 0;
    }
  }

  if (tcp_port >= 0) {
    const int lfd = ipc::tcp_listen(static_cast<std::uint16_t>(tcp_port));
    if (lfd < 0) {
      std::fprintf(stderr, "checl_proxyd: cannot listen on port %d\n", tcp_port);
      return 1;
    }
    const int cfd = ipc::tcp_accept(lfd);
    ::close(lfd);
    if (cfd < 0) {
      std::fprintf(stderr, "checl_proxyd: accept failed\n");
      return 1;
    }
    ipc::SocketChannel ch(cfd);
    proxy::serve(ch);
    return 0;
  }

  if (fd < 0) {
    std::fprintf(stderr, "checl_proxyd: missing --fd\n");
    return 2;
  }
  ipc::SocketChannel ch(fd);
  proxy::serve(ch);
  return 0;
}
