#include "proxy/server.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "chaoskit/chaoskit.h"
#include "checl/dispatch.h"
#include "ipc/serial.h"
#include "proxy/config_io.h"
#include "proxy/opcodes.h"
#include "simcl/objects.h"
#include "simcl/runtime.h"
#include "snapstore/chunk.h"

#include <unistd.h>

namespace simcl {
const checl_api::DispatchTable& dispatch_table() noexcept;
}

namespace proxy {

namespace {

using ipc::Reader;
using ipc::Writer;

const checl_api::DispatchTable& D() { return simcl::dispatch_table(); }

// Generic Get*Info body: reads (param, size, want_value) and forwards to
// `fn(param, size, value, size_ret)`; writes (err, size_ret, bytes).
template <typename Fn>
void info_body(Reader& r, Writer& w, Fn fn) {
  const cl_uint pn = r.u32();
  const std::uint64_t size = r.u64();
  const bool want_value = r.boolean();
  std::size_t size_ret = 0;
  if (want_value) {
    std::vector<std::uint8_t> buf(size);
    const cl_int err = fn(pn, size, buf.data(), &size_ret);
    w.i32(err);
    w.u64(size_ret);
    const std::size_t n =
        err == CL_SUCCESS ? std::min<std::size_t>(size, size_ret) : 0;
    w.bytes({buf.data(), n});
  } else {
    const cl_int err = fn(pn, 0, nullptr, &size_ret);
    w.i32(err);
    w.u64(size_ret);
    w.bytes({});
  }
}

// One-handle Get*Info forwarding.
template <typename H, typename Fn>
void handle_info(Reader& r, Writer& w, Fn fn) {
  auto* h = r.handle<std::remove_pointer_t<H>>();
  info_body(r, w, [&](cl_uint pn, std::size_t sz, void* v, std::size_t* szr) {
    return fn(reinterpret_cast<H>(h), pn, sz, v, szr);
  });
}

}  // namespace

void charge_bytes(const ServerState& st, std::size_t bytes) {
  simcl::Runtime::instance().clock().advance_host(
      static_cast<simcl::SimNs>(static_cast<double>(bytes) / st.costs.bytes_per_sec * 1e9));
}

// Dispatch one request; returns false when the server should exit.
bool dispatch_request(ServerState& st, Op op, Reader& r, Writer& w) {
  switch (op) {
    case Op::Configure: {
      std::vector<simcl::PlatformSpec> platforms;
      bool reset = false;
      simcl::ProgCacheConfig cache;
      read_config(r, platforms, st.costs, reset, cache);
      if (st.shared_substrate) {
        // Multi-tenant daemon: the costs above are this session's; platform
        // specs and cache config are first-attacher-wins, and neither the
        // clock nor the compile cache is ever reset — other clients are
        // running on them.
        if (st.substrate_configured != nullptr && !*st.substrate_configured) {
          simcl::Runtime::instance().configure(std::move(platforms));
          simcl::ProgCache::instance().configure(cache);
          // the daemon bring-up cost, charged once on the shared timeline
          simcl::Runtime::instance().clock().advance_host(st.costs.spawn_ns);
          *st.substrate_configured = true;
        }
        st.configured = true;
        w.i32(CL_SUCCESS);
        return true;
      }
      simcl::Runtime::instance().configure(std::move(platforms));
      // reset == fresh proxy bring-up: the in-memory compile cache starts
      // cold on every transport (an exec'd proxyd is naturally cold; the
      // in-process Thread transport must be reset to match).  Only the
      // on-disk pool named by cache.root carries warmth across respawns.
      if (reset) simcl::ProgCache::instance().reset();
      simcl::ProgCache::instance().configure(cache);
      if (reset) simcl::Runtime::instance().clock().reset();
      // the fork/exec/init cost of bringing up an API proxy (paper: ~0.08 s)
      simcl::Runtime::instance().clock().advance_host(st.costs.spawn_ns);
      st.configured = true;
      w.i32(CL_SUCCESS);
      return true;
    }
    case Op::Ping:
      w.i32(CL_SUCCESS);
      w.u32(static_cast<std::uint32_t>(::getpid()));
      return true;
    case Op::Shutdown:
      w.i32(CL_SUCCESS);
      return false;

    case Op::GetPlatformIDs: {
      const cl_uint num_entries = r.u32();
      std::vector<cl_platform_id> ids(num_entries);
      cl_uint num = 0;
      const cl_int err = D().GetPlatformIDs(
          num_entries, num_entries != 0 ? ids.data() : nullptr, &num);
      w.i32(err);
      w.u32(num);
      const cl_uint n = err == CL_SUCCESS ? std::min(num_entries, num) : 0;
      w.u32(n);
      for (cl_uint i = 0; i < n; ++i) w.handle(ids[i]);
      return true;
    }
    case Op::GetPlatformInfo:
      handle_info<cl_platform_id>(r, w, D().GetPlatformInfo);
      return true;
    case Op::GetDeviceIDs: {
      auto* p = r.handle<_cl_platform_id>();
      const auto type = static_cast<cl_device_type>(r.u64());
      const cl_uint num_entries = r.u32();
      std::vector<cl_device_id> ids(num_entries);
      cl_uint num = 0;
      const cl_int err =
          D().GetDeviceIDs(reinterpret_cast<cl_platform_id>(p), type, num_entries,
                           num_entries != 0 ? ids.data() : nullptr, &num);
      w.i32(err);
      w.u32(num);
      const cl_uint n = err == CL_SUCCESS ? std::min(num_entries, num) : 0;
      w.u32(n);
      for (cl_uint i = 0; i < n; ++i) w.handle(ids[i]);
      return true;
    }
    case Op::GetDeviceInfo:
      handle_info<cl_device_id>(r, w, D().GetDeviceInfo);
      return true;

    case Op::CreateContext: {
      const std::uint32_t nprops = r.u32();
      std::vector<cl_context_properties> props(nprops);
      for (auto& p : props) p = static_cast<cl_context_properties>(r.i64());
      const std::uint32_t ndev = r.u32();
      std::vector<cl_device_id> devs(ndev);
      for (auto& d : devs) d = r.handle<_cl_device_id>();
      cl_int err = CL_SUCCESS;
      cl_context ctx = D().CreateContext(props.empty() ? nullptr : props.data(),
                                         ndev, devs.data(), nullptr, nullptr, &err);
      w.i32(err);
      w.handle(ctx);
      return true;
    }
    case Op::RetainContext:
      w.i32(D().RetainContext(r.handle<_cl_context>()));
      return true;
    case Op::ReleaseContext:
      w.i32(D().ReleaseContext(r.handle<_cl_context>()));
      return true;
    case Op::GetContextInfo:
      handle_info<cl_context>(r, w, D().GetContextInfo);
      return true;

    case Op::CreateCommandQueue: {
      auto* ctx = r.handle<_cl_context>();
      auto* dev = r.handle<_cl_device_id>();
      const auto props = static_cast<cl_command_queue_properties>(r.u64());
      cl_int err = CL_SUCCESS;
      cl_command_queue q = D().CreateCommandQueue(ctx, dev, props, &err);
      w.i32(err);
      w.handle(q);
      return true;
    }
    case Op::RetainCommandQueue:
      w.i32(D().RetainCommandQueue(r.handle<_cl_command_queue>()));
      return true;
    case Op::ReleaseCommandQueue:
      w.i32(D().ReleaseCommandQueue(r.handle<_cl_command_queue>()));
      return true;
    case Op::GetCommandQueueInfo:
      handle_info<cl_command_queue>(r, w, D().GetCommandQueueInfo);
      return true;
    case Op::Flush:
      w.i32(D().Flush(r.handle<_cl_command_queue>()));
      return true;
    case Op::Finish:
      w.i32(D().Finish(r.handle<_cl_command_queue>()));
      return true;

    case Op::CreateBuffer: {
      auto* ctx = r.handle<_cl_context>();
      const auto flags = static_cast<cl_mem_flags>(r.u64());
      const std::uint64_t size = r.u64();
      const bool has_data = r.boolean();
      auto data = has_data ? r.bytes_view() : std::span<const std::uint8_t>{};
      cl_int err = CL_SUCCESS;
      // The proxy cannot reference application memory: CL_MEM_USE_HOST_PTR is
      // emulated by the CheCL layer; here any inline data becomes a copy.
      cl_mem_flags eff = flags & ~static_cast<cl_mem_flags>(CL_MEM_USE_HOST_PTR);
      if (has_data) eff |= CL_MEM_COPY_HOST_PTR;
      cl_mem m = D().CreateBuffer(ctx, eff, size,
                                  has_data ? const_cast<std::uint8_t*>(data.data())
                                           : nullptr,
                                  &err);
      w.i32(err);
      w.handle(m);
      return true;
    }
    case Op::CreateImage2D: {
      auto* ctx = r.handle<_cl_context>();
      const auto flags = static_cast<cl_mem_flags>(r.u64());
      cl_image_format fmt;
      fmt.image_channel_order = r.u32();
      fmt.image_channel_data_type = r.u32();
      const std::uint64_t width = r.u64();
      const std::uint64_t height = r.u64();
      const std::uint64_t pitch = r.u64();
      const bool has_data = r.boolean();
      auto data = has_data ? r.bytes_view() : std::span<const std::uint8_t>{};
      cl_int err = CL_SUCCESS;
      cl_mem_flags eff = flags & ~static_cast<cl_mem_flags>(CL_MEM_USE_HOST_PTR);
      if (has_data) eff |= CL_MEM_COPY_HOST_PTR;
      cl_mem m = D().CreateImage2D(ctx, eff, &fmt, width, height, pitch,
                                   has_data ? const_cast<std::uint8_t*>(data.data())
                                            : nullptr,
                                   &err);
      w.i32(err);
      w.handle(m);
      return true;
    }
    case Op::RetainMemObject:
      w.i32(D().RetainMemObject(r.handle<_cl_mem>()));
      return true;
    case Op::ReleaseMemObject:
      w.i32(D().ReleaseMemObject(r.handle<_cl_mem>()));
      return true;
    case Op::GetMemObjectInfo:
      handle_info<cl_mem>(r, w, D().GetMemObjectInfo);
      return true;
    case Op::GetImageInfo:
      handle_info<cl_mem>(r, w, D().GetImageInfo);
      return true;

    case Op::CreateSampler: {
      auto* ctx = r.handle<_cl_context>();
      const cl_bool norm = r.u32();
      const cl_addressing_mode am = r.u32();
      const cl_filter_mode fm = r.u32();
      cl_int err = CL_SUCCESS;
      cl_sampler s = D().CreateSampler(ctx, norm, am, fm, &err);
      w.i32(err);
      w.handle(s);
      return true;
    }
    case Op::RetainSampler:
      w.i32(D().RetainSampler(r.handle<_cl_sampler>()));
      return true;
    case Op::ReleaseSampler:
      w.i32(D().ReleaseSampler(r.handle<_cl_sampler>()));
      return true;
    case Op::GetSamplerInfo:
      handle_info<cl_sampler>(r, w, D().GetSamplerInfo);
      return true;

    case Op::CreateProgramWithSource: {
      auto* ctx = r.handle<_cl_context>();
      const std::string src = r.str();
      const char* s = src.c_str();
      const std::size_t len = src.size();
      cl_int err = CL_SUCCESS;
      cl_program p = D().CreateProgramWithSource(ctx, 1, &s, &len, &err);
      w.i32(err);
      w.handle(p);
      return true;
    }
    case Op::CreateProgramWithBinary: {
      auto* ctx = r.handle<_cl_context>();
      const std::uint32_t ndev = r.u32();
      std::vector<cl_device_id> devs(ndev);
      for (auto& d : devs) d = r.handle<_cl_device_id>();
      auto bin = r.bytes_view();
      const unsigned char* bptr = bin.data();
      const std::size_t blen = bin.size();
      cl_int status = CL_SUCCESS;
      cl_int err = CL_SUCCESS;
      cl_program p = D().CreateProgramWithBinary(ctx, ndev, devs.data(), &blen,
                                                 &bptr, &status, &err);
      w.i32(err);
      w.i32(status);
      w.handle(p);
      return true;
    }
    case Op::RetainProgram:
      w.i32(D().RetainProgram(r.handle<_cl_program>()));
      return true;
    case Op::ReleaseProgram:
      w.i32(D().ReleaseProgram(r.handle<_cl_program>()));
      return true;
    case Op::BuildProgram: {
      auto* p = r.handle<_cl_program>();
      const std::uint32_t ndev = r.u32();
      std::vector<cl_device_id> devs(ndev);
      for (auto& d : devs) d = r.handle<_cl_device_id>();
      const std::string opts = r.str();
      w.i32(D().BuildProgram(p, ndev, ndev != 0 ? devs.data() : nullptr,
                             opts.c_str(), nullptr, nullptr));
      return true;
    }
    case Op::GetProgramInfo: {
      // CL_PROGRAM_BINARIES needs special out-pointer handling.
      auto* p = r.handle<_cl_program>();
      const cl_uint pn = r.u32();
      const std::uint64_t size = r.u64();
      const bool want_value = r.boolean();
      if (pn == CL_PROGRAM_BINARIES && want_value) {
        std::size_t bin_size = 0;
        cl_int err = D().GetProgramInfo(p, CL_PROGRAM_BINARY_SIZES,
                                        sizeof bin_size, &bin_size, nullptr);
        if (err != CL_SUCCESS) {
          w.i32(err);
          w.u64(0);
          w.bytes({});
          return true;
        }
        std::vector<std::uint8_t> bin(bin_size);
        unsigned char* ptrs[1] = {bin.data()};
        err = D().GetProgramInfo(p, CL_PROGRAM_BINARIES, sizeof ptrs, ptrs, nullptr);
        w.i32(err);
        w.u64(sizeof(unsigned char*));
        w.bytes(err == CL_SUCCESS ? std::span<const std::uint8_t>(bin)
                                  : std::span<const std::uint8_t>{});
        return true;
      }
      std::size_t size_ret = 0;
      if (want_value) {
        std::vector<std::uint8_t> buf(size);
        const cl_int err = D().GetProgramInfo(p, pn, size, buf.data(), &size_ret);
        w.i32(err);
        w.u64(size_ret);
        const std::size_t n =
            err == CL_SUCCESS ? std::min<std::size_t>(size, size_ret) : 0;
        w.bytes({buf.data(), n});
      } else {
        const cl_int err = D().GetProgramInfo(p, pn, 0, nullptr, &size_ret);
        w.i32(err);
        w.u64(size_ret);
        w.bytes({});
      }
      return true;
    }
    case Op::GetProgramBuildInfo: {
      auto* p = r.handle<_cl_program>();
      auto* dev = r.handle<_cl_device_id>();
      info_body(r, w, [&](cl_uint pn, std::size_t sz, void* v, std::size_t* szr) {
        return D().GetProgramBuildInfo(p, dev, pn, sz, v, szr);
      });
      return true;
    }

    case Op::CreateKernel: {
      auto* p = r.handle<_cl_program>();
      const std::string name = r.str();
      cl_int err = CL_SUCCESS;
      cl_kernel k = D().CreateKernel(p, name.c_str(), &err);
      w.i32(err);
      w.handle(k);
      return true;
    }
    case Op::CreateKernelsInProgram: {
      auto* p = r.handle<_cl_program>();
      const cl_uint num = r.u32();
      std::vector<cl_kernel> ks(num);
      cl_uint num_ret = 0;
      const cl_int err = D().CreateKernelsInProgram(
          p, num, num != 0 ? ks.data() : nullptr, &num_ret);
      w.i32(err);
      w.u32(num_ret);
      const cl_uint n = err == CL_SUCCESS ? std::min(num, num_ret) : 0;
      w.u32(n);
      for (cl_uint i = 0; i < n; ++i) w.handle(ks[i]);
      return true;
    }
    case Op::RetainKernel:
      w.i32(D().RetainKernel(r.handle<_cl_kernel>()));
      return true;
    case Op::ReleaseKernel:
      w.i32(D().ReleaseKernel(r.handle<_cl_kernel>()));
      return true;
    case Op::SetKernelArg: {
      auto* k = r.handle<_cl_kernel>();
      const cl_uint idx = r.u32();
      const auto kind = static_cast<ArgKind>(r.u8());
      cl_int err = CL_SUCCESS;
      switch (kind) {
        case ArgKind::Bytes: {
          auto data = r.bytes_view();
          err = D().SetKernelArg(k, idx, data.size(), data.data());
          break;
        }
        case ArgKind::MemHandle: {
          cl_mem m = r.handle<_cl_mem>();
          err = D().SetKernelArg(k, idx, sizeof(cl_mem), &m);
          break;
        }
        case ArgKind::SamplerHandle: {
          cl_sampler s = r.handle<_cl_sampler>();
          err = D().SetKernelArg(k, idx, sizeof(cl_sampler), &s);
          break;
        }
        case ArgKind::Local: {
          const std::uint64_t size = r.u64();
          err = D().SetKernelArg(k, idx, size, nullptr);
          break;
        }
      }
      w.i32(err);
      return true;
    }
    case Op::GetKernelInfo:
      handle_info<cl_kernel>(r, w, D().GetKernelInfo);
      return true;
    case Op::GetKernelWorkGroupInfo: {
      auto* k = r.handle<_cl_kernel>();
      auto* dev = r.handle<_cl_device_id>();
      info_body(r, w, [&](cl_uint pn, std::size_t sz, void* v, std::size_t* szr) {
        return D().GetKernelWorkGroupInfo(k, dev, pn, sz, v, szr);
      });
      return true;
    }

    case Op::WaitForEvents: {
      const std::uint32_t n = r.u32();
      std::vector<cl_event> evs(n);
      for (auto& e : evs) e = r.handle<_cl_event>();
      w.i32(D().WaitForEvents(n, evs.data()));
      return true;
    }
    case Op::GetEventInfo:
      handle_info<cl_event>(r, w, D().GetEventInfo);
      return true;
    case Op::RetainEvent:
      w.i32(D().RetainEvent(r.handle<_cl_event>()));
      return true;
    case Op::ReleaseEvent:
      w.i32(D().ReleaseEvent(r.handle<_cl_event>()));
      return true;
    case Op::GetEventProfilingInfo:
      handle_info<cl_event>(r, w, D().GetEventProfilingInfo);
      return true;

    case Op::EnqueueReadBuffer: {
      auto* q = r.handle<_cl_command_queue>();
      auto* m = r.handle<_cl_mem>();
      const std::uint64_t off = r.u64();
      const std::uint64_t cb = r.u64();
      const bool want_event = r.boolean();
      cl_event ev = nullptr;
      // Response layout: i32 err, u64 event handle, u64 len, len bytes.
      constexpr std::size_t kHdr = 4 + 8 + 8;
      // Zero-staging path: have the substrate read straight into a reserved
      // shm block and send it in place — the data is copied exactly once on
      // this side of the transport.
      if (std::uint8_t* blk =
              st.ch != nullptr ? st.ch->reserve_tx(kHdr + cb) : nullptr;
          blk != nullptr) {
        const cl_int err = D().EnqueueReadBuffer(q, m, CL_TRUE, off, cb,
                                                 blk + kHdr, 0, nullptr,
                                                 want_event ? &ev : nullptr);
        const auto evh =
            static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(ev));
        const std::uint64_t len = err == CL_SUCCESS ? cb : 0;
        std::memcpy(blk, &err, 4);
        std::memcpy(blk + 4, &evh, 8);
        std::memcpy(blk + 12, &len, 8);
        if (!st.ch->send_reserved(static_cast<std::uint32_t>(op), kHdr + cb))
          return false;
        st.resp_sent_bytes = kHdr + cb;
        return true;
      }
      // Reads are synchronous at the proxy: the bytes travel in the response.
      if (st.read_stage.size() < cb) st.read_stage.resize(cb);
      const cl_int err = D().EnqueueReadBuffer(q, m, CL_TRUE, off, cb,
                                               st.read_stage.data(), 0, nullptr,
                                               want_event ? &ev : nullptr);
      w.i32(err);
      w.handle(ev);
      // wire format of w.bytes(...), with the data scatter-sent by serve()
      if (err == CL_SUCCESS) {
        w.u64(cb);
        st.resp_bulk = {st.read_stage.data(), static_cast<std::size_t>(cb)};
      } else {
        w.u64(0);
      }
      return true;
    }
    case Op::EnqueueWriteBuffer: {
      auto* q = r.handle<_cl_command_queue>();
      auto* m = r.handle<_cl_mem>();
      const std::uint64_t off = r.u64();
      const bool want_event = r.boolean();
      auto data = r.bytes_view();
      cl_event ev = nullptr;
      // Writes are synchronous too: the payload buffer dies with this frame.
      const cl_int err = D().EnqueueWriteBuffer(q, m, CL_TRUE, off, data.size(),
                                                data.data(), 0, nullptr,
                                                want_event ? &ev : nullptr);
      w.i32(err);
      w.handle(ev);
      return true;
    }
    case Op::EnqueueCopyBuffer: {
      auto* q = r.handle<_cl_command_queue>();
      auto* src = r.handle<_cl_mem>();
      auto* dst = r.handle<_cl_mem>();
      const std::uint64_t soff = r.u64();
      const std::uint64_t doff = r.u64();
      const std::uint64_t cb = r.u64();
      const bool want_event = r.boolean();
      cl_event ev = nullptr;
      const cl_int err = D().EnqueueCopyBuffer(q, src, dst, soff, doff, cb, 0,
                                               nullptr, want_event ? &ev : nullptr);
      w.i32(err);
      w.handle(ev);
      return true;
    }
    case Op::EnqueueNDRangeKernel: {
      auto* q = r.handle<_cl_command_queue>();
      auto* k = r.handle<_cl_kernel>();
      const cl_uint dim = r.u32();
      std::size_t goff[3];
      std::size_t gsz[3];
      std::size_t lsz[3];
      const bool has_offset = r.boolean();
      for (auto& v : goff) v = r.u64();
      for (auto& v : gsz) v = r.u64();
      const bool has_local = r.boolean();
      for (auto& v : lsz) v = r.u64();
      const bool want_event = r.boolean();
      cl_event ev = nullptr;
      const cl_int err = D().EnqueueNDRangeKernel(
          q, k, dim, has_offset ? goff : nullptr, gsz, has_local ? lsz : nullptr,
          0, nullptr, want_event ? &ev : nullptr);
      w.i32(err);
      w.handle(ev);
      return true;
    }
    case Op::EnqueueTask: {
      auto* q = r.handle<_cl_command_queue>();
      auto* k = r.handle<_cl_kernel>();
      const bool want_event = r.boolean();
      cl_event ev = nullptr;
      const cl_int err = D().EnqueueTask(q, k, 0, nullptr, want_event ? &ev : nullptr);
      w.i32(err);
      w.handle(ev);
      return true;
    }
    case Op::EnqueueMarker: {
      auto* q = r.handle<_cl_command_queue>();
      cl_event ev = nullptr;
      const cl_int err = D().EnqueueMarker(q, &ev);
      w.i32(err);
      w.handle(ev);
      return true;
    }
    case Op::EnqueueBarrier:
      w.i32(D().EnqueueBarrier(r.handle<_cl_command_queue>()));
      return true;
    case Op::EnqueueWaitForEvents: {
      auto* q = r.handle<_cl_command_queue>();
      const std::uint32_t n = r.u32();
      std::vector<cl_event> evs(n);
      for (auto& e : evs) e = r.handle<_cl_event>();
      w.i32(D().EnqueueWaitForEvents(q, n, evs.data()));
      return true;
    }

    case Op::SimGetHostTimeNS: {
      cl_ulong t = 0;
      const cl_int err = D().SimGetHostTimeNS(&t);
      w.i32(err);
      w.u64(t);
      return true;
    }
    case Op::SimAdvanceHostNS: {
      w.i32(D().SimAdvanceHostNS(r.u64()));
      return true;
    }

    case Op::MemDirtyFetch: {
      // Bypasses the dispatch table: dirty maps are a property of the simcl
      // substrate itself, not of any forwarded CL entry point.
      auto* m = simcl::as_object<simcl::MemObj>(r.handle());
      const std::uint64_t chunk_bytes = r.u64();
      const bool clear = r.boolean();
      if (m == nullptr) {
        w.i32(CL_INVALID_MEM_OBJECT);
        w.u64(0);
        w.bytes({});
        return true;
      }
      std::vector<std::uint8_t> bits =
          m->dirty.fetch_chunks(static_cast<std::size_t>(chunk_bytes), clear);
      const std::uint64_t nchunks =
          chunk_bytes != 0
              ? (static_cast<std::uint64_t>(m->size) + chunk_bytes - 1) /
                    chunk_bytes
              : (m->size != 0 ? 1 : 0);
      // dirty_map_desync: under-report by clearing one set bit — exactly the
      // corruption a lost mark would cause; live_verify must detect it.
      if (chaoskit::Engine::instance().should_fire(
              chaoskit::Site::DirtyMapDesync)) {
        std::vector<std::size_t> set;
        for (std::size_t i = 0; i < nchunks; ++i)
          if ((bits[i / 8] >> (i % 8)) & 1u) set.push_back(i);
        if (!set.empty()) {
          const auto victim = static_cast<std::size_t>(
              static_cast<std::uint64_t>(chaoskit::Engine::instance().arg()) %
              set.size());
          bits[set[victim] / 8] &=
              static_cast<std::uint8_t>(~(1u << (set[victim] % 8)));
        }
      }
      w.i32(CL_SUCCESS);
      w.u64(nchunks);
      w.bytes(bits);
      return true;
    }
    case Op::MemChunkHash: {
      auto* m = simcl::as_object<simcl::MemObj>(r.handle());
      const std::uint64_t chunk_bytes = r.u64();
      if (m == nullptr || chunk_bytes == 0) {
        w.i32(m == nullptr ? CL_INVALID_MEM_OBJECT : CL_INVALID_VALUE);
        w.u64(0);
        return true;
      }
      const std::uint64_t n =
          (static_cast<std::uint64_t>(m->size) + chunk_bytes - 1) / chunk_bytes;
      w.i32(CL_SUCCESS);
      w.u64(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::size_t off = static_cast<std::size_t>(i * chunk_bytes);
        const std::size_t len =
            std::min(static_cast<std::size_t>(chunk_bytes), m->size - off);
        w.u64(snapstore::hash64(m->storage.data() + off, len));
      }
      return true;
    }

    case Op::GroupBegin: {
      const std::uint32_t workers = r.u32();
      if (st.group_active || workers == 0) {
        w.i32(CL_INVALID_OPERATION);
        return true;
      }
      st.group_active = true;
      st.group_t0 = simcl::Runtime::instance().clock().host_now();
      st.group_worker_ns.assign(std::min<std::uint32_t>(workers, 64), 0);
      w.i32(CL_SUCCESS);
      return true;
    }
    case Op::GroupEnd: {
      if (!st.group_active) {
        w.i32(CL_INVALID_OPERATION);
        return true;
      }
      st.group_active = false;
      simcl::Clock& clock = simcl::Runtime::instance().clock();
      const simcl::SimNs serial = clock.host_now() - st.group_t0;
      const simcl::SimNs makespan = *std::max_element(
          st.group_worker_ns.begin(), st.group_worker_ns.end());
      // Rewind only — a group never makes time go forward past the serial
      // schedule (makespan == serial when one worker did all the work).
      if (makespan < serial) clock.set_host(st.group_t0 + makespan);
      st.group_worker_ns.clear();
      w.i32(CL_SUCCESS);
      w.u64(serial);
      w.u64(makespan);
      return true;
    }

    case Op::Batch: {
      // A client-side queue of fire-and-forget calls: dispatch each in order,
      // discard the individual responses, report only the first error (the
      // client's sticky deferred-error model) and the executed count.
      cl_int first_err = CL_SUCCESS;
      std::uint32_t count = 0;
      // a batched call's response is discarded, so none may send in place
      ipc::Channel* saved_ch = st.ch;
      st.ch = nullptr;
      while (r.ok() && r.remaining() >= 8) {
        const auto sub_op = static_cast<Op>(r.u32());
        const std::uint32_t len = r.u32();
        auto body = r.view(len);
        if (!r.ok()) break;
        cl_int err = CL_INVALID_OPERATION;
        // control ops, group brackets and nested batches have no business
        // inside a batch
        if (sub_op != Op::Batch && sub_op != Op::Configure &&
            sub_op != Op::Ping && sub_op != Op::Shutdown &&
            sub_op != Op::GroupBegin && sub_op != Op::GroupEnd &&
            sub_op != Op::Attach) {
          Reader sub(body);
          Writer subw;
          dispatch_request(st, sub_op, sub, subw);
          const auto resp = subw.take();
          if (resp.size() >= sizeof err) std::memcpy(&err, resp.data(), sizeof err);
          // a batched read's data has nowhere to go; drop its bulk
          st.resp_bulk = {};
        }
        ++count;
        if (first_err == CL_SUCCESS && err != CL_SUCCESS) first_err = err;
      }
      st.ch = saved_ch;
      w.i32(first_err);
      w.u32(count);
      return true;
    }

    case Op::Attach:
      // Daemon handshake frame; the event loop consumes it at accept time.
      // Reaching dispatch means a client sent it to a single-tenant proxy
      // (or mid-session) — refuse it.
      w.i32(CL_INVALID_OPERATION);
      return true;

    case Op::kOpCount: break;  // sentinel, never on the wire
  }
  w.i32(CL_INVALID_OPERATION);
  return true;
}

bool op_measured(Op op) noexcept {
  // A batch frame is one wire message and charged as one call: that is the
  // modeled (and real) saving of client-side batching.
  return op != Op::SimGetHostTimeNS && op != Op::SimAdvanceHostNS &&
         op != Op::Configure && op != Op::Ping && op != Op::Shutdown &&
         op != Op::GroupBegin && op != Op::GroupEnd && op != Op::Attach;
}

void serve(ipc::Channel& ch) {
  // Whether we are a forked daemon or an in-process server thread, every
  // consultation below (and in the channel underneath) is proxy-side.
  chaoskit::ScopedThreadActor chaos_actor(chaoskit::Actor::Proxy);
  auto& chaos = chaoskit::Engine::instance();
  ServerState st;
  st.ch = &ch;
  ipc::Message req;
  ipc::Message resp;  // response buffer recycled across requests
  while (ch.recv(req)) {
    const Op op = static_cast<Op>(req.op);
    const bool measured = op_measured(op);
    const simcl::SimNs t_req =
        simcl::Runtime::instance().clock().host_now();
    if (measured) {
      simcl::Runtime::instance().clock().advance_host(st.costs.per_call_ns);
      charge_bytes(st, req.bytes().size());
    }
    ipc::Reader r(req.bytes());
    ipc::Writer w(std::move(resp.payload));
    bool keep_going;
    if (chaos.should_fire(chaoskit::Site::ProxyInjectClError)) {
      // the substrate "failed" this call: answer with the injected status
      // and nothing else (clients tolerate short error responses)
      w.i32(static_cast<cl_int>(chaos.arg()));
      keep_going = true;
    } else {
      keep_going = dispatch_request(st, op, r, w);
    }
    ch.release_rx();  // the request view is dead; free ring space for the
                      // client's next bulk send before we block in ours
    // Proxy loss after the request was executed but before any reply left:
    // the client must observe a dead channel, not a hang.
    if (chaos.should_fire(chaoskit::Site::ProxyDieBeforeReply)) return;
    // Assign this request's full simulated cost (charges + dispatch work) to
    // the least-loaded virtual worker of an active group.
    const auto record_group = [&] {
      if (!st.group_active || !measured) return;
      const simcl::SimNs d =
          simcl::Runtime::instance().clock().host_now() - t_req;
      *std::min_element(st.group_worker_ns.begin(),
                        st.group_worker_ns.end()) += d;
    };
    if (st.resp_sent_bytes != 0) {
      // dispatch materialized and sent the response in the data plane
      if (measured) charge_bytes(st, st.resp_sent_bytes);
      st.resp_sent_bytes = 0;
      record_group();
      if (chaos.should_fire(chaoskit::Site::ProxyDieAfterReply)) return;
      if (!keep_going) return;
      continue;
    }
    resp.op = req.op;
    resp.payload = w.take();
    if (measured) charge_bytes(st, resp.payload.size() + st.resp_bulk.size());
    record_group();
    const bool sent = ch.send2(resp, st.resp_bulk);
    st.resp_bulk = {};
    if (!sent) return;
    if (chaos.should_fire(chaoskit::Site::ProxyDieAfterReply)) return;
    if (!keep_going) return;
  }
}

}  // namespace proxy
