#include "proxy/spawn.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "proxy/server.h"

namespace proxy {

namespace fs = std::filesystem;

std::string find_proxyd() {
  if (const char* env = std::getenv("CHECL_PROXYD");
      env != nullptr && *env != '\0' && fs::exists(env))
    return env;
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const fs::path dir = self.parent_path();
    for (const char* rel :
         {"checl_proxyd", "../src/proxy/checl_proxyd", "../proxy/checl_proxyd",
          "../../src/proxy/checl_proxyd"}) {
      const fs::path cand = dir / rel;
      if (fs::exists(cand)) return fs::canonical(cand).string();
    }
  }
  return "checl_proxyd";  // hope PATH has it
}

void Spawned::stop() {
  if (client_ != nullptr && client_->alive()) client_->shutdown();
  client_.reset();
  if (pid_ > 0) {
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  if (server_thread_ != nullptr) {
    server_thread_->join();
    server_thread_.reset();
  }
}

void Spawned::kill_hard() {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  // Thread transport: dropping the client closes the channel and the server
  // thread exits; join happens in stop().
}

Spawned connect_remote_proxy(const char* host, std::uint16_t port) {
  Spawned s;
  // the daemon may still be binding; retry briefly
  int fd = -1;
  for (int attempt = 0; attempt < 50 && fd < 0; ++attempt) {
    fd = ipc::tcp_connect(host, port);
    if (fd < 0) ::usleep(20'000);
  }
  if (fd < 0) {
    s.error_ = std::string("cannot connect to remote proxy at ") + host + ":" +
               std::to_string(port);
    return s;
  }
  s.client_ = std::make_unique<Client>(std::make_unique<ipc::SocketChannel>(fd));
  if (s.client_->ping() != CL_SUCCESS) {
    s.error_ = "remote proxy did not answer";
    s.client_.reset();
  }
  return s;
}

Spawned spawn_tcp_proxy(std::uint16_t port) {
  const std::string proxyd = find_proxyd();
  const pid_t pid = ::fork();
  if (pid < 0) {
    Spawned s;
    s.error_ = "fork failed";
    return s;
  }
  if (pid == 0) {
    std::array<char, 16> port_str{};
    std::snprintf(port_str.data(), port_str.size(), "%u", port);
    ::execl(proxyd.c_str(), "checl_proxyd", "--tcp-port", port_str.data(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  Spawned s = connect_remote_proxy("127.0.0.1", port);
  s.pid_ = pid;
  if (!s.ok()) {
    int status = 0;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
    s.pid_ = -1;
  }
  return s;
}

Spawned spawn_proxy(Transport t) {
  Spawned s;
  if (t == Transport::Thread) {
    auto [app_end, proxy_end] = ipc::make_local_pair();
    auto* proxy_raw = proxy_end.release();
    s.server_thread_ = std::make_unique<std::thread>(
        [proxy_raw] {
          std::unique_ptr<ipc::Channel> ch(proxy_raw);
          serve(*ch);
        });
    s.client_ = std::make_unique<Client>(std::move(app_end));
    return s;
  }

  const auto [app_fd, proxy_fd] = ipc::make_socketpair();
  if (app_fd < 0) {
    s.error_ = "socketpair failed";
    return s;
  }
  const std::string proxyd = find_proxyd();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(app_fd);
    ::close(proxy_fd);
    s.error_ = "fork failed";
    return s;
  }
  if (pid == 0) {
    // child: exec the proxy daemon with its end of the socketpair
    ::close(app_fd);
    std::array<char, 16> fd_str{};
    std::snprintf(fd_str.data(), fd_str.size(), "%d", proxy_fd);
    ::execl(proxyd.c_str(), "checl_proxyd", "--fd", fd_str.data(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(proxy_fd);
  s.pid_ = pid;
  s.client_ = std::make_unique<Client>(std::make_unique<ipc::SocketChannel>(app_fd));
  // verify the exec didn't fail
  if (s.client_->ping() != CL_SUCCESS) {
    s.error_ = "proxy daemon did not start (looked for: " + proxyd + ")";
    s.client_.reset();
    int status = 0;
    ::waitpid(pid, &status, 0);
    s.pid_ = -1;
  }
  return s;
}

}  // namespace proxy
