#include "proxy/spawn.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <vector>

#include "common/retry.h"
#include "proxy/server.h"

namespace proxy {

namespace fs = std::filesystem;

namespace {

std::size_t env_size(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  return end != nullptr && *end == '\0' && n > 0 ? static_cast<std::size_t>(n)
                                                 : def;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && *v != '0';
}

// Killed-but-not-yet-waited proxy children.  SIGKILL delivery and the exit
// are asynchronous, so a respawn loop cannot block on waitpid without adding
// the old proxy's death latency to every recovery; instead the pid is parked
// here and polled non-blockingly (WNOHANG, per-pid — never waitpid(-1),
// which would steal unrelated children such as a concurrently spawned TCP
// proxy) at the next spawn/stop or an explicit reap call.
std::mutex g_children_mu;
std::vector<pid_t> g_children;

}  // namespace

void register_child(pid_t pid) {
  if (pid <= 0) return;
  std::lock_guard<std::mutex> lk(g_children_mu);
  g_children.push_back(pid);
}

int reap_exited_children() {
  std::lock_guard<std::mutex> lk(g_children_mu);
  int reaped = 0;
  for (auto it = g_children.begin(); it != g_children.end();) {
    int status = 0;
    const pid_t r = ::waitpid(*it, &status, WNOHANG);
    if (r == *it || (r < 0 && errno == ECHILD)) {
      it = g_children.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

std::size_t pending_children() {
  std::lock_guard<std::mutex> lk(g_children_mu);
  return g_children.size();
}

SpawnOptions spawn_options_from_env() {
  SpawnOptions o;
  o.use_shm = !env_flag("CHECL_NO_SHM");
  o.shm_ring_bytes = env_size("CHECL_SHM_RING_BYTES", o.shm_ring_bytes);
  o.shm_threshold = env_size("CHECL_SHM_THRESHOLD", o.shm_threshold);
  o.use_writev = !env_flag("CHECL_NO_WRITEV");
  if (const char* v = std::getenv("CHECL_PROXYD_SOCKET");
      v != nullptr && *v != '\0')
    o.daemon_socket = v;
  return o;
}

std::string find_proxyd() {
  if (const char* env = std::getenv("CHECL_PROXYD");
      env != nullptr && *env != '\0' && fs::exists(env))
    return env;
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const fs::path dir = self.parent_path();
    for (const char* rel :
         {"checl_proxyd", "../src/proxy/checl_proxyd", "../proxy/checl_proxyd",
          "../../src/proxy/checl_proxyd"}) {
      const fs::path cand = dir / rel;
      if (fs::exists(cand)) return fs::canonical(cand).string();
    }
  }
  return "checl_proxyd";  // hope PATH has it
}

void Spawned::stop() {
  if (client_ != nullptr && client_->alive()) client_->shutdown();
  client_.reset();
  if (pid_ > 0) {
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  if (server_thread_ != nullptr) {
    server_thread_->join();
    server_thread_.reset();
  }
  // drain any children parked by earlier revive() calls
  reap_exited_children();
}

void Spawned::kill_hard() {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  // Thread transport: dropping the client closes the channel and the server
  // thread exits; join happens in stop().
}

RawConnection connect_raw(const char* host, std::uint16_t port) {
  RawConnection c;
  // The daemon may still be binding (or respawning): capped exponential
  // backoff with a deadline budget instead of the seed's fixed 50x20ms loop.
  checl::Retry pol;
  pol.max_attempts = 50;
  pol.base_delay_ns = 2'000'000;     // 2 ms
  pol.max_delay_ns = 100'000'000;    // 100 ms cap
  pol.budget_ns = 2'000'000'000;     // give up after ~2 s total
  int fd = -1;
  pol.run([&] {
    fd = ipc::tcp_connect(host, port);
    return fd >= 0;
  });
  if (fd < 0) {
    c.error = std::string("cannot connect to remote proxy at ") + host + ":" +
              std::to_string(port);
    return c;
  }
  c.ch = std::make_unique<ipc::SocketChannel>(fd);
  return c;
}

RawConnection attach_daemon_connection(const SpawnOptions& opts) {
  RawConnection c;
  // The daemon may still be binding its socket (or the supervisor may be
  // re-attaching the instant after it restarted): same backoff as TCP.
  checl::Retry pol;
  pol.max_attempts = 50;
  pol.base_delay_ns = 2'000'000;
  pol.max_delay_ns = 100'000'000;
  pol.budget_ns = 2'000'000'000;
  int fd = -1;
  pol.run([&] {
    fd = ipc::unix_connect(opts.daemon_socket.c_str());
    return fd >= 0;
  });
  if (fd < 0) {
    c.error = "cannot connect to proxy daemon at " + opts.daemon_socket;
    return c;
  }
  auto sock = std::make_unique<ipc::SocketChannel>(fd);
  sock->set_use_writev(opts.use_writev);
  // This client's private data-plane rings: created here (creator side), the
  // daemon attaches by name during the handshake.  Create failure degrades to
  // the socket-only path, exactly like the Process transport.
  std::shared_ptr<ipc::ShmSegment> seg;
  if (opts.use_shm) seg = ipc::ShmSegment::create(opts.shm_ring_bytes);
  ipc::Writer w;
  w.u32(kProxydProtoVersion);
  w.str(seg != nullptr ? seg->name() : std::string());
  w.u64(seg != nullptr ? opts.shm_threshold : 0);
  ipc::Message m;
  m.op = static_cast<std::uint32_t>(Op::Attach);
  m.payload = w.take();
  ipc::Message resp;
  if (!sock->send(m) || !sock->recv(resp)) {
    c.error = "proxy daemon dropped the attach handshake";
    return c;
  }
  ipc::Reader r(resp.view.empty() ? std::span<const std::uint8_t>(resp.payload)
                                  : resp.view);
  const cl_int err = r.i32();
  c.client_id = r.u64();
  r.u32();  // daemon pid (informational)
  if (!r.ok() || err != CL_SUCCESS) {
    c.attach_error = r.ok() ? err : CL_INVALID_VALUE;
    c.error = "proxy daemon refused attach (error " +
              std::to_string(c.attach_error) + ")";
    return c;
  }
  if (seg != nullptr)
    c.ch = std::make_unique<ipc::ShmChannel>(std::move(sock), std::move(seg),
                                             /*creator=*/true,
                                             opts.shm_threshold);
  else
    c.ch = std::move(sock);
  return c;  // pid stays -1: the daemon is shared, never ours to kill
}

Spawned connect_remote_proxy(const char* host, std::uint16_t port) {
  Spawned s;
  RawConnection c = connect_raw(host, port);
  if (c.ch == nullptr) {
    s.error_ = std::move(c.error);
    return s;
  }
  s.client_ = std::make_unique<Client>(std::move(c.ch));
  if (s.client_->ping() != CL_SUCCESS) {
    s.error_ = "remote proxy did not answer";
    s.client_.reset();
  }
  return s;
}

Spawned spawn_tcp_proxy(std::uint16_t port) {
  const std::string proxyd = find_proxyd();
  const pid_t pid = ::fork();
  if (pid < 0) {
    Spawned s;
    s.error_ = "fork failed";
    return s;
  }
  if (pid == 0) {
    std::array<char, 16> port_str{};
    std::snprintf(port_str.data(), port_str.size(), "%u", port);
    ::execl(proxyd.c_str(), "checl_proxyd", "--tcp-port", port_str.data(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  Spawned s = connect_remote_proxy("127.0.0.1", port);
  s.pid_ = pid;
  if (!s.ok()) {
    int status = 0;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
    s.pid_ = -1;
  }
  return s;
}

Spawned spawn_proxy(Transport t) { return spawn_proxy(t, spawn_options_from_env()); }

RawConnection spawn_connection(Transport t, const SpawnOptions& opts) {
  RawConnection c;
  if (t == Transport::Thread) {
    auto [app_end, proxy_end] = ipc::make_local_pair();
    auto* proxy_raw = proxy_end.release();
    c.server_thread = std::make_unique<std::thread>(
        [proxy_raw] {
          std::unique_ptr<ipc::Channel> ch(proxy_raw);
          serve(*ch);
        });
    c.ch = std::move(app_end);
    return c;
  }
  if (t == Transport::Tcp) {
    c.error = "spawn_connection: Tcp endpoints come from connect_raw()";
    return c;
  }
  if (t == Transport::Daemon) return attach_daemon_connection(opts);

  const auto [app_fd, proxy_fd] = ipc::make_socketpair();
  if (app_fd < 0) {
    c.error = "socketpair failed";
    return c;
  }
  // Bulk-data plane: created before the fork so the daemon can attach by
  // name; a create failure just degrades to the socket-only path.
  std::shared_ptr<ipc::ShmSegment> seg;
  if (opts.use_shm) seg = ipc::ShmSegment::create(opts.shm_ring_bytes);
  const std::string proxyd = find_proxyd();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(app_fd);
    ::close(proxy_fd);
    c.error = "fork failed";
    return c;
  }
  if (pid == 0) {
    // child: exec the proxy daemon with its end of the socketpair.  The pair
    // is opened CLOEXEC so no other exec'd child can inherit it; this one fd
    // is meant to survive the exec, so clear the flag here.
    const int fdflags = ::fcntl(proxy_fd, F_GETFD);
    if (fdflags >= 0) ::fcntl(proxy_fd, F_SETFD, fdflags & ~FD_CLOEXEC);
    std::array<char, 16> fd_str{};
    std::snprintf(fd_str.data(), fd_str.size(), "%d", proxy_fd);
    std::array<char, 24> thr_str{};
    std::snprintf(thr_str.data(), thr_str.size(), "%zu", opts.shm_threshold);
    const char* argv[10];
    int argc = 0;
    argv[argc++] = "checl_proxyd";
    argv[argc++] = "--fd";
    argv[argc++] = fd_str.data();
    if (seg != nullptr) {
      argv[argc++] = "--shm";
      argv[argc++] = seg->name().c_str();
      argv[argc++] = "--shm-threshold";
      argv[argc++] = thr_str.data();
    }
    if (!opts.use_writev) argv[argc++] = "--no-writev";
    argv[argc] = nullptr;
    ::execv(proxyd.c_str(), const_cast<char* const*>(argv));
    ::_exit(127);
  }
  ::close(proxy_fd);
  c.pid = pid;
  auto sock = std::make_unique<ipc::SocketChannel>(app_fd);
  sock->set_use_writev(opts.use_writev);
  if (seg != nullptr)
    c.ch = std::make_unique<ipc::ShmChannel>(std::move(sock), std::move(seg),
                                             /*creator=*/true, opts.shm_threshold);
  else
    c.ch = std::move(sock);
  return c;
}

Spawned spawn_proxy(Transport t, const SpawnOptions& opts) {
  Spawned s;
  RawConnection c = spawn_connection(t, opts);
  if (c.ch == nullptr) {
    s.error_ = std::move(c.error);
    return s;
  }
  s.pid_ = c.pid;
  s.server_thread_ = std::move(c.server_thread);
  s.client_ = std::make_unique<Client>(std::move(c.ch));
  if (t == Transport::Process && s.client_->ping() != CL_SUCCESS) {
    // verify the exec didn't fail
    s.error_ = "proxy daemon did not start (looked for: " + find_proxyd() + ")";
    s.client_.reset();
    int status = 0;
    ::waitpid(s.pid_, &status, 0);
    s.pid_ = -1;
  }
  return s;
}

bool Spawned::revive(Transport t, const SpawnOptions& opts, const char* tcp_host,
                     std::uint16_t tcp_port) {
  if (client_ == nullptr) {
    error_ = "revive: nothing was ever spawned";
    return false;
  }
  // Dispose of the dead proxy without blocking on its exit: SIGKILL is
  // idempotent on a corpse, and the pid is parked for a non-blocking reap.
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    register_child(pid_);
    pid_ = -1;
  }
  if (server_thread_ != nullptr) {
    // Thread transport: the failed LocalChannel closed both queues, so the
    // server loop has already returned (or is about to); the join is short.
    server_thread_->join();
    server_thread_.reset();
  }
  reap_exited_children();

  RawConnection c = t == Transport::Tcp ? connect_raw(tcp_host, tcp_port)
                                        : spawn_connection(t, opts);
  if (c.ch == nullptr) {
    error_ = std::move(c.error);
    return false;
  }
  client_->reset_channel(std::move(c.ch));
  pid_ = c.pid;
  server_thread_ = std::move(c.server_thread);
  return true;
}

}  // namespace proxy
