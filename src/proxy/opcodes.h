// opcodes.h — RPC protocol between the application-side CheCL layer and the
// API proxy process.  One opcode per forwarded API entry plus control ops.
//
// Wire conventions (see serial.h): handles are u64 tokens (pointer values in
// the proxy's address space), strings/byte-runs are length-prefixed, every
// response starts with an i32 error code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace proxy {

enum class Op : std::uint32_t {
  // control
  Configure = 1,  // platform specs + IPC cost model + clock reset
  Ping,           // -> err, pid
  Shutdown,       // server replies then exits

  // platform / device
  GetPlatformIDs,
  GetPlatformInfo,
  GetDeviceIDs,
  GetDeviceInfo,

  // context
  CreateContext,
  RetainContext,
  ReleaseContext,
  GetContextInfo,

  // queue
  CreateCommandQueue,
  RetainCommandQueue,
  ReleaseCommandQueue,
  GetCommandQueueInfo,
  Flush,
  Finish,

  // memory
  CreateBuffer,
  CreateImage2D,
  RetainMemObject,
  ReleaseMemObject,
  GetMemObjectInfo,
  GetImageInfo,

  // sampler
  CreateSampler,
  RetainSampler,
  ReleaseSampler,
  GetSamplerInfo,

  // program
  CreateProgramWithSource,
  CreateProgramWithBinary,
  RetainProgram,
  ReleaseProgram,
  BuildProgram,
  GetProgramInfo,
  GetProgramBuildInfo,

  // kernel
  CreateKernel,
  CreateKernelsInProgram,
  RetainKernel,
  ReleaseKernel,
  SetKernelArg,
  GetKernelInfo,
  GetKernelWorkGroupInfo,

  // events
  WaitForEvents,
  GetEventInfo,
  RetainEvent,
  ReleaseEvent,
  GetEventProfilingInfo,

  // enqueue
  EnqueueReadBuffer,
  EnqueueWriteBuffer,
  EnqueueCopyBuffer,
  EnqueueNDRangeKernel,
  EnqueueTask,
  EnqueueMarker,
  EnqueueBarrier,
  EnqueueWaitForEvents,

  // sim extensions (exempt from IPC cost charging — measurement instruments)
  SimGetHostTimeNS,
  SimAdvanceHostNS,

  // Live-checkpoint dirty tracking (charged like normal calls — the fetch
  // traffic is real overhead of the pre-copy engine and must show up in the
  // cost model).  MemDirtyFetch payload: [u64 mem][u64 chunk_bytes][u8 clear]
  // -> [i32 err][u64 nchunks][bytes bit-packed map]; clear=1 is a destructive
  // read (fetch-and-clear), hence Effectful below.  MemChunkHash payload:
  // [u64 mem][u64 chunk_bytes] -> [i32 err][u64 n][n x u64 FNV-1a chunk
  // hashes] — a pure verification instrument.
  MemDirtyFetch,
  MemChunkHash,

  // A client-side queue of fire-and-forget calls flushed as one frame.
  // Payload: repeated [u32 sub_op][u32 len][len bytes of sub-payload].
  // Response: [i32 first_error][u32 executed_count].  Control ops and nested
  // batches are rejected inside a batch.  The whole frame is charged one
  // per_call_ns — that is the modeled (and real) saving of batching.
  Batch,

  // Parallel-section brackets for the restore executor.  Between GroupBegin
  // and GroupEnd the server records each measured request's simulated cost
  // and greedily list-schedules it onto W virtual workers; GroupEnd rewinds
  // the host clock from the serial sum to the W-worker makespan.  Payloads:
  // GroupBegin [u32 workers] -> [i32 err]; GroupEnd -> [i32 err][u64
  // serial_ns][u64 makespan_ns].  Both are measurement instruments: exempt
  // from IPC cost charging and rejected inside a Batch frame.
  GroupBegin,
  GroupEnd,

  // Daemon handshake: first frame a client sends over a checl_proxyd unix
  // socket.  Payload: [u32 proto_version][str shm_segment_name (empty = no
  // data plane)][u64 shm_threshold].  Response: [i32 err][u64 client_id]
  // [u32 daemon_pid].  Typed rejects: CL_CHECL_DAEMON_FULL at max-clients.
  // Handled at accept time by the daemon event loop, never mid-session —
  // dispatch answers CL_INVALID_OPERATION for a spawned (single-client) proxy.
  Attach,

  // Sentinel — keep last.  The replayability table below and the generated
  // opcode-coverage test walk [Configure, kOpCount); a new opcode added above
  // without a classification fails that test at the next run.
  kOpCount,
};

// Version of the Attach handshake; bumped when its payload layout changes.
inline constexpr std::uint32_t kProxydProtoVersion = 1;

// ---- recovery classification ----------------------------------------------
//
// When a call is in flight across a channel failure, the supervisor must
// decide whether re-issuing it after reconnect/replay is safe.  Against a
// freshly respawned proxy every in-flight side effect died with the old
// process, so anything can be re-sent; against a *surviving* peer (a TCP
// daemon that outlived a dropped connection) only idempotent calls may be
// retried — the rest fail exactly once with a named RecoveryError.
enum class Replay : std::uint8_t {
  Unclassified = 0,  // never valid — the coverage test rejects it
  Pure,              // read-only query; retry is always safe
  Replayable,        // idempotent mutation (latest-wins or same-bytes)
  Effectful,         // non-idempotent (creates/destroys/increments/launches)
};

[[nodiscard]] constexpr Replay replayability(Op op) noexcept {
  switch (op) {
    // read-only queries and waits
    case Op::Ping:
    case Op::GetPlatformIDs:
    case Op::GetPlatformInfo:
    case Op::GetDeviceIDs:
    case Op::GetDeviceInfo:
    case Op::GetContextInfo:
    case Op::GetCommandQueueInfo:
    case Op::GetMemObjectInfo:
    case Op::GetImageInfo:
    case Op::GetSamplerInfo:
    case Op::GetProgramInfo:
    case Op::GetProgramBuildInfo:
    case Op::GetKernelInfo:
    case Op::GetKernelWorkGroupInfo:
    case Op::WaitForEvents:
    case Op::GetEventInfo:
    case Op::GetEventProfilingInfo:
    case Op::EnqueueReadBuffer:
    case Op::SimGetHostTimeNS:
    case Op::MemChunkHash:
      return Replay::Pure;

    // idempotent mutations: re-issuing with the same arguments converges to
    // the same state (latest-wins writes, rebuildable artifacts, sync points)
    case Op::Configure:
    case Op::Flush:
    case Op::Finish:
    case Op::BuildProgram:
    case Op::SetKernelArg:
    case Op::EnqueueWriteBuffer:
    case Op::EnqueueCopyBuffer:
    case Op::EnqueueBarrier:
    case Op::EnqueueWaitForEvents:
    case Op::GroupBegin:
    case Op::GroupEnd:
      return Replay::Replayable;

    // non-idempotent: handle creation/destruction, refcount edits, kernel
    // launches (running twice != running once), clock edits, opaque batches
    case Op::Shutdown:
    case Op::CreateContext:
    case Op::RetainContext:
    case Op::ReleaseContext:
    case Op::CreateCommandQueue:
    case Op::RetainCommandQueue:
    case Op::ReleaseCommandQueue:
    case Op::CreateBuffer:
    case Op::CreateImage2D:
    case Op::RetainMemObject:
    case Op::ReleaseMemObject:
    case Op::CreateSampler:
    case Op::RetainSampler:
    case Op::ReleaseSampler:
    case Op::CreateProgramWithSource:
    case Op::CreateProgramWithBinary:
    case Op::RetainProgram:
    case Op::ReleaseProgram:
    case Op::CreateKernel:
    case Op::CreateKernelsInProgram:
    case Op::RetainKernel:
    case Op::ReleaseKernel:
    case Op::RetainEvent:
    case Op::ReleaseEvent:
    case Op::EnqueueNDRangeKernel:
    case Op::EnqueueTask:
    case Op::EnqueueMarker:
    case Op::SimAdvanceHostNS:
    case Op::MemDirtyFetch:  // fetch-and-clear: a retry would read a map the
                             // first (lost) reply already cleared
    case Op::Batch:
    case Op::Attach:  // re-attaching is a new session epoch, never a retry
      return Replay::Effectful;

    case Op::kOpCount:
      break;
  }
  return Replay::Unclassified;
}

[[nodiscard]] constexpr const char* replay_name(Replay r) noexcept {
  switch (r) {
    case Replay::Unclassified:
      return "Unclassified";
    case Replay::Pure:
      return "Pure";
    case Replay::Replayable:
      return "Replayable";
    case Replay::Effectful:
      return "Effectful";
  }
  return "?";
}

// Human-readable opcode names for recovery chains and diagnostics.
[[nodiscard]] constexpr const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::Configure: return "Configure";
    case Op::Ping: return "Ping";
    case Op::Shutdown: return "Shutdown";
    case Op::GetPlatformIDs: return "GetPlatformIDs";
    case Op::GetPlatformInfo: return "GetPlatformInfo";
    case Op::GetDeviceIDs: return "GetDeviceIDs";
    case Op::GetDeviceInfo: return "GetDeviceInfo";
    case Op::CreateContext: return "CreateContext";
    case Op::RetainContext: return "RetainContext";
    case Op::ReleaseContext: return "ReleaseContext";
    case Op::GetContextInfo: return "GetContextInfo";
    case Op::CreateCommandQueue: return "CreateCommandQueue";
    case Op::RetainCommandQueue: return "RetainCommandQueue";
    case Op::ReleaseCommandQueue: return "ReleaseCommandQueue";
    case Op::GetCommandQueueInfo: return "GetCommandQueueInfo";
    case Op::Flush: return "Flush";
    case Op::Finish: return "Finish";
    case Op::CreateBuffer: return "CreateBuffer";
    case Op::CreateImage2D: return "CreateImage2D";
    case Op::RetainMemObject: return "RetainMemObject";
    case Op::ReleaseMemObject: return "ReleaseMemObject";
    case Op::GetMemObjectInfo: return "GetMemObjectInfo";
    case Op::GetImageInfo: return "GetImageInfo";
    case Op::CreateSampler: return "CreateSampler";
    case Op::RetainSampler: return "RetainSampler";
    case Op::ReleaseSampler: return "ReleaseSampler";
    case Op::GetSamplerInfo: return "GetSamplerInfo";
    case Op::CreateProgramWithSource: return "CreateProgramWithSource";
    case Op::CreateProgramWithBinary: return "CreateProgramWithBinary";
    case Op::RetainProgram: return "RetainProgram";
    case Op::ReleaseProgram: return "ReleaseProgram";
    case Op::BuildProgram: return "BuildProgram";
    case Op::GetProgramInfo: return "GetProgramInfo";
    case Op::GetProgramBuildInfo: return "GetProgramBuildInfo";
    case Op::CreateKernel: return "CreateKernel";
    case Op::CreateKernelsInProgram: return "CreateKernelsInProgram";
    case Op::RetainKernel: return "RetainKernel";
    case Op::ReleaseKernel: return "ReleaseKernel";
    case Op::SetKernelArg: return "SetKernelArg";
    case Op::GetKernelInfo: return "GetKernelInfo";
    case Op::GetKernelWorkGroupInfo: return "GetKernelWorkGroupInfo";
    case Op::WaitForEvents: return "WaitForEvents";
    case Op::GetEventInfo: return "GetEventInfo";
    case Op::RetainEvent: return "RetainEvent";
    case Op::ReleaseEvent: return "ReleaseEvent";
    case Op::GetEventProfilingInfo: return "GetEventProfilingInfo";
    case Op::EnqueueReadBuffer: return "EnqueueReadBuffer";
    case Op::EnqueueWriteBuffer: return "EnqueueWriteBuffer";
    case Op::EnqueueCopyBuffer: return "EnqueueCopyBuffer";
    case Op::EnqueueNDRangeKernel: return "EnqueueNDRangeKernel";
    case Op::EnqueueTask: return "EnqueueTask";
    case Op::EnqueueMarker: return "EnqueueMarker";
    case Op::EnqueueBarrier: return "EnqueueBarrier";
    case Op::EnqueueWaitForEvents: return "EnqueueWaitForEvents";
    case Op::SimGetHostTimeNS: return "SimGetHostTimeNS";
    case Op::SimAdvanceHostNS: return "SimAdvanceHostNS";
    case Op::MemDirtyFetch: return "MemDirtyFetch";
    case Op::MemChunkHash: return "MemChunkHash";
    case Op::Batch: return "Batch";
    case Op::GroupBegin: return "GroupBegin";
    case Op::GroupEnd: return "GroupEnd";
    case Op::Attach: return "Attach";
    case Op::kOpCount: break;
  }
  return "?";
}

// clSetKernelArg argument kinds on the wire: the *client* (CheCL wrapper) has
// already done the CheCL-handle -> OpenCL-handle conversion, so the kind is
// explicit here.
enum class ArgKind : std::uint8_t { Bytes = 0, MemHandle = 1, SamplerHandle = 2, Local = 3 };

// ---- in-flight request remapping -------------------------------------------
//
// After a recovery re-materializes every object on a fresh proxy, the remote
// handles embedded in the *already-marshalled* in-flight request frame are
// stale — they name objects of the dead peer.  This walker knows, per opcode,
// where handle fields sit in the request payload and rewrites each through
// `map` (old handle -> new handle; identity for unknown values).  Returns
// false when the payload is too short for its opcode's layout — the caller
// then sends the frame unmodified and lets the proxy reject it.
//
// Layout shapes (see the Client marshalling code, which this table mirrors):
//   * N leading u64 handles (most ops);
//   * a u32-counted u64 handle array, after the leading handles
//     (BuildProgram, CreateProgramWithBinary, WaitForEvents,
//     EnqueueWaitForEvents) or after an i64 property list (CreateContext);
//   * SetKernelArg: handle, u32 idx, u8 ArgKind, then one more handle iff
//     the kind is MemHandle/SamplerHandle.
// Batch frames are never re-sent (their calls are journaled and replayed),
// so Op::Batch needs no layout here.
template <typename MapFn>
inline bool remap_request_handles(Op op, std::uint8_t* p, std::size_t n,
                                  MapFn&& map) {
  std::size_t pos = 0;
  auto ok = [&](std::size_t need) { return pos + need <= n; };
  auto rd_u32 = [&](std::uint32_t& v) {
    if (!ok(4)) return false;
    std::memcpy(&v, p + pos, 4);
    pos += 4;
    return true;
  };
  auto map_u64 = [&] {
    if (!ok(8)) return false;
    std::uint64_t v = 0;
    std::memcpy(&v, p + pos, 8);
    v = map(v);
    std::memcpy(p + pos, &v, 8);
    pos += 8;
    return true;
  };
  auto skip = [&](std::size_t k) {
    if (!ok(k)) return false;
    pos += k;
    return true;
  };
  auto lead = [&](int k) {
    for (int i = 0; i < k; ++i)
      if (!map_u64()) return false;
    return true;
  };
  auto counted_handles = [&] {
    std::uint32_t c = 0;
    if (!rd_u32(c)) return false;
    for (std::uint32_t i = 0; i < c; ++i)
      if (!map_u64()) return false;
    return true;
  };

  switch (op) {
    // no handles in the request
    case Op::Configure:
    case Op::Ping:
    case Op::Shutdown:
    case Op::GetPlatformIDs:
    case Op::SimGetHostTimeNS:
    case Op::SimAdvanceHostNS:
    case Op::GroupBegin:
    case Op::GroupEnd:
    case Op::Batch:
    case Op::Attach:
    case Op::kOpCount:
      return true;

    // one leading handle
    case Op::GetPlatformInfo:
    case Op::GetDeviceInfo:
    case Op::GetDeviceIDs:
    case Op::RetainContext:
    case Op::ReleaseContext:
    case Op::GetContextInfo:
    case Op::RetainCommandQueue:
    case Op::ReleaseCommandQueue:
    case Op::GetCommandQueueInfo:
    case Op::Flush:
    case Op::Finish:
    case Op::CreateBuffer:
    case Op::CreateImage2D:
    case Op::RetainMemObject:
    case Op::ReleaseMemObject:
    case Op::GetMemObjectInfo:
    case Op::GetImageInfo:
    case Op::CreateSampler:
    case Op::RetainSampler:
    case Op::ReleaseSampler:
    case Op::GetSamplerInfo:
    case Op::CreateProgramWithSource:
    case Op::RetainProgram:
    case Op::ReleaseProgram:
    case Op::GetProgramInfo:
    case Op::CreateKernel:
    case Op::CreateKernelsInProgram:
    case Op::RetainKernel:
    case Op::ReleaseKernel:
    case Op::GetKernelInfo:
    case Op::GetEventInfo:
    case Op::RetainEvent:
    case Op::ReleaseEvent:
    case Op::GetEventProfilingInfo:
    case Op::EnqueueMarker:
    case Op::EnqueueBarrier:
    case Op::MemDirtyFetch:
    case Op::MemChunkHash:
      return lead(1);

    // two leading handles
    case Op::CreateCommandQueue:  // (ctx, dev); the third u64 is properties
    case Op::GetProgramBuildInfo:
    case Op::GetKernelWorkGroupInfo:
    case Op::EnqueueReadBuffer:
    case Op::EnqueueWriteBuffer:
    case Op::EnqueueNDRangeKernel:
    case Op::EnqueueTask:
      return lead(2);

    // three leading handles
    case Op::EnqueueCopyBuffer:  // (queue, src, dst)
      return lead(3);

    // leading handle(s) + u32-counted handle array
    case Op::BuildProgram:
    case Op::CreateProgramWithBinary:
      return lead(1) && counted_handles();
    case Op::EnqueueWaitForEvents:
      return lead(1) && counted_handles();
    case Op::WaitForEvents:
      return counted_handles();

    // u32-counted i64 property list, then u32-counted handle array
    case Op::CreateContext: {
      std::uint32_t nprops = 0;
      if (!rd_u32(nprops) || !skip(std::size_t{nprops} * 8)) return false;
      return counted_handles();
    }

    // handle, u32 idx, u8 kind, one more handle for the handle-carrying kinds
    case Op::SetKernelArg: {
      if (!lead(1) || !skip(4) || !ok(1)) return false;
      const auto kind = static_cast<ArgKind>(p[pos]);
      pos += 1;
      if (kind == ArgKind::MemHandle || kind == ArgKind::SamplerHandle)
        return map_u64();
      return true;
    }
  }
  return true;
}

// Cost model for the app<->proxy hop, charged by the server per request.
// per_call ~ two context switches + socket round trip (2010-era hardware);
// bytes_per_sec ~ one extra memcpy between the two address spaces, which is
// what makes proxied transfers visibly slower than native PCIe (Figure 4).
struct IpcCosts {
  std::uint64_t per_call_ns = 10'000;    // fixed round-trip overhead
  double bytes_per_sec = 6.0e9 / 32.0;   // bulk copy bw (bandwidth-scaled,
                                         // see simcl::kBandwidthScale)
  std::uint64_t spawn_ns = 80'000'000;   // fork/exec/init — the paper's ~0.08 s
};

}  // namespace proxy
