// opcodes.h — RPC protocol between the application-side CheCL layer and the
// API proxy process.  One opcode per forwarded API entry plus control ops.
//
// Wire conventions (see serial.h): handles are u64 tokens (pointer values in
// the proxy's address space), strings/byte-runs are length-prefixed, every
// response starts with an i32 error code.
#pragma once

#include <cstdint>

namespace proxy {

enum class Op : std::uint32_t {
  // control
  Configure = 1,  // platform specs + IPC cost model + clock reset
  Ping,           // -> err, pid
  Shutdown,       // server replies then exits

  // platform / device
  GetPlatformIDs,
  GetPlatformInfo,
  GetDeviceIDs,
  GetDeviceInfo,

  // context
  CreateContext,
  RetainContext,
  ReleaseContext,
  GetContextInfo,

  // queue
  CreateCommandQueue,
  RetainCommandQueue,
  ReleaseCommandQueue,
  GetCommandQueueInfo,
  Flush,
  Finish,

  // memory
  CreateBuffer,
  CreateImage2D,
  RetainMemObject,
  ReleaseMemObject,
  GetMemObjectInfo,
  GetImageInfo,

  // sampler
  CreateSampler,
  RetainSampler,
  ReleaseSampler,
  GetSamplerInfo,

  // program
  CreateProgramWithSource,
  CreateProgramWithBinary,
  RetainProgram,
  ReleaseProgram,
  BuildProgram,
  GetProgramInfo,
  GetProgramBuildInfo,

  // kernel
  CreateKernel,
  CreateKernelsInProgram,
  RetainKernel,
  ReleaseKernel,
  SetKernelArg,
  GetKernelInfo,
  GetKernelWorkGroupInfo,

  // events
  WaitForEvents,
  GetEventInfo,
  RetainEvent,
  ReleaseEvent,
  GetEventProfilingInfo,

  // enqueue
  EnqueueReadBuffer,
  EnqueueWriteBuffer,
  EnqueueCopyBuffer,
  EnqueueNDRangeKernel,
  EnqueueTask,
  EnqueueMarker,
  EnqueueBarrier,
  EnqueueWaitForEvents,

  // sim extensions (exempt from IPC cost charging — measurement instruments)
  SimGetHostTimeNS,
  SimAdvanceHostNS,

  // A client-side queue of fire-and-forget calls flushed as one frame.
  // Payload: repeated [u32 sub_op][u32 len][len bytes of sub-payload].
  // Response: [i32 first_error][u32 executed_count].  Control ops and nested
  // batches are rejected inside a batch.  The whole frame is charged one
  // per_call_ns — that is the modeled (and real) saving of batching.
  Batch,

  // Parallel-section brackets for the restore executor.  Between GroupBegin
  // and GroupEnd the server records each measured request's simulated cost
  // and greedily list-schedules it onto W virtual workers; GroupEnd rewinds
  // the host clock from the serial sum to the W-worker makespan.  Payloads:
  // GroupBegin [u32 workers] -> [i32 err]; GroupEnd -> [i32 err][u64
  // serial_ns][u64 makespan_ns].  Both are measurement instruments: exempt
  // from IPC cost charging and rejected inside a Batch frame.
  GroupBegin,
  GroupEnd,
};

// clSetKernelArg argument kinds on the wire: the *client* (CheCL wrapper) has
// already done the CheCL-handle -> OpenCL-handle conversion, so the kind is
// explicit here.
enum class ArgKind : std::uint8_t { Bytes = 0, MemHandle = 1, SamplerHandle = 2, Local = 3 };

// Cost model for the app<->proxy hop, charged by the server per request.
// per_call ~ two context switches + socket round trip (2010-era hardware);
// bytes_per_sec ~ one extra memcpy between the two address spaces, which is
// what makes proxied transfers visibly slower than native PCIe (Figure 4).
struct IpcCosts {
  std::uint64_t per_call_ns = 10'000;    // fixed round-trip overhead
  double bytes_per_sec = 6.0e9 / 32.0;   // bulk copy bw (bandwidth-scaled,
                                         // see simcl::kBandwidthScale)
  std::uint64_t spawn_ns = 80'000'000;   // fork/exec/init — the paper's ~0.08 s
};

}  // namespace proxy
