#include "proxy/config_io.h"

namespace proxy {

void write_device_spec(ipc::Writer& w, const simcl::DeviceSpec& d) {
  w.str(d.name);
  w.str(d.vendor);
  w.u64(d.type);
  w.u32(d.compute_units);
  w.u32(d.clock_mhz);
  w.u64(d.global_mem_bytes);
  w.u64(d.local_mem_bytes);
  w.u64(d.max_alloc_bytes);
  w.u64(d.max_work_group_size);
  for (const std::size_t s : d.max_work_item_sizes) w.u64(s);
  w.f64(d.ops_per_sec);
  w.f64(d.h2d_bytes_per_sec);
  w.f64(d.d2h_bytes_per_sec);
  w.u64(d.transfer_latency_ns);
  w.u64(d.launch_overhead_ns);
  w.u64(d.compile_base_ns);
  w.f64(d.compile_ns_per_byte);
}

simcl::DeviceSpec read_device_spec(ipc::Reader& r) {
  simcl::DeviceSpec d;
  d.name = r.str();
  d.vendor = r.str();
  d.type = r.u64();
  d.compute_units = r.u32();
  d.clock_mhz = r.u32();
  d.global_mem_bytes = r.u64();
  d.local_mem_bytes = r.u64();
  d.max_alloc_bytes = r.u64();
  d.max_work_group_size = r.u64();
  for (std::size_t& s : d.max_work_item_sizes) s = r.u64();
  d.ops_per_sec = r.f64();
  d.h2d_bytes_per_sec = r.f64();
  d.d2h_bytes_per_sec = r.f64();
  d.transfer_latency_ns = r.u64();
  d.launch_overhead_ns = r.u64();
  d.compile_base_ns = r.u64();
  d.compile_ns_per_byte = r.f64();
  return d;
}

void write_platform_spec(ipc::Writer& w, const simcl::PlatformSpec& p) {
  w.str(p.name);
  w.str(p.vendor);
  w.str(p.version);
  w.u64(p.init_ns);
  w.u64(p.context_create_ns);
  w.u64(p.queue_create_ns);
  w.u32(static_cast<std::uint32_t>(p.devices.size()));
  for (const auto& d : p.devices) write_device_spec(w, d);
}

simcl::PlatformSpec read_platform_spec(ipc::Reader& r) {
  simcl::PlatformSpec p;
  p.name = r.str();
  p.vendor = r.str();
  p.version = r.str();
  p.init_ns = r.u64();
  p.context_create_ns = r.u64();
  p.queue_create_ns = r.u64();
  const std::uint32_t n = r.u32();
  p.devices.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) p.devices.push_back(read_device_spec(r));
  return p;
}

void write_config(ipc::Writer& w, const std::vector<simcl::PlatformSpec>& platforms,
                  const IpcCosts& costs, bool reset_clock,
                  const simcl::ProgCacheConfig& cache) {
  w.u32(static_cast<std::uint32_t>(platforms.size()));
  for (const auto& p : platforms) write_platform_spec(w, p);
  w.u64(costs.per_call_ns);
  w.f64(costs.bytes_per_sec);
  w.u64(costs.spawn_ns);
  w.boolean(reset_clock);
  w.boolean(cache.enabled);
  w.str(cache.root);
  w.u64(cache.max_modules);
  w.u64(cache.deserialize_base_ns);
  w.f64(cache.deserialize_ns_per_byte);
}

void read_config(ipc::Reader& r, std::vector<simcl::PlatformSpec>& platforms,
                 IpcCosts& costs, bool& reset_clock,
                 simcl::ProgCacheConfig& cache) {
  const std::uint32_t n = r.u32();
  platforms.clear();
  platforms.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) platforms.push_back(read_platform_spec(r));
  costs.per_call_ns = r.u64();
  costs.bytes_per_sec = r.f64();
  costs.spawn_ns = r.u64();
  reset_clock = r.boolean();
  cache.enabled = r.boolean();
  cache.root = r.str();
  cache.max_modules = r.u64();
  cache.deserialize_base_ns = r.u64();
  cache.deserialize_ns_per_byte = r.f64();
}

}  // namespace proxy
