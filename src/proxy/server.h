// server.h — the API proxy server: the only code that actually touches the
// OpenCL substrate in CheCL mode.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ipc/channel.h"
#include "ipc/serial.h"
#include "proxy/opcodes.h"
#include "simcl/clock.h"

namespace proxy {

// Per-connection dispatch state.  serve() owns exactly one (the classic
// single-client proxy); the multi-tenant daemon owns one per attached client
// session, all sharing the process-wide simcl substrate.
struct ServerState {
  IpcCosts costs;
  bool configured = false;
  // Bulk read staging: reused across requests (no per-call allocation), and
  // scatter-sent so the data skips the response-marshalling copy.  Cleared by
  // the serving loop after each send.
  std::vector<std::uint8_t> read_stage;
  std::span<const std::uint8_t> resp_bulk{};
  // Set by serve(): lets bulk responses be materialized directly in the
  // transport's data plane (shm ring) instead of staged.  The daemon leaves
  // this null — its responses must stay parseable for handle accounting.
  ipc::Channel* ch = nullptr;
  // Non-zero when dispatch already sent the response via send_reserved;
  // serve() charges these bytes and skips its own send.
  std::size_t resp_sent_bytes = 0;
  // Group (parallel-section) modeling: while active, the serving loop records
  // each measured request's host-clock delta and greedily assigns it to the
  // least-loaded virtual worker.  GroupEnd collapses the serially-advanced
  // span to max(group_worker_ns).
  bool group_active = false;
  simcl::SimNs group_t0 = 0;
  std::vector<simcl::SimNs> group_worker_ns;
  // Multi-tenant mode: the substrate (platform specs, compile cache, clock)
  // is shared by every attached client.  Configure then applies only this
  // session's cost model; platform/cache configuration is applied once, by
  // whichever client attaches first (latched through *substrate_configured),
  // and the reset flag is ignored — a reconnecting client must not rewind the
  // other clients' clock or cold their warm cache.
  bool shared_substrate = false;
  bool* substrate_configured = nullptr;
};

// Dispatch one request into the substrate; the response is materialized in
// `w` (plus st.resp_bulk for bulk reads).  Returns false on Shutdown — the
// caller ends (or, in the daemon, tears down) the session.
bool dispatch_request(ServerState& st, Op op, ipc::Reader& r, ipc::Writer& w);

// Whether a request op is charged the IPC cost model.  Control ops, group
// brackets and the sim-clock instruments are exempt.
[[nodiscard]] bool op_measured(Op op) noexcept;

// Advance the shared sim clock by the transfer model for `bytes`.
void charge_bytes(const ServerState& st, std::size_t bytes);

// Serves RPC requests on `ch` until Shutdown or a broken channel.
// The first message is expected to be Configure.
void serve(ipc::Channel& ch);

}  // namespace proxy
