// server.h — the API proxy server: the only code that actually touches the
// OpenCL substrate in CheCL mode.
#pragma once

#include "ipc/channel.h"

namespace proxy {

// Serves RPC requests on `ch` until Shutdown or a broken channel.
// The first message is expected to be Configure.
void serve(ipc::Channel& ch);

}  // namespace proxy
