// spawn.h — bringing an API proxy to life.
//
// Production transport: fork + exec of the `checl_proxyd` helper connected by
// an AF_UNIX socketpair — a genuinely separate process, so the application
// process holds no OpenCL state at all (the paper's checkpointability
// argument).  Test transport: an in-process server thread over a LocalChannel,
// which exercises identical marshalling without process machinery.
#pragma once

#include <sys/types.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "ipc/shm.h"
#include "proxy/client.h"

namespace proxy {

enum class Transport {
  Process,  // fork/exec checl_proxyd over a socketpair
  Thread,   // in-process server thread over a LocalChannel
  Tcp,      // connect to a checl_proxyd --tcp-port on another machine
  Daemon,   // attach to a shared checl_proxyd --socket multi-tenant daemon
};

// Fast-path knobs for the Process transport; every feature is independently
// toggleable for the ipc_micro ablation.  spawn_proxy(t) uses env-derived
// defaults: CHECL_NO_SHM=1, CHECL_SHM_RING_BYTES, CHECL_SHM_THRESHOLD,
// CHECL_NO_WRITEV=1.
struct SpawnOptions {
  bool use_shm = true;  // shared-memory bulk-data plane (Process transport)
  std::size_t shm_ring_bytes = ipc::kShmDefaultRingBytes;
  std::size_t shm_threshold = ipc::kShmDefaultThreshold;
  bool use_writev = true;  // scatter-gather framing (false = seed framing)
  // Daemon transport: listening unix-socket path of the shared checl_proxyd
  // (CHECL_PROXYD_SOCKET; shm knobs above apply to the per-client rings too).
  std::string daemon_socket = "/tmp/checl-proxyd.sock";
};

[[nodiscard]] SpawnOptions spawn_options_from_env();

// A transport endpoint without a Client wrapped around it.  spawn_proxy()
// builds its Client from one; Spawned::revive() transplants one into the
// *existing* Client after the proxy dies, so in-flight callers keep their
// stub object across the respawn.
struct RawConnection {
  std::unique_ptr<ipc::Channel> ch;  // nullptr => failed, see error
  pid_t pid = -1;                    // Process transport child
  std::unique_ptr<std::thread> server_thread;  // Thread transport server
  std::string error;
  // Daemon transport: the typed handshake refusal (CL_CHECL_DAEMON_FULL when
  // the daemon is at max-clients) and the granted identity on success.
  cl_int attach_error = 0;
  std::uint64_t client_id = 0;
};

// Brings up a fresh endpoint for Thread/Process/Daemon transports.
RawConnection spawn_connection(Transport t, const SpawnOptions& opts);
// TCP endpoint with retry/backoff while the daemon binds.
RawConnection connect_raw(const char* host, std::uint16_t port);
// Daemon endpoint: connects to opts.daemon_socket (retry/backoff while the
// daemon binds), performs the Op::Attach handshake — negotiating this
// client's private shm rings — and returns the attached channel.
RawConnection attach_daemon_connection(const SpawnOptions& opts);

// ---- zombie control --------------------------------------------------------
// Proxy children killed during respawn loops are handed to this registry and
// polled with waitpid(pid, WNOHANG) — per-pid, never waitpid(-1), so no other
// child (a concurrently spawned proxy, a test's own fork) gets stolen.
void register_child(pid_t pid);
// Reaps every registered child that has exited; returns how many were reaped.
int reap_exited_children();
// Registered children not yet reaped (0 = no zombies pending from us).
[[nodiscard]] std::size_t pending_children();

class Spawned {
 public:
  Spawned() = default;
  ~Spawned() { stop(); }
  Spawned(Spawned&& o) noexcept
      : client_(std::move(o.client_)),
        pid_(std::exchange(o.pid_, -1)),
        server_thread_(std::move(o.server_thread_)),
        error_(std::move(o.error_)) {}
  Spawned& operator=(Spawned&& o) noexcept {
    if (this != &o) {
      stop();
      client_ = std::move(o.client_);
      pid_ = std::exchange(o.pid_, -1);
      server_thread_ = std::move(o.server_thread_);
      error_ = std::move(o.error_);
    }
    return *this;
  }

  [[nodiscard]] Client* client() const noexcept { return client_.get(); }
  [[nodiscard]] bool ok() const noexcept { return client_ != nullptr; }
  [[nodiscard]] pid_t pid() const noexcept { return pid_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  // Polite shutdown: Shutdown RPC, then reap/join.
  void stop();
  // Violent death of the proxy (SIGKILL) — used by the failure-injection and
  // DMTCP-mode paths.  The client becomes dead on its next call.
  void kill_hard();
  // Supervision path: disposes of the dead proxy (SIGKILL + deferred reap /
  // thread join), brings up a fresh endpoint of the same transport, and
  // transplants its channel into the EXISTING client via reset_channel() —
  // the Client object, and every pointer to it, survives the respawn.
  // Returns false (with error()) when the new endpoint cannot be created;
  // the client is left dead in that case.
  bool revive(Transport t, const SpawnOptions& opts,
              const char* tcp_host = "127.0.0.1", std::uint16_t tcp_port = 0);

 private:
  friend Spawned spawn_proxy(Transport t, const SpawnOptions& opts);
  friend Spawned connect_remote_proxy(const char* host, std::uint16_t port);
  friend Spawned spawn_tcp_proxy(std::uint16_t port);

  std::unique_ptr<Client> client_;
  pid_t pid_ = -1;
  std::unique_ptr<std::thread> server_thread_;
  std::string error_;
};

// Returns a Spawned whose ok() is false (with error()) on failure.
Spawned spawn_proxy(Transport t);  // options from the environment
Spawned spawn_proxy(Transport t, const SpawnOptions& opts);

// Remote API proxy (the paper's Section V note: "allowing CheCL wrapper
// functions to communicate with a remote API proxy via TCP/IP sockets").
// Connects to a checl_proxyd already listening with --tcp-port on `host`.
Spawned connect_remote_proxy(const char* host, std::uint16_t port);

// Test/demo helper: fork+exec a checl_proxyd listening on `port` locally and
// connect to it — a "remote" proxy on loopback.
Spawned spawn_tcp_proxy(std::uint16_t port);

// Path of the checl_proxyd helper ($CHECL_PROXYD, else next to this binary).
std::string find_proxyd();

}  // namespace proxy
