// client.h — application-side stub for the API proxy.
//
// Every method marshals one API call, sends it over the channel, and blocks
// for the response (the RPC is synchronous, like a library call).  Remote
// handles are opaque u64 tokens: pointer values in the proxy's address space
// that this process never dereferences — the decoupling at the heart of CheCL.
//
// Batching (opt-in via set_batching or CHECL_IPC_BATCH=1): fire-and-forget
// calls — set_kernel_arg_*, event-less enqueue_*, flush, barrier — are queued
// client-side and flushed as a single Op::Batch frame at the next synchronous
// call (or at sync(), which checkpoint uses).  Each batched call returns
// CL_SUCCESS immediately; the first server-side error becomes a *sticky
// deferred error* surfaced (and cleared) at the next sync point: finish,
// wait_for_events, or sync().
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "checl/cl.h"
#include "ipc/channel.h"
#include "ipc/serial.h"
#include "proxy/opcodes.h"
#include "simcl/progcache.h"
#include "simcl/specs.h"

namespace proxy {

using RemoteHandle = std::uint64_t;

class Client {
 public:
  // Flush the batch queue once it holds this many calls or payload bytes,
  // even before a synchronous call arrives (bounds client-side memory).
  static constexpr std::uint32_t kMaxBatchCalls = 512;
  static constexpr std::size_t kMaxBatchBytes = 256 * 1024;

  explicit Client(std::unique_ptr<ipc::Channel> channel);

  [[nodiscard]] bool alive() const noexcept { return !dead_; }

  // ---- supervision -----------------------------------------------------
  // What the recovery handler decided about a failed round-trip:
  //   Failed   — recovery impossible; the client goes dead (seed behavior).
  //   Retry    — the channel was healed and replayed; re-issue the call.
  //   FailCall — the channel was healed, but the in-flight call is effectful
  //              against a surviving peer: it fails exactly once while the
  //              client stays alive for subsequent calls.
  enum class Recovery : std::uint8_t { Failed, Retry, FailCall };
  using RecoveryHandler =
      std::function<Recovery(Client&, Op, ipc::ChannelError)>;
  // Installed by the supervisor; invoked (under the client lock, on the
  // calling thread) when a send/recv breaks.  The handler may call back into
  // this client — the lock is recursive — and is never re-entered: failures
  // during recovery surface to the handler as ordinary call failures.
  void set_recovery_handler(RecoveryHandler h);
  // Transplants a fresh channel into the live client after a respawn:
  // clears the dead flag, drops any half-queued batch (recovery replays the
  // journaled calls instead), and re-applies the receive deadline.
  void reset_channel(std::unique_ptr<ipc::Channel> ch);
  // Staged by the recovery handler before it returns Retry: the in-flight
  // request frame was marshalled against the *old* peer, so its embedded
  // remote handles are stale.  The next (and only the next) re-send rewrites
  // them through this old->new map (see remap_request_handles).
  void stage_retry_remap(std::unordered_map<RemoteHandle, RemoteHandle> m);
  // Per-call receive deadline for hung-RPC detection (0 = block forever).
  void set_recv_deadline_ms(std::uint32_t ms);

  // ---- batching --------------------------------------------------------
  void set_batching(bool on);  // turning off flushes any queued calls
  [[nodiscard]] bool batching() const noexcept { return batching_; }
  // Drains the batch queue and returns the sticky deferred error (cleared).
  // The synchronization point the checkpoint engine calls before Finish.
  cl_int sync();
  // Peek the sticky error without clearing it (tests, diagnostics).
  [[nodiscard]] cl_int deferred_error() const noexcept { return deferred_err_; }

  // ---- instrumentation -------------------------------------------------
  struct Stats {
    std::uint64_t rpc_roundtrips = 0;   // wire request/response pairs
    std::uint64_t batched_calls = 0;    // calls absorbed into a batch frame
    std::uint64_t batch_flushes = 0;    // Op::Batch frames sent
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  // Transport counters (bytes, syscalls, shm hits) of the underlying channel.
  [[nodiscard]] ipc::ChannelStats channel_stats() const { return ch_->stats(); }
  [[nodiscard]] ipc::Channel& channel() noexcept { return *ch_; }

  // ---- control ---------------------------------------------------------
  cl_int configure(const std::vector<simcl::PlatformSpec>& platforms,
                   const IpcCosts& costs, bool reset_clock,
                   const simcl::ProgCacheConfig& cache = {});
  cl_int ping(std::uint32_t* pid = nullptr);
  cl_int shutdown();

  // ---- platform / device ------------------------------------------------
  cl_int get_platform_ids(cl_uint num_entries, std::vector<RemoteHandle>& out,
                          cl_uint& total);
  cl_int get_device_ids(RemoteHandle platform, cl_device_type type,
                        cl_uint num_entries, std::vector<RemoteHandle>& out,
                        cl_uint& total);

  // Generic single-handle Get*Info (op selects the object class).
  cl_int get_info(Op op, RemoteHandle h, cl_uint param, std::size_t size,
                  void* value, std::size_t* size_ret);
  // Two-handle variants (program+device, kernel+device).
  cl_int get_info2(Op op, RemoteHandle a, RemoteHandle b, cl_uint param,
                   std::size_t size, void* value, std::size_t* size_ret);

  // ---- object creation / lifetime ----------------------------------------
  cl_int create_context(std::span<const std::int64_t> props,
                        std::span<const RemoteHandle> devices, RemoteHandle& out);
  cl_int retain_release(Op op, RemoteHandle h);
  cl_int create_queue(RemoteHandle ctx, RemoteHandle dev,
                      cl_command_queue_properties props, RemoteHandle& out);
  cl_int flush(RemoteHandle q);
  cl_int finish(RemoteHandle q);
  cl_int create_buffer(RemoteHandle ctx, cl_mem_flags flags, std::size_t size,
                       std::span<const std::uint8_t> data, RemoteHandle& out);
  cl_int create_image2d(RemoteHandle ctx, cl_mem_flags flags,
                        const cl_image_format& fmt, std::size_t w, std::size_t h,
                        std::size_t pitch, std::span<const std::uint8_t> data,
                        RemoteHandle& out);
  cl_int create_sampler(RemoteHandle ctx, cl_bool norm, cl_addressing_mode am,
                        cl_filter_mode fm, RemoteHandle& out);
  cl_int create_program_with_source(RemoteHandle ctx, std::string_view source,
                                    RemoteHandle& out);
  cl_int create_program_with_binary(RemoteHandle ctx,
                                    std::span<const RemoteHandle> devices,
                                    std::span<const std::uint8_t> binary,
                                    cl_int& binary_status, RemoteHandle& out);
  cl_int build_program(RemoteHandle prog, std::span<const RemoteHandle> devices,
                       std::string_view options);
  cl_int create_kernel(RemoteHandle prog, std::string_view name, RemoteHandle& out);
  cl_int create_kernels_in_program(RemoteHandle prog, cl_uint num,
                                   std::vector<RemoteHandle>& out, cl_uint& total);

  // ---- kernel args ------------------------------------------------------
  cl_int set_kernel_arg_bytes(RemoteHandle k, cl_uint idx,
                              std::span<const std::uint8_t> data);
  cl_int set_kernel_arg_mem(RemoteHandle k, cl_uint idx, RemoteHandle mem);
  cl_int set_kernel_arg_sampler(RemoteHandle k, cl_uint idx, RemoteHandle sampler);
  cl_int set_kernel_arg_local(RemoteHandle k, cl_uint idx, std::size_t size);

  // ---- events -----------------------------------------------------------
  cl_int wait_for_events(std::span<const RemoteHandle> events);

  // ---- enqueue ------------------------------------------------------------
  cl_int enqueue_read(RemoteHandle q, RemoteHandle mem, std::size_t off,
                      std::size_t cb, void* dst, bool want_event, RemoteHandle& ev);
  cl_int enqueue_write(RemoteHandle q, RemoteHandle mem, std::size_t off,
                       std::span<const std::uint8_t> data, bool want_event,
                       RemoteHandle& ev);
  cl_int enqueue_copy(RemoteHandle q, RemoteHandle src, RemoteHandle dst,
                      std::size_t soff, std::size_t doff, std::size_t cb,
                      bool want_event, RemoteHandle& ev);
  cl_int enqueue_ndrange(RemoteHandle q, RemoteHandle k, cl_uint dim,
                         const std::size_t* goff, const std::size_t* gsz,
                         const std::size_t* lsz, bool want_event, RemoteHandle& ev);
  cl_int enqueue_task(RemoteHandle q, RemoteHandle k, bool want_event,
                      RemoteHandle& ev);
  cl_int enqueue_marker(RemoteHandle q, RemoteHandle& ev);
  cl_int enqueue_barrier(RemoteHandle q);
  cl_int enqueue_wait_for_events(RemoteHandle q, std::span<const RemoteHandle> events);

  // ---- sim extensions ---------------------------------------------------
  cl_int sim_get_host_time_ns(cl_ulong& t);
  cl_int sim_advance_host_ns(cl_ulong dt);

  // ---- live-checkpoint dirty tracking -----------------------------------
  // Fetches the chunk dirty bitmap of `mem` (bit i = chunk i dirty at
  // `chunk_bytes` granularity); when `clear`, resets the proxy-side map in
  // the same operation (destructive read — classified Effectful).
  cl_int mem_dirty_fetch(RemoteHandle mem, std::size_t chunk_bytes, bool clear,
                         std::uint64_t& nchunks, std::vector<std::uint8_t>& bits);
  // FNV-1a content hash per chunk, matching snapstore::hash64 — the
  // verification instrument behind live_verify.
  cl_int mem_chunk_hashes(RemoteHandle mem, std::size_t chunk_bytes,
                          std::vector<std::uint64_t>& hashes);

  // ---- parallel-section brackets ----------------------------------------
  // The restore executor wraps a concurrently-recreated wave in these: the
  // server list-schedules the bracketed calls' simulated costs onto
  // `workers` virtual workers and, at group_end, rewinds the host clock from
  // the serial sum to the makespan.  group_end flushes any pending batch
  // (it is a synchronous call) so batched calls stay inside their group.
  cl_int group_begin(std::uint32_t workers);
  cl_int group_end(std::uint64_t* serial_ns = nullptr,
                   std::uint64_t* makespan_ns = nullptr);

 private:
  // Pulls a recycled buffer so marshalling never re-allocates on the hot
  // path.  Caller must hold mu_.
  ipc::Writer acquire_writer();
  // Round-trip: flushes any pending batch, then returns a Reader over the
  // response payload, or nullopt when the proxy is gone (channel broken).
  // `bulk` is scatter-sent after the marshalled header (wire-identical to
  // appending it), so large data skips the marshalling copy.
  std::optional<ipc::Reader> call(Op op, ipc::Writer& w,
                                  std::span<const std::uint8_t> bulk = {});
  // Queue `op` into the batch when batching is on (returns CL_SUCCESS), else
  // perform a synchronous round-trip and return its error code.
  cl_int post(Op op, ipc::Writer& w, std::span<const std::uint8_t> bulk = {});
  cl_int flush_batch_locked();
  // Returns the sticky deferred error (cleared) if set, else `actual`.
  cl_int surface(cl_int actual) noexcept;
  // Runs the recovery handler for a broken round-trip on `op` (at most one
  // level deep).  Caller must hold mu_.
  Recovery attempt_recovery(Op op);

  std::unique_ptr<ipc::Channel> ch_;
  // Recursive: the recovery handler runs under the lock and calls back into
  // this client (configure/ping/replay) on the same thread.
  std::recursive_mutex mu_;
  ipc::Message resp_;  // guarded by mu_; Readers view into this
  std::vector<std::uint8_t> wpool_;  // recycled Writer buffer
  bool dead_ = false;
  RecoveryHandler recovery_;
  bool in_recovery_ = false;  // re-entrancy guard around the handler
  std::uint32_t deadline_ms_ = 0;
  // One-shot old->new handle map for the next post-recovery re-send.
  std::unordered_map<RemoteHandle, RemoteHandle> retry_remap_;

  bool batching_ = false;
  ipc::Writer batch_;
  std::uint32_t batch_count_ = 0;
  cl_int deferred_err_ = CL_SUCCESS;
  Stats stats_;
};

}  // namespace proxy
