// config_io.h — (de)serialization of node configuration for the Configure op:
// the platform/device specs the proxy should simulate plus the IPC cost model.
#pragma once

#include <vector>

#include "ipc/serial.h"
#include "proxy/opcodes.h"
#include "simcl/progcache.h"
#include "simcl/specs.h"

namespace proxy {

void write_device_spec(ipc::Writer& w, const simcl::DeviceSpec& d);
simcl::DeviceSpec read_device_spec(ipc::Reader& r);

void write_platform_spec(ipc::Writer& w, const simcl::PlatformSpec& p);
simcl::PlatformSpec read_platform_spec(ipc::Reader& r);

void write_config(ipc::Writer& w, const std::vector<simcl::PlatformSpec>& platforms,
                  const IpcCosts& costs, bool reset_clock,
                  const simcl::ProgCacheConfig& cache = {});
void read_config(ipc::Reader& r, std::vector<simcl::PlatformSpec>& platforms,
                 IpcCosts& costs, bool& reset_clock,
                 simcl::ProgCacheConfig& cache);

}  // namespace proxy
