// channel.h — framed, bidirectional message transports for the API proxy.
//
// Three implementations:
//   * SocketChannel — AF_UNIX socketpair / TCP fd; the production transport
//     between application process and its forked API proxy.
//   * LocalChannel  — in-process queue pair; lets unit tests exercise the full
//     marshalling path without fork/exec.
//   * TcpChannel helpers — remote API proxy (the paper's §V future-work note).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace ipc {

struct Message {
  std::uint32_t op = 0;
  std::vector<std::uint8_t> payload;
};

class Channel {
 public:
  virtual ~Channel() = default;
  // Both return false on a broken peer (EOF / EPIPE).
  virtual bool send(const Message& m) = 0;
  virtual bool recv(Message& m) = 0;
};

// ---- SocketChannel -----------------------------------------------------------

class SocketChannel final : public Channel {
 public:
  // Takes ownership of the fd.
  explicit SocketChannel(int fd) noexcept : fd_(fd) {}
  ~SocketChannel() override;

  bool send(const Message& m) override;
  bool recv(Message& m) override;

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

// Creates a connected socketpair; returns {app_end, proxy_end} or {-1,-1}.
std::pair<int, int> make_socketpair() noexcept;

// TCP endpoints for the remote-proxy extension.
int tcp_listen(std::uint16_t port) noexcept;            // listening fd or -1
int tcp_accept(int listen_fd) noexcept;                 // connected fd or -1
int tcp_connect(const char* host, std::uint16_t port) noexcept;

// ---- LocalChannel ---------------------------------------------------------------

// One direction of an in-process pipe.
class MessageQueue {
 public:
  void push(Message m);
  bool pop(Message& m);  // blocks; false after close with empty queue
  void close();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> q_;
  bool closed_ = false;
};

class LocalChannel final : public Channel {
 public:
  LocalChannel(std::shared_ptr<MessageQueue> tx, std::shared_ptr<MessageQueue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}
  ~LocalChannel() override { tx_->close(); }

  bool send(const Message& m) override {
    tx_->push(m);
    return true;
  }
  bool recv(Message& m) override { return rx_->pop(m); }

 private:
  std::shared_ptr<MessageQueue> tx_;
  std::shared_ptr<MessageQueue> rx_;
};

// Creates a connected pair of in-process channels.
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> make_local_pair();

}  // namespace ipc
