// channel.h — framed, bidirectional message transports for the API proxy.
//
// Three implementations:
//   * SocketChannel — AF_UNIX socketpair / TCP fd; the production transport
//     between application process and its forked API proxy.  Sends frames with
//     one scatter-gather syscall (header + payload) and reads through a
//     persistent buffer so small RPCs cost one syscall per side.
//   * LocalChannel  — in-process queue pair; lets unit tests exercise the full
//     marshalling path without fork/exec.
//   * TcpChannel helpers — remote API proxy (the paper's §V future-work note).
//
// A fourth, ShmChannel (shm.h), decorates a SocketChannel with a POSIX
// shared-memory bulk-data plane for payloads above a threshold.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "chaoskit/chaoskit.h"

namespace ipc {

struct Message {
  std::uint32_t op = 0;
  std::vector<std::uint8_t> payload;
  // Zero-copy receive: a channel may return the payload as a view of borrowed
  // memory (a shm ring block) instead of filling `payload`.  The view stays
  // valid until the channel's next recv().  Senders never set this.
  std::span<const std::uint8_t> view{};
  bool borrowed = false;

  // The logical payload, wherever it lives.  Post-recv readers go through
  // this instead of touching `payload` directly.
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return borrowed ? view : std::span<const std::uint8_t>(payload);
  }
};

// Typed channel failure classes.  A failed send/recv records *why* the
// channel died so the supervision layer can pick a recovery strategy
// (respawn vs. reconnect vs. surface) instead of guessing from a raw false.
enum class ChannelError : std::uint8_t {
  None = 0,
  Timeout,   // peer went silent past the per-call deadline
  PeerGone,  // EOF / EPIPE / refused frame — the peer process is dead
  ShortIo,   // torn frame: part of a message escaped before the failure
};

[[nodiscard]] const char* channel_error_name(ChannelError e) noexcept;

// Transport-level counters, exposed for tests and the ipc_micro ablation.
struct ChannelStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recvd = 0;
  std::uint64_t bytes_sent = 0;   // logical (header + payload) bytes
  std::uint64_t bytes_recvd = 0;
  std::uint64_t sys_sends = 0;    // send/sendmsg syscalls issued
  std::uint64_t sys_reads = 0;    // read syscalls issued
  std::uint64_t batch_flushes = 0;  // flush_batch() rounds that hit the wire
  // Filled in by ShmChannel:
  std::uint64_t shm_msgs_sent = 0;
  std::uint64_t shm_msgs_recvd = 0;
  std::uint64_t shm_bytes_sent = 0;
  std::uint64_t shm_bytes_recvd = 0;
  std::uint64_t shm_fallbacks = 0;  // payload over threshold but ring full
};

class Channel {
 public:
  virtual ~Channel() = default;
  // Both return false on a broken peer (EOF / EPIPE) or a failed channel.
  virtual bool send(const Message& m) = 0;
  virtual bool recv(Message& m) = 0;
  // Scatter send: the logical payload is m.payload followed by `bulk`,
  // wire-identical to sending one concatenated payload.  Lets bulk data
  // (enqueue_write contents, buffer images) skip the marshalling copy; the
  // default implementation just concatenates.
  virtual bool send2(const Message& m, std::span<const std::uint8_t> bulk);
  // Releases any borrowed payload handed out by the last recv() early (it is
  // otherwise released at the next recv).  Call once the view is dead; frees
  // ring space for the peer's next bulk send.
  virtual void release_rx() {}
  // Zero-copy outbound path: reserve an n-byte block directly in the
  // transport's data plane and write the frame payload into it in place, then
  // send it with send_reserved.  nullptr when unsupported (socket/local
  // channels) or no space — fall back to a normal send.
  virtual std::uint8_t* reserve_tx(std::size_t /*n*/) { return nullptr; }
  virtual bool send_reserved(std::uint32_t /*op*/, std::size_t /*n*/) {
    return false;
  }
  // Reply coalescing: between begin_batch() and flush_batch() sends buffer
  // their framed bytes in the channel instead of hitting the transport;
  // flush_batch() then writes the whole accumulation with one syscall.
  // Frame order (and so the peer's view of the stream) is unchanged.  The
  // default is pass-through: begin is a no-op and flush reports success,
  // because every send already went out.
  virtual void begin_batch() {}
  virtual bool flush_batch() { return true; }
  [[nodiscard]] virtual ChannelStats stats() const { return stats_; }

  // Why the last send/recv failed (None while the channel is healthy).
  // Virtual so decorators (ShmChannel) can forward to the wrapped transport.
  [[nodiscard]] virtual ChannelError last_error() const noexcept {
    return err_;
  }
  // Monotonic count of frames sent on this channel.  The supervisor uses it
  // as the call sequence number when reporting where an epoch broke.
  [[nodiscard]] virtual std::uint64_t seq() const noexcept { return seq_; }
  // Per-call receive deadline; 0 (the default) keeps the blocking fast path
  // with zero extra bookkeeping — the poll() only exists when armed.
  virtual void set_recv_deadline_ms(std::uint32_t ms) noexcept {
    deadline_ms_ = ms;
  }
  [[nodiscard]] virtual std::uint32_t recv_deadline_ms() const noexcept {
    return deadline_ms_;
  }

 protected:
  ChannelStats stats_;
  ChannelError err_ = ChannelError::None;
  std::uint64_t seq_ = 0;
  std::uint32_t deadline_ms_ = 0;
};

// ---- SocketChannel -----------------------------------------------------------

class SocketChannel final : public Channel {
 public:
  // A declared payload length above this fails the channel instead of
  // attempting an unbounded allocation (corrupt or hostile header).
  static constexpr std::uint32_t kMaxPayload = 1u << 30;  // 1 GiB

  // Takes ownership of the fd.
  explicit SocketChannel(int fd) noexcept : fd_(fd) {}
  ~SocketChannel() override;

  bool send(const Message& m) override;
  bool send2(const Message& m, std::span<const std::uint8_t> bulk) override;
  bool recv(Message& m) override;
  void begin_batch() override;
  bool flush_batch() override;

  // Ablation toggle: false reverts to the seed framing (two write syscalls
  // per frame, unbuffered header reads).
  void set_use_writev(bool on) noexcept { use_writev_ = on; }
  [[nodiscard]] bool use_writev() const noexcept { return use_writev_; }

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool failed() const noexcept { return fd_ < 0; }

 private:
  bool fill_at_least(std::size_t n);  // buffered read path
  bool wait_readable() noexcept;      // deadline poll; true = data or no deadline
  void fail(ChannelError e) noexcept;

  int fd_ = -1;
  bool use_writev_ = true;
  // Persistent receive buffer: small frames (header + payload) arrive in one
  // read; large payloads bypass it and land directly in the message.
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;
  std::size_t rend_ = 0;
  // Coalescing buffer: framed bytes accumulated between begin_batch() and
  // flush_batch() (the proxyd scheduler's one-writev-per-round reply path).
  bool batching_ = false;
  std::vector<std::uint8_t> tbuf_;
};

// Creates a connected socketpair (SOCK_CLOEXEC on both ends);
// returns {app_end, proxy_end} or {-1,-1}.
std::pair<int, int> make_socketpair() noexcept;

// TCP endpoints for the remote-proxy extension.  All fds are opened
// close-on-exec so they never leak into exec'd children.
int tcp_listen(std::uint16_t port) noexcept;            // listening fd or -1
int tcp_accept(int listen_fd) noexcept;                 // connected fd or -1
int tcp_connect(const char* host, std::uint16_t port) noexcept;

// AF_UNIX stream endpoints for the multi-tenant checl_proxyd daemon.
// unix_listen unlinks a stale socket file first (a dead daemon's leftovers);
// the fds are CLOEXEC and the listening fd is non-blocking so the event loop
// can drain the accept backlog without stalling.
int unix_listen(const char* path) noexcept;             // listening fd or -1
int unix_accept(int listen_fd) noexcept;                // connected fd or -1
int unix_connect(const char* path) noexcept;

// ---- LocalChannel ---------------------------------------------------------------

// One direction of an in-process pipe.
class MessageQueue {
 public:
  enum class PopResult : std::uint8_t { Ok, Closed, TimedOut };

  void push(Message m);
  bool pop(Message& m);  // blocks; false after close with empty queue
  // Bounded pop for per-call deadlines; never closes the queue on timeout.
  PopResult pop_wait(Message& m, std::uint32_t timeout_ms);
  void close();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> q_;
  bool closed_ = false;
};

class LocalChannel final : public Channel {
 public:
  LocalChannel(std::shared_ptr<MessageQueue> tx, std::shared_ptr<MessageQueue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}
  ~LocalChannel() override { tx_->close(); }

  bool send(const Message& m) override {
    auto& chaos = chaoskit::Engine::instance();
    if (failed_) return false;
    ++seq_;
    if (chaos.should_fire(chaoskit::Site::IpcSendEpipe)) {
      fail(ChannelError::PeerGone);
      return false;
    }
    if (chaos.should_fire(chaoskit::Site::IpcShortWrite)) {
      // a torn frame leaves the pipe unframed: dead both ways
      fail(ChannelError::ShortIo);
      return false;
    }
    stats_.msgs_sent++;
    stats_.bytes_sent += 8 + m.payload.size();
    tx_->push(m);
    return true;
  }
  bool recv(Message& m) override {
    if (failed_) return false;
    if (chaoskit::Engine::instance().should_fire(chaoskit::Site::IpcRecvTimeout)) {
      fail(ChannelError::Timeout);
      return false;
    }
    if (deadline_ms_ != 0) {
      switch (rx_->pop_wait(m, deadline_ms_)) {
        case MessageQueue::PopResult::Ok:
          break;
        case MessageQueue::PopResult::TimedOut:
          fail(ChannelError::Timeout);
          return false;
        case MessageQueue::PopResult::Closed:
          fail(ChannelError::PeerGone);
          return false;
      }
    } else if (!rx_->pop(m)) {
      fail(ChannelError::PeerGone);
      return false;
    }
    stats_.msgs_recvd++;
    stats_.bytes_recvd += 8 + m.payload.size();
    return true;
  }

 private:
  void fail(ChannelError e) noexcept {
    failed_ = true;
    if (err_ == ChannelError::None) err_ = e;
    tx_->close();
    rx_->close();
  }

  std::shared_ptr<MessageQueue> tx_;
  std::shared_ptr<MessageQueue> rx_;
  bool failed_ = false;
};

// Creates a connected pair of in-process channels.
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> make_local_pair();

}  // namespace ipc
