// serial.h — little-endian message (de)serialization for the API proxy RPC.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ipc {

class Writer {
 public:
  Writer() = default;
  // Recycle a previously `take()`n buffer: keeps its capacity, drops content.
  explicit Writer(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  // Pointer-as-token: a handle value valid in the *proxy's* address space.
  void handle(const void* p) { u64(reinterpret_cast<std::uintptr_t>(p)); }

  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void bytes(std::span<const std::uint8_t> b) {
    u64(b.size());
    raw(b.data(), b.size());
  }
  void raw(const void* p, std::size_t n) {
    const auto* c = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }

  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int32_t i32() { return take<std::int32_t>(); }
  std::int64_t i64() { return take<std::int64_t>(); }
  double f64() { return take<double>(); }
  bool boolean() { return u8() != 0; }

  template <typename T = void>
  T* handle() {
    return reinterpret_cast<T*>(static_cast<std::uintptr_t>(u64()));
  }

  std::string str() {
    const std::size_t n = checked_len(u64());
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::size_t n = checked_len(u64());
    std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }
  // Zero-copy view of a length-prefixed byte run (valid while message lives).
  std::span<const std::uint8_t> bytes_view() {
    const std::size_t n = checked_len(u64());
    auto v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }
  // Zero-copy view of the next n bytes with no length prefix (batch framing).
  std::span<const std::uint8_t> view(std::size_t n) {
    const std::size_t m = checked_len(n);
    auto v = data_.subspan(pos_, m);
    pos_ += m;
    return v;
  }
  void raw(void* p, std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  template <typename T>
  T take() {
    T v{};
    raw(&v, sizeof v);
    return v;
  }
  std::size_t checked_len(std::uint64_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::size_t>(n);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ipc
