#include "ipc/shm.h"

#include <fcntl.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

namespace ipc {

namespace {

constexpr std::uint32_t kMagic = 0x43534D53;  // "CSMS" — CheCL shm segment
constexpr std::uint32_t kVersion = 1;

// Publish granularity: small enough that the consumer overlaps most of the
// producer's copy, large enough that tail stores don't ping-pong cache lines.
constexpr std::size_t kStreamChunk = 128 * 1024;

std::string unique_name() {
  static std::atomic<std::uint32_t> counter{0};
  char buf[64];
  std::snprintf(buf, sizeof buf, "/checl-%d-%u", static_cast<int>(::getpid()),
                counter.fetch_add(1));
  return buf;
}

}  // namespace

std::shared_ptr<ShmSegment> ShmSegment::create(std::size_t ring_bytes) {
  if (ring_bytes == 0) return nullptr;
  auto seg = std::shared_ptr<ShmSegment>(new ShmSegment());
  seg->name_ = unique_name();
  seg->creator_ = true;
  const int fd =
      ::shm_open(seg->name_.c_str(), O_CREAT | O_EXCL | O_RDWR | O_CLOEXEC, 0600);
  if (fd < 0) return nullptr;
  seg->ring_bytes_ = ring_bytes;
  seg->map_bytes_ = sizeof(SegHdr) + 2 * ring_bytes;
  if (::ftruncate(fd, static_cast<off_t>(seg->map_bytes_)) != 0) {
    ::close(fd);
    ::shm_unlink(seg->name_.c_str());
    return nullptr;
  }
  seg->base_ = ::mmap(nullptr, seg->map_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, 0);
  ::close(fd);
  if (seg->base_ == MAP_FAILED) {
    seg->base_ = nullptr;
    ::shm_unlink(seg->name_.c_str());
    return nullptr;
  }
  // huge pages cut TLB pressure on the multi-MiB streaming copies; advisory
  ::madvise(seg->base_, seg->map_bytes_, MADV_HUGEPAGE);
  SegHdr* h = seg->hdr();
  h->ring_bytes = ring_bytes;
  h->version = kVersion;
  for (RingHdr& r : h->rings) {
    r.head.store(0, std::memory_order_relaxed);
    r.tail.store(0, std::memory_order_relaxed);
  }
  // magic last: an attacher seeing it knows the header is complete
  std::atomic_thread_fence(std::memory_order_release);
  h->magic = kMagic;
  return seg;
}

std::shared_ptr<ShmSegment> ShmSegment::attach(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR | O_CLOEXEC, 0600);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < sizeof(SegHdr)) {
    ::close(fd);
    return nullptr;
  }
  auto seg = std::shared_ptr<ShmSegment>(new ShmSegment());
  seg->name_ = name;
  seg->map_bytes_ = static_cast<std::size_t>(st.st_size);
  seg->base_ = ::mmap(nullptr, seg->map_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, 0);
  ::close(fd);
  if (seg->base_ == MAP_FAILED) {
    seg->base_ = nullptr;
    return nullptr;
  }
  ::madvise(seg->base_, seg->map_bytes_, MADV_HUGEPAGE);
  const SegHdr* h = seg->hdr();
  if (h->magic != kMagic || h->version != kVersion ||
      sizeof(SegHdr) + 2 * h->ring_bytes > seg->map_bytes_) {
    ::munmap(seg->base_, seg->map_bytes_);
    seg->base_ = nullptr;
    return nullptr;
  }
  seg->ring_bytes_ = static_cast<std::size_t>(h->ring_bytes);
  // Both sides hold the mapping now; the name can go away (also guards
  // against leaking /dev/shm entries if either process dies).
  ::shm_unlink(name.c_str());
  return seg;
}

ShmSegment::~ShmSegment() {
  if (base_ != nullptr) ::munmap(base_, map_bytes_);
  if (creator_) ::shm_unlink(name_.c_str());  // ENOENT after attach: fine
}

bool ShmSegment::reserve(int ring, std::size_t n, std::uint64_t& pos) {
  if (n == 0 || n > ring_bytes_) return false;
  RingHdr& r = hdr()->rings[ring];
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
  const std::uint64_t off = tail % ring_bytes_;
  // blocks are contiguous: skip the wrap remainder when the tail is too close
  // to the end of the ring
  const std::uint64_t pad = ring_bytes_ - off < n ? ring_bytes_ - off : 0;
  if (tail + pad + n - head > ring_bytes_) return false;  // ring full
  pos = tail + pad;
  // account the pad now; no data between old tail and pos is ever consumed
  // (descriptors reference pos directly)
  r.tail.store(pos, std::memory_order_relaxed);
  return true;
}

void ShmSegment::publish(int ring, std::uint64_t pos, const void* data,
                         std::size_t n) {
  RingHdr& r = hdr()->rings[ring];
  const auto* src = static_cast<const std::uint8_t*>(data);
  std::uint8_t* dst = ring_base(ring) + (pos % ring_bytes_);
  std::size_t done = 0;
  while (done < n) {
    const std::size_t m = n - done < kStreamChunk ? n - done : kStreamChunk;
    std::memcpy(dst + done, src + done, m);
    done += m;
    // publish incrementally so the consumer's copy overlaps ours
    r.tail.store(pos + done, std::memory_order_release);
  }
}

bool ShmSegment::produce(int ring, const void* data, std::size_t n,
                         std::uint64_t& pos) {
  if (!reserve(ring, n, pos)) return false;
  publish(ring, pos, data, n);
  return true;
}

void ShmSegment::commit(int ring, std::uint64_t pos, std::size_t n) {
  hdr()->rings[ring].tail.store(pos + n, std::memory_order_release);
}

const std::uint8_t* ShmSegment::consume_view(int ring, std::uint64_t pos,
                                             std::size_t n) {
  RingHdr& r = hdr()->rings[ring];
  const std::uint64_t head = r.head.load(std::memory_order_relaxed);
  // the descriptor must name a block that can exist: at or after everything
  // already released, within one ring of it, and contiguous
  if (n == 0 || n > ring_bytes_ || pos < head || pos + n - head > ring_bytes_ ||
      pos % ring_bytes_ + n > ring_bytes_)
    return nullptr;
  // wait for the producer to finish publishing (descriptors are sent right
  // after reserve, so the data is at most a memcpy away; yield early — on a
  // single core a spinning consumer only delays the producer)
  int idle_spins = 0;
  while (r.tail.load(std::memory_order_acquire) < pos + n) {
    if (++idle_spins > 256) {
      ::sched_yield();
      if (idle_spins > 50'000'000) return nullptr;  // peer died mid-publish
    }
  }
  return ring_base(ring) + (pos % ring_bytes_);
}

void ShmSegment::release(int ring, std::uint64_t pos, std::size_t n) {
  // release in FIFO order (descriptors arrive in socket order); this also
  // frees any wrap pad before pos
  hdr()->rings[ring].head.store(pos + n, std::memory_order_release);
}

bool ShmSegment::consume(int ring, std::uint64_t pos, void* dst, std::size_t n) {
  const std::uint8_t* src = consume_view(ring, pos, n);
  if (src == nullptr) return false;
  std::memcpy(dst, src, n);
  release(ring, pos, n);
  return true;
}

// ---- ShmChannel -----------------------------------------------------------

bool ShmChannel::send(const Message& m) { return send2(m, {}); }

bool ShmChannel::send2(const Message& m, std::span<const std::uint8_t> bulk) {
  const std::size_t total = m.payload.size() + bulk.size();
  if (total >= threshold_) {
    std::uint64_t pos = 0;
    if (seg_->reserve(tx_ring_, total, pos)) {
      // descriptor first, payload after: the receiver starts draining the
      // ring while we are still copying in
      Message desc;
      desc.op = m.op | kShmOpFlag;
      desc.payload.resize(16);
      const std::uint64_t len = total;
      std::memcpy(desc.payload.data(), &pos, 8);
      std::memcpy(desc.payload.data() + 8, &len, 8);
      if (!sock_->send(desc)) return false;
      seg_->publish(tx_ring_, pos, m.payload.data(), m.payload.size());
      if (!bulk.empty())
        seg_->publish(tx_ring_, pos + m.payload.size(), bulk.data(),
                      bulk.size());
      stats_.shm_msgs_sent++;
      stats_.shm_bytes_sent += total;
      return true;
    }
    stats_.shm_fallbacks++;  // ring full or payload larger than the ring
  }
  return sock_->send2(m, bulk);
}

void ShmChannel::release_rx() {
  if (held_) {
    seg_->release(1 - tx_ring_, held_pos_, held_len_);
    held_ = false;
  }
}

std::uint8_t* ShmChannel::reserve_tx(std::size_t n) {
  if (n < threshold_ || pend_tx_) return nullptr;
  // a failed reserve is not counted here: the caller falls back to send2,
  // which counts the fallback if the ring is still full
  if (!seg_->reserve(tx_ring_, n, pend_tx_pos_)) return nullptr;
  pend_tx_ = true;
  return seg_->block_ptr(tx_ring_, pend_tx_pos_);
}

bool ShmChannel::send_reserved(std::uint32_t op, std::size_t n) {
  if (!pend_tx_) return false;
  pend_tx_ = false;
  // the caller already wrote the block in place; make it visible, then frame
  seg_->commit(tx_ring_, pend_tx_pos_, n);
  Message desc;
  desc.op = op | kShmOpFlag;
  desc.payload.resize(16);
  const std::uint64_t len = n;
  std::memcpy(desc.payload.data(), &pend_tx_pos_, 8);
  std::memcpy(desc.payload.data() + 8, &len, 8);
  if (!sock_->send(desc)) return false;
  stats_.shm_msgs_sent++;
  stats_.shm_bytes_sent += n;
  return true;
}

bool ShmChannel::recv(Message& m) {
  release_rx();  // the view handed out by the previous recv dies now
  if (!sock_->recv(m)) return false;
  if ((m.op & kShmOpFlag) == 0) return true;
  if (m.payload.size() != 16) {  // malformed descriptor
    err_ = ChannelError::ShortIo;
    return false;
  }
  std::uint64_t pos = 0;
  std::uint64_t len = 0;
  std::memcpy(&pos, m.payload.data(), 8);
  std::memcpy(&len, m.payload.data() + 8, 8);
  if (len > SocketChannel::kMaxPayload) {
    err_ = ChannelError::ShortIo;
    return false;
  }
  m.op &= ~kShmOpFlag;
  const std::uint8_t* p =
      seg_->consume_view(1 - tx_ring_, pos, static_cast<std::size_t>(len));
  if (p == nullptr) {  // producer stalled past the deadline: dead peer
    err_ = ChannelError::PeerGone;
    return false;
  }
  // zero-copy: the payload IS the ring block, released on the next recv
  m.view = {p, static_cast<std::size_t>(len)};
  m.borrowed = true;
  held_pos_ = pos;
  held_len_ = static_cast<std::size_t>(len);
  held_ = true;
  stats_.shm_msgs_recvd++;
  stats_.shm_bytes_recvd += len;
  return true;
}

ChannelStats ShmChannel::stats() const {
  ChannelStats s = sock_->stats();
  s.shm_msgs_sent = stats_.shm_msgs_sent;
  s.shm_msgs_recvd = stats_.shm_msgs_recvd;
  s.shm_bytes_sent = stats_.shm_bytes_sent;
  s.shm_bytes_recvd = stats_.shm_bytes_recvd;
  s.shm_fallbacks = stats_.shm_fallbacks;
  return s;
}

}  // namespace ipc
