// shm.h — POSIX shared-memory bulk-data plane for the API proxy.
//
// The socket transport pays two full payload copies through kernel socket
// buffers (send + recv) plus one syscall per ~64 KiB of data.  For bulk
// payloads (enqueue_read / enqueue_write / create_buffer data and
// checkpoint-time buffer fetches) that dominates forwarding cost, so payloads
// at or above a threshold travel through a shared-memory ring instead: the
// producer reserves ring space, sends a 16-byte descriptor frame on the
// socket, then copies the payload in chunks while publishing the ring tail as
// it goes; the consumer starts copying out as soon as the descriptor arrives,
// chasing the tail.  The two memcpys overlap across the processes (the same
// pipelining kernel socket buffers give), with one tiny syscall per message —
// the CRAC-style control/data plane split.
//
// Layout: one segment holds a header plus two single-producer single-consumer
// rings (creator→peer and peer→creator).  The socket's FIFO ordering orders
// the descriptors, so the ring itself needs only head/tail release counters.
// A payload that doesn't fit (ring full, or larger than the ring) falls back
// to inline socket framing — exhaustion degrades throughput, never
// correctness.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "ipc/channel.h"

namespace ipc {

// Defaults, overridable via spawn options / CHECL_SHM_* environment knobs.
constexpr std::size_t kShmDefaultThreshold = 4 * 1024;          // 4 KiB
constexpr std::size_t kShmDefaultRingBytes = 64 * 1024 * 1024;  // per direction

// Descriptor frames carry this bit in Message::op on the socket; it never
// reaches the RPC layer (ShmChannel strips it on recv).
constexpr std::uint32_t kShmOpFlag = 0x8000'0000u;

class ShmSegment {
 public:
  // Creates a fresh /dev/shm segment with a unique name; the creator is
  // responsible for unlinking (done in the destructor, and attach() also
  // unlinks eagerly once both sides have it mapped).
  static std::shared_ptr<ShmSegment> create(std::size_t ring_bytes);
  // Maps an existing segment by name (the proxy daemon side).
  static std::shared_ptr<ShmSegment> attach(const std::string& name);

  ~ShmSegment();
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t ring_bytes() const noexcept { return ring_bytes_; }

  // Producer side, step 1: reserve a contiguous `n`-byte block in ring `ring`
  // (0 or 1) and return its absolute position for the descriptor.  False when
  // the ring cannot hold the block right now.
  bool reserve(int ring, std::size_t n, std::uint64_t& pos);
  // Producer side, step 2: copy the payload into the reserved block, chunked,
  // publishing the ring tail after each chunk so the consumer can chase it.
  void publish(int ring, std::uint64_t pos, const void* data, std::size_t n);
  // One-shot reserve + publish (tests, non-streaming callers).
  bool produce(int ring, const void* data, std::size_t n, std::uint64_t& pos);
  // In-place producer path: after reserve(), callers may write the block
  // directly through block_ptr() and commit() it in one step (zero staging
  // copy — the proxy's read responses are materialized straight in the ring).
  [[nodiscard]] std::uint8_t* block_ptr(int ring, std::uint64_t pos) const noexcept {
    return ring_base(ring) + (pos % ring_bytes_);
  }
  void commit(int ring, std::uint64_t pos, std::size_t n);
  // Consumer side, zero-copy: wait until the block at `pos` is fully
  // published and return a pointer to it in the mapping.  The block stays
  // live until release(); nullptr on a bogus descriptor or if the producer
  // stalls past a generous deadline (dead peer).
  const std::uint8_t* consume_view(int ring, std::uint64_t pos, std::size_t n);
  // Frees a consumed block (FIFO: descriptors arrive in socket order).
  void release(int ring, std::uint64_t pos, std::size_t n);
  // Copying consume: view + memcpy + release (tests, non-view callers).
  bool consume(int ring, std::uint64_t pos, void* dst, std::size_t n);

 private:
  ShmSegment() = default;

  struct RingHdr {
    alignas(64) std::atomic<std::uint64_t> head;  // consumer: bytes released
    alignas(64) std::atomic<std::uint64_t> tail;  // producer: bytes reserved
  };
  struct SegHdr {
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t ring_bytes;
    RingHdr rings[2];
  };

  [[nodiscard]] SegHdr* hdr() const noexcept {
    return static_cast<SegHdr*>(base_);
  }
  [[nodiscard]] std::uint8_t* ring_base(int ring) const noexcept {
    return static_cast<std::uint8_t*>(base_) + sizeof(SegHdr) +
           static_cast<std::size_t>(ring) * ring_bytes_;
  }

  std::string name_;
  void* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t ring_bytes_ = 0;
  bool creator_ = false;
};

// Channel decorator: control frames ride the wrapped SocketChannel; payloads
// >= threshold ride the shm rings with a descriptor frame on the socket.
class ShmChannel final : public Channel {
 public:
  // `creator` selects ring direction: the creator sends on ring 0 and
  // receives on ring 1; the attacher the reverse.
  ShmChannel(std::unique_ptr<SocketChannel> sock, std::shared_ptr<ShmSegment> seg,
             bool creator, std::size_t threshold = kShmDefaultThreshold)
      : sock_(std::move(sock)),
        seg_(std::move(seg)),
        tx_ring_(creator ? 0 : 1),
        threshold_(threshold) {}

  bool send(const Message& m) override;
  bool send2(const Message& m, std::span<const std::uint8_t> bulk) override;
  std::uint8_t* reserve_tx(std::size_t n) override;
  bool send_reserved(std::uint32_t op, std::size_t n) override;
  // recv returns bulk payloads as a borrowed view into the ring (zero-copy);
  // the block is released on the next recv() call or an explicit release_rx().
  bool recv(Message& m) override;
  void release_rx() override;
  // Coalescing applies to the control-plane socket only: bulk payloads still
  // publish into the ring immediately, and it's their descriptor frame that
  // rides the batch — the socket's FIFO keeps descriptors ordered either way.
  void begin_batch() override { sock_->begin_batch(); }
  bool flush_batch() override { return sock_->flush_batch(); }
  [[nodiscard]] ChannelStats stats() const override;

  [[nodiscard]] SocketChannel& socket() noexcept { return *sock_; }
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

  // Decorator passthrough: errors, sequence numbers and deadlines live on the
  // control-plane socket; own ring failures (stalled producer, malformed
  // descriptor) are recorded locally and win when present.
  [[nodiscard]] ChannelError last_error() const noexcept override {
    return err_ != ChannelError::None ? err_ : sock_->last_error();
  }
  [[nodiscard]] std::uint64_t seq() const noexcept override {
    return sock_->seq();
  }
  void set_recv_deadline_ms(std::uint32_t ms) noexcept override {
    sock_->set_recv_deadline_ms(ms);
  }
  [[nodiscard]] std::uint32_t recv_deadline_ms() const noexcept override {
    return sock_->recv_deadline_ms();
  }

 private:
  std::unique_ptr<SocketChannel> sock_;
  std::shared_ptr<ShmSegment> seg_;
  int tx_ring_;
  std::size_t threshold_;
  // rx block handed out by the last recv, released on the next one
  std::uint64_t held_pos_ = 0;
  std::size_t held_len_ = 0;
  bool held_ = false;
  // tx block reserved by reserve_tx, awaiting send_reserved
  std::uint64_t pend_tx_pos_ = 0;
  bool pend_tx_ = false;
};

}  // namespace ipc
