#include "ipc/channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace ipc {

namespace {

bool write_all(int fd, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a fatal SIGPIPE.
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n) noexcept {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

SocketChannel::~SocketChannel() {
  if (fd_ >= 0) ::close(fd_);
}

bool SocketChannel::send(const Message& m) {
  std::uint32_t header[2] = {m.op, static_cast<std::uint32_t>(m.payload.size())};
  if (!write_all(fd_, header, sizeof header)) return false;
  return m.payload.empty() || write_all(fd_, m.payload.data(), m.payload.size());
}

bool SocketChannel::recv(Message& m) {
  std::uint32_t header[2];
  if (!read_all(fd_, header, sizeof header)) return false;
  m.op = header[0];
  m.payload.resize(header[1]);
  return header[1] == 0 || read_all(fd_, m.payload.data(), m.payload.size());
}

std::pair<int, int> make_socketpair() noexcept {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return {-1, -1};
  return {fds[0], fds[1]};
}

int tcp_listen(std::uint16_t port) noexcept {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 1) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int tcp_accept(int listen_fd) noexcept {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

int tcp_connect(const char* host, std::uint16_t port) noexcept {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void MessageQueue::push(Message m) {
  std::lock_guard<std::mutex> lk(mu_);
  q_.push_back(std::move(m));
  cv_.notify_one();
}

bool MessageQueue::pop(Message& m) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;
  m = std::move(q_.front());
  q_.pop_front();
  return true;
}

void MessageQueue::close() {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> make_local_pair() {
  auto a2b = std::make_shared<MessageQueue>();
  auto b2a = std::make_shared<MessageQueue>();
  return {std::make_unique<LocalChannel>(a2b, b2a),
          std::make_unique<LocalChannel>(b2a, a2b)};
}

}  // namespace ipc
