#include "ipc/channel.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>

#include <cstring>

namespace ipc {

namespace {

constexpr std::size_t kRecvBufBytes = 64 * 1024;

bool write_all(int fd, const void* data, std::size_t n,
               std::uint64_t* sys_calls) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a fatal SIGPIPE.
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sys_calls != nullptr) ++*sys_calls;
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n,
              std::uint64_t* sys_calls) noexcept {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (sys_calls != nullptr) ++*sys_calls;
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

// Scatter-gather send of header + payload; loops on partial sends.
bool writev_all(int fd, iovec* iov, int iovcnt, std::uint64_t* sys_calls) noexcept {
  while (iovcnt > 0) {
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t w = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (sys_calls != nullptr) ++*sys_calls;
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    std::size_t left = static_cast<std::size_t>(w);
    while (iovcnt > 0 && left >= iov[0].iov_len) {
      left -= iov[0].iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0) {
      iov[0].iov_base = static_cast<std::uint8_t*>(iov[0].iov_base) + left;
      iov[0].iov_len -= left;
    }
  }
  return true;
}

void set_cloexec(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

const char* channel_error_name(ChannelError e) noexcept {
  switch (e) {
    case ChannelError::None:
      return "None";
    case ChannelError::Timeout:
      return "Timeout";
    case ChannelError::PeerGone:
      return "PeerGone";
    case ChannelError::ShortIo:
      return "ShortIo";
  }
  return "?";
}

// Fallback scatter send for channels without a native one: concatenate and
// send a single frame.
bool Channel::send2(const Message& m, std::span<const std::uint8_t> bulk) {
  if (bulk.empty()) return send(m);
  Message joined;
  joined.op = m.op;
  joined.payload.reserve(m.payload.size() + bulk.size());
  joined.payload.assign(m.payload.begin(), m.payload.end());
  joined.payload.insert(joined.payload.end(), bulk.begin(), bulk.end());
  return send(joined);
}

SocketChannel::~SocketChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketChannel::fail(ChannelError e) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  rpos_ = rend_ = 0;
  if (err_ == ChannelError::None) err_ = e;
}

// With a deadline armed and no buffered bytes, bound the wait for the first
// byte of the reply.  Once bytes are flowing the peer is alive and the normal
// blocking reads take over; a hung peer is caught here, not mid-frame.
bool SocketChannel::wait_readable() noexcept {
  if (deadline_ms_ == 0 || rend_ > rpos_) return true;
  pollfd pf{fd_, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pf, 1, static_cast<int>(deadline_ms_));
    if (r > 0) return true;
    if (r == 0) return false;  // timed out
    if (errno != EINTR) return false;
  }
}

bool SocketChannel::send(const Message& m) { return send2(m, {}); }

void SocketChannel::begin_batch() {
  if (fd_ >= 0) batching_ = true;
}

bool SocketChannel::flush_batch() {
  batching_ = false;
  if (tbuf_.empty()) return fd_ >= 0;
  if (fd_ < 0) {  // chaos or a peer death failed the channel mid-batch
    tbuf_.clear();
    return false;
  }
  const bool ok = write_all(fd_, tbuf_.data(), tbuf_.size(), &stats_.sys_sends);
  tbuf_.clear();
  if (!ok) {
    fail(ChannelError::PeerGone);
    return false;
  }
  ++stats_.batch_flushes;
  return true;
}

bool SocketChannel::send2(const Message& m, std::span<const std::uint8_t> bulk) {
  if (fd_ < 0) return false;
  ++seq_;
  const std::size_t total = m.payload.size() + bulk.size();
  std::uint32_t header[2] = {m.op, static_cast<std::uint32_t>(total)};
  auto& chaos = chaoskit::Engine::instance();
  if (chaos.should_fire(chaoskit::Site::IpcSendEpipe)) {
    fail(ChannelError::PeerGone);
    return false;
  }
  if (chaos.should_fire(chaoskit::Site::IpcShortWrite)) {
    // half the header escapes before the connection dies: the peer sees an
    // unframed stream and must fail its channel, never hang or misparse
    write_all(fd_, header, sizeof header / 2, &stats_.sys_sends);
    fail(ChannelError::ShortIo);
    return false;
  }
  if (batching_) {
    // Chaos already had its shot above, so a batched send fails exactly where
    // an unbatched one would; only the syscall moves to flush_batch().
    const std::size_t off = tbuf_.size();
    tbuf_.resize(off + sizeof header);
    std::memcpy(tbuf_.data() + off, header, sizeof header);
    tbuf_.insert(tbuf_.end(), m.payload.begin(), m.payload.end());
    tbuf_.insert(tbuf_.end(), bulk.begin(), bulk.end());
    stats_.msgs_sent++;
    stats_.bytes_sent += sizeof header + total;
    return true;
  }
  bool ok;
  if (use_writev_) {
    iovec iov[3];
    int cnt = 0;
    iov[cnt++] = {header, sizeof header};
    if (!m.payload.empty())
      iov[cnt++] = {const_cast<std::uint8_t*>(m.payload.data()),
                    m.payload.size()};
    if (!bulk.empty())
      iov[cnt++] = {const_cast<std::uint8_t*>(bulk.data()), bulk.size()};
    ok = writev_all(fd_, iov, cnt, &stats_.sys_sends);
  } else {
    // seed framing: one syscall for the header, one per payload piece
    ok = write_all(fd_, header, sizeof header, &stats_.sys_sends) &&
         (m.payload.empty() ||
          write_all(fd_, m.payload.data(), m.payload.size(),
                    &stats_.sys_sends)) &&
         (bulk.empty() ||
          write_all(fd_, bulk.data(), bulk.size(), &stats_.sys_sends));
  }
  if (!ok) {
    fail(ChannelError::PeerGone);
    return false;
  }
  stats_.msgs_sent++;
  stats_.bytes_sent += sizeof header + total;
  return true;
}

bool SocketChannel::fill_at_least(std::size_t n) {
  if (rbuf_.empty()) rbuf_.resize(kRecvBufBytes);
  if (rend_ - rpos_ >= n) return true;
  if (rpos_ > 0) {
    std::memmove(rbuf_.data(), rbuf_.data() + rpos_, rend_ - rpos_);
    rend_ -= rpos_;
    rpos_ = 0;
  }
  while (rend_ - rpos_ < n) {
    const ssize_t r = ::read(fd_, rbuf_.data() + rend_, rbuf_.size() - rend_);
    ++stats_.sys_reads;
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    rend_ += static_cast<std::size_t>(r);
  }
  return true;
}

bool SocketChannel::recv(Message& m) {
  if (fd_ < 0) return false;
  if (chaoskit::Engine::instance().should_fire(chaoskit::Site::IpcRecvTimeout)) {
    // the peer went silent: a real implementation would time out; the
    // channel fails the same way (closed fd, recv false)
    fail(ChannelError::Timeout);
    return false;
  }
  if (!wait_readable()) {
    fail(ChannelError::Timeout);
    return false;
  }
  std::uint32_t header[2];
  if (use_writev_) {
    // Buffered path: a small frame's header and payload usually arrive in the
    // same read syscall.
    if (!fill_at_least(sizeof header)) {
      fail(ChannelError::PeerGone);
      return false;
    }
    std::memcpy(header, rbuf_.data() + rpos_, sizeof header);
    rpos_ += sizeof header;
  } else if (!read_all(fd_, header, sizeof header, &stats_.sys_reads)) {
    fail(ChannelError::PeerGone);
    return false;
  }
  if (header[1] > kMaxPayload) {
    // Corrupt or hostile length: never attempt the allocation; the stream is
    // unframed garbage from here on, so the channel is dead.
    fail(ChannelError::ShortIo);
    return false;
  }
  m.op = header[0];
  m.borrowed = false;  // reused Messages must not keep a stale view
  m.payload.resize(header[1]);
  std::size_t need = header[1];
  std::uint8_t* dst = m.payload.data();
  const std::size_t buffered = std::min(need, rend_ - rpos_);
  if (buffered > 0) {
    std::memcpy(dst, rbuf_.data() + rpos_, buffered);
    rpos_ += buffered;
    dst += buffered;
    need -= buffered;
  }
  if (need > 0 && !read_all(fd_, dst, need, &stats_.sys_reads)) {
    fail(ChannelError::PeerGone);
    return false;
  }
  stats_.msgs_recvd++;
  stats_.bytes_recvd += sizeof header + m.payload.size();
  return true;
}

std::pair<int, int> make_socketpair() noexcept {
  int fds[2];
  // CLOEXEC: proxy/app fds must not leak into other exec'd children; spawn
  // clears the flag explicitly on the one fd the proxy daemon inherits.
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0)
    return {-1, -1};
  return {fds[0], fds[1]};
}

int tcp_listen(std::uint16_t port) noexcept {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int tcp_accept(int listen_fd) noexcept {
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

int tcp_connect(const char* host, std::uint16_t port) noexcept {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  set_cloexec(fd);  // belt and braces on platforms ignoring the type flag
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

int unix_listen(const char* path) noexcept {
  sockaddr_un addr{};
  if (path == nullptr || std::strlen(path) >= sizeof addr.sun_path) return -1;
  ::unlink(path);  // stale socket file from a previous daemon instance
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path, sizeof addr.sun_path - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int unix_accept(int listen_fd) noexcept {
  // The accepted session fd is blocking: the event loop reads it with
  // MSG_DONTWAIT and writes responses through the normal (blocking)
  // SocketChannel send path.
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
}

int unix_connect(const char* path) noexcept {
  sockaddr_un addr{};
  if (path == nullptr || std::strlen(path) >= sizeof addr.sun_path) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path, sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void MessageQueue::push(Message m) {
  std::lock_guard<std::mutex> lk(mu_);
  q_.push_back(std::move(m));
  cv_.notify_one();
}

bool MessageQueue::pop(Message& m) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;
  m = std::move(q_.front());
  q_.pop_front();
  return true;
}

MessageQueue::PopResult MessageQueue::pop_wait(Message& m,
                                               std::uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  const bool ready =
      cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                   [&] { return closed_ || !q_.empty(); });
  if (!ready) return PopResult::TimedOut;
  if (q_.empty()) return PopResult::Closed;
  m = std::move(q_.front());
  q_.pop_front();
  return PopResult::Ok;
}

void MessageQueue::close() {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> make_local_pair() {
  auto a2b = std::make_shared<MessageQueue>();
  auto b2a = std::make_shared<MessageQueue>();
  return {std::make_unique<LocalChannel>(a2b, b2a),
          std::make_unique<LocalChannel>(b2a, a2b)};
}

}  // namespace ipc
