// parallel.h — the snapstore worker pool: runs fn(0..njobs) across up to
// `workers` threads (inline when it isn't worth spawning).  Workers touch
// disjoint job slots only.  Shared by the local store's hash/compress
// pipeline and the sharded store's fan-out reads/writes, so both sides of
// the Options::workers knob mean the same thing.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace snapstore {

inline void parallel_for(std::size_t njobs, unsigned workers,
                         const std::function<void(std::size_t)>& fn) {
  if (workers <= 1 || njobs <= 1) {
    for (std::size_t i = 0; i < njobs; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < njobs; i = next.fetch_add(1))
      fn(i);
  };
  const unsigned nthreads =
      static_cast<unsigned>(std::min<std::size_t>(workers, njobs)) - 1;
  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) pool.emplace_back(drain);
  drain();  // the caller is a worker too
  for (auto& t : pool) t.join();
}

}  // namespace snapstore
