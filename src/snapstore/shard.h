// shard.h — the distributed snapstore: sharded, replicated checkpoint
// storage over a fleet of checl_snapd daemons.
//
// Placement is a consistent-hash ring (HashRing below): every shard
// contributes `vnodes` virtual points keyed by a STABLE identity string
// ("shard0", "shard1", …), and a chunk lands on the first R distinct shards
// clockwise of its key hash.  Stable identities are what give the ring its
// minimal-movement property — growing N shards to N+1 remaps ~1/(N+1) of the
// keys and leaves the rest where they were — and the vnode count is what
// keeps the load balanced (the ring property test gates max/mean ≤ 1.25 at
// ≥64 vnodes).
//
// Writes fan out per chunk to all R replicas.  A replica that fails (dead
// daemon, refused connect, Io) degrades the write instead of failing it: the
// chunk lands on the survivors, the manifest records the key as
// under-replicated, and a later repair() pass re-replicates from a surviving
// copy.  Only a chunk with ZERO reachable replicas fails the checkpoint.
//
// Reads fan out across shards in parallel and fail over per chunk: a missing
// or corrupt copy (the snapstore chunk-file CRC catches bit flips anywhere
// between client and disk) silently falls through to the next replica in
// ring order.  Restore succeeds as long as each chunk has one good copy
// somewhere.
//
// Manifests are replicated the same way, wrapped in a "SNAPSHD1" envelope
// (replication factor + under-replicated key list + the embedded local-format
// SNAPMAN1 bytes + CRC) and versioned by a seal sequence number: each seal
// writes seq = max(observed) + 1 to every replica via the daemon's tmp +
// rename, and readers take the highest-seq envelope that decodes.  A shard
// that dies mid-seal therefore serves either the old or the new manifest
// after restart — never a torn one — and the replicas that did take the
// write win the seq race.  That is the seal-or-abort atomicity the
// snapd_shard_death torture test gates on.
//
// ShardedStore implements StoreIface, so the checkpoint engine (live or
// stop-the-world) runs unchanged on top of it — NodeConfig::snap_shards /
// CHECL_SNAP_SHARDS picks the backend.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "snapd/client.h"
#include "snapd/spawn.h"
#include "snapstore/store.h"

namespace snapstore {

// ---- consistent-hash ring ---------------------------------------------------

class HashRing {
 public:
  // `ids` are stable shard identities; `vnodes` virtual points per shard.
  void build(const std::vector<std::string>& ids, unsigned vnodes);

  // The first `replicas` DISTINCT shards clockwise of the key point, primary
  // first.  Clamped to the shard count.
  [[nodiscard]] std::vector<unsigned> place(std::uint64_t key_hash,
                                            unsigned replicas) const;

  [[nodiscard]] std::size_t shards() const noexcept { return nshards_; }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

 private:
  struct Point {
    std::uint64_t h;
    unsigned shard;
  };
  std::vector<Point> points_;  // sorted by h
  std::size_t nshards_ = 0;
};

// ---- options / stats --------------------------------------------------------

struct ShardOptions {
  Options store;          // chunk size, codec, dedup, workers — as local
  unsigned replicas = 2;  // R-way replication (clamped to the shard count)
  unsigned vnodes = 64;   // ring points per shard
};

// Distributed-layer counters, on top of the StoreIface Stats.
struct ShardedStats {
  unsigned shards = 0;
  unsigned replicas = 0;
  std::uint64_t degraded_writes = 0;    // chunk copies lost to a dead replica
  std::uint64_t under_replicated = 0;   // keys recorded degraded in manifests
  std::uint64_t failovers = 0;          // reads served by a non-first replica
  std::uint64_t repaired_chunks = 0;    // chunk copies restored by repair()
  std::uint64_t repaired_manifests = 0;
};

struct RepairReport {
  Status status;
  std::uint64_t chunks_checked = 0;      // (key, replica) pairs verified
  std::uint64_t replicas_restored = 0;   // bad/missing copies re-written
  std::uint64_t manifests_rewritten = 0;
  std::uint64_t unrecoverable = 0;       // keys with no valid copy anywhere
};

// NodeConfig / environment plumbing: CHECL_SNAP_SHARDS (0 = local store),
// CHECL_SNAP_REPLICAS (default 2).
[[nodiscard]] unsigned snap_shards_from_env() noexcept;
[[nodiscard]] unsigned snap_replicas_from_env() noexcept;

// ---- the store --------------------------------------------------------------

class ShardedStore final : public StoreIface {
 public:
  ShardedStore() = default;
  ~ShardedStore() override;
  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  // Spawns `nshards` checl_snapd daemons rooted at <root>/shard<i> and
  // connects to them.  The daemons are owned: close() (or the destructor)
  // shuts them down.
  Status open_local(const std::string& root, unsigned nshards,
                    const ShardOptions& opt = {});
  // Connects to already-running daemons ("host:port" each); identities are
  // "shard<i>" in list order.  Nothing is spawned or owned.
  Status open_endpoints(const std::vector<std::string>& endpoints,
                        const ShardOptions& opt = {});
  void close();

  // Test hooks: after a shard daemon dies, a replacement serving the same
  // root can be reattached under the same ring identity.
  [[nodiscard]] std::string shard_root(unsigned shard) const;
  [[nodiscard]] const std::string& shard_endpoint(unsigned shard) const;
  bool reconnect(unsigned shard, std::uint16_t port);
  [[nodiscard]] snapd::ShardClient* client(unsigned shard) noexcept;
  [[nodiscard]] snapd::SpawnedShard* spawned(unsigned shard) noexcept;

  // StoreIface
  PutResult put(const std::string& name, const slimcr::Snapshot& snap,
                const slimcr::StorageModel& storage) override;
  GetResult get(const std::string& name, slimcr::Snapshot& out,
                const slimcr::StorageModel& storage) override;
  Status remove(const std::string& name) override;
  [[nodiscard]] std::unique_ptr<ManifestSession> begin(
      const std::string& name) override;
  [[nodiscard]] bool contains(const std::string& name) const override;
  [[nodiscard]] std::vector<std::string> manifest_names() const override;
  [[nodiscard]] bool is_open() const noexcept override {
    return !clients_.empty();
  }
  [[nodiscard]] const Options& options() const noexcept override {
    return opt_.store;
  }
  [[nodiscard]] const Stats& stats() const noexcept override { return stats_; }
  [[nodiscard]] unsigned shard_count() const noexcept override {
    return static_cast<unsigned>(clients_.size());
  }

  [[nodiscard]] const ShardedStats& sharded_stats() const noexcept {
    return sstats_;
  }

  // Scrub-and-fix pass: verifies every replica of every chunk referenced by
  // every reachable manifest, re-replicates from a surviving good copy, and
  // rewrites manifests whose under-replicated list is now clear.
  RepairReport repair();

  // Recounted from the manifests as stored right now (the bench gate:
  // zero after repair()).
  [[nodiscard]] std::uint64_t under_replicated_total() const;

 private:
  friend class ShardedSession;

  struct ManifestPick {
    std::uint64_t seq = 0;
    ManifestData data;
    std::vector<ChunkKey> under;  // under-replicated keys recorded at seal
    bool found = false;
  };

  Status open_common(const ShardOptions& opt);
  // Write one encoded chunk file to all placed replicas; appends degraded
  // keys to `under` (mutex-guarded).  Fails only with zero survivors.
  Status replicate_chunk(const ChunkKey& k, const std::uint8_t* file,
                         std::size_t file_len, bool* dedup_hit,
                         std::uint64_t* stored_per_replica,
                         std::vector<ChunkKey>* under, std::mutex* under_mu,
                         std::vector<std::uint64_t>* shard_bytes);
  // Fetch + verify one chunk with per-replica failover.
  Status fetch_chunk(const ChunkKey& k, std::vector<std::uint8_t>& raw,
                     std::uint64_t* wire_bytes, unsigned* served_by);
  // Highest-seq decodable manifest envelope across its replicas.
  ManifestPick fetch_manifest(const std::string& name) const;
  // Seal-seq for the next write of `name`: max observed + 1.
  std::uint64_t next_seq(const std::string& name) const;
  // Envelope + PutManifest to all replicas; requires >= 1 success.
  Status publish_manifest(const std::string& name, std::uint64_t seq,
                          const ManifestData& md,
                          const std::vector<ChunkKey>& under);
  [[nodiscard]] std::vector<unsigned> place_name(const std::string& name,
                                                 unsigned replicas) const;

  ShardOptions opt_;
  Options store_opt_;  // normalized copy surfaced via options()
  HashRing ring_;
  std::vector<std::unique_ptr<snapd::ShardClient>> clients_;
  std::vector<snapd::SpawnedShard> spawned_;  // empty for open_endpoints
  std::vector<std::string> endpoints_;
  std::string root_;
  Stats stats_;
  ShardedStats sstats_;
  std::uint32_t uniq_counter_ = 0;
  mutable std::mutex mu_;  // guards stats_ / sstats_ under parallel fan-out
};

}  // namespace snapstore
