// chunk.h — content addressing for the snapstore chunk pool.
//
// A chunk is a fixed-size slice of a snapshot section, addressed by
// (64-bit FNV-1a hash, raw length).  The length rides along in the key so a
// hash collision between chunks of different sizes is impossible and the
// restore path can size its buffers before touching the pool.  `uniq` is 0
// for content-addressed chunks; the dedup-off ablation gives every chunk a
// fresh serial instead, which forces distinct pool entries for identical
// content (the point of the ablation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

namespace snapstore {

// FNV-1a, 64-bit.  Not cryptographic — the 64-bit hash plus the exact length
// plus the per-chunk CRC on disk is the collision story, matching what
// rsync-style chunk stores rely on at this scale.
[[nodiscard]] inline std::uint64_t hash64(const std::uint8_t* data,
                                          std::size_t n) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t hash64(std::span<const std::uint8_t> data) noexcept {
  return hash64(data.data(), data.size());
}

struct ChunkKey {
  std::uint64_t hash = 0;
  std::uint64_t len = 0;
  std::uint32_t uniq = 0;  // 0 = content-addressed; >0 = dedup-off serial

  friend bool operator==(const ChunkKey&, const ChunkKey&) = default;
};

struct ChunkKeyHash {
  [[nodiscard]] std::size_t operator()(const ChunkKey& k) const noexcept {
    // hash is already well-mixed; fold in len and uniq
    return static_cast<std::size_t>(k.hash ^ (k.len * 0x9E3779B97F4A7C15ull) ^
                                    k.uniq);
  }
};

}  // namespace snapstore
