#include "snapstore/codec.h"

#include <cstring>

namespace snapstore {

namespace {

// ---- Identity ---------------------------------------------------------------

class IdentityCodec final : public Codec {
 public:
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::Identity; }
  [[nodiscard]] std::vector<std::uint8_t> compress(
      std::span<const std::uint8_t> in) const override {
    return {in.begin(), in.end()};
  }
  [[nodiscard]] bool decompress(std::span<const std::uint8_t> in,
                                std::size_t raw_len,
                                std::vector<std::uint8_t>& out) const override {
    if (in.size() != raw_len) return false;
    out.assign(in.begin(), in.end());
    return true;
  }
};

// ---- RLE (PackBits-style) ---------------------------------------------------
//
// Control byte c:  0..127  -> c+1 literal bytes follow
//                 129..255 -> the next byte repeats 257-c times (2..128)
//                 128      -> reserved, rejected on decode

class RleCodec final : public Codec {
 public:
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::Rle; }

  [[nodiscard]] std::vector<std::uint8_t> compress(
      std::span<const std::uint8_t> in) const override {
    std::vector<std::uint8_t> out;
    out.reserve(in.size() / 2 + 16);
    std::size_t lit_start = 0;  // start of the pending literal run
    std::size_t i = 0;
    auto flush_literals = [&](std::size_t end) {
      std::size_t p = lit_start;
      while (p < end) {
        const std::size_t n = std::min<std::size_t>(end - p, 128);
        out.push_back(static_cast<std::uint8_t>(n - 1));
        out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(p),
                   in.begin() + static_cast<std::ptrdiff_t>(p + n));
        p += n;
      }
    };
    while (i < in.size()) {
      std::size_t run = 1;
      while (i + run < in.size() && in[i + run] == in[i] && run < 128) ++run;
      if (run >= 3) {
        flush_literals(i);
        out.push_back(static_cast<std::uint8_t>(257 - run));
        out.push_back(in[i]);
        i += run;
        lit_start = i;
      } else {
        i += run;
      }
    }
    flush_literals(in.size());
    return out;
  }

  [[nodiscard]] bool decompress(std::span<const std::uint8_t> in,
                                std::size_t raw_len,
                                std::vector<std::uint8_t>& out) const override {
    out.clear();
    out.reserve(raw_len);
    std::size_t p = 0;
    while (p < in.size()) {
      const std::uint8_t c = in[p++];
      if (c == 128) return false;
      if (c < 128) {
        const std::size_t n = static_cast<std::size_t>(c) + 1;
        if (p + n > in.size() || out.size() + n > raw_len) return false;
        out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(p),
                   in.begin() + static_cast<std::ptrdiff_t>(p + n));
        p += n;
      } else {
        const std::size_t n = 257 - static_cast<std::size_t>(c);
        if (p >= in.size() || out.size() + n > raw_len) return false;
        out.insert(out.end(), n, in[p++]);
      }
    }
    return out.size() == raw_len;
  }
};

// ---- LZ (greedy LZ77, LZ4-like token stream) --------------------------------
//
// Sequence: token byte (high nibble = literal count, low nibble = match
// length - 4; 15 in either nibble extends via 255-continuation bytes),
// literals, then a 2-byte little-endian backref offset (1..65535) unless the
// stream ends after the literals (final sequence).  Matches may overlap
// their own output (offset < length), so the decoder copies byte-wise.

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr unsigned kHashBits = 15;

inline std::uint32_t lz_hash(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_length(std::vector<std::uint8_t>& out, std::size_t v) {
  while (v >= 255) {
    out.push_back(255);
    v -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Reads a 15-extended length; false on truncation.
bool get_length(std::span<const std::uint8_t> in, std::size_t& p,
                std::size_t& v) {
  for (;;) {
    if (p >= in.size()) return false;
    const std::uint8_t b = in[p++];
    v += b;
    if (b != 255) return true;
  }
}

class LzCodec final : public Codec {
 public:
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::Lz; }

  [[nodiscard]] std::vector<std::uint8_t> compress(
      std::span<const std::uint8_t> in) const override {
    std::vector<std::uint8_t> out;
    out.reserve(in.size() / 2 + 16);
    std::vector<std::int64_t> table(1u << kHashBits, -1);
    const std::size_t n = in.size();
    std::size_t anchor = 0;  // first literal not yet emitted
    std::size_t pos = 0;
    auto emit = [&](std::size_t lit, std::size_t match, std::size_t offset) {
      const std::size_t lit_nib = lit < 15 ? lit : 15;
      const std::size_t mat = match == 0 ? 0 : match - kMinMatch;
      const std::size_t mat_nib = match == 0 ? 0 : (mat < 15 ? mat : 15);
      out.push_back(static_cast<std::uint8_t>((lit_nib << 4) | mat_nib));
      if (lit >= 15) put_length(out, lit - 15);
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(anchor),
                 in.begin() + static_cast<std::ptrdiff_t>(anchor + lit));
      if (match == 0) return;  // final literals-only sequence
      out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
      out.push_back(static_cast<std::uint8_t>(offset >> 8));
      if (mat >= 15) put_length(out, mat - 15);
    };
    while (n >= kMinMatch && pos + kMinMatch <= n) {
      const std::uint32_t h = lz_hash(in.data() + pos);
      const std::int64_t cand = table[h];
      table[h] = static_cast<std::int64_t>(pos);
      if (cand >= 0 && pos - static_cast<std::size_t>(cand) <= kMaxOffset &&
          std::memcmp(in.data() + cand, in.data() + pos, kMinMatch) == 0) {
        std::size_t len = kMinMatch;
        while (pos + len < n &&
               in[static_cast<std::size_t>(cand) + len] == in[pos + len])
          ++len;
        emit(pos - anchor, len, pos - static_cast<std::size_t>(cand));
        pos += len;
        anchor = pos;
      } else {
        ++pos;
      }
    }
    emit(n - anchor, 0, 0);
    return out;
  }

  [[nodiscard]] bool decompress(std::span<const std::uint8_t> in,
                                std::size_t raw_len,
                                std::vector<std::uint8_t>& out) const override {
    out.clear();
    out.reserve(raw_len);
    std::size_t p = 0;
    while (p < in.size()) {
      const std::uint8_t token = in[p++];
      std::size_t lit = token >> 4;
      if (lit == 15 && !get_length(in, p, lit)) return false;
      if (p + lit > in.size() || out.size() + lit > raw_len) return false;
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(p),
                 in.begin() + static_cast<std::ptrdiff_t>(p + lit));
      p += lit;
      if (p == in.size()) break;  // final sequence carries no match
      if (p + 2 > in.size()) return false;
      const std::size_t offset =
          in[p] | (static_cast<std::size_t>(in[p + 1]) << 8);
      p += 2;
      std::size_t match = token & 0x0F;
      if (match == 15 && !get_length(in, p, match)) return false;
      match += kMinMatch;
      if (offset == 0 || offset > out.size() || out.size() + match > raw_len)
        return false;
      for (std::size_t i = 0; i < match; ++i)
        out.push_back(out[out.size() - offset]);
    }
    return out.size() == raw_len;
  }
};

}  // namespace

const Codec* codec_for(CodecId id) noexcept {
  static const IdentityCodec kIdentity;
  static const RleCodec kRle;
  static const LzCodec kLz;
  switch (id) {
    case CodecId::Identity: return &kIdentity;
    case CodecId::Rle: return &kRle;
    case CodecId::Lz: return &kLz;
  }
  return nullptr;
}

const char* codec_name(CodecId id) noexcept {
  switch (id) {
    case CodecId::Identity: return "identity";
    case CodecId::Rle: return "rle";
    case CodecId::Lz: return "lz";
  }
  return "unknown";
}

bool parse_codec(std::string_view name, CodecId& out) noexcept {
  if (name == "identity") out = CodecId::Identity;
  else if (name == "rle") out = CodecId::Rle;
  else if (name == "lz") out = CodecId::Lz;
  else return false;
  return true;
}

}  // namespace snapstore
