#include "snapstore/format.h"

#include "slimcr/snapshot.h"

namespace snapstore {

const char* errkind_name(ErrKind k) noexcept {
  switch (k) {
    case ErrKind::None: return "none";
    case ErrKind::Io: return "io";
    case ErrKind::BadMagic: return "bad-magic";
    case ErrKind::BadVersion: return "bad-version";
    case ErrKind::Truncated: return "truncated";
    case ErrKind::Corrupt: return "corrupt";
    case ErrKind::MissingManifest: return "missing-manifest";
    case ErrKind::MissingChunk: return "missing-chunk";
  }
  return "unknown";
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}

bool ByteReader::get_bytes(void* dst, std::size_t len) noexcept {
  if (pos + len > n) return ok = false;
  std::memcpy(dst, p + pos, len);
  pos += len;
  return true;
}

std::string sanitize(const std::string& name) {
  std::string out = name.empty() ? "_" : name;
  for (char& c : out) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!safe) c = '_';
  }
  return out;
}

std::vector<std::uint8_t> encode_manifest(const ManifestData& m) {
  std::vector<std::uint8_t> b;
  b.insert(b.end(), kManifestMagic, kManifestMagic + sizeof kManifestMagic);
  put_u32(b, kManifestVersion);
  put_u64(b, m.sections.size());
  for (const auto& sec : m.sections) {
    put_u64(b, sec.name.size());
    b.insert(b.end(), sec.name.begin(), sec.name.end());
    put_u64(b, sec.raw_len);
    put_u64(b, sec.refs.size());
    for (const ChunkKey& k : sec.refs) {
      put_u64(b, k.hash);
      put_u64(b, k.len);
      put_u32(b, k.uniq);
    }
  }
  put_u32(b, slimcr::crc32(b.data() + sizeof kManifestMagic,
                           b.size() - sizeof kManifestMagic));
  return b;
}

Status decode_manifest(const std::uint8_t* p, std::size_t n, ManifestData& out,
                       const std::string& context) {
  if (n < sizeof kManifestMagic + 8 ||
      std::memcmp(p, kManifestMagic, sizeof kManifestMagic) != 0)
    return {ErrKind::BadMagic, context + " is not a snapstore manifest"};
  // trailing CRC covers everything between magic and itself
  std::uint32_t want_crc = 0;
  std::memcpy(&want_crc, p + n - 4, 4);
  const std::uint32_t got_crc =
      slimcr::crc32(p + sizeof kManifestMagic, n - sizeof kManifestMagic - 4);
  if (want_crc != got_crc)
    return {ErrKind::Corrupt, "manifest CRC mismatch in " + context};
  ByteReader r{p + sizeof kManifestMagic, n - sizeof kManifestMagic - 4};
  if (const std::uint32_t v = r.get<std::uint32_t>(); v != kManifestVersion)
    return {ErrKind::BadVersion, "manifest version " + std::to_string(v) +
                                     " unsupported in " + context};
  const std::uint64_t nsections = r.get<std::uint64_t>();
  ManifestData m;
  for (std::uint64_t s = 0; s < nsections && r.ok; ++s) {
    ManifestData::Section sec;
    const std::uint64_t name_len = r.get<std::uint64_t>();
    if (!r.ok || name_len > (1u << 20)) break;
    sec.name.resize(name_len);
    if (name_len != 0 && !r.get_bytes(sec.name.data(), name_len)) break;
    sec.raw_len = r.get<std::uint64_t>();
    const std::uint64_t nchunks = r.get<std::uint64_t>();
    if (!r.ok || nchunks > (1ull << 32)) break;
    sec.refs.reserve(static_cast<std::size_t>(nchunks));
    for (std::uint64_t c = 0; c < nchunks && r.ok; ++c) {
      ChunkKey k;
      k.hash = r.get<std::uint64_t>();
      k.len = r.get<std::uint64_t>();
      k.uniq = r.get<std::uint32_t>();
      sec.refs.push_back(k);
    }
    m.sections.push_back(std::move(sec));
  }
  if (!r.ok || m.sections.size() != nsections || r.pos != r.n)
    return {ErrKind::Corrupt, "malformed manifest structure in " + context};
  out = std::move(m);
  return {};
}

std::vector<std::uint8_t> encode_chunk_file(const std::uint8_t* data,
                                            std::size_t len, CodecId codec_id) {
  const Codec* codec = codec_for(codec_id);
  CodecId used = CodecId::Identity;
  std::vector<std::uint8_t> encoded;
  if (codec != nullptr && codec->id() != CodecId::Identity) {
    std::vector<std::uint8_t> enc = codec->compress({data, len});
    if (enc.size() < len) {
      used = codec->id();
      encoded = std::move(enc);
    }
  }
  const std::uint8_t* payload = used == CodecId::Identity ? data : encoded.data();
  const std::size_t comp_len = used == CodecId::Identity ? len : encoded.size();
  const std::uint32_t crc = slimcr::crc32(payload, comp_len);
  std::vector<std::uint8_t> file;
  file.reserve(kChunkHeaderBytes + comp_len);
  file.insert(file.end(), kChunkMagic, kChunkMagic + sizeof kChunkMagic);
  file.push_back(static_cast<std::uint8_t>(used));
  put_u64(file, len);
  put_u64(file, comp_len);
  put_u32(file, crc);
  file.insert(file.end(), payload, payload + comp_len);
  return file;
}

Status decode_chunk_file(const std::uint8_t* p, std::size_t n,
                         std::uint64_t expect_raw_len,
                         std::vector<std::uint8_t>& out,
                         const std::string& context) {
  if (n < kChunkHeaderBytes ||
      std::memcmp(p, kChunkMagic, sizeof kChunkMagic) != 0)
    return {ErrKind::BadMagic, context + " is not a snapstore chunk"};
  ByteReader r{p + sizeof kChunkMagic, n - sizeof kChunkMagic};
  const auto codec_id = static_cast<CodecId>(r.get<std::uint8_t>());
  const std::uint64_t raw_len = r.get<std::uint64_t>();
  const std::uint64_t comp_len = r.get<std::uint64_t>();
  const std::uint32_t want_crc = r.get<std::uint32_t>();
  if (raw_len != expect_raw_len)
    return {ErrKind::Corrupt, "chunk header length mismatch in " + context};
  if (n != kChunkHeaderBytes + comp_len)
    return {ErrKind::Truncated, "pool chunk truncated: " + context};
  const std::uint8_t* payload = p + kChunkHeaderBytes;
  if (slimcr::crc32(payload, static_cast<std::size_t>(comp_len)) != want_crc)
    return {ErrKind::Corrupt, "chunk CRC mismatch in " + context};
  const Codec* codec = codec_for(codec_id);
  std::vector<std::uint8_t> decoded;
  if (codec == nullptr ||
      !codec->decompress({payload, static_cast<std::size_t>(comp_len)},
                         static_cast<std::size_t>(raw_len), decoded))
    return {ErrKind::Corrupt, "chunk payload undecodable in " + context};
  out = std::move(decoded);
  return {};
}

}  // namespace snapstore
