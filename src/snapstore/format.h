// format.h — the snapstore on-storage byte formats, factored out of store.cpp
// so the local Store and the sharded network store (shard.h / checl_snapd)
// read and write the *same* bytes.
//
// Two containers:
//   * chunk file   : "SNAPCHK1" + codec u8 + raw_len u64 + comp_len u64 +
//                    crc32 u32 + payload.  The CRC covers the payload as
//                    stored (post-compression), so a replica corrupted in
//                    flight or at rest is detected by any reader.
//   * manifest     : "SNAPMAN1" + version u32 + section table + trailing
//                    crc32 over everything between magic and CRC.
//
// Both are encoded/decoded on in-memory byte buffers here; where the bytes
// live (a local pool file, a snapd shard, a socket) is the caller's business.
// That split is what makes R-way replication work: the client encodes a chunk
// file once and ships the identical bytes to every replica, and every replica
// (or the restoring client) can verify them independently.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "snapstore/chunk.h"
#include "snapstore/codec.h"

namespace snapstore {

// Typed failure classes shared by every snapstore backend (local pool,
// sharded network store, snapd shard client).
enum class ErrKind : std::uint8_t {
  None = 0,
  Io,               // open/read/write/unlink/socket failure
  BadMagic,         // not a snapstore manifest / chunk
  BadVersion,       // format version mismatch
  Truncated,        // file shorter than its headers declare
  Corrupt,          // CRC mismatch or malformed structure
  MissingManifest,  // named snapshot not in the store
  MissingChunk,     // manifest references a chunk the pool no longer has
};

[[nodiscard]] const char* errkind_name(ErrKind k) noexcept;

struct Status {
  ErrKind kind = ErrKind::None;
  std::string message;
  [[nodiscard]] bool ok() const noexcept { return kind == ErrKind::None; }
};

inline constexpr char kManifestMagic[8] = {'S', 'N', 'A', 'P', 'M', 'A', 'N', '1'};
inline constexpr char kChunkMagic[8] = {'S', 'N', 'A', 'P', 'C', 'H', 'K', '1'};
inline constexpr std::uint32_t kManifestVersion = 1;
// chunk file header: magic + codec u8 + raw_len u64 + comp_len u64 + crc u32
inline constexpr std::size_t kChunkHeaderBytes = 8 + 1 + 8 + 8 + 4;

// ---- little helpers over byte buffers --------------------------------------

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v);

struct ByteReader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;
  bool ok = true;

  template <typename T>
  T get() noexcept {
    T v{};
    if (pos + sizeof v > n) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p + pos, sizeof v);
    pos += sizeof v;
    return v;
  }
  bool get_bytes(void* dst, std::size_t len) noexcept;
};

// Manifest names double as filenames; anything unsafe maps to '_'.
std::string sanitize(const std::string& name);

// ---- manifest encode/decode -------------------------------------------------

// The parsed form of a manifest: named sections, each a run of chunk refs.
struct ManifestData {
  struct Section {
    std::string name;
    std::uint64_t raw_len = 0;
    std::vector<ChunkKey> refs;
  };
  std::vector<Section> sections;
};

[[nodiscard]] std::vector<std::uint8_t> encode_manifest(const ManifestData& m);
// `context` names the source (a path, a shard endpoint) in error messages.
Status decode_manifest(const std::uint8_t* p, std::size_t n, ManifestData& out,
                       const std::string& context);

// ---- chunk-file encode/decode -----------------------------------------------

// Encodes `data` as a complete chunk file (header + payload), compressing
// with `codec` when that shrinks it and falling back to Identity otherwise.
[[nodiscard]] std::vector<std::uint8_t> encode_chunk_file(
    const std::uint8_t* data, std::size_t len, CodecId codec);

// Verifies magic, header, CRC and decodes the payload back to raw bytes.
// `expect_raw_len` cross-checks the header against the referencing manifest.
Status decode_chunk_file(const std::uint8_t* p, std::size_t n,
                         std::uint64_t expect_raw_len,
                         std::vector<std::uint8_t>& out,
                         const std::string& context);

}  // namespace snapstore
