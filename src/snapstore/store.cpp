#include "snapstore/store.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_set>

#include "chaoskit/chaoskit.h"

namespace snapstore {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestMagic[8] = {'S', 'N', 'A', 'P', 'M', 'A', 'N', '1'};
constexpr char kChunkMagic[8] = {'S', 'N', 'A', 'P', 'C', 'H', 'K', '1'};
constexpr std::uint32_t kManifestVersion = 1;
// chunk file header: magic + codec u8 + raw_len u64 + comp_len u64 + crc u32
constexpr std::size_t kChunkHeaderBytes = 8 + 1 + 8 + 8 + 4;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// ---- little helpers over byte buffers --------------------------------------

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}
void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}

struct ByteReader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;
  bool ok = true;

  template <typename T>
  T get() noexcept {
    T v{};
    if (pos + sizeof v > n) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p + pos, sizeof v);
    pos += sizeof v;
    return v;
  }
  bool get_bytes(void* dst, std::size_t len) noexcept {
    if (pos + len > n) return ok = false;
    std::memcpy(dst, p + pos, len);
    pos += len;
    return true;
  }
};

// Manifest names double as filenames; anything unsafe maps to '_'.
std::string sanitize(const std::string& name) {
  std::string out = name.empty() ? "_" : name;
  for (char& c : out) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!safe) c = '_';
  }
  return out;
}

bool read_whole_file(const std::string& path, std::vector<std::uint8_t>& out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;
  std::fseek(f.get(), 0, SEEK_END);
  const long sz = std::ftell(f.get());
  if (sz < 0) return false;
  std::fseek(f.get(), 0, SEEK_SET);
  out.resize(static_cast<std::size_t>(sz));
  return out.empty() ||
         std::fread(out.data(), out.size(), 1, f.get()) == 1;
}

bool write_whole_file(const std::string& path,
                      std::span<const std::uint8_t> a,
                      std::span<const std::uint8_t> b = {}) {
  // The choke point every pool chunk and manifest goes through — and so the
  // one place storage faults are injected: ENOSPC (the write fails), a torn
  // write (a prefix persists but the call "succeeds"), and silent corruption
  // (one byte flipped on the way down).  Reads must catch all three.
  auto& chaos = chaoskit::Engine::instance();
  if (chaos.should_fire(chaoskit::Site::StoreEnospc)) return false;
  const bool torn = chaos.should_fire(chaoskit::Site::StoreTornWrite);
  const bool flip = chaos.should_fire(chaoskit::Site::StoreBitFlip);
  if (torn || flip) {
    std::vector<std::uint8_t> all(a.begin(), a.end());
    all.insert(all.end(), b.begin(), b.end());
    if (flip && !all.empty())
      all[static_cast<std::size_t>(chaos.arg()) % all.size()] ^= 0x20;
    if (torn) all.resize(all.size() / 2);
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (f == nullptr) return false;
    if (!all.empty()) std::fwrite(all.data(), all.size(), 1, f.get());
    std::fflush(f.get());
    return true;  // the layer above believes this write landed intact
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;
  if (!a.empty() && std::fwrite(a.data(), a.size(), 1, f.get()) != 1) return false;
  if (!b.empty() && std::fwrite(b.data(), b.size(), 1, f.get()) != 1) return false;
  return std::fflush(f.get()) == 0;
}

// Runs fn(0..njobs) across up to `workers` threads (inline when it isn't
// worth spawning).  Workers touch disjoint job slots only.
void parallel_for(std::size_t njobs, unsigned workers,
                  const std::function<void(std::size_t)>& fn) {
  if (workers <= 1 || njobs <= 1) {
    for (std::size_t i = 0; i < njobs; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < njobs; i = next.fetch_add(1))
      fn(i);
  };
  const unsigned nthreads =
      static_cast<unsigned>(std::min<std::size_t>(workers, njobs)) - 1;
  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) pool.emplace_back(drain);
  drain();  // the caller is a worker too
  for (auto& t : pool) t.join();
}

}  // namespace

const char* errkind_name(ErrKind k) noexcept {
  switch (k) {
    case ErrKind::None: return "none";
    case ErrKind::Io: return "io";
    case ErrKind::BadMagic: return "bad-magic";
    case ErrKind::BadVersion: return "bad-version";
    case ErrKind::Truncated: return "truncated";
    case ErrKind::Corrupt: return "corrupt";
    case ErrKind::MissingManifest: return "missing-manifest";
    case ErrKind::MissingChunk: return "missing-chunk";
  }
  return "unknown";
}

// ---- manifest layout --------------------------------------------------------

struct Store::Manifest {
  struct Section {
    std::string name;
    std::uint64_t raw_len = 0;
    std::vector<ChunkKey> refs;
  };
  std::vector<Section> sections;
};

std::string Store::chunk_path(const ChunkKey& k) const {
  char buf[64];
  if (k.uniq == 0) {
    std::snprintf(buf, sizeof buf, "%016llx-%llu.chk",
                  static_cast<unsigned long long>(k.hash),
                  static_cast<unsigned long long>(k.len));
  } else {
    std::snprintf(buf, sizeof buf, "%016llx-%llu-u%u.chk",
                  static_cast<unsigned long long>(k.hash),
                  static_cast<unsigned long long>(k.len), k.uniq);
  }
  return root_ + "/chunks/" + buf;
}

std::string Store::manifest_path(const std::string& name) const {
  return root_ + "/manifests/" + sanitize(name) + ".manifest";
}

Status Store::load_manifest(const std::string& name, Manifest& out,
                            std::uint64_t* file_bytes) const {
  const std::string path = manifest_path(name);
  std::vector<std::uint8_t> raw;
  if (!read_whole_file(path, raw)) {
    if (!fs::exists(path))
      return {ErrKind::MissingManifest,
              "snapshot manifest '" + sanitize(name) + "' not in store " + root_};
    return {ErrKind::Io, "cannot read manifest " + path};
  }
  if (file_bytes != nullptr) *file_bytes = raw.size();
  if (raw.size() < sizeof kManifestMagic + 8 ||
      std::memcmp(raw.data(), kManifestMagic, sizeof kManifestMagic) != 0)
    return {ErrKind::BadMagic, path + " is not a snapstore manifest"};
  // trailing CRC covers everything between magic and itself
  std::uint32_t want_crc = 0;
  std::memcpy(&want_crc, raw.data() + raw.size() - 4, 4);
  const std::uint32_t got_crc =
      slimcr::crc32(raw.data() + sizeof kManifestMagic,
                    raw.size() - sizeof kManifestMagic - 4);
  if (want_crc != got_crc)
    return {ErrKind::Corrupt, "manifest CRC mismatch in " + path};
  ByteReader r{raw.data() + sizeof kManifestMagic,
               raw.size() - sizeof kManifestMagic - 4};
  if (const std::uint32_t v = r.get<std::uint32_t>(); v != kManifestVersion)
    return {ErrKind::BadVersion,
            "manifest version " + std::to_string(v) + " unsupported in " + path};
  const std::uint64_t nsections = r.get<std::uint64_t>();
  Manifest m;
  for (std::uint64_t s = 0; s < nsections && r.ok; ++s) {
    Manifest::Section sec;
    const std::uint64_t name_len = r.get<std::uint64_t>();
    if (!r.ok || name_len > (1u << 20)) break;
    sec.name.resize(name_len);
    if (name_len != 0 && !r.get_bytes(sec.name.data(), name_len)) break;
    sec.raw_len = r.get<std::uint64_t>();
    const std::uint64_t nchunks = r.get<std::uint64_t>();
    if (!r.ok || nchunks > (1ull << 32)) break;
    sec.refs.reserve(static_cast<std::size_t>(nchunks));
    for (std::uint64_t c = 0; c < nchunks && r.ok; ++c) {
      ChunkKey k;
      k.hash = r.get<std::uint64_t>();
      k.len = r.get<std::uint64_t>();
      k.uniq = r.get<std::uint32_t>();
      sec.refs.push_back(k);
    }
    m.sections.push_back(std::move(sec));
  }
  if (!r.ok || m.sections.size() != nsections || r.pos != r.n)
    return {ErrKind::Corrupt, "malformed manifest structure in " + path};
  out = std::move(m);
  return {};
}

void Store::release_ref(const ChunkKey& k) {
  const auto it = chunks_.find(k);
  if (it == chunks_.end()) return;
  if (--it->second.refs == 0) {
    std::error_code ec;
    fs::remove(chunk_path(k), ec);
    stats_.chunks_in_pool--;
    stats_.pool_stored_bytes -= it->second.stored_bytes;
    stats_.pool_raw_bytes -= k.len;
    chunks_.erase(it);
  }
}

void Store::retire_manifest_refs(const Manifest& m) {
  for (const auto& sec : m.sections)
    for (const ChunkKey& k : sec.refs) release_ref(k);
}

Status Store::pin_chunk(const ChunkKey& k, const std::uint8_t* data,
                        std::size_t len, bool* hit, std::uint64_t* stored) {
  *hit = false;
  *stored = 0;
  if (const auto it = chunks_.find(k); it != chunks_.end()) {
    it->second.refs++;
    *hit = true;
    return {};
  }
  const Codec* codec = codec_for(opt_.codec);
  CodecId used = CodecId::Identity;
  std::vector<std::uint8_t> encoded;
  if (codec->id() != CodecId::Identity) {
    std::vector<std::uint8_t> enc = codec->compress({data, len});
    if (enc.size() < len) {
      used = codec->id();
      encoded = std::move(enc);
    }
  }
  const std::uint32_t crc = used == CodecId::Identity
                                ? slimcr::crc32(data, len)
                                : slimcr::crc32(encoded.data(), encoded.size());
  const std::uint64_t comp_len =
      used == CodecId::Identity ? len : encoded.size();
  std::vector<std::uint8_t> header;
  header.reserve(kChunkHeaderBytes);
  header.insert(header.end(), kChunkMagic, kChunkMagic + sizeof kChunkMagic);
  header.push_back(static_cast<std::uint8_t>(used));
  put_u64(header, len);
  put_u64(header, comp_len);
  put_u32(header, crc);
  const std::span<const std::uint8_t> payload =
      used == CodecId::Identity ? std::span<const std::uint8_t>{data, len}
                                : std::span<const std::uint8_t>{encoded};
  const std::string path = chunk_path(k);
  if (!write_whole_file(path, header, payload))
    return {ErrKind::Io, "cannot write pool chunk " + path};
  ChunkInfo info;
  info.refs = 1;
  info.stored_bytes = header.size() + payload.size();
  chunks_.emplace(k, info);
  stats_.chunks_in_pool++;
  stats_.pool_stored_bytes += info.stored_bytes;
  stats_.pool_raw_bytes += k.len;
  *stored = info.stored_bytes;
  return {};
}

// ---- open -------------------------------------------------------------------

Status Store::open(const std::string& root, const Options& opt) {
  root_.clear();
  opt_ = opt;
  if (opt_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opt_.workers = hw == 0 ? 1 : std::min(hw, 4u);
  }
  if (!opt_.async) opt_.workers = 1;
  if (opt_.chunk_bytes == 0) opt_.chunk_bytes = 64 * 1024;
  if (codec_for(opt_.codec) == nullptr)
    return {ErrKind::Io, "unknown codec id"};
  std::error_code ec;
  fs::create_directories(root + "/chunks", ec);
  if (ec) return {ErrKind::Io, "cannot create " + root + "/chunks: " + ec.message()};
  fs::create_directories(root + "/manifests", ec);
  if (ec)
    return {ErrKind::Io, "cannot create " + root + "/manifests: " + ec.message()};
  root_ = root;
  chunks_.clear();
  stats_ = {};
  uniq_counter_ = 0;

  // Rebuild refcounts from the manifests on disk; unreadable manifests are
  // skipped (their chunks become unreferenced and a fresh put overwrites
  // them), so a half-written store never blocks reopening.
  for (const auto& e : fs::directory_iterator(root_ + "/manifests", ec)) {
    if (!e.is_regular_file()) continue;
    const std::string fname = e.path().filename().string();
    constexpr std::string_view kSuffix = ".manifest";
    if (fname.size() <= kSuffix.size() ||
        fname.substr(fname.size() - kSuffix.size()) != kSuffix)
      continue;
    const std::string name = fname.substr(0, fname.size() - kSuffix.size());
    Manifest m;
    if (!load_manifest(name, m, nullptr).ok()) continue;
    stats_.manifests++;
    for (const auto& sec : m.sections) {
      for (const ChunkKey& k : sec.refs) {
        uniq_counter_ = std::max(uniq_counter_, k.uniq);
        auto [it, inserted] = chunks_.try_emplace(k);
        it->second.refs++;
        if (inserted) {
          std::error_code sec_ec;
          const auto sz = fs::file_size(chunk_path(k), sec_ec);
          it->second.stored_bytes = sec_ec ? 0 : sz;
          stats_.chunks_in_pool++;
          stats_.pool_stored_bytes += it->second.stored_bytes;
          stats_.pool_raw_bytes += k.len;
        }
      }
    }
  }

  // Sweep orphaned chunk files: a crash mid-stream (an OpenManifest session
  // that never reached seal() or abort()) leaves chunk files no readable
  // manifest references.  They can never be read again — every get() goes
  // through a manifest — so reclaim the space now.
  {
    std::unordered_set<std::string> known;
    known.reserve(chunks_.size());
    for (const auto& [k, info] : chunks_) known.insert(chunk_path(k));
    for (const auto& e : fs::directory_iterator(root_ + "/chunks", ec)) {
      if (!e.is_regular_file()) continue;
      if (known.count(e.path().string()) != 0) continue;
      std::error_code rm_ec;
      fs::remove(e.path(), rm_ec);
      if (!rm_ec) stats_.orphans_swept++;
    }
  }
  return {};
}

// ---- put --------------------------------------------------------------------

PutResult Store::put(const std::string& name, const slimcr::Snapshot& snap,
                     const slimcr::StorageModel& storage) {
  PutResult res;
  if (!is_open()) {
    res.status = {ErrKind::Io, "store not open"};
    return res;
  }

  // Overwrite semantics: remember the old manifest's references now, retire
  // them only after the replacement committed (its clean chunks must stay
  // dedup-able and crash-safe throughout).
  Manifest old_manifest;
  const bool had_old = load_manifest(name, old_manifest, nullptr).ok();

  struct Job {
    const std::uint8_t* data;
    std::size_t len;
    ChunkKey key;
    bool is_new = false;
    CodecId used = CodecId::Identity;
    std::vector<std::uint8_t> encoded;  // empty when used == Identity
    std::uint32_t crc = 0;              // of the payload as stored
  };
  std::vector<Job> jobs;
  for (const auto& [sec_name, data] : snap.sections()) {
    for (std::size_t off = 0; off < data.size(); off += opt_.chunk_bytes) {
      Job j;
      j.data = data.data() + off;
      j.len = std::min(opt_.chunk_bytes, data.size() - off);
      jobs.push_back(j);
      res.raw_bytes += j.len;
    }
  }

  // Pipeline stage 1 (parallel): content hashes.
  parallel_for(jobs.size(), opt_.workers, [&](std::size_t i) {
    jobs[i].key = {hash64(jobs[i].data, jobs[i].len), jobs[i].len, 0};
  });

  // Stage 2 (ordered): dedup resolution against the pool and this put.
  std::unordered_map<ChunkKey, std::uint8_t, ChunkKeyHash> seen_in_put;
  for (Job& j : jobs) {
    if (!opt_.dedup) {
      j.key.uniq = ++uniq_counter_;
      j.is_new = true;
      continue;
    }
    if (chunks_.count(j.key) != 0 || seen_in_put.count(j.key) != 0) {
      res.dedup_hits++;
    } else {
      j.is_new = true;
      seen_in_put.emplace(j.key, 0);
    }
  }

  // Stage 3 (parallel): compress new chunks; fall back to Identity storage
  // whenever the codec fails to shrink.
  const Codec* codec = codec_for(opt_.codec);
  parallel_for(jobs.size(), opt_.workers, [&](std::size_t i) {
    Job& j = jobs[i];
    if (!j.is_new) return;
    if (codec->id() != CodecId::Identity) {
      std::vector<std::uint8_t> enc =
          codec->compress({j.data, j.len});
      if (enc.size() < j.len) {
        j.used = codec->id();
        j.encoded = std::move(enc);
      }
    }
    j.crc = j.used == CodecId::Identity
                ? slimcr::crc32(j.data, j.len)
                : slimcr::crc32(j.encoded.data(), j.encoded.size());
  });

  // Stage 4 (ordered commit): chunk files in submission order, then the
  // manifest.  Only now do refcounts and pool stats change.
  std::uint64_t new_chunk_bytes = 0;
  std::vector<std::uint64_t> job_file_bytes(jobs.size(), 0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Job& j = jobs[i];
    if (!j.is_new) continue;
    const std::uint64_t comp_len =
        j.used == CodecId::Identity ? j.len : j.encoded.size();
    std::vector<std::uint8_t> header;
    header.reserve(kChunkHeaderBytes);
    header.insert(header.end(), kChunkMagic, kChunkMagic + sizeof kChunkMagic);
    header.push_back(static_cast<std::uint8_t>(j.used));
    put_u64(header, j.len);
    put_u64(header, comp_len);
    put_u32(header, j.crc);
    const std::span<const std::uint8_t> payload =
        j.used == CodecId::Identity
            ? std::span<const std::uint8_t>{j.data, j.len}
            : std::span<const std::uint8_t>{j.encoded};
    const std::string path = chunk_path(j.key);
    if (!write_whole_file(path, header, payload)) {
      res.status = {ErrKind::Io, "cannot write pool chunk " + path};
      return res;
    }
    job_file_bytes[i] = header.size() + payload.size();
    new_chunk_bytes += job_file_bytes[i];
    res.new_chunks++;
  }

  // Manifest: sections in snapshot order, each referencing its chunks.
  std::vector<std::uint8_t> mbytes;
  mbytes.insert(mbytes.end(), kManifestMagic,
                kManifestMagic + sizeof kManifestMagic);
  put_u32(mbytes, kManifestVersion);
  put_u64(mbytes, snap.sections().size());
  {
    std::size_t ji = 0;
    for (const auto& [sec_name, data] : snap.sections()) {
      put_u64(mbytes, sec_name.size());
      mbytes.insert(mbytes.end(), sec_name.begin(), sec_name.end());
      put_u64(mbytes, data.size());
      const std::uint64_t nchunks =
          data.empty() ? 0
                       : (data.size() + opt_.chunk_bytes - 1) / opt_.chunk_bytes;
      put_u64(mbytes, nchunks);
      for (std::uint64_t c = 0; c < nchunks; ++c, ++ji) {
        put_u64(mbytes, jobs[ji].key.hash);
        put_u64(mbytes, jobs[ji].key.len);
        put_u32(mbytes, jobs[ji].key.uniq);
      }
    }
  }
  put_u32(mbytes, slimcr::crc32(mbytes.data() + sizeof kManifestMagic,
                                mbytes.size() - sizeof kManifestMagic));
  const std::string mpath = manifest_path(name);
  if (!write_whole_file(mpath + ".tmp", mbytes) ||
      std::rename((mpath + ".tmp").c_str(), mpath.c_str()) != 0) {
    res.status = {ErrKind::Io, "cannot write manifest " + mpath};
    return res;
  }

  // Reference accounting: the new manifest pins its chunks, the replaced
  // manifest (if any) lets go of its own — in that order, so shared chunks
  // never dip to zero in between.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto [it, inserted] = chunks_.try_emplace(jobs[i].key);
    it->second.refs++;
    if (inserted) {
      it->second.stored_bytes = job_file_bytes[i];
      stats_.chunks_in_pool++;
      stats_.pool_stored_bytes += it->second.stored_bytes;
      stats_.pool_raw_bytes += jobs[i].key.len;
    }
  }
  if (had_old)
    retire_manifest_refs(old_manifest);
  else
    stats_.manifests++;

  res.manifest_bytes = mbytes.size();
  res.stored_bytes = new_chunk_bytes + res.manifest_bytes;
  res.duration_ns = storage.write_ns(res.stored_bytes);
  stats_.puts++;
  stats_.chunks_written += res.new_chunks;
  stats_.dedup_hits += res.dedup_hits;
  stats_.raw_bytes_in += res.raw_bytes;
  stats_.stored_bytes_written += res.stored_bytes;
  return res;
}

// ---- get --------------------------------------------------------------------

GetResult Store::get(const std::string& name, slimcr::Snapshot& out,
                     const slimcr::StorageModel& storage) {
  GetResult res;
  if (!is_open()) {
    res.status = {ErrKind::Io, "store not open"};
    return res;
  }
  Manifest m;
  std::uint64_t mfile_bytes = 0;
  res.status = load_manifest(name, m, &mfile_bytes);
  if (!res.status.ok()) return res;
  res.bytes_read = mfile_bytes;

  // Each referenced chunk is read and verified once; repeats within the
  // snapshot come from the decoded cache (that is the dedup read win).
  std::unordered_map<ChunkKey, std::vector<std::uint8_t>, ChunkKeyHash> cache;
  auto fetch = [&](const ChunkKey& k) -> const std::vector<std::uint8_t>* {
    if (const auto it = cache.find(k); it != cache.end()) return &it->second;
    const std::string path = chunk_path(k);
    std::vector<std::uint8_t> raw;
    if (!read_whole_file(path, raw)) {
      res.status = fs::exists(path)
                       ? Status{ErrKind::Io, "cannot read pool chunk " + path}
                       : Status{ErrKind::MissingChunk,
                                "pool chunk " + path +
                                    " missing (referenced by manifest '" +
                                    sanitize(name) + "')"};
      return nullptr;
    }
    if (raw.size() < kChunkHeaderBytes ||
        std::memcmp(raw.data(), kChunkMagic, sizeof kChunkMagic) != 0) {
      res.status = {ErrKind::BadMagic, path + " is not a snapstore chunk"};
      return nullptr;
    }
    ByteReader r{raw.data() + sizeof kChunkMagic,
                 raw.size() - sizeof kChunkMagic};
    const auto codec_id = static_cast<CodecId>(r.get<std::uint8_t>());
    const std::uint64_t raw_len = r.get<std::uint64_t>();
    const std::uint64_t comp_len = r.get<std::uint64_t>();
    const std::uint32_t want_crc = r.get<std::uint32_t>();
    if (raw_len != k.len) {
      res.status = {ErrKind::Corrupt, "chunk header length mismatch in " + path};
      return nullptr;
    }
    if (raw.size() != kChunkHeaderBytes + comp_len) {
      res.status = {ErrKind::Truncated, "pool chunk truncated: " + path};
      return nullptr;
    }
    const std::uint8_t* payload = raw.data() + kChunkHeaderBytes;
    if (slimcr::crc32(payload, static_cast<std::size_t>(comp_len)) != want_crc) {
      res.status = {ErrKind::Corrupt, "chunk CRC mismatch in " + path};
      return nullptr;
    }
    const Codec* codec = codec_for(codec_id);
    std::vector<std::uint8_t> decoded;
    if (codec == nullptr ||
        !codec->decompress({payload, static_cast<std::size_t>(comp_len)},
                           static_cast<std::size_t>(raw_len), decoded)) {
      res.status = {ErrKind::Corrupt, "chunk payload undecodable in " + path};
      return nullptr;
    }
    res.bytes_read += raw.size();
    return &cache.emplace(k, std::move(decoded)).first->second;
  };

  slimcr::Snapshot assembled;
  for (const auto& sec : m.sections) {
    std::vector<std::uint8_t> data;
    data.reserve(static_cast<std::size_t>(sec.raw_len));
    for (const ChunkKey& k : sec.refs) {
      const std::vector<std::uint8_t>* piece = fetch(k);
      if (piece == nullptr) return res;  // typed status already set
      data.insert(data.end(), piece->begin(), piece->end());
    }
    if (data.size() != sec.raw_len) {
      res.status = {ErrKind::Corrupt,
                    "section '" + sec.name + "' reassembled to " +
                        std::to_string(data.size()) + " bytes, manifest says " +
                        std::to_string(sec.raw_len)};
      return res;
    }
    res.raw_bytes += data.size();
    assembled.set(sec.name, std::move(data));
  }
  out = std::move(assembled);
  res.duration_ns = storage.read_ns(res.bytes_read);
  stats_.gets++;
  stats_.bytes_read += res.bytes_read;
  return res;
}

// ---- remove (refcount GC) ---------------------------------------------------

Status Store::remove(const std::string& name) {
  if (!is_open()) return {ErrKind::Io, "store not open"};
  Manifest m;
  const Status st = load_manifest(name, m, nullptr);
  if (!st.ok()) return st;
  std::error_code ec;
  fs::remove(manifest_path(name), ec);
  if (ec) return {ErrKind::Io, "cannot remove manifest " + manifest_path(name)};
  stats_.manifests--;
  retire_manifest_refs(m);
  return {};
}

// ---- streaming manifests (live pre-copy) ------------------------------------

std::unique_ptr<OpenManifest> Store::begin(const std::string& name) {
  if (!is_open()) return nullptr;
  return std::unique_ptr<OpenManifest>(new OpenManifest(this, name));
}

OpenManifest::~OpenManifest() { abort(); }

OpenManifest::Section& OpenManifest::section(const std::string& name) {
  for (auto& s : sections_)
    if (s.name == name) return s;
  sections_.push_back(Section{name, {}, {}, {}});
  return sections_.back();
}

OpenManifest::ChunkResult OpenManifest::put_chunk(
    const std::string& sec_name, std::size_t chunk_idx, const std::uint8_t* data,
    std::size_t len, const slimcr::StorageModel& storage) {
  ChunkResult res;
  if (sealed_ || aborted_) {
    res.status = {ErrKind::Io, "manifest session already closed"};
    return res;
  }
  ChunkKey key{hash64(data, len), len, 0};
  if (!store_->opt_.dedup) key.uniq = ++store_->uniq_counter_;
  bool hit = false;
  std::uint64_t stored = 0;
  res.status = store_->pin_chunk(key, data, len, &hit, &stored);
  if (!res.status.ok()) return res;
  Section& sec = section(sec_name);
  if (chunk_idx >= sec.keys.size()) {
    sec.keys.resize(chunk_idx + 1);
    sec.lens.resize(chunk_idx + 1, 0);
    sec.filled.resize(chunk_idx + 1, 0);
  }
  if (sec.filled[chunk_idx] != 0) {
    // Re-stream of a slot a later round found dirty again: drop the replaced
    // pin now so an unsealed session never holds dead references.
    raw_bytes_ -= sec.lens[chunk_idx];
    store_->release_ref(sec.keys[chunk_idx]);
  }
  sec.keys[chunk_idx] = key;
  sec.lens[chunk_idx] = len;
  sec.filled[chunk_idx] = 1;
  res.dedup_hit = hit;
  res.stored_bytes = stored;
  res.duration_ns = storage.write_ns(stored);
  raw_bytes_ += len;
  stored_bytes_ += stored;
  if (hit) {
    dedup_hits_++;
    store_->stats_.dedup_hits++;
  } else {
    new_chunks_++;
    store_->stats_.chunks_written++;
  }
  store_->stats_.raw_bytes_in += len;
  store_->stats_.stored_bytes_written += stored;
  return res;
}

OpenManifest::ChunkResult OpenManifest::put_section(
    const std::string& sec_name, const std::uint8_t* data, std::size_t len,
    const slimcr::StorageModel& storage) {
  ChunkResult total;
  if (sealed_ || aborted_) {
    total.status = {ErrKind::Io, "manifest session already closed"};
    return total;
  }
  // Whole-section semantics: replace anything streamed under this name so a
  // re-put cannot leave stale trailing slots in the manifest.
  Section& sec = section(sec_name);
  for (std::size_t i = 0; i < sec.keys.size(); ++i) {
    if (sec.filled[i] != 0) {
      raw_bytes_ -= sec.lens[i];
      store_->release_ref(sec.keys[i]);
    }
  }
  sec.keys.clear();
  sec.lens.clear();
  sec.filled.clear();
  const std::size_t cb = store_->opt_.chunk_bytes;
  for (std::size_t off = 0, idx = 0; off < len; off += cb, ++idx) {
    const ChunkResult r =
        put_chunk(sec_name, idx, data + off, std::min(cb, len - off), storage);
    if (!r.status.ok()) {
      total.status = r.status;
      return total;
    }
    total.stored_bytes += r.stored_bytes;
    total.duration_ns += r.duration_ns;
  }
  return total;
}

PutResult OpenManifest::seal(const slimcr::StorageModel& storage) {
  PutResult res;
  if (sealed_ || aborted_) {
    res.status = {ErrKind::Io, "manifest session already closed"};
    return res;
  }
  for (const auto& sec : sections_) {
    for (std::size_t i = 0; i < sec.filled.size(); ++i) {
      if (sec.filled[i] == 0) {
        res.status = {ErrKind::Corrupt, "section '" + sec.name + "' slot " +
                                            std::to_string(i) +
                                            " never streamed"};
        return res;
      }
    }
  }
  Store::Manifest old_manifest;
  const bool had_old =
      store_->load_manifest(name_, old_manifest, nullptr).ok();

  // Same byte layout as Store::put() writes, so load_manifest()/get() serve
  // sealed streams and batch puts identically.
  std::vector<std::uint8_t> mbytes;
  mbytes.insert(mbytes.end(), kManifestMagic,
                kManifestMagic + sizeof kManifestMagic);
  put_u32(mbytes, kManifestVersion);
  put_u64(mbytes, sections_.size());
  for (const auto& sec : sections_) {
    put_u64(mbytes, sec.name.size());
    mbytes.insert(mbytes.end(), sec.name.begin(), sec.name.end());
    std::uint64_t raw_len = 0;
    for (const std::uint64_t l : sec.lens) raw_len += l;
    put_u64(mbytes, raw_len);
    put_u64(mbytes, sec.keys.size());
    for (const ChunkKey& k : sec.keys) {
      put_u64(mbytes, k.hash);
      put_u64(mbytes, k.len);
      put_u32(mbytes, k.uniq);
    }
  }
  put_u32(mbytes, slimcr::crc32(mbytes.data() + sizeof kManifestMagic,
                                mbytes.size() - sizeof kManifestMagic));
  const std::string mpath = store_->manifest_path(name_);
  if (!write_whole_file(mpath + ".tmp", mbytes) ||
      std::rename((mpath + ".tmp").c_str(), mpath.c_str()) != 0) {
    // The session stays open: the caller may retry seal() or abort(), and the
    // previous manifest of this name is still intact either way.
    res.status = {ErrKind::Io, "cannot write manifest " + mpath};
    return res;
  }
  // The provisional pins ARE the new manifest's references — nothing to
  // transfer.  The replaced manifest (if any) lets go of its own only now,
  // so shared chunks never dip to zero in between.
  if (had_old)
    store_->retire_manifest_refs(old_manifest);
  else
    store_->stats_.manifests++;
  sealed_ = true;

  res.raw_bytes = raw_bytes_;
  res.new_chunks = new_chunks_;
  res.dedup_hits = dedup_hits_;
  res.manifest_bytes = mbytes.size();
  res.stored_bytes = stored_bytes_ + res.manifest_bytes;
  res.duration_ns = storage.write_ns(res.manifest_bytes);
  store_->stats_.puts++;
  store_->stats_.stored_bytes_written += res.manifest_bytes;
  return res;
}

void OpenManifest::abort() {
  if (sealed_ || aborted_) return;
  for (const auto& sec : sections_) {
    for (std::size_t i = 0; i < sec.keys.size(); ++i)
      if (sec.filled[i] != 0) store_->release_ref(sec.keys[i]);
  }
  sections_.clear();
  aborted_ = true;
}

bool Store::contains(const std::string& name) const {
  return is_open() && fs::exists(manifest_path(name));
}

std::vector<std::string> Store::manifest_names() const {
  std::vector<std::string> out;
  if (!is_open()) return out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(root_ + "/manifests", ec)) {
    if (!e.is_regular_file()) continue;
    const std::string fname = e.path().filename().string();
    constexpr std::string_view kSuffix = ".manifest";
    if (fname.size() > kSuffix.size() &&
        fname.substr(fname.size() - kSuffix.size()) == kSuffix)
      out.push_back(fname.substr(0, fname.size() - kSuffix.size()));
  }
  return out;
}

}  // namespace snapstore
