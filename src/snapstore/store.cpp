#include "snapstore/store.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <unordered_set>

#include "chaoskit/chaoskit.h"
#include "snapstore/parallel.h"

namespace snapstore {

namespace fs = std::filesystem;

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool read_whole_file(const std::string& path, std::vector<std::uint8_t>& out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;
  std::fseek(f.get(), 0, SEEK_END);
  const long sz = std::ftell(f.get());
  if (sz < 0) return false;
  std::fseek(f.get(), 0, SEEK_SET);
  out.resize(static_cast<std::size_t>(sz));
  return out.empty() ||
         std::fread(out.data(), out.size(), 1, f.get()) == 1;
}

bool write_whole_file(const std::string& path,
                      std::span<const std::uint8_t> a) {
  // The choke point every pool chunk and manifest goes through — and so the
  // one place storage faults are injected: ENOSPC (the write fails), a torn
  // write (a prefix persists but the call "succeeds"), and silent corruption
  // (one byte flipped on the way down).  Reads must catch all three.
  auto& chaos = chaoskit::Engine::instance();
  if (chaos.should_fire(chaoskit::Site::StoreEnospc)) return false;
  const bool torn = chaos.should_fire(chaoskit::Site::StoreTornWrite);
  const bool flip = chaos.should_fire(chaoskit::Site::StoreBitFlip);
  if (torn || flip) {
    std::vector<std::uint8_t> all(a.begin(), a.end());
    if (flip && !all.empty())
      all[static_cast<std::size_t>(chaos.arg()) % all.size()] ^= 0x20;
    if (torn) all.resize(all.size() / 2);
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (f == nullptr) return false;
    if (!all.empty()) std::fwrite(all.data(), all.size(), 1, f.get());
    std::fflush(f.get());
    return true;  // the layer above believes this write landed intact
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;
  if (!a.empty() && std::fwrite(a.data(), a.size(), 1, f.get()) != 1)
    return false;
  return std::fflush(f.get()) == 0;
}

}  // namespace

std::string Store::chunk_path(const ChunkKey& k) const {
  char buf[64];
  if (k.uniq == 0) {
    std::snprintf(buf, sizeof buf, "%016llx-%llu.chk",
                  static_cast<unsigned long long>(k.hash),
                  static_cast<unsigned long long>(k.len));
  } else {
    std::snprintf(buf, sizeof buf, "%016llx-%llu-u%u.chk",
                  static_cast<unsigned long long>(k.hash),
                  static_cast<unsigned long long>(k.len), k.uniq);
  }
  return root_ + "/chunks/" + buf;
}

std::string Store::manifest_path(const std::string& name) const {
  return root_ + "/manifests/" + sanitize(name) + ".manifest";
}

Status Store::load_manifest(const std::string& name, ManifestData& out,
                            std::uint64_t* file_bytes) const {
  const std::string path = manifest_path(name);
  std::vector<std::uint8_t> raw;
  if (!read_whole_file(path, raw)) {
    if (!fs::exists(path))
      return {ErrKind::MissingManifest,
              "snapshot manifest '" + sanitize(name) + "' not in store " + root_};
    return {ErrKind::Io, "cannot read manifest " + path};
  }
  if (file_bytes != nullptr) *file_bytes = raw.size();
  return decode_manifest(raw.data(), raw.size(), out, path);
}

void Store::release_ref(const ChunkKey& k) {
  const auto it = chunks_.find(k);
  if (it == chunks_.end()) return;
  if (--it->second.refs == 0) {
    std::error_code ec;
    fs::remove(chunk_path(k), ec);
    stats_.chunks_in_pool--;
    stats_.pool_stored_bytes -= it->second.stored_bytes;
    stats_.pool_raw_bytes -= k.len;
    chunks_.erase(it);
  }
}

void Store::retire_manifest_refs(const ManifestData& m) {
  for (const auto& sec : m.sections)
    for (const ChunkKey& k : sec.refs) release_ref(k);
}

Status Store::pin_chunk(const ChunkKey& k, const std::uint8_t* data,
                        std::size_t len, bool* hit, std::uint64_t* stored) {
  *hit = false;
  *stored = 0;
  if (const auto it = chunks_.find(k); it != chunks_.end()) {
    it->second.refs++;
    *hit = true;
    return {};
  }
  const std::vector<std::uint8_t> file = encode_chunk_file(data, len, opt_.codec);
  const std::string path = chunk_path(k);
  if (!write_whole_file(path, file))
    return {ErrKind::Io, "cannot write pool chunk " + path};
  ChunkInfo info;
  info.refs = 1;
  info.stored_bytes = file.size();
  chunks_.emplace(k, info);
  stats_.chunks_in_pool++;
  stats_.pool_stored_bytes += info.stored_bytes;
  stats_.pool_raw_bytes += k.len;
  *stored = info.stored_bytes;
  return {};
}

// ---- open -------------------------------------------------------------------

Status Store::open(const std::string& root, const Options& opt) {
  root_.clear();
  opt_ = opt;
  if (opt_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opt_.workers = hw == 0 ? 1 : std::min(hw, 4u);
  }
  if (!opt_.async) opt_.workers = 1;
  if (opt_.chunk_bytes == 0) opt_.chunk_bytes = 64 * 1024;
  if (codec_for(opt_.codec) == nullptr)
    return {ErrKind::Io, "unknown codec id"};
  std::error_code ec;
  fs::create_directories(root + "/chunks", ec);
  if (ec) return {ErrKind::Io, "cannot create " + root + "/chunks: " + ec.message()};
  fs::create_directories(root + "/manifests", ec);
  if (ec)
    return {ErrKind::Io, "cannot create " + root + "/manifests: " + ec.message()};
  root_ = root;
  chunks_.clear();
  stats_ = {};
  uniq_counter_ = 0;

  // Rebuild refcounts from the manifests on disk; unreadable manifests are
  // skipped (their chunks become unreferenced and a fresh put overwrites
  // them), so a half-written store never blocks reopening.
  for (const auto& e : fs::directory_iterator(root_ + "/manifests", ec)) {
    if (!e.is_regular_file()) continue;
    const std::string fname = e.path().filename().string();
    constexpr std::string_view kSuffix = ".manifest";
    if (fname.size() <= kSuffix.size() ||
        fname.substr(fname.size() - kSuffix.size()) != kSuffix)
      continue;
    const std::string name = fname.substr(0, fname.size() - kSuffix.size());
    ManifestData m;
    if (!load_manifest(name, m, nullptr).ok()) continue;
    stats_.manifests++;
    for (const auto& sec : m.sections) {
      for (const ChunkKey& k : sec.refs) {
        uniq_counter_ = std::max(uniq_counter_, k.uniq);
        auto [it, inserted] = chunks_.try_emplace(k);
        it->second.refs++;
        if (inserted) {
          std::error_code sec_ec;
          const auto sz = fs::file_size(chunk_path(k), sec_ec);
          it->second.stored_bytes = sec_ec ? 0 : sz;
          stats_.chunks_in_pool++;
          stats_.pool_stored_bytes += it->second.stored_bytes;
          stats_.pool_raw_bytes += k.len;
        }
      }
    }
  }

  // Sweep orphaned chunk files: a crash mid-stream (an OpenManifest session
  // that never reached seal() or abort()) leaves chunk files no readable
  // manifest references.  They can never be read again — every get() goes
  // through a manifest — so reclaim the space now.
  {
    std::unordered_set<std::string> known;
    known.reserve(chunks_.size());
    for (const auto& [k, info] : chunks_) known.insert(chunk_path(k));
    for (const auto& e : fs::directory_iterator(root_ + "/chunks", ec)) {
      if (!e.is_regular_file()) continue;
      if (known.count(e.path().string()) != 0) continue;
      std::error_code rm_ec;
      fs::remove(e.path(), rm_ec);
      if (!rm_ec) stats_.orphans_swept++;
    }
  }
  return {};
}

// ---- put --------------------------------------------------------------------

PutResult Store::put(const std::string& name, const slimcr::Snapshot& snap,
                     const slimcr::StorageModel& storage) {
  PutResult res;
  if (!is_open()) {
    res.status = {ErrKind::Io, "store not open"};
    return res;
  }

  // Overwrite semantics: remember the old manifest's references now, retire
  // them only after the replacement committed (its clean chunks must stay
  // dedup-able and crash-safe throughout).
  ManifestData old_manifest;
  const bool had_old = load_manifest(name, old_manifest, nullptr).ok();

  struct Job {
    const std::uint8_t* data;
    std::size_t len;
    ChunkKey key;
    bool is_new = false;
    std::vector<std::uint8_t> file;  // complete chunk-file bytes when is_new
  };
  std::vector<Job> jobs;
  for (const auto& [sec_name, data] : snap.sections()) {
    for (std::size_t off = 0; off < data.size(); off += opt_.chunk_bytes) {
      Job j;
      j.data = data.data() + off;
      j.len = std::min(opt_.chunk_bytes, data.size() - off);
      jobs.push_back(j);
      res.raw_bytes += j.len;
    }
  }

  // Pipeline stage 1 (parallel): content hashes.
  parallel_for(jobs.size(), opt_.workers, [&](std::size_t i) {
    jobs[i].key = {hash64(jobs[i].data, jobs[i].len), jobs[i].len, 0};
  });

  // Stage 2 (ordered): dedup resolution against the pool and this put.
  std::unordered_map<ChunkKey, std::uint8_t, ChunkKeyHash> seen_in_put;
  for (Job& j : jobs) {
    if (!opt_.dedup) {
      j.key.uniq = ++uniq_counter_;
      j.is_new = true;
      continue;
    }
    if (chunks_.count(j.key) != 0 || seen_in_put.count(j.key) != 0) {
      res.dedup_hits++;
    } else {
      j.is_new = true;
      seen_in_put.emplace(j.key, 0);
    }
  }

  // Stage 3 (parallel): encode new chunks into complete chunk files
  // (compression falls back to Identity whenever the codec fails to shrink).
  parallel_for(jobs.size(), opt_.workers, [&](std::size_t i) {
    Job& j = jobs[i];
    if (!j.is_new) return;
    j.file = encode_chunk_file(j.data, j.len, opt_.codec);
  });

  // Stage 4 (ordered commit): chunk files in submission order, then the
  // manifest.  Only now do refcounts and pool stats change.
  std::uint64_t new_chunk_bytes = 0;
  for (Job& j : jobs) {
    if (!j.is_new) continue;
    const std::string path = chunk_path(j.key);
    if (!write_whole_file(path, j.file)) {
      res.status = {ErrKind::Io, "cannot write pool chunk " + path};
      return res;
    }
    new_chunk_bytes += j.file.size();
    res.new_chunks++;
  }

  // Manifest: sections in snapshot order, each referencing its chunks.
  ManifestData md;
  {
    std::size_t ji = 0;
    for (const auto& [sec_name, data] : snap.sections()) {
      ManifestData::Section sec;
      sec.name = sec_name;
      sec.raw_len = data.size();
      const std::uint64_t nchunks =
          data.empty() ? 0
                       : (data.size() + opt_.chunk_bytes - 1) / opt_.chunk_bytes;
      for (std::uint64_t c = 0; c < nchunks; ++c, ++ji)
        sec.refs.push_back(jobs[ji].key);
      md.sections.push_back(std::move(sec));
    }
  }
  const std::vector<std::uint8_t> mbytes = encode_manifest(md);
  const std::string mpath = manifest_path(name);
  if (!write_whole_file(mpath + ".tmp", mbytes) ||
      std::rename((mpath + ".tmp").c_str(), mpath.c_str()) != 0) {
    res.status = {ErrKind::Io, "cannot write manifest " + mpath};
    return res;
  }

  // Reference accounting: the new manifest pins its chunks, the replaced
  // manifest (if any) lets go of its own — in that order, so shared chunks
  // never dip to zero in between.
  for (Job& j : jobs) {
    auto [it, inserted] = chunks_.try_emplace(j.key);
    it->second.refs++;
    if (inserted) {
      it->second.stored_bytes = j.file.size();
      stats_.chunks_in_pool++;
      stats_.pool_stored_bytes += it->second.stored_bytes;
      stats_.pool_raw_bytes += j.key.len;
    }
  }
  if (had_old)
    retire_manifest_refs(old_manifest);
  else
    stats_.manifests++;

  res.manifest_bytes = mbytes.size();
  res.stored_bytes = new_chunk_bytes + res.manifest_bytes;
  res.duration_ns = storage.write_ns(res.stored_bytes);
  stats_.puts++;
  stats_.chunks_written += res.new_chunks;
  stats_.dedup_hits += res.dedup_hits;
  stats_.raw_bytes_in += res.raw_bytes;
  stats_.stored_bytes_written += res.stored_bytes;
  return res;
}

// ---- get --------------------------------------------------------------------

GetResult Store::get(const std::string& name, slimcr::Snapshot& out,
                     const slimcr::StorageModel& storage) {
  GetResult res;
  if (!is_open()) {
    res.status = {ErrKind::Io, "store not open"};
    return res;
  }
  ManifestData m;
  std::uint64_t mfile_bytes = 0;
  res.status = load_manifest(name, m, &mfile_bytes);
  if (!res.status.ok()) return res;
  res.bytes_read = mfile_bytes;

  // Each referenced chunk is read and verified once; repeats within the
  // snapshot come from the decoded cache (that is the dedup read win).
  std::unordered_map<ChunkKey, std::vector<std::uint8_t>, ChunkKeyHash> cache;
  auto fetch = [&](const ChunkKey& k) -> const std::vector<std::uint8_t>* {
    if (const auto it = cache.find(k); it != cache.end()) return &it->second;
    const std::string path = chunk_path(k);
    std::vector<std::uint8_t> raw;
    if (!read_whole_file(path, raw)) {
      res.status = fs::exists(path)
                       ? Status{ErrKind::Io, "cannot read pool chunk " + path}
                       : Status{ErrKind::MissingChunk,
                                "pool chunk " + path +
                                    " missing (referenced by manifest '" +
                                    sanitize(name) + "')"};
      return nullptr;
    }
    std::vector<std::uint8_t> decoded;
    res.status = decode_chunk_file(raw.data(), raw.size(), k.len, decoded, path);
    if (!res.status.ok()) return nullptr;
    res.bytes_read += raw.size();
    return &cache.emplace(k, std::move(decoded)).first->second;
  };

  slimcr::Snapshot assembled;
  for (const auto& sec : m.sections) {
    std::vector<std::uint8_t> data;
    data.reserve(static_cast<std::size_t>(sec.raw_len));
    for (const ChunkKey& k : sec.refs) {
      const std::vector<std::uint8_t>* piece = fetch(k);
      if (piece == nullptr) return res;  // typed status already set
      data.insert(data.end(), piece->begin(), piece->end());
    }
    if (data.size() != sec.raw_len) {
      res.status = {ErrKind::Corrupt,
                    "section '" + sec.name + "' reassembled to " +
                        std::to_string(data.size()) + " bytes, manifest says " +
                        std::to_string(sec.raw_len)};
      return res;
    }
    res.raw_bytes += data.size();
    assembled.set(sec.name, std::move(data));
  }
  out = std::move(assembled);
  res.duration_ns = storage.read_ns(res.bytes_read);
  stats_.gets++;
  stats_.bytes_read += res.bytes_read;
  return res;
}

// ---- remove (refcount GC) ---------------------------------------------------

Status Store::remove(const std::string& name) {
  if (!is_open()) return {ErrKind::Io, "store not open"};
  ManifestData m;
  const Status st = load_manifest(name, m, nullptr);
  if (!st.ok()) return st;
  std::error_code ec;
  fs::remove(manifest_path(name), ec);
  if (ec) return {ErrKind::Io, "cannot remove manifest " + manifest_path(name)};
  stats_.manifests--;
  retire_manifest_refs(m);
  return {};
}

// ---- streaming manifests (live pre-copy) ------------------------------------

std::unique_ptr<ManifestSession> Store::begin(const std::string& name) {
  if (!is_open()) return nullptr;
  return std::unique_ptr<ManifestSession>(new OpenManifest(this, name));
}

OpenManifest::~OpenManifest() { abort(); }

OpenManifest::Section& OpenManifest::section(const std::string& name) {
  for (auto& s : sections_)
    if (s.name == name) return s;
  sections_.push_back(Section{name, {}, {}, {}});
  return sections_.back();
}

ChunkResult OpenManifest::put_chunk(const std::string& sec_name,
                                    std::size_t chunk_idx,
                                    const std::uint8_t* data, std::size_t len,
                                    const slimcr::StorageModel& storage) {
  ChunkResult res;
  if (sealed_ || aborted_) {
    res.status = {ErrKind::Io, "manifest session already closed"};
    return res;
  }
  ChunkKey key{hash64(data, len), len, 0};
  if (!store_->opt_.dedup) key.uniq = ++store_->uniq_counter_;
  bool hit = false;
  std::uint64_t stored = 0;
  res.status = store_->pin_chunk(key, data, len, &hit, &stored);
  if (!res.status.ok()) return res;
  Section& sec = section(sec_name);
  if (chunk_idx >= sec.keys.size()) {
    sec.keys.resize(chunk_idx + 1);
    sec.lens.resize(chunk_idx + 1, 0);
    sec.filled.resize(chunk_idx + 1, 0);
  }
  if (sec.filled[chunk_idx] != 0) {
    // Re-stream of a slot a later round found dirty again: drop the replaced
    // pin now so an unsealed session never holds dead references.
    raw_bytes_ -= sec.lens[chunk_idx];
    store_->release_ref(sec.keys[chunk_idx]);
  }
  sec.keys[chunk_idx] = key;
  sec.lens[chunk_idx] = len;
  sec.filled[chunk_idx] = 1;
  res.dedup_hit = hit;
  res.stored_bytes = stored;
  res.duration_ns = storage.write_ns(stored);
  raw_bytes_ += len;
  stored_bytes_ += stored;
  if (hit) {
    dedup_hits_++;
    store_->stats_.dedup_hits++;
  } else {
    new_chunks_++;
    store_->stats_.chunks_written++;
  }
  store_->stats_.raw_bytes_in += len;
  store_->stats_.stored_bytes_written += stored;
  return res;
}

ChunkResult OpenManifest::put_section(const std::string& sec_name,
                                      const std::uint8_t* data, std::size_t len,
                                      const slimcr::StorageModel& storage) {
  ChunkResult total;
  if (sealed_ || aborted_) {
    total.status = {ErrKind::Io, "manifest session already closed"};
    return total;
  }
  // Whole-section semantics: replace anything streamed under this name so a
  // re-put cannot leave stale trailing slots in the manifest.
  Section& sec = section(sec_name);
  for (std::size_t i = 0; i < sec.keys.size(); ++i) {
    if (sec.filled[i] != 0) {
      raw_bytes_ -= sec.lens[i];
      store_->release_ref(sec.keys[i]);
    }
  }
  sec.keys.clear();
  sec.lens.clear();
  sec.filled.clear();
  const std::size_t cb = store_->opt_.chunk_bytes;
  for (std::size_t off = 0, idx = 0; off < len; off += cb, ++idx) {
    const ChunkResult r =
        put_chunk(sec_name, idx, data + off, std::min(cb, len - off), storage);
    if (!r.status.ok()) {
      total.status = r.status;
      return total;
    }
    total.stored_bytes += r.stored_bytes;
    total.duration_ns += r.duration_ns;
  }
  return total;
}

PutResult OpenManifest::seal(const slimcr::StorageModel& storage) {
  PutResult res;
  if (sealed_ || aborted_) {
    res.status = {ErrKind::Io, "manifest session already closed"};
    return res;
  }
  for (const auto& sec : sections_) {
    for (std::size_t i = 0; i < sec.filled.size(); ++i) {
      if (sec.filled[i] == 0) {
        res.status = {ErrKind::Corrupt, "section '" + sec.name + "' slot " +
                                            std::to_string(i) +
                                            " never streamed"};
        return res;
      }
    }
  }
  ManifestData old_manifest;
  const bool had_old =
      store_->load_manifest(name_, old_manifest, nullptr).ok();

  // Same byte layout as Store::put() writes, so load_manifest()/get() serve
  // sealed streams and batch puts identically.
  ManifestData md;
  for (const auto& sec : sections_) {
    ManifestData::Section out;
    out.name = sec.name;
    for (const std::uint64_t l : sec.lens) out.raw_len += l;
    out.refs = sec.keys;
    md.sections.push_back(std::move(out));
  }
  const std::vector<std::uint8_t> mbytes = encode_manifest(md);
  const std::string mpath = store_->manifest_path(name_);
  if (!write_whole_file(mpath + ".tmp", mbytes) ||
      std::rename((mpath + ".tmp").c_str(), mpath.c_str()) != 0) {
    // The session stays open: the caller may retry seal() or abort(), and the
    // previous manifest of this name is still intact either way.
    res.status = {ErrKind::Io, "cannot write manifest " + mpath};
    return res;
  }
  // The provisional pins ARE the new manifest's references — nothing to
  // transfer.  The replaced manifest (if any) lets go of its own only now,
  // so shared chunks never dip to zero in between.
  if (had_old)
    store_->retire_manifest_refs(old_manifest);
  else
    store_->stats_.manifests++;
  sealed_ = true;

  res.raw_bytes = raw_bytes_;
  res.new_chunks = new_chunks_;
  res.dedup_hits = dedup_hits_;
  res.manifest_bytes = mbytes.size();
  res.stored_bytes = stored_bytes_ + res.manifest_bytes;
  res.duration_ns = storage.write_ns(res.manifest_bytes);
  store_->stats_.puts++;
  store_->stats_.stored_bytes_written += res.manifest_bytes;
  return res;
}

void OpenManifest::abort() {
  if (sealed_ || aborted_) return;
  for (const auto& sec : sections_) {
    for (std::size_t i = 0; i < sec.keys.size(); ++i)
      if (sec.filled[i] != 0) store_->release_ref(sec.keys[i]);
  }
  sections_.clear();
  aborted_ = true;
}

bool Store::contains(const std::string& name) const {
  return is_open() && fs::exists(manifest_path(name));
}

std::vector<std::string> Store::manifest_names() const {
  std::vector<std::string> out;
  if (!is_open()) return out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(root_ + "/manifests", ec)) {
    if (!e.is_regular_file()) continue;
    const std::string fname = e.path().filename().string();
    constexpr std::string_view kSuffix = ".manifest";
    if (fname.size() > kSuffix.size() &&
        fname.substr(fname.size() - kSuffix.size()) == kSuffix)
      out.push_back(fname.substr(0, fname.size() - kSuffix.size()));
  }
  return out;
}

}  // namespace snapstore
