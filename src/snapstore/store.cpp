#include "snapstore/store.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <thread>

#include "chaoskit/chaoskit.h"

namespace snapstore {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestMagic[8] = {'S', 'N', 'A', 'P', 'M', 'A', 'N', '1'};
constexpr char kChunkMagic[8] = {'S', 'N', 'A', 'P', 'C', 'H', 'K', '1'};
constexpr std::uint32_t kManifestVersion = 1;
// chunk file header: magic + codec u8 + raw_len u64 + comp_len u64 + crc u32
constexpr std::size_t kChunkHeaderBytes = 8 + 1 + 8 + 8 + 4;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// ---- little helpers over byte buffers --------------------------------------

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}
void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof v);
}

struct ByteReader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;
  bool ok = true;

  template <typename T>
  T get() noexcept {
    T v{};
    if (pos + sizeof v > n) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p + pos, sizeof v);
    pos += sizeof v;
    return v;
  }
  bool get_bytes(void* dst, std::size_t len) noexcept {
    if (pos + len > n) return ok = false;
    std::memcpy(dst, p + pos, len);
    pos += len;
    return true;
  }
};

// Manifest names double as filenames; anything unsafe maps to '_'.
std::string sanitize(const std::string& name) {
  std::string out = name.empty() ? "_" : name;
  for (char& c : out) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!safe) c = '_';
  }
  return out;
}

bool read_whole_file(const std::string& path, std::vector<std::uint8_t>& out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;
  std::fseek(f.get(), 0, SEEK_END);
  const long sz = std::ftell(f.get());
  if (sz < 0) return false;
  std::fseek(f.get(), 0, SEEK_SET);
  out.resize(static_cast<std::size_t>(sz));
  return out.empty() ||
         std::fread(out.data(), out.size(), 1, f.get()) == 1;
}

bool write_whole_file(const std::string& path,
                      std::span<const std::uint8_t> a,
                      std::span<const std::uint8_t> b = {}) {
  // The choke point every pool chunk and manifest goes through — and so the
  // one place storage faults are injected: ENOSPC (the write fails), a torn
  // write (a prefix persists but the call "succeeds"), and silent corruption
  // (one byte flipped on the way down).  Reads must catch all three.
  auto& chaos = chaoskit::Engine::instance();
  if (chaos.should_fire(chaoskit::Site::StoreEnospc)) return false;
  const bool torn = chaos.should_fire(chaoskit::Site::StoreTornWrite);
  const bool flip = chaos.should_fire(chaoskit::Site::StoreBitFlip);
  if (torn || flip) {
    std::vector<std::uint8_t> all(a.begin(), a.end());
    all.insert(all.end(), b.begin(), b.end());
    if (flip && !all.empty())
      all[static_cast<std::size_t>(chaos.arg()) % all.size()] ^= 0x20;
    if (torn) all.resize(all.size() / 2);
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (f == nullptr) return false;
    if (!all.empty()) std::fwrite(all.data(), all.size(), 1, f.get());
    std::fflush(f.get());
    return true;  // the layer above believes this write landed intact
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;
  if (!a.empty() && std::fwrite(a.data(), a.size(), 1, f.get()) != 1) return false;
  if (!b.empty() && std::fwrite(b.data(), b.size(), 1, f.get()) != 1) return false;
  return std::fflush(f.get()) == 0;
}

// Runs fn(0..njobs) across up to `workers` threads (inline when it isn't
// worth spawning).  Workers touch disjoint job slots only.
void parallel_for(std::size_t njobs, unsigned workers,
                  const std::function<void(std::size_t)>& fn) {
  if (workers <= 1 || njobs <= 1) {
    for (std::size_t i = 0; i < njobs; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < njobs; i = next.fetch_add(1))
      fn(i);
  };
  const unsigned nthreads =
      static_cast<unsigned>(std::min<std::size_t>(workers, njobs)) - 1;
  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) pool.emplace_back(drain);
  drain();  // the caller is a worker too
  for (auto& t : pool) t.join();
}

}  // namespace

const char* errkind_name(ErrKind k) noexcept {
  switch (k) {
    case ErrKind::None: return "none";
    case ErrKind::Io: return "io";
    case ErrKind::BadMagic: return "bad-magic";
    case ErrKind::BadVersion: return "bad-version";
    case ErrKind::Truncated: return "truncated";
    case ErrKind::Corrupt: return "corrupt";
    case ErrKind::MissingManifest: return "missing-manifest";
    case ErrKind::MissingChunk: return "missing-chunk";
  }
  return "unknown";
}

// ---- manifest layout --------------------------------------------------------

struct Store::Manifest {
  struct Section {
    std::string name;
    std::uint64_t raw_len = 0;
    std::vector<ChunkKey> refs;
  };
  std::vector<Section> sections;
};

std::string Store::chunk_path(const ChunkKey& k) const {
  char buf[64];
  if (k.uniq == 0) {
    std::snprintf(buf, sizeof buf, "%016llx-%llu.chk",
                  static_cast<unsigned long long>(k.hash),
                  static_cast<unsigned long long>(k.len));
  } else {
    std::snprintf(buf, sizeof buf, "%016llx-%llu-u%u.chk",
                  static_cast<unsigned long long>(k.hash),
                  static_cast<unsigned long long>(k.len), k.uniq);
  }
  return root_ + "/chunks/" + buf;
}

std::string Store::manifest_path(const std::string& name) const {
  return root_ + "/manifests/" + sanitize(name) + ".manifest";
}

Status Store::load_manifest(const std::string& name, Manifest& out,
                            std::uint64_t* file_bytes) const {
  const std::string path = manifest_path(name);
  std::vector<std::uint8_t> raw;
  if (!read_whole_file(path, raw)) {
    if (!fs::exists(path))
      return {ErrKind::MissingManifest,
              "snapshot manifest '" + sanitize(name) + "' not in store " + root_};
    return {ErrKind::Io, "cannot read manifest " + path};
  }
  if (file_bytes != nullptr) *file_bytes = raw.size();
  if (raw.size() < sizeof kManifestMagic + 8 ||
      std::memcmp(raw.data(), kManifestMagic, sizeof kManifestMagic) != 0)
    return {ErrKind::BadMagic, path + " is not a snapstore manifest"};
  // trailing CRC covers everything between magic and itself
  std::uint32_t want_crc = 0;
  std::memcpy(&want_crc, raw.data() + raw.size() - 4, 4);
  const std::uint32_t got_crc =
      slimcr::crc32(raw.data() + sizeof kManifestMagic,
                    raw.size() - sizeof kManifestMagic - 4);
  if (want_crc != got_crc)
    return {ErrKind::Corrupt, "manifest CRC mismatch in " + path};
  ByteReader r{raw.data() + sizeof kManifestMagic,
               raw.size() - sizeof kManifestMagic - 4};
  if (const std::uint32_t v = r.get<std::uint32_t>(); v != kManifestVersion)
    return {ErrKind::BadVersion,
            "manifest version " + std::to_string(v) + " unsupported in " + path};
  const std::uint64_t nsections = r.get<std::uint64_t>();
  Manifest m;
  for (std::uint64_t s = 0; s < nsections && r.ok; ++s) {
    Manifest::Section sec;
    const std::uint64_t name_len = r.get<std::uint64_t>();
    if (!r.ok || name_len > (1u << 20)) break;
    sec.name.resize(name_len);
    if (name_len != 0 && !r.get_bytes(sec.name.data(), name_len)) break;
    sec.raw_len = r.get<std::uint64_t>();
    const std::uint64_t nchunks = r.get<std::uint64_t>();
    if (!r.ok || nchunks > (1ull << 32)) break;
    sec.refs.reserve(static_cast<std::size_t>(nchunks));
    for (std::uint64_t c = 0; c < nchunks && r.ok; ++c) {
      ChunkKey k;
      k.hash = r.get<std::uint64_t>();
      k.len = r.get<std::uint64_t>();
      k.uniq = r.get<std::uint32_t>();
      sec.refs.push_back(k);
    }
    m.sections.push_back(std::move(sec));
  }
  if (!r.ok || m.sections.size() != nsections || r.pos != r.n)
    return {ErrKind::Corrupt, "malformed manifest structure in " + path};
  out = std::move(m);
  return {};
}

void Store::retire_manifest_refs(const Manifest& m) {
  for (const auto& sec : m.sections) {
    for (const ChunkKey& k : sec.refs) {
      const auto it = chunks_.find(k);
      if (it == chunks_.end()) continue;
      if (--it->second.refs == 0) {
        std::error_code ec;
        fs::remove(chunk_path(k), ec);
        stats_.chunks_in_pool--;
        stats_.pool_stored_bytes -= it->second.stored_bytes;
        stats_.pool_raw_bytes -= k.len;
        chunks_.erase(it);
      }
    }
  }
}

// ---- open -------------------------------------------------------------------

Status Store::open(const std::string& root, const Options& opt) {
  root_.clear();
  opt_ = opt;
  if (opt_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opt_.workers = hw == 0 ? 1 : std::min(hw, 4u);
  }
  if (!opt_.async) opt_.workers = 1;
  if (opt_.chunk_bytes == 0) opt_.chunk_bytes = 64 * 1024;
  if (codec_for(opt_.codec) == nullptr)
    return {ErrKind::Io, "unknown codec id"};
  std::error_code ec;
  fs::create_directories(root + "/chunks", ec);
  if (ec) return {ErrKind::Io, "cannot create " + root + "/chunks: " + ec.message()};
  fs::create_directories(root + "/manifests", ec);
  if (ec)
    return {ErrKind::Io, "cannot create " + root + "/manifests: " + ec.message()};
  root_ = root;
  chunks_.clear();
  stats_ = {};
  uniq_counter_ = 0;

  // Rebuild refcounts from the manifests on disk; unreadable manifests are
  // skipped (their chunks become unreferenced and a fresh put overwrites
  // them), so a half-written store never blocks reopening.
  for (const auto& e : fs::directory_iterator(root_ + "/manifests", ec)) {
    if (!e.is_regular_file()) continue;
    const std::string fname = e.path().filename().string();
    constexpr std::string_view kSuffix = ".manifest";
    if (fname.size() <= kSuffix.size() ||
        fname.substr(fname.size() - kSuffix.size()) != kSuffix)
      continue;
    const std::string name = fname.substr(0, fname.size() - kSuffix.size());
    Manifest m;
    if (!load_manifest(name, m, nullptr).ok()) continue;
    stats_.manifests++;
    for (const auto& sec : m.sections) {
      for (const ChunkKey& k : sec.refs) {
        uniq_counter_ = std::max(uniq_counter_, k.uniq);
        auto [it, inserted] = chunks_.try_emplace(k);
        it->second.refs++;
        if (inserted) {
          std::error_code sec_ec;
          const auto sz = fs::file_size(chunk_path(k), sec_ec);
          it->second.stored_bytes = sec_ec ? 0 : sz;
          stats_.chunks_in_pool++;
          stats_.pool_stored_bytes += it->second.stored_bytes;
          stats_.pool_raw_bytes += k.len;
        }
      }
    }
  }
  return {};
}

// ---- put --------------------------------------------------------------------

PutResult Store::put(const std::string& name, const slimcr::Snapshot& snap,
                     const slimcr::StorageModel& storage) {
  PutResult res;
  if (!is_open()) {
    res.status = {ErrKind::Io, "store not open"};
    return res;
  }

  // Overwrite semantics: remember the old manifest's references now, retire
  // them only after the replacement committed (its clean chunks must stay
  // dedup-able and crash-safe throughout).
  Manifest old_manifest;
  const bool had_old = load_manifest(name, old_manifest, nullptr).ok();

  struct Job {
    const std::uint8_t* data;
    std::size_t len;
    ChunkKey key;
    bool is_new = false;
    CodecId used = CodecId::Identity;
    std::vector<std::uint8_t> encoded;  // empty when used == Identity
    std::uint32_t crc = 0;              // of the payload as stored
  };
  std::vector<Job> jobs;
  for (const auto& [sec_name, data] : snap.sections()) {
    for (std::size_t off = 0; off < data.size(); off += opt_.chunk_bytes) {
      Job j;
      j.data = data.data() + off;
      j.len = std::min(opt_.chunk_bytes, data.size() - off);
      jobs.push_back(j);
      res.raw_bytes += j.len;
    }
  }

  // Pipeline stage 1 (parallel): content hashes.
  parallel_for(jobs.size(), opt_.workers, [&](std::size_t i) {
    jobs[i].key = {hash64(jobs[i].data, jobs[i].len), jobs[i].len, 0};
  });

  // Stage 2 (ordered): dedup resolution against the pool and this put.
  std::unordered_map<ChunkKey, std::uint8_t, ChunkKeyHash> seen_in_put;
  for (Job& j : jobs) {
    if (!opt_.dedup) {
      j.key.uniq = ++uniq_counter_;
      j.is_new = true;
      continue;
    }
    if (chunks_.count(j.key) != 0 || seen_in_put.count(j.key) != 0) {
      res.dedup_hits++;
    } else {
      j.is_new = true;
      seen_in_put.emplace(j.key, 0);
    }
  }

  // Stage 3 (parallel): compress new chunks; fall back to Identity storage
  // whenever the codec fails to shrink.
  const Codec* codec = codec_for(opt_.codec);
  parallel_for(jobs.size(), opt_.workers, [&](std::size_t i) {
    Job& j = jobs[i];
    if (!j.is_new) return;
    if (codec->id() != CodecId::Identity) {
      std::vector<std::uint8_t> enc =
          codec->compress({j.data, j.len});
      if (enc.size() < j.len) {
        j.used = codec->id();
        j.encoded = std::move(enc);
      }
    }
    j.crc = j.used == CodecId::Identity
                ? slimcr::crc32(j.data, j.len)
                : slimcr::crc32(j.encoded.data(), j.encoded.size());
  });

  // Stage 4 (ordered commit): chunk files in submission order, then the
  // manifest.  Only now do refcounts and pool stats change.
  std::uint64_t new_chunk_bytes = 0;
  std::vector<std::uint64_t> job_file_bytes(jobs.size(), 0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Job& j = jobs[i];
    if (!j.is_new) continue;
    const std::uint64_t comp_len =
        j.used == CodecId::Identity ? j.len : j.encoded.size();
    std::vector<std::uint8_t> header;
    header.reserve(kChunkHeaderBytes);
    header.insert(header.end(), kChunkMagic, kChunkMagic + sizeof kChunkMagic);
    header.push_back(static_cast<std::uint8_t>(j.used));
    put_u64(header, j.len);
    put_u64(header, comp_len);
    put_u32(header, j.crc);
    const std::span<const std::uint8_t> payload =
        j.used == CodecId::Identity
            ? std::span<const std::uint8_t>{j.data, j.len}
            : std::span<const std::uint8_t>{j.encoded};
    const std::string path = chunk_path(j.key);
    if (!write_whole_file(path, header, payload)) {
      res.status = {ErrKind::Io, "cannot write pool chunk " + path};
      return res;
    }
    job_file_bytes[i] = header.size() + payload.size();
    new_chunk_bytes += job_file_bytes[i];
    res.new_chunks++;
  }

  // Manifest: sections in snapshot order, each referencing its chunks.
  std::vector<std::uint8_t> mbytes;
  mbytes.insert(mbytes.end(), kManifestMagic,
                kManifestMagic + sizeof kManifestMagic);
  put_u32(mbytes, kManifestVersion);
  put_u64(mbytes, snap.sections().size());
  {
    std::size_t ji = 0;
    for (const auto& [sec_name, data] : snap.sections()) {
      put_u64(mbytes, sec_name.size());
      mbytes.insert(mbytes.end(), sec_name.begin(), sec_name.end());
      put_u64(mbytes, data.size());
      const std::uint64_t nchunks =
          data.empty() ? 0
                       : (data.size() + opt_.chunk_bytes - 1) / opt_.chunk_bytes;
      put_u64(mbytes, nchunks);
      for (std::uint64_t c = 0; c < nchunks; ++c, ++ji) {
        put_u64(mbytes, jobs[ji].key.hash);
        put_u64(mbytes, jobs[ji].key.len);
        put_u32(mbytes, jobs[ji].key.uniq);
      }
    }
  }
  put_u32(mbytes, slimcr::crc32(mbytes.data() + sizeof kManifestMagic,
                                mbytes.size() - sizeof kManifestMagic));
  const std::string mpath = manifest_path(name);
  if (!write_whole_file(mpath + ".tmp", mbytes) ||
      std::rename((mpath + ".tmp").c_str(), mpath.c_str()) != 0) {
    res.status = {ErrKind::Io, "cannot write manifest " + mpath};
    return res;
  }

  // Reference accounting: the new manifest pins its chunks, the replaced
  // manifest (if any) lets go of its own — in that order, so shared chunks
  // never dip to zero in between.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto [it, inserted] = chunks_.try_emplace(jobs[i].key);
    it->second.refs++;
    if (inserted) {
      it->second.stored_bytes = job_file_bytes[i];
      stats_.chunks_in_pool++;
      stats_.pool_stored_bytes += it->second.stored_bytes;
      stats_.pool_raw_bytes += jobs[i].key.len;
    }
  }
  if (had_old)
    retire_manifest_refs(old_manifest);
  else
    stats_.manifests++;

  res.manifest_bytes = mbytes.size();
  res.stored_bytes = new_chunk_bytes + res.manifest_bytes;
  res.duration_ns = storage.write_ns(res.stored_bytes);
  stats_.puts++;
  stats_.chunks_written += res.new_chunks;
  stats_.dedup_hits += res.dedup_hits;
  stats_.raw_bytes_in += res.raw_bytes;
  stats_.stored_bytes_written += res.stored_bytes;
  return res;
}

// ---- get --------------------------------------------------------------------

GetResult Store::get(const std::string& name, slimcr::Snapshot& out,
                     const slimcr::StorageModel& storage) {
  GetResult res;
  if (!is_open()) {
    res.status = {ErrKind::Io, "store not open"};
    return res;
  }
  Manifest m;
  std::uint64_t mfile_bytes = 0;
  res.status = load_manifest(name, m, &mfile_bytes);
  if (!res.status.ok()) return res;
  res.bytes_read = mfile_bytes;

  // Each referenced chunk is read and verified once; repeats within the
  // snapshot come from the decoded cache (that is the dedup read win).
  std::unordered_map<ChunkKey, std::vector<std::uint8_t>, ChunkKeyHash> cache;
  auto fetch = [&](const ChunkKey& k) -> const std::vector<std::uint8_t>* {
    if (const auto it = cache.find(k); it != cache.end()) return &it->second;
    const std::string path = chunk_path(k);
    std::vector<std::uint8_t> raw;
    if (!read_whole_file(path, raw)) {
      res.status = fs::exists(path)
                       ? Status{ErrKind::Io, "cannot read pool chunk " + path}
                       : Status{ErrKind::MissingChunk,
                                "pool chunk " + path +
                                    " missing (referenced by manifest '" +
                                    sanitize(name) + "')"};
      return nullptr;
    }
    if (raw.size() < kChunkHeaderBytes ||
        std::memcmp(raw.data(), kChunkMagic, sizeof kChunkMagic) != 0) {
      res.status = {ErrKind::BadMagic, path + " is not a snapstore chunk"};
      return nullptr;
    }
    ByteReader r{raw.data() + sizeof kChunkMagic,
                 raw.size() - sizeof kChunkMagic};
    const auto codec_id = static_cast<CodecId>(r.get<std::uint8_t>());
    const std::uint64_t raw_len = r.get<std::uint64_t>();
    const std::uint64_t comp_len = r.get<std::uint64_t>();
    const std::uint32_t want_crc = r.get<std::uint32_t>();
    if (raw_len != k.len) {
      res.status = {ErrKind::Corrupt, "chunk header length mismatch in " + path};
      return nullptr;
    }
    if (raw.size() != kChunkHeaderBytes + comp_len) {
      res.status = {ErrKind::Truncated, "pool chunk truncated: " + path};
      return nullptr;
    }
    const std::uint8_t* payload = raw.data() + kChunkHeaderBytes;
    if (slimcr::crc32(payload, static_cast<std::size_t>(comp_len)) != want_crc) {
      res.status = {ErrKind::Corrupt, "chunk CRC mismatch in " + path};
      return nullptr;
    }
    const Codec* codec = codec_for(codec_id);
    std::vector<std::uint8_t> decoded;
    if (codec == nullptr ||
        !codec->decompress({payload, static_cast<std::size_t>(comp_len)},
                           static_cast<std::size_t>(raw_len), decoded)) {
      res.status = {ErrKind::Corrupt, "chunk payload undecodable in " + path};
      return nullptr;
    }
    res.bytes_read += raw.size();
    return &cache.emplace(k, std::move(decoded)).first->second;
  };

  slimcr::Snapshot assembled;
  for (const auto& sec : m.sections) {
    std::vector<std::uint8_t> data;
    data.reserve(static_cast<std::size_t>(sec.raw_len));
    for (const ChunkKey& k : sec.refs) {
      const std::vector<std::uint8_t>* piece = fetch(k);
      if (piece == nullptr) return res;  // typed status already set
      data.insert(data.end(), piece->begin(), piece->end());
    }
    if (data.size() != sec.raw_len) {
      res.status = {ErrKind::Corrupt,
                    "section '" + sec.name + "' reassembled to " +
                        std::to_string(data.size()) + " bytes, manifest says " +
                        std::to_string(sec.raw_len)};
      return res;
    }
    res.raw_bytes += data.size();
    assembled.set(sec.name, std::move(data));
  }
  out = std::move(assembled);
  res.duration_ns = storage.read_ns(res.bytes_read);
  stats_.gets++;
  stats_.bytes_read += res.bytes_read;
  return res;
}

// ---- remove (refcount GC) ---------------------------------------------------

Status Store::remove(const std::string& name) {
  if (!is_open()) return {ErrKind::Io, "store not open"};
  Manifest m;
  const Status st = load_manifest(name, m, nullptr);
  if (!st.ok()) return st;
  std::error_code ec;
  fs::remove(manifest_path(name), ec);
  if (ec) return {ErrKind::Io, "cannot remove manifest " + manifest_path(name)};
  stats_.manifests--;
  retire_manifest_refs(m);
  return {};
}

bool Store::contains(const std::string& name) const {
  return is_open() && fs::exists(manifest_path(name));
}

std::vector<std::string> Store::manifest_names() const {
  std::vector<std::string> out;
  if (!is_open()) return out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(root_ + "/manifests", ec)) {
    if (!e.is_regular_file()) continue;
    const std::string fname = e.path().filename().string();
    constexpr std::string_view kSuffix = ".manifest";
    if (fname.size() > kSuffix.size() &&
        fname.substr(fname.size() - kSuffix.size()) == kSuffix)
      out.push_back(fname.substr(0, fname.size() - kSuffix.size()));
  }
  return out;
}

}  // namespace snapstore
