// codec.h — per-chunk compression behind a small interface.
//
// Every chunk in the pool records which codec encoded it, so codecs can be
// mixed freely (the store falls back to Identity per chunk whenever a codec
// fails to shrink the data).  Decoders are defensive: they operate on
// untrusted bytes from disk and must reject malformed input instead of
// reading or writing out of bounds — the fault-injection tests corrupt chunk
// bodies on purpose.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace snapstore {

enum class CodecId : std::uint8_t {
  Identity = 0,  // stored as-is
  Rle = 1,       // PackBits-style byte run-length encoding
  Lz = 2,        // greedy LZ77, 64 KiB window, LZ4-like token stream
};

class Codec {
 public:
  virtual ~Codec() = default;
  [[nodiscard]] virtual CodecId id() const noexcept = 0;
  [[nodiscard]] virtual std::vector<std::uint8_t> compress(
      std::span<const std::uint8_t> in) const = 0;
  // Decodes `in` into exactly `raw_len` bytes; false on malformed input or a
  // length mismatch, with `out` contents unspecified.
  [[nodiscard]] virtual bool decompress(std::span<const std::uint8_t> in,
                                        std::size_t raw_len,
                                        std::vector<std::uint8_t>& out) const = 0;
};

// Static codec registry; unknown ids resolve to nullptr.
[[nodiscard]] const Codec* codec_for(CodecId id) noexcept;
[[nodiscard]] const char* codec_name(CodecId id) noexcept;
[[nodiscard]] bool parse_codec(std::string_view name, CodecId& out) noexcept;

}  // namespace snapstore
