// store.h — snapstore: a content-addressed, chunked, deduplicating
// checkpoint store.
//
// Layout under one root directory:
//
//   <root>/chunks/<hash16hex>-<rawlen>[-u<serial>].chk   the chunk pool
//   <root>/manifests/<name>.manifest                      one per snapshot
//
// A snapshot (slimcr::Snapshot — named byte sections) is split into
// fixed-size chunks; each chunk is hashed (chunk.h), compressed (codec.h)
// and written into the pool exactly once — a later snapshot that contains
// the same bytes references the existing chunk instead of rewriting it, so
// successive checkpoints of the same workload pay only for what changed
// (this subsumes the incremental-checkpoint chain: every manifest is
// self-contained, there is no base to lose).  A manifest is a small file of
// chunk references; deleting one decrements the refcount of every chunk it
// references and unlinks chunks that reach zero — garbage collection is
// refcount-based manifest deletion, never chain tracking.
//
// Writes run through an async pipeline (hashing and compression fan out to
// worker threads; commits stay in submission order) and the simulated I/O
// clock is charged through the caller's StorageModel for the *post-dedup,
// post-compression* bytes only — bytes-on-storage is the paper's Figure 5
// lever, and the store's whole point is shrinking it.  Reads verify every
// chunk (header, CRC, decoded length) and every manifest (magic, version,
// CRC) and return a typed Status instead of partially-filled snapshots.
//
// Two backends implement the same StoreIface/ManifestSession contract: the
// local single-directory Store below, and the sharded, replicated network
// store (shard.h) that places the same chunk/manifest bytes across N
// checl_snapd daemons.  The checkpoint engine talks to the interface only,
// so live and stop-the-world checkpoints work unchanged over either.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "slimcr/snapshot.h"
#include "snapstore/chunk.h"
#include "snapstore/codec.h"
#include "snapstore/format.h"

namespace snapstore {

struct Options {
  std::size_t chunk_bytes = 64 * 1024;
  CodecId codec = CodecId::Lz;
  bool dedup = true;   // off: every chunk gets a unique pool entry (ablation)
  bool async = true;   // off: hash/compress inline on the caller thread
  unsigned workers = 0;  // 0 = auto (hardware_concurrency, clamped to [1,4])
};

struct Stats {
  // Pool-wide, kept current across put/remove (rebuilt on open()).
  std::uint64_t chunks_in_pool = 0;
  std::uint64_t pool_stored_bytes = 0;  // chunk files as written (headers incl.)
  std::uint64_t pool_raw_bytes = 0;     // sum of referenced chunks' raw lengths
  std::uint64_t manifests = 0;
  // Cumulative over this Store instance.
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t chunks_written = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t raw_bytes_in = 0;          // pre-dedup, pre-compression
  std::uint64_t stored_bytes_written = 0;  // post-dedup, post-compression
  std::uint64_t bytes_read = 0;
  // Chunk files found on open() that no readable manifest references (e.g.
  // a process that died mid-stream without abort()) — unlinked on the spot.
  std::uint64_t orphans_swept = 0;
};

struct PutResult {
  Status status;
  std::uint64_t raw_bytes = 0;      // logical snapshot payload
  std::uint64_t new_chunks = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t stored_bytes = 0;   // new chunk files + manifest — what the
                                    // storage model is charged for
  std::uint64_t manifest_bytes = 0;
  std::uint64_t duration_ns = 0;    // simulated write time for stored_bytes
};

struct GetResult {
  Status status;
  std::uint64_t raw_bytes = 0;
  std::uint64_t bytes_read = 0;     // manifest + each referenced chunk once
  std::uint64_t duration_ns = 0;    // simulated read time for bytes_read
};

// One put_chunk/put_section outcome within a streaming session.
struct ChunkResult {
  Status status;
  bool dedup_hit = false;
  std::uint64_t stored_bytes = 0;  // 0 on a dedup hit
  std::uint64_t duration_ns = 0;   // simulated write time for stored_bytes
};

// A manifest under construction: the streaming (live pre-copy) counterpart to
// StoreIface::put().  Chunks arrive one at a time over many rounds — possibly
// re-putting the same (section, index) slot when a later round finds it dirty
// again — and nothing becomes visible to get() until seal().  abort() — also
// run by the destructor if the session is still open — undoes everything this
// session added, so a failed or crashed round leaves the backend exactly as
// it was and any previous manifest of the same name untouched and restorable.
class ManifestSession {
 public:
  using ChunkResult = snapstore::ChunkResult;

  virtual ~ManifestSession() = default;

  // Stores `data` as chunk `chunk_idx` of section `section` (created on first
  // touch; slots may arrive in any order and may be overwritten).  The caller
  // owns the chunking policy; restore reassembles slots in index order.
  virtual ChunkResult put_chunk(const std::string& section,
                                std::size_t chunk_idx, const std::uint8_t* data,
                                std::size_t len,
                                const slimcr::StorageModel& storage) = 0;

  // Whole-section convenience for the stop-the-world residue phase (object
  // DB, app regions): splits `data` at the store's chunk size and streams the
  // pieces through put_chunk.
  virtual ChunkResult put_section(const std::string& section,
                                  const std::uint8_t* data, std::size_t len,
                                  const slimcr::StorageModel& storage) = 0;

  // Writes the manifest and makes the snapshot visible; retires a prior
  // manifest of the same name.  Fails (leaving the session open) if any
  // section has an unfilled slot.  PutResult aggregates the whole session;
  // duration_ns covers only the manifest write — chunk writes were already
  // charged by put_chunk.
  virtual PutResult seal(const slimcr::StorageModel& storage) = 0;

  // Releases everything this session provisionally stored.  Idempotent.
  virtual void abort() = 0;

  [[nodiscard]] virtual bool sealed() const noexcept = 0;
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;
};

// The backend contract the checkpoint engine programs against.  Implemented
// by the local Store below and by ShardedStore (shard.h).
class StoreIface {
 public:
  virtual ~StoreIface() = default;

  // Writes `snap` as manifest `name` (overwriting an existing manifest of
  // that name, with its references retired afterwards).  Only chunks absent
  // from the pool are written and charged.
  virtual PutResult put(const std::string& name, const slimcr::Snapshot& snap,
                        const slimcr::StorageModel& storage) = 0;

  // Verified read of manifest `name` into `out`; on failure `out` is left
  // untouched.
  virtual GetResult get(const std::string& name, slimcr::Snapshot& out,
                        const slimcr::StorageModel& storage) = 0;

  // Deletes a manifest and garbage-collects chunks no longer referenced.
  virtual Status remove(const std::string& name) = 0;

  // Opens a streaming manifest session.  nullptr if the store is not open.
  // One session per store at a time; interleaving with put()/remove() on the
  // same store is not supported.
  [[nodiscard]] virtual std::unique_ptr<ManifestSession> begin(
      const std::string& name) = 0;

  [[nodiscard]] virtual bool contains(const std::string& name) const = 0;
  [[nodiscard]] virtual std::vector<std::string> manifest_names() const = 0;
  [[nodiscard]] virtual bool is_open() const noexcept = 0;
  [[nodiscard]] virtual const Options& options() const noexcept = 0;
  [[nodiscard]] virtual const Stats& stats() const noexcept = 0;

  // Fan-out width of the backend: 1 for the local store, the shard-daemon
  // count for ShardedStore.  minimpi divides its per-rank aggregation charge
  // by this — ranks stripe to shards instead of funneling into one aggregate.
  [[nodiscard]] virtual unsigned shard_count() const noexcept { return 1; }
};

class Store;

// The local store's streaming session.
//
// Transactionality: each put_chunk pins a provisional reference in the pool
// (writing the chunk file if its content is new).  seal() writes the manifest
// atomically (tmp + rename) and the provisional pins simply become the
// manifest's references; abort() releases every pin and unlinks chunks that
// drop to zero references.  A hard crash that skips even the destructor
// leaves orphan chunk files, which the next Store::open() sweeps
// (Stats::orphans_swept).
class OpenManifest final : public ManifestSession {
 public:
  ~OpenManifest() override;
  OpenManifest(const OpenManifest&) = delete;
  OpenManifest& operator=(const OpenManifest&) = delete;

  ChunkResult put_chunk(const std::string& section, std::size_t chunk_idx,
                        const std::uint8_t* data, std::size_t len,
                        const slimcr::StorageModel& storage) override;
  ChunkResult put_section(const std::string& section, const std::uint8_t* data,
                          std::size_t len,
                          const slimcr::StorageModel& storage) override;
  PutResult seal(const slimcr::StorageModel& storage) override;
  void abort() override;

  [[nodiscard]] bool sealed() const noexcept override { return sealed_; }
  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }

 private:
  friend class Store;
  OpenManifest(Store* store, std::string name)
      : store_(store), name_(std::move(name)) {}

  struct Section {
    std::string name;
    std::vector<ChunkKey> keys;       // slot -> pool key
    std::vector<std::uint64_t> lens;  // slot -> raw length
    std::vector<std::uint8_t> filled;
  };
  Section& section(const std::string& name);

  Store* store_;
  std::string name_;
  std::vector<Section> sections_;  // manifest order = first-touch order
  bool sealed_ = false;
  bool aborted_ = false;
  // Session-cumulative tallies folded into seal()'s PutResult.
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t new_chunks_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t stored_bytes_ = 0;
};

class Store final : public StoreIface {
 public:
  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  // Creates the directory layout if needed and rebuilds chunk refcounts by
  // scanning the existing manifests.  A second open() rebinds the instance.
  Status open(const std::string& root, const Options& opt = {});
  [[nodiscard]] bool is_open() const noexcept override {
    return !root_.empty();
  }
  [[nodiscard]] const std::string& root() const noexcept { return root_; }
  [[nodiscard]] const Options& options() const noexcept override {
    return opt_;
  }

  PutResult put(const std::string& name, const slimcr::Snapshot& snap,
                const slimcr::StorageModel& storage) override;
  GetResult get(const std::string& name, slimcr::Snapshot& out,
                const slimcr::StorageModel& storage) override;
  Status remove(const std::string& name) override;
  [[nodiscard]] std::unique_ptr<ManifestSession> begin(
      const std::string& name) override;
  [[nodiscard]] bool contains(const std::string& name) const override;
  [[nodiscard]] std::vector<std::string> manifest_names() const override;
  [[nodiscard]] const Stats& stats() const noexcept override { return stats_; }

 private:
  friend class OpenManifest;

  struct ChunkInfo {
    std::uint32_t refs = 0;
    std::uint64_t stored_bytes = 0;  // chunk file size (0 until known)
  };

  [[nodiscard]] std::string chunk_path(const ChunkKey& k) const;
  [[nodiscard]] std::string manifest_path(const std::string& name) const;
  Status load_manifest(const std::string& name, ManifestData& out,
                       std::uint64_t* file_bytes) const;
  void retire_manifest_refs(const ManifestData& m);
  // Decrement one reference on `k`; at zero, unlink the chunk file and drop
  // the pool entry.
  void release_ref(const ChunkKey& k);
  // Compress + write one chunk file if `k` is new to the pool, then take one
  // reference on it either way.  Returns the file bytes written (0 on dedup)
  // via `stored`, and whether the content was already pooled via `hit`.
  Status pin_chunk(const ChunkKey& k, const std::uint8_t* data,
                   std::size_t len, bool* hit, std::uint64_t* stored);

  std::string root_;
  Options opt_;
  Stats stats_;
  std::unordered_map<ChunkKey, ChunkInfo, ChunkKeyHash> chunks_;
  std::uint32_t uniq_counter_ = 0;  // dedup-off serials, unique per pool
};

}  // namespace snapstore
