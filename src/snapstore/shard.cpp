#include "snapstore/shard.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "chaoskit/chaoskit.h"
#include "slimcr/snapshot.h"
#include "snapstore/parallel.h"

namespace snapstore {

namespace {

// SplitMix64 finalizer: decorrelates the ring walk from the raw FNV chunk
// hashes (which share low-entropy suffixes for small chunks).
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t key_point(const ChunkKey& k) noexcept {
  return k.hash ^ (k.len * 0x9e3779b97f4a7c15ull) ^
         (static_cast<std::uint64_t>(k.uniq) << 32);
}

// ---- the "SNAPSHD1" manifest envelope --------------------------------------
// replication factor + under-replicated key list + the embedded local-format
// SNAPMAN1 bytes, CRC'd as a unit.  What travels to (and back from) a shard.

constexpr char kShardMagic[8] = {'S', 'N', 'A', 'P', 'S', 'H', 'D', '1'};
constexpr std::uint32_t kShardVersion = 1;

std::vector<std::uint8_t> encode_envelope(
    unsigned replicas, const std::vector<ChunkKey>& under,
    const std::vector<std::uint8_t>& embedded) {
  std::vector<std::uint8_t> b;
  b.insert(b.end(), kShardMagic, kShardMagic + sizeof kShardMagic);
  put_u32(b, kShardVersion);
  put_u32(b, replicas);
  put_u32(b, static_cast<std::uint32_t>(under.size()));
  for (const ChunkKey& k : under) {
    put_u64(b, k.hash);
    put_u64(b, k.len);
    put_u32(b, k.uniq);
  }
  put_u64(b, embedded.size());
  b.insert(b.end(), embedded.begin(), embedded.end());
  put_u32(b, slimcr::crc32(b.data() + sizeof kShardMagic,
                           b.size() - sizeof kShardMagic));
  return b;
}

bool decode_envelope(const std::uint8_t* p, std::size_t n, unsigned* replicas,
                     std::vector<ChunkKey>* under,
                     std::vector<std::uint8_t>* embedded) {
  if (n < sizeof kShardMagic + 4 + 4 + 4 + 8 + 4 ||
      std::memcmp(p, kShardMagic, sizeof kShardMagic) != 0)
    return false;
  std::uint32_t want = 0;
  std::memcpy(&want, p + n - 4, 4);
  if (slimcr::crc32(p + sizeof kShardMagic, n - sizeof kShardMagic - 4) != want)
    return false;
  ByteReader r{p + sizeof kShardMagic, n - sizeof kShardMagic - 4};
  if (r.get<std::uint32_t>() != kShardVersion) return false;
  const std::uint32_t reps = r.get<std::uint32_t>();
  const std::uint32_t nunder = r.get<std::uint32_t>();
  if (!r.ok || nunder > (1u << 24)) return false;
  std::vector<ChunkKey> u;
  u.reserve(nunder);
  for (std::uint32_t i = 0; i < nunder && r.ok; ++i) {
    ChunkKey k;
    k.hash = r.get<std::uint64_t>();
    k.len = r.get<std::uint64_t>();
    k.uniq = r.get<std::uint32_t>();
    u.push_back(k);
  }
  const std::uint64_t elen = r.get<std::uint64_t>();
  if (!r.ok || r.pos + elen != r.n) return false;
  if (replicas != nullptr) *replicas = reps;
  if (under != nullptr) *under = std::move(u);
  if (embedded != nullptr) embedded->assign(r.p + r.pos, r.p + r.pos + elen);
  return true;
}

unsigned env_unsigned(const char* name, unsigned def) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const unsigned long n = std::strtoul(v, &end, 10);
  return end != nullptr && *end == '\0' && n <= 1024
             ? static_cast<unsigned>(n)
             : def;
}

}  // namespace

unsigned snap_shards_from_env() noexcept {
  return env_unsigned("CHECL_SNAP_SHARDS", 0);
}

unsigned snap_replicas_from_env() noexcept {
  const unsigned r = env_unsigned("CHECL_SNAP_REPLICAS", 2);
  return r == 0 ? 1 : r;
}

// ---- HashRing ---------------------------------------------------------------

void HashRing::build(const std::vector<std::string>& ids, unsigned vnodes) {
  points_.clear();
  nshards_ = ids.size();
  if (vnodes == 0) vnodes = 1;
  points_.reserve(ids.size() * vnodes);
  for (unsigned i = 0; i < ids.size(); ++i) {
    for (unsigned j = 0; j < vnodes; ++j) {
      // identity-derived points: the same id hashes to the same arc
      // regardless of what other shards exist — the minimal-movement lever.
      // FNV alone clusters on short near-identical labels ("shard0#1",
      // "shard0#2", …), so finish with mix64 to spread the arcs; without it
      // the balance gate (max/mean <= 1.25 at 64 vnodes) fails outright.
      const std::string label = ids[i] + "#" + std::to_string(j);
      points_.push_back(
          {mix64(hash64(reinterpret_cast<const std::uint8_t*>(label.data()),
                        label.size())),
           i});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.h != b.h ? a.h < b.h : a.shard < b.shard;
  });
}

std::vector<unsigned> HashRing::place(std::uint64_t key_hash,
                                      unsigned replicas) const {
  std::vector<unsigned> out;
  if (points_.empty()) return out;
  const unsigned want =
      std::min<unsigned>(replicas == 0 ? 1 : replicas,
                         static_cast<unsigned>(nshards_));
  const std::uint64_t h = mix64(key_hash);
  std::size_t i =
      static_cast<std::size_t>(
          std::lower_bound(points_.begin(), points_.end(), h,
                           [](const Point& p, std::uint64_t v) {
                             return p.h < v;
                           }) -
          points_.begin()) %
      points_.size();
  for (std::size_t step = 0; step < points_.size() && out.size() < want;
       ++step) {
    const unsigned s = points_[(i + step) % points_.size()].shard;
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  return out;
}

// ---- open / close -----------------------------------------------------------

ShardedStore::~ShardedStore() { close(); }

Status ShardedStore::open_common(const ShardOptions& opt) {
  opt_ = opt;
  if (opt_.store.chunk_bytes == 0) opt_.store.chunk_bytes = 64 * 1024;
  if (opt_.store.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opt_.store.workers = hw == 0 ? 1 : std::min(hw, 4u);
  }
  if (!opt_.store.async) opt_.store.workers = 1;
  if (opt_.replicas == 0) opt_.replicas = 1;
  opt_.replicas =
      std::min<unsigned>(opt_.replicas, static_cast<unsigned>(clients_.size()));
  if (opt_.vnodes < 1) opt_.vnodes = 1;
  std::vector<std::string> ids;
  ids.reserve(clients_.size());
  for (unsigned i = 0; i < clients_.size(); ++i)
    ids.push_back("shard" + std::to_string(i));
  ring_.build(ids, opt_.vnodes);
  stats_ = {};
  sstats_ = {};
  sstats_.shards = static_cast<unsigned>(clients_.size());
  sstats_.replicas = opt_.replicas;
  uniq_counter_ = 0;
  // count what is already there (reopen over a live fleet)
  stats_.manifests = manifest_names().size();
  return {};
}

Status ShardedStore::open_local(const std::string& root, unsigned nshards,
                                const ShardOptions& opt) {
  close();
  if (nshards == 0) return {ErrKind::Io, "snap_shards must be >= 1"};
  root_ = root;
  for (unsigned i = 0; i < nshards; ++i) {
    snapd::SpawnedShard s =
        snapd::spawn_snapd(root + "/shard" + std::to_string(i));
    if (!s.ok()) {
      const std::string err = s.error;
      close();
      return {ErrKind::Io, "cannot spawn shard " + std::to_string(i) + ": " +
                               err};
    }
    spawned_.push_back(s);
    auto c = std::make_unique<snapd::ShardClient>();
    if (!c->connect("127.0.0.1", s.port, "shard" + std::to_string(i))) {
      const std::string ep = c->endpoint();
      close();
      return {ErrKind::Io, "cannot connect to " + ep};
    }
    endpoints_.push_back(c->endpoint());
    clients_.push_back(std::move(c));
  }
  return open_common(opt);
}

Status ShardedStore::open_endpoints(const std::vector<std::string>& endpoints,
                                    const ShardOptions& opt) {
  close();
  for (unsigned i = 0; i < endpoints.size(); ++i) {
    const std::string& ep = endpoints[i];
    const std::size_t colon = ep.rfind(':');
    if (colon == std::string::npos)
      return {ErrKind::Io, "bad shard endpoint '" + ep + "' (want host:port)"};
    const std::string host = ep.substr(0, colon);
    const unsigned long port = std::strtoul(ep.c_str() + colon + 1, nullptr, 10);
    auto c = std::make_unique<snapd::ShardClient>();
    if (port == 0 || port > 65535 ||
        !c->connect(host, static_cast<std::uint16_t>(port),
                    "shard" + std::to_string(i))) {
      const std::string bad = c->endpoint();
      close();
      return {ErrKind::Io, "cannot connect to " + bad};
    }
    endpoints_.push_back(c->endpoint());
    clients_.push_back(std::move(c));
  }
  if (clients_.empty()) return {ErrKind::Io, "no shard endpoints given"};
  return open_common(opt);
}

void ShardedStore::close() {
  // polite stop for daemons we own, then make sure they are really gone
  for (unsigned i = 0; i < spawned_.size(); ++i) {
    if (i < clients_.size() && clients_[i] != nullptr && clients_[i]->alive())
      (void)clients_[i]->shutdown();
    snapd::kill_snapd(spawned_[i]);
  }
  spawned_.clear();
  clients_.clear();
  endpoints_.clear();
  ring_ = {};
}

std::string ShardedStore::shard_root(unsigned shard) const {
  if (shard < spawned_.size()) return spawned_[shard].root;
  return root_ + "/shard" + std::to_string(shard);
}

const std::string& ShardedStore::shard_endpoint(unsigned shard) const {
  static const std::string kNone = "shard?";
  return shard < endpoints_.size() ? endpoints_[shard] : kNone;
}

bool ShardedStore::reconnect(unsigned shard, std::uint16_t port) {
  if (shard >= clients_.size()) return false;
  const bool okc = clients_[shard]->connect("127.0.0.1", port,
                                            "shard" + std::to_string(shard));
  if (okc) endpoints_[shard] = clients_[shard]->endpoint();
  return okc;
}

snapd::ShardClient* ShardedStore::client(unsigned shard) noexcept {
  return shard < clients_.size() ? clients_[shard].get() : nullptr;
}

snapd::SpawnedShard* ShardedStore::spawned(unsigned shard) noexcept {
  return shard < spawned_.size() ? &spawned_[shard] : nullptr;
}

// ---- replication primitives -------------------------------------------------

Status ShardedStore::replicate_chunk(const ChunkKey& k,
                                     const std::uint8_t* file,
                                     std::size_t file_len, bool* dedup_hit,
                                     std::uint64_t* stored_per_replica,
                                     std::vector<ChunkKey>* under,
                                     std::mutex* under_mu,
                                     std::vector<std::uint64_t>* shard_bytes) {
  const std::vector<unsigned> reps = ring_.place(key_point(k), opt_.replicas);
  auto& chaos = chaoskit::Engine::instance();
  unsigned ok_count = 0, had_count = 0;
  std::string last_failed;
  for (const unsigned s : reps) {
    snapd::ShardClient* c = clients_[s].get();
    if (!c->alive()) {
      last_failed = c->endpoint();
      continue;
    }
    if (c->has_chunk(k) == snapd::Wire::Ok) {
      ok_count++;
      had_count++;
      continue;
    }
    if (!c->alive()) {  // has_chunk itself killed the connection
      last_failed = c->endpoint();
      continue;
    }
    snapd::Wire w;
    if (chaos.should_fire(chaoskit::Site::SnapdReplicaCorrupt) &&
        file_len != 0) {
      // ship a damaged copy to exactly THIS replica: the chunk-file CRC must
      // catch it on read and restore must fail over to a clean sibling
      std::vector<std::uint8_t> bad(file, file + file_len);
      bad[static_cast<std::size_t>(chaos.arg()) % bad.size()] ^= 0x01;
      w = c->put_chunk(k, bad.data(), bad.size());
    } else {
      w = c->put_chunk(k, file, file_len);
    }
    if (w == snapd::Wire::Ok) {
      ok_count++;
      if (under_mu != nullptr && shard_bytes != nullptr) {
        std::lock_guard<std::mutex> lk(*under_mu);
        (*shard_bytes)[s] += file_len;
      }
    } else {
      last_failed = c->endpoint();
    }
  }
  if (ok_count == 0)
    return {ErrKind::Io, "chunk lost: no live replica accepted it (last: " +
                             (last_failed.empty() ? "none" : last_failed) +
                             ")"};
  if (dedup_hit != nullptr) *dedup_hit = had_count == reps.size();
  if (stored_per_replica != nullptr)
    *stored_per_replica = had_count == reps.size() ? 0 : file_len;
  if (ok_count < reps.size() && under != nullptr) {
    std::lock_guard<std::mutex> lk(*under_mu);
    under->push_back(k);
  }
  if (ok_count < reps.size()) {
    std::lock_guard<std::mutex> lk(mu_);
    sstats_.degraded_writes += reps.size() - ok_count;
  }
  return {};
}

Status ShardedStore::fetch_chunk(const ChunkKey& k,
                                 std::vector<std::uint8_t>& raw,
                                 std::uint64_t* wire_bytes,
                                 unsigned* served_by) {
  const std::vector<unsigned> reps = ring_.place(key_point(k), opt_.replicas);
  std::string detail;
  bool failed_over = false;
  for (const unsigned s : reps) {
    snapd::ShardClient* c = clients_[s].get();
    if (!c->alive()) {
      detail += (detail.empty() ? "" : "; ") + c->endpoint() + ": dead";
      failed_over = true;
      continue;
    }
    std::vector<std::uint8_t> file;
    const snapd::Wire w = c->get_chunk(k, file);
    if (w != snapd::Wire::Ok) {
      detail += (detail.empty() ? "" : "; ") + c->endpoint() + ": " +
                snapd::wire_name(w);
      failed_over = true;
      continue;
    }
    std::vector<std::uint8_t> decoded;
    const Status st = decode_chunk_file(file.data(), file.size(), k.len,
                                        decoded, c->endpoint());
    if (!st.ok()) {
      // a corrupt replica is a routine failover, not a restore failure
      detail += (detail.empty() ? "" : "; ") + st.message;
      failed_over = true;
      continue;
    }
    raw = std::move(decoded);
    if (wire_bytes != nullptr) *wire_bytes = file.size();
    if (served_by != nullptr) *served_by = s;
    if (failed_over) {
      std::lock_guard<std::mutex> lk(mu_);
      sstats_.failovers++;
    }
    return {};
  }
  return {ErrKind::MissingChunk,
          "no replica could serve chunk: " + detail};
}

std::vector<unsigned> ShardedStore::place_name(const std::string& name,
                                               unsigned replicas) const {
  const std::string safe = sanitize(name);
  return ring_.place(
      hash64(reinterpret_cast<const std::uint8_t*>(safe.data()), safe.size()),
      replicas);
}

ShardedStore::ManifestPick ShardedStore::fetch_manifest(
    const std::string& name) const {
  ManifestPick pick;
  struct Cand {
    std::uint64_t seq;
    std::vector<std::uint8_t> payload;
    unsigned shard;
  };
  std::vector<Cand> cands;
  for (const unsigned s : place_name(name, opt_.replicas)) {
    snapd::ShardClient* c = clients_[s].get();
    if (!c->alive()) continue;
    Cand cd;
    cd.shard = s;
    if (c->get_manifest(sanitize(name), cd.seq, cd.payload) == snapd::Wire::Ok)
      cands.push_back(std::move(cd));
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.seq > b.seq; });
  for (const Cand& cd : cands) {
    unsigned reps = 0;
    std::vector<ChunkKey> under;
    std::vector<std::uint8_t> embedded;
    if (!decode_envelope(cd.payload.data(), cd.payload.size(), &reps, &under,
                         &embedded))
      continue;  // torn or corrupt replica: the next-best seq wins
    ManifestData md;
    if (!decode_manifest(embedded.data(), embedded.size(), md,
                         "manifest '" + name + "' from " +
                             clients_[cd.shard]->endpoint())
             .ok())
      continue;
    pick.seq = cd.seq;
    pick.data = std::move(md);
    pick.under = std::move(under);
    pick.found = true;
    return pick;
  }
  return pick;
}

std::uint64_t ShardedStore::next_seq(const std::string& name) const {
  std::uint64_t best = 0;
  for (const unsigned s : place_name(name, opt_.replicas)) {
    snapd::ShardClient* c = clients_[s].get();
    if (!c->alive()) continue;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload;
    if (c->get_manifest(sanitize(name), seq, payload) == snapd::Wire::Ok)
      best = std::max(best, seq);
  }
  return best + 1;
}

Status ShardedStore::publish_manifest(const std::string& name,
                                      std::uint64_t seq, const ManifestData& md,
                                      const std::vector<ChunkKey>& under) {
  const std::vector<std::uint8_t> embedded = encode_manifest(md);
  const std::vector<std::uint8_t> env =
      encode_envelope(opt_.replicas, under, embedded);
  unsigned ok_count = 0;
  std::string last_failed;
  for (const unsigned s : place_name(name, opt_.replicas)) {
    snapd::ShardClient* c = clients_[s].get();
    if (c->alive() && c->put_manifest(sanitize(name), seq, env.data(),
                                      env.size()) == snapd::Wire::Ok) {
      ok_count++;
    } else {
      last_failed = c->endpoint();
    }
  }
  if (ok_count == 0)
    return {ErrKind::Io, "manifest '" + name +
                             "' not accepted by any replica (last: " +
                             (last_failed.empty() ? "none" : last_failed) +
                             ")"};
  return {};
}

// ---- StoreIface: put --------------------------------------------------------

PutResult ShardedStore::put(const std::string& name,
                            const slimcr::Snapshot& snap,
                            const slimcr::StorageModel& storage) {
  PutResult res;
  if (!is_open()) {
    res.status = {ErrKind::Io, "sharded store not open"};
    return res;
  }
  const bool had_old = contains(name);

  struct Job {
    const std::uint8_t* data;
    std::size_t len;
    ChunkKey key;
    bool is_new = false;
    bool dedup_hit = false;
    std::uint64_t stored = 0;
    Status status;
  };
  std::vector<Job> jobs;
  for (const auto& [sec_name, data] : snap.sections()) {
    for (std::size_t off = 0; off < data.size();
         off += opt_.store.chunk_bytes) {
      Job j;
      j.data = data.data() + off;
      j.len = std::min(opt_.store.chunk_bytes, data.size() - off);
      jobs.push_back(j);
      res.raw_bytes += j.len;
    }
  }

  parallel_for(jobs.size(), opt_.store.workers, [&](std::size_t i) {
    jobs[i].key = {hash64(jobs[i].data, jobs[i].len), jobs[i].len, 0};
  });

  // in-put dedup resolution (the pool-wide check is HasChunk per replica)
  std::unordered_set<ChunkKey, ChunkKeyHash> seen_in_put;
  for (Job& j : jobs) {
    if (!opt_.store.dedup) {
      j.key.uniq = ++uniq_counter_;
      j.is_new = true;
    } else if (seen_in_put.insert(j.key).second) {
      j.is_new = true;
    } else {
      j.dedup_hit = true;
    }
  }

  // encode + fan out, one pipeline stage: each worker compresses its chunk
  // and ships the identical file bytes to every replica
  std::vector<ChunkKey> under;
  std::mutex under_mu;
  std::vector<std::uint64_t> shard_bytes(clients_.size(), 0);
  parallel_for(jobs.size(), opt_.store.workers, [&](std::size_t i) {
    Job& j = jobs[i];
    if (!j.is_new) return;
    const std::vector<std::uint8_t> file =
        encode_chunk_file(j.data, j.len, opt_.store.codec);
    j.status = replicate_chunk(j.key, file.data(), file.size(), &j.dedup_hit,
                               &j.stored, &under, &under_mu, &shard_bytes);
  });
  for (Job& j : jobs) {
    if (!j.status.ok()) {
      res.status = j.status;
      return res;
    }
    if (!j.is_new) continue;
    if (j.dedup_hit) {
      res.dedup_hits++;
    } else {
      res.new_chunks++;
      res.stored_bytes += j.stored;
    }
  }
  for (const Job& j : jobs)
    if (!j.is_new && j.dedup_hit) res.dedup_hits++;

  ManifestData md;
  {
    std::size_t ji = 0;
    for (const auto& [sec_name, data] : snap.sections()) {
      ManifestData::Section sec;
      sec.name = sec_name;
      sec.raw_len = data.size();
      const std::uint64_t nchunks =
          data.empty()
              ? 0
              : (data.size() + opt_.store.chunk_bytes - 1) /
                    opt_.store.chunk_bytes;
      for (std::uint64_t c = 0; c < nchunks; ++c, ++ji)
        sec.refs.push_back(jobs[ji].key);
      md.sections.push_back(std::move(sec));
    }
  }
  res.status = publish_manifest(name, next_seq(name), md, under);
  if (!res.status.ok()) return res;

  res.manifest_bytes = encode_manifest(md).size();
  res.stored_bytes += res.manifest_bytes;
  // Parallel fan-out: the wall clock is the SLOWEST shard's write, plus the
  // (replicated-in-parallel) manifest publish — not the sum.  This is the
  // whole reason sharding inverts the fig6 curve.
  std::uint64_t worst = 0;
  for (const std::uint64_t b : shard_bytes)
    if (b != 0) worst = std::max(worst, storage.write_ns(b));
  res.duration_ns = worst + storage.write_ns(res.manifest_bytes);

  std::lock_guard<std::mutex> lk(mu_);
  if (!had_old) stats_.manifests++;
  stats_.puts++;
  stats_.chunks_written += res.new_chunks;
  stats_.dedup_hits += res.dedup_hits;
  stats_.raw_bytes_in += res.raw_bytes;
  stats_.stored_bytes_written += res.stored_bytes;
  stats_.chunks_in_pool += res.new_chunks;
  stats_.pool_stored_bytes += res.stored_bytes - res.manifest_bytes;
  stats_.pool_raw_bytes += res.raw_bytes;
  sstats_.under_replicated += under.size();
  return res;
}

// ---- StoreIface: get --------------------------------------------------------

GetResult ShardedStore::get(const std::string& name, slimcr::Snapshot& out,
                            const slimcr::StorageModel& storage) {
  GetResult res;
  if (!is_open()) {
    res.status = {ErrKind::Io, "sharded store not open"};
    return res;
  }
  const ManifestPick pick = fetch_manifest(name);
  if (!pick.found) {
    res.status = {ErrKind::MissingManifest,
                  "snapshot manifest '" + sanitize(name) +
                      "' not reachable on any shard replica"};
    return res;
  }

  // unique keys, fetched once each, in parallel across the fleet
  std::vector<ChunkKey> keys;
  std::unordered_map<ChunkKey, std::size_t, ChunkKeyHash> key_ix;
  for (const auto& sec : pick.data.sections) {
    for (const ChunkKey& k : sec.refs) {
      if (key_ix.emplace(k, keys.size()).second) keys.push_back(k);
    }
  }
  std::vector<std::vector<std::uint8_t>> blobs(keys.size());
  std::vector<Status> errs(keys.size());
  std::vector<std::uint64_t> shard_read(clients_.size(), 0);
  std::mutex read_mu;
  parallel_for(keys.size(), opt_.store.workers, [&](std::size_t i) {
    std::uint64_t wire = 0;
    unsigned served = 0;
    errs[i] = fetch_chunk(keys[i], blobs[i], &wire, &served);
    if (errs[i].ok()) {
      std::lock_guard<std::mutex> lk(read_mu);
      shard_read[served] += wire;
      res.bytes_read += wire;
    }
  });
  for (const Status& st : errs) {
    if (!st.ok()) {
      res.status = st;
      return res;
    }
  }

  slimcr::Snapshot assembled;
  for (const auto& sec : pick.data.sections) {
    std::vector<std::uint8_t> data;
    data.reserve(static_cast<std::size_t>(sec.raw_len));
    for (const ChunkKey& k : sec.refs) {
      const auto& piece = blobs[key_ix.at(k)];
      data.insert(data.end(), piece.begin(), piece.end());
    }
    if (data.size() != sec.raw_len) {
      res.status = {ErrKind::Corrupt,
                    "section '" + sec.name + "' reassembled to " +
                        std::to_string(data.size()) + " bytes, manifest says " +
                        std::to_string(sec.raw_len)};
      return res;
    }
    res.raw_bytes += data.size();
    assembled.set(sec.name, std::move(data));
  }
  out = std::move(assembled);

  // restore fan-out: wall clock = slowest shard's share
  std::uint64_t worst = 0;
  for (const std::uint64_t b : shard_read)
    if (b != 0) worst = std::max(worst, storage.read_ns(b));
  if (worst == 0) worst = storage.read_ns(0);
  res.duration_ns = worst;

  std::lock_guard<std::mutex> lk(mu_);
  stats_.gets++;
  stats_.bytes_read += res.bytes_read;
  return res;
}

// ---- StoreIface: remove / listing ------------------------------------------

Status ShardedStore::remove(const std::string& name) {
  if (!is_open()) return {ErrKind::Io, "sharded store not open"};
  const ManifestPick pick = fetch_manifest(name);
  if (!pick.found)
    return {ErrKind::MissingManifest,
            "snapshot manifest '" + sanitize(name) + "' not in store"};
  // distributed GC: a chunk dies only when no OTHER manifest references it
  std::unordered_set<ChunkKey, ChunkKeyHash> live;
  for (const std::string& other : manifest_names()) {
    if (other == sanitize(name)) continue;
    const ManifestPick op = fetch_manifest(other);
    if (!op.found) continue;
    for (const auto& sec : op.data.sections)
      for (const ChunkKey& k : sec.refs) live.insert(k);
  }
  for (const auto& sec : pick.data.sections) {
    for (const ChunkKey& k : sec.refs) {
      if (live.count(k) != 0) continue;
      for (const unsigned s : ring_.place(key_point(k), opt_.replicas)) {
        if (clients_[s]->alive()) (void)clients_[s]->del_chunk(k);
      }
    }
  }
  unsigned gone = 0;
  for (const unsigned s : place_name(name, opt_.replicas))
    if (clients_[s]->alive() &&
        clients_[s]->del_manifest(sanitize(name)) == snapd::Wire::Ok)
      gone++;
  std::lock_guard<std::mutex> lk(mu_);
  if (stats_.manifests > 0) stats_.manifests--;
  return gone != 0 ? Status{}
                   : Status{ErrKind::Io,
                            "no replica acknowledged deleting '" + name + "'"};
}

bool ShardedStore::contains(const std::string& name) const {
  return is_open() && fetch_manifest(name).found;
}

std::vector<std::string> ShardedStore::manifest_names() const {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  for (const auto& c : clients_) {
    if (!c->alive()) continue;
    std::vector<snapd::ManifestEntry> entries;
    if (c->list_manifests(entries) != snapd::Wire::Ok) continue;
    for (const auto& e : entries)
      if (seen.insert(e.name).second) out.push_back(e.name);
  }
  return out;
}

std::uint64_t ShardedStore::under_replicated_total() const {
  std::uint64_t total = 0;
  for (const std::string& name : manifest_names()) {
    const ManifestPick pick = fetch_manifest(name);
    if (pick.found) total += pick.under.size();
  }
  return total;
}

// ---- streaming session ------------------------------------------------------

class ShardedSession final : public ManifestSession {
 public:
  ShardedSession(ShardedStore* store, std::string name)
      : store_(store), name_(std::move(name)) {}
  ~ShardedSession() override { abort(); }

  ChunkResult put_chunk(const std::string& sec_name, std::size_t chunk_idx,
                        const std::uint8_t* data, std::size_t len,
                        const slimcr::StorageModel& storage) override {
    ChunkResult res;
    if (sealed_ || aborted_) {
      res.status = {ErrKind::Io, "manifest session already closed"};
      return res;
    }
    ChunkKey key{hash64(data, len), len, 0};
    if (!store_->opt_.store.dedup) key.uniq = ++store_->uniq_counter_;
    const std::vector<std::uint8_t> file =
        encode_chunk_file(data, len, store_->opt_.store.codec);
    bool hit = false;
    std::uint64_t stored = 0;
    res.status = store_->replicate_chunk(key, file.data(), file.size(), &hit,
                                         &stored, &under_, &under_mu_, nullptr);
    if (!res.status.ok()) return res;
    if (!hit) new_keys_.push_back(key);
    Section& sec = section(sec_name);
    if (chunk_idx >= sec.keys.size()) {
      sec.keys.resize(chunk_idx + 1);
      sec.lens.resize(chunk_idx + 1, 0);
      sec.filled.resize(chunk_idx + 1, 0);
    }
    if (sec.filled[chunk_idx] != 0) raw_bytes_ -= sec.lens[chunk_idx];
    sec.keys[chunk_idx] = key;
    sec.lens[chunk_idx] = len;
    sec.filled[chunk_idx] = 1;
    res.dedup_hit = hit;
    res.stored_bytes = stored;
    res.duration_ns = storage.write_ns(stored);
    raw_bytes_ += len;
    stored_bytes_ += stored;
    std::lock_guard<std::mutex> lk(store_->mu_);
    if (hit) {
      dedup_hits_++;
      store_->stats_.dedup_hits++;
    } else {
      new_chunks_++;
      store_->stats_.chunks_written++;
    }
    store_->stats_.raw_bytes_in += len;
    store_->stats_.stored_bytes_written += stored;
    return res;
  }

  ChunkResult put_section(const std::string& sec_name, const std::uint8_t* data,
                          std::size_t len,
                          const slimcr::StorageModel& storage) override {
    ChunkResult total;
    if (sealed_ || aborted_) {
      total.status = {ErrKind::Io, "manifest session already closed"};
      return total;
    }
    Section& sec = section(sec_name);
    for (std::size_t i = 0; i < sec.keys.size(); ++i)
      if (sec.filled[i] != 0) raw_bytes_ -= sec.lens[i];
    sec.keys.clear();
    sec.lens.clear();
    sec.filled.clear();
    const std::size_t cb = store_->opt_.store.chunk_bytes;
    for (std::size_t off = 0, idx = 0; off < len; off += cb, ++idx) {
      const ChunkResult r =
          put_chunk(sec_name, idx, data + off, std::min(cb, len - off),
                    storage);
      if (!r.status.ok()) {
        total.status = r.status;
        return total;
      }
      total.stored_bytes += r.stored_bytes;
      total.duration_ns += r.duration_ns;
    }
    return total;
  }

  PutResult seal(const slimcr::StorageModel& storage) override {
    PutResult res;
    if (sealed_ || aborted_) {
      res.status = {ErrKind::Io, "manifest session already closed"};
      return res;
    }
    for (const auto& sec : sections_) {
      for (std::size_t i = 0; i < sec.filled.size(); ++i) {
        if (sec.filled[i] == 0) {
          res.status = {ErrKind::Corrupt, "section '" + sec.name + "' slot " +
                                              std::to_string(i) +
                                              " never streamed"};
          return res;
        }
      }
    }
    const bool had_old = store_->contains(name_);
    ManifestData md;
    for (const auto& sec : sections_) {
      ManifestData::Section out;
      out.name = sec.name;
      for (const std::uint64_t l : sec.lens) out.raw_len += l;
      out.refs = sec.keys;
      md.sections.push_back(std::move(out));
    }
    res.status =
        store_->publish_manifest(name_, store_->next_seq(name_), md, under_);
    if (!res.status.ok()) return res;  // session stays open: retry or abort
    sealed_ = true;
    res.raw_bytes = raw_bytes_;
    res.new_chunks = new_chunks_;
    res.dedup_hits = dedup_hits_;
    res.manifest_bytes = encode_manifest(md).size();
    res.stored_bytes = stored_bytes_ + res.manifest_bytes;
    res.duration_ns = storage.write_ns(res.manifest_bytes);
    std::lock_guard<std::mutex> lk(store_->mu_);
    if (!had_old) store_->stats_.manifests++;
    store_->stats_.puts++;
    store_->stats_.stored_bytes_written += res.manifest_bytes;
    store_->sstats_.under_replicated += under_.size();
    return res;
  }

  void abort() override {
    if (sealed_ || aborted_) return;
    // undo exactly what this session newly stored; content another manifest
    // already referenced arrived as a dedup hit and is not in new_keys_
    for (const ChunkKey& k : new_keys_) {
      for (const unsigned s :
           store_->ring_.place(key_point(k), store_->opt_.replicas)) {
        if (store_->clients_[s]->alive())
          (void)store_->clients_[s]->del_chunk(k);
      }
    }
    sections_.clear();
    new_keys_.clear();
    aborted_ = true;
  }

  [[nodiscard]] bool sealed() const noexcept override { return sealed_; }
  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }

 private:
  struct Section {
    std::string name;
    std::vector<ChunkKey> keys;
    std::vector<std::uint64_t> lens;
    std::vector<std::uint8_t> filled;
  };
  Section& section(const std::string& n) {
    for (auto& s : sections_)
      if (s.name == n) return s;
    sections_.push_back(Section{n, {}, {}, {}});
    return sections_.back();
  }

  ShardedStore* store_;
  std::string name_;
  std::vector<Section> sections_;
  std::vector<ChunkKey> new_keys_;
  std::vector<ChunkKey> under_;
  std::mutex under_mu_;
  bool sealed_ = false;
  bool aborted_ = false;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t new_chunks_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t stored_bytes_ = 0;
};

std::unique_ptr<ManifestSession> ShardedStore::begin(const std::string& name) {
  if (!is_open()) return nullptr;
  return std::make_unique<ShardedSession>(this, name);
}

// ---- repair -----------------------------------------------------------------

RepairReport ShardedStore::repair() {
  RepairReport rep;
  if (!is_open()) {
    rep.status = {ErrKind::Io, "sharded store not open"};
    return rep;
  }

  // 1. reachable manifests and the keys they reference
  struct NamedPick {
    std::string name;
    ManifestPick pick;
  };
  std::vector<NamedPick> picks;
  std::vector<ChunkKey> keys;
  std::unordered_set<ChunkKey, ChunkKeyHash> seen;
  for (const std::string& name : manifest_names()) {
    ManifestPick p = fetch_manifest(name);
    if (!p.found) {
      rep.unrecoverable++;
      continue;
    }
    for (const auto& sec : p.data.sections)
      for (const ChunkKey& k : sec.refs)
        if (seen.insert(k).second) keys.push_back(k);
    picks.push_back({name, std::move(p)});
  }

  // 2. scrub every replica of every key; re-replicate from a good copy
  std::mutex rep_mu;
  std::unordered_set<ChunkKey, ChunkKeyHash> dead_keys;
  parallel_for(keys.size(), opt_.store.workers, [&](std::size_t i) {
    const ChunkKey& k = keys[i];
    const std::vector<unsigned> reps = ring_.place(key_point(k), opt_.replicas);
    std::vector<std::uint8_t> good;       // verified chunk-file bytes
    std::vector<unsigned> bad;            // replicas needing a rewrite
    for (const unsigned s : reps) {
      snapd::ShardClient* c = clients_[s].get();
      {
        std::lock_guard<std::mutex> lk(rep_mu);
        rep.chunks_checked++;
      }
      if (!c->alive()) {
        bad.push_back(s);
        continue;
      }
      std::vector<std::uint8_t> file;
      std::vector<std::uint8_t> decoded;
      if (c->get_chunk(k, file) != snapd::Wire::Ok ||
          !decode_chunk_file(file.data(), file.size(), k.len, decoded,
                             c->endpoint())
               .ok()) {
        bad.push_back(s);
        continue;
      }
      if (good.empty()) good = std::move(file);
    }
    if (good.empty()) {
      std::lock_guard<std::mutex> lk(rep_mu);
      rep.unrecoverable++;
      dead_keys.insert(k);
      return;
    }
    for (const unsigned s : bad) {
      snapd::ShardClient* c = clients_[s].get();
      if (c->alive() &&
          c->put_chunk(k, good.data(), good.size()) == snapd::Wire::Ok) {
        std::lock_guard<std::mutex> lk(rep_mu);
        rep.replicas_restored++;
      }
    }
  });

  // 3. republish manifests whose degraded markers are now stale, or whose
  //    replicas are missing/behind (a shard revived from an old disk image)
  for (const NamedPick& np : picks) {
    bool all_keys_ok = true;
    for (const auto& sec : np.pick.data.sections)
      for (const ChunkKey& k : sec.refs)
        if (dead_keys.count(k) != 0) all_keys_ok = false;
    bool stale_replica = false;
    for (const unsigned s : place_name(np.name, opt_.replicas)) {
      snapd::ShardClient* c = clients_[s].get();
      if (!c->alive()) continue;
      std::uint64_t seq = 0;
      std::vector<std::uint8_t> payload;
      if (c->get_manifest(sanitize(np.name), seq, payload) != snapd::Wire::Ok ||
          seq < np.pick.seq) {
        stale_replica = true;
        break;
      }
    }
    if ((np.pick.under.empty() || !all_keys_ok) && !stale_replica) continue;
    const std::vector<ChunkKey> cleared;  // fully replicated again
    if (publish_manifest(np.name, np.pick.seq + 1, np.pick.data,
                         all_keys_ok ? cleared : np.pick.under)
            .ok())
      rep.manifests_rewritten++;
  }

  std::lock_guard<std::mutex> lk(mu_);
  sstats_.repaired_chunks += rep.replicas_restored;
  sstats_.repaired_manifests += rep.manifests_rewritten;
  sstats_.under_replicated = 0;
  return rep;
}

}  // namespace snapstore
