#include "proxyd/daemon.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <span>
#include <unordered_map>

#include "chaoskit/chaoskit.h"
#include "checl/cl_ext.h"
#include "checl/dispatch.h"
#include "ipc/serial.h"
#include "ipc/shm.h"
#include "proxy/server.h"
#include "simcl/runtime.h"

namespace simcl {
const checl_api::DispatchTable& dispatch_table() noexcept;
}

namespace proxyd {

namespace {

using proxy::Op;

const checl_api::DispatchTable& D() { return simcl::dispatch_table(); }

std::atomic<Daemon*> g_daemon{nullptr};

// epoll tags outside the session-id space (ids start at 1 and count up)
constexpr std::uint64_t kTagListen = ~std::uint64_t{0};
constexpr std::uint64_t kTagWake = ~std::uint64_t{0} - 1;

std::uint64_t env_u64(const char* name, std::uint64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
}

// What a session owns.  Kinds matter only for teardown ordering and the
// release entry point; validation is kind-agnostic (a forged handle of the
// right kind is still foreign).
enum class HKind : std::uint8_t {
  Context,
  Queue,
  Mem,
  Sampler,
  Program,
  Kernel,
  Event
};

struct HEntry {
  HKind kind;
  std::uint32_t refs;
  std::uint64_t mem_bytes;  // device memory charged to the client cap
};

bool retain_op(Op op, HKind& k) noexcept {
  switch (op) {
    case Op::RetainContext: k = HKind::Context; return true;
    case Op::RetainCommandQueue: k = HKind::Queue; return true;
    case Op::RetainMemObject: k = HKind::Mem; return true;
    case Op::RetainSampler: k = HKind::Sampler; return true;
    case Op::RetainProgram: k = HKind::Program; return true;
    case Op::RetainKernel: k = HKind::Kernel; return true;
    case Op::RetainEvent: k = HKind::Event; return true;
    default: return false;
  }
}

bool release_op(Op op, HKind& k) noexcept {
  switch (op) {
    case Op::ReleaseContext: k = HKind::Context; return true;
    case Op::ReleaseCommandQueue: k = HKind::Queue; return true;
    case Op::ReleaseMemObject: k = HKind::Mem; return true;
    case Op::ReleaseSampler: k = HKind::Sampler; return true;
    case Op::ReleaseProgram: k = HKind::Program; return true;
    case Op::ReleaseKernel: k = HKind::Kernel; return true;
    case Op::ReleaseEvent: k = HKind::Event; return true;
    default: return false;
  }
}

cl_int release_one(HKind k, std::uint64_t h) {
  void* p = reinterpret_cast<void*>(static_cast<std::uintptr_t>(h));
  switch (k) {
    case HKind::Event: return D().ReleaseEvent(static_cast<cl_event>(p));
    case HKind::Kernel: return D().ReleaseKernel(static_cast<cl_kernel>(p));
    case HKind::Program: return D().ReleaseProgram(static_cast<cl_program>(p));
    case HKind::Sampler: return D().ReleaseSampler(static_cast<cl_sampler>(p));
    case HKind::Mem: return D().ReleaseMemObject(static_cast<cl_mem>(p));
    case HKind::Queue:
      return D().ReleaseCommandQueue(static_cast<cl_command_queue>(p));
    case HKind::Context: return D().ReleaseContext(static_cast<cl_context>(p));
  }
  return CL_INVALID_VALUE;
}

std::uint64_t rd_u64(std::span<const std::uint8_t> p, std::size_t off) {
  std::uint64_t v = 0;
  if (off + 8 <= p.size()) std::memcpy(&v, p.data() + off, 8);
  return v;
}

std::uint32_t rd_u32(std::span<const std::uint8_t> p, std::size_t off) {
  std::uint32_t v = 0;
  if (off + 4 <= p.size()) std::memcpy(&v, p.data() + off, 4);
  return v;
}

cl_int rd_i32(std::span<const std::uint8_t> p, std::size_t off) {
  cl_int v = CL_INVALID_VALUE;
  if (off + 4 <= p.size()) std::memcpy(&v, p.data() + off, 4);
  return v;
}

// Device memory a create request would charge to the client's cap.
// CreateBuffer: [u64 ctx][u64 flags][u64 size].  CreateImage2D: [u64 ctx]
// [u64 flags][u32 order][u32 dtype][u64 w][u64 h][u64 pitch] — charged at the
// 4-bytes-per-pixel model the substrate's common formats use.
std::uint64_t create_mem_bytes(Op op, std::span<const std::uint8_t> p) {
  if (op == Op::CreateBuffer) return rd_u64(p, 16);
  if (op == Op::CreateImage2D) {
    const std::uint64_t w = rd_u64(p, 24);
    const std::uint64_t h = rd_u64(p, 32);
    const std::uint64_t pitch = rd_u64(p, 40);
    return (pitch != 0 ? pitch : w * 4) * h;
  }
  return 0;
}

}  // namespace

// ---- Session ----------------------------------------------------------------

struct Daemon::Session {
  std::uint64_t sid = 0;  // session id == client id in stats
  int fd = -1;            // owned by the tx channel; kept for MSG_DONTWAIT rx
  std::unique_ptr<ipc::Channel> tx;
  std::shared_ptr<ipc::ShmSegment> seg;  // client's data-plane rings
  bool attached = false;
  proxy::ServerState st;

  // Private namespace: every handle this session's creates returned.
  std::unordered_map<std::uint64_t, HEntry> owned;
  std::uint64_t mem_bytes = 0;

  // rx framing: raw bytes accumulate here; complete frames move to q.
  std::vector<std::uint8_t> rx;
  std::size_t rx_off = 0;

  struct Frame {
    Op op = Op::Ping;
    std::vector<std::uint8_t> payload;  // inline frames
    std::uint64_t shm_pos = 0;          // descriptor frames (op had kShmOpFlag)
    std::uint64_t shm_len = 0;
    bool shm = false;
    bool rejected = false;  // over the in-flight cap; answer the typed error

    // DRR cost: fixed overhead + request body + the response bulk a read
    // will push back (its cb field — [u64 q][u64 m][u64 off][u64 cb]).
    [[nodiscard]] std::uint64_t cost() const {
      if (rejected) return 64;
      const std::uint64_t body = shm ? shm_len : payload.size();
      std::uint64_t resp = 0;
      if (op == Op::EnqueueReadBuffer && !shm) resp = rd_u64(payload, 24);
      return 64 + body + resp;
    }
  };
  std::deque<Frame> q;  // run queue, drained by DRR
  std::uint64_t deficit = 0;

  ClientStats cstats;
};

// ---- construction -----------------------------------------------------------

Options options_from_env() {
  Options o;
  o.max_clients =
      static_cast<std::size_t>(env_u64("CHECL_PROXYD_MAX_CLIENTS", o.max_clients));
  o.max_inflight = static_cast<std::size_t>(
      env_u64("CHECL_PROXYD_MAX_INFLIGHT", o.max_inflight));
  o.max_client_mem_bytes = env_u64("CHECL_PROXYD_MEM_CAP", 0);
  o.quantum_bytes =
      std::max<std::uint64_t>(1, env_u64("CHECL_PROXYD_QUANTUM", o.quantum_bytes));
  o.coalesce_replies = env_u64("CHECL_PROXYD_COALESCE", 1) != 0;
  return o;
}

Daemon::Daemon(std::string socket_path, Options opts)
    : socket_path_(std::move(socket_path)), opts_(opts) {
  listen_fd_ = ipc::unix_listen(socket_path_.c_str());
  if (listen_fd_ < 0) {
    error_ = "proxyd: cannot listen on " + socket_path_;
    return;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0 || ::pipe2(wake_fds_, O_CLOEXEC | O_NONBLOCK) != 0) {
    error_ = "proxyd: epoll/pipe setup failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagListen;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kTagWake;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);
  g_daemon.store(this, std::memory_order_release);
}

Daemon::~Daemon() {
  Daemon* self = this;
  g_daemon.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
  sessions_.clear();  // channel destructors close the session fds
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
  }
}

Daemon* Daemon::global() noexcept {
  return g_daemon.load(std::memory_order_acquire);
}

void Daemon::stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_fds_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
  }
}

Stats Daemon::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

// ---- event loop -------------------------------------------------------------

void Daemon::run() {
  if (!ok()) return;
  // Everything below is proxy-side for chaos-site actor filtering, exactly
  // like the single-client serve() loop.
  chaoskit::ScopedThreadActor chaos_actor(chaoskit::Actor::Proxy);
  epoll_event evs[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, evs, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = evs[i].data.u64;
      if (tag == kTagListen) {
        accept_ready();
        continue;
      }
      if (tag == kTagWake) {
        char buf[64];
        while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
        }
        continue;
      }
      auto it = sessions_.find(tag);
      if (it == sessions_.end()) continue;  // torn down earlier this batch
      if ((evs[i].events & EPOLLIN) != 0) {
        read_ready(*it->second);  // tears the session down itself on failure
      } else if ((evs[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        teardown(tag, false);
      }
    }
    schedule();
    refresh_client_stats();
  }
  // Orderly shutdown: every remaining namespace is reclaimed before return.
  while (!sessions_.empty()) teardown(sessions_.begin()->first, true);
}

void Daemon::accept_ready() {
  for (;;) {
    const int fd = ipc::unix_accept(listen_fd_);
    if (fd < 0) return;  // EAGAIN: backlog drained
    auto s = std::make_unique<Session>();
    s->sid = next_session_id_++;
    s->fd = fd;
    s->tx = std::make_unique<ipc::SocketChannel>(fd);
    s->st.shared_substrate = true;
    s->st.substrate_configured = &substrate_configured_;
    s->st.ch = nullptr;  // responses must materialize for handle accounting
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = s->sid;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) continue;
    sessions_.emplace(s->sid, std::move(s));
  }
}

bool Daemon::read_ready(Session& s) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t rn = ::recv(s.fd, buf, sizeof buf, MSG_DONTWAIT);
    if (rn > 0) {
      s.rx.insert(s.rx.end(), buf, buf + rn);
      if (static_cast<std::size_t>(rn) < sizeof buf) break;
      continue;
    }
    if (rn == 0) {  // EOF: the client vanished (exit, crash, kill -9)
      teardown(s.sid, false);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    teardown(s.sid, false);
    return false;
  }
  return parse_frames(s);
}

bool Daemon::parse_frames(Session& s) {
  for (;;) {
    const std::size_t avail = s.rx.size() - s.rx_off;
    if (avail < 8) break;
    std::uint32_t op_raw = 0;
    std::uint32_t len = 0;
    std::memcpy(&op_raw, s.rx.data() + s.rx_off, 4);
    std::memcpy(&len, s.rx.data() + s.rx_off + 4, 4);
    const bool shm = (op_raw & ipc::kShmOpFlag) != 0;
    const std::uint32_t op_plain = op_raw & ~ipc::kShmOpFlag;
    if (len > ipc::SocketChannel::kMaxPayload || (shm && len != 16) ||
        op_plain == 0 ||
        op_plain >= static_cast<std::uint32_t>(Op::kOpCount)) {
      teardown(s.sid, false);  // corrupt or hostile framing
      return false;
    }
    if (avail - 8 < len) break;  // frame incomplete; wait for more bytes
    const std::uint8_t* body = s.rx.data() + s.rx_off + 8;
    s.rx_off += 8 + len;
    const Op op = static_cast<Op>(op_plain);
    if (!s.attached) {
      if (op != Op::Attach || shm || !handle_attach(s, body, len)) {
        teardown(s.sid, false);
        return false;
      }
      continue;
    }
    Session::Frame f;
    f.op = op;
    if (shm) {
      f.shm = true;
      f.shm_pos = rd_u64({body, len}, 0);
      f.shm_len = rd_u64({body, len}, 8);
      if (s.seg == nullptr || f.shm_len > ipc::SocketChannel::kMaxPayload) {
        teardown(s.sid, false);
        return false;
      }
    } else {
      f.payload.assign(body, body + len);
    }
    // Admission: a client pipelining past its in-flight cap gets typed
    // rejects, answered in order with the frames ahead of them.  The reject
    // marker keeps the descriptor of a shm frame (its ring block must still
    // be consumed, or the ring jams) but drops any inline payload.
    if (s.q.size() >= opts_.max_inflight) {
      f.rejected = true;
      f.payload.clear();
    }
    s.q.push_back(std::move(f));
  }
  if (s.rx_off == s.rx.size()) {
    s.rx.clear();
    s.rx_off = 0;
  } else if (s.rx_off > (std::size_t{1} << 20)) {
    s.rx.erase(s.rx.begin(),
               s.rx.begin() + static_cast<std::ptrdiff_t>(s.rx_off));
    s.rx_off = 0;
  }
  return true;
}

bool Daemon::handle_attach(Session& s, const std::uint8_t* p, std::size_t n) {
  ipc::Reader r({p, n});
  const std::uint32_t proto = r.u32();
  const std::string shm_name = r.str();
  const std::uint64_t threshold = r.u64();
  cl_int err = CL_SUCCESS;
  std::shared_ptr<ipc::ShmSegment> seg;
  if (!r.ok() || proto != proxy::kProxydProtoVersion) err = CL_INVALID_VALUE;
  if (err == CL_SUCCESS && attached_count_ >= opts_.max_clients)
    err = CL_CHECL_DAEMON_FULL;
  if (err == CL_SUCCESS && !shm_name.empty()) {
    seg = ipc::ShmSegment::attach(shm_name);
    if (seg == nullptr) err = CL_INVALID_VALUE;
  }
  ipc::Writer w;
  w.i32(err);
  w.u64(s.sid);
  w.u32(static_cast<std::uint32_t>(::getpid()));
  ipc::Message m;
  m.op = static_cast<std::uint32_t>(Op::Attach);
  m.payload = w.take();
  const bool sent = s.tx->send(m);
  if (err != CL_SUCCESS || !sent) {
    if (err == CL_CHECL_DAEMON_FULL) {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.admission_rejects;
    }
    return false;  // caller tears the unattached session down
  }
  if (seg != nullptr) {
    // From here on, bulk responses ride the client's rings: the client
    // created the segment, so the daemon is the non-creator side (tx ring 1,
    // rx ring 0).
    auto sock = std::unique_ptr<ipc::SocketChannel>(
        static_cast<ipc::SocketChannel*>(s.tx.release()));
    s.seg = seg;
    s.tx = std::make_unique<ipc::ShmChannel>(
        std::move(sock), seg, /*creator=*/false,
        threshold != 0 ? static_cast<std::size_t>(threshold)
                       : ipc::kShmDefaultThreshold);
  }
  s.attached = true;
  ++attached_count_;
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++stats_.attaches;
  stats_.clients_current = attached_count_;
  stats_.clients_peak = std::max<std::uint64_t>(stats_.clients_peak, attached_count_);
  stats_.per_client[s.sid] = ClientStats{};
  return true;
}

// ---- scheduling -------------------------------------------------------------

void Daemon::schedule() {
  // Deficit round robin: each round, every runnable session's budget grows by
  // one quantum and it serves head frames that fit.  A greedy bulk client
  // whose 4 MiB transfer costs 16 quanta simply waits 16 rounds between
  // frames while everyone else's small calls (cost << quantum) flow every
  // round — bounded latency without preempting mid-frame.
  for (;;) {
    std::vector<std::uint64_t> runnable;
    runnable.reserve(sessions_.size());
    for (const auto& [sid, sp] : sessions_)
      if (!sp->q.empty()) runnable.push_back(sid);
    if (runnable.empty()) return;
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.sched_rounds;
    }
    for (const std::uint64_t sid : runnable) {
      auto it = sessions_.find(sid);
      if (it == sessions_.end()) continue;  // torn down earlier this round
      Session& s = *it->second;
      if (s.q.empty()) continue;
      s.deficit += opts_.quantum_bytes;
      // Reply coalescing: every reply this quantum produces buffers in the
      // channel and goes out in one writev below — one syscall per session
      // per round instead of one per frame.  A teardown mid-quantum flushes
      // (best effort) inside teardown() before the fd closes.
      const bool batch = opts_.coalesce_replies;
      if (batch) s.tx->begin_batch();
      bool alive = true;
      std::uint64_t served = 0;
      while (alive && !s.q.empty() && s.q.front().cost() <= s.deficit) {
        s.deficit -= s.q.front().cost();
        alive = process_frame(s);
        ++served;
      }
      if (alive && batch) {
        if (!s.tx->flush_batch()) {
          teardown(sid, false);
          continue;
        }
        if (served > 0) {
          std::lock_guard<std::mutex> lk(stats_mu_);
          ++stats_.reply_flushes;
        }
      }
      // Classic DRR: an idle session banks nothing.
      if (alive && s.q.empty()) s.deficit = 0;
    }
  }
}

bool Daemon::process_frame(Session& s) {
  auto& chaos = chaoskit::Engine::instance();
  Session::Frame f = std::move(s.q.front());
  s.q.pop_front();

  // chaos: the daemon observes this client dying right now, mid-transfer.
  // The teardown below is exactly what a real EOF would run.
  if (chaos.should_fire(chaoskit::Site::ProxydClientDeath)) {
    teardown(s.sid, false);
    return false;
  }

  const auto reply_reject = [&](cl_int e) {
    ipc::Writer w;
    w.i32(e);
    ipc::Message m;
    m.op = static_cast<std::uint32_t>(f.op);
    m.payload = w.take();
    ++s.cstats.rejects;
    s.cstats.bytes_out += 8 + m.payload.size();
    if (!s.tx->send(m)) {
      teardown(s.sid, false);
      return false;
    }
    return true;
  };

  if (f.rejected) {
    // The ring block of a rejected bulk frame still has to drain.
    if (f.shm && s.seg != nullptr) {
      if (s.seg->consume_view(0, f.shm_pos,
                              static_cast<std::size_t>(f.shm_len)) == nullptr) {
        teardown(s.sid, false);
        return false;
      }
      s.seg->release(0, f.shm_pos, static_cast<std::size_t>(f.shm_len));
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.queue_rejects;
    }
    return reply_reject(CL_CHECL_INFLIGHT_CAP_EXCEEDED);
  }

  std::span<const std::uint8_t> payload;
  const std::uint8_t* view = nullptr;
  if (f.shm) {
    view = s.seg->consume_view(0, f.shm_pos, static_cast<std::size_t>(f.shm_len));
    if (view == nullptr) {  // producer stalled: the client died mid-publish
      teardown(s.sid, false);
      return false;
    }
    payload = {view, static_cast<std::size_t>(f.shm_len)};
  } else {
    payload = f.payload;
  }
  const auto release_ring = [&] {
    if (view != nullptr)
      s.seg->release(0, f.shm_pos, static_cast<std::size_t>(f.shm_len));
  };

  if (!validate_request(s, f.op, payload)) {
    release_ring();
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.foreign_rejects;
    }
    return reply_reject(CL_CHECL_FOREIGN_HANDLE);
  }

  if (opts_.max_client_mem_bytes != 0) {
    const std::uint64_t want = create_mem_bytes(f.op, payload);
    if (want != 0 && s.mem_bytes + want > opts_.max_client_mem_bytes) {
      release_ring();
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.mem_rejects;
      }
      return reply_reject(CL_CHECL_MEM_CAP_EXCEEDED);
    }
  }

  const bool measured = proxy::op_measured(f.op);
  if (measured) {
    simcl::Runtime::instance().clock().advance_host(s.st.costs.per_call_ns);
    proxy::charge_bytes(s.st, 8 + payload.size());
  }
  ipc::Reader r(payload);
  ipc::Writer w(std::move(wbuf_));
  bool keep = true;
  if (chaos.should_fire(chaoskit::Site::ProxyInjectClError)) {
    w.i32(static_cast<cl_int>(chaos.arg()));
  } else {
    keep = proxy::dispatch_request(s.st, f.op, r, w);
  }
  ipc::Message resp;
  resp.op = static_cast<std::uint32_t>(f.op);
  resp.payload = w.take();
  // Namespace bookkeeping needs the request head (handles, sizes) — do it
  // before the ring view dies.
  register_handles(s, f.op, payload, resp.payload);
  release_ring();
  if (measured)
    proxy::charge_bytes(s.st, resp.payload.size() + s.st.resp_bulk.size());
  ++s.cstats.calls;
  s.cstats.bytes_in += 8 + payload.size();
  s.cstats.bytes_out += 8 + resp.payload.size() + s.st.resp_bulk.size();
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.calls;
  }
  const bool sent = s.tx->send2(resp, s.st.resp_bulk);
  s.st.resp_bulk = {};
  wbuf_ = std::move(resp.payload);
  if (!sent) {
    teardown(s.sid, false);
    return false;
  }
  if (!keep) {
    // Op::Shutdown from a daemon client closes *its* session; the daemon
    // itself only exits via stop().
    teardown(s.sid, true);
    return false;
  }
  return true;
}

// ---- namespace validation + registration ------------------------------------

bool Daemon::validate_request(Session& s, Op op,
                              std::span<const std::uint8_t> payload) {
  bool ok = true;
  const auto check = [&](std::uint64_t h) {
    if (h != 0 && s.owned.find(h) == s.owned.end() &&
        shared_handles_.find(h) == shared_handles_.end())
      ok = false;
    return h;  // identity: validation only, never translation
  };
  // remap_request_handles writes each handle back through the map function;
  // with the identity map those writes are byte-for-byte no-ops, so walking
  // a const ring view in place is safe.
  auto* p = const_cast<std::uint8_t*>(payload.data());
  if (op == Op::Batch) {
    // Walk the sub-frames: a forged handle inside a batch must not slip
    // past validation just because the batch payload is opaque.
    std::size_t pos = 0;
    while (pos + 8 <= payload.size()) {
      const std::uint32_t sub_raw = rd_u32(payload, pos);
      const std::uint32_t len = rd_u32(payload, pos + 4);
      pos += 8;
      if (len > payload.size() - pos) break;  // dispatch stops here too
      if (sub_raw != 0 && sub_raw < static_cast<std::uint32_t>(Op::kOpCount))
        proxy::remap_request_handles(static_cast<Op>(sub_raw), p + pos, len,
                                     check);
      pos += len;
    }
    return ok;
  }
  proxy::remap_request_handles(op, p, payload.size(), check);
  return ok;
}

void Daemon::register_handles(Session& s, Op op,
                              std::span<const std::uint8_t> req,
                              const std::vector<std::uint8_t>& resp) {
  const std::span<const std::uint8_t> rs(resp);
  const cl_int err = rd_i32(rs, 0);
  const auto add = [&](std::uint64_t h, HKind k, std::uint64_t mem) {
    if (h == 0) return;
    auto [it, fresh] = s.owned.try_emplace(h, HEntry{k, 0, mem});
    ++it->second.refs;
    if (fresh) s.mem_bytes += it->second.mem_bytes;
  };
  const auto add_list = [&](HKind k) {  // [i32 err][u32 total][u32 n][n×u64]
    const std::uint32_t n = rd_u32(rs, 8);
    for (std::uint32_t i = 0; i < n; ++i) add(rd_u64(rs, 12 + 8 * i), k, 0);
  };
  const auto adjust = [&](std::uint64_t h, bool retain) {
    auto it = s.owned.find(h);
    if (it == s.owned.end()) return;
    if (retain) {
      ++it->second.refs;
    } else if (--it->second.refs == 0) {
      s.mem_bytes -= it->second.mem_bytes;
      s.owned.erase(it);
    }
  };

  if (err == CL_SUCCESS) {
    HKind rk;
    switch (op) {
      case Op::CreateContext: add(rd_u64(rs, 4), HKind::Context, 0); break;
      case Op::CreateCommandQueue: add(rd_u64(rs, 4), HKind::Queue, 0); break;
      case Op::CreateBuffer:
      case Op::CreateImage2D:
        add(rd_u64(rs, 4), HKind::Mem, create_mem_bytes(op, req));
        break;
      case Op::CreateSampler: add(rd_u64(rs, 4), HKind::Sampler, 0); break;
      case Op::CreateProgramWithSource:
        add(rd_u64(rs, 4), HKind::Program, 0);
        break;
      case Op::CreateProgramWithBinary:  // [i32 err][i32 status][u64 handle]
        add(rd_u64(rs, 8), HKind::Program, 0);
        break;
      case Op::CreateKernel: add(rd_u64(rs, 4), HKind::Kernel, 0); break;
      case Op::CreateKernelsInProgram: add_list(HKind::Kernel); break;
      case Op::GetPlatformIDs:
      case Op::GetDeviceIDs: {
        const std::uint32_t n = rd_u32(rs, 8);
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::uint64_t h = rd_u64(rs, 12 + 8 * i);
          if (h != 0) shared_handles_.insert(h);
        }
        break;
      }
      case Op::EnqueueReadBuffer:
      case Op::EnqueueWriteBuffer:
      case Op::EnqueueCopyBuffer:
      case Op::EnqueueNDRangeKernel:
      case Op::EnqueueTask:
      case Op::EnqueueMarker:
        // [i32 err][u64 event]: nonzero only when the client asked for one
        add(rd_u64(rs, 4), HKind::Event, 0);
        break;
      default:
        if (retain_op(op, rk)) adjust(rd_u64(req, 0), /*retain=*/true);
        if (release_op(op, rk)) adjust(rd_u64(req, 0), /*retain=*/false);
        break;
    }
  }
  if (op == Op::Batch) {
    // Batched calls are fire-and-forget (the client never batches an
    // event-returning or handle-creating call), but Retain/Release can ride
    // along: adjust refcounts by the request alone — every handle in here
    // was validated as owned, so the substrate call succeeded.
    std::size_t pos = 0;
    while (pos + 8 <= req.size()) {
      const std::uint32_t sub_raw = rd_u32(req, pos);
      const std::uint32_t len = rd_u32(req, pos + 4);
      pos += 8;
      if (len > req.size() - pos) break;
      HKind rk;
      const Op sub = static_cast<Op>(sub_raw);
      if (retain_op(sub, rk))
        adjust(rd_u64(req.subspan(pos), 0), /*retain=*/true);
      if (release_op(sub, rk))
        adjust(rd_u64(req.subspan(pos), 0), /*retain=*/false);
      pos += len;
    }
  }
  s.cstats.handles = s.owned.size();
  s.cstats.mem_bytes = s.mem_bytes;
}

// ---- teardown ---------------------------------------------------------------

void Daemon::teardown(std::uint64_t sid, bool graceful) {
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) return;
  Session& s = *it->second;
  // Replies still batched in the channel (a graceful Shutdown ack, rejects
  // answered right before an EOF) get one best-effort flush before the fd
  // closes; on a dead peer this fails silently, which is fine.
  if (s.tx != nullptr) s.tx->flush_batch();
  std::uint64_t leaked = 0;
  if (s.attached) {
    if (chaoskit::Engine::instance().should_fire(
            chaoskit::Site::ProxydNamespaceLeak)) {
      // chaos: the reclaim "forgets" everything — the leak counter must
      // expose exactly what was dropped.
      leaked = s.owned.size();
    } else {
      // Reverse dependency order, each handle released refcount times.
      static constexpr HKind kOrder[] = {
          HKind::Event, HKind::Kernel, HKind::Program, HKind::Sampler,
          HKind::Mem,   HKind::Queue,  HKind::Context};
      for (const HKind k : kOrder) {
        for (auto oit = s.owned.begin(); oit != s.owned.end();) {
          if (oit->second.kind != k) {
            ++oit;
            continue;
          }
          for (std::uint32_t i = 0; i < oit->second.refs; ++i) {
            if (release_one(k, oit->first) != CL_SUCCESS) {
              ++leaked;
              break;
            }
          }
          oit = s.owned.erase(oit);
        }
      }
    }
    --attached_count_;
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (s.attached) {
      ++stats_.disconnects;
      stats_.clients_current = attached_count_;
      stats_.per_client.erase(s.sid);
      stats_.leaked_handles += leaked;
    }
  }
  // Graceful (Shutdown RPC) and abrupt (EOF, failed send, chaos death)
  // converge here on purpose: same reclaim, same counters.  The shm mapping
  // dies with the session object; attach() already unlinked the /dev/shm
  // name, so nothing survives on the filesystem.
  (void)graceful;
  sessions_.erase(it);  // channel destructor closes the fd; epoll drops it
}

void Daemon::refresh_client_stats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  for (const auto& [sid, sp] : sessions_) {
    if (!sp->attached) continue;
    sp->cstats.queue_depth = sp->q.size();
    stats_.per_client[sid] = sp->cstats;
  }
}

}  // namespace proxyd
