// daemon.h — checl_proxyd: the multi-tenant API proxy daemon.
//
// The single-client proxy (proxy/server.cpp) is one forked child per
// application: perfect isolation, but one process per client cannot serve the
// ROADMAP's "heavy traffic" north star.  This daemon reworks the serve loop
// into a long-lived epoll event loop on a listening unix socket.  Each client
// attaches with an Op::Attach handshake (negotiating its own PR-2 shm
// data-plane rings) and then speaks the unmodified RPC protocol; the daemon
// runs one proxy::ServerState per session over the shared simcl substrate.
//
// Three properties the shared process must add on top of dispatch:
//
//   * Private namespaces.  Remote handles are pointer values in the daemon's
//     address space, so nothing structural stops client A from naming client
//     B's buffer.  Every session tracks the handles its own creates returned
//     (plus the daemon-wide platform/device set, which is legitimately
//     shared); a request naming any other handle is answered with
//     CL_CHECL_FOREIGN_HANDLE before it reaches the substrate.  Disconnect —
//     graceful or abrupt — releases everything the session still owns, in
//     reverse dependency order, and drops its shm segment.
//
//   * Admission control.  max-clients bounds attached sessions (excess
//     attaches get CL_CHECL_DAEMON_FULL and a closed socket); per-client
//     queued-frame and device-memory caps answer typed errors instead of
//     letting one client exhaust the daemon.
//
//   * Fair scheduling.  Parsed request frames go to per-session run queues
//     drained by deficit round robin (quantum in bytes), so a client
//     streaming large transfers cannot starve the small-call latency of the
//     rest: every round, each runnable session gets a quantum of transfer
//     budget before the flooder gets its next one.
//
// The daemon never trusts a death signal it didn't observe: a closed fd, a
// failed send, or a stalled ring producer all tear the session down the same
// way, so "kill -9 the client" and "client called Shutdown" converge to the
// same reclaimed state (the proxyd_client_death chaos site exercises exactly
// this path mid-transfer).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "proxy/opcodes.h"

namespace proxyd {

struct Options {
  std::size_t max_clients = 64;
  // Max parsed-but-unprocessed frames per session; further pipelined frames
  // are answered CL_CHECL_INFLIGHT_CAP_EXCEEDED (in order).
  std::size_t max_inflight = 64;
  // Per-client device-memory cap in bytes (created buffers + images);
  // 0 = unlimited.  Exceeding creates get CL_CHECL_MEM_CAP_EXCEEDED.
  std::uint64_t max_client_mem_bytes = 0;
  // Deficit-round-robin quantum: transfer budget (bytes) each runnable
  // session receives per scheduling round.
  std::uint64_t quantum_bytes = 256 * 1024;
  // Reply coalescing: buffer every reply a session's quantum produces and
  // flush them with one writev per session per scheduling round, instead of
  // one syscall per frame.  A pipelining client's K replies collapse into
  // one wire write; synchronous clients see identical behavior.
  bool coalesce_replies = true;
};

// Reads CHECL_PROXYD_MAX_CLIENTS / CHECL_PROXYD_MAX_INFLIGHT /
// CHECL_PROXYD_MEM_CAP / CHECL_PROXYD_QUANTUM / CHECL_PROXYD_COALESCE
// (0 disables reply coalescing) over the defaults above.
Options options_from_env();

struct ClientStats {
  std::uint64_t calls = 0;       // frames dispatched into the substrate
  std::uint64_t bytes_in = 0;    // request bytes (header + payload)
  std::uint64_t bytes_out = 0;   // response bytes
  std::uint64_t rejects = 0;     // typed policy rejects answered
  std::uint64_t queue_depth = 0; // run-queue length right now
  std::uint64_t mem_bytes = 0;   // live created device memory
  std::uint64_t handles = 0;     // live owned handles
};

struct Stats {
  std::uint64_t attaches = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t clients_current = 0;
  std::uint64_t clients_peak = 0;
  std::uint64_t admission_rejects = 0;  // CL_CHECL_DAEMON_FULL
  std::uint64_t foreign_rejects = 0;    // CL_CHECL_FOREIGN_HANDLE
  std::uint64_t mem_rejects = 0;        // CL_CHECL_MEM_CAP_EXCEEDED
  std::uint64_t queue_rejects = 0;      // CL_CHECL_INFLIGHT_CAP_EXCEEDED
  std::uint64_t calls = 0;              // total dispatched frames
  std::uint64_t sched_rounds = 0;       // DRR rounds run
  // Coalesced-reply writev rounds (one per session per round that produced
  // replies).  calls / reply_flushes is the coalescing ratio the
  // proxyd_micro pipelining probe gates on; equal means nothing coalesced.
  std::uint64_t reply_flushes = 0;
  // Handles a teardown failed (or chaos-"forgot") to release.  Nonzero means
  // the namespace reclaim invariant broke — tests gate on this staying 0.
  std::uint64_t leaked_handles = 0;
  std::map<std::uint64_t, ClientStats> per_client;  // keyed by client id
};

class Daemon {
 public:
  // Binds the listening socket in the constructor, so a connect() issued the
  // moment it returns lands in the backlog even before run() starts.
  Daemon(std::string socket_path, Options opts);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] bool ok() const noexcept { return listen_fd_ >= 0; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return socket_path_;
  }

  // The event loop; returns after stop() or a fatal listener error.
  void run();
  // Thread-safe; wakes the loop and makes run() return after it finishes the
  // current scheduling pass (every session torn down cleanly).
  void stop();

  [[nodiscard]] Stats stats() const;

  // The most recently constructed live daemon in this process, for
  // checl::stats_json()'s "proxyd" section; nullptr when none.
  [[nodiscard]] static Daemon* global() noexcept;

 private:
  struct Session;

  void accept_ready();
  bool read_ready(Session& s);      // false => session torn down
  bool parse_frames(Session& s);    // false => session torn down
  bool handle_attach(Session& s, const std::uint8_t* p, std::size_t n);
  bool process_frame(Session& s);   // pops + serves one frame; false => gone
  bool validate_request(Session& s, proxy::Op op,
                        std::span<const std::uint8_t> payload);
  void register_handles(Session& s, proxy::Op op,
                        std::span<const std::uint8_t> req,
                        const std::vector<std::uint8_t>& resp);
  void schedule();                  // DRR over all runnable sessions
  void teardown(std::uint64_t sid, bool graceful);
  void refresh_client_stats();

  std::string socket_path_;
  Options opts_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // stop() pipe
  std::string error_;
  std::atomic<bool> stop_{false};

  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;  // by session id
  std::uint64_t next_session_id_ = 1;
  std::size_t attached_count_ = 0;
  bool substrate_configured_ = false;
  // Platform/device handles: daemon-wide, legitimately visible to everyone.
  std::unordered_set<std::uint64_t> shared_handles_;
  std::vector<std::uint8_t> wbuf_;  // response Writer buffer, recycled

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace proxyd
