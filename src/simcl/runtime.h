// runtime.h — process-wide state of the simcl substrate: the platform set,
// the virtual clock, and the API-call overhead knob.
//
// The runtime is reconfigurable so one process can model different "nodes"
// (the migration experiments restart a proxy with a different platform set).
#pragma once

#include <mutex>
#include <vector>

#include "simcl/clock.h"
#include "simcl/objects.h"

namespace simcl {

class Runtime {
 public:
  static Runtime& instance();

  // Replace the platform configuration.  A no-op when the specs match the
  // materialized ones (handles stay valid — recovery handshakes re-send the
  // configuration).  Otherwise existing platform/device handles go stale but
  // stay allocated until process exit, so threads that outlive their epoch
  // never dereference freed memory.
  void configure(std::vector<PlatformSpec> specs);

  // Lazily materializes platforms on first call, charging each platform's
  // init cost to the host timeline exactly once.
  const std::vector<Platform*>& platforms();

  Clock& clock() noexcept { return clock_; }

  [[nodiscard]] SimNs api_call_ns() const noexcept { return api_call_ns_; }
  void set_api_call_ns(SimNs ns) noexcept { api_call_ns_ = ns; }

  // Charges the fixed per-API-call host cost.
  void charge_api_call() noexcept { clock_.advance_host(api_call_ns_); }

 private:
  Runtime() : specs_(default_platforms()) {}
  ~Runtime();
  void teardown();

  std::mutex mu_;
  std::vector<PlatformSpec> specs_;
  std::vector<Platform*> platforms_;
  // Platforms replaced while objects were live (see configure()); reaped by
  // the destructor so abandoned cross-epoch references never dangle.
  std::vector<Platform*> retired_;
  bool materialized_ = false;
  Clock clock_;
  SimNs api_call_ns_ = 100;
};

// Convenience: release an object and delete it when the count hits zero.
template <typename T>
void unref(T* o) noexcept {
  if (o != nullptr && o->release()) delete o;
}

}  // namespace simcl
