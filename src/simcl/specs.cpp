#include "simcl/specs.h"

namespace simcl {

PlatformSpec nvidia_like_platform() {
  PlatformSpec p;
  p.name = "SimCL NVIDIA-like";
  p.vendor = "simcl (NVIDIA model)";
  p.init_ns = 45'000'000;            // platform bring-up visible in Figure 7
  p.context_create_ns = 35'000'000;  // context creation visible in Figure 7
  p.queue_create_ns = 500'000;

  DeviceSpec gpu;
  gpu.name = "Tesla C1060 (sim)";
  gpu.vendor = p.vendor;
  gpu.type = CL_DEVICE_TYPE_GPU;
  gpu.compute_units = 30;
  gpu.clock_mhz = 1300;
  gpu.global_mem_bytes = 256ull << 20;  // 4 GB scaled 1/16
  gpu.local_mem_bytes = 16ull << 10;
  gpu.max_alloc_bytes = 64ull << 20;
  gpu.max_work_group_size = 512;
  gpu.max_work_item_sizes[0] = 512;
  gpu.max_work_item_sizes[1] = 512;
  gpu.max_work_item_sizes[2] = 64;
  gpu.ops_per_sec = 100e9 / kComputeScale;  // compute-scaled (see specs.h)
  gpu.h2d_bytes_per_sec = 5.35e9 / kBandwidthScale;  // Table I, rate-scaled
  gpu.d2h_bytes_per_sec = 4.87e9 / kBandwidthScale;  // Table I, rate-scaled
  gpu.compile_base_ns = 30'000'000;
  gpu.compile_ns_per_byte = 150.0;
  p.devices.push_back(gpu);
  return p;
}

PlatformSpec amd_like_platform() {
  PlatformSpec p;
  p.name = "SimCL AMD-like";
  p.vendor = "simcl (AMD model)";
  p.init_ns = 2'000'000;  // negligible in Figure 7
  p.context_create_ns = 1'500'000;
  p.queue_create_ns = 300'000;

  DeviceSpec gpu;
  gpu.name = "Radeon HD5870 (sim)";
  gpu.vendor = p.vendor;
  gpu.type = CL_DEVICE_TYPE_GPU;
  gpu.compute_units = 20;
  gpu.clock_mhz = 850;
  gpu.global_mem_bytes = 64ull << 20;  // 1 GB scaled 1/16 (smallest — Figure 5)
  gpu.local_mem_bytes = 32ull << 10;
  gpu.max_alloc_bytes = 16ull << 20;
  gpu.max_work_group_size = 256;  // the paper's oclSortingNetworks portability note
  gpu.max_work_item_sizes[0] = 256;
  gpu.max_work_item_sizes[1] = 256;
  gpu.max_work_item_sizes[2] = 64;
  gpu.ops_per_sec = 272e9 / kComputeScale;  // HD5870 ~2.7x the C1060 peak
  gpu.h2d_bytes_per_sec = 5.35e9 / kBandwidthScale;
  gpu.d2h_bytes_per_sec = 4.87e9 / kBandwidthScale;
  gpu.compile_base_ns = 90'000'000;  // AMD recompiles are slower (Figure 7)
  gpu.compile_ns_per_byte = 450.0;
  p.devices.push_back(gpu);

  DeviceSpec cpu;
  cpu.name = "Core i7 920 (sim)";
  cpu.vendor = p.vendor;
  cpu.type = CL_DEVICE_TYPE_CPU;
  cpu.compute_units = 8;
  cpu.clock_mhz = 2666;
  cpu.global_mem_bytes = 768ull << 20;  // 12 GB scaled 1/16
  cpu.local_mem_bytes = 32ull << 10;
  cpu.max_alloc_bytes = 192ull << 20;
  cpu.max_work_group_size = 1024;  // the paper's CPU work-group limit note
  cpu.max_work_item_sizes[0] = 1024;
  cpu.max_work_item_sizes[1] = 1024;
  cpu.max_work_item_sizes[2] = 1024;
  cpu.ops_per_sec = 12e9 / kComputeScale;  // ~order of magnitude below the GPUs
  cpu.h2d_bytes_per_sec = 9.0e9 / kBandwidthScale;  // host-memory copies, no PCIe hop
  cpu.d2h_bytes_per_sec = 9.0e9 / kBandwidthScale;
  cpu.transfer_latency_ns = 1500;
  cpu.launch_overhead_ns = 3000;
  cpu.compile_base_ns = 60'000'000;  // same AMD compiler targeting x86
  cpu.compile_ns_per_byte = 300.0;
  p.devices.push_back(cpu);
  return p;
}

std::vector<PlatformSpec> default_platforms() {
  return {nvidia_like_platform(), amd_like_platform()};
}

}  // namespace simcl
