// api.cpp — the "vendor OpenCL implementation": every API entry point of the
// substrate, plus the native dispatch table.
//
// These functions are what the API proxy ultimately invokes; in native mode
// the binding layer routes straight here.

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>

#include "checl/dispatch.h"
#include "simcl/progcache.h"
#include "simcl/queue.h"
#include "simcl/runtime.h"

namespace simcl {
const checl_api::DispatchTable& dispatch_table() noexcept;
}

namespace {

using namespace simcl;

// ---- info-query helper -----------------------------------------------------

cl_int set_param_bytes(const void* data, std::size_t n, std::size_t size,
                       void* value, std::size_t* size_ret) {
  if (size_ret != nullptr) *size_ret = n;
  if (value != nullptr) {
    if (size < n) return CL_INVALID_VALUE;
    std::memcpy(value, data, n);
  }
  return CL_SUCCESS;
}

template <typename T>
cl_int set_param(const T& v, std::size_t size, void* value, std::size_t* size_ret) {
  return set_param_bytes(&v, sizeof(T), size, value, size_ret);
}

cl_int set_param_str(const std::string& s, std::size_t size, void* value,
                     std::size_t* size_ret) {
  return set_param_bytes(s.c_str(), s.size() + 1, size, value, size_ret);
}

Runtime& rt() { return Runtime::instance(); }

// ---- platform / device ------------------------------------------------------

cl_int scl_GetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                          cl_uint* num_platforms) {
  rt().charge_api_call();
  if (platforms == nullptr && num_platforms == nullptr) return CL_INVALID_VALUE;
  if (platforms != nullptr && num_entries == 0) return CL_INVALID_VALUE;
  const auto& ps = rt().platforms();
  if (num_platforms != nullptr) *num_platforms = static_cast<cl_uint>(ps.size());
  if (platforms != nullptr) {
    const cl_uint n = std::min<cl_uint>(num_entries, static_cast<cl_uint>(ps.size()));
    for (cl_uint i = 0; i < n; ++i)
      platforms[i] = reinterpret_cast<cl_platform_id>(ps[i]);
  }
  return CL_SUCCESS;
}

cl_int scl_GetPlatformInfo(cl_platform_id platform, cl_platform_info pn,
                           std::size_t size, void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* p = as_object<Platform>(platform);
  if (p == nullptr) return CL_INVALID_PLATFORM;
  switch (pn) {
    case CL_PLATFORM_PROFILE:
      return set_param_str("FULL_PROFILE", size, value, size_ret);
    case CL_PLATFORM_VERSION: return set_param_str(p->spec.version, size, value, size_ret);
    case CL_PLATFORM_NAME: return set_param_str(p->spec.name, size, value, size_ret);
    case CL_PLATFORM_VENDOR: return set_param_str(p->spec.vendor, size, value, size_ret);
    case CL_PLATFORM_EXTENSIONS: return set_param_str("", size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

cl_int scl_GetDeviceIDs(cl_platform_id platform, cl_device_type type,
                        cl_uint num_entries, cl_device_id* devices,
                        cl_uint* num_devices) {
  rt().charge_api_call();
  auto* p = as_object<Platform>(platform);
  if (p == nullptr) return CL_INVALID_PLATFORM;
  if (devices == nullptr && num_devices == nullptr) return CL_INVALID_VALUE;
  std::vector<Device*> match;
  for (Device* d : p->devices) {
    const bool ok =
        type == CL_DEVICE_TYPE_ALL || (type & d->spec.type) != 0 ||
        (type == CL_DEVICE_TYPE_DEFAULT && d == p->devices.front());
    if (ok) match.push_back(d);
  }
  if (match.empty()) return CL_DEVICE_NOT_FOUND;
  if (num_devices != nullptr) *num_devices = static_cast<cl_uint>(match.size());
  if (devices != nullptr) {
    const cl_uint n = std::min<cl_uint>(num_entries, static_cast<cl_uint>(match.size()));
    for (cl_uint i = 0; i < n; ++i)
      devices[i] = reinterpret_cast<cl_device_id>(match[i]);
  }
  return CL_SUCCESS;
}

cl_int scl_GetDeviceInfo(cl_device_id device, cl_device_info pn, std::size_t size,
                         void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* d = as_object<Device>(device);
  if (d == nullptr) return CL_INVALID_DEVICE;
  const DeviceSpec& s = d->spec;
  switch (pn) {
    case CL_DEVICE_TYPE: return set_param(s.type, size, value, size_ret);
    case CL_DEVICE_VENDOR_ID: return set_param<cl_uint>(0x51C0, size, value, size_ret);
    case CL_DEVICE_MAX_COMPUTE_UNITS:
      return set_param<cl_uint>(s.compute_units, size, value, size_ret);
    case CL_DEVICE_MAX_WORK_ITEM_DIMENSIONS:
      return set_param<cl_uint>(3, size, value, size_ret);
    case CL_DEVICE_MAX_WORK_GROUP_SIZE:
      return set_param<std::size_t>(s.max_work_group_size, size, value, size_ret);
    case CL_DEVICE_MAX_WORK_ITEM_SIZES:
      return set_param_bytes(s.max_work_item_sizes, sizeof(s.max_work_item_sizes),
                             size, value, size_ret);
    case CL_DEVICE_MAX_CLOCK_FREQUENCY:
      return set_param<cl_uint>(s.clock_mhz, size, value, size_ret);
    case CL_DEVICE_GLOBAL_MEM_SIZE:
      return set_param<cl_ulong>(s.global_mem_bytes, size, value, size_ret);
    case CL_DEVICE_LOCAL_MEM_SIZE:
      return set_param<cl_ulong>(s.local_mem_bytes, size, value, size_ret);
    case CL_DEVICE_MAX_MEM_ALLOC_SIZE:
      return set_param<cl_ulong>(s.max_alloc_bytes, size, value, size_ret);
    case CL_DEVICE_NAME: return set_param_str(s.name, size, value, size_ret);
    case CL_DEVICE_VENDOR: return set_param_str(s.vendor, size, value, size_ret);
    case CL_DEVICE_VERSION:
      return set_param_str("OpenCL 1.0 simcl", size, value, size_ret);
    case CL_DEVICE_PLATFORM: {
      auto h = reinterpret_cast<cl_platform_id>(d->platform);
      return set_param(h, size, value, size_ret);
    }
    case CL_DEVICE_AVAILABLE:
    case CL_DEVICE_COMPILER_AVAILABLE:
      return set_param<cl_bool>(CL_TRUE, size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---- context ---------------------------------------------------------------

cl_context scl_CreateContext(const cl_context_properties* properties,
                             cl_uint num_devices, const cl_device_id* devices,
                             void (*notify)(const char*, const void*, std::size_t, void*),
                             void* user_data, cl_int* err) {
  rt().charge_api_call();
  (void)notify;
  (void)user_data;
  auto set_err = [&](cl_int e) {
    if (err != nullptr) *err = e;
  };
  if (num_devices == 0 || devices == nullptr) {
    set_err(CL_INVALID_VALUE);
    return nullptr;
  }
  std::vector<Device*> devs;
  devs.reserve(num_devices);
  for (cl_uint i = 0; i < num_devices; ++i) {
    auto* d = as_object<Device>(devices[i]);
    if (d == nullptr) {
      set_err(CL_INVALID_DEVICE);
      return nullptr;
    }
    devs.push_back(d);
  }
  rt().clock().advance_host(devs.front()->platform->spec.context_create_ns);
  auto* ctx = new Context(std::move(devs));
  if (properties != nullptr) {
    for (const cl_context_properties* p = properties; *p != 0; p += 2) {
      ctx->properties.push_back(p[0]);
      ctx->properties.push_back(p[1]);
    }
    ctx->properties.push_back(0);
  }
  set_err(CL_SUCCESS);
  return reinterpret_cast<cl_context>(ctx);
}

cl_int scl_RetainContext(cl_context c) {
  auto* ctx = as_object<Context>(c);
  if (ctx == nullptr) return CL_INVALID_CONTEXT;
  ctx->retain();
  return CL_SUCCESS;
}
cl_int scl_ReleaseContext(cl_context c) {
  auto* ctx = as_object<Context>(c);
  if (ctx == nullptr) return CL_INVALID_CONTEXT;
  unref(ctx);
  return CL_SUCCESS;
}

cl_int scl_GetContextInfo(cl_context c, cl_context_info pn, std::size_t size,
                          void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* ctx = as_object<Context>(c);
  if (ctx == nullptr) return CL_INVALID_CONTEXT;
  switch (pn) {
    case CL_CONTEXT_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(ctx->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_CONTEXT_DEVICES: {
      std::vector<cl_device_id> hs;
      hs.reserve(ctx->devices.size());
      for (Device* d : ctx->devices) hs.push_back(reinterpret_cast<cl_device_id>(d));
      return set_param_bytes(hs.data(), hs.size() * sizeof(cl_device_id), size,
                             value, size_ret);
    }
    case CL_CONTEXT_PROPERTIES:
      return set_param_bytes(ctx->properties.data(),
                             ctx->properties.size() * sizeof(cl_context_properties),
                             size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---- command queue -----------------------------------------------------------

cl_command_queue scl_CreateCommandQueue(cl_context c, cl_device_id device,
                                        cl_command_queue_properties props,
                                        cl_int* err) {
  rt().charge_api_call();
  auto set_err = [&](cl_int e) {
    if (err != nullptr) *err = e;
  };
  auto* ctx = as_object<Context>(c);
  if (ctx == nullptr) {
    set_err(CL_INVALID_CONTEXT);
    return nullptr;
  }
  auto* dev = as_object<Device>(device);
  if (dev == nullptr ||
      std::find(ctx->devices.begin(), ctx->devices.end(), dev) == ctx->devices.end()) {
    set_err(CL_INVALID_DEVICE);
    return nullptr;
  }
  rt().clock().advance_host(dev->platform->spec.queue_create_ns);
  set_err(CL_SUCCESS);
  return reinterpret_cast<cl_command_queue>(new Queue(ctx, dev, props));
}

cl_int scl_RetainCommandQueue(cl_command_queue q) {
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  queue->retain();
  return CL_SUCCESS;
}
cl_int scl_ReleaseCommandQueue(cl_command_queue q) {
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  unref(queue);
  return CL_SUCCESS;
}

cl_int scl_GetCommandQueueInfo(cl_command_queue q, cl_command_queue_info pn,
                               std::size_t size, void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  switch (pn) {
    case CL_QUEUE_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(queue->ctx);
      return set_param(h, size, value, size_ret);
    }
    case CL_QUEUE_DEVICE: {
      auto h = reinterpret_cast<cl_device_id>(queue->dev);
      return set_param(h, size, value, size_ret);
    }
    case CL_QUEUE_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(queue->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_QUEUE_PROPERTIES: return set_param(queue->properties, size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

cl_int scl_Flush(cl_command_queue q) {
  rt().charge_api_call();
  return as_object<Queue>(q) != nullptr ? CL_SUCCESS : CL_INVALID_COMMAND_QUEUE;
}

cl_int scl_Finish(cl_command_queue q) {
  rt().charge_api_call();
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  queue->finish();
  return CL_SUCCESS;
}

// ---- memory objects ------------------------------------------------------------

cl_mem scl_CreateBuffer(cl_context c, cl_mem_flags flags, std::size_t size,
                        void* host_ptr, cl_int* err) {
  rt().charge_api_call();
  auto set_err = [&](cl_int e) {
    if (err != nullptr) *err = e;
  };
  auto* ctx = as_object<Context>(c);
  if (ctx == nullptr) {
    set_err(CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (size == 0) {
    set_err(CL_INVALID_BUFFER_SIZE);
    return nullptr;
  }
  const bool wants_host = (flags & (CL_MEM_USE_HOST_PTR | CL_MEM_COPY_HOST_PTR)) != 0;
  if (wants_host && host_ptr == nullptr) {
    set_err(CL_INVALID_HOST_PTR);
    return nullptr;
  }
  for (Device* d : ctx->devices) {
    if (size > d->spec.max_alloc_bytes) {
      set_err(CL_INVALID_BUFFER_SIZE);
      return nullptr;
    }
  }
  ctx->retain();
  auto* m = new MemObj(ctx, flags, size);
  if (wants_host) {
    std::memcpy(m->storage.data(), host_ptr, size);
    rt().clock().advance_host(
        transfer_ns(size, ctx->devices.front()->spec.h2d_bytes_per_sec));
  }
  if ((flags & CL_MEM_USE_HOST_PTR) != 0) m->host_ptr = host_ptr;
  set_err(CL_SUCCESS);
  return reinterpret_cast<cl_mem>(m);
}

cl_mem scl_CreateImage2D(cl_context c, cl_mem_flags flags,
                         const cl_image_format* format, std::size_t w,
                         std::size_t h, std::size_t row_pitch, void* host_ptr,
                         cl_int* err) {
  rt().charge_api_call();
  auto set_err = [&](cl_int e) {
    if (err != nullptr) *err = e;
  };
  auto* ctx = as_object<Context>(c);
  if (ctx == nullptr) {
    set_err(CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (format == nullptr) {
    set_err(CL_INVALID_IMAGE_FORMAT_DESCRIPTOR);
    return nullptr;
  }
  if (w == 0 || h == 0) {
    set_err(CL_INVALID_IMAGE_SIZE);
    return nullptr;
  }
  std::uint32_t channels = 0;
  switch (format->image_channel_order) {
    case CL_R: channels = 1; break;
    case CL_RG: channels = 2; break;
    case CL_RGBA: channels = 4; break;
    default:
      set_err(CL_IMAGE_FORMAT_NOT_SUPPORTED);
      return nullptr;
  }
  bool float_ch = false;
  switch (format->image_channel_data_type) {
    case CL_FLOAT: float_ch = true; break;
    case CL_UNSIGNED_INT32: float_ch = false; break;
    default:
      set_err(CL_IMAGE_FORMAT_NOT_SUPPORTED);
      return nullptr;
  }
  const std::size_t elem = 4 * channels;
  const std::size_t pitch = row_pitch != 0 ? row_pitch : w * elem;
  if (pitch < w * elem) {
    set_err(CL_INVALID_IMAGE_SIZE);
    return nullptr;
  }
  ctx->retain();
  auto* m = new MemObj(ctx, flags, pitch * h);
  m->is_image = true;
  m->format = *format;
  m->width = w;
  m->height = h;
  m->row_pitch = pitch;
  m->channels = channels;
  m->float_channels = float_ch;
  if ((flags & (CL_MEM_COPY_HOST_PTR | CL_MEM_USE_HOST_PTR)) != 0) {
    if (host_ptr == nullptr) {
      unref(m);
      set_err(CL_INVALID_HOST_PTR);
      return nullptr;
    }
    std::memcpy(m->storage.data(), host_ptr, m->size);
    if ((flags & CL_MEM_USE_HOST_PTR) != 0) m->host_ptr = host_ptr;
  }
  set_err(CL_SUCCESS);
  return reinterpret_cast<cl_mem>(m);
}

cl_int scl_RetainMemObject(cl_mem mem) {
  auto* m = as_object<MemObj>(mem);
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  m->retain();
  return CL_SUCCESS;
}
cl_int scl_ReleaseMemObject(cl_mem mem) {
  auto* m = as_object<MemObj>(mem);
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  unref(m);
  return CL_SUCCESS;
}

cl_int scl_GetMemObjectInfo(cl_mem mem, cl_mem_info pn, std::size_t size,
                            void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* m = as_object<MemObj>(mem);
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  switch (pn) {
    case CL_MEM_TYPE:
      return set_param<cl_uint>(m->is_image ? CL_MEM_OBJECT_IMAGE2D
                                            : CL_MEM_OBJECT_BUFFER,
                                size, value, size_ret);
    case CL_MEM_FLAGS: return set_param(m->flags, size, value, size_ret);
    case CL_MEM_SIZE: return set_param<std::size_t>(m->size, size, value, size_ret);
    case CL_MEM_HOST_PTR: return set_param(m->host_ptr, size, value, size_ret);
    case CL_MEM_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(m->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_MEM_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(m->ctx);
      return set_param(h, size, value, size_ret);
    }
    default: return CL_INVALID_VALUE;
  }
}

cl_int scl_GetImageInfo(cl_mem mem, cl_image_info pn, std::size_t size,
                        void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* m = as_object<MemObj>(mem);
  if (m == nullptr || !m->is_image) return CL_INVALID_MEM_OBJECT;
  switch (pn) {
    case CL_IMAGE_FORMAT: return set_param(m->format, size, value, size_ret);
    case CL_IMAGE_ELEMENT_SIZE:
      return set_param<std::size_t>(4 * m->channels, size, value, size_ret);
    case CL_IMAGE_ROW_PITCH:
      return set_param<std::size_t>(m->row_pitch, size, value, size_ret);
    case CL_IMAGE_WIDTH: return set_param<std::size_t>(m->width, size, value, size_ret);
    case CL_IMAGE_HEIGHT:
      return set_param<std::size_t>(m->height, size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---- sampler ----------------------------------------------------------------

cl_sampler scl_CreateSampler(cl_context c, cl_bool normalized,
                             cl_addressing_mode am, cl_filter_mode fm, cl_int* err) {
  rt().charge_api_call();
  auto set_err = [&](cl_int e) {
    if (err != nullptr) *err = e;
  };
  auto* ctx = as_object<Context>(c);
  if (ctx == nullptr) {
    set_err(CL_INVALID_CONTEXT);
    return nullptr;
  }
  ctx->retain();
  set_err(CL_SUCCESS);
  return reinterpret_cast<cl_sampler>(new Sampler(ctx, normalized, am, fm));
}

cl_int scl_RetainSampler(cl_sampler s) {
  auto* smp = as_object<Sampler>(s);
  if (smp == nullptr) return CL_INVALID_SAMPLER;
  smp->retain();
  return CL_SUCCESS;
}
cl_int scl_ReleaseSampler(cl_sampler s) {
  auto* smp = as_object<Sampler>(s);
  if (smp == nullptr) return CL_INVALID_SAMPLER;
  unref(smp);
  return CL_SUCCESS;
}

cl_int scl_GetSamplerInfo(cl_sampler s, cl_sampler_info pn, std::size_t size,
                          void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* smp = as_object<Sampler>(s);
  if (smp == nullptr) return CL_INVALID_SAMPLER;
  switch (pn) {
    case CL_SAMPLER_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(smp->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_SAMPLER_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(smp->ctx);
      return set_param(h, size, value, size_ret);
    }
    case CL_SAMPLER_NORMALIZED_COORDS:
      return set_param(smp->normalized, size, value, size_ret);
    case CL_SAMPLER_ADDRESSING_MODE:
      return set_param(smp->addressing, size, value, size_ret);
    case CL_SAMPLER_FILTER_MODE: return set_param(smp->filter, size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---- program -------------------------------------------------------------------

constexpr char kBinMagic[] = "SIMCLBIN1";

std::string make_binary(const Program& p) {
  std::string b(kBinMagic);
  b.push_back('\0');
  b += p.source;
  return b;
}

bool parse_binary(const unsigned char* data, std::size_t len, std::string& source) {
  const std::size_t mlen = sizeof(kBinMagic);  // includes the NUL
  if (len < mlen || std::memcmp(data, kBinMagic, mlen) != 0) return false;
  source.assign(reinterpret_cast<const char*>(data) + mlen, len - mlen);
  return true;
}

cl_program scl_CreateProgramWithSource(cl_context c, cl_uint count,
                                       const char** strings, const std::size_t* lengths,
                                       cl_int* err) {
  rt().charge_api_call();
  auto set_err = [&](cl_int e) {
    if (err != nullptr) *err = e;
  };
  auto* ctx = as_object<Context>(c);
  if (ctx == nullptr) {
    set_err(CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (count == 0 || strings == nullptr) {
    set_err(CL_INVALID_VALUE);
    return nullptr;
  }
  std::string src;
  for (cl_uint i = 0; i < count; ++i) {
    if (strings[i] == nullptr) {
      set_err(CL_INVALID_VALUE);
      return nullptr;
    }
    if (lengths != nullptr && lengths[i] != 0)
      src.append(strings[i], lengths[i]);
    else
      src.append(strings[i]);
  }
  ctx->retain();
  set_err(CL_SUCCESS);
  return reinterpret_cast<cl_program>(new Program(ctx, std::move(src), false));
}

cl_program scl_CreateProgramWithBinary(cl_context c, cl_uint num_devices,
                                       const cl_device_id* devices,
                                       const std::size_t* lengths,
                                       const unsigned char** binaries,
                                       cl_int* binary_status, cl_int* err) {
  rt().charge_api_call();
  auto set_err = [&](cl_int e) {
    if (err != nullptr) *err = e;
  };
  auto* ctx = as_object<Context>(c);
  if (ctx == nullptr) {
    set_err(CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (num_devices == 0 || devices == nullptr || lengths == nullptr ||
      binaries == nullptr) {
    set_err(CL_INVALID_VALUE);
    return nullptr;
  }
  std::string src;
  if (!parse_binary(binaries[0], lengths[0], src)) {
    if (binary_status != nullptr) binary_status[0] = CL_INVALID_BINARY;
    set_err(CL_INVALID_BINARY);
    return nullptr;
  }
  if (binary_status != nullptr)
    for (cl_uint i = 0; i < num_devices; ++i) binary_status[i] = CL_SUCCESS;
  ctx->retain();
  set_err(CL_SUCCESS);
  return reinterpret_cast<cl_program>(new Program(ctx, std::move(src), true));
}

cl_int scl_RetainProgram(cl_program p) {
  auto* prog = as_object<Program>(p);
  if (prog == nullptr) return CL_INVALID_PROGRAM;
  prog->retain();
  return CL_SUCCESS;
}
cl_int scl_ReleaseProgram(cl_program p) {
  auto* prog = as_object<Program>(p);
  if (prog == nullptr) return CL_INVALID_PROGRAM;
  unref(prog);
  return CL_SUCCESS;
}

cl_int scl_BuildProgram(cl_program p, cl_uint num_devices,
                        const cl_device_id* devices, const char* options,
                        void (*notify)(cl_program, void*), void* user_data) {
  rt().charge_api_call();
  auto* prog = as_object<Program>(p);
  if (prog == nullptr) return CL_INVALID_PROGRAM;
  prog->options = options != nullptr ? options : "";

  const DeviceSpec& spec = num_devices > 0 && devices != nullptr &&
                                   as_object<Device>(devices[0]) != nullptr
                               ? as_object<Device>(devices[0])->spec
                               : prog->ctx->devices.front()->spec;

  // Warm path: a content-addressed cache hit skips the compiler entirely and
  // is priced as a bytecode deserialization — the restart-time (Tr) killer.
  ProgCache& cache = ProgCache::instance();
  const ProgCacheConfig cache_cfg = cache.config();
  const std::uint64_t cache_key =
      cache_cfg.enabled
          ? ProgCache::key(prog->source, prog->options, spec.name)
          : 0;
  if (cache_cfg.enabled) {
    if (std::optional<ProgCache::Hit> hit = cache.lookup(cache_key)) {
      rt().clock().advance_host(
          cache_cfg.deserialize_base_ns +
          static_cast<SimNs>(cache_cfg.deserialize_ns_per_byte *
                             static_cast<double>(hit->serialized_bytes)));
      prog->module = std::move(hit->module);
      prog->status = CL_BUILD_SUCCESS;
      prog->build_log.clear();
      if (notify != nullptr) notify(p, user_data);
      return CL_SUCCESS;
    }
  }

  // Cold path cost model: per-vendor base + per-byte (Figure 7).
  rt().clock().advance_host(
      spec.compile_base_ns +
      static_cast<SimNs>(spec.compile_ns_per_byte *
                         static_cast<double>(prog->source.size())));

  clc::CompileResult res = clc::compile(prog->source, prog->options);
  if (!res.ok()) {
    prog->status = static_cast<cl_build_status>(CL_BUILD_ERROR);
    prog->build_log = res.build_log;
    return CL_BUILD_PROGRAM_FAILURE;
  }
  prog->module = std::shared_ptr<const clc::Module>(std::move(res.module));
  prog->status = CL_BUILD_SUCCESS;
  prog->build_log.clear();
  if (cache_cfg.enabled) cache.insert(cache_key, prog->module);
  if (notify != nullptr) notify(p, user_data);
  return CL_SUCCESS;
}

cl_int scl_GetProgramInfo(cl_program p, cl_program_info pn, std::size_t size,
                          void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* prog = as_object<Program>(p);
  if (prog == nullptr) return CL_INVALID_PROGRAM;
  switch (pn) {
    case CL_PROGRAM_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(prog->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_PROGRAM_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(prog->ctx);
      return set_param(h, size, value, size_ret);
    }
    case CL_PROGRAM_NUM_DEVICES:
      return set_param<cl_uint>(static_cast<cl_uint>(prog->ctx->devices.size()),
                                size, value, size_ret);
    case CL_PROGRAM_DEVICES: {
      std::vector<cl_device_id> hs;
      for (Device* d : prog->ctx->devices)
        hs.push_back(reinterpret_cast<cl_device_id>(d));
      return set_param_bytes(hs.data(), hs.size() * sizeof(cl_device_id), size,
                             value, size_ret);
    }
    case CL_PROGRAM_SOURCE: return set_param_str(prog->source, size, value, size_ret);
    case CL_PROGRAM_BINARY_SIZES: {
      const std::size_t bs = make_binary(*prog).size();
      return set_param<std::size_t>(bs, size, value, size_ret);
    }
    case CL_PROGRAM_BINARIES: {
      if (value == nullptr) {
        if (size_ret != nullptr) *size_ret = sizeof(unsigned char*);
        return CL_SUCCESS;
      }
      auto** out = static_cast<unsigned char**>(value);
      const std::string b = make_binary(*prog);
      if (out[0] != nullptr) std::memcpy(out[0], b.data(), b.size());
      return CL_SUCCESS;
    }
    default: return CL_INVALID_VALUE;
  }
}

cl_int scl_GetProgramBuildInfo(cl_program p, cl_device_id device,
                               cl_program_build_info pn, std::size_t size,
                               void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  (void)device;
  auto* prog = as_object<Program>(p);
  if (prog == nullptr) return CL_INVALID_PROGRAM;
  switch (pn) {
    case CL_PROGRAM_BUILD_STATUS: return set_param(prog->status, size, value, size_ret);
    case CL_PROGRAM_BUILD_OPTIONS:
      return set_param_str(prog->options, size, value, size_ret);
    case CL_PROGRAM_BUILD_LOG: return set_param_str(prog->build_log, size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---- kernel ---------------------------------------------------------------------

cl_kernel scl_CreateKernel(cl_program p, const char* name, cl_int* err) {
  rt().charge_api_call();
  auto set_err = [&](cl_int e) {
    if (err != nullptr) *err = e;
  };
  auto* prog = as_object<Program>(p);
  if (prog == nullptr) {
    set_err(CL_INVALID_PROGRAM);
    return nullptr;
  }
  if (prog->module == nullptr) {
    set_err(CL_INVALID_PROGRAM_EXECUTABLE);
    return nullptr;
  }
  if (name == nullptr) {
    set_err(CL_INVALID_VALUE);
    return nullptr;
  }
  const clc::FuncDecl* fn = prog->module->find_func(name);
  if (fn == nullptr || !fn->is_kernel) {
    set_err(CL_INVALID_KERNEL_NAME);
    return nullptr;
  }
  set_err(CL_SUCCESS);
  return reinterpret_cast<cl_kernel>(new Kernel(prog, fn));
}

cl_int scl_CreateKernelsInProgram(cl_program p, cl_uint num_kernels,
                                  cl_kernel* kernels, cl_uint* num_ret) {
  rt().charge_api_call();
  auto* prog = as_object<Program>(p);
  if (prog == nullptr) return CL_INVALID_PROGRAM;
  if (prog->module == nullptr) return CL_INVALID_PROGRAM_EXECUTABLE;
  const auto ks = prog->module->kernels();
  if (num_ret != nullptr) *num_ret = static_cast<cl_uint>(ks.size());
  if (kernels != nullptr) {
    if (num_kernels < ks.size()) return CL_INVALID_VALUE;
    for (std::size_t i = 0; i < ks.size(); ++i)
      kernels[i] = reinterpret_cast<cl_kernel>(new Kernel(prog, ks[i]));
  }
  return CL_SUCCESS;
}

cl_int scl_RetainKernel(cl_kernel k) {
  auto* ker = as_object<Kernel>(k);
  if (ker == nullptr) return CL_INVALID_KERNEL;
  ker->retain();
  return CL_SUCCESS;
}
cl_int scl_ReleaseKernel(cl_kernel k) {
  auto* ker = as_object<Kernel>(k);
  if (ker == nullptr) return CL_INVALID_KERNEL;
  unref(ker);
  return CL_SUCCESS;
}

cl_int scl_SetKernelArg(cl_kernel k, cl_uint idx, std::size_t arg_size,
                        const void* arg_value) {
  rt().charge_api_call();
  auto* ker = as_object<Kernel>(k);
  if (ker == nullptr) return CL_INVALID_KERNEL;
  if (idx >= ker->args.size()) return CL_INVALID_ARG_INDEX;
  const clc::ParamInfo& p = ker->fn->params[idx];

  std::lock_guard<std::mutex> lk(ker->mu);
  Kernel::Arg& slot = ker->args[idx];
  // drop previous binding
  unref(slot.mem);
  unref(slot.sampler);
  slot = Kernel::Arg{};

  if (p.is_local_ptr) {
    if (arg_value != nullptr || arg_size == 0) return CL_INVALID_ARG_VALUE;
    slot.ka.k = clc::KernelArg::K::LocalAlloc;
    slot.ka.local_bytes = arg_size;
    slot.set = true;
    return CL_SUCCESS;
  }
  if (p.type.kind == clc::Kind::Sampler) {
    if (arg_size != sizeof(cl_sampler) || arg_value == nullptr)
      return CL_INVALID_ARG_SIZE;
    cl_sampler sh = nullptr;
    std::memcpy(&sh, arg_value, sizeof sh);
    auto* smp = as_object<Sampler>(sh);
    if (smp == nullptr) return CL_INVALID_SAMPLER;
    smp->retain();
    slot.sampler = smp;
    slot.ka.k = clc::KernelArg::K::Sampler;
    slot.ka.sampler.normalized = smp->normalized != CL_FALSE;
    slot.ka.sampler.addressing = smp->addressing;
    slot.ka.sampler.filter = smp->filter;
    slot.set = true;
    return CL_SUCCESS;
  }
  if (p.is_handle) {  // __global/__constant pointer or image
    if (arg_size != sizeof(cl_mem) || arg_value == nullptr)
      return CL_INVALID_ARG_SIZE;
    cl_mem mh = nullptr;
    std::memcpy(&mh, arg_value, sizeof mh);
    auto* m = as_object<MemObj>(mh);
    if (m == nullptr) return CL_INVALID_MEM_OBJECT;
    m->retain();
    slot.mem = m;
    if (p.type.kind == clc::Kind::Image2D || p.type.kind == clc::Kind::Image3D) {
      if (!m->is_image) {
        unref(m);
        slot.mem = nullptr;
        return CL_INVALID_ARG_VALUE;
      }
      slot.ka.k = clc::KernelArg::K::Image;
    } else {
      slot.ka.k = clc::KernelArg::K::GlobalPtr;
    }
    slot.set = true;
    return CL_SUCCESS;
  }
  // plain by-value argument
  if (arg_value == nullptr || arg_size == 0) return CL_INVALID_ARG_VALUE;
  slot.ka.k = clc::KernelArg::K::Bytes;
  slot.ka.bytes.assign(static_cast<const std::uint8_t*>(arg_value),
                       static_cast<const std::uint8_t*>(arg_value) + arg_size);
  slot.set = true;
  return CL_SUCCESS;
}

cl_int scl_GetKernelInfo(cl_kernel k, cl_kernel_info pn, std::size_t size,
                         void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* ker = as_object<Kernel>(k);
  if (ker == nullptr) return CL_INVALID_KERNEL;
  switch (pn) {
    case CL_KERNEL_FUNCTION_NAME: return set_param_str(ker->name, size, value, size_ret);
    case CL_KERNEL_NUM_ARGS:
      return set_param<cl_uint>(static_cast<cl_uint>(ker->args.size()), size,
                                value, size_ret);
    case CL_KERNEL_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(ker->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_KERNEL_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(ker->prog->ctx);
      return set_param(h, size, value, size_ret);
    }
    case CL_KERNEL_PROGRAM: {
      auto h = reinterpret_cast<cl_program>(ker->prog);
      return set_param(h, size, value, size_ret);
    }
    default: return CL_INVALID_VALUE;
  }
}

cl_int scl_GetKernelWorkGroupInfo(cl_kernel k, cl_device_id device,
                                  cl_kernel_work_group_info pn, std::size_t size,
                                  void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* ker = as_object<Kernel>(k);
  if (ker == nullptr) return CL_INVALID_KERNEL;
  auto* dev = as_object<Device>(device);
  if (dev == nullptr) return CL_INVALID_DEVICE;
  switch (pn) {
    case CL_KERNEL_WORK_GROUP_SIZE:
      return set_param<std::size_t>(dev->spec.max_work_group_size, size, value,
                                    size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---- events -----------------------------------------------------------------------

cl_int scl_WaitForEvents(cl_uint num, const cl_event* events) {
  rt().charge_api_call();
  if (num == 0 || events == nullptr) return CL_INVALID_VALUE;
  SimNs latest = 0;
  for (cl_uint i = 0; i < num; ++i) {
    auto* ev = as_object<Event>(events[i]);
    if (ev == nullptr) return CL_INVALID_EVENT;
    latest = std::max(latest, ev->wait());
  }
  rt().clock().sync_host_to(latest);
  return CL_SUCCESS;
}

cl_int scl_GetEventInfo(cl_event e, cl_event_info pn, std::size_t size,
                        void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* ev = as_object<Event>(e);
  if (ev == nullptr) return CL_INVALID_EVENT;
  switch (pn) {
    case CL_EVENT_COMMAND_QUEUE: {
      auto h = reinterpret_cast<cl_command_queue>(ev->queue);
      return set_param(h, size, value, size_ret);
    }
    case CL_EVENT_COMMAND_TYPE: return set_param(ev->command_type, size, value, size_ret);
    case CL_EVENT_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(ev->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_EVENT_COMMAND_EXECUTION_STATUS: {
      std::lock_guard<std::mutex> lk(ev->mu);
      return set_param(ev->status, size, value, size_ret);
    }
    default: return CL_INVALID_VALUE;
  }
}

cl_int scl_RetainEvent(cl_event e) {
  auto* ev = as_object<Event>(e);
  if (ev == nullptr) return CL_INVALID_EVENT;
  ev->retain();
  return CL_SUCCESS;
}
cl_int scl_ReleaseEvent(cl_event e) {
  auto* ev = as_object<Event>(e);
  if (ev == nullptr) return CL_INVALID_EVENT;
  unref(ev);
  return CL_SUCCESS;
}

cl_int scl_GetEventProfilingInfo(cl_event e, cl_profiling_info pn, std::size_t size,
                                 void* value, std::size_t* size_ret) {
  rt().charge_api_call();
  auto* ev = as_object<Event>(e);
  if (ev == nullptr) return CL_INVALID_EVENT;
  std::lock_guard<std::mutex> lk(ev->mu);
  if (ev->status != CL_COMPLETE) return CL_PROFILING_INFO_NOT_AVAILABLE;
  switch (pn) {
    case CL_PROFILING_COMMAND_QUEUED:
      return set_param<cl_ulong>(ev->t_queued, size, value, size_ret);
    case CL_PROFILING_COMMAND_SUBMIT:
      return set_param<cl_ulong>(ev->t_submit, size, value, size_ret);
    case CL_PROFILING_COMMAND_START:
      return set_param<cl_ulong>(ev->t_start, size, value, size_ret);
    case CL_PROFILING_COMMAND_END:
      return set_param<cl_ulong>(ev->t_end, size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---- enqueue ------------------------------------------------------------------------

cl_int collect_waits(cl_uint num, const cl_event* list, Command& cmd) {
  if ((num != 0 && list == nullptr) || (num == 0 && list != nullptr))
    return CL_INVALID_EVENT_WAIT_LIST;
  for (cl_uint i = 0; i < num; ++i) {
    auto* ev = as_object<Event>(list[i]);
    if (ev == nullptr) return CL_INVALID_EVENT_WAIT_LIST;
    ev->retain();
    cmd.waits.push_back(ev);
  }
  return CL_SUCCESS;
}

void rollback_waits(Command& cmd) {
  for (Event* w : cmd.waits) unref(w);
  cmd.waits.clear();
}

// Attach a completion event: always create one internally if the caller wants
// to block; export it when `out` is non-null.
Event* attach_event(Queue* q, cl_uint type, cl_event* out, bool need_internal,
                    Command& cmd) {
  if (out == nullptr && !need_internal) return nullptr;
  auto* ev = new Event(q, type);
  ev->retain();  // one ref for the worker (released after complete)
  cmd.event = ev;
  if (out != nullptr)
    *out = reinterpret_cast<cl_event>(ev);  // caller owns the first ref
  return ev;
}

// After a blocking wait, drop the internal reference if it wasn't exported.
void finish_blocking(Event* ev, cl_event* out, cl_int* status) {
  const SimNs end = ev->wait();
  rt().clock().sync_host_to(end);
  {
    std::lock_guard<std::mutex> lk(ev->mu);
    if (status != nullptr) *status = ev->error;
  }
  if (out == nullptr) unref(ev);
}

cl_int scl_EnqueueReadBuffer(cl_command_queue q, cl_mem buffer, cl_bool blocking,
                             std::size_t offset, std::size_t cb, void* ptr,
                             cl_uint num_waits, const cl_event* waits, cl_event* event) {
  rt().charge_api_call();
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  auto* m = as_object<MemObj>(buffer);
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr || offset + cb > m->size) return CL_INVALID_VALUE;
  Command cmd;
  cmd.kind = Command::Kind::ReadBuffer;
  const cl_int werr = collect_waits(num_waits, waits, cmd);
  if (werr != CL_SUCCESS) return werr;
  m->retain();
  cmd.src = m;
  cmd.src_off = offset;
  cmd.bytes = cb;
  cmd.host_dst = ptr;
  cmd.enqueue_host_ns = rt().clock().host_now();
  Event* ev = attach_event(queue, CL_COMMAND_READ_BUFFER, event, blocking != CL_FALSE, cmd);
  queue->enqueue(std::move(cmd));
  if (blocking != CL_FALSE) {
    cl_int status = CL_SUCCESS;
    finish_blocking(ev, event, &status);
    return status;
  }
  return CL_SUCCESS;
}

cl_int scl_EnqueueWriteBuffer(cl_command_queue q, cl_mem buffer, cl_bool blocking,
                              std::size_t offset, std::size_t cb, const void* ptr,
                              cl_uint num_waits, const cl_event* waits, cl_event* event) {
  rt().charge_api_call();
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  auto* m = as_object<MemObj>(buffer);
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr || offset + cb > m->size) return CL_INVALID_VALUE;
  Command cmd;
  cmd.kind = Command::Kind::WriteBuffer;
  const cl_int werr = collect_waits(num_waits, waits, cmd);
  if (werr != CL_SUCCESS) return werr;
  m->retain();
  cmd.dst = m;
  cmd.dst_off = offset;
  cmd.bytes = cb;
  cmd.host_src = ptr;
  cmd.enqueue_host_ns = rt().clock().host_now();
  Event* ev = attach_event(queue, CL_COMMAND_WRITE_BUFFER, event, blocking != CL_FALSE, cmd);
  queue->enqueue(std::move(cmd));
  if (blocking != CL_FALSE) {
    cl_int status = CL_SUCCESS;
    finish_blocking(ev, event, &status);
    return status;
  }
  return CL_SUCCESS;
}

cl_int scl_EnqueueCopyBuffer(cl_command_queue q, cl_mem src, cl_mem dst,
                             std::size_t src_off, std::size_t dst_off, std::size_t cb,
                             cl_uint num_waits, const cl_event* waits, cl_event* event) {
  rt().charge_api_call();
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  auto* ms = as_object<MemObj>(src);
  auto* md = as_object<MemObj>(dst);
  if (ms == nullptr || md == nullptr) return CL_INVALID_MEM_OBJECT;
  if (src_off + cb > ms->size || dst_off + cb > md->size) return CL_INVALID_VALUE;
  if (ms == md && src_off < dst_off + cb && dst_off < src_off + cb)
    return CL_MEM_COPY_OVERLAP;
  Command cmd;
  cmd.kind = Command::Kind::CopyBuffer;
  const cl_int werr = collect_waits(num_waits, waits, cmd);
  if (werr != CL_SUCCESS) return werr;
  ms->retain();
  md->retain();
  cmd.src = ms;
  cmd.dst = md;
  cmd.src_off = src_off;
  cmd.dst_off = dst_off;
  cmd.bytes = cb;
  cmd.enqueue_host_ns = rt().clock().host_now();
  attach_event(queue, CL_COMMAND_COPY_BUFFER, event, false, cmd);
  queue->enqueue(std::move(cmd));
  return CL_SUCCESS;
}

// Picks a legal default local size when the caller passes null.
void pick_local_size(const DeviceSpec& spec, clc::NDRange& nd) {
  std::size_t budget = spec.max_work_group_size;
  for (std::uint32_t d = 0; d < nd.dim; ++d) {
    std::size_t pick = 1;
    for (std::size_t c = std::min<std::size_t>(budget, 64); c >= 1; c /= 2) {
      if (nd.global[d] % c == 0) {
        pick = c;
        break;
      }
    }
    nd.local[d] = pick;
    budget = std::max<std::size_t>(1, budget / pick);
  }
}

cl_int scl_EnqueueNDRangeKernel(cl_command_queue q, cl_kernel k, cl_uint dim,
                                const std::size_t* goff, const std::size_t* gsz,
                                const std::size_t* lsz, cl_uint num_waits,
                                const cl_event* waits, cl_event* event) {
  rt().charge_api_call();
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  auto* ker = as_object<Kernel>(k);
  if (ker == nullptr) return CL_INVALID_KERNEL;
  if (dim < 1 || dim > 3) return CL_INVALID_WORK_DIMENSION;
  if (gsz == nullptr) return CL_INVALID_GLOBAL_WORK_SIZE;

  clc::NDRange nd;
  nd.dim = dim;
  std::size_t local_total = 1;
  for (cl_uint d = 0; d < dim; ++d) {
    if (gsz[d] == 0) return CL_INVALID_GLOBAL_WORK_SIZE;
    nd.global[d] = gsz[d];
    nd.offset[d] = goff != nullptr ? goff[d] : 0;
  }
  if (lsz != nullptr) {
    for (cl_uint d = 0; d < dim; ++d) {
      if (lsz[d] == 0 || lsz[d] > queue->dev->spec.max_work_item_sizes[d])
        return CL_INVALID_WORK_ITEM_SIZE;
      if (nd.global[d] % lsz[d] != 0) return CL_INVALID_WORK_GROUP_SIZE;
      nd.local[d] = lsz[d];
      local_total *= lsz[d];
    }
    if (local_total > queue->dev->spec.max_work_group_size)
      return CL_INVALID_WORK_GROUP_SIZE;
  } else {
    pick_local_size(queue->dev->spec, nd);
  }

  Command cmd;
  cmd.kind = Command::Kind::NDRangeKernel;
  cmd.nd = nd;
  const cl_int werr = collect_waits(num_waits, waits, cmd);
  if (werr != CL_SUCCESS) return werr;

  // Snapshot arguments under the kernel lock (OpenCL binds at enqueue).
  {
    std::lock_guard<std::mutex> lk(ker->mu);
    cmd.args.reserve(ker->args.size());
    for (std::size_t i = 0; i < ker->args.size(); ++i) {
      const Kernel::Arg& a = ker->args[i];
      if (!a.set) {
        rollback_waits(cmd);
        return CL_INVALID_KERNEL_ARGS;
      }
      clc::KernelArg ka = a.ka;
      if (a.mem != nullptr) {
        a.mem->retain();
        cmd.arg_mems.push_back(a.mem);
        // Dirty-tracking write set: every buffer/image arg except params the
        // source proves read-only (`const` pointees, __constant space).
        // Image params have no reliable const form, so they always count.
        const clc::ParamInfo* pi = i < ker->fn->params.size()
                                       ? &ker->fn->params[i]
                                       : nullptr;
        const bool read_only =
            pi != nullptr && pi->type.kind == clc::Kind::Pointer &&
            (pi->is_const || pi->type.as == clc::AddrSpace::Constant);
        if (!read_only) cmd.written_mems.push_back(a.mem);
        if (ka.k == clc::KernelArg::K::GlobalPtr) {
          ka.ptr = a.mem->storage.data();
        } else if (ka.k == clc::KernelArg::K::Image) {
          ka.image.data = a.mem->storage.data();
          ka.image.width = a.mem->width;
          ka.image.height = a.mem->height;
          ka.image.row_pitch = a.mem->row_pitch;
          ka.image.channels = a.mem->channels;
          ka.image.float_channels = a.mem->float_channels;
        }
        if (a.mem->use_host_ptr()) cmd.host_synced_mems.push_back(a.mem);
      }
      cmd.args.push_back(std::move(ka));
    }
  }
  ker->retain();
  cmd.kernel = ker;
  cmd.enqueue_host_ns = rt().clock().host_now();
  attach_event(queue, CL_COMMAND_NDRANGE_KERNEL, event, false, cmd);
  queue->enqueue(std::move(cmd));
  return CL_SUCCESS;
}

cl_int scl_EnqueueTask(cl_command_queue q, cl_kernel k, cl_uint num_waits,
                       const cl_event* waits, cl_event* event) {
  const std::size_t one = 1;
  return scl_EnqueueNDRangeKernel(q, k, 1, nullptr, &one, &one, num_waits, waits,
                                  event);
}

cl_int scl_EnqueueMarker(cl_command_queue q, cl_event* event) {
  rt().charge_api_call();
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (event == nullptr) return CL_INVALID_VALUE;
  Command cmd;
  cmd.kind = Command::Kind::Marker;
  cmd.enqueue_host_ns = rt().clock().host_now();
  attach_event(queue, CL_COMMAND_MARKER, event, false, cmd);
  queue->enqueue(std::move(cmd));
  return CL_SUCCESS;
}

cl_int scl_EnqueueBarrier(cl_command_queue q) {
  rt().charge_api_call();
  // in-order queues: a barrier is implicit
  return as_object<Queue>(q) != nullptr ? CL_SUCCESS : CL_INVALID_COMMAND_QUEUE;
}

cl_int scl_EnqueueWaitForEvents(cl_command_queue q, cl_uint num, const cl_event* evs) {
  rt().charge_api_call();
  auto* queue = as_object<Queue>(q);
  if (queue == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (num == 0 || evs == nullptr) return CL_INVALID_VALUE;
  Command cmd;
  cmd.kind = Command::Kind::WaitEvents;
  const cl_int werr = collect_waits(num, evs, cmd);
  if (werr != CL_SUCCESS) return werr;
  cmd.enqueue_host_ns = rt().clock().host_now();
  queue->enqueue(std::move(cmd));
  return CL_SUCCESS;
}

// ---- sim extensions ---------------------------------------------------------------

cl_int scl_SimGetHostTimeNS(cl_ulong* t) {
  if (t == nullptr) return CL_INVALID_VALUE;
  *t = rt().clock().host_now();
  return CL_SUCCESS;
}

cl_int scl_SimAdvanceHostNS(cl_ulong dt) {
  rt().clock().advance_host(dt);
  return CL_SUCCESS;
}

}  // namespace

namespace simcl {

const checl_api::DispatchTable& dispatch_table() noexcept {
  static const checl_api::DispatchTable kTable = {
      scl_GetPlatformIDs,
      scl_GetPlatformInfo,
      scl_GetDeviceIDs,
      scl_GetDeviceInfo,
      scl_CreateContext,
      scl_RetainContext,
      scl_ReleaseContext,
      scl_GetContextInfo,
      scl_CreateCommandQueue,
      scl_RetainCommandQueue,
      scl_ReleaseCommandQueue,
      scl_GetCommandQueueInfo,
      scl_Flush,
      scl_Finish,
      scl_CreateBuffer,
      scl_CreateImage2D,
      scl_RetainMemObject,
      scl_ReleaseMemObject,
      scl_GetMemObjectInfo,
      scl_GetImageInfo,
      scl_CreateSampler,
      scl_RetainSampler,
      scl_ReleaseSampler,
      scl_GetSamplerInfo,
      scl_CreateProgramWithSource,
      scl_CreateProgramWithBinary,
      scl_RetainProgram,
      scl_ReleaseProgram,
      scl_BuildProgram,
      scl_GetProgramInfo,
      scl_GetProgramBuildInfo,
      scl_CreateKernel,
      scl_CreateKernelsInProgram,
      scl_RetainKernel,
      scl_ReleaseKernel,
      scl_SetKernelArg,
      scl_GetKernelInfo,
      scl_GetKernelWorkGroupInfo,
      scl_WaitForEvents,
      scl_GetEventInfo,
      scl_RetainEvent,
      scl_ReleaseEvent,
      scl_GetEventProfilingInfo,
      scl_EnqueueReadBuffer,
      scl_EnqueueWriteBuffer,
      scl_EnqueueCopyBuffer,
      scl_EnqueueNDRangeKernel,
      scl_EnqueueTask,
      scl_EnqueueMarker,
      scl_EnqueueBarrier,
      scl_EnqueueWaitForEvents,
      scl_SimGetHostTimeNS,
      scl_SimAdvanceHostNS,
  };
  return kTable;
}

}  // namespace simcl
