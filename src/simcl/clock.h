// clock.h — the discrete-event virtual clock of the simcl substrate.
//
// All times this repository reports are read from here.  There are two kinds
// of timelines: the single host timeline (advanced by API-call overheads,
// compiles, file I/O and IPC charges) and one timeline per command queue
// (advanced by transfers and kernel executions).  clFinish / event waits
// reconcile: host_now = max(host_now, completion of what was waited on).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace simcl {

using SimNs = std::uint64_t;

class Clock {
 public:
  [[nodiscard]] SimNs host_now() const noexcept {
    return host_ns_.load(std::memory_order_acquire);
  }

  // Advance the host timeline by `delta` and return the new now.
  SimNs advance_host(SimNs delta) noexcept {
    return host_ns_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  }

  // Host waited for something that finished at sim time `t`.
  void sync_host_to(SimNs t) noexcept {
    SimNs cur = host_ns_.load(std::memory_order_acquire);
    while (t > cur &&
           !host_ns_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }

  // Rewind/set the host timeline absolutely.  Only the proxy's group
  // scheduler uses this: after GroupEnd it replaces the serially-accumulated
  // span of a concurrent-recreation wave with the wave's W-worker makespan.
  void set_host(SimNs t) noexcept {
    host_ns_.store(t, std::memory_order_release);
  }

  void reset() noexcept { host_ns_.store(0, std::memory_order_release); }

 private:
  std::atomic<SimNs> host_ns_{0};
};

// bytes / (bytes per second) in integer nanoseconds.
constexpr SimNs transfer_ns(std::uint64_t bytes, double bytes_per_sec) noexcept {
  if (bytes_per_sec <= 0.0) return 0;
  return static_cast<SimNs>(static_cast<double>(bytes) / bytes_per_sec * 1e9);
}

}  // namespace simcl
