#include "simcl/objects.h"

#include <mutex>
#include <unordered_set>

#include "simcl/queue.h"
#include "simcl/runtime.h"

namespace simcl {

namespace {
std::mutex g_live_mu;
std::unordered_set<const void*> g_live;
}  // namespace

ObjectBase::ObjectBase(ObjType t) noexcept : otype(t) {
  std::lock_guard<std::mutex> lk(g_live_mu);
  g_live.insert(this);
}

ObjectBase::~ObjectBase() {
  magic = 0;
  std::lock_guard<std::mutex> lk(g_live_mu);
  g_live.erase(this);
}

bool is_live_object(const void* p) noexcept {
  std::lock_guard<std::mutex> lk(g_live_mu);
  return g_live.count(p) != 0;
}

MemObj::~MemObj() { unref(ctx); }

Sampler::~Sampler() { unref(ctx); }

Program::~Program() { unref(ctx); }

Kernel::Kernel(Program* p, const clc::FuncDecl* f)
    : ObjectBase(kType), prog(p), fn(f), name(f->name) {
  prog->retain();
  args.resize(fn->params.size());
}

Kernel::~Kernel() {
  for (Arg& a : args) {
    unref(a.mem);
    unref(a.sampler);
  }
  unref(prog);
}

Event::Event(Queue* q, cl_uint cmd)
    : ObjectBase(kType), queue(q), command_type(cmd) {}

Event::~Event() = default;

}  // namespace simcl
