#include "simcl/objects.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "simcl/queue.h"
#include "simcl/runtime.h"

namespace simcl {

namespace {
std::mutex g_live_mu;
std::unordered_set<const void*> g_live;
}  // namespace

ObjectBase::ObjectBase(ObjType t) noexcept : otype(t) {
  std::lock_guard<std::mutex> lk(g_live_mu);
  g_live.insert(this);
}

ObjectBase::~ObjectBase() {
  magic = 0;
  std::lock_guard<std::mutex> lk(g_live_mu);
  g_live.erase(this);
}

bool is_live_object(const void* p) noexcept {
  std::lock_guard<std::mutex> lk(g_live_mu);
  return g_live.count(p) != 0;
}

void DirtyTracker::mark(std::size_t off, std::size_t len) noexcept {
  if (len == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (all_) return;
  const std::size_t lo = std::min(off, size_);
  const std::size_t hi = std::min(off + len, size_);
  if (lo >= hi) return;
  // Insert [lo, hi), merging every overlapping-or-adjacent interval.
  std::size_t nlo = lo;
  std::size_t nhi = hi;
  auto it = ivs_.begin();
  while (it != ivs_.end()) {
    if (it->second < nlo || it->first > nhi) {
      ++it;
      continue;
    }
    nlo = std::min(nlo, it->first);
    nhi = std::max(nhi, it->second);
    it = ivs_.erase(it);
  }
  auto pos = std::lower_bound(
      ivs_.begin(), ivs_.end(), std::make_pair(nlo, nhi));
  ivs_.insert(pos, {nlo, nhi});
  if (ivs_.size() > kMaxIntervals) {
    all_ = true;
    ivs_.clear();
  }
}

void DirtyTracker::mark_all() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  all_ = true;
  ivs_.clear();
}

std::vector<std::uint8_t> DirtyTracker::fetch_chunks(std::size_t chunk_bytes,
                                                     bool clear) {
  if (chunk_bytes == 0) chunk_bytes = size_ > 0 ? size_ : 1;
  const std::size_t n = size_ > 0 ? (size_ + chunk_bytes - 1) / chunk_bytes : 0;
  std::vector<std::uint8_t> bits((n + 7) / 8, 0);
  std::lock_guard<std::mutex> lk(mu_);
  if (all_) {
    for (std::size_t i = 0; i < n; ++i) bits[i / 8] |= 1u << (i % 8);
  } else {
    for (const auto& [lo, hi] : ivs_) {
      const std::size_t c0 = lo / chunk_bytes;
      const std::size_t c1 = std::min(n - 1, (hi - 1) / chunk_bytes);
      for (std::size_t c = c0; c <= c1 && c < n; ++c)
        bits[c / 8] |= 1u << (c % 8);
    }
  }
  if (clear) {
    all_ = false;
    ivs_.clear();
  }
  return bits;
}

std::uint64_t DirtyTracker::dirty_bytes(std::size_t chunk_bytes) {
  const auto bits = fetch_chunks(chunk_bytes, false);
  if (chunk_bytes == 0) chunk_bytes = size_ > 0 ? size_ : 1;
  const std::size_t n = size_ > 0 ? (size_ + chunk_bytes - 1) / chunk_bytes : 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((bits[i / 8] >> (i % 8)) & 1u) {
      const std::size_t end = std::min(size_, (i + 1) * chunk_bytes);
      total += end - i * chunk_bytes;
    }
  }
  return total;
}

MemObj::~MemObj() { unref(ctx); }

Sampler::~Sampler() { unref(ctx); }

Program::~Program() { unref(ctx); }

Kernel::Kernel(Program* p, const clc::FuncDecl* f)
    : ObjectBase(kType), prog(p), fn(f), name(f->name) {
  prog->retain();
  args.resize(fn->params.size());
}

Kernel::~Kernel() {
  for (Arg& a : args) {
    unref(a.mem);
    unref(a.sampler);
  }
  unref(prog);
}

Event::Event(Queue* q, cl_uint cmd)
    : ObjectBase(kType), queue(q), command_type(cmd) {}

Event::~Event() = default;

}  // namespace simcl
