#include "simcl/queue.h"

#include <cstring>

#include "simcl/runtime.h"

namespace simcl {

Queue::Queue(Context* c, Device* d, cl_command_queue_properties props)
    : ObjectBase(kType), ctx(c), dev(d), properties(props) {
  ctx->retain();
  worker_ = std::thread([this] { worker_main(); });
}

Queue::~Queue() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  worker_.join();
  // Drop anything never executed (process teardown path).
  for (Command& cmd : pending_) {
    if (cmd.event != nullptr) {
      cmd.event->complete(timeline(), timeline(), CL_INVALID_OPERATION);
      unref(cmd.event);
    }
    for (Event* w : cmd.waits) unref(w);
    for (MemObj* m : cmd.arg_mems) unref(m);
    unref(cmd.src);
    unref(cmd.dst);
    unref(cmd.kernel);
  }
  unref(ctx);
}

void Queue::enqueue(Command cmd) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_.push_back(std::move(cmd));
  cv_.notify_all();
}

SimNs Queue::finish() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_.wait(lk, [&] { return pending_.empty() && !busy_; });
  const SimNs t = timeline();
  Runtime::instance().clock().sync_host_to(t);
  return t;
}

void Queue::worker_main() {
  for (;;) {
    Command cmd;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) {
        if (stop_) return;
        continue;
      }
      cmd = std::move(pending_.front());
      pending_.pop_front();
      busy_ = true;
    }
    execute(cmd);
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_ = false;
      if (pending_.empty()) drained_.notify_all();
    }
  }
}

void Queue::execute(Command& cmd) {
  const DeviceSpec& spec = dev->spec;

  // Dependencies: really block, and take the latest completion sim time.
  SimNs start = std::max(timeline(), cmd.enqueue_host_ns);
  for (Event* w : cmd.waits) start = std::max(start, w->wait());

  if (cmd.event != nullptr) {
    cmd.event->t_queued = cmd.enqueue_host_ns;
    cmd.event->t_submit = start;
    cmd.event->set_status(CL_RUNNING);
  }

  SimNs duration = 0;
  cl_int err = CL_SUCCESS;

  switch (cmd.kind) {
    case Command::Kind::ReadBuffer:
      std::memcpy(cmd.host_dst, cmd.src->storage.data() + cmd.src_off, cmd.bytes);
      duration = spec.transfer_latency_ns +
                 transfer_ns(cmd.bytes, spec.d2h_bytes_per_sec);
      break;
    case Command::Kind::WriteBuffer:
      std::memcpy(cmd.dst->storage.data() + cmd.dst_off, cmd.host_src, cmd.bytes);
      // Dirty marks land *after* the mutation: a concurrent fetch-and-clear
      // either sees the mark (and re-streams) or misses it and the mark
      // survives the clear for the next round / the residue pass.
      cmd.dst->dirty.mark(cmd.dst_off, cmd.bytes);
      duration = spec.transfer_latency_ns +
                 transfer_ns(cmd.bytes, spec.h2d_bytes_per_sec);
      break;
    case Command::Kind::CopyBuffer:
      std::memcpy(cmd.dst->storage.data() + cmd.dst_off,
                  cmd.src->storage.data() + cmd.src_off, cmd.bytes);
      cmd.dst->dirty.mark(cmd.dst_off, cmd.bytes);
      duration = spec.transfer_latency_ns +
                 transfer_ns(cmd.bytes, spec.h2d_bytes_per_sec);
      break;
    case Command::Kind::NDRangeKernel: {
      std::string error;
      duration = run_kernel(cmd, error);
      if (!error.empty()) err = CL_OUT_OF_RESOURCES;
      break;
    }
    case Command::Kind::Marker:
    case Command::Kind::WaitEvents: duration = 0; break;
  }

  const SimNs end = start + duration;
  timeline_ns_.store(end, std::memory_order_release);

  if (cmd.event != nullptr) {
    cmd.event->complete(start, end, err);
    unref(cmd.event);
  }
  for (Event* w : cmd.waits) unref(w);
  for (MemObj* m : cmd.arg_mems) unref(m);
  unref(cmd.src);
  unref(cmd.dst);
  unref(cmd.kernel);
}

SimNs Queue::run_kernel(Command& cmd, std::string& error) {
  const DeviceSpec& spec = dev->spec;
  SimNs duration = spec.launch_overhead_ns;

  // CL_MEM_USE_HOST_PTR semantics: the cached host copy is pushed to the
  // device before the kernel and pulled back after — the redundant-transfer
  // penalty Section IV-D describes.
  for (MemObj* m : cmd.host_synced_mems) {
    std::memcpy(m->storage.data(), m->host_ptr, m->size);
    duration += spec.transfer_latency_ns + transfer_ns(m->size, spec.h2d_bytes_per_sec);
  }

  const clc::Module& mod = *cmd.kernel->prog->module;
  const clc::LaunchResult lr =
      clc::execute_ndrange(mod, *cmd.kernel->fn, cmd.args, cmd.nd);
  // Conservative whole-buffer marks for every writable arg — after the launch
  // (see the WriteBuffer comment in execute()), and even on failure: a kernel
  // that died mid-flight may have stored through any of them.
  for (MemObj* m : cmd.host_synced_mems) m->dirty.mark_all();
  for (MemObj* m : cmd.written_mems) m->dirty.mark_all();
  if (!lr.ok) {
    error = lr.error;
    return duration;
  }
  duration += static_cast<SimNs>(static_cast<double>(lr.ops) / spec.ops_per_sec * 1e9);

  for (MemObj* m : cmd.host_synced_mems) {
    std::memcpy(m->host_ptr, m->storage.data(), m->size);
    duration += spec.transfer_latency_ns + transfer_ns(m->size, spec.d2h_bytes_per_sec);
  }
  return duration;
}

}  // namespace simcl
