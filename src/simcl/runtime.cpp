#include "simcl/runtime.h"

namespace simcl {

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

Runtime::~Runtime() { teardown(); }

void Runtime::teardown() {
  retired_.insert(retired_.end(), platforms_.begin(), platforms_.end());
  platforms_.clear();
  for (Platform* p : retired_) {
    for (Device* d : p->devices) delete d;
    delete p;
  }
  retired_.clear();
  materialized_ = false;
}

void Runtime::configure(std::vector<PlatformSpec> specs) {
  std::lock_guard<std::mutex> lk(mu_);
  // Identical specs keep the materialized platforms: a supervised recovery
  // re-sends Configure on every epoch handshake, and a surviving peer's
  // live handles must stay valid through it.
  if (materialized_ && specs == specs_) return;
  // A genuine reconfigure with objects still materialized can race threads
  // that outlive their epoch (the threaded transport shares this process
  // with the dead epoch's abandoned queue workers), so the old platforms
  // are retired, not freed; the destructor reaps the graveyard.
  retired_.insert(retired_.end(), platforms_.begin(), platforms_.end());
  platforms_.clear();
  materialized_ = false;
  specs_ = std::move(specs);
}

const std::vector<Platform*>& Runtime::platforms() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!materialized_) {
    for (const PlatformSpec& ps : specs_) {
      auto* p = new Platform(ps);
      for (const DeviceSpec& ds : ps.devices)
        p->devices.push_back(new Device(ds, p));
      clock_.advance_host(ps.init_ns);
      platforms_.push_back(p);
    }
    materialized_ = true;
  }
  return platforms_;
}

}  // namespace simcl
