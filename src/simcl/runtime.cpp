#include "simcl/runtime.h"

namespace simcl {

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

Runtime::~Runtime() { teardown(); }

void Runtime::teardown() {
  for (Platform* p : platforms_) {
    for (Device* d : p->devices) delete d;
    delete p;
  }
  platforms_.clear();
  materialized_ = false;
}

void Runtime::configure(std::vector<PlatformSpec> specs) {
  std::lock_guard<std::mutex> lk(mu_);
  teardown();
  specs_ = std::move(specs);
}

const std::vector<Platform*>& Runtime::platforms() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!materialized_) {
    for (const PlatformSpec& ps : specs_) {
      auto* p = new Platform(ps);
      for (const DeviceSpec& ds : ps.devices)
        p->devices.push_back(new Device(ds, p));
      clock_.advance_host(ps.init_ns);
      platforms_.push_back(p);
    }
    materialized_ = true;
  }
  return platforms_;
}

}  // namespace simcl
