// objects.h — the backing objects of the simcl substrate.
//
// Every OpenCL handle in the native path is a pointer to one of these.  Each
// object starts with a magic + type tag so that handle validation works and
// so that CheCL's address-based "is this one of mine?" heuristic has a real
// foreign-object population to discriminate against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "checl/cl.h"
#include "clc/ast.h"
#include "clc/interp.h"
#include "clc/program.h"
#include "simcl/clock.h"
#include "simcl/specs.h"

namespace simcl {

inline constexpr std::uint32_t kMagic = 0x534C4353;  // "SCLS"

enum class ObjType : std::uint32_t {
  Platform, Device, Context, Queue, Mem, Sampler, Program, Kernel, Event,
};

struct ObjectBase {
  std::uint32_t magic = kMagic;
  ObjType otype;
  std::atomic<std::int32_t> refs{1};

  explicit ObjectBase(ObjType t) noexcept;
  virtual ~ObjectBase();

  ObjectBase(const ObjectBase&) = delete;
  ObjectBase& operator=(const ObjectBase&) = delete;

  void retain() noexcept { refs.fetch_add(1, std::memory_order_relaxed); }
  // Returns true when the reference count reached zero (caller deletes).
  [[nodiscard]] bool release() noexcept {
    return refs.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }
};

// True when `p` is a live simcl object.  The proxy server must validate
// handle tokens before touching them — a stale or forged token from a client
// must become CL_INVALID_*, not a wild dereference.
bool is_live_object(const void* p) noexcept;

// Validating handle cast: null for dead/foreign pointers or tag mismatch.
template <typename T>
T* as_object(void* h) noexcept {
  if (h == nullptr || !is_live_object(h)) return nullptr;
  auto* o = static_cast<ObjectBase*>(h);
  if (o->magic != kMagic || o->otype != T::kType) return nullptr;
  return static_cast<T*>(o);
}

struct Device;

struct Platform final : ObjectBase {
  static constexpr ObjType kType = ObjType::Platform;
  PlatformSpec spec;
  std::vector<Device*> devices;  // owned by the runtime, not refcounted

  explicit Platform(PlatformSpec s) : ObjectBase(kType), spec(std::move(s)) {}
};

struct Device final : ObjectBase {
  static constexpr ObjType kType = ObjType::Device;
  DeviceSpec spec;
  Platform* platform = nullptr;

  Device(DeviceSpec s, Platform* p)
      : ObjectBase(kType), spec(std::move(s)), platform(p) {}
};

struct Context final : ObjectBase {
  static constexpr ObjType kType = ObjType::Context;
  std::vector<Device*> devices;
  std::vector<cl_context_properties> properties;

  explicit Context(std::vector<Device*> devs)
      : ObjectBase(kType), devices(std::move(devs)) {}
};

// Chunk-granularity dirty tracking for live (pre-copy) checkpointing.
//
// Writers record byte ranges as they mutate MemObj::storage; the checkpoint
// engine periodically *fetches* the map as a chunk bitmap and optionally
// clears it.  The tracker is deliberately conservative: it may over-report
// (a marked-but-unchanged chunk just gets re-streamed) but never
// under-reports, provided marks happen at queue-*execution* time — a command
// that runs after a fetch-and-clear re-dirties whatever it touched, so a
// residue fetch taken after finish() is always a superset of real changes.
//
// Representation: a small sorted merged interval list; once it would exceed
// kMaxIntervals the tracker collapses to "everything dirty" (correct, just
// coarse).  A fresh tracker starts all-dirty: creation itself (including
// COPY_HOST_PTR initialization) is a write.
class DirtyTracker {
 public:
  explicit DirtyTracker(std::size_t size) noexcept : size_(size) {}

  void mark(std::size_t off, std::size_t len) noexcept;
  void mark_all() noexcept;

  // Bit-packed chunk map: bit i set => chunk i (bytes [i*chunk_bytes,
  // (i+1)*chunk_bytes)) may have changed since the last clearing fetch.
  // When `clear`, atomically resets the map so later writes re-dirty.
  std::vector<std::uint8_t> fetch_chunks(std::size_t chunk_bytes, bool clear);

  // Dirty bytes a fetch would report (sum of dirty chunk extents).
  std::uint64_t dirty_bytes(std::size_t chunk_bytes);

 private:
  static constexpr std::size_t kMaxIntervals = 64;
  std::mutex mu_;
  std::size_t size_;
  bool all_ = true;
  // sorted, non-overlapping, non-adjacent [first, second) ranges
  std::vector<std::pair<std::size_t, std::size_t>> ivs_;
};

struct MemObj final : ObjectBase {
  static constexpr ObjType kType = ObjType::Mem;
  Context* ctx = nullptr;
  cl_mem_flags flags = 0;
  std::size_t size = 0;
  std::vector<std::uint8_t> storage;  // "device memory"
  DirtyTracker dirty;                 // chunk-granularity write tracking
  void* host_ptr = nullptr;           // CL_MEM_USE_HOST_PTR region

  // image fields
  bool is_image = false;
  cl_image_format format{};
  std::size_t width = 0;
  std::size_t height = 0;
  std::size_t row_pitch = 0;
  std::uint32_t channels = 0;
  bool float_channels = true;

  MemObj(Context* c, cl_mem_flags f, std::size_t sz)
      : ObjectBase(kType), ctx(c), flags(f), size(sz), storage(sz), dirty(sz) {}
  ~MemObj() override;

  [[nodiscard]] bool use_host_ptr() const noexcept {
    return (flags & CL_MEM_USE_HOST_PTR) != 0 && host_ptr != nullptr;
  }
};

struct Sampler final : ObjectBase {
  static constexpr ObjType kType = ObjType::Sampler;
  Context* ctx = nullptr;
  cl_bool normalized = CL_FALSE;
  cl_addressing_mode addressing = CL_ADDRESS_CLAMP;
  cl_filter_mode filter = CL_FILTER_NEAREST;

  Sampler(Context* c, cl_bool n, cl_addressing_mode a, cl_filter_mode f)
      : ObjectBase(kType), ctx(c), normalized(n), addressing(a), filter(f) {}
  ~Sampler() override;
};

struct Program final : ObjectBase {
  static constexpr ObjType kType = ObjType::Program;
  Context* ctx = nullptr;
  std::string source;
  std::string options;
  bool from_binary = false;
  std::shared_ptr<const clc::Module> module;
  cl_build_status status = CL_BUILD_NONE;
  std::string build_log;

  Program(Context* c, std::string src, bool binary)
      : ObjectBase(kType), ctx(c), source(std::move(src)), from_binary(binary) {}
  ~Program() override;
};

struct Kernel final : ObjectBase {
  static constexpr ObjType kType = ObjType::Kernel;
  Program* prog = nullptr;
  const clc::FuncDecl* fn = nullptr;  // owned by prog->module
  std::string name;

  struct Arg {
    bool set = false;
    clc::KernelArg ka;
    MemObj* mem = nullptr;      // retained while bound
    Sampler* sampler = nullptr; // retained while bound
  };
  std::mutex mu;
  std::vector<Arg> args;

  Kernel(Program* p, const clc::FuncDecl* f);
  ~Kernel() override;
};

struct Queue;

struct Event final : ObjectBase {
  static constexpr ObjType kType = ObjType::Event;
  // NOT retained: the queue worker thread drops the last reference to many
  // events, and an owning reference here would let that worker run the
  // queue's destructor — joining itself.  Deviation from the OpenCL spec
  // (events nominally retain their queue); the handle is only reported back
  // through CL_EVENT_COMMAND_QUEUE as an opaque value.
  Queue* queue = nullptr;
  cl_uint command_type = CL_COMMAND_MARKER;

  std::mutex mu;
  std::condition_variable cv;
  cl_int status = CL_QUEUED;
  cl_int error = CL_SUCCESS;
  SimNs t_queued = 0;
  SimNs t_submit = 0;
  SimNs t_start = 0;
  SimNs t_end = 0;

  Event(Queue* q, cl_uint cmd);
  ~Event() override;

  void set_status(cl_int st) {
    std::lock_guard<std::mutex> lk(mu);
    status = st;
    cv.notify_all();
  }
  void complete(SimNs start, SimNs end, cl_int err) {
    std::lock_guard<std::mutex> lk(mu);
    t_start = start;
    t_end = end;
    error = err;
    status = CL_COMPLETE;
    cv.notify_all();
  }
  // Blocks until complete; returns the completion sim time.
  SimNs wait() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return status == CL_COMPLETE; });
    return t_end;
  }
};

}  // namespace simcl
