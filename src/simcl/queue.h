// queue.h — in-order asynchronous command queue with a real worker thread.
//
// Commands execute for real (memcpys, clc kernel launches) while a virtual
// duration is charged to the queue's timeline.  An event's profiling times
// (queued/submit/start/end) are all virtual-clock values.
#pragma once

#include <deque>
#include <thread>

#include "clc/interp.h"
#include "simcl/objects.h"

namespace simcl {

struct Command {
  enum class Kind : std::uint8_t {
    ReadBuffer, WriteBuffer, CopyBuffer, NDRangeKernel, Marker, WaitEvents,
  };
  Kind kind = Kind::Marker;

  // buffer ops (mem objects retained until execution)
  MemObj* src = nullptr;
  MemObj* dst = nullptr;
  std::size_t src_off = 0;
  std::size_t dst_off = 0;
  std::size_t bytes = 0;
  void* host_dst = nullptr;
  const void* host_src = nullptr;

  // kernel launch (kernel + memories retained; args snapshotted at enqueue)
  Kernel* kernel = nullptr;
  std::vector<clc::KernelArg> args;
  std::vector<MemObj*> arg_mems;          // retained buffer/image args
  std::vector<MemObj*> host_synced_mems;  // CL_MEM_USE_HOST_PTR args
  // Buffers this kernel launch may write (arg_mems minus provably read-only
  // params) — computed at enqueue, dirty-marked at *execution* time so a
  // concurrent pre-copy fetch-and-clear can never lose a pending write.
  // Not separately retained: a subset of arg_mems, marked before the unrefs.
  std::vector<MemObj*> written_mems;
  clc::NDRange nd;

  std::vector<Event*> waits;  // retained
  Event* event = nullptr;     // retained; completed by the worker
  SimNs enqueue_host_ns = 0;
};

struct Queue final : ObjectBase {
  static constexpr ObjType kType = ObjType::Queue;
  Context* ctx = nullptr;
  Device* dev = nullptr;
  cl_command_queue_properties properties = 0;

  Queue(Context* c, Device* d, cl_command_queue_properties props);
  ~Queue() override;

  // Takes ownership of everything retained inside cmd.
  void enqueue(Command cmd);
  // Blocks until all enqueued commands completed; returns the queue timeline.
  SimNs finish();
  [[nodiscard]] SimNs timeline() const noexcept {
    return timeline_ns_.load(std::memory_order_acquire);
  }

 private:
  void worker_main();
  void execute(Command& cmd);
  SimNs run_kernel(Command& cmd, std::string& error);

  std::mutex mu_;
  std::condition_variable cv_;       // queue state changed
  std::condition_variable drained_;  // all work done
  std::deque<Command> pending_;
  bool busy_ = false;
  bool stop_ = false;
  std::atomic<SimNs> timeline_ns_{0};
  std::thread worker_;
};

}  // namespace simcl
