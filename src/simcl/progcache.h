// progcache.h — content-addressed compile cache for clc programs.
//
// clBuildProgram is the dominant term of CheCL's restart cost (the paper's
// Tr): every restored program is recompiled from source on the new node.
// This cache kills Tr for warm restarts: compiled modules are content-
// addressed by FNV-1a over (preprocessed source, build options, device
// model), kept in an in-memory LRU, and — when a cache root is configured —
// persisted as serialized clc bytecode in a snapstore pool.  A warm
// clBuildProgram then deserializes the bytecode (priced at
// deserialize_base_ns + deserialize_ns_per_byte per byte, orders of
// magnitude below the compile model's 30 ms + 150 ns/B) instead of
// compiling; a freshly spawned proxy warms itself from the same on-disk
// pool, which is what makes restore-after-migration fast on a node that has
// seen the program before.
//
// Invalidation is purely key-based: any change to the preprocessed source,
// the build options, or the target device model produces a different
// address; stale entries are never returned, only evicted (LRU in memory,
// overwritten by key on disk).  Disk entries are self-checking (magic,
// version, FNV-1a payload checksum, full index validation in
// clc::deserialize_module); a corrupt entry — including one poisoned by the
// chaoskit CompileCachePoison site — is dropped, counted, recorded in
// last_error(), and the build falls back to a full recompile.  Corrupt
// bytecode is never executed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace clc {
struct Module;
}

namespace simcl {

struct ProgCacheConfig {
  bool enabled = true;
  std::string root;              // on-disk snapstore root; empty = memory only
  std::size_t max_modules = 64;  // in-memory LRU capacity
  // Warm-hit cost model: what a clBuildProgram that deserializes instead of
  // compiling charges the simulated clock.
  std::uint64_t deserialize_base_ns = 1'000'000;  // 1 ms
  double deserialize_ns_per_byte = 1.0;
};

struct ProgCacheStats {
  std::uint64_t hits = 0;        // memory + disk hits
  std::uint64_t disk_hits = 0;   // subset of hits served from the disk pool
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
  std::uint64_t evictions = 0;   // in-memory LRU evictions
  std::uint64_t poisoned = 0;    // corrupt disk entries detected and dropped
};

class ProgCache {
 public:
  // Process-wide instance (one per address space: the app under native
  // binding, the proxy daemon under Transport::Process/Tcp).  Initial
  // configuration honours CHECL_CLC_CACHE=off|0 and CHECL_CLC_CACHE_DIR.
  static ProgCache& instance();

  void configure(const ProgCacheConfig& cfg);
  [[nodiscard]] ProgCacheConfig config() const;

  // Content address of a program build: FNV-1a over the preprocessed source
  // (same predefines clc::compile applies), the raw option string, and the
  // device model name.
  static std::uint64_t key(std::string_view source, std::string_view options,
                           std::string_view device_model);

  struct Hit {
    std::shared_ptr<const clc::Module> module;
    std::uint64_t serialized_bytes = 0;  // size the deserialize model charges
    bool from_disk = false;
  };

  // Returns the cached module for `key`, consulting memory then disk.
  // Returns nullopt on miss or when a disk entry fails verification (the
  // entry is removed and counted as poisoned).
  std::optional<Hit> lookup(std::uint64_t key);

  // Serializes and caches a freshly compiled module under `key` (memory
  // always, disk when a root is configured).
  void insert(std::uint64_t key, std::shared_ptr<const clc::Module> module);

  [[nodiscard]] ProgCacheStats stats() const;
  [[nodiscard]] std::string last_error() const;

  // Drops every in-memory entry and zeroes stats/last_error; the disk pool
  // is left alone (tests re-point `root` via configure()).
  void reset();

 private:
  ProgCache();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace simcl
