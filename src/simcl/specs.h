// specs.h — simulated device and platform specifications.
//
// The presets model the Table I testbed of the CheCL paper: an NVIDIA-like
// platform with a Tesla C1060-class GPU and an AMD-like platform with a
// Radeon HD5870-class GPU and a Core i7 920-class CPU device.  Memory sizes
// are scaled down 16x so experiments run at MB scale; bandwidth and
// throughput ratios are kept.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checl/cl.h"

namespace simcl {

// Simulation scales.  Fixed latencies (proxy fork ~0.08 s, platform init,
// compile times) stay at hardware scale; the two *rate* families are scaled
// so that durations land in the same regime as the paper's measurements:
//
//  * kComputeScale divides device op throughput.  Kernels really execute on
//    an AST interpreter that counts ~10 "ops" per real flop over problem
//    sizes ~30-100x smaller than the paper's, so a large divisor is needed
//    for kernel times to come out at the paper's milliseconds-to-seconds.
//  * kBandwidthScale divides PCIe / IPC / file-system bandwidth.  It matches
//    the *data-size* scale of the workloads (~32x smaller buffers), keeping
//    transfer:compute and write:compute ratios — which drive every figure's
//    shape — at their hardware values.
inline constexpr double kComputeScale = 1000.0;  // ~100 GFLOPS -> 100e6 ops/s
inline constexpr double kBandwidthScale = 32.0;

struct DeviceSpec {
  std::string name;
  std::string vendor;
  cl_device_type type = CL_DEVICE_TYPE_GPU;
  std::uint32_t compute_units = 1;
  std::uint32_t clock_mhz = 1000;
  std::uint64_t global_mem_bytes = 256ull << 20;
  std::uint64_t local_mem_bytes = 16ull << 10;
  std::uint64_t max_alloc_bytes = 64ull << 20;
  std::size_t max_work_group_size = 256;
  std::size_t max_work_item_sizes[3] = {256, 256, 64};

  // -- performance model ---------------------------------------------------
  double ops_per_sec = 100e9;        // interpreter-op throughput
  double h2d_bytes_per_sec = 5.35e9; // PCIe host->device (Table I)
  double d2h_bytes_per_sec = 4.87e9; // PCIe device->host (Table I)
  std::uint64_t transfer_latency_ns = 8000;   // per-transfer setup cost
  std::uint64_t launch_overhead_ns = 6000;    // per kernel launch
  std::uint64_t compile_base_ns = 30'000'000; // clBuildProgram fixed cost
  double compile_ns_per_byte = 150.0;         // + per source byte

  friend bool operator==(const DeviceSpec&, const DeviceSpec&) = default;
};

struct PlatformSpec {
  std::string name;
  std::string vendor;
  std::string version = "OpenCL 1.0 simcl";
  std::uint64_t init_ns = 1'000'000;            // clGetPlatformIDs first touch
  std::uint64_t context_create_ns = 1'000'000;  // clCreateContext
  std::uint64_t queue_create_ns = 100'000;
  std::vector<DeviceSpec> devices;

  friend bool operator==(const PlatformSpec&, const PlatformSpec&) = default;
};

// NVIDIA-like platform: one Tesla C1060-class GPU.  Visible platform/context
// creation cost (Figure 7 shows it on NVIDIA only), moderate compile times.
PlatformSpec nvidia_like_platform();

// AMD-like platform: Radeon HD5870-class GPU + Core i7 920-class CPU device.
// Near-zero platform/context cost, slower compiles (Figure 7).
PlatformSpec amd_like_platform();

// Both platforms — the default "node" configuration.
std::vector<PlatformSpec> default_platforms();

}  // namespace simcl
