#include "simcl/progcache.h"

#include <cstdio>
#include <cstdlib>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chaoskit/chaoskit.h"
#include "clc/bytecode.h"
#include "clc/diag.h"
#include "clc/pp.h"
#include "slimcr/storage.h"
#include "snapstore/store.h"

namespace simcl {

namespace {

constexpr char kSection[] = "clbc";

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) noexcept {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex_name(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "clbc-%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

struct ProgCache::Impl {
  mutable std::mutex mu;
  ProgCacheConfig cfg;
  ProgCacheStats st;
  std::string last_error;

  struct Entry {
    std::shared_ptr<const clc::Module> module;
    std::uint64_t serialized_bytes = 0;
  };
  // LRU: most-recent at the front; map values point into the list.
  std::list<std::pair<std::uint64_t, Entry>> lru;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, Entry>>::iterator>
      index;

  snapstore::Store store;  // lazily opened at cfg.root
  bool store_failed = false;
  // reset() marks the handle stale so the next use re-opens and re-scans the
  // pool — a "fresh process" must not trust another lifetime's open handle.
  bool store_stale = false;

  bool ensure_store_locked() {
    if (cfg.root.empty() || store_failed) return false;
    if (!store_stale && store.is_open() && store.root() == cfg.root)
      return true;
    snapstore::Options opt;
    opt.async = false;  // cache entries are small; keep the path simple
    const snapstore::Status s = store.open(cfg.root, opt);
    if (!s.ok()) {
      last_error = "compile cache store open failed: " + s.message;
      store_failed = true;
      return false;
    }
    store_stale = false;
    return true;
  }

  void touch_locked(std::uint64_t key,
                    std::list<std::pair<std::uint64_t, Entry>>::iterator it) {
    lru.splice(lru.begin(), lru, it);
    index[key] = lru.begin();
  }

  void put_mem_locked(std::uint64_t key, Entry e) {
    if (auto it = index.find(key); it != index.end()) {
      it->second->second = std::move(e);
      touch_locked(key, it->second);
      return;
    }
    lru.emplace_front(key, std::move(e));
    index[key] = lru.begin();
    while (lru.size() > cfg.max_modules && !lru.empty()) {
      index.erase(lru.back().first);
      lru.pop_back();
      ++st.evictions;
    }
  }
};

ProgCache::ProgCache() : impl_(std::make_unique<Impl>()) {
  if (const char* v = std::getenv("CHECL_CLC_CACHE"))
    if (std::string_view sv(v); sv == "off" || sv == "0")
      impl_->cfg.enabled = false;
  if (const char* d = std::getenv("CHECL_CLC_CACHE_DIR"))
    if (*d != '\0') impl_->cfg.root = d;
}

ProgCache& ProgCache::instance() {
  static ProgCache g;
  return g;
}

void ProgCache::configure(const ProgCacheConfig& cfg) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  const bool repoint = cfg.root != impl_->cfg.root;
  impl_->cfg = cfg;
  if (cfg.max_modules == 0) impl_->cfg.max_modules = 1;
  if (repoint) impl_->store_failed = false;
}

ProgCacheConfig ProgCache::config() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->cfg;
}

std::uint64_t ProgCache::key(std::string_view source, std::string_view options,
                             std::string_view device_model) {
  // Mirror clc::compile()'s preprocessing (including its predefined barrier
  // macros) so the address is over the *preprocessed* source: two builds
  // whose macros expand identically share one entry.
  std::string opts(options);
  opts += " -D CLK_LOCAL_MEM_FENCE=1 -D CLK_GLOBAL_MEM_FENCE=2";
  clc::Preprocessor pp(opts);
  std::string expanded;
  clc::Diag diag;
  if (!pp.run(source, expanded, diag)) expanded = std::string(source);

  std::uint64_t h = 14695981039346656037ull;
  h = fnv1a(expanded, h);
  h = fnv1a("\x1f", h);
  h = fnv1a(options, h);
  h = fnv1a("\x1f", h);
  h = fnv1a(device_model, h);
  return h;
}

std::optional<ProgCache::Hit> ProgCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (!impl_->cfg.enabled) return std::nullopt;

  if (auto it = impl_->index.find(key); it != impl_->index.end()) {
    impl_->touch_locked(key, it->second);
    ++impl_->st.hits;
    const Impl::Entry& e = impl_->lru.front().second;
    return Hit{e.module, e.serialized_bytes, false};
  }

  if (impl_->ensure_store_locked()) {
    const std::string name = hex_name(key);
    slimcr::Snapshot snap;
    const slimcr::StorageModel model = slimcr::ram_disk();
    const snapstore::GetResult got = impl_->store.get(name, snap, model);
    if (got.status.ok()) {
      const std::vector<std::uint8_t>* blob = snap.get(kSection);
      std::vector<std::uint8_t> bytes = blob != nullptr
                                            ? *blob
                                            : std::vector<std::uint8_t>{};
      auto& chaos = chaoskit::Engine::instance();
      if (!bytes.empty() &&
          chaos.should_fire(chaoskit::Site::CompileCachePoison)) {
        const std::int64_t arg = chaos.arg();
        if (arg < 0)
          bytes.resize(bytes.size() / 2);  // torn entry
        else
          bytes[static_cast<std::size_t>(arg) % bytes.size()] ^= 0x40;
      }
      std::string why;
      std::shared_ptr<const clc::Module> mod =
          bytes.empty() ? nullptr : clc::deserialize_module(bytes, &why);
      if (mod != nullptr) {
        impl_->put_mem_locked(
            key, Impl::Entry{mod, static_cast<std::uint64_t>(bytes.size())});
        ++impl_->st.hits;
        ++impl_->st.disk_hits;
        return Hit{std::move(mod), bytes.size(), true};
      }
      // Corrupt or unreadable entry: never execute it — drop it from the
      // pool and recompile.
      ++impl_->st.poisoned;
      if (why.empty()) why = "missing bytecode section";
      impl_->last_error = "compile cache entry " + name + " rejected: " + why;
      chaos.annotate(impl_->last_error);
      impl_->store.remove(name);
    }
  }

  ++impl_->st.misses;
  return std::nullopt;
}

void ProgCache::insert(std::uint64_t key,
                       std::shared_ptr<const clc::Module> module) {
  if (module == nullptr) return;
  std::vector<std::uint8_t> bytes = clc::serialize_module(*module);
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (!impl_->cfg.enabled) return;
  ++impl_->st.puts;
  impl_->put_mem_locked(
      key, Impl::Entry{module, static_cast<std::uint64_t>(bytes.size())});
  if (impl_->ensure_store_locked()) {
    slimcr::Snapshot snap;
    snap.set(kSection, std::move(bytes));
    const slimcr::StorageModel model = slimcr::ram_disk();
    const snapstore::PutResult put =
        impl_->store.put(hex_name(key), snap, model);
    if (!put.status.ok())
      impl_->last_error =
          "compile cache store put failed: " + put.status.message;
  }
}

ProgCacheStats ProgCache::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->st;
}

std::string ProgCache::last_error() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->last_error;
}

void ProgCache::reset() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->lru.clear();
  impl_->index.clear();
  impl_->st = ProgCacheStats{};
  impl_->last_error.clear();
  impl_->store_failed = false;
  impl_->store_stale = true;
}

}  // namespace simcl
