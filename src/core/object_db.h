// object_db.h — the database of live CheCL objects (Section III-C: "a
// database is managed to hold the pointers to all CheCL objects").
//
// Every wrapper-created object is registered here; checkpointing walks it to
// copy device data out, and restarting walks it in dependency order to
// recreate OpenCL objects.  The address set also backs the clSetKernelArg
// heuristic used when no kernel signature is available.
#pragma once

#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/objects.h"

namespace checl {

class ObjectDB {
 public:
  // Assigns an id and registers the object.
  void add(Object* o);
  void remove(Object* o);
  [[nodiscard]] bool contains_addr(const void* p) const;
  [[nodiscard]] Object* by_id(std::uint64_t id) const;
  [[nodiscard]] std::size_t size() const;

  // All live objects of type T in id (creation) order.
  template <typename T>
  [[nodiscard]] std::vector<T*> all_of() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<T*> out;
    for (Object* o : ordered_)
      if (o->otype == T::kType) out.push_back(static_cast<T*>(o));
    return out;
  }

  // All live objects in id order (mixed types).
  [[nodiscard]] std::vector<Object*> all() const;

  void clear() noexcept;  // drops registrations only; does not delete objects

 private:
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Object*> by_id_;
  std::unordered_set<const void*> addrs_;
  std::vector<Object*> ordered_;  // id order; compacted on remove
};

}  // namespace checl
