#include "core/supervisor.h"

#include <chrono>
#include <utility>

#include "core/object_db.h"
#include "core/replay/exec.h"
#include "core/replay/plan.h"
#include "core/runtime.h"

namespace checl {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// Restores the caller's batching mode on every exit path of recover().
// Turning batching back ON never flushes, so the destructor is safe even
// when the channel died again mid-recovery.
struct BatchingGuard {
  proxy::Client& c;
  bool saved;
  ~BatchingGuard() { c.set_batching(saved); }
};

template <typename T>
T* resolve(ObjectDB& db, std::uint64_t id) {
  Object* o = db.by_id(id);
  return o != nullptr && o->otype == T::kType ? static_cast<T*>(o) : nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// lifecycle
// ---------------------------------------------------------------------------

void Supervisor::enable() {
  enabled_ = true;
  proxy::Client* c = rt_.client();
  if (c == nullptr) {
    installed_on_ = nullptr;
    return;
  }
  c->set_recovery_handler(
      [this](proxy::Client& cc, proxy::Op op, ipc::ChannelError e) {
        return recover(cc, op, e);
      });
  installed_on_ = c;
  // Objects created before enabling get their base captured here; rebase()
  // aborts harmlessly when remotes are stale (e.g. right after a respawn).
  if (c->alive()) rebase(*c);
}

void Supervisor::disable() {
  enabled_ = false;
  proxy::Client* c = rt_.client();
  if (c != nullptr && c == installed_on_) c->set_recovery_handler({});
  installed_on_ = nullptr;
}

void Supervisor::invalidate() {
  base_mem_.clear();
  base_args_.clear();
  journal_.clear();
  journal_bytes_ = 0;
  stats_.journal_len = 0;
  installed_on_ = nullptr;  // the client is being replaced or destroyed
}

void Supervisor::reset() {
  disable();
  invalidate();
  stats_ = {};
  samples_ns_.clear();
  chain_.clear();
  chain_seq_ = 0;
  last_peer_pid_ = 0;
  base_sim_time_ = 0;
  rebase_threshold = 64;
  rebase_max_bytes = 16u << 20;
  respawn_policy = checl::Retry{.max_attempts = 3};
}

// ---------------------------------------------------------------------------
// shadow capture (wrapper hooks)
// ---------------------------------------------------------------------------

Supervisor::ArgSnap Supervisor::snap_arg(const KernelObj::ArgRec& a) {
  ArgSnap s;
  s.kind = a.kind;
  s.bytes = a.bytes;
  s.mem_id = a.mem != nullptr ? a.mem->id : 0;
  s.sampler_id = a.sampler != nullptr ? a.sampler->id : 0;
  s.local_size = a.local_size;
  return s;
}

void Supervisor::on_mem_created(MemObj* m, const void* data) {
  if (!enabled_ || m == nullptr) return;
  std::vector<std::uint8_t>& shadow = base_mem_[m->id];
  shadow.assign(m->size, 0);
  if (data != nullptr)
    shadow.assign(static_cast<const std::uint8_t*>(data),
                  static_cast<const std::uint8_t*>(data) + m->size);
}

void Supervisor::on_set_arg(KernelObj* k, std::uint32_t idx,
                            const KernelObj::ArgRec& a) {
  if (!enabled_ || k == nullptr) return;
  JEntry e;
  e.kind = JEntry::Kind::SetArg;
  e.a = k->id;
  e.idx = idx;
  e.arg = snap_arg(a);
  journal_bytes_ += e.arg.bytes.size();
  journal_.push_back(std::move(e));
  stats_.journal_len = journal_.size();
}

void Supervisor::on_enqueue_write(QueueObj* q, MemObj* m, std::size_t off,
                                  const void* src, std::size_t cb) {
  if (!enabled_ || q == nullptr || m == nullptr || src == nullptr) return;
  JEntry e;
  e.kind = JEntry::Kind::Write;
  e.q = q->id;
  e.a = m->id;
  e.off = off;
  e.cb = cb;
  e.bytes.assign(static_cast<const std::uint8_t*>(src),
                 static_cast<const std::uint8_t*>(src) + cb);
  journal_bytes_ += cb;
  journal_.push_back(std::move(e));
  stats_.journal_len = journal_.size();
}

void Supervisor::on_enqueue_copy(QueueObj* q, MemObj* src, MemObj* dst,
                                 std::size_t soff, std::size_t doff,
                                 std::size_t cb) {
  if (!enabled_ || q == nullptr || src == nullptr || dst == nullptr) return;
  JEntry e;
  e.kind = JEntry::Kind::Copy;
  e.q = q->id;
  e.a = src->id;
  e.b = dst->id;
  e.off = soff;
  e.off2 = doff;
  e.cb = cb;
  journal_.push_back(std::move(e));
  stats_.journal_len = journal_.size();
}

void Supervisor::on_enqueue_kernel(QueueObj* q, KernelObj* k, cl_uint dim,
                                   const std::size_t* goff,
                                   const std::size_t* gsz,
                                   const std::size_t* lsz) {
  if (!enabled_ || q == nullptr || k == nullptr) return;
  JEntry e;
  e.kind = JEntry::Kind::Kernel;
  e.q = q->id;
  e.a = k->id;
  e.dim = dim;
  const cl_uint d = dim > 3 ? 3 : dim;
  if (goff != nullptr) {
    e.has_goff = true;
    for (cl_uint i = 0; i < d; ++i) e.goff[i] = goff[i];
  }
  if (gsz != nullptr)
    for (cl_uint i = 0; i < d; ++i) e.gsz[i] = gsz[i];
  if (lsz != nullptr) {
    e.has_lsz = true;
    for (cl_uint i = 0; i < d; ++i) e.lsz[i] = lsz[i];
  }
  journal_.push_back(std::move(e));
  stats_.journal_len = journal_.size();
}

// ---------------------------------------------------------------------------
// rebase
// ---------------------------------------------------------------------------

void Supervisor::maybe_rebase() {
  if (!enabled_) return;
  if (journal_.size() < rebase_threshold && journal_bytes_ < rebase_max_bytes)
    return;
  proxy::Client* c = rt_.client();
  if (c == nullptr || !c->alive()) return;
  rebase(*c);
}

void Supervisor::rebase_now() {
  if (!enabled_) return;
  proxy::Client* c = rt_.client();
  if (c == nullptr || !c->alive()) return;
  rebase(*c);
}

void Supervisor::rebase(proxy::Client& c) {
  ObjectDB& db = rt_.db();
  const auto queues = db.all_of<QueueObj>();
  for (QueueObj* q : queues)
    if (q->remote != 0) c.finish(q->remote);

  // Build the new base off to the side: an aborted rebase (a read failed —
  // typically stale remotes around an engine-driven respawn) must leave the
  // previous base AND the journal untouched, or roll-forward state is lost.
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> mem;
  for (MemObj* m : db.all_of<MemObj>()) {
    if (m->remote == 0) {
      // not materialized (mid-restore): keep whatever base we had
      if (auto it = base_mem_.find(m->id); it != base_mem_.end())
        mem[m->id] = it->second;
      continue;
    }
    std::vector<std::uint8_t> buf(m->size);
    proxy::RemoteHandle qh = 0;
    bool scratch = false;
    for (QueueObj* q : queues) {
      if (q->ctx == m->ctx && q->remote != 0) {
        qh = q->remote;
        break;
      }
    }
    if (qh == 0 && m->ctx != nullptr && m->ctx->remote != 0 &&
        !m->ctx->devices.empty()) {
      if (c.create_queue(m->ctx->remote, m->ctx->devices[0]->remote, 0, qh) ==
          CL_SUCCESS)
        scratch = true;
      else
        qh = 0;
    }
    bool ok = false;
    if (qh != 0) {
      proxy::RemoteHandle ev = 0;
      ok = c.enqueue_read(qh, m->remote, 0, m->size, buf.data(), false, ev) ==
           CL_SUCCESS;
      if (scratch) c.retain_release(proxy::Op::ReleaseCommandQueue, qh);
    }
    if (!ok) return;  // abort whole rebase; previous base + journal stand
    mem[m->id] = std::move(buf);
  }

  std::unordered_map<std::uint64_t, std::vector<ArgSnap>> args;
  for (KernelObj* k : db.all_of<KernelObj>()) {
    std::vector<ArgSnap>& v = args[k->id];
    v.reserve(k->args.size());
    for (const KernelObj::ArgRec& a : k->args) v.push_back(snap_arg(a));
  }

  base_mem_ = std::move(mem);
  base_args_ = std::move(args);
  journal_.clear();
  journal_bytes_ = 0;
  stats_.journal_len = 0;
  cl_ulong t = 0;
  c.sim_get_host_time_ns(t);
  base_sim_time_ = t;
  stats_.rebases++;
}

// ---------------------------------------------------------------------------
// journal replay
// ---------------------------------------------------------------------------

void Supervisor::apply_arg(proxy::Client& c, proxy::RemoteHandle k,
                           std::uint32_t idx, const ArgSnap& a) {
  ObjectDB& db = rt_.db();
  switch (a.kind) {
    case KernelObj::ArgRec::Kind::Bytes:
      c.set_kernel_arg_bytes(k, idx, a.bytes);
      break;
    case KernelObj::ArgRec::Kind::Mem:
      if (MemObj* m = resolve<MemObj>(db, a.mem_id); m != nullptr && m->remote != 0)
        c.set_kernel_arg_mem(k, idx, m->remote);
      break;
    case KernelObj::ArgRec::Kind::Sampler:
      if (SamplerObj* s = resolve<SamplerObj>(db, a.sampler_id);
          s != nullptr && s->remote != 0)
        c.set_kernel_arg_sampler(k, idx, s->remote);
      break;
    case KernelObj::ArgRec::Kind::Local:
      c.set_kernel_arg_local(k, idx, a.local_size);
      break;
    case KernelObj::ArgRec::Kind::Unset:
      break;
  }
}

std::uint64_t Supervisor::replay_journal(proxy::Client& c) {
  ObjectDB& db = rt_.db();
  std::uint64_t replayed = 0;
  for (const JEntry& e : journal_) {
    switch (e.kind) {
      case JEntry::Kind::SetArg: {
        KernelObj* k = resolve<KernelObj>(db, e.a);
        if (k == nullptr || k->remote == 0) break;
        apply_arg(c, k->remote, e.idx, e.arg);
        ++replayed;
        break;
      }
      case JEntry::Kind::Write: {
        QueueObj* q = resolve<QueueObj>(db, e.q);
        MemObj* m = resolve<MemObj>(db, e.a);
        if (q == nullptr || q->remote == 0 || m == nullptr || m->remote == 0)
          break;
        proxy::RemoteHandle ev = 0;
        c.enqueue_write(q->remote, m->remote, e.off, e.bytes, false, ev);
        ++replayed;
        break;
      }
      case JEntry::Kind::Copy: {
        QueueObj* q = resolve<QueueObj>(db, e.q);
        MemObj* src = resolve<MemObj>(db, e.a);
        MemObj* dst = resolve<MemObj>(db, e.b);
        if (q == nullptr || q->remote == 0 || src == nullptr ||
            src->remote == 0 || dst == nullptr || dst->remote == 0)
          break;
        proxy::RemoteHandle ev = 0;
        c.enqueue_copy(q->remote, src->remote, dst->remote, e.off, e.off2,
                       e.cb, false, ev);
        ++replayed;
        break;
      }
      case JEntry::Kind::Kernel: {
        QueueObj* q = resolve<QueueObj>(db, e.q);
        KernelObj* k = resolve<KernelObj>(db, e.a);
        if (q == nullptr || q->remote == 0 || k == nullptr || k->remote == 0)
          break;
        proxy::RemoteHandle ev = 0;
        if (e.dim == 0) {
          c.enqueue_task(q->remote, k->remote, false, ev);
        } else {
          c.enqueue_ndrange(q->remote, k->remote, e.dim,
                            e.has_goff ? e.goff.data() : nullptr, e.gsz.data(),
                            e.has_lsz ? e.lsz.data() : nullptr, false, ev);
        }
        ++replayed;
        break;
      }
    }
  }
  return replayed;
}

// ---------------------------------------------------------------------------
// the recovery state machine
// ---------------------------------------------------------------------------

proxy::Client::Recovery Supervisor::recover(proxy::Client& c, proxy::Op op,
                                            ipc::ChannelError ce) {
  const auto t0 = std::chrono::steady_clock::now();
  chain_ = std::string(ipc::channel_error_name(ce)) + " on opcode " +
           proxy::op_name(op) + " (seq " +
           std::to_string(c.channel().seq()) + ")";
  ++chain_seq_;
  const auto fail = [&](const std::string& why) {
    chain_ += " -> " + why;
    stats_.failed_recoveries++;
    return proxy::Client::Recovery::Failed;
  };
  if (!enabled_) return fail("supervision disabled");

  // 1. respawn the proxy (backoff policy; 0 attempts = respawn disabled)
  if (respawn_policy.max_attempts == 0)
    return fail("respawn disabled (max_attempts=0)");
  bool up = false;
  respawn_policy.run([&] {
    up = rt_.revive_proxy() == CL_SUCCESS;
    return up;
  });
  if (!up) return fail("respawn failed: " + rt_.proxy_error());
  stats_.respawns++;
  stats_.epoch++;
  chain_ += " -> respawn epoch " + std::to_string(stats_.epoch);

  // Recovery RPCs are synchronous; the batch queue was dropped by
  // reset_channel (the journal below replays those calls instead).
  BatchingGuard bg{c, c.batching()};
  c.set_batching(false);

  // 2. epoch handshake: configure the fresh peer, learn its pid
  const NodeConfig& node = rt_.node();
  if (c.configure(node.platforms, node.ipc, true, node.clc_cache) != CL_SUCCESS)
    return fail("handshake Configure failed");
  std::uint32_t pid = 0;
  if (c.ping(&pid) != CL_SUCCESS) return fail("handshake Ping failed");
  // A respawned Thread/Process endpoint is always a fresh peer; over TCP and
  // against the multi-tenant daemon the peer may have survived a dropped
  // connection/session — same pid means every in-flight side effect may have
  // landed (daemon re-attach is a new session epoch on a surviving process).
  const bool remote_peer = node.transport == proxy::Transport::Tcp ||
                           node.transport == proxy::Transport::Daemon;
  const bool peer_fresh =
      !remote_peer || last_peer_pid_ == 0 || pid != last_peer_pid_;
  last_peer_pid_ = pid;

  // 3. simulated-clock continuity: fresh clock -> last rebased time + spawn
  // cost.  Journal replay below re-charges its own IPC costs on top.
  c.sim_advance_host_ns(base_sim_time_ + node.ipc.spawn_ns);

  // 4. re-materialize every live object through the standard restore path.
  // Serial executor: recovery already runs under the client lock on the
  // caller's thread; worker threads would deadlock against it.
  // The in-flight request frame was marshalled against the dead peer, so it
  // embeds the handles objects hold *now*; record them before the executor
  // assigns fresh ones so the client can rewrite the frame on retry.
  std::vector<std::pair<Object*, std::uint64_t>> old_remote;
  for (Object* o : rt_.db().all())
    if (o->remote != 0) old_remote.emplace_back(o, o->remote);
  for (MemObj* m : rt_.db().all_of<MemObj>())
    if (auto it = base_mem_.find(m->id); it != base_mem_.end())
      m->snapshot = it->second;
  replay::RestorePlan plan;
  std::string err;
  if (!plan.build(rt_.db().all(), err)) return fail("restore plan: " + err);
  replay::ExecOptions opts;
  opts.parallel = false;
  opts.workers = 1;
  opts.batch = false;
  replay::Executor ex(rt_, opts);
  replay::ExecCounters counters;
  if (ex.run(plan, nullptr, err, counters) != CL_SUCCESS)
    return fail("restore failed: " + err);
  stats_.replayed_objects += counters.nodes_recreated;
  chain_ += " -> replayed " + std::to_string(counters.nodes_recreated) +
            " objects";

  // 5. degraded placement: a device that came back under a different name
  // was re-placed by the executor's §IV-C fallback (same type elsewhere,
  // else any surviving device).
  for (DeviceObj* d : rt_.db().all_of<DeviceObj>()) {
    if (d->remote == 0) continue;
    char name[256] = {};
    if (c.get_info(proxy::Op::GetDeviceInfo, d->remote, CL_DEVICE_NAME,
                   sizeof name, name, nullptr) != CL_SUCCESS)
      continue;
    if (d->name != name) {
      stats_.degraded_placements++;
      chain_ += " -> degraded placement: device '" + d->name + "' -> '" +
                name + "'";
      d->name = name;
    }
  }

  // 6. the executor re-applied *current* kernel args; roll them back to the
  // base snapshot so the journal replays forward through the same sequence
  // of states the device actually saw.
  for (KernelObj* k : rt_.db().all_of<KernelObj>()) {
    if (k->remote == 0) continue;
    const auto it = base_args_.find(k->id);
    if (it == base_args_.end()) continue;
    for (std::size_t i = 0; i < it->second.size(); ++i)
      apply_arg(c, k->remote, static_cast<std::uint32_t>(i), it->second[i]);
  }

  // 7. roll forward: replay journaled writes/copies/arg-sets/launches
  const std::uint64_t calls = replay_journal(c);
  stats_.replayed_calls += calls;
  chain_ += " -> replayed " + std::to_string(calls) + " calls";
  // Post-recovery device contents differ from the last checkpoint file; no
  // bookkeeping needed: the respawned proxy's buffers start all-dirty in the
  // substrate's chunk maps.

  // 8. rebase so the next recovery starts from the reconstructed state
  rebase(c);

  // 9. verdict + MTTR accounting
  const std::uint64_t ns = elapsed_ns(t0);
  stats_.recoveries++;
  stats_.last_recover_ns = ns;
  stats_.total_recover_ns += ns;
  samples_ns_.push_back(ns);
  if (!peer_fresh && proxy::replayability(op) == proxy::Replay::Effectful) {
    stats_.effectful_failed++;
    chain_ += " -> RecoveryError: effectful opcode " +
              std::string(proxy::op_name(op)) +
              " against surviving peer fails once";
    return proxy::Client::Recovery::FailCall;
  }
  // Stage the old->new handle map; the client consumes it exactly once when
  // re-sending the in-flight frame (remap_request_handles).
  std::unordered_map<proxy::RemoteHandle, proxy::RemoteHandle> remap;
  for (const auto& [o, old] : old_remote)
    if (o->remote != 0 && o->remote != old) remap[old] = o->remote;
  c.stage_retry_remap(std::move(remap));
  return proxy::Client::Recovery::Retry;
}

}  // namespace checl
