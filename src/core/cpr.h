// cpr.h — the checkpoint/restart engine (Section III-C).
//
// Checkpoint = synchronize → preprocess (device→host copies) → write (slimcr
// snapshot through the node's storage model) → postprocess (free copies).
// Restart = read snapshot → fork a fresh API proxy → recreate OpenCL objects
// in dependency order (platform, device, context, cmd_queue, mem, sampler,
// program, kernel, event) → upload user data → dummy events via
// clEnqueueMarker.  Phase and per-class timings are the raw material of
// Figures 5, 7 and 8.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/node.h"
#include "core/objects.h"
#include "core/replay/exec.h"
#include "slimcr/snapshot.h"
#include "snapstore/store.h"

namespace checl {
class CheclRuntime;
}

namespace proxy {
class Client;
}

namespace checl::cpr {

struct PhaseTimes {
  std::uint64_t sync_ns = 0;
  std::uint64_t pre_ns = 0;
  std::uint64_t write_ns = 0;
  std::uint64_t post_ns = 0;
  // Bytes actually charged to storage.  In store mode this is post-dedup,
  // post-compression (new chunks + manifest) — the M of the migration model
  // Tm = alpha*M + Tr + beta; flat mode keeps the whole container size.
  std::uint64_t file_bytes = 0;
  std::uint64_t logical_bytes = 0;  // pre-dedup snapshot payload, both modes

  // Live pre-copy (runtime.live_checkpoints): time spent streaming chunks
  // while the queues kept executing — outside the stop-the-world pause.  All
  // zero in the stop-the-world modes.
  std::uint64_t precopy_ns = 0;
  std::uint32_t rounds = 0;           // pre-copy rounds run before the stop
  std::uint64_t precopy_bytes = 0;    // logical bytes streamed before the stop
  std::uint64_t residue_bytes = 0;    // logical bytes copied inside the pause
  std::uint32_t healed_chunks = 0;    // live_verify mismatches re-streamed

  // What the application actually waits: the stop-the-world window.  In live
  // mode this covers only the residue; the pre-copy rounds ran concurrently.
  [[nodiscard]] std::uint64_t pause_ns() const noexcept {
    return sync_ns + pre_ns + write_ns + post_ns;
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return pause_ns() + precopy_ns;
  }
};

struct RestartBreakdown {
  // Indexed by ObjType (restore order); read_ns/spawn_ns are outside the
  // per-class recreation but part of the migration cost.
  std::array<std::uint64_t, kNumObjTypes> class_ns{};
  std::uint64_t read_ns = 0;
  std::uint64_t spawn_ns = 0;

  [[nodiscard]] std::uint64_t recreation_ns() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t v : class_ns) t += v;
    return t;
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return recreation_ns() + read_ns + spawn_ns;
  }
};

class Engine {
 public:
  // Both out of line: LiveSession is cpr.cpp-local.
  explicit Engine(CheclRuntime& rt);
  ~Engine();

  // Writes a checkpoint of the current process to `path`.  The process keeps
  // running afterwards (BLCR semantics).  `times`, when non-null, receives
  // the phase breakdown.  With runtime.live_checkpoints + store_checkpoints
  // on, this composes live_begin + live_finish below.
  cl_int checkpoint(const std::string& path, PhaseTimes* times);

  // ---- live pre-copy checkpointing ----------------------------------------
  // live_begin opens a streaming session against the snapstore and runs
  // pre-copy rounds: chunks stream into an open manifest while the queues
  // keep executing, and each round re-streams only what the server-side
  // dirty maps say changed, until the convergence policy (round cap, residue
  // threshold, no-progress) fires.  live_finish then stops the world —
  // sync + finish, dirty residue, object DB, app regions — and seals the
  // manifest.  minimpi drives the two separately so its coordination barrier
  // covers only the residue phase.  On any failure the session aborts:
  // provisional chunks are reclaimed and a previous checkpoint of the same
  // name stays restorable.
  cl_int live_begin(const std::string& path);
  cl_int live_finish(const std::string& path, PhaseTimes* times);
  [[nodiscard]] bool live_session_open() const noexcept {
    return live_ != nullptr;
  }
  void live_abort();

  // Restart for a *surviving* process image (what BLCR restore reproduces:
  // host memory — and with it every CheCL object — is intact; only the proxy
  // and its OpenCL objects are gone).  Kills any existing proxy, spawns a
  // fresh one under `new_node` (or the current node), refills buffer contents
  // from `path`, and recreates all OpenCL objects.  CheCL handles held by the
  // application remain valid throughout.
  cl_int restart_in_place(const std::string& path,
                          const std::optional<NodeConfig>& new_node,
                          RestartBreakdown* breakdown);

  // Restart into an *empty* process (our stand-in for "BLCR restores the host
  // image on another machine"): rebuilds the CheCL objects themselves from
  // the snapshot, then recreates OpenCL state.  Returns a map old-id → new
  // CheCL handle so callers can rebind.
  cl_int restore_fresh(const std::string& path,
                       const std::optional<NodeConfig>& new_node,
                       RestartBreakdown* breakdown,
                       std::unordered_map<std::uint64_t, Object*>* handle_map);

  // The serialized object database (exposed for tests and for minimpi's
  // global-snapshot aggregation).
  std::vector<std::uint8_t> serialize_db();

  // Human-readable detail for the last failed checkpoint/restart (typed
  // store errors, missing incremental bases); empty after success.
  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }

  // The content-addressed checkpoint store (runtime.store_checkpoints mode).
  // Lazily opened at runtime.store_root; reopens when the root or the
  // sharding configuration changes.  With node.snap_shards > 0 (or
  // CHECL_SNAP_SHARDS) this is a snapstore::ShardedStore spanning that many
  // checl_snapd daemons; otherwise the local snapstore::Store.  nullptr when
  // opening fails (last_error() says why).
  snapstore::StoreIface* store();
  [[nodiscard]] snapstore::StoreIface* store_if_open() noexcept {
    return store_ != nullptr && store_->is_open() ? store_.get() : nullptr;
  }

  // Cumulative restore-executor counters (waves, concurrency, batched calls,
  // rollbacks); reported under "restore" by checl::stats_json().
  [[nodiscard]] const replay::ExecCounters& restore_counters() const noexcept {
    return restore_counters_;
  }

 private:
  // The actual phase implementations.  The public entry points above are
  // thin wrappers that reset last_error_ on entry (both restore paths used to
  // disagree on this), guarantee it is non-empty after any failure, and tag
  // it with the armed fault-injection site so a chaos run always names its
  // culprit.
  cl_int do_checkpoint(const std::string& path, PhaseTimes* times);
  cl_int do_live_begin(const std::string& path);
  cl_int do_live_finish(const std::string& path, PhaseTimes* times);
  cl_int do_restart_in_place(const std::string& path,
                             const std::optional<NodeConfig>& new_node,
                             RestartBreakdown* breakdown);
  cl_int do_restore_fresh(
      const std::string& path, const std::optional<NodeConfig>& new_node,
      RestartBreakdown* breakdown,
      std::unordered_map<std::uint64_t, Object*>* handle_map);

  // Shared failure-path tail of the wrappers: fallback message, the
  // supervisor's recovery chain when one ran during this op (chain0 is the
  // chain sequence captured at entry), and the chaos tag.
  cl_int finish_op(const char* op, cl_int err, std::uint64_t chain0);
  [[nodiscard]] std::uint64_t chain_seq_now() const;

  // Loads `path` and pulls any mem sections missing there from its base
  // chain (incremental checkpoints).  Returns total simulated read time, or
  // 0 on failure with *ok=false.
  std::uint64_t load_with_base_chain(const std::string& path,
                                     const slimcr::StorageModel& storage,
                                     slimcr::Snapshot& out, bool* ok);

  // Runs a validated RestorePlan through the transactional executor with the
  // runtime's restore_* knobs; on failure last_error() names the object.
  cl_int run_plan(const replay::RestorePlan& plan, RestartBreakdown* breakdown);

  // Chunk-dirty-map plumbing shared by the incremental gate, the live
  // engine, and the post-restore reset.
  struct LiveSession;
  bool mem_is_dirty(proxy::Client& c, const MemObj& m);
  void clear_dirty_maps(proxy::Client& c);
  cl_int stream_mem_chunks(proxy::Client& c, MemObj* m,
                           const std::vector<std::uint8_t>* bits,
                           std::uint64_t nchunks, std::uint64_t* streamed_bytes,
                           std::uint64_t* write_ns);

  std::uint64_t now_ns();

  CheclRuntime& rt_;
  // Path of the most recent checkpoint/restore; incremental checkpoints use
  // it as their base.
  std::string last_checkpoint_path_;
  std::string last_error_;
  std::unique_ptr<snapstore::StoreIface> store_;
  std::string store_key_;  // root + sharding config the store was opened with
  std::unique_ptr<LiveSession> live_;
  replay::ExecCounters restore_counters_;
};

}  // namespace checl::cpr
