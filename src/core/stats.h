// stats.h — one JSON surface over CheCL's instrumentation counters.
//
// Every bench used to hand-roll its own subset of the IPC counters; this
// helper serializes all of them — the proxy client's RPC/batching stats, the
// underlying channel's transport counters (including shm_fallbacks), and the
// snapstore pool stats — in one place, so a new counter shows up everywhere
// at once.  Sections whose source is absent (no client, store never opened)
// serialize as null.
#pragma once

#include <string>

#include "snapstore/store.h"

namespace proxy {
class Client;
}

namespace checl {

struct SupervisorStats;

namespace replay {
struct ExecCounters;
}

// Explicit sources (benches that own their Client / Store directly).
// `restore`, when non-null, adds the restore executor's counters;
// `supervisor`, when non-null, adds the self-healing runtime's counters
// (recoveries, replays, degraded placements, time-to-recover).
std::string stats_json(proxy::Client* client, const snapstore::StoreIface* store,
                       const replay::ExecCounters* restore,
                       const SupervisorStats* supervisor);
std::string stats_json(proxy::Client* client, const snapstore::StoreIface* store,
                       const replay::ExecCounters* restore);
std::string stats_json(proxy::Client* client, const snapstore::StoreIface* store);

// Pulls from the process-wide CheclRuntime: its proxy client and the
// engine's checkpoint store, when open.
std::string stats_json();

}  // namespace checl
