#include "core/runtime.h"

#include <signal.h>

#include <cstdlib>

#include "core/cpr.h"
#include "core/supervisor.h"

namespace checl {

CheclRuntime& CheclRuntime::instance() {
  static CheclRuntime rt;
  return rt;
}

CheclRuntime::CheclRuntime() {
  if (const char* v = std::getenv("CHECL_LIVE_CKPT");
      v != nullptr && *v != '\0' && *v != '0')
    live_checkpoints = true;
}

CheclRuntime::~CheclRuntime() {
  // Deliberately leak remaining objects at process exit; the proxy dies with
  // its Spawned member.
}

void CheclRuntime::set_node(NodeConfig node) { node_ = std::move(node); }

cl_int CheclRuntime::ensure_proxy() {
  std::lock_guard<std::mutex> lk(proxy_mu_);
  if (spawned_.ok() && spawned_.client()->alive() && proxy_configured_) {
    // Mid-run supervise toggles and engine respawns (which replace the
    // client without re-entering the spawn branch) are reconciled here.
    const bool installed = supervisor_ != nullptr && supervisor_->enabled() &&
                           supervisor_->installed_on() == spawned_.client();
    if (supervise != installed) install_supervision();
    return CL_SUCCESS;
  }
  spawned_ = node_.transport == proxy::Transport::Tcp
                 ? proxy::connect_remote_proxy(node_.tcp_host.c_str(),
                                               node_.tcp_port)
                 : proxy::spawn_proxy(node_.transport, spawn_options());
  if (!spawned_.ok()) return CL_DEVICE_NOT_AVAILABLE;
  const cl_int err =
      spawned_.client()->configure(node_.platforms, node_.ipc, true,
                                   node_.clc_cache);
  if (err != CL_SUCCESS) return CL_DEVICE_NOT_AVAILABLE;
  proxy_configured_ = true;
  install_supervision();
  return CL_SUCCESS;
}

proxy::SpawnOptions CheclRuntime::spawn_options() const {
  proxy::SpawnOptions o = proxy::spawn_options_from_env();
  // NodeConfig wins over the environment: migration onto a node means
  // attaching to THAT node's daemon socket.
  if (!node_.proxyd_socket.empty()) o.daemon_socket = node_.proxyd_socket;
  return o;
}

void CheclRuntime::install_supervision() {
  proxy::Client* c = client();
  if (c == nullptr) return;
  c->set_recv_deadline_ms(recv_deadline_ms);
  if (supervise) {
    supervisor().enable();
  } else if (supervisor_ != nullptr && supervisor_->enabled()) {
    supervisor_->disable();
  }
}

Supervisor& CheclRuntime::supervisor() {
  if (supervisor_ == nullptr) supervisor_ = std::make_unique<Supervisor>(*this);
  return *supervisor_;
}

cl_int CheclRuntime::revive_proxy() {
  // No proxy_mu_ here — see the header comment on lock order.
  if (!spawned_.ok()) return CL_DEVICE_NOT_AVAILABLE;
  const bool up =
      spawned_.revive(node_.transport, spawn_options(),
                      node_.tcp_host.c_str(), node_.tcp_port);
  return up ? CL_SUCCESS : CL_DEVICE_NOT_AVAILABLE;
}

void CheclRuntime::resync_supervision() {
  if (supervisor_ == nullptr || !supervisor_->enabled()) return;
  // An engine restart replaced the client; re-install the handler (and the
  // deadline) on the new one before taking the fresh base.
  install_supervision();
  supervisor_->rebase_now();
}

void CheclRuntime::kill_proxy() {
  std::lock_guard<std::mutex> lk(proxy_mu_);
  spawned_.kill_hard();
  spawned_.stop();
  proxy_configured_ = false;
  // Shadow state describes a proxy that no longer exists.
  if (supervisor_ != nullptr) supervisor_->invalidate();
}

cl_int CheclRuntime::respawn_proxy(const NodeConfig& cfg, std::uint64_t resume_time_ns) {
  {
    std::lock_guard<std::mutex> lk(proxy_mu_);
    spawned_.kill_hard();
    spawned_.stop();
    proxy_configured_ = false;
    // Intentional replacement: drop the supervisor's base + journal (they
    // describe the dead proxy) and leave supervision suspended until the
    // engine resyncs after its restore — or ensure_proxy reconciles.
    if (supervisor_ != nullptr) supervisor_->invalidate();
    node_ = cfg;
    spawned_ = node_.transport == proxy::Transport::Tcp
                   ? proxy::connect_remote_proxy(node_.tcp_host.c_str(),
                                                 node_.tcp_port)
                   : proxy::spawn_proxy(node_.transport, spawn_options());
    if (!spawned_.ok()) return CL_DEVICE_NOT_AVAILABLE;
    const cl_int err =
        spawned_.client()->configure(node_.platforms, node_.ipc, true,
                                     node_.clc_cache);
    if (err != CL_SUCCESS) return CL_DEVICE_NOT_AVAILABLE;
    proxy_configured_ = true;
    spawned_.client()->set_recv_deadline_ms(recv_deadline_ms);
  }
  if (resume_time_ns != 0) {
    // The restarted process continues on the destination's timeline.
    cl_ulong now = 0;
    client()->sim_get_host_time_ns(now);
    if (resume_time_ns > now)
      client()->sim_advance_host_ns(resume_time_ns - now);
  }
  return CL_SUCCESS;
}

bool CheclRuntime::proxy_alive() noexcept {
  return spawned_.ok() && spawned_.client()->alive();
}

void CheclRuntime::on_api_call() {
  if (mode == CheckpointMode::Immediate && checkpoint_pending() &&
      !checkpoint_in_progress_) {
    checkpoint_in_progress_ = true;
    checkpoint_requested_.store(false, std::memory_order_release);
    auto times = std::make_unique<cpr::PhaseTimes>();
    engine().checkpoint(checkpoint_path, times.get());
    last_times_ = std::move(times);
    checkpoint_in_progress_ = false;
  }
}

void CheclRuntime::on_sync_point() {
  // Natural synchronization points drain the IPC batch queue so deferred
  // fire-and-forget calls can never be observed out of order by what follows.
  if (proxy::Client* c = client(); c != nullptr && c->alive()) c->sync();
  // The supervisor truncates its roll-forward journal here, where the device
  // state is quiescent anyway.
  if (supervisor_ != nullptr) supervisor_->maybe_rebase();
  if (checkpoint_pending() && !checkpoint_in_progress_) {
    checkpoint_in_progress_ = true;
    checkpoint_requested_.store(false, std::memory_order_release);
    auto times = std::make_unique<cpr::PhaseTimes>();
    engine().checkpoint(checkpoint_path, times.get());
    last_times_ = std::move(times);
    checkpoint_in_progress_ = false;
  }
}

void CheclRuntime::on_kernel_enqueued() {
  int n = ckpt_after_kernel_.load(std::memory_order_acquire);
  if (n < 0 || checkpoint_in_progress_) return;
  n = ckpt_after_kernel_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (n != 0) return;
  ckpt_after_kernel_.store(-1, std::memory_order_release);
  checkpoint_in_progress_ = true;
  auto times = std::make_unique<cpr::PhaseTimes>();
  engine().checkpoint(checkpoint_path, times.get());
  last_times_ = std::move(times);
  checkpoint_in_progress_ = false;
}

cpr::PhaseTimes CheclRuntime::last_checkpoint_times() const {
  return last_times_ != nullptr ? *last_times_ : cpr::PhaseTimes{};
}

namespace {
void sigusr_handler(int) { CheclRuntime::instance().request_checkpoint(); }
}  // namespace

void CheclRuntime::install_signal_handler(int signum) {
  struct sigaction sa {};
  sa.sa_handler = sigusr_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(signum, &sa, nullptr);
}

void CheclRuntime::register_app_region(std::string name, void* ptr, std::size_t len) {
  app_regions_.push_back({std::move(name), ptr, len});
}

cpr::Engine& CheclRuntime::engine() {
  if (engine_ == nullptr) engine_ = std::make_unique<cpr::Engine>(*this);
  return *engine_;
}

void CheclRuntime::reset_all() {
  // Best-effort teardown in reverse dependency order; applications normally
  // release handles themselves.
  auto objs = db_.all();
  for (auto it = objs.rbegin(); it != objs.rend(); ++it) unref_object(*it);
  db_.clear();
  app_regions_.clear();
  if (supervisor_ != nullptr) supervisor_->reset();
  supervise = false;
  recv_deadline_ms = 0;
  io_retry = {};
  {
    std::lock_guard<std::mutex> lk(proxy_mu_);
    spawned_.stop();
    proxy_configured_ = false;
  }
  checkpoint_requested_.store(false, std::memory_order_release);
  ckpt_after_kernel_.store(-1, std::memory_order_release);
  retarget_device_type.reset();
  restore_parallel = true;
  restore_workers = 0;
  restore_batch = false;
  mode = CheckpointMode::Delayed;
  incremental_checkpoints = false;
  store_checkpoints = false;
  store_root = "/tmp/checl_snapstore";
  store_options = {};
  last_times_.reset();
  engine_.reset();  // drops the incremental base-chain state too
}

// ---------------------------------------------------------------------------
// object lifetime
// ---------------------------------------------------------------------------

namespace {

proxy::Op release_op(ObjType t) noexcept {
  switch (t) {
    case ObjType::Context: return proxy::Op::ReleaseContext;
    case ObjType::Queue: return proxy::Op::ReleaseCommandQueue;
    case ObjType::Mem: return proxy::Op::ReleaseMemObject;
    case ObjType::Sampler: return proxy::Op::ReleaseSampler;
    case ObjType::Program: return proxy::Op::ReleaseProgram;
    case ObjType::Kernel: return proxy::Op::ReleaseKernel;
    case ObjType::Event: return proxy::Op::ReleaseEvent;
    default: return proxy::Op::Ping;  // platforms/devices are not released
  }
}

}  // namespace

void unref_object(Object* o) noexcept {
  if (o == nullptr || !o->release()) return;
  auto& rt = CheclRuntime::instance();
  rt.db().remove(o);
  if (o->remote != 0 && o->otype != ObjType::Platform &&
      o->otype != ObjType::Device) {
    if (proxy::Client* c = rt.client(); c != nullptr && c->alive())
      c->retain_release(release_op(o->otype), o->remote);
  }
  delete o;
}

// Object destructors (they unref what they reference).
DeviceObj::~DeviceObj() { unref_object(platform); }
ContextObj::~ContextObj() {
  for (DeviceObj* d : devices) unref_object(d);
}
QueueObj::~QueueObj() {
  unref_object(ctx);
  unref_object(dev);
}
MemObj::~MemObj() { unref_object(ctx); }
SamplerObj::~SamplerObj() { unref_object(ctx); }
ProgramObj::~ProgramObj() { unref_object(ctx); }
KernelObj::~KernelObj() {
  for (ArgRec& a : args) {
    unref_object(a.mem);
    unref_object(a.sampler);
  }
  unref_object(prog);
}
EventObj::~EventObj() { unref_object(queue); }

}  // namespace checl
