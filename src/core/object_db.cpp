#include "core/object_db.h"

#include <algorithm>

namespace checl {

namespace {
// The address-set lives process-wide so that `is_checl_object` (used by the
// clSetKernelArg heuristic) can be a free function over all databases — in
// practice there is one DB per process.
std::mutex g_addr_mu;
std::unordered_set<const void*> g_addrs;
}  // namespace

bool is_checl_object(const void* p) noexcept {
  std::lock_guard<std::mutex> lk(g_addr_mu);
  return g_addrs.count(p) != 0;
}

void ObjectDB::add(Object* o) {
  std::lock_guard<std::mutex> lk(mu_);
  o->id = next_id_++;
  by_id_[o->id] = o;
  addrs_.insert(o);
  ordered_.push_back(o);
  {
    std::lock_guard<std::mutex> glk(g_addr_mu);
    g_addrs.insert(o);
  }
}

void ObjectDB::remove(Object* o) {
  std::lock_guard<std::mutex> lk(mu_);
  // Only erase the id slot if it is really this object: ids are per-database,
  // so removing an object that lives in another ObjectDB (standalone DBs in
  // tests, decode scratch DBs) must not evict this database's same-id entry.
  if (const auto it = by_id_.find(o->id); it != by_id_.end() && it->second == o)
    by_id_.erase(it);
  addrs_.erase(o);
  ordered_.erase(std::remove(ordered_.begin(), ordered_.end(), o), ordered_.end());
  {
    std::lock_guard<std::mutex> glk(g_addr_mu);
    g_addrs.erase(o);
  }
}

bool ObjectDB::contains_addr(const void* p) const {
  std::lock_guard<std::mutex> lk(mu_);
  return addrs_.count(p) != 0;
}

Object* ObjectDB::by_id(std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = by_id_.find(id);
  return it != by_id_.end() ? it->second : nullptr;
}

std::size_t ObjectDB::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ordered_.size();
}

std::vector<Object*> ObjectDB::all() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ordered_;
}

void ObjectDB::clear() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  {
    std::lock_guard<std::mutex> glk(g_addr_mu);
    for (const void* p : addrs_) g_addrs.erase(p);
  }
  by_id_.clear();
  addrs_.clear();
  ordered_.clear();
}

}  // namespace checl
