// objects.h — CheCL objects: the wrapper classes of Section III-B.
//
// The application never sees an OpenCL handle.  Every wrapper API call returns
// a *CheCL handle* — a pointer to one of these objects — and each object
// records everything needed to recreate its OpenCL counterpart after restart:
// creation arguments, state-mutating calls (kernel args), and, at checkpoint
// time, device buffer contents.  The `remote` field holds the current actual
// OpenCL handle (a token in the API proxy's address space) and is silently
// rebound on restart — which is exactly why the application must not cache it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "checl/cl.h"
#include "core/ksig.h"
#include "proxy/client.h"

namespace checl {

inline constexpr std::uint32_t kMagic = 0x4C434843;  // "CHCL"

enum class ObjType : std::uint32_t {
  Platform, Device, Context, Queue, Mem, Sampler, Program, Kernel, Event,
};

inline constexpr std::size_t kNumObjTypes = 9;

// Restoration (and Figure 7 breakdown) order — the paper's dependency order.
constexpr const char* obj_type_name(ObjType t) noexcept {
  switch (t) {
    case ObjType::Platform: return "platform";
    case ObjType::Device: return "device";
    case ObjType::Context: return "context";
    case ObjType::Queue: return "cmd_que";
    case ObjType::Mem: return "mem";
    case ObjType::Sampler: return "sampler";
    case ObjType::Program: return "prog";
    case ObjType::Kernel: return "kernel";
    case ObjType::Event: return "event";
  }
  return "?";
}

struct Object {
  std::uint32_t magic = kMagic;
  ObjType otype;
  std::atomic<std::int32_t> refs{1};
  std::uint64_t id = 0;                // stable id, assigned by the ObjectDB
  proxy::RemoteHandle remote = 0;      // current actual OpenCL handle

  explicit Object(ObjType t) noexcept : otype(t) {}
  virtual ~Object() { magic = 0; }
  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  void retain() noexcept { refs.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] bool release() noexcept {
    return refs.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }
};

// True when `p` points at *some* live CheCL object (any type) — the
// address-based heuristic used when no kernel signature is available.
bool is_checl_object(const void* p) noexcept;

// Validating cast from an application-supplied handle.  Consults the live
// address set first: a released (freed) handle must fail cleanly, not be
// dereferenced.
template <typename T>
T* as_checl(void* h) noexcept {
  if (h == nullptr || !is_checl_object(h)) return nullptr;
  auto* o = static_cast<Object*>(h);
  if (o->magic != kMagic || o->otype != T::kType) return nullptr;
  return static_cast<T*>(o);
}

struct PlatformObj final : Object {
  static constexpr ObjType kType = ObjType::Platform;
  std::string name;       // matched on restore
  std::uint32_t index = 0;  // fallback match

  PlatformObj() : Object(kType) {}
};

struct DeviceObj final : Object {
  static constexpr ObjType kType = ObjType::Device;
  PlatformObj* platform = nullptr;  // retained
  cl_device_type type = CL_DEVICE_TYPE_GPU;
  std::uint32_t index_in_type = 0;
  std::string name;

  DeviceObj() : Object(kType) {}
  ~DeviceObj() override;
};

struct ContextObj final : Object {
  static constexpr ObjType kType = ObjType::Context;
  std::vector<DeviceObj*> devices;  // retained
  std::vector<std::int64_t> properties;  // key/value pairs + trailing 0

  ContextObj() : Object(kType) {}
  ~ContextObj() override;
};

struct QueueObj final : Object {
  static constexpr ObjType kType = ObjType::Queue;
  ContextObj* ctx = nullptr;   // retained
  DeviceObj* dev = nullptr;    // retained
  cl_command_queue_properties properties = 0;

  QueueObj() : Object(kType) {}
  ~QueueObj() override;
};

struct MemObj final : Object {
  static constexpr ObjType kType = ObjType::Mem;
  ContextObj* ctx = nullptr;  // retained
  cl_mem_flags flags = 0;
  std::size_t size = 0;

  bool is_image = false;
  cl_image_format format{};
  std::size_t width = 0;
  std::size_t height = 0;
  std::size_t row_pitch = 0;

  // CL_MEM_USE_HOST_PTR emulation: the application's cached host region.
  void* use_host_ptr = nullptr;

  // Device data copied to the host during checkpoint preprocessing; lives in
  // the snapshot file; freed in postprocessing.
  std::vector<std::uint8_t> snapshot;

  // Dirtiness is tracked where the mutations happen: the substrate keeps a
  // chunk-granularity dirty map per buffer (simcl::DirtyTracker), queried and
  // cleared through Op::MemDirtyFetch.  The engine's incremental mode reads
  // it as a single whole-buffer chunk; the live pre-copy engine reads it at
  // store chunk granularity.

  MemObj() : Object(kType) {}
  ~MemObj() override;
};

struct SamplerObj final : Object {
  static constexpr ObjType kType = ObjType::Sampler;
  ContextObj* ctx = nullptr;  // retained
  cl_bool normalized = CL_FALSE;
  cl_addressing_mode addressing = CL_ADDRESS_CLAMP;
  cl_filter_mode filter = CL_FILTER_NEAREST;

  SamplerObj() : Object(kType) {}
  ~SamplerObj() override;
};

struct ProgramObj final : Object {
  static constexpr ObjType kType = ObjType::Program;
  ContextObj* ctx = nullptr;  // retained
  std::string source;         // empty for binary-created programs
  std::vector<std::uint8_t> binary;  // only for clCreateProgramWithBinary
  std::string build_options;
  bool built = false;
  bool from_binary = false;
  ksig::Signatures signatures;  // parsed at creation (source path only)

  ProgramObj() : Object(kType) {}
  ~ProgramObj() override;
};

struct KernelObj final : Object {
  static constexpr ObjType kType = ObjType::Kernel;
  ProgramObj* prog = nullptr;  // retained
  std::string name;

  struct ArgRec {
    enum class Kind : std::uint8_t { Unset, Bytes, Mem, Sampler, Local };
    Kind kind = Kind::Unset;
    std::vector<std::uint8_t> bytes;
    MemObj* mem = nullptr;          // retained while bound
    SamplerObj* sampler = nullptr;  // retained while bound
    std::size_t local_size = 0;
  };
  std::vector<ArgRec> args;
  const ksig::KernelSig* sig = nullptr;  // owned by prog->signatures; may be null

  KernelObj() : Object(kType) {}
  ~KernelObj() override;
};

struct EventObj final : Object {
  static constexpr ObjType kType = ObjType::Event;
  QueueObj* queue = nullptr;  // retained
  cl_uint command_type = CL_COMMAND_MARKER;

  EventObj() : Object(kType) {}
  ~EventObj() override;
};

}  // namespace checl
