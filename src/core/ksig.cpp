#include "core/ksig.h"

#include "clc/lexer.h"
#include "clc/pp.h"

namespace checl::ksig {

namespace {

using clc::Tok;
using clc::Token;

ParamSig classify(const std::vector<Token>& toks, std::size_t begin, std::size_t end) {
  ParamSig sig;
  bool has_star = false;
  bool has_const = false;
  for (std::size_t i = begin; i < end; ++i) {
    switch (toks[i].kind) {
      case Tok::KwGlobal: sig.cls = ParamClass::MemGlobal; break;
      case Tok::KwConstant: sig.cls = ParamClass::MemConstant; break;
      case Tok::KwLocal: sig.cls = ParamClass::Local; break;
      case Tok::KwImage2d:
      case Tok::KwImage3d: sig.cls = ParamClass::Image; break;
      case Tok::KwSampler: sig.cls = ParamClass::Sampler; break;
      case Tok::KwConst: has_const = true; break;
      case Tok::Star: has_star = true; break;
      case Tok::Ident: sig.name = toks[i].text; break;  // last ident = name
      default: break;
    }
  }
  // the kernel cannot write through const pointers, __constant space, or
  // (1.0-model) images it only reads; images are conservatively writable
  sig.read_only = has_const || sig.cls == ParamClass::MemConstant;
  // A private-address-space pointer parameter is not a handle; only the
  // qualified spaces are.  (OpenCL C forbids private pointer kernel params
  // anyway, but be conservative.)
  if (sig.cls != ParamClass::Value && sig.cls != ParamClass::Image &&
      sig.cls != ParamClass::Sampler && !has_star) {
    // "__local float x" without '*' can't be a kernel parameter; treat as value
    sig.cls = ParamClass::Value;
  }
  return sig;
}

}  // namespace

Signatures parse_signatures(std::string_view source, std::string_view build_options) {
  Signatures out;

  clc::Diag diag;
  std::string expanded;
  clc::Preprocessor pp(std::string(build_options) +
                       " -D CLK_LOCAL_MEM_FENCE=1 -D CLK_GLOBAL_MEM_FENCE=2");
  if (!pp.run(source, expanded, diag)) expanded.assign(source);

  std::vector<Token> toks;
  clc::Lexer lexer(expanded);
  if (!lexer.run(toks, diag)) return out;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::KwKernel) continue;
    // find "<ident> (" — the kernel name and its parameter list
    std::size_t j = i + 1;
    std::size_t name_idx = 0;
    bool found = false;
    for (; j + 1 < toks.size() && toks[j].kind != Tok::LBrace &&
           toks[j].kind != Tok::Semi && toks[j].kind != Tok::End;
         ++j) {
      if (toks[j].kind == Tok::Ident && toks[j + 1].kind == Tok::LParen) {
        name_idx = j;
        found = true;
        break;
      }
    }
    if (!found) continue;
    KernelSig ks;
    ks.name = toks[name_idx].text;
    // scan params up to the matching ')'
    std::size_t p = name_idx + 2;  // past '('
    int depth = 1;
    std::size_t param_start = p;
    const bool empty_list = toks[p].kind == Tok::RParen;
    auto push_param = [&](std::size_t begin, std::size_t end) {
      // skip a bare "(void)" pseudo-parameter
      if (end == begin + 1 && toks[begin].kind == Tok::KwVoid) return;
      ks.params.push_back(classify(toks, begin, end));
    };
    while (p < toks.size() && depth > 0) {
      const Tok k = toks[p].kind;
      if (k == Tok::LParen) {
        ++depth;
      } else if (k == Tok::RParen) {
        --depth;
        if (depth == 0 && !empty_list && p > param_start)
          push_param(param_start, p);
      } else if (k == Tok::Comma && depth == 1) {
        push_param(param_start, p);
        param_start = p + 1;
      } else if (k == Tok::End) {
        break;
      }
      ++p;
    }
    out.kernels.push_back(std::move(ks));
    i = p;
  }
  return out;
}

}  // namespace checl::ksig
