#include "core/replay/codec.h"

#include <utility>

#include "core/runtime.h"
#include "ipc/serial.h"

namespace checl::replay {

namespace {

// ---------------------------------------------------------------------------
// the per-class field lists — the single source of truth
// ---------------------------------------------------------------------------
// Field order is the wire order of the v1 format and must only ever be
// appended to (older streams decode through the same functions).

template <class V>
void fields(V& v, PlatformObj& p) {
  v.str(p.name);
  v.u32(p.index);
}

template <class V>
void fields(V& v, DeviceObj& d) {
  v.link(d.platform);
  v.u64(d.type);
  v.u32(d.index_in_type);
  v.str(d.name);
}

template <class V>
void fields(V& v, ContextObj& c) {
  v.links(c.devices);
  v.i64s(c.properties);
}

template <class V>
void fields(V& v, QueueObj& q) {
  v.link(q.ctx);
  v.link(q.dev);
  v.u64(q.properties);
}

template <class V>
void fields(V& v, MemObj& m) {
  v.link(m.ctx);
  v.u64(m.flags);
  v.u64(m.size);
  v.boolean(m.is_image);
  v.u32(m.format.image_channel_order);
  v.u32(m.format.image_channel_data_type);
  v.u64(m.width);
  v.u64(m.height);
  v.u64(m.row_pitch);
  v.host_ptr_flag(m.use_host_ptr);
}

template <class V>
void fields(V& v, SamplerObj& s) {
  v.link(s.ctx);
  v.u32(s.normalized);
  v.u32(s.addressing);
  v.u32(s.filter);
}

template <class V>
void fields(V& v, ProgramObj& p) {
  v.link(p.ctx);
  v.str(p.source);
  v.str(p.build_options);
  v.boolean(p.built);
  v.boolean(p.from_binary);
  v.blob(p.binary);
}

template <class V>
void fields(V& v, KernelObj& k) {
  v.link(k.prog);
  v.str(k.name);
  v.args(k.args);
}

template <class V>
void fields(V& v, EventObj& e) {
  v.link(e.queue);
  v.u32(e.command_type);
}

// Signature fixups that depend on decoded fields (no-op for most classes).
void post_decode(Object&) {}
void post_decode(ProgramObj& p) {
  if (!p.source.empty())
    p.signatures = ksig::parse_signatures(p.source, p.build_options);
}
void post_decode(KernelObj& k) {
  if (k.prog != nullptr) k.sig = k.prog->signatures.find(k.name);
}

// ---------------------------------------------------------------------------
// the two visitors
// ---------------------------------------------------------------------------

class Enc {
 public:
  explicit Enc(ipc::Writer& w) : w_(w) {}

  template <class T>
  void u32(const T& v) {
    w_.u32(static_cast<std::uint32_t>(v));
  }
  template <class T>
  void u64(const T& v) {
    w_.u64(static_cast<std::uint64_t>(v));
  }
  void boolean(const bool& v) { w_.boolean(v); }
  void str(const std::string& s) { w_.str(s); }
  void blob(const std::vector<std::uint8_t>& b) { w_.bytes(b); }
  void i64s(const std::vector<std::int64_t>& v) {
    w_.u32(static_cast<std::uint32_t>(v.size()));
    for (const std::int64_t x : v) w_.i64(x);
  }
  template <class T>
  void link(T* const& p) {
    w_.u64(p != nullptr ? p->id : 0);
  }
  template <class T>
  void links(const std::vector<T*>& v) {
    w_.u32(static_cast<std::uint32_t>(v.size()));
    for (const T* p : v) w_.u64(p != nullptr ? p->id : 0);
  }
  // The pointer itself is meaningless in another process; only "was there
  // one" is recorded (it demotes CL_MEM_USE_HOST_PTR on a fresh restore).
  void host_ptr_flag(void* const& p) { w_.boolean(p != nullptr); }
  void args(const std::vector<KernelObj::ArgRec>& args) {
    w_.u32(static_cast<std::uint32_t>(args.size()));
    for (const KernelObj::ArgRec& a : args) {
      w_.u8(static_cast<std::uint8_t>(a.kind));
      switch (a.kind) {
        case KernelObj::ArgRec::Kind::Bytes: w_.bytes(a.bytes); break;
        case KernelObj::ArgRec::Kind::Mem: link(a.mem); break;
        case KernelObj::ArgRec::Kind::Sampler: link(a.sampler); break;
        case KernelObj::ArgRec::Kind::Local: w_.u64(a.local_size); break;
        case KernelObj::ArgRec::Kind::Unset: break;
      }
    }
  }

 private:
  ipc::Writer& w_;
};

class Dec {
 public:
  Dec(ipc::Reader& r, const std::unordered_map<std::uint64_t, Object*>& map)
      : r_(r), map_(map) {}

  [[nodiscard]] bool bad() const noexcept { return bad_ || !r_.ok(); }

  template <class T>
  void u32(T& v) {
    v = static_cast<T>(r_.u32());
  }
  template <class T>
  void u64(T& v) {
    v = static_cast<T>(r_.u64());
  }
  void boolean(bool& v) { v = r_.boolean(); }
  void str(std::string& s) { s = r_.str(); }
  void blob(std::vector<std::uint8_t>& b) { b = r_.bytes(); }
  void i64s(std::vector<std::int64_t>& v) {
    const std::uint32_t n = r_.u32();
    for (std::uint32_t i = 0; i < n && r_.ok(); ++i) v.push_back(r_.i64());
  }
  // Dangling ids decode to nullptr (the v1 reader's tolerance): link
  // *validity* is the RestorePlan's concern, not the codec's.
  template <class T>
  void link(T*& p) {
    p = resolve<T>(r_.u64());
    if (p != nullptr) p->retain();
  }
  template <class T>
  void links(std::vector<T*>& v) {
    const std::uint32_t n = r_.u32();
    for (std::uint32_t i = 0; i < n && r_.ok(); ++i) {
      if (T* p = resolve<T>(r_.u64()); p != nullptr) {
        p->retain();
        v.push_back(p);
      }
    }
  }
  void host_ptr_flag(void*& p) {
    (void)r_.boolean();  // app memory is gone in a fresh process; demoted
    p = nullptr;
  }
  void args(std::vector<KernelObj::ArgRec>& args) {
    const std::uint32_t n = r_.u32();
    for (std::uint32_t i = 0; i < n && r_.ok() && !bad_; ++i) {
      KernelObj::ArgRec a;
      const std::uint8_t kind = r_.u8();
      if (kind > static_cast<std::uint8_t>(KernelObj::ArgRec::Kind::Local)) {
        bad_ = true;
        return;
      }
      a.kind = static_cast<KernelObj::ArgRec::Kind>(kind);
      switch (a.kind) {
        case KernelObj::ArgRec::Kind::Bytes: a.bytes = r_.bytes(); break;
        case KernelObj::ArgRec::Kind::Mem: link(a.mem); break;
        case KernelObj::ArgRec::Kind::Sampler: link(a.sampler); break;
        case KernelObj::ArgRec::Kind::Local: a.local_size = r_.u64(); break;
        case KernelObj::ArgRec::Kind::Unset: break;
      }
      args.push_back(std::move(a));
    }
  }

 private:
  template <class T>
  T* resolve(std::uint64_t old_id) const {
    const auto it = map_.find(old_id);
    if (it == map_.end() || it->second->otype != T::kType) return nullptr;
    return static_cast<T*>(it->second);
  }

  ipc::Reader& r_;
  const std::unordered_map<std::uint64_t, Object*>& map_;
  bool bad_ = false;
};

// ---------------------------------------------------------------------------
// container encode/decode
// ---------------------------------------------------------------------------

template <class T>
void encode_class(ipc::Writer& w, ObjectDB& db) {
  const auto objs = db.all_of<T>();
  w.u32(static_cast<std::uint32_t>(T::kType));
  w.u32(static_cast<std::uint32_t>(objs.size()));
  ipc::Writer body;
  Enc v(body);
  for (T* o : objs) {
    body.u64(o->id);
    fields(v, *o);
  }
  const std::vector<std::uint8_t> bytes = body.take();
  w.u64(bytes.size());
  w.raw(bytes.data(), bytes.size());
}

template <class T>
bool decode_class(ipc::Reader& r, std::uint32_t count, ObjectDB& db,
                  DecodeResult& res) {
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    auto* o = new T();
    const std::uint64_t old_id = r.u64();
    Dec v(r, res.map);
    fields(v, *o);
    if (v.bad()) {
      delete o;  // drops whatever deps it already retained
      res.error = std::string("checkpoint DB: truncated or corrupt ") +
                  obj_type_name(T::kType) + " record";
      return false;
    }
    post_decode(*o);
    db.add(o);
    res.map[old_id] = o;
    res.created.push_back(o);
  }
  if (!r.ok()) {
    res.error = std::string("checkpoint DB: truncated ") +
                obj_type_name(T::kType) + " section";
    return false;
  }
  return true;
}

using DecodeFn = bool (*)(ipc::Reader&, std::uint32_t, ObjectDB&, DecodeResult&);

// Indexed by ObjType — also the v1 stream's fixed class order.
constexpr DecodeFn kClassDecoders[kNumObjTypes] = {
    &decode_class<PlatformObj>, &decode_class<DeviceObj>,
    &decode_class<ContextObj>,  &decode_class<QueueObj>,
    &decode_class<MemObj>,      &decode_class<SamplerObj>,
    &decode_class<ProgramObj>,  &decode_class<KernelObj>,
    &decode_class<EventObj>,
};

bool decode_v1(ipc::Reader& r, ObjectDB& db, DecodeResult& res) {
  for (std::size_t c = 0; c < kNumObjTypes; ++c) {
    const std::uint32_t count = r.u32();
    if (!kClassDecoders[c](r, count, db, res)) return false;
  }
  return r.ok();
}

bool decode_v2(ipc::Reader& r, ObjectDB& db, DecodeResult& res) {
  const std::uint32_t sections = r.u32();
  for (std::uint32_t s = 0; s < sections && r.ok(); ++s) {
    const std::uint32_t tag = r.u32();
    const std::uint32_t count = r.u32();
    const std::uint64_t len = r.u64();
    const auto body = r.view(static_cast<std::size_t>(len));
    if (!r.ok()) {
      res.error = "checkpoint DB: truncated section header";
      return false;
    }
    if (tag >= kNumObjTypes) continue;  // future class: skip by length
    ipc::Reader sub(body);
    if (!kClassDecoders[tag](sub, count, db, res)) return false;
  }
  if (!r.ok()) {
    res.error = "checkpoint DB: truncated section table";
    return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_db(ObjectDB& db) {
  ipc::Writer w;
  w.u32(kDbVersion);
  w.u32(static_cast<std::uint32_t>(kNumObjTypes));
  encode_class<PlatformObj>(w, db);
  encode_class<DeviceObj>(w, db);
  encode_class<ContextObj>(w, db);
  encode_class<QueueObj>(w, db);
  encode_class<MemObj>(w, db);
  encode_class<SamplerObj>(w, db);
  encode_class<ProgramObj>(w, db);
  encode_class<KernelObj>(w, db);
  encode_class<EventObj>(w, db);
  return w.take();
}

DecodeResult decode_db(std::span<const std::uint8_t> bytes, ObjectDB& db) {
  DecodeResult res;
  ipc::Reader r(bytes);
  const std::uint32_t version = r.u32();
  bool ok = false;
  if (version == 1) {
    ok = decode_v1(r, db, res);
  } else if (version == kDbVersion) {
    ok = decode_v2(r, db, res);
  } else {
    res.error =
        "checkpoint DB: unknown version " + std::to_string(version);
  }
  if (!ok) {
    destroy_decoded(db, res.created);
    res.created.clear();
    res.map.clear();
    return res;
  }
  res.ok = true;
  return res;
}

void destroy_decoded(ObjectDB& db, const std::vector<Object*>& created) {
  // Reverse creation order: dependents drop their retains before the objects
  // they depend on are unreffed, so every unref here hits refcount zero.
  for (auto it = created.rbegin(); it != created.rend(); ++it) {
    db.remove(*it);
    unref_object(*it);
  }
}

std::string object_label(const Object* o) {
  if (o == nullptr) return "<null object>";
  return std::string(obj_type_name(o->otype)) + "#" + std::to_string(o->id);
}

}  // namespace checl::replay
