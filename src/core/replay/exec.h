// exec.h — the transactional restore executor.
//
// One executor serves restart_in_place, restore_fresh, and migration: it
// walks a RestorePlan wave by wave, recreating each wave's objects — serially
// or on a small worker pool (ExecOptions::parallel), with the kernel-arg
// replay optionally routed through the client-side IPC batching fast path
// (ExecOptions::batch).  Parallel waves are bracketed by GroupBegin/GroupEnd
// proxy ops: the server records each call's simulated cost and collapses the
// wave to its W-worker makespan, so programs — the Tr-dominant class of
// Figure 7 — compile in (modeled) parallel.
//
// The run is transactional: on any failure the executor releases every remote
// handle it created (reverse creation order), zeroes the plan objects'
// remotes so the ObjectDB uniformly reads "nothing restored", and reports the
// failing object by name ("kernel#12: CL_INVALID_KERNEL_NAME").  The caller
// decides what to do with the CheCL objects themselves (restart_in_place
// keeps them — the app still holds the handles; restore_fresh destroys the
// decoded set).
#pragma once

#include <cstdint>
#include <string>

#include "checl/cl.h"
#include "core/replay/plan.h"

namespace checl {
class CheclRuntime;
namespace cpr {
struct RestartBreakdown;
}
}  // namespace checl

namespace checl::replay {

struct ExecOptions {
  bool parallel = true;  // recreate independent objects of a wave concurrently
  unsigned workers = 0;  // worker-pool width; 0 = auto (min(4, hw threads))
  bool batch = false;    // route fire-and-forget replay calls through Op::Batch
};

// Cumulative across runs (the engine keeps one instance; stats_json reports
// it under "restore").
struct ExecCounters {
  std::uint64_t plans = 0;             // executor runs started
  std::uint64_t waves = 0;             // waves executed
  std::uint64_t nodes_recreated = 0;   // objects successfully recreated
  std::uint64_t parallel_waves = 0;    // waves run on the worker pool
  std::uint64_t max_concurrency = 0;   // widest worker pool ever used
  std::uint64_t batched_calls = 0;     // client calls absorbed into batches
  std::uint64_t group_rpcs = 0;        // GroupBegin/GroupEnd round trips
  std::uint64_t rollbacks = 0;         // failed runs rolled back
  std::uint64_t rolled_back_handles = 0;  // remote handles released by rollback
};

// "CL_INVALID_KERNEL_NAME"-style name for an OpenCL error code.
const char* cl_error_name(cl_int err) noexcept;

class Executor {
 public:
  Executor(CheclRuntime& rt, const ExecOptions& opts) : rt_(rt), opts_(opts) {}

  // Recreates every object in plan order.  On success all plan objects have
  // live remotes and `breakdown` (when non-null) carries per-class simulated
  // times.  On failure rolls back (see above), sets `error` to
  // "<object>: <CL error name>", and returns the failing call's error code.
  cl_int run(const RestorePlan& plan, cpr::RestartBreakdown* breakdown,
             std::string& error, ExecCounters& counters);

 private:
  CheclRuntime& rt_;
  ExecOptions opts_;
};

}  // namespace checl::replay
