#include "core/replay/plan.h"

#include <array>
#include <unordered_map>

#include "core/replay/codec.h"

namespace checl::replay {

namespace {

// Dependencies an object cannot be recreated without.  A corrupt snapshot
// whose links failed to resolve used to segfault in recreate_queues; now it
// fails plan validation with the object named.
bool collect_deps(Object* o, PlanNode& node, std::string& error) {
  auto require = [&](Object* dep, const char* what) {
    if (dep == nullptr) {
      error = object_label(o) + ": missing " + what + " link in snapshot";
      return false;
    }
    node.deps.push_back(dep);
    return true;
  };
  auto optional = [&](Object* dep) {
    if (dep != nullptr) node.deps.push_back(dep);
  };

  switch (o->otype) {
    case ObjType::Platform:
      return true;
    case ObjType::Device:
      optional(static_cast<DeviceObj*>(o)->platform);
      return true;
    case ObjType::Context:
      for (DeviceObj* d : static_cast<ContextObj*>(o)->devices) optional(d);
      return true;
    case ObjType::Queue: {
      auto* q = static_cast<QueueObj*>(o);
      return require(q->ctx, "context") && require(q->dev, "device");
    }
    case ObjType::Mem:
      return require(static_cast<MemObj*>(o)->ctx, "context");
    case ObjType::Sampler:
      return require(static_cast<SamplerObj*>(o)->ctx, "context");
    case ObjType::Program:
      return require(static_cast<ProgramObj*>(o)->ctx, "context");
    case ObjType::Kernel: {
      auto* k = static_cast<KernelObj*>(o);
      if (!require(k->prog, "program")) return false;
      for (const KernelObj::ArgRec& a : k->args) {
        optional(a.mem);
        optional(a.sampler);
      }
      return true;
    }
    case ObjType::Event:
      // A null queue is legal: the event becomes a no-op (remote stays 0),
      // exactly what the serial restore did for unresolvable queues.
      optional(static_cast<EventObj*>(o)->queue);
      return true;
  }
  return true;
}

}  // namespace

bool RestorePlan::build(const std::vector<Object*>& objs, std::string& error) {
  nodes_.clear();
  waves_.clear();
  wave_class_.clear();

  nodes_.reserve(objs.size());
  std::unordered_map<const Object*, std::uint32_t> index;
  index.reserve(objs.size());
  for (Object* o : objs) {
    index.emplace(o, static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(PlanNode{o, {}, 0});
  }

  for (PlanNode& n : nodes_) {
    if (!collect_deps(n.obj, n, error)) return false;
    for (const Object* dep : n.deps) {
      if (index.find(dep) == index.end()) {
        error = object_label(n.obj) + ": dependency " + object_label(dep) +
                " is not part of the restore set";
        return false;
      }
      // Every recorded edge points from a lower class to a higher one; an
      // equal-or-higher dependency cannot be scheduled before its dependent.
      if (static_cast<std::uint32_t>(dep->otype) >=
          static_cast<std::uint32_t>(n.obj->otype)) {
        error = object_label(n.obj) + ": dependency " + object_label(dep) +
                " breaks the class order (unschedulable)";
        return false;
      }
    }
  }

  // One wave per non-empty class, in ObjType (dependency) order.
  std::array<std::vector<std::uint32_t>, kNumObjTypes> by_class;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i)
    by_class[static_cast<std::size_t>(nodes_[i].obj->otype)].push_back(i);
  for (std::size_t c = 0; c < kNumObjTypes; ++c) {
    if (by_class[c].empty()) continue;
    for (const std::uint32_t i : by_class[c])
      nodes_[i].wave = static_cast<std::uint32_t>(waves_.size());
    waves_.push_back(std::move(by_class[c]));
    wave_class_.push_back(static_cast<ObjType>(c));
  }
  return true;
}

}  // namespace checl::replay
