#include "core/replay/exec.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "chaoskit/chaoskit.h"
#include "core/cpr.h"
#include "core/replay/codec.h"
#include "core/runtime.h"

namespace checl::replay {

namespace {

proxy::Op release_op_for(ObjType t) noexcept {
  switch (t) {
    case ObjType::Context: return proxy::Op::ReleaseContext;
    case ObjType::Queue: return proxy::Op::ReleaseCommandQueue;
    case ObjType::Mem: return proxy::Op::ReleaseMemObject;
    case ObjType::Sampler: return proxy::Op::ReleaseSampler;
    case ObjType::Program: return proxy::Op::ReleaseProgram;
    case ObjType::Kernel: return proxy::Op::ReleaseKernel;
    case ObjType::Event: return proxy::Op::ReleaseEvent;
    default: return proxy::Op::Ping;  // platforms/devices are lookups
  }
}

// Shared state of one executor run.  Worker threads write disjoint objects;
// the mutex guards only the failure slot and the created-handle log.
struct RunState {
  proxy::Client& c;
  CheclRuntime& rt;

  // Platform list + names, fetched once (platform/device waves).  A failed
  // name fetch is recorded as such — matching skips it and the index
  // fallback takes over explicitly, instead of comparing against a silently
  // empty string.
  bool platforms_fetched = false;
  std::vector<proxy::RemoteHandle> platform_remotes;
  std::vector<std::string> platform_names;
  std::vector<bool> platform_name_ok;

  std::atomic<std::uint64_t> completed{0};

  std::mutex mu;
  cl_int err = CL_SUCCESS;      // first failure wins
  std::string err_label;
  std::vector<std::pair<proxy::Op, proxy::RemoteHandle>> created;

  [[nodiscard]] bool failed() noexcept {
    std::lock_guard<std::mutex> lk(mu);
    return err != CL_SUCCESS;
  }
  void fail(cl_int e, std::string label) {
    std::lock_guard<std::mutex> lk(mu);
    if (err == CL_SUCCESS) {
      err = e;
      err_label = std::move(label);
    }
  }
  void log_created(ObjType t, proxy::RemoteHandle h) {
    std::lock_guard<std::mutex> lk(mu);
    created.emplace_back(release_op_for(t), h);
  }
};

void fetch_platforms(RunState& st) {
  if (st.platforms_fetched) return;
  st.platforms_fetched = true;
  cl_uint total = 0;
  st.c.get_platform_ids(16, st.platform_remotes, total);
  st.platform_names.reserve(st.platform_remotes.size());
  for (const proxy::RemoteHandle h : st.platform_remotes) {
    char buf[256] = {};
    const cl_int err = st.c.get_info(proxy::Op::GetPlatformInfo, h,
                                     CL_PLATFORM_NAME, sizeof buf, buf, nullptr);
    st.platform_name_ok.push_back(err == CL_SUCCESS);
    st.platform_names.emplace_back(err == CL_SUCCESS ? buf : "");
  }
}

// ---------------------------------------------------------------------------
// per-node recreation (the bodies of the former recreate_* loops)
// ---------------------------------------------------------------------------

cl_int recreate_platform(RunState& st, PlatformObj* p) {
  p->remote = 0;
  for (std::size_t i = 0; i < st.platform_remotes.size(); ++i) {
    if (st.platform_name_ok[i] && st.platform_names[i] == p->name) {
      p->remote = st.platform_remotes[i];
      break;
    }
  }
  if (p->remote == 0 && !st.platform_remotes.empty())
    p->remote = st.platform_remotes[std::min<std::size_t>(
        p->index, st.platform_remotes.size() - 1)];
  return p->remote != 0 ? CL_SUCCESS : CL_INVALID_PLATFORM;
}

cl_int recreate_device(RunState& st, DeviceObj* d) {
  d->remote = 0;
  const cl_device_type want = st.rt.retarget_device_type.value_or(d->type);
  std::vector<proxy::RemoteHandle> devs;
  cl_uint n = 0;
  // 1) same platform, wanted type
  if (d->platform != nullptr && d->platform->remote != 0 &&
      st.c.get_device_ids(d->platform->remote, want, 16, devs, n) ==
          CL_SUCCESS &&
      !devs.empty()) {
    d->remote = devs[d->index_in_type % devs.size()];
    return CL_SUCCESS;
  }
  // 2) any platform, wanted type
  for (const proxy::RemoteHandle ph : st.platform_remotes) {
    if (st.c.get_device_ids(ph, want, 16, devs, n) == CL_SUCCESS &&
        !devs.empty()) {
      d->remote = devs[d->index_in_type % devs.size()];
      return CL_SUCCESS;
    }
  }
  // 3) any device anywhere (cross-device migration, e.g. GPU -> CPU node)
  for (const proxy::RemoteHandle ph : st.platform_remotes) {
    if (st.c.get_device_ids(ph, CL_DEVICE_TYPE_ALL, 16, devs, n) ==
            CL_SUCCESS &&
        !devs.empty()) {
      d->remote = devs[0];
      return CL_SUCCESS;
    }
  }
  return CL_DEVICE_NOT_FOUND;
}

cl_int recreate_context(RunState& st, ContextObj* ctx) {
  std::vector<proxy::RemoteHandle> devs;
  devs.reserve(ctx->devices.size());
  for (const DeviceObj* d : ctx->devices) devs.push_back(d->remote);
  // rewrite any CL_CONTEXT_PLATFORM property to the new platform handle
  std::vector<std::int64_t> props = ctx->properties;
  for (std::size_t i = 0; i + 1 < props.size(); i += 2) {
    if (props[i] == CL_CONTEXT_PLATFORM && !ctx->devices.empty() &&
        ctx->devices[0]->platform != nullptr) {
      props[i + 1] =
          static_cast<std::int64_t>(ctx->devices[0]->platform->remote);
    }
  }
  proxy::RemoteHandle h = 0;
  const cl_int err = st.c.create_context(props, devs, h);
  if (err != CL_SUCCESS) return err;
  ctx->remote = h;
  st.log_created(ObjType::Context, h);
  return CL_SUCCESS;
}

cl_int recreate_queue(RunState& st, QueueObj* q) {
  // The plan guarantees non-null links; remote==0 here would mean an earlier
  // wave lied about succeeding.  Fail by name rather than pass a bad handle.
  if (q->ctx->remote == 0) return CL_INVALID_CONTEXT;
  if (q->dev->remote == 0) return CL_INVALID_DEVICE;
  proxy::RemoteHandle h = 0;
  const cl_int err =
      st.c.create_queue(q->ctx->remote, q->dev->remote, q->properties, h);
  if (err != CL_SUCCESS) return err;
  q->remote = h;
  st.log_created(ObjType::Queue, h);
  return CL_SUCCESS;
}

cl_int recreate_mem(RunState& st, MemObj* m) {
  if (m->ctx->remote == 0) return CL_INVALID_CONTEXT;
  // strip host-pointer flags: the data is uploaded from the snapshot copy
  const cl_mem_flags flags =
      m->flags & ~static_cast<cl_mem_flags>(CL_MEM_USE_HOST_PTR |
                                            CL_MEM_COPY_HOST_PTR);
  std::span<const std::uint8_t> data{m->snapshot.data(), m->snapshot.size()};
  proxy::RemoteHandle h = 0;
  cl_int err;
  if (m->is_image) {
    err = st.c.create_image2d(m->ctx->remote, flags, m->format, m->width,
                              m->height, m->row_pitch, data, h);
  } else {
    err = st.c.create_buffer(m->ctx->remote, flags, m->size, data, h);
  }
  if (err != CL_SUCCESS) return err;
  m->remote = h;
  st.log_created(ObjType::Mem, h);
  m->snapshot.clear();
  m->snapshot.shrink_to_fit();
  // Device contents equal the restored checkpoint; the engine resets the
  // substrate-side dirty maps once the whole plan has run.
  return CL_SUCCESS;
}

cl_int recreate_sampler(RunState& st, SamplerObj* s) {
  if (s->ctx->remote == 0) return CL_INVALID_CONTEXT;
  proxy::RemoteHandle h = 0;
  const cl_int err = st.c.create_sampler(s->ctx->remote, s->normalized,
                                         s->addressing, s->filter, h);
  if (err != CL_SUCCESS) return err;
  s->remote = h;
  st.log_created(ObjType::Sampler, h);
  return CL_SUCCESS;
}

cl_int recreate_program(RunState& st, ProgramObj* p) {
  if (p->ctx->remote == 0) return CL_INVALID_CONTEXT;
  std::vector<proxy::RemoteHandle> devs;
  for (const DeviceObj* d : p->ctx->devices) devs.push_back(d->remote);
  proxy::RemoteHandle h = 0;
  cl_int err;
  if (p->from_binary && !p->binary.empty()) {
    cl_int status = CL_SUCCESS;
    err = st.c.create_program_with_binary(p->ctx->remote, devs, p->binary,
                                          status, h);
  } else {
    err = st.c.create_program_with_source(p->ctx->remote, p->source, h);
  }
  if (err != CL_SUCCESS) return err;
  p->remote = h;
  st.log_created(ObjType::Program, h);
  if (p->built) {
    // the recompilation the paper highlights in Figure 7
    err = st.c.build_program(h, devs, p->build_options);
    if (err != CL_SUCCESS) return err;
  }
  return CL_SUCCESS;
}

cl_int recreate_kernel(RunState& st, KernelObj* k) {
  if (k->prog->remote == 0) return CL_INVALID_PROGRAM;
  proxy::RemoteHandle h = 0;
  const cl_int err = st.c.create_kernel(k->prog->remote, k->name, h);
  if (err != CL_SUCCESS) return err;
  k->remote = h;
  st.log_created(ObjType::Kernel, h);
  // re-apply recorded state changes (clSetKernelArg history); these are
  // fire-and-forget on the client, so under ExecOptions::batch they ride
  // the Op::Batch fast path and errors surface at the wave's sync.
  for (std::size_t i = 0; i < k->args.size(); ++i) {
    const KernelObj::ArgRec& a = k->args[i];
    const auto idx = static_cast<cl_uint>(i);
    switch (a.kind) {
      case KernelObj::ArgRec::Kind::Bytes:
        st.c.set_kernel_arg_bytes(h, idx, a.bytes);
        break;
      case KernelObj::ArgRec::Kind::Mem:
        if (a.mem != nullptr) st.c.set_kernel_arg_mem(h, idx, a.mem->remote);
        break;
      case KernelObj::ArgRec::Kind::Sampler:
        if (a.sampler != nullptr)
          st.c.set_kernel_arg_sampler(h, idx, a.sampler->remote);
        break;
      case KernelObj::ArgRec::Kind::Local:
        st.c.set_kernel_arg_local(h, idx, a.local_size);
        break;
      case KernelObj::ArgRec::Kind::Unset: break;
    }
  }
  return CL_SUCCESS;
}

cl_int recreate_event(RunState& st, EventObj* e) {
  e->remote = 0;
  if (e->queue == nullptr || e->queue->remote == 0) return CL_SUCCESS;
  // There is no API to create an arbitrary event; get a dummy via
  // clEnqueueMarker — complete immediately, blocks nobody (Section III-C).
  proxy::RemoteHandle ev = 0;
  if (st.c.enqueue_marker(e->queue->remote, ev) == CL_SUCCESS) {
    e->remote = ev;
    st.log_created(ObjType::Event, ev);
    // Drain the (otherwise empty) queue so the dummy reports CL_COMPLETE the
    // moment the restore returns, not whenever the device worker gets to it.
    st.c.finish(e->queue->remote);
  }
  return CL_SUCCESS;
}

cl_int recreate_node(RunState& st, Object* o) {
  switch (o->otype) {
    case ObjType::Platform: return recreate_platform(st, static_cast<PlatformObj*>(o));
    case ObjType::Device: return recreate_device(st, static_cast<DeviceObj*>(o));
    case ObjType::Context: return recreate_context(st, static_cast<ContextObj*>(o));
    case ObjType::Queue: return recreate_queue(st, static_cast<QueueObj*>(o));
    case ObjType::Mem: return recreate_mem(st, static_cast<MemObj*>(o));
    case ObjType::Sampler: return recreate_sampler(st, static_cast<SamplerObj*>(o));
    case ObjType::Program: return recreate_program(st, static_cast<ProgramObj*>(o));
    case ObjType::Kernel: return recreate_kernel(st, static_cast<KernelObj*>(o));
    case ObjType::Event: return recreate_event(st, static_cast<EventObj*>(o));
  }
  return CL_INVALID_VALUE;
}

void run_one(RunState& st, Object* o) {
  // Forced per-node failure: the node "fails to recreate" with the armed CL
  // error before any remote call, exercising the rollback path end to end.
  if (chaoskit::Engine::instance().should_fire(chaoskit::Site::ExecWaveFail)) {
    cl_int inj = static_cast<cl_int>(chaoskit::Engine::instance().arg());
    if (inj == CL_SUCCESS) inj = CL_OUT_OF_RESOURCES;
    st.fail(inj, object_label(o));
    return;
  }
  const cl_int e = recreate_node(st, o);
  if (e != CL_SUCCESS)
    st.fail(e, object_label(o));
  else
    st.completed.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t now_ns(proxy::Client& c) {
  cl_ulong t = 0;
  c.sim_get_host_time_ns(t);
  return t;
}

// On failure: release every handle this run created (reverse creation
// order), then zero all plan remotes so the DB and the proxy agree that
// nothing of this restore survived.
void rollback(RunState& st, const RestorePlan& plan) {
  for (auto it = st.created.rbegin(); it != st.created.rend(); ++it)
    st.c.retain_release(it->first, it->second);
  st.c.sync();
  for (const PlanNode& n : plan.nodes()) n.obj->remote = 0;
}

}  // namespace

const char* cl_error_name(cl_int err) noexcept {
  switch (err) {
    case CL_SUCCESS: return "CL_SUCCESS";
    case CL_DEVICE_NOT_FOUND: return "CL_DEVICE_NOT_FOUND";
    case CL_DEVICE_NOT_AVAILABLE: return "CL_DEVICE_NOT_AVAILABLE";
    case CL_COMPILER_NOT_AVAILABLE: return "CL_COMPILER_NOT_AVAILABLE";
    case CL_MEM_OBJECT_ALLOCATION_FAILURE: return "CL_MEM_OBJECT_ALLOCATION_FAILURE";
    case CL_OUT_OF_RESOURCES: return "CL_OUT_OF_RESOURCES";
    case CL_OUT_OF_HOST_MEMORY: return "CL_OUT_OF_HOST_MEMORY";
    case CL_BUILD_PROGRAM_FAILURE: return "CL_BUILD_PROGRAM_FAILURE";
    case CL_INVALID_VALUE: return "CL_INVALID_VALUE";
    case CL_INVALID_DEVICE_TYPE: return "CL_INVALID_DEVICE_TYPE";
    case CL_INVALID_PLATFORM: return "CL_INVALID_PLATFORM";
    case CL_INVALID_DEVICE: return "CL_INVALID_DEVICE";
    case CL_INVALID_CONTEXT: return "CL_INVALID_CONTEXT";
    case CL_INVALID_QUEUE_PROPERTIES: return "CL_INVALID_QUEUE_PROPERTIES";
    case CL_INVALID_COMMAND_QUEUE: return "CL_INVALID_COMMAND_QUEUE";
    case CL_INVALID_HOST_PTR: return "CL_INVALID_HOST_PTR";
    case CL_INVALID_MEM_OBJECT: return "CL_INVALID_MEM_OBJECT";
    case CL_INVALID_IMAGE_FORMAT_DESCRIPTOR: return "CL_INVALID_IMAGE_FORMAT_DESCRIPTOR";
    case CL_INVALID_IMAGE_SIZE: return "CL_INVALID_IMAGE_SIZE";
    case CL_INVALID_SAMPLER: return "CL_INVALID_SAMPLER";
    case CL_INVALID_BINARY: return "CL_INVALID_BINARY";
    case CL_INVALID_BUILD_OPTIONS: return "CL_INVALID_BUILD_OPTIONS";
    case CL_INVALID_PROGRAM: return "CL_INVALID_PROGRAM";
    case CL_INVALID_PROGRAM_EXECUTABLE: return "CL_INVALID_PROGRAM_EXECUTABLE";
    case CL_INVALID_KERNEL_NAME: return "CL_INVALID_KERNEL_NAME";
    case CL_INVALID_KERNEL_DEFINITION: return "CL_INVALID_KERNEL_DEFINITION";
    case CL_INVALID_KERNEL: return "CL_INVALID_KERNEL";
    case CL_INVALID_ARG_INDEX: return "CL_INVALID_ARG_INDEX";
    case CL_INVALID_ARG_VALUE: return "CL_INVALID_ARG_VALUE";
    case CL_INVALID_ARG_SIZE: return "CL_INVALID_ARG_SIZE";
    case CL_INVALID_KERNEL_ARGS: return "CL_INVALID_KERNEL_ARGS";
    case CL_INVALID_OPERATION: return "CL_INVALID_OPERATION";
    case CL_INVALID_BUFFER_SIZE: return "CL_INVALID_BUFFER_SIZE";
    case CL_INVALID_EVENT: return "CL_INVALID_EVENT";
    default: return "CL_ERROR";
  }
}

cl_int Executor::run(const RestorePlan& plan, cpr::RestartBreakdown* breakdown,
                     std::string& error, ExecCounters& counters) {
  error.clear();
  proxy::Client* client = rt_.client();
  if (client == nullptr || !client->alive()) {
    error = "restore executor: no live proxy";
    return CL_DEVICE_NOT_AVAILABLE;
  }
  RunState st{*client, rt_};
  counters.plans++;
  const std::uint64_t batched_before = client->stats().batched_calls;
  const bool saved_batching = client->batching();
  if (opts_.batch) client->set_batching(true);

  unsigned width = opts_.workers != 0
                       ? opts_.workers
                       : std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  width = std::min(width, 64u);

  for (std::size_t wi = 0; wi < plan.waves().size(); ++wi) {
    // Simulated proxy loss at a wave boundary: everything recreated so far
    // must be rolled back and the DB left exactly as before the restore.
    if (chaoskit::Engine::instance().should_fire(
            chaoskit::Site::ExecCrashBetweenWaves)) {
      st.fail(CL_DEVICE_NOT_AVAILABLE,
              "wave " + std::to_string(wi) + " boundary (proxy lost)");
      break;
    }
    const std::vector<std::uint32_t>& wave = plan.waves()[wi];
    const ObjType cls = plan.wave_class(wi);
    const std::uint64_t t0 = now_ns(*client);
    if (cls == ObjType::Platform || cls == ObjType::Device)
      fetch_platforms(st);

    const unsigned pool =
        static_cast<unsigned>(std::min<std::size_t>(width, wave.size()));
    bool grouped = opts_.parallel && pool > 1;
    if (grouped && client->group_begin(pool) != CL_SUCCESS) grouped = false;
    if (grouped) {
      counters.parallel_waves++;
      counters.max_concurrency =
          std::max<std::uint64_t>(counters.max_concurrency, pool);
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> threads;
      threads.reserve(pool);
      for (unsigned t = 0; t < pool; ++t) {
        threads.emplace_back([&] {
          for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= wave.size() || st.failed()) break;
            run_one(st, plan.nodes()[wave[i]].obj);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      client->group_end();
      counters.group_rpcs += 2;
    } else {
      counters.max_concurrency =
          std::max<std::uint64_t>(counters.max_concurrency, 1);
      for (const std::uint32_t i : wave) {
        run_one(st, plan.nodes()[i].obj);
        if (st.failed()) break;
      }
    }
    // Surface any sticky deferred error from batched replay calls inside
    // this wave's timing window; it cannot name a single node, so the wave
    // class stands in.
    const cl_int defer = client->sync();
    if (defer != CL_SUCCESS)
      st.fail(defer, std::string(obj_type_name(cls)) + " wave (batched call)");
    if (breakdown != nullptr)
      breakdown->class_ns[static_cast<std::size_t>(cls)] =
          now_ns(*client) - t0;
    counters.waves++;
    if (st.failed()) break;
  }

  client->set_batching(saved_batching);
  counters.batched_calls += client->stats().batched_calls - batched_before;
  counters.nodes_recreated += st.completed.load(std::memory_order_relaxed);

  if (st.err != CL_SUCCESS) {
    rollback(st, plan);
    counters.rollbacks++;
    counters.rolled_back_handles += st.created.size();
    error = st.err_label + ": " + cl_error_name(st.err);
    return st.err;
  }
  return CL_SUCCESS;
}

}  // namespace checl::replay
