// codec.h — one field-visitor per CheCL object class driving both the
// checkpoint-time serializer and the restore-time deserializer.
//
// cpr.cpp used to spell out every class's field list twice: once in
// serialize_db() and once in the hand-rolled reader of restore_fresh() — the
// version-skew bug class the record/replay checkpointers avoid by replaying a
// single declarative record.  Here each class has exactly one fields()
// function; encode and decode are two visitors over it, so a field added in
// one place is added everywhere.
//
// Container format v2: [u32 version][u32 section_count] then one section per
// class in ObjType order: [u32 class_tag][u32 count][u64 payload_bytes]
// [count records].  The byte length lets a reader skip sections whose class
// tag it does not know (forward compatibility).  Each record is
// [u64 old_id][fields...] with the field order of the v1 format, so v1
// streams (a bare [u32 count][records] per class, fixed class order) decode
// through the same visit functions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/object_db.h"
#include "core/objects.h"

namespace checl::replay {

// v1 = flat per-class lists (pre-replay cpr.cpp); v2 = tagged, skippable
// per-class sections.  decode_db() reads both.
inline constexpr std::uint32_t kDbVersion = 2;

// Serializes every object in `db` (the "checl.db" snapshot section).
std::vector<std::uint8_t> encode_db(ObjectDB& db);

struct DecodeResult {
  bool ok = false;
  std::string error;  // set when !ok, names the offending class
  // old (checkpoint-time) id -> freshly created object, now registered in
  // the target db under a new id.
  std::unordered_map<std::uint64_t, Object*> map;
  std::vector<Object*> created;  // creation (dependency) order
};

// Decodes a v1 or v2 stream into `db`: objects are allocated, linked
// (retaining their dependencies, tolerating dangling link ids), registered,
// and ksig signatures re-parsed.  On a malformed stream everything created
// so far is destroyed again and `error` says why.
DecodeResult decode_db(std::span<const std::uint8_t> bytes, ObjectDB& db);

// Tears down objects produced by decode_db (reverse creation order):
// deregisters from `db` and drops the creator reference so dependency
// refcounts cascade.  Used by decode_db itself on a bad stream and by the
// restore path when a later stage (base chain, proxy, executor) fails.
void destroy_decoded(ObjectDB& db, const std::vector<Object*>& created);

// "kernel#12"-style label used by restore plans, executors and their error
// messages.
std::string object_label(const Object* o);

}  // namespace checl::replay
