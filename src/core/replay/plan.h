// plan.h — the dependency-graph restore plan.
//
// Restart used to be nine hard-coded serial recreate_* loops.  A RestorePlan
// makes the dependency order explicit: nodes are CheCL objects, edges are the
// recorded dependencies (platform→device→context→queue/mem/sampler/program→
// kernel→event, plus kernel→bound arg objects), and the schedule is a list of
// topological waves.  Everything inside one wave is mutually independent, so
// the executor may recreate a wave's objects concurrently.
//
// Waves are bucketed per class in ObjType order — a valid topological order,
// since every recorded edge points from a lower class to a higher one — which
// keeps RestartBreakdown::class_ns attribution exact: one wave per class, the
// wave's wall of simulated time is the class's Figure 7 bar.  The explicit
// edges still matter: build() validates them (a corrupt snapshot fails here,
// by name, before any remote call), rollback walks them, and the property
// tests assert every dependency lands in an earlier wave.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/objects.h"

namespace checl::replay {

struct PlanNode {
  Object* obj = nullptr;
  std::vector<Object*> deps;  // recorded dependency edges (all in the plan)
  std::uint32_t wave = 0;     // index into RestorePlan::waves()
};

class RestorePlan {
 public:
  // Builds nodes + edges from `objs` and schedules them into waves.  Fails —
  // with `error` naming the object, e.g. "cmd_que#5: missing device link in
  // snapshot" — when a required link is null or dangling, or an edge does not
  // respect the class order (a cycle cannot be scheduled).
  bool build(const std::vector<Object*>& objs, std::string& error);

  [[nodiscard]] const std::vector<PlanNode>& nodes() const noexcept {
    return nodes_;
  }
  // Execution order: each wave is a list of indices into nodes().
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& waves()
      const noexcept {
    return waves_;
  }
  [[nodiscard]] ObjType wave_class(std::size_t w) const noexcept {
    return wave_class_[w];
  }

 private:
  std::vector<PlanNode> nodes_;
  std::vector<std::vector<std::uint32_t>> waves_;
  std::vector<ObjType> wave_class_;
};

}  // namespace checl::replay
