// migration.h — the process migration cost model of Section IV-C:
//
//     Tm = alpha * M + Tr + beta                                  (eq. 1)
//
// where M is the checkpoint file size, Tr the program recompilation time,
// alpha a system parameter dominated by checkpoint-file write bandwidth, and
// beta a system-specific constant (proxy spawn, platform bring-up, ...).
// `fit` calibrates (alpha, beta) by least squares on measured migrations with
// the recompile time subtracted out — exactly how Figure 8's "Predicted"
// series is produced.
#pragma once

#include <cstdint>
#include <span>

namespace checl::migration {

struct Sample {
  std::uint64_t file_bytes = 0;
  std::uint64_t total_ns = 0;      // measured checkpoint + restart time
  std::uint64_t recompile_ns = 0;  // Tr: program recreation portion
};

struct Model {
  double alpha_ns_per_byte = 0.0;
  double beta_ns = 0.0;

  [[nodiscard]] std::uint64_t predict_ns(std::uint64_t file_bytes,
                                         std::uint64_t recompile_ns) const noexcept {
    const double t = alpha_ns_per_byte * static_cast<double>(file_bytes) +
                     static_cast<double>(recompile_ns) + beta_ns;
    return t > 0 ? static_cast<std::uint64_t>(t) : 0;
  }
};

// Ordinary least squares of (total - recompile) against file size.
// Degenerate inputs (0 or 1 sample, or zero variance) produce a flat model.
Model fit(std::span<const Sample> samples) noexcept;

// Pearson correlation between file size and total time (the paper reports
// 0.99 for Figure 5).
double correlation(std::span<const Sample> samples) noexcept;

}  // namespace checl::migration
