#include "core/migration.h"

#include <cmath>

namespace checl::migration {

Model fit(std::span<const Sample> samples) noexcept {
  Model m;
  const std::size_t n = samples.size();
  if (n == 0) return m;
  double sx = 0;
  double sy = 0;
  for (const Sample& s : samples) {
    sx += static_cast<double>(s.file_bytes);
    sy += static_cast<double>(s.total_ns) - static_cast<double>(s.recompile_ns);
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0;
  double sxy = 0;
  for (const Sample& s : samples) {
    const double dx = static_cast<double>(s.file_bytes) - mx;
    const double dy = static_cast<double>(s.total_ns) -
                      static_cast<double>(s.recompile_ns) - my;
    sxx += dx * dx;
    sxy += dx * dy;
  }
  if (sxx <= 0) {
    m.beta_ns = my;
    return m;
  }
  m.alpha_ns_per_byte = sxy / sxx;
  m.beta_ns = my - m.alpha_ns_per_byte * mx;
  return m;
}

double correlation(std::span<const Sample> samples) noexcept {
  const std::size_t n = samples.size();
  if (n < 2) return 0.0;
  double sx = 0;
  double sy = 0;
  for (const Sample& s : samples) {
    sx += static_cast<double>(s.file_bytes);
    sy += static_cast<double>(s.total_ns);
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0;
  double syy = 0;
  double sxy = 0;
  for (const Sample& s : samples) {
    const double dx = static_cast<double>(s.file_bytes) - mx;
    const double dy = static_cast<double>(s.total_ns) - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace checl::migration
