// supervisor.h — the self-healing recovery state machine.
//
// The paper's proxy architecture makes the application process expendable-
// proof: all OpenCL state lives behind an IPC boundary, and the object DB on
// the app side records how to rebuild it.  The supervisor closes the loop at
// *runtime*: when a call breaks (proxy died, connection dropped, RPC hung
// past its deadline), it is invoked as the proxy client's recovery handler
// and, instead of letting the client go dead, it
//
//   1. respawns the proxy (Spawned::revive — the Client object survives, only
//      its channel is transplanted), under a Retry backoff policy;
//   2. performs an epoch handshake: Configure (platform specs + cost model +
//      clock reset), Ping (records the peer pid — a *surviving* TCP daemon is
//      distinguished from a fresh process by an unchanged pid), and a clock
//      fast-forward to the last known simulated time plus the spawn cost;
//   3. re-materializes every live object from the object DB by driving the
//      standard RestorePlan/Executor (serial: recovery runs on the caller's
//      thread, under the client lock);
//   4. rolls buffer contents and kernel-arg state forward from the last
//      *rebase* — a lightweight in-memory base snapshot — by re-applying the
//      base args and replaying the journal of state-mutating calls recorded
//      since (writes, copies, kernel launches, arg sets, in order);
//   5. detects degraded placements: a device that came back under a different
//      name was re-placed by the §IV-C selection fallback (same type
//      elsewhere, else any device) and is counted + named in the chain;
//   6. rebases, so the next recovery starts from the just-reconstructed
//      state, and classifies the in-flight call: against a fresh peer
//      anything may be retried (the old process took its half-done effects to
//      the grave); against a surviving peer the per-opcode replayability
//      table decides — Pure/Replayable calls are re-issued, Effectful ones
//      fail exactly once with a named RecoveryError while the client lives on.
//
// Shadow state is keyed by object id, never by pointer retention: an object
// the application released simply stops resolving and its journal entries are
// skipped, so supervision never extends object lifetimes or leaks remote
// handles.
//
// Threading: the handler runs under the client's recursive lock on the thread
// that hit the failure, and calls back into the runtime *without* taking
// proxy_mu_ (the ensure_proxy lock order is proxy_mu_ -> client lock, so
// taking it here could deadlock).  Supervised recovery therefore assumes the
// application drives the proxy from one thread at a time — the same
// assumption the wrapper API already makes for checkpoint delivery.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/retry.h"
#include "core/objects.h"
#include "ipc/channel.h"
#include "proxy/client.h"

namespace checl {

class CheclRuntime;

// Reported under "supervisor" by checl::stats_json().  io_retries and
// store_degraded_writes are bumped by the checkpoint engine's retry-then-
// degrade I/O paths; everything else by the supervisor itself.
struct SupervisorStats {
  std::uint64_t recoveries = 0;          // successful recoveries
  std::uint64_t failed_recoveries = 0;   // recovery attempts that gave up
  std::uint64_t respawns = 0;            // proxy processes brought up
  std::uint64_t epoch = 0;               // current epoch (0 = original proxy)
  std::uint64_t replayed_objects = 0;    // objects re-materialized (cumulative)
  std::uint64_t replayed_calls = 0;      // journal entries replayed
  std::uint64_t effectful_failed = 0;    // fail-once verdicts (RecoveryError)
  std::uint64_t degraded_placements = 0; // devices re-placed on a substitute
  std::uint64_t rebases = 0;             // base snapshots taken
  std::uint64_t journal_len = 0;         // current journal length
  std::uint64_t last_recover_ns = 0;     // wall time of the last recovery
  std::uint64_t total_recover_ns = 0;    // wall time across all recoveries
  std::uint64_t io_retries = 0;          // storage ops that needed a retry
  std::uint64_t store_degraded_writes = 0;  // store puts degraded to flat files
};

class Supervisor {
 public:
  explicit Supervisor(CheclRuntime& rt) : rt_(rt) {}

  // Installs this supervisor as the current client's recovery handler and
  // takes an initial rebase (so objects created before enabling are covered).
  // Idempotent; re-installs after a respawn replaced the client.
  void enable();
  void disable();  // uninstall; shadow state is kept until reset()
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  // The client the handler is currently installed on (nullptr = none) — the
  // runtime compares it against the live client to re-install after respawns.
  [[nodiscard]] proxy::Client* installed_on() const noexcept {
    return installed_on_;
  }
  // Drops shadow/journal state when the proxy is replaced intentionally
  // (engine restart, kill_proxy): the base no longer describes any peer.
  void invalidate();
  // Drops shadows, journal, chain, stats — reset_all() calls this.
  void reset();

  // ---- wrapper hooks (no-ops while disabled) ----------------------------
  // Creation data becomes the buffer's base shadow (zeros when none), so a
  // buffer is recoverable from birth without waiting for a rebase.
  void on_mem_created(MemObj* m, const void* data);
  void on_set_arg(KernelObj* k, std::uint32_t idx, const KernelObj::ArgRec& a);
  void on_enqueue_write(QueueObj* q, MemObj* m, std::size_t off,
                        const void* src, std::size_t cb);
  void on_enqueue_copy(QueueObj* q, MemObj* src, MemObj* dst, std::size_t soff,
                       std::size_t doff, std::size_t cb);
  // dim == 0 encodes clEnqueueTask.
  void on_enqueue_kernel(QueueObj* q, KernelObj* k, cl_uint dim,
                         const std::size_t* goff, const std::size_t* gsz,
                         const std::size_t* lsz);
  // Called at natural sync points: rebases when the journal has grown past
  // rebase_threshold entries or rebase_max_bytes of captured write data.
  void maybe_rebase();
  // Unconditional rebase (engine calls it after a successful restore, when
  // the device state just changed outside the supervisor's view).
  void rebase_now();

  // ---- knobs ------------------------------------------------------------
  std::size_t rebase_threshold = 64;
  std::size_t rebase_max_bytes = 16u << 20;
  // Backoff policy for the respawn step.  max_attempts = 0 disables
  // respawning entirely (tests use it to exercise the failure chain).
  checl::Retry respawn_policy{.max_attempts = 3};

  // The recovery handler (installed via Client::set_recovery_handler).
  proxy::Client::Recovery recover(proxy::Client& c, proxy::Op op,
                                  ipc::ChannelError ce);

  // ---- introspection ----------------------------------------------------
  [[nodiscard]] const SupervisorStats& stats() const noexcept { return stats_; }
  SupervisorStats& stats_mut() noexcept { return stats_; }
  // Human-readable chain of the most recent recovery, e.g.
  // "Timeout on opcode Finish (seq 42) -> respawn epoch 3 -> replayed 41
  //  objects -> replayed 7 calls".  Survives success (the op itself returns
  // CL_SUCCESS); cpr::Engine::last_error() appends it when an engine op fails
  // across a recovery.
  [[nodiscard]] const std::string& last_chain() const noexcept { return chain_; }
  // Bumped every time a recovery runs; lets callers detect "a recovery
  // happened during this operation" without parsing the chain.
  [[nodiscard]] std::uint64_t chain_seq() const noexcept { return chain_seq_; }
  // Per-recovery wall times (source of the MTTR median in BENCH_recovery).
  [[nodiscard]] const std::vector<std::uint64_t>& recover_samples_ns()
      const noexcept {
    return samples_ns_;
  }

 private:
  struct ArgSnap {
    KernelObj::ArgRec::Kind kind = KernelObj::ArgRec::Kind::Unset;
    std::vector<std::uint8_t> bytes;
    std::uint64_t mem_id = 0;
    std::uint64_t sampler_id = 0;
    std::size_t local_size = 0;
  };
  struct JEntry {
    enum class Kind : std::uint8_t { SetArg, Write, Copy, Kernel };
    Kind kind = Kind::SetArg;
    std::uint64_t q = 0;   // queue id (Write/Copy/Kernel)
    std::uint64_t a = 0;   // kernel id (SetArg/Kernel), mem id (Write), src id
    std::uint64_t b = 0;   // dst mem id (Copy)
    std::uint32_t idx = 0;
    ArgSnap arg;
    std::vector<std::uint8_t> bytes;  // Write payload
    std::size_t off = 0, off2 = 0, cb = 0;
    cl_uint dim = 0;  // 0 = clEnqueueTask
    bool has_goff = false, has_lsz = false;
    std::array<std::size_t, 3> goff{}, gsz{}, lsz{};
  };

  static ArgSnap snap_arg(const KernelObj::ArgRec& a);
  void apply_arg(proxy::Client& c, proxy::RemoteHandle k, std::uint32_t idx,
                 const ArgSnap& a);
  // Reads every live buffer device->host into the shadow map, snapshots
  // kernel args, clears the journal, and records the simulated clock.
  void rebase(proxy::Client& c);
  // Replays the journal in order against the re-materialized objects;
  // entries whose objects no longer resolve are skipped.
  std::uint64_t replay_journal(proxy::Client& c);

  CheclRuntime& rt_;
  bool enabled_ = false;
  proxy::Client* installed_on_ = nullptr;  // compared, never dereferenced
  std::uint32_t last_peer_pid_ = 0;
  std::uint64_t base_sim_time_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> base_mem_;
  std::unordered_map<std::uint64_t, std::vector<ArgSnap>> base_args_;
  std::vector<JEntry> journal_;
  std::size_t journal_bytes_ = 0;
  SupervisorStats stats_;
  std::vector<std::uint64_t> samples_ns_;
  std::string chain_;
  std::uint64_t chain_seq_ = 0;
};

}  // namespace checl
