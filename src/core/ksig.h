// ksig.h — kernel-signature extraction from OpenCL C source.
//
// This is the paper's clSetKernelArg disambiguation mechanism (Section III-B):
// when creating a cl_program with clCreateProgramWithSource, CheCL parses the
// parameter list of every __kernel function and records which formals receive
// OpenCL handles — __global/__local/__constant pointers, image2d_t/image3d_t,
// and sampler_t.  At clSetKernelArg time that record tells the wrapper whether
// the (const void*, size_t) pair carries a CheCL handle to convert.
//
// Unlike clc::compile, this scanner only needs declarations, so it tolerates
// bodies the full parser can't digest (the paper used Clang the same way).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace checl::ksig {

enum class ParamClass : std::uint8_t {
  Value,    // plain by-value bytes
  MemGlobal,   // __global pointer -> cl_mem
  MemConstant, // __constant pointer -> cl_mem
  Local,    // __local pointer -> size-only clSetKernelArg
  Image,    // image2d_t / image3d_t -> cl_mem
  Sampler,  // sampler_t -> cl_sampler
};

struct ParamSig {
  std::string name;
  ParamClass cls = ParamClass::Value;
  // True when the kernel cannot write through this parameter (`const`
  // pointer, __constant space, or a read-only image).  Incremental
  // checkpointing (Section IV-D future work) uses this to keep buffers
  // "clean" across kernel launches that only read them.
  bool read_only = false;

  [[nodiscard]] bool is_mem_handle() const noexcept {
    return cls == ParamClass::MemGlobal || cls == ParamClass::MemConstant ||
           cls == ParamClass::Image;
  }
};

struct KernelSig {
  std::string name;
  std::vector<ParamSig> params;
};

struct Signatures {
  std::vector<KernelSig> kernels;

  [[nodiscard]] const KernelSig* find(std::string_view kernel) const noexcept {
    for (const auto& k : kernels)
      if (k.name == kernel) return &k;
    return nullptr;
  }
  [[nodiscard]] bool empty() const noexcept { return kernels.empty(); }
};

// Scans `source` (pre-#define expansion is applied with `build_options`).
// Never fails hard: kernels whose declarations can't be scanned are skipped.
Signatures parse_signatures(std::string_view source, std::string_view build_options = {});

}  // namespace checl::ksig
