#include "core/stats.h"

#include <sstream>

#include "clc/interp.h"
#include "core/cpr.h"
#include "snapstore/shard.h"
#include "core/runtime.h"
#include "core/supervisor.h"
#include "proxy/client.h"
#include "proxyd/daemon.h"
#include "simcl/progcache.h"

namespace checl {

namespace {

void append_kv(std::ostringstream& os, const char* key, std::uint64_t v,
               bool& first) {
  if (!first) os << ", ";
  first = false;
  os << "\"" << key << "\": " << v;
}

}  // namespace

std::string stats_json(proxy::Client* client, const snapstore::StoreIface* store) {
  return stats_json(client, store, nullptr, nullptr);
}

std::string stats_json(proxy::Client* client, const snapstore::StoreIface* store,
                       const replay::ExecCounters* restore) {
  return stats_json(client, store, restore, nullptr);
}

std::string stats_json(proxy::Client* client, const snapstore::StoreIface* store,
                       const replay::ExecCounters* restore,
                       const SupervisorStats* supervisor) {
  std::ostringstream os;
  os << "{\"ipc\": ";
  if (client == nullptr) {
    os << "null";
  } else {
    const proxy::Client::Stats& cs = client->stats();
    const ipc::ChannelStats ch = client->channel_stats();
    bool first = true;
    os << "{";
    append_kv(os, "rpc_roundtrips", cs.rpc_roundtrips, first);
    append_kv(os, "batched_calls", cs.batched_calls, first);
    append_kv(os, "batch_flushes", cs.batch_flushes, first);
    append_kv(os, "msgs_sent", ch.msgs_sent, first);
    append_kv(os, "msgs_recvd", ch.msgs_recvd, first);
    append_kv(os, "bytes_sent", ch.bytes_sent, first);
    append_kv(os, "bytes_recvd", ch.bytes_recvd, first);
    append_kv(os, "sys_sends", ch.sys_sends, first);
    append_kv(os, "sys_reads", ch.sys_reads, first);
    append_kv(os, "shm_msgs_sent", ch.shm_msgs_sent, first);
    append_kv(os, "shm_msgs_recvd", ch.shm_msgs_recvd, first);
    append_kv(os, "shm_bytes_sent", ch.shm_bytes_sent, first);
    append_kv(os, "shm_bytes_recvd", ch.shm_bytes_recvd, first);
    append_kv(os, "shm_fallbacks", ch.shm_fallbacks, first);
    os << "}";
  }
  os << ", \"snapstore\": ";
  if (store == nullptr || !store->is_open()) {
    os << "null";
  } else {
    const snapstore::Stats& st = store->stats();
    bool first = true;
    os << "{";
    append_kv(os, "chunks_in_pool", st.chunks_in_pool, first);
    append_kv(os, "pool_stored_bytes", st.pool_stored_bytes, first);
    append_kv(os, "pool_raw_bytes", st.pool_raw_bytes, first);
    append_kv(os, "manifests", st.manifests, first);
    append_kv(os, "puts", st.puts, first);
    append_kv(os, "gets", st.gets, first);
    append_kv(os, "chunks_written", st.chunks_written, first);
    append_kv(os, "dedup_hits", st.dedup_hits, first);
    append_kv(os, "raw_bytes_in", st.raw_bytes_in, first);
    append_kv(os, "stored_bytes_written", st.stored_bytes_written, first);
    append_kv(os, "bytes_read", st.bytes_read, first);
    append_kv(os, "orphans_swept", st.orphans_swept, first);
    os << "}";
  }
  // Distributed snapstore: present when the store is a ShardedStore.
  os << ", \"snapd\": ";
  if (const auto* sh = dynamic_cast<const snapstore::ShardedStore*>(store);
      sh == nullptr || !sh->is_open()) {
    os << "null";
  } else {
    const snapstore::ShardedStats& ss = sh->sharded_stats();
    bool first = true;
    os << "{";
    append_kv(os, "shards", ss.shards, first);
    append_kv(os, "replicas", ss.replicas, first);
    append_kv(os, "degraded_writes", ss.degraded_writes, first);
    append_kv(os, "under_replicated", ss.under_replicated, first);
    append_kv(os, "failovers", ss.failovers, first);
    append_kv(os, "repaired_chunks", ss.repaired_chunks, first);
    append_kv(os, "repaired_manifests", ss.repaired_manifests, first);
    os << "}";
  }
  os << ", \"restore\": ";
  if (restore == nullptr) {
    os << "null";
  } else {
    bool first = true;
    os << "{";
    append_kv(os, "plans", restore->plans, first);
    append_kv(os, "waves", restore->waves, first);
    append_kv(os, "nodes_recreated", restore->nodes_recreated, first);
    append_kv(os, "parallel_waves", restore->parallel_waves, first);
    append_kv(os, "max_concurrency", restore->max_concurrency, first);
    append_kv(os, "batched_calls", restore->batched_calls, first);
    append_kv(os, "group_rpcs", restore->group_rpcs, first);
    append_kv(os, "rollbacks", restore->rollbacks, first);
    append_kv(os, "rolled_back_handles", restore->rolled_back_handles, first);
    os << "}";
  }
  os << ", \"supervisor\": ";
  if (supervisor == nullptr) {
    os << "null";
  } else {
    bool first = true;
    os << "{";
    append_kv(os, "recoveries", supervisor->recoveries, first);
    append_kv(os, "failed_recoveries", supervisor->failed_recoveries, first);
    append_kv(os, "respawns", supervisor->respawns, first);
    append_kv(os, "epoch", supervisor->epoch, first);
    append_kv(os, "replayed_objects", supervisor->replayed_objects, first);
    append_kv(os, "replayed_calls", supervisor->replayed_calls, first);
    append_kv(os, "effectful_failed", supervisor->effectful_failed, first);
    append_kv(os, "degraded_placements", supervisor->degraded_placements,
              first);
    append_kv(os, "rebases", supervisor->rebases, first);
    append_kv(os, "journal_len", supervisor->journal_len, first);
    append_kv(os, "last_recover_ns", supervisor->last_recover_ns, first);
    append_kv(os, "total_recover_ns", supervisor->total_recover_ns, first);
    append_kv(os, "io_retries", supervisor->io_retries, first);
    append_kv(os, "store_degraded_writes", supervisor->store_degraded_writes,
              first);
    os << "}";
  }
  // The clc execution layer is process-global (engine dispatch counters) and
  // the compile cache is a singleton, so this section is always present.
  // Note: under Transport::Process the cache lives in the proxy daemon; this
  // section then reports the app-side (cold) instance.
  {
    const clc::ExecStats es = clc::exec_stats();
    const simcl::ProgCacheStats cs = simcl::ProgCache::instance().stats();
    bool first = true;
    os << ", \"clc\": {";
    append_kv(os, "vm_launches", es.vm_launches, first);
    append_kv(os, "interp_launches", es.interp_launches, first);
    append_kv(os, "vm_items", es.vm_items, first);
    append_kv(os, "interp_items", es.interp_items, first);
    append_kv(os, "cache_hits", cs.hits, first);
    append_kv(os, "cache_disk_hits", cs.disk_hits, first);
    append_kv(os, "cache_misses", cs.misses, first);
    append_kv(os, "cache_puts", cs.puts, first);
    append_kv(os, "cache_evictions", cs.evictions, first);
    append_kv(os, "cache_poisoned", cs.poisoned, first);
    os << "}";
  }
  // Multi-tenant daemon: present only in a process hosting a proxyd::Daemon
  // (the daemon binary, or a test running one in-process).
  os << ", \"proxyd\": ";
  if (const proxyd::Daemon* d = proxyd::Daemon::global(); d == nullptr) {
    os << "null";
  } else {
    const proxyd::Stats ps = d->stats();
    bool first = true;
    os << "{";
    append_kv(os, "attaches", ps.attaches, first);
    append_kv(os, "disconnects", ps.disconnects, first);
    append_kv(os, "clients_current", ps.clients_current, first);
    append_kv(os, "clients_peak", ps.clients_peak, first);
    append_kv(os, "admission_rejects", ps.admission_rejects, first);
    append_kv(os, "foreign_rejects", ps.foreign_rejects, first);
    append_kv(os, "mem_rejects", ps.mem_rejects, first);
    append_kv(os, "queue_rejects", ps.queue_rejects, first);
    append_kv(os, "calls", ps.calls, first);
    append_kv(os, "sched_rounds", ps.sched_rounds, first);
    append_kv(os, "reply_flushes", ps.reply_flushes, first);
    append_kv(os, "leaked_handles", ps.leaked_handles, first);
    os << ", \"clients\": {";
    bool cfirst = true;
    for (const auto& [cid, c] : ps.per_client) {
      if (!cfirst) os << ", ";
      cfirst = false;
      os << "\"" << cid << "\": {";
      bool f2 = true;
      append_kv(os, "calls", c.calls, f2);
      append_kv(os, "bytes_in", c.bytes_in, f2);
      append_kv(os, "bytes_out", c.bytes_out, f2);
      append_kv(os, "rejects", c.rejects, f2);
      append_kv(os, "queue_depth", c.queue_depth, f2);
      append_kv(os, "mem_bytes", c.mem_bytes, f2);
      append_kv(os, "handles", c.handles, f2);
      os << "}";
    }
    os << "}}";
  }
  os << "}";
  return os.str();
}

std::string stats_json() {
  CheclRuntime& rt = CheclRuntime::instance();
  cpr::Engine& eng = rt.engine();
  const Supervisor* sup = rt.supervisor_if_created();
  return stats_json(rt.client(), eng.store_if_open(), &eng.restore_counters(),
                    sup != nullptr ? &sup->stats() : nullptr);
}

}  // namespace checl
