// runtime.h — process-wide CheCL state: the API proxy connection, the object
// database, checkpoint configuration, and the dispatch-table switch that
// stands in for swapping libOpenCL.so.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "checl/dispatch.h"
#include "common/retry.h"
#include "core/node.h"
#include "core/object_db.h"
#include "proxy/spawn.h"
#include "snapstore/store.h"

namespace checl {

class Supervisor;

// When to act on a checkpoint request (Section III-C).
enum class CheckpointMode : std::uint8_t {
  Immediate,  // synchronize + checkpoint at the next API call
  Delayed,    // postpone to the next natural synchronization point
};

namespace cpr {
class Engine;
struct PhaseTimes;
struct RestartBreakdown;
}  // namespace cpr

class CheclRuntime {
 public:
  static CheclRuntime& instance();

  // ---- configuration (call before the first forwarded API call) ------------
  void set_node(NodeConfig node);
  [[nodiscard]] const NodeConfig& node() const noexcept { return node_; }

  CheckpointMode mode = CheckpointMode::Delayed;
  std::string checkpoint_path = "/tmp/checl.ckpt";
  // Incremental checkpointing (Section IV-D future work): after a full
  // checkpoint, subsequent checkpoints write only buffers dirtied since the
  // previous one, plus a reference to it; restore follows the chain.
  bool incremental_checkpoints = false;
  // Content-addressed checkpoint store (snapstore): checkpoints become
  // manifests over a deduplicating chunk pool at store_root, so repeat
  // checkpoints pay only for changed bytes and every manifest is
  // self-contained.  Subsumes incremental_checkpoints, which is ignored
  // while this is on (there is no base chain to break).
  bool store_checkpoints = false;
  std::string store_root = "/tmp/checl_snapstore";
  snapstore::Options store_options;
  // Live pre-copy checkpointing (VM-migration style): the engine streams
  // chunks into an open snapstore manifest while the queues keep executing,
  // re-scans the server-side chunk dirty maps each round, and stops the
  // world only for the dirty residue + object DB — so the pause tracks the
  // dirty rate, not the memory size.  Effective only with store_checkpoints
  // (the streaming target is an open manifest); ignored otherwise.
  // CHECL_LIVE_CKPT=1 turns it on from the environment.
  bool live_checkpoints = false;
  // Convergence policy: stop pre-copying after this many rounds…
  unsigned live_max_rounds = 4;
  // …or as soon as the dirty residue is at most this many bytes (it is then
  // cheaper to take inside the pause than to keep re-streaming)…
  std::size_t live_residue_threshold = 256 * 1024;
  // …or when a round stops shrinking the residue (dirty rate >= stream rate).
  // Post-residue audit: compare device chunk hashes against what the session
  // streamed and re-stream any mismatch (heals dirty-map under-reporting at
  // the cost of one hash pass per buffer inside the pause).
  bool live_verify = false;
  // Retarget every device to the first device of this type on restore —
  // the paper's runtime processor selection (Section IV-C).
  std::optional<cl_device_type> retarget_device_type;
  // Restore executor knobs (see replay/exec.h): recreate independent objects
  // of a dependency wave concurrently / via how many workers (0 = auto) /
  // with fire-and-forget replay calls routed through IPC batching.
  bool restore_parallel = true;
  unsigned restore_workers = 0;
  bool restore_batch = false;
  // Self-healing runtime (supervisor.h): when on, a broken/hung proxy channel
  // triggers transparent respawn + reconnect-and-replay instead of killing
  // the client.  Off by default: failure semantics (and the chaos-test
  // invariants built on them) are exactly the pre-supervision ones.
  bool supervise = false;
  // Per-RPC receive deadline for hung-call detection; 0 = block forever
  // (the default — deadline bookkeeping stays off the hot path).
  std::uint32_t recv_deadline_ms = 0;
  // Retry policy for checkpoint I/O (snapstore puts/gets, slimcr
  // saves/loads).  Default is one attempt — no retry; raising max_attempts
  // turns transient ENOSPC/EIO into retry-then-degrade (see cpr.cpp).
  checl::Retry io_retry;

  // ---- proxy ------------------------------------------------------------
  // Spawns + configures the API proxy on first use.  Returns CL_SUCCESS or
  // CL_DEVICE_NOT_AVAILABLE when the proxy cannot be brought up.
  cl_int ensure_proxy();
  [[nodiscard]] proxy::Client* client() noexcept {
    return spawned_.ok() ? spawned_.client() : nullptr;
  }
  // Kills the proxy dead (failure injection / DMTCP mode).
  void kill_proxy();
  // Respawns a fresh proxy under `cfg` (used by restart); charges spawn cost
  // and fast-forwards the fresh clock to `resume_time_ns`.
  cl_int respawn_proxy(const NodeConfig& cfg, std::uint64_t resume_time_ns);
  [[nodiscard]] bool proxy_alive() noexcept;
  [[nodiscard]] pid_t proxy_pid() const noexcept { return spawned_.pid(); }
  [[nodiscard]] const std::string& proxy_error() const noexcept {
    return spawned_.error();
  }

  // ---- supervision --------------------------------------------------------
  // The recovery state machine (created on first use; survives respawns).
  Supervisor& supervisor();
  // nullptr until supervisor() has been called — lets hot paths and stats
  // check without allocating.
  [[nodiscard]] Supervisor* supervisor_if_created() const noexcept {
    return supervisor_.get();
  }
  // Transplants a fresh channel into the live client (Spawned::revive).
  // Called by the supervisor from inside the client's recovery handler: the
  // client lock is held, so this deliberately does NOT take proxy_mu_
  // (ensure_proxy's order is proxy_mu_ -> client lock).  Supervised recovery
  // assumes one application thread drives the proxy at a time.
  cl_int revive_proxy();
  // Re-runs the supervisor's base capture after an engine-driven restore
  // changed device state outside its view.  No-op when not supervising.
  void resync_supervision();

  // ---- object database -----------------------------------------------------
  ObjectDB& db() noexcept { return db_; }

  // ---- checkpoint requests ------------------------------------------------
  void request_checkpoint() noexcept {
    checkpoint_requested_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool checkpoint_pending() const noexcept {
    return checkpoint_requested_.load(std::memory_order_acquire);
  }
  // Hook for every wrapper call (acts only in Immediate mode).
  void on_api_call();
  // Hook for synchronization points: clFinish, clWaitForEvents, blocking
  // transfers (acts in both modes).
  void on_sync_point();
  // Figure 5 instrumentation: checkpoint immediately after the n-th kernel
  // enqueue from now, while that kernel is still uncompleted in the queue
  // ("at least one uncompleted kernel execution command always exists in the
  // queue when the process is checkpointed").  -1 disables.
  void arm_checkpoint_after_kernel(int enqueues) noexcept {
    ckpt_after_kernel_.store(enqueues, std::memory_order_release);
  }
  void on_kernel_enqueued();
  // Phase times of the most recent engine checkpoint (however triggered).
  cpr::PhaseTimes last_checkpoint_times() const;
  // Installs a SIGUSR1 handler that calls request_checkpoint().
  void install_signal_handler(int signum);

  // ---- application state (what BLCR would have dumped wholesale) ----------
  void register_app_region(std::string name, void* ptr, std::size_t len);
  struct AppRegion {
    std::string name;
    void* ptr;
    std::size_t len;
  };
  [[nodiscard]] const std::vector<AppRegion>& app_regions() const noexcept {
    return app_regions_;
  }

  cpr::Engine& engine();

  // Drops every CheCL object and the proxy; for tests and examples that set
  // up multiple independent scenarios in one process.
  void reset_all();

 private:
  CheclRuntime();
  ~CheclRuntime();

  // (Re-)applies the deadline + supervision handler to the current client;
  // call after every spawn/respawn and on mid-run supervise toggles.
  void install_supervision();
  // Env-derived spawn options with the node's daemon socket overlaid.
  [[nodiscard]] proxy::SpawnOptions spawn_options() const;

  NodeConfig node_;
  proxy::Spawned spawned_;
  bool proxy_configured_ = false;
  std::mutex proxy_mu_;
  ObjectDB db_;
  std::atomic<bool> checkpoint_requested_{false};
  std::atomic<int> ckpt_after_kernel_{-1};
  std::vector<AppRegion> app_regions_;
  std::unique_ptr<cpr::Engine> engine_;
  std::unique_ptr<Supervisor> supervisor_;
  bool checkpoint_in_progress_ = false;
  std::unique_ptr<cpr::PhaseTimes> last_times_;
};

// Decrement an object's refcount; at zero: remove from the DB, release the
// remote handle, delete.  Object destructors use this for their references.
void unref_object(Object* o) noexcept;

// Dispatch-table plumbing (the libOpenCL.so switch).
const checl_api::DispatchTable& dispatch_table() noexcept;
void bind_checl() noexcept;   // route cl* through the CheCL wrapper layer
void bind_native() noexcept;  // route cl* straight to the substrate

}  // namespace checl
