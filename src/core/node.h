// node.h — a "computing node" as CheCL sees it: which simulated OpenCL
// platforms exist there, how its checkpoint storage performs, and how the
// app<->proxy hop is priced.  Migration between nodes = checkpoint under one
// NodeConfig, restart under another.
#pragma once

#include <string>
#include <vector>

#include "proxy/opcodes.h"
#include "proxy/spawn.h"
#include "simcl/progcache.h"
#include "simcl/specs.h"
#include "slimcr/storage.h"

namespace checl {

struct NodeConfig {
  std::string name = "node0";
  std::vector<simcl::PlatformSpec> platforms = simcl::default_platforms();
  slimcr::StorageModel storage = slimcr::local_disk();
  proxy::IpcCosts ipc;
  proxy::Transport transport = proxy::Transport::Process;
  // Transport::Tcp: where the remote checl_proxyd listens (paper §V: a
  // remote API proxy reached over TCP/IP sockets).
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
  // Transport::Daemon: unix-socket path of the shared multi-tenant
  // checl_proxyd on this node; empty = CHECL_PROXYD_SOCKET / the default.
  std::string proxyd_socket;
  // Compile-cache policy on this node.  `clc_cache.root` names an on-disk
  // bytecode pool that survives proxy respawns — a restart or migration onto
  // this node then deserializes programs instead of recompiling them.
  simcl::ProgCacheConfig clc_cache;
  // Distributed snapstore (store_checkpoints mode): > 0 spawns that many
  // checl_snapd shard daemons under store_root and checkpoints through the
  // sharded, replicated ShardedStore instead of the local Store.  0 = local.
  // Overridable by CHECL_SNAP_SHARDS / CHECL_SNAP_REPLICAS.
  unsigned snap_shards = 0;
  unsigned snap_replicas = 2;
};

// The paper's testbed shapes, ready-made.
inline NodeConfig nvidia_node() {
  NodeConfig n;
  n.name = "nvidia-node";
  n.platforms = {simcl::nvidia_like_platform()};
  return n;
}
inline NodeConfig amd_node() {
  NodeConfig n;
  n.name = "amd-node";
  n.platforms = {simcl::amd_like_platform()};
  return n;
}
inline NodeConfig dual_node() {
  NodeConfig n;
  n.name = "dual-node";
  n.platforms = simcl::default_platforms();
  return n;
}

}  // namespace checl
