// wrapper_api.cpp — the CheCL flavor of every cl* entry point.
//
// Each wrapper (Section III-B): converts incoming CheCL handles to actual
// OpenCL handles, forwards the call to the API proxy, records whatever is
// needed for restoration in a CheCL object, and hands the application a CheCL
// handle.  Info queries that would leak actual handles are answered locally
// from the recorded state, so the application can never observe one.

#include <cstdio>
#include <cstring>

#include "checl/dispatch.h"
#include "core/cpr.h"
#include "core/runtime.h"
#include "core/supervisor.h"

namespace checl {

namespace {

CheclRuntime& rt() { return CheclRuntime::instance(); }

// Supervisor shadow/journal hooks; null until the app opts into supervision,
// so the default hot path pays one pointer check.
Supervisor* sup() { return rt().supervisor_if_created(); }

// Per-call prologue: immediate-mode checkpoint hook + proxy liveness.
proxy::Client* pre_call() {
  rt().on_api_call();
  if (rt().ensure_proxy() != CL_SUCCESS) return nullptr;
  return rt().client();
}

void set_err(cl_int* out, cl_int e) {
  if (out != nullptr) *out = e;
}

// ---- info-query helpers (local answers) -------------------------------------

cl_int set_param_bytes(const void* data, std::size_t n, std::size_t size,
                       void* value, std::size_t* size_ret) {
  if (size_ret != nullptr) *size_ret = n;
  if (value != nullptr) {
    if (size < n) return CL_INVALID_VALUE;
    std::memcpy(value, data, n);
  }
  return CL_SUCCESS;
}

template <typename T>
cl_int set_param(const T& v, std::size_t size, void* value, std::size_t* size_ret) {
  return set_param_bytes(&v, sizeof(T), size, value, size_ret);
}

cl_int set_param_str(const std::string& s, std::size_t size, void* value,
                     std::size_t* size_ret) {
  return set_param_bytes(s.c_str(), s.size() + 1, size, value, size_ret);
}

// ---- platform / device wrapping --------------------------------------------

PlatformObj* wrap_platform(proxy::Client& c, proxy::RemoteHandle remote,
                           std::uint32_t index) {
  for (PlatformObj* p : rt().db().all_of<PlatformObj>())
    if (p->remote == remote) return p;
  auto* p = new PlatformObj();
  p->remote = remote;
  p->index = index;
  char name[256] = {};
  c.get_info(proxy::Op::GetPlatformInfo, remote, CL_PLATFORM_NAME, sizeof name,
             name, nullptr);
  p->name = name;
  rt().db().add(p);
  return p;
}

DeviceObj* wrap_device(proxy::Client& c, PlatformObj* platform,
                       proxy::RemoteHandle remote) {
  for (DeviceObj* d : rt().db().all_of<DeviceObj>())
    if (d->remote == remote) return d;
  auto* d = new DeviceObj();
  d->remote = remote;
  d->platform = platform;
  if (platform != nullptr) platform->retain();
  cl_device_type type = CL_DEVICE_TYPE_DEFAULT;
  c.get_info(proxy::Op::GetDeviceInfo, remote, CL_DEVICE_TYPE, sizeof type,
             &type, nullptr);
  d->type = type;
  char name[256] = {};
  c.get_info(proxy::Op::GetDeviceInfo, remote, CL_DEVICE_NAME, sizeof name, name,
             nullptr);
  d->name = name;
  // position among same-type devices on this platform (stable restore key)
  if (platform != nullptr) {
    std::vector<proxy::RemoteHandle> same;
    cl_uint total = 0;
    if (c.get_device_ids(platform->remote, type, 16, same, total) == CL_SUCCESS) {
      for (std::size_t i = 0; i < same.size(); ++i)
        if (same[i] == remote) d->index_in_type = static_cast<std::uint32_t>(i);
    }
  }
  rt().db().add(d);
  return d;
}

// ---------------------------------------------------------------------------
// platform / device
// ---------------------------------------------------------------------------

cl_int w_GetPlatformIDs(cl_uint num_entries, cl_platform_id* platforms,
                        cl_uint* num_platforms) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  if (platforms == nullptr && num_platforms == nullptr) return CL_INVALID_VALUE;
  if (platforms != nullptr && num_entries == 0) return CL_INVALID_VALUE;
  std::vector<proxy::RemoteHandle> remotes;
  cl_uint total = 0;
  const cl_int err = c->get_platform_ids(
      platforms != nullptr ? num_entries : 0, remotes, total);
  if (err != CL_SUCCESS) return err;
  if (num_platforms != nullptr) *num_platforms = total;
  if (platforms != nullptr) {
    for (std::size_t i = 0; i < remotes.size(); ++i)
      platforms[i] = reinterpret_cast<cl_platform_id>(
          wrap_platform(*c, remotes[i], static_cast<std::uint32_t>(i)));
  }
  return CL_SUCCESS;
}

cl_int w_GetPlatformInfo(cl_platform_id platform, cl_platform_info pn,
                         std::size_t size, void* value, std::size_t* size_ret) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* p = as_checl<PlatformObj>(platform);
  if (p == nullptr) return CL_INVALID_PLATFORM;
  return c->get_info(proxy::Op::GetPlatformInfo, p->remote, pn, size, value,
                     size_ret);
}

cl_int w_GetDeviceIDs(cl_platform_id platform, cl_device_type type,
                      cl_uint num_entries, cl_device_id* devices,
                      cl_uint* num_devices) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* p = as_checl<PlatformObj>(platform);
  if (p == nullptr) return CL_INVALID_PLATFORM;
  if (devices == nullptr && num_devices == nullptr) return CL_INVALID_VALUE;
  std::vector<proxy::RemoteHandle> remotes;
  cl_uint total = 0;
  const cl_int err =
      c->get_device_ids(p->remote, type, devices != nullptr ? num_entries : 0,
                        remotes, total);
  if (err != CL_SUCCESS) return err;
  if (num_devices != nullptr) *num_devices = total;
  if (devices != nullptr) {
    for (std::size_t i = 0; i < remotes.size(); ++i)
      devices[i] = reinterpret_cast<cl_device_id>(wrap_device(*c, p, remotes[i]));
  }
  return CL_SUCCESS;
}

cl_int w_GetDeviceInfo(cl_device_id device, cl_device_info pn, std::size_t size,
                       void* value, std::size_t* size_ret) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* d = as_checl<DeviceObj>(device);
  if (d == nullptr) return CL_INVALID_DEVICE;
  if (pn == CL_DEVICE_PLATFORM) {
    auto h = reinterpret_cast<cl_platform_id>(d->platform);
    return set_param(h, size, value, size_ret);
  }
  return c->get_info(proxy::Op::GetDeviceInfo, d->remote, pn, size, value,
                     size_ret);
}

// ---------------------------------------------------------------------------
// context
// ---------------------------------------------------------------------------

cl_context w_CreateContext(const cl_context_properties* properties,
                           cl_uint num_devices, const cl_device_id* devices,
                           void (*notify)(const char*, const void*, std::size_t, void*),
                           void* user_data, cl_int* err) {
  (void)user_data;
  proxy::Client* c = pre_call();
  if (c == nullptr) {
    set_err(err, CL_DEVICE_NOT_AVAILABLE);
    return nullptr;
  }
  if (notify != nullptr) {
    static bool warned = false;
    if (!warned) {
      std::fprintf(stderr,
                   "CheCL: context callback functions are ignored (Section IV-D)\n");
      warned = true;
    }
  }
  if (num_devices == 0 || devices == nullptr) {
    set_err(err, CL_INVALID_VALUE);
    return nullptr;
  }
  std::vector<DeviceObj*> devs;
  std::vector<proxy::RemoteHandle> remotes;
  for (cl_uint i = 0; i < num_devices; ++i) {
    auto* d = as_checl<DeviceObj>(devices[i]);
    if (d == nullptr) {
      set_err(err, CL_INVALID_DEVICE);
      return nullptr;
    }
    devs.push_back(d);
    remotes.push_back(d->remote);
  }
  // convert CL_CONTEXT_PLATFORM property values (CheCL handle -> actual)
  std::vector<std::int64_t> props;
  if (properties != nullptr) {
    for (const cl_context_properties* p = properties; *p != 0; p += 2) {
      props.push_back(static_cast<std::int64_t>(p[0]));
      if (p[0] == CL_CONTEXT_PLATFORM) {
        auto* plat = as_checl<PlatformObj>(reinterpret_cast<void*>(p[1]));
        props.push_back(plat != nullptr
                            ? static_cast<std::int64_t>(plat->remote)
                            : static_cast<std::int64_t>(p[1]));
      } else {
        props.push_back(static_cast<std::int64_t>(p[1]));
      }
    }
    props.push_back(0);
  }
  proxy::RemoteHandle h = 0;
  const cl_int e = c->create_context(props, remotes, h);
  set_err(err, e);
  if (e != CL_SUCCESS) return nullptr;
  auto* ctx = new ContextObj();
  ctx->remote = h;
  ctx->properties = std::move(props);
  for (DeviceObj* d : devs) {
    d->retain();
    ctx->devices.push_back(d);
  }
  rt().db().add(ctx);
  return reinterpret_cast<cl_context>(ctx);
}

cl_int w_RetainContext(cl_context context) {
  auto* ctx = as_checl<ContextObj>(context);
  if (ctx == nullptr) return CL_INVALID_CONTEXT;
  ctx->retain();
  return CL_SUCCESS;
}
cl_int w_ReleaseContext(cl_context context) {
  auto* ctx = as_checl<ContextObj>(context);
  if (ctx == nullptr) return CL_INVALID_CONTEXT;
  unref_object(ctx);
  return CL_SUCCESS;
}

cl_int w_GetContextInfo(cl_context context, cl_context_info pn, std::size_t size,
                        void* value, std::size_t* size_ret) {
  auto* ctx = as_checl<ContextObj>(context);
  if (ctx == nullptr) return CL_INVALID_CONTEXT;
  switch (pn) {
    case CL_CONTEXT_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(ctx->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_CONTEXT_DEVICES: {
      std::vector<cl_device_id> hs;
      for (DeviceObj* d : ctx->devices)
        hs.push_back(reinterpret_cast<cl_device_id>(d));
      return set_param_bytes(hs.data(), hs.size() * sizeof(cl_device_id), size,
                             value, size_ret);
    }
    case CL_CONTEXT_PROPERTIES:
      return set_param_bytes(ctx->properties.data(),
                             ctx->properties.size() * sizeof(std::int64_t), size,
                             value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---------------------------------------------------------------------------
// command queue
// ---------------------------------------------------------------------------

cl_command_queue w_CreateCommandQueue(cl_context context, cl_device_id device,
                                      cl_command_queue_properties props,
                                      cl_int* err) {
  proxy::Client* c = pre_call();
  if (c == nullptr) {
    set_err(err, CL_DEVICE_NOT_AVAILABLE);
    return nullptr;
  }
  auto* ctx = as_checl<ContextObj>(context);
  auto* dev = as_checl<DeviceObj>(device);
  if (ctx == nullptr) {
    set_err(err, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (dev == nullptr) {
    set_err(err, CL_INVALID_DEVICE);
    return nullptr;
  }
  proxy::RemoteHandle h = 0;
  const cl_int e = c->create_queue(ctx->remote, dev->remote, props, h);
  set_err(err, e);
  if (e != CL_SUCCESS) return nullptr;
  auto* q = new QueueObj();
  q->remote = h;
  q->ctx = ctx;
  q->dev = dev;
  q->properties = props;
  ctx->retain();
  dev->retain();
  rt().db().add(q);
  return reinterpret_cast<cl_command_queue>(q);
}

cl_int w_RetainCommandQueue(cl_command_queue queue) {
  auto* q = as_checl<QueueObj>(queue);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  q->retain();
  return CL_SUCCESS;
}
cl_int w_ReleaseCommandQueue(cl_command_queue queue) {
  auto* q = as_checl<QueueObj>(queue);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  unref_object(q);
  return CL_SUCCESS;
}

cl_int w_GetCommandQueueInfo(cl_command_queue queue, cl_command_queue_info pn,
                             std::size_t size, void* value, std::size_t* size_ret) {
  auto* q = as_checl<QueueObj>(queue);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  switch (pn) {
    case CL_QUEUE_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(q->ctx);
      return set_param(h, size, value, size_ret);
    }
    case CL_QUEUE_DEVICE: {
      auto h = reinterpret_cast<cl_device_id>(q->dev);
      return set_param(h, size, value, size_ret);
    }
    case CL_QUEUE_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(q->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_QUEUE_PROPERTIES: return set_param(q->properties, size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

cl_int w_Flush(cl_command_queue queue) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* q = as_checl<QueueObj>(queue);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  return c->flush(q->remote);
}

cl_int w_Finish(cl_command_queue queue) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* q = as_checl<QueueObj>(queue);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  const cl_int e = c->finish(q->remote);
  rt().on_sync_point();  // natural synchronization point (delayed mode)
  return e;
}

// ---------------------------------------------------------------------------
// memory objects
// ---------------------------------------------------------------------------

cl_mem w_CreateBuffer(cl_context context, cl_mem_flags flags, std::size_t size,
                      void* host_ptr, cl_int* err) {
  proxy::Client* c = pre_call();
  if (c == nullptr) {
    set_err(err, CL_DEVICE_NOT_AVAILABLE);
    return nullptr;
  }
  auto* ctx = as_checl<ContextObj>(context);
  if (ctx == nullptr) {
    set_err(err, CL_INVALID_CONTEXT);
    return nullptr;
  }
  const bool wants_host =
      (flags & (CL_MEM_USE_HOST_PTR | CL_MEM_COPY_HOST_PTR)) != 0;
  if (wants_host && host_ptr == nullptr) {
    set_err(err, CL_INVALID_HOST_PTR);
    return nullptr;
  }
  std::span<const std::uint8_t> data;
  if (wants_host)
    data = {static_cast<const std::uint8_t*>(host_ptr), size};
  proxy::RemoteHandle h = 0;
  const cl_int e = c->create_buffer(ctx->remote, flags, size, data, h);
  set_err(err, e);
  if (e != CL_SUCCESS) return nullptr;
  auto* m = new MemObj();
  m->remote = h;
  m->ctx = ctx;
  m->flags = flags;
  m->size = size;
  if ((flags & CL_MEM_USE_HOST_PTR) != 0) m->use_host_ptr = host_ptr;
  ctx->retain();
  rt().db().add(m);
  if (Supervisor* s = sup()) s->on_mem_created(m, data.empty() ? nullptr : data.data());
  return reinterpret_cast<cl_mem>(m);
}

cl_mem w_CreateImage2D(cl_context context, cl_mem_flags flags,
                       const cl_image_format* format, std::size_t width,
                       std::size_t height, std::size_t row_pitch, void* host_ptr,
                       cl_int* err) {
  proxy::Client* c = pre_call();
  if (c == nullptr) {
    set_err(err, CL_DEVICE_NOT_AVAILABLE);
    return nullptr;
  }
  auto* ctx = as_checl<ContextObj>(context);
  if (ctx == nullptr) {
    set_err(err, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (format == nullptr) {
    set_err(err, CL_INVALID_IMAGE_FORMAT_DESCRIPTOR);
    return nullptr;
  }
  std::size_t channels = 0;
  switch (format->image_channel_order) {
    case CL_R: channels = 1; break;
    case CL_RG: channels = 2; break;
    case CL_RGBA: channels = 4; break;
    default: channels = 4; break;
  }
  const std::size_t pitch = row_pitch != 0 ? row_pitch : width * channels * 4;
  std::span<const std::uint8_t> data;
  if ((flags & (CL_MEM_USE_HOST_PTR | CL_MEM_COPY_HOST_PTR)) != 0 &&
      host_ptr != nullptr)
    data = {static_cast<const std::uint8_t*>(host_ptr), pitch * height};
  proxy::RemoteHandle h = 0;
  const cl_int e = c->create_image2d(ctx->remote, flags, *format, width, height,
                                     pitch, data, h);
  set_err(err, e);
  if (e != CL_SUCCESS) return nullptr;
  auto* m = new MemObj();
  m->remote = h;
  m->ctx = ctx;
  m->flags = flags;
  m->size = pitch * height;
  m->is_image = true;
  m->format = *format;
  m->width = width;
  m->height = height;
  m->row_pitch = pitch;
  if ((flags & CL_MEM_USE_HOST_PTR) != 0) m->use_host_ptr = host_ptr;
  ctx->retain();
  rt().db().add(m);
  if (Supervisor* s = sup()) s->on_mem_created(m, data.empty() ? nullptr : data.data());
  return reinterpret_cast<cl_mem>(m);
}

cl_int w_RetainMemObject(cl_mem mem) {
  auto* m = as_checl<MemObj>(mem);
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  m->retain();
  return CL_SUCCESS;
}
cl_int w_ReleaseMemObject(cl_mem mem) {
  auto* m = as_checl<MemObj>(mem);
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  unref_object(m);
  return CL_SUCCESS;
}

cl_int w_GetMemObjectInfo(cl_mem mem, cl_mem_info pn, std::size_t size,
                          void* value, std::size_t* size_ret) {
  auto* m = as_checl<MemObj>(mem);
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  switch (pn) {
    case CL_MEM_TYPE:
      return set_param<cl_uint>(m->is_image ? CL_MEM_OBJECT_IMAGE2D
                                            : CL_MEM_OBJECT_BUFFER,
                                size, value, size_ret);
    case CL_MEM_FLAGS: return set_param(m->flags, size, value, size_ret);
    case CL_MEM_SIZE: return set_param<std::size_t>(m->size, size, value, size_ret);
    case CL_MEM_HOST_PTR: return set_param(m->use_host_ptr, size, value, size_ret);
    case CL_MEM_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(m->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_MEM_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(m->ctx);
      return set_param(h, size, value, size_ret);
    }
    default: return CL_INVALID_VALUE;
  }
}

cl_int w_GetImageInfo(cl_mem mem, cl_image_info pn, std::size_t size, void* value,
                      std::size_t* size_ret) {
  auto* m = as_checl<MemObj>(mem);
  if (m == nullptr || !m->is_image) return CL_INVALID_MEM_OBJECT;
  switch (pn) {
    case CL_IMAGE_FORMAT: return set_param(m->format, size, value, size_ret);
    case CL_IMAGE_ROW_PITCH:
      return set_param<std::size_t>(m->row_pitch, size, value, size_ret);
    case CL_IMAGE_WIDTH: return set_param<std::size_t>(m->width, size, value, size_ret);
    case CL_IMAGE_HEIGHT:
      return set_param<std::size_t>(m->height, size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---------------------------------------------------------------------------
// sampler
// ---------------------------------------------------------------------------

cl_sampler w_CreateSampler(cl_context context, cl_bool normalized,
                           cl_addressing_mode am, cl_filter_mode fm, cl_int* err) {
  proxy::Client* c = pre_call();
  if (c == nullptr) {
    set_err(err, CL_DEVICE_NOT_AVAILABLE);
    return nullptr;
  }
  auto* ctx = as_checl<ContextObj>(context);
  if (ctx == nullptr) {
    set_err(err, CL_INVALID_CONTEXT);
    return nullptr;
  }
  proxy::RemoteHandle h = 0;
  const cl_int e = c->create_sampler(ctx->remote, normalized, am, fm, h);
  set_err(err, e);
  if (e != CL_SUCCESS) return nullptr;
  auto* s = new SamplerObj();
  s->remote = h;
  s->ctx = ctx;
  s->normalized = normalized;
  s->addressing = am;
  s->filter = fm;
  ctx->retain();
  rt().db().add(s);
  return reinterpret_cast<cl_sampler>(s);
}

cl_int w_RetainSampler(cl_sampler sampler) {
  auto* s = as_checl<SamplerObj>(sampler);
  if (s == nullptr) return CL_INVALID_SAMPLER;
  s->retain();
  return CL_SUCCESS;
}
cl_int w_ReleaseSampler(cl_sampler sampler) {
  auto* s = as_checl<SamplerObj>(sampler);
  if (s == nullptr) return CL_INVALID_SAMPLER;
  unref_object(s);
  return CL_SUCCESS;
}

cl_int w_GetSamplerInfo(cl_sampler sampler, cl_sampler_info pn, std::size_t size,
                        void* value, std::size_t* size_ret) {
  auto* s = as_checl<SamplerObj>(sampler);
  if (s == nullptr) return CL_INVALID_SAMPLER;
  switch (pn) {
    case CL_SAMPLER_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(s->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_SAMPLER_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(s->ctx);
      return set_param(h, size, value, size_ret);
    }
    case CL_SAMPLER_NORMALIZED_COORDS:
      return set_param(s->normalized, size, value, size_ret);
    case CL_SAMPLER_ADDRESSING_MODE:
      return set_param(s->addressing, size, value, size_ret);
    case CL_SAMPLER_FILTER_MODE: return set_param(s->filter, size, value, size_ret);
    default: return CL_INVALID_VALUE;
  }
}

// ---------------------------------------------------------------------------
// program
// ---------------------------------------------------------------------------

cl_program w_CreateProgramWithSource(cl_context context, cl_uint count,
                                     const char** strings, const std::size_t* lengths,
                                     cl_int* err) {
  proxy::Client* c = pre_call();
  if (c == nullptr) {
    set_err(err, CL_DEVICE_NOT_AVAILABLE);
    return nullptr;
  }
  auto* ctx = as_checl<ContextObj>(context);
  if (ctx == nullptr) {
    set_err(err, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (count == 0 || strings == nullptr) {
    set_err(err, CL_INVALID_VALUE);
    return nullptr;
  }
  std::string src;
  for (cl_uint i = 0; i < count; ++i) {
    if (strings[i] == nullptr) {
      set_err(err, CL_INVALID_VALUE);
      return nullptr;
    }
    if (lengths != nullptr && lengths[i] != 0)
      src.append(strings[i], lengths[i]);
    else
      src.append(strings[i]);
  }
  proxy::RemoteHandle h = 0;
  const cl_int e = c->create_program_with_source(ctx->remote, src, h);
  set_err(err, e);
  if (e != CL_SUCCESS) return nullptr;
  auto* p = new ProgramObj();
  p->remote = h;
  p->ctx = ctx;
  p->source = std::move(src);
  // Section III-B: parse kernel declarations now so clSetKernelArg can tell
  // handles from plain values.
  p->signatures = ksig::parse_signatures(p->source);
  ctx->retain();
  rt().db().add(p);
  return reinterpret_cast<cl_program>(p);
}

cl_program w_CreateProgramWithBinary(cl_context context, cl_uint num_devices,
                                     const cl_device_id* device_list,
                                     const std::size_t* lengths,
                                     const unsigned char** binaries,
                                     cl_int* binary_status, cl_int* err) {
  proxy::Client* c = pre_call();
  if (c == nullptr) {
    set_err(err, CL_DEVICE_NOT_AVAILABLE);
    return nullptr;
  }
  static bool warned = false;
  if (!warned) {
    std::fprintf(stderr,
                 "CheCL: clCreateProgramWithBinary is deprecated under CheCL — "
                 "the binary may be invalid on the restart node and kernel "
                 "signatures are unavailable (falling back to the address "
                 "heuristic for clSetKernelArg)\n");
    warned = true;
  }
  auto* ctx = as_checl<ContextObj>(context);
  if (ctx == nullptr) {
    set_err(err, CL_INVALID_CONTEXT);
    return nullptr;
  }
  if (num_devices == 0 || device_list == nullptr || lengths == nullptr ||
      binaries == nullptr) {
    set_err(err, CL_INVALID_VALUE);
    return nullptr;
  }
  std::vector<proxy::RemoteHandle> remotes;
  for (cl_uint i = 0; i < num_devices; ++i) {
    auto* d = as_checl<DeviceObj>(device_list[i]);
    if (d == nullptr) {
      set_err(err, CL_INVALID_DEVICE);
      return nullptr;
    }
    remotes.push_back(d->remote);
  }
  cl_int status = CL_SUCCESS;
  proxy::RemoteHandle h = 0;
  const cl_int e = c->create_program_with_binary(
      ctx->remote, remotes, {binaries[0], lengths[0]}, status, h);
  if (binary_status != nullptr)
    for (cl_uint i = 0; i < num_devices; ++i) binary_status[i] = status;
  set_err(err, e);
  if (e != CL_SUCCESS) return nullptr;
  auto* p = new ProgramObj();
  p->remote = h;
  p->ctx = ctx;
  p->from_binary = true;
  p->binary.assign(binaries[0], binaries[0] + lengths[0]);
  ctx->retain();
  rt().db().add(p);
  return reinterpret_cast<cl_program>(p);
}

cl_int w_RetainProgram(cl_program program) {
  auto* p = as_checl<ProgramObj>(program);
  if (p == nullptr) return CL_INVALID_PROGRAM;
  p->retain();
  return CL_SUCCESS;
}
cl_int w_ReleaseProgram(cl_program program) {
  auto* p = as_checl<ProgramObj>(program);
  if (p == nullptr) return CL_INVALID_PROGRAM;
  unref_object(p);
  return CL_SUCCESS;
}

cl_int w_BuildProgram(cl_program program, cl_uint num_devices,
                      const cl_device_id* device_list, const char* options,
                      void (*notify)(cl_program, void*), void* user_data) {
  (void)user_data;
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* p = as_checl<ProgramObj>(program);
  if (p == nullptr) return CL_INVALID_PROGRAM;
  if (notify != nullptr) {
    static bool warned = false;
    if (!warned) {
      std::fprintf(stderr,
                   "CheCL: clBuildProgram callback functions are ignored "
                   "(Section IV-D)\n");
      warned = true;
    }
  }
  std::vector<proxy::RemoteHandle> remotes;
  for (cl_uint i = 0; i < num_devices; ++i) {
    auto* d = as_checl<DeviceObj>(device_list[i]);
    if (d == nullptr) return CL_INVALID_DEVICE;
    remotes.push_back(d->remote);
  }
  p->build_options = options != nullptr ? options : "";
  if (!p->source.empty())
    p->signatures = ksig::parse_signatures(p->source, p->build_options);
  const cl_int e = c->build_program(p->remote, remotes, p->build_options);
  if (e == CL_SUCCESS) p->built = true;
  return e;
}

cl_int w_GetProgramInfo(cl_program program, cl_program_info pn, std::size_t size,
                        void* value, std::size_t* size_ret) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* p = as_checl<ProgramObj>(program);
  if (p == nullptr) return CL_INVALID_PROGRAM;
  switch (pn) {
    case CL_PROGRAM_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(p->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_PROGRAM_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(p->ctx);
      return set_param(h, size, value, size_ret);
    }
    case CL_PROGRAM_NUM_DEVICES:
      return set_param<cl_uint>(static_cast<cl_uint>(p->ctx->devices.size()),
                                size, value, size_ret);
    case CL_PROGRAM_DEVICES: {
      std::vector<cl_device_id> hs;
      for (DeviceObj* d : p->ctx->devices)
        hs.push_back(reinterpret_cast<cl_device_id>(d));
      return set_param_bytes(hs.data(), hs.size() * sizeof(cl_device_id), size,
                             value, size_ret);
    }
    case CL_PROGRAM_SOURCE: return set_param_str(p->source, size, value, size_ret);
    case CL_PROGRAM_BINARIES: {
      // out-parameter shape: `value` is an array of caller-allocated buffer
      // pointers, one per device — fetch the binary content from the proxy
      // and copy it into the caller's buffer
      if (size_ret != nullptr) *size_ret = sizeof(unsigned char*);
      if (value == nullptr) return CL_SUCCESS;
      std::size_t bin_size = 0;
      cl_int e = c->get_info(proxy::Op::GetProgramInfo, p->remote,
                             CL_PROGRAM_BINARY_SIZES, sizeof bin_size, &bin_size,
                             nullptr);
      if (e != CL_SUCCESS) return e;
      std::vector<std::uint8_t> content(bin_size);
      e = c->get_info(proxy::Op::GetProgramInfo, p->remote, CL_PROGRAM_BINARIES,
                      bin_size, content.data(), nullptr);
      if (e != CL_SUCCESS) return e;
      auto** out = static_cast<unsigned char**>(value);
      if (out[0] != nullptr) std::memcpy(out[0], content.data(), content.size());
      return CL_SUCCESS;
    }
    default:
      return c->get_info(proxy::Op::GetProgramInfo, p->remote, pn, size, value,
                         size_ret);
  }
}

cl_int w_GetProgramBuildInfo(cl_program program, cl_device_id device,
                             cl_program_build_info pn, std::size_t size,
                             void* value, std::size_t* size_ret) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* p = as_checl<ProgramObj>(program);
  auto* d = as_checl<DeviceObj>(device);
  if (p == nullptr) return CL_INVALID_PROGRAM;
  if (d == nullptr) return CL_INVALID_DEVICE;
  return c->get_info2(proxy::Op::GetProgramBuildInfo, p->remote, d->remote, pn,
                      size, value, size_ret);
}

// ---------------------------------------------------------------------------
// kernel
// ---------------------------------------------------------------------------

KernelObj* make_kernel_obj(ProgramObj* p, proxy::RemoteHandle remote,
                           std::string name) {
  auto* k = new KernelObj();
  k->remote = remote;
  k->prog = p;
  k->name = std::move(name);
  p->retain();
  k->sig = p->signatures.find(k->name);
  if (k->sig != nullptr) k->args.resize(k->sig->params.size());
  rt().db().add(k);
  return k;
}

cl_kernel w_CreateKernel(cl_program program, const char* name, cl_int* err) {
  proxy::Client* c = pre_call();
  if (c == nullptr) {
    set_err(err, CL_DEVICE_NOT_AVAILABLE);
    return nullptr;
  }
  auto* p = as_checl<ProgramObj>(program);
  if (p == nullptr) {
    set_err(err, CL_INVALID_PROGRAM);
    return nullptr;
  }
  if (name == nullptr) {
    set_err(err, CL_INVALID_VALUE);
    return nullptr;
  }
  proxy::RemoteHandle h = 0;
  const cl_int e = c->create_kernel(p->remote, name, h);
  set_err(err, e);
  if (e != CL_SUCCESS) return nullptr;
  return reinterpret_cast<cl_kernel>(make_kernel_obj(p, h, name));
}

cl_int w_CreateKernelsInProgram(cl_program program, cl_uint num_kernels,
                                cl_kernel* kernels, cl_uint* num_ret) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* p = as_checl<ProgramObj>(program);
  if (p == nullptr) return CL_INVALID_PROGRAM;
  std::vector<proxy::RemoteHandle> remotes;
  cl_uint total = 0;
  const cl_int e = c->create_kernels_in_program(
      p->remote, kernels != nullptr ? num_kernels : 0, remotes, total);
  if (e != CL_SUCCESS) return e;
  if (num_ret != nullptr) *num_ret = total;
  if (kernels != nullptr) {
    for (std::size_t i = 0; i < remotes.size(); ++i) {
      char name[256] = {};
      c->get_info(proxy::Op::GetKernelInfo, remotes[i], CL_KERNEL_FUNCTION_NAME,
                  sizeof name, name, nullptr);
      kernels[i] =
          reinterpret_cast<cl_kernel>(make_kernel_obj(p, remotes[i], name));
    }
  }
  return CL_SUCCESS;
}

cl_int w_RetainKernel(cl_kernel kernel) {
  auto* k = as_checl<KernelObj>(kernel);
  if (k == nullptr) return CL_INVALID_KERNEL;
  k->retain();
  return CL_SUCCESS;
}
cl_int w_ReleaseKernel(cl_kernel kernel) {
  auto* k = as_checl<KernelObj>(kernel);
  if (k == nullptr) return CL_INVALID_KERNEL;
  unref_object(k);
  return CL_SUCCESS;
}

// The heart of Section III-B: decide whether (arg_value, arg_size) carries a
// CheCL handle and convert it before forwarding.
cl_int w_SetKernelArg(cl_kernel kernel, cl_uint idx, std::size_t arg_size,
                      const void* arg_value) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* k = as_checl<KernelObj>(kernel);
  if (k == nullptr) return CL_INVALID_KERNEL;
  if (k->args.size() <= idx) k->args.resize(idx + 1);

  // classify: prefer the parsed kernel signature; fall back to the address
  // heuristic for binary-created programs (Section IV-D)
  enum class Cls { Value, Mem, Sampler, Local };
  Cls cls = Cls::Value;
  if (k->sig != nullptr && idx < k->sig->params.size()) {
    switch (k->sig->params[idx].cls) {
      case ksig::ParamClass::MemGlobal:
      case ksig::ParamClass::MemConstant:
      case ksig::ParamClass::Image: cls = Cls::Mem; break;
      case ksig::ParamClass::Sampler: cls = Cls::Sampler; break;
      case ksig::ParamClass::Local: cls = Cls::Local; break;
      case ksig::ParamClass::Value: cls = Cls::Value; break;
    }
  } else if (arg_value == nullptr && arg_size != 0) {
    cls = Cls::Local;
  } else if (arg_size == sizeof(void*) && arg_value != nullptr) {
    // NOTE: may mis-classify if a value argument happens to equal the
    // address of a live CheCL object — the paper's documented risk.
    void* maybe = nullptr;
    std::memcpy(&maybe, arg_value, sizeof maybe);
    if (is_checl_object(maybe)) {
      auto* o = static_cast<Object*>(maybe);
      cls = o->otype == ObjType::Sampler ? Cls::Sampler
            : o->otype == ObjType::Mem   ? Cls::Mem
                                         : Cls::Value;
    }
  }

  KernelObj::ArgRec rec;
  cl_int e = CL_SUCCESS;
  switch (cls) {
    case Cls::Mem: {
      if (arg_size != sizeof(cl_mem) || arg_value == nullptr)
        return CL_INVALID_ARG_SIZE;
      cl_mem mh = nullptr;
      std::memcpy(&mh, arg_value, sizeof mh);
      auto* m = as_checl<MemObj>(mh);
      if (m == nullptr) return CL_INVALID_MEM_OBJECT;
      e = c->set_kernel_arg_mem(k->remote, idx, m->remote);
      if (e != CL_SUCCESS) return e;
      m->retain();
      rec.kind = KernelObj::ArgRec::Kind::Mem;
      rec.mem = m;
      break;
    }
    case Cls::Sampler: {
      if (arg_size != sizeof(cl_sampler) || arg_value == nullptr)
        return CL_INVALID_ARG_SIZE;
      cl_sampler sh = nullptr;
      std::memcpy(&sh, arg_value, sizeof sh);
      auto* s = as_checl<SamplerObj>(sh);
      if (s == nullptr) return CL_INVALID_SAMPLER;
      e = c->set_kernel_arg_sampler(k->remote, idx, s->remote);
      if (e != CL_SUCCESS) return e;
      s->retain();
      rec.kind = KernelObj::ArgRec::Kind::Sampler;
      rec.sampler = s;
      break;
    }
    case Cls::Local:
      if (arg_value != nullptr || arg_size == 0) return CL_INVALID_ARG_VALUE;
      e = c->set_kernel_arg_local(k->remote, idx, arg_size);
      if (e != CL_SUCCESS) return e;
      rec.kind = KernelObj::ArgRec::Kind::Local;
      rec.local_size = arg_size;
      break;
    case Cls::Value: {
      if (arg_value == nullptr || arg_size == 0) return CL_INVALID_ARG_VALUE;
      // Limitation (Section IV-D): a user-defined struct containing CheCL
      // handles is forwarded as-is — handles inside it are NOT converted.
      const auto* bytes = static_cast<const std::uint8_t*>(arg_value);
      e = c->set_kernel_arg_bytes(k->remote, idx, {bytes, arg_size});
      if (e != CL_SUCCESS) return e;
      rec.kind = KernelObj::ArgRec::Kind::Bytes;
      rec.bytes.assign(bytes, bytes + arg_size);
      break;
    }
  }
  // record the state change for restoration; drop the old binding
  KernelObj::ArgRec& slot = k->args[idx];
  unref_object(slot.mem);
  unref_object(slot.sampler);
  slot = std::move(rec);
  if (Supervisor* s = sup()) s->on_set_arg(k, idx, slot);
  return CL_SUCCESS;
}

cl_int w_GetKernelInfo(cl_kernel kernel, cl_kernel_info pn, std::size_t size,
                       void* value, std::size_t* size_ret) {
  auto* k = as_checl<KernelObj>(kernel);
  if (k == nullptr) return CL_INVALID_KERNEL;
  switch (pn) {
    case CL_KERNEL_FUNCTION_NAME: return set_param_str(k->name, size, value, size_ret);
    case CL_KERNEL_NUM_ARGS:
      return set_param<cl_uint>(static_cast<cl_uint>(k->args.size()), size, value,
                                size_ret);
    case CL_KERNEL_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(k->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    case CL_KERNEL_CONTEXT: {
      auto h = reinterpret_cast<cl_context>(k->prog->ctx);
      return set_param(h, size, value, size_ret);
    }
    case CL_KERNEL_PROGRAM: {
      auto h = reinterpret_cast<cl_program>(k->prog);
      return set_param(h, size, value, size_ret);
    }
    default: return CL_INVALID_VALUE;
  }
}

cl_int w_GetKernelWorkGroupInfo(cl_kernel kernel, cl_device_id device,
                                cl_kernel_work_group_info pn, std::size_t size,
                                void* value, std::size_t* size_ret) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* k = as_checl<KernelObj>(kernel);
  auto* d = as_checl<DeviceObj>(device);
  if (k == nullptr) return CL_INVALID_KERNEL;
  if (d == nullptr) return CL_INVALID_DEVICE;
  return c->get_info2(proxy::Op::GetKernelWorkGroupInfo, k->remote, d->remote, pn,
                      size, value, size_ret);
}

// ---------------------------------------------------------------------------
// events
// ---------------------------------------------------------------------------

cl_int w_WaitForEvents(cl_uint num, const cl_event* events) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  if (num == 0 || events == nullptr) return CL_INVALID_VALUE;
  std::vector<proxy::RemoteHandle> remotes;
  for (cl_uint i = 0; i < num; ++i) {
    auto* e = as_checl<EventObj>(events[i]);
    if (e == nullptr) return CL_INVALID_EVENT;
    remotes.push_back(e->remote);
  }
  const cl_int err = c->wait_for_events(remotes);
  rt().on_sync_point();
  return err;
}

cl_int w_GetEventInfo(cl_event event, cl_event_info pn, std::size_t size,
                      void* value, std::size_t* size_ret) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* e = as_checl<EventObj>(event);
  if (e == nullptr) return CL_INVALID_EVENT;
  switch (pn) {
    case CL_EVENT_COMMAND_QUEUE: {
      auto h = reinterpret_cast<cl_command_queue>(e->queue);
      return set_param(h, size, value, size_ret);
    }
    case CL_EVENT_COMMAND_TYPE:
      return set_param(e->command_type, size, value, size_ret);
    case CL_EVENT_REFERENCE_COUNT:
      return set_param<cl_uint>(
          static_cast<cl_uint>(e->refs.load(std::memory_order_relaxed)), size,
          value, size_ret);
    default:
      return c->get_info(proxy::Op::GetEventInfo, e->remote, pn, size, value,
                         size_ret);
  }
}

cl_int w_RetainEvent(cl_event event) {
  auto* e = as_checl<EventObj>(event);
  if (e == nullptr) return CL_INVALID_EVENT;
  e->retain();
  return CL_SUCCESS;
}
cl_int w_ReleaseEvent(cl_event event) {
  auto* e = as_checl<EventObj>(event);
  if (e == nullptr) return CL_INVALID_EVENT;
  unref_object(e);
  return CL_SUCCESS;
}

cl_int w_GetEventProfilingInfo(cl_event event, cl_profiling_info pn,
                               std::size_t size, void* value, std::size_t* size_ret) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* e = as_checl<EventObj>(event);
  if (e == nullptr) return CL_INVALID_EVENT;
  return c->get_info(proxy::Op::GetEventProfilingInfo, e->remote, pn, size, value,
                     size_ret);
}

// ---------------------------------------------------------------------------
// enqueue
// ---------------------------------------------------------------------------

EventObj* wrap_event(QueueObj* q, cl_uint type, proxy::RemoteHandle remote) {
  auto* e = new EventObj();
  e->remote = remote;
  e->queue = q;
  e->command_type = type;
  q->retain();
  rt().db().add(e);
  return e;
}

cl_int w_EnqueueReadBuffer(cl_command_queue queue, cl_mem mem, cl_bool blocking,
                           std::size_t offset, std::size_t cb, void* ptr,
                           cl_uint num_waits, const cl_event* waits, cl_event* event) {
  (void)num_waits;
  (void)waits;  // the in-order proxy queue already serializes
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* q = as_checl<QueueObj>(queue);
  auto* m = as_checl<MemObj>(mem);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  proxy::RemoteHandle ev = 0;
  const cl_int e =
      c->enqueue_read(q->remote, m->remote, offset, cb, ptr, event != nullptr, ev);
  if (e == CL_SUCCESS && event != nullptr)
    *event = reinterpret_cast<cl_event>(wrap_event(q, CL_COMMAND_READ_BUFFER, ev));
  if (blocking != CL_FALSE) rt().on_sync_point();
  return e;
}

cl_int w_EnqueueWriteBuffer(cl_command_queue queue, cl_mem mem, cl_bool blocking,
                            std::size_t offset, std::size_t cb, const void* ptr,
                            cl_uint num_waits, const cl_event* waits,
                            cl_event* event) {
  (void)num_waits;
  (void)waits;
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* q = as_checl<QueueObj>(queue);
  auto* m = as_checl<MemObj>(mem);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (m == nullptr) return CL_INVALID_MEM_OBJECT;
  if (ptr == nullptr) return CL_INVALID_VALUE;
  proxy::RemoteHandle ev = 0;
  const cl_int e = c->enqueue_write(
      q->remote, m->remote, offset,
      {static_cast<const std::uint8_t*>(ptr), cb}, event != nullptr, ev);
  if (e == CL_SUCCESS && event != nullptr)
    *event = reinterpret_cast<cl_event>(wrap_event(q, CL_COMMAND_WRITE_BUFFER, ev));
  if (e == CL_SUCCESS)
    if (Supervisor* s = sup()) s->on_enqueue_write(q, m, offset, ptr, cb);
  if (blocking != CL_FALSE) rt().on_sync_point();
  return e;
}

cl_int w_EnqueueCopyBuffer(cl_command_queue queue, cl_mem src, cl_mem dst,
                           std::size_t soff, std::size_t doff, std::size_t cb,
                           cl_uint num_waits, const cl_event* waits, cl_event* event) {
  (void)num_waits;
  (void)waits;
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* q = as_checl<QueueObj>(queue);
  auto* ms = as_checl<MemObj>(src);
  auto* md = as_checl<MemObj>(dst);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (ms == nullptr || md == nullptr) return CL_INVALID_MEM_OBJECT;
  proxy::RemoteHandle ev = 0;
  const cl_int e = c->enqueue_copy(q->remote, ms->remote, md->remote, soff, doff,
                                   cb, event != nullptr, ev);
  if (e == CL_SUCCESS && event != nullptr)
    *event = reinterpret_cast<cl_event>(wrap_event(q, CL_COMMAND_COPY_BUFFER, ev));
  if (e == CL_SUCCESS)
    if (Supervisor* s = sup()) s->on_enqueue_copy(q, ms, md, soff, doff, cb);
  return e;
}

cl_int w_EnqueueNDRangeKernel(cl_command_queue queue, cl_kernel kernel, cl_uint dim,
                              const std::size_t* goff, const std::size_t* gsz,
                              const std::size_t* lsz, cl_uint num_waits,
                              const cl_event* waits, cl_event* event) {
  (void)num_waits;
  (void)waits;
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* q = as_checl<QueueObj>(queue);
  auto* k = as_checl<KernelObj>(kernel);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (k == nullptr) return CL_INVALID_KERNEL;

  // CL_MEM_USE_HOST_PTR emulation: push the application's cached host copy
  // before the kernel, pull it back afterwards (Section IV-D's redundant
  // transfers — this is why the feature "usually causes severe performance
  // degradation" under CheCL).
  std::vector<MemObj*> synced;
  for (std::size_t i = 0; i < k->args.size(); ++i) {
    const KernelObj::ArgRec& a = k->args[i];
    if (a.kind != KernelObj::ArgRec::Kind::Mem || a.mem == nullptr) continue;
    if (a.mem->use_host_ptr != nullptr) synced.push_back(a.mem);
    // Dirty tracking happens substrate-side at execution time (the kernel's
    // conservative write set marks each bound non-const buffer), so a launch
    // needs no client-side bookkeeping here.
  }
  for (MemObj* m : synced) {
    proxy::RemoteHandle ev = 0;
    c->enqueue_write(q->remote, m->remote, 0,
                     {static_cast<const std::uint8_t*>(m->use_host_ptr), m->size},
                     false, ev);
    // The emulation push mutates device state outside the app's call stream;
    // journal it so a recovery replays the same bytes before the kernel.
    if (Supervisor* s = sup())
      s->on_enqueue_write(q, m, 0, m->use_host_ptr, m->size);
  }

  proxy::RemoteHandle ev = 0;
  const cl_int e = c->enqueue_ndrange(q->remote, k->remote, dim, goff, gsz, lsz,
                                      event != nullptr, ev);
  if (e == CL_SUCCESS && event != nullptr)
    *event =
        reinterpret_cast<cl_event>(wrap_event(q, CL_COMMAND_NDRANGE_KERNEL, ev));
  if (e == CL_SUCCESS)
    if (Supervisor* s = sup()) s->on_enqueue_kernel(q, k, dim, goff, gsz, lsz);

  for (MemObj* m : synced) {
    proxy::RemoteHandle rev = 0;
    c->enqueue_read(q->remote, m->remote, 0, m->size, m->use_host_ptr, false, rev);
  }
  if (e == CL_SUCCESS) rt().on_kernel_enqueued();
  return e;
}

cl_int w_EnqueueTask(cl_command_queue queue, cl_kernel kernel, cl_uint num_waits,
                     const cl_event* waits, cl_event* event) {
  const std::size_t one = 1;
  return w_EnqueueNDRangeKernel(queue, kernel, 1, nullptr, &one, &one, num_waits,
                                waits, event);
}

cl_int w_EnqueueMarker(cl_command_queue queue, cl_event* event) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* q = as_checl<QueueObj>(queue);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (event == nullptr) return CL_INVALID_VALUE;
  proxy::RemoteHandle ev = 0;
  const cl_int e = c->enqueue_marker(q->remote, ev);
  if (e == CL_SUCCESS)
    *event = reinterpret_cast<cl_event>(wrap_event(q, CL_COMMAND_MARKER, ev));
  return e;
}

cl_int w_EnqueueBarrier(cl_command_queue queue) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* q = as_checl<QueueObj>(queue);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  return c->enqueue_barrier(q->remote);
}

cl_int w_EnqueueWaitForEvents(cl_command_queue queue, cl_uint num,
                              const cl_event* events) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  auto* q = as_checl<QueueObj>(queue);
  if (q == nullptr) return CL_INVALID_COMMAND_QUEUE;
  if (num == 0 || events == nullptr) return CL_INVALID_VALUE;
  std::vector<proxy::RemoteHandle> remotes;
  for (cl_uint i = 0; i < num; ++i) {
    auto* e = as_checl<EventObj>(events[i]);
    if (e == nullptr) return CL_INVALID_EVENT;
    remotes.push_back(e->remote);
  }
  return c->enqueue_wait_for_events(q->remote, remotes);
}

// ---------------------------------------------------------------------------
// sim extensions
// ---------------------------------------------------------------------------

cl_int w_SimGetHostTimeNS(cl_ulong* t) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  if (t == nullptr) return CL_INVALID_VALUE;
  return c->sim_get_host_time_ns(*t);
}

cl_int w_SimAdvanceHostNS(cl_ulong dt) {
  proxy::Client* c = pre_call();
  if (c == nullptr) return CL_DEVICE_NOT_AVAILABLE;
  return c->sim_advance_host_ns(dt);
}

}  // namespace

const checl_api::DispatchTable& dispatch_table() noexcept {
  static const checl_api::DispatchTable kTable = {
      w_GetPlatformIDs,
      w_GetPlatformInfo,
      w_GetDeviceIDs,
      w_GetDeviceInfo,
      w_CreateContext,
      w_RetainContext,
      w_ReleaseContext,
      w_GetContextInfo,
      w_CreateCommandQueue,
      w_RetainCommandQueue,
      w_ReleaseCommandQueue,
      w_GetCommandQueueInfo,
      w_Flush,
      w_Finish,
      w_CreateBuffer,
      w_CreateImage2D,
      w_RetainMemObject,
      w_ReleaseMemObject,
      w_GetMemObjectInfo,
      w_GetImageInfo,
      w_CreateSampler,
      w_RetainSampler,
      w_ReleaseSampler,
      w_GetSamplerInfo,
      w_CreateProgramWithSource,
      w_CreateProgramWithBinary,
      w_RetainProgram,
      w_ReleaseProgram,
      w_BuildProgram,
      w_GetProgramInfo,
      w_GetProgramBuildInfo,
      w_CreateKernel,
      w_CreateKernelsInProgram,
      w_RetainKernel,
      w_ReleaseKernel,
      w_SetKernelArg,
      w_GetKernelInfo,
      w_GetKernelWorkGroupInfo,
      w_WaitForEvents,
      w_GetEventInfo,
      w_RetainEvent,
      w_ReleaseEvent,
      w_GetEventProfilingInfo,
      w_EnqueueReadBuffer,
      w_EnqueueWriteBuffer,
      w_EnqueueCopyBuffer,
      w_EnqueueNDRangeKernel,
      w_EnqueueTask,
      w_EnqueueMarker,
      w_EnqueueBarrier,
      w_EnqueueWaitForEvents,
      w_SimGetHostTimeNS,
      w_SimAdvanceHostNS,
  };
  return kTable;
}

void bind_checl() noexcept { checl_api::set_dispatch(&dispatch_table()); }
void bind_native() noexcept { checl_api::set_dispatch(nullptr); }

}  // namespace checl
