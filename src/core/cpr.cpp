#include "core/cpr.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "chaoskit/chaoskit.h"
#include "core/replay/codec.h"
#include "core/replay/plan.h"
#include "core/runtime.h"
#include "core/supervisor.h"

namespace checl::cpr {

namespace {

std::string mem_section_name(std::uint64_t id) {
  return "mem." + std::to_string(id);
}

// Where a checkpoint degrades to when the content-addressed pool is
// persistently unwritable: a flat, self-contained snapshot file next to the
// pool.  The manifest name is flattened into a file name.
std::string degraded_ckpt_path(const CheclRuntime& rt, const std::string& name) {
  std::string flat = name;
  for (char& ch : flat)
    if (ch == '/') ch = '_';
  const std::string& root =
      rt.store_root.empty() ? "/tmp/checl_snapstore" : rt.store_root;
  return root + "/" + flat + ".degraded.ckpt";
}

// Runs one I/O attempt under the runtime's io_retry policy (capped backoff +
// jitter + deadline budget; default = single attempt) and counts the retries
// in the supervisor stats.
template <class Fn>
bool io_run(CheclRuntime& rt, Fn&& attempt) {
  unsigned tries = 0;
  const bool ok = rt.io_retry.run([&] {
    ++tries;
    return attempt();
  });
  if (tries > 1) rt.supervisor().stats_mut().io_retries += tries - 1;
  return ok;
}

}  // namespace

std::uint64_t Engine::now_ns() {
  cl_ulong t = 0;
  if (proxy::Client* c = rt_.client(); c != nullptr) c->sim_get_host_time_ns(t);
  return t;
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> Engine::serialize_db() {
  return replay::encode_db(rt_.db());
}

// ---------------------------------------------------------------------------
// checkpoint
// ---------------------------------------------------------------------------

snapstore::Store* Engine::store() {
  const std::string& root =
      rt_.store_root.empty() ? "/tmp/checl_snapstore" : rt_.store_root;
  if (store_ != nullptr && store_->is_open() && store_->root() == root)
    return store_.get();
  auto st = std::make_unique<snapstore::Store>();
  if (const snapstore::Status s = st->open(root, rt_.store_options); !s.ok()) {
    last_error_ = "cannot open snapstore: " + s.message;
    return nullptr;
  }
  store_ = std::move(st);
  return store_.get();
}

// The public checkpoint/restart entry points share one contract: last_error_
// is cleared on entry (historically restore_fresh and restart_in_place
// disagreed once respawn_proxy failed mid-way), any failure leaves it
// non-empty, and an armed chaos site tags the message so torture runs can
// assert the culprit is named.
std::uint64_t Engine::chain_seq_now() const {
  const Supervisor* s = rt_.supervisor_if_created();
  return s != nullptr ? s->chain_seq() : 0;
}

cl_int Engine::finish_op(const char* op, cl_int err, std::uint64_t chain0) {
  if (err != CL_SUCCESS && last_error_.empty())
    last_error_ = std::string(op) + " failed: " + replay::cl_error_name(err);
  if (err != CL_SUCCESS) {
    // A recovery ran during this op and the op still failed: carry the full
    // chain ("Timeout on opcode X -> respawn epoch 3 -> ...") to the caller.
    if (const Supervisor* s = rt_.supervisor_if_created();
        s != nullptr && s->chain_seq() != chain0 && !s->last_chain().empty())
      last_error_ += " [recovery: " + s->last_chain() + "]";
    chaoskit::Engine::instance().annotate(last_error_);
  }
  return err;
}

cl_int Engine::checkpoint(const std::string& path, PhaseTimes* times) {
  last_error_.clear();
  const std::uint64_t chain0 = chain_seq_now();
  return finish_op("checkpoint", do_checkpoint(path, times), chain0);
}

cl_int Engine::restart_in_place(const std::string& path,
                                const std::optional<NodeConfig>& new_node,
                                RestartBreakdown* breakdown) {
  last_error_.clear();
  const std::uint64_t chain0 = chain_seq_now();
  return finish_op("restart_in_place",
                   do_restart_in_place(path, new_node, breakdown), chain0);
}

cl_int Engine::restore_fresh(
    const std::string& path, const std::optional<NodeConfig>& new_node,
    RestartBreakdown* breakdown,
    std::unordered_map<std::uint64_t, Object*>* handle_map) {
  last_error_.clear();
  const std::uint64_t chain0 = chain_seq_now();
  return finish_op("restore_fresh",
                   do_restore_fresh(path, new_node, breakdown, handle_map),
                   chain0);
}

cl_int Engine::do_checkpoint(const std::string& path, PhaseTimes* times) {
  if (rt_.ensure_proxy() != CL_SUCCESS) return CL_DEVICE_NOT_AVAILABLE;
  proxy::Client& c = *rt_.client();
  ObjectDB& db = rt_.db();
  PhaseTimes pt;

  // 1. synchronize: drain any client-side batched calls (they may carry
  // kernel-arg and enqueue state the snapshot must reflect), then complete
  // every enqueued command in every queue
  const std::uint64_t t0 = now_ns();
  c.sync();
  for (QueueObj* q : db.all_of<QueueObj>()) {
    if (q->remote != 0) c.finish(q->remote);
  }
  const std::uint64_t t1 = now_ns();
  pt.sync_ns = t1 - t0;

  // Incremental mode: only buffers dirtied since the previous checkpoint are
  // copied out and written; the snapshot references its base for the rest.
  // Store mode subsumes it — every buffer is captured, but unchanged chunks
  // dedup against the pool, so each manifest stays self-contained.
  const bool store_mode = rt_.store_checkpoints;
  const bool incremental = !store_mode && rt_.incremental_checkpoints &&
                           !last_checkpoint_path_.empty() &&
                           last_checkpoint_path_ != path;

  // 2. preprocess: copy all user data in device memory to host memory
  const auto queues = db.all_of<QueueObj>();
  for (MemObj* m : db.all_of<MemObj>()) {
    if (m->remote == 0) continue;
    if (incremental && !m->dirty) continue;
    m->snapshot.resize(m->size);
    // find a queue on this context (or make a scratch one)
    proxy::RemoteHandle qh = 0;
    bool scratch = false;
    for (QueueObj* q : queues) {
      if (q->ctx == m->ctx && q->remote != 0) {
        qh = q->remote;
        break;
      }
    }
    if (qh == 0 && m->ctx != nullptr && !m->ctx->devices.empty()) {
      if (c.create_queue(m->ctx->remote, m->ctx->devices[0]->remote, 0, qh) !=
          CL_SUCCESS)
        continue;
      scratch = true;
    }
    if (qh == 0) continue;
    proxy::RemoteHandle ev = 0;
    c.enqueue_read(qh, m->remote, 0, m->size, m->snapshot.data(), false, ev);
    if (scratch) c.retain_release(proxy::Op::ReleaseCommandQueue, qh);
  }
  const std::uint64_t t2 = now_ns();
  pt.pre_ns = t2 - t1;

  // Individual finish/read errors above are tolerated per-object, but a
  // channel death (e.g. a proxy crash whose recovery failed) means the
  // snapshot no longer reflects device state; writing it would silently
  // checkpoint stale bytes.
  if (!c.alive()) {
    last_error_ = "checkpoint aborted: proxy channel died while capturing "
                  "device state";
    return CL_DEVICE_NOT_AVAILABLE;
  }

  // 3. write: dump "the host memory image" — object DB, buffer copies, and
  // the application's registered regions — through the storage model
  slimcr::Snapshot snap;
  snap.set("checl.db", serialize_db());
  if (incremental) {
    snap.set("checl.base",
             std::vector<std::uint8_t>(last_checkpoint_path_.begin(),
                                       last_checkpoint_path_.end()));
  }
  std::uint64_t data_bytes = 0;
  for (const MemObj* m : db.all_of<MemObj>()) {
    if (m->snapshot.empty()) continue;
    snap.set(mem_section_name(m->id), m->snapshot);
    data_bytes += m->snapshot.size();
  }
  for (const auto& reg : rt_.app_regions()) {
    std::vector<std::uint8_t> data(static_cast<const std::uint8_t*>(reg.ptr),
                                   static_cast<const std::uint8_t*>(reg.ptr) + reg.len);
    data_bytes += data.size();
    snap.set("app." + reg.name, std::move(data));
  }
  pt.logical_bytes = snap.payload_bytes();
  if (store_mode) {
    snapstore::Store* st = store();
    if (st == nullptr) return CL_OUT_OF_RESOURCES;  // last_error_ set
    snapstore::PutResult pr;
    const bool ok = io_run(rt_, [&] {
      pr = st->put(path, snap, rt_.node().storage);
      return pr.status.ok();
    });
    if (ok) {
      c.sim_advance_host_ns(pr.duration_ns);
      pt.write_ns = pr.duration_ns;
      pt.file_bytes = pr.stored_bytes;  // post-dedup, post-compression
    } else if (rt_.io_retry.max_attempts > 1) {
      // Retry-then-degrade: the pool stayed unwritable (ENOSPC/EIO) through
      // every retry, but a flat self-contained snapshot beside it may still
      // land — no dedup, no compression, but the checkpoint survives.
      // Gated on an explicit retry policy so default-configured runs keep
      // fail-fast semantics.
      const slimcr::IoResult io =
          snap.save(degraded_ckpt_path(rt_, path), rt_.node().storage);
      if (!io.ok) {
        last_error_ =
            pr.status.message + " (degraded save also failed: " + io.error + ")";
        return CL_OUT_OF_RESOURCES;
      }
      rt_.supervisor().stats_mut().store_degraded_writes++;
      c.sim_advance_host_ns(io.duration_ns);
      pt.write_ns = io.duration_ns;
      pt.file_bytes = io.bytes;
    } else {
      last_error_ = pr.status.message;
      return CL_OUT_OF_RESOURCES;
    }
  } else {
    slimcr::IoResult io;
    io_run(rt_, [&] {
      io = snap.save(path, rt_.node().storage);
      return io.ok;
    });
    if (!io.ok) {
      last_error_ = io.error;
      return CL_OUT_OF_RESOURCES;
    }
    c.sim_advance_host_ns(io.duration_ns);
    pt.write_ns = io.duration_ns;
    pt.file_bytes = io.bytes;
  }

  // 4. postprocess: delete the host copies to save memory
  for (MemObj* m : db.all_of<MemObj>()) {
    m->snapshot.clear();
    m->snapshot.shrink_to_fit();
  }
  // freeing is nearly free: a fixed cost plus memory-bandwidth-ish per byte
  const std::uint64_t post = 20'000 + data_bytes / 50;
  c.sim_advance_host_ns(post);
  pt.post_ns = post;

  // everything on the device now matches this checkpoint
  for (MemObj* m : db.all_of<MemObj>()) m->dirty = false;
  last_checkpoint_path_ = path;

  if (times != nullptr) *times = pt;
  return CL_SUCCESS;
}

std::uint64_t Engine::load_with_base_chain(const std::string& path,
                                           const slimcr::StorageModel& storage,
                                           slimcr::Snapshot& out, bool* ok) {
  *ok = false;
  slimcr::IoResult io;
  io_run(rt_, [&] {
    io = out.load(path, storage);
    return io.ok;
  });
  if (!io.ok) {
    last_error_ = io.error;
    return 0;
  }
  std::uint64_t read_ns = io.duration_ns;

  // which mem sections does the DB still need?
  std::vector<std::uint64_t> missing;
  for (const MemObj* m : rt_.db().all_of<MemObj>()) {
    if (out.get(mem_section_name(m->id)) == nullptr) missing.push_back(m->id);
  }
  std::string base_path;
  if (const auto* base = out.get("checl.base"); base != nullptr)
    base_path.assign(base->begin(), base->end());
  int depth = 0;
  while (!missing.empty() && !base_path.empty() && depth++ < 16) {
    slimcr::Snapshot prev;
    io = prev.load(base_path, storage);
    if (!io.ok) {  // broken chain: say exactly which base is gone
      last_error_ = "incremental base snapshot missing or unreadable: " +
                    base_path + " (" + io.error + ")";
      return 0;
    }
    read_ns += io.duration_ns;
    std::vector<std::uint64_t> still_missing;
    for (const std::uint64_t id : missing) {
      if (const auto* data = prev.get(mem_section_name(id)); data != nullptr)
        out.set(mem_section_name(id), *data);
      else
        still_missing.push_back(id);
    }
    missing = std::move(still_missing);
    base_path.clear();
    if (const auto* next = prev.get("checl.base"); next != nullptr)
      base_path.assign(next->begin(), next->end());
  }
  *ok = true;
  return read_ns;
}

// ---------------------------------------------------------------------------
// restart
// ---------------------------------------------------------------------------

cl_int Engine::run_plan(const replay::RestorePlan& plan,
                        RestartBreakdown* breakdown) {
  replay::ExecOptions opts;
  opts.parallel = rt_.restore_parallel;
  opts.workers = rt_.restore_workers;
  opts.batch = rt_.restore_batch;
  replay::Executor ex(rt_, opts);
  std::string err;
  const cl_int e = ex.run(plan, breakdown, err, restore_counters_);
  if (e != CL_SUCCESS) last_error_ = err;
  return e;
}

cl_int Engine::do_restart_in_place(const std::string& path,
                                   const std::optional<NodeConfig>& new_node,
                                   RestartBreakdown* breakdown) {
  // remember where the timeline was (if the proxy is still reachable)
  const std::uint64_t resume = rt_.proxy_alive() ? now_ns() : 0;

  // Load everything BEFORE touching the proxy or any registered region, so a
  // bad checkpoint leaves the running process fully intact.
  slimcr::Snapshot snap;
  const NodeConfig& target = new_node.value_or(rt_.node());
  std::uint64_t read_ns = 0;
  if (rt_.store_checkpoints) {
    snapstore::Store* st = store();
    if (st == nullptr) return CL_INVALID_VALUE;  // last_error_ set
    snapstore::GetResult gr;
    const bool got = io_run(rt_, [&] {
      gr = st->get(path, snap, target.storage);
      return gr.status.ok();
    });
    if (got) {
      read_ns = gr.duration_ns;
    } else {
      // The put may have degraded to a flat snapshot beside the pool.
      const slimcr::IoResult io =
          snap.load(degraded_ckpt_path(rt_, path), target.storage);
      if (!io.ok) {
        last_error_ = gr.status.message;
        return CL_INVALID_VALUE;
      }
      read_ns = io.duration_ns;
    }
  } else {
    bool load_ok = false;
    read_ns = load_with_base_chain(path, target.storage, snap, &load_ok);
    if (!load_ok) return CL_INVALID_VALUE;
  }

  // Build + validate the restore plan BEFORE touching the proxy: a bad
  // snapshot or object graph must leave the running process — and its live
  // proxy, if any — fully intact.
  replay::RestorePlan plan;
  if (!plan.build(rt_.db().all(), last_error_)) return CL_INVALID_VALUE;

  const cl_int err = rt_.respawn_proxy(target, resume);
  if (err != CL_SUCCESS) return err;
  if (breakdown != nullptr) {
    breakdown->spawn_ns = target.ipc.spawn_ns;
    breakdown->read_ns = read_ns;
  }
  rt_.client()->sim_advance_host_ns(read_ns);
  last_checkpoint_path_ = path;  // future incrementals chain off this file

  // refill buffer snapshots from the checkpoint file
  for (MemObj* m : rt_.db().all_of<MemObj>()) {
    if (const auto* data = snap.get(mem_section_name(m->id)); data != nullptr)
      m->snapshot = *data;
  }
  // restore registered application regions (BLCR would have done this as part
  // of the memory image)
  for (const auto& reg : rt_.app_regions()) {
    if (const auto* data = snap.get("app." + reg.name);
        data != nullptr && data->size() == reg.len)
      std::memcpy(reg.ptr, data->data(), reg.len);
  }

  const cl_int rerr = run_plan(plan, breakdown);
  // The restore replaced the proxy and rewrote device state behind the
  // supervisor's back; give it a fresh base before the app resumes.
  if (rerr == CL_SUCCESS) rt_.resync_supervision();
  return rerr;
}

cl_int Engine::do_restore_fresh(
    const std::string& path, const std::optional<NodeConfig>& new_node,
    RestartBreakdown* breakdown,
    std::unordered_map<std::uint64_t, Object*>* handle_map) {
  slimcr::Snapshot snap;
  const NodeConfig& target = new_node.value_or(rt_.node());
  std::uint64_t initial_read_ns = 0;
  if (rt_.store_checkpoints) {
    snapstore::Store* st = store();
    if (st == nullptr) return CL_INVALID_VALUE;  // last_error_ set
    snapstore::GetResult gr;
    const bool got = io_run(rt_, [&] {
      gr = st->get(path, snap, target.storage);
      return gr.status.ok();
    });
    if (got) {
      initial_read_ns = gr.duration_ns;
    } else {
      const slimcr::IoResult dio =
          snap.load(degraded_ckpt_path(rt_, path), target.storage);
      if (!dio.ok) {
        last_error_ = gr.status.message;
        return CL_INVALID_VALUE;
      }
      initial_read_ns = dio.duration_ns;
    }
  } else {
    slimcr::IoResult io;
    io_run(rt_, [&] {
      io = snap.load(path, target.storage);
      return io.ok;
    });
    if (!io.ok) {
      last_error_ = io.error;
      return CL_INVALID_VALUE;
    }
    initial_read_ns = io.duration_ns;
  }
  const auto* db_bytes = snap.get("checl.db");
  if (db_bytes == nullptr) {
    last_error_ = "checkpoint has no checl.db section";
    return CL_INVALID_VALUE;
  }

  ObjectDB& db = rt_.db();
  replay::DecodeResult dec = replay::decode_db(*db_bytes, db);
  if (!dec.ok) {
    last_error_ = dec.error;
    return CL_INVALID_VALUE;
  }
  // Any failure past this point must tear the decoded objects down again, so
  // the object database reads exactly as it did before the call.
  const auto fail = [&](cl_int e) {
    replay::destroy_decoded(db, dec.created);
    return e;
  };

  // refill buffer snapshots (sections are named by checkpoint-time id)
  std::vector<std::pair<MemObj*, std::uint64_t>> missing_mem_data;
  for (const auto& [old_id, obj] : dec.map) {
    if (obj->otype != ObjType::Mem) continue;
    auto* m = static_cast<MemObj*>(obj);
    if (const auto* data = snap.get(mem_section_name(old_id)); data != nullptr)
      m->snapshot = *data;
    else
      missing_mem_data.emplace_back(m, old_id);  // incremental: in the base chain
  }

  // incremental checkpoints: pull missing buffer data from the base chain
  std::uint64_t chain_read_ns = 0;
  {
    std::string base_path;
    if (const auto* base = snap.get("checl.base"); base != nullptr)
      base_path.assign(base->begin(), base->end());
    int depth = 0;
    while (!missing_mem_data.empty() && !base_path.empty() && depth++ < 16) {
      slimcr::Snapshot prev;
      const slimcr::IoResult bio = prev.load(base_path, target.storage);
      if (!bio.ok) {
        last_error_ = "incremental base snapshot missing or unreadable: " +
                      base_path + " (" + bio.error + ")";
        return fail(CL_INVALID_VALUE);
      }
      chain_read_ns += bio.duration_ns;
      std::vector<std::pair<MemObj*, std::uint64_t>> still_missing;
      for (auto& [m, old_id] : missing_mem_data) {
        if (const auto* data = prev.get(mem_section_name(old_id)); data != nullptr)
          m->snapshot = *data;
        else
          still_missing.emplace_back(m, old_id);
      }
      missing_mem_data = std::move(still_missing);
      base_path.clear();
      if (const auto* next = prev.get("checl.base"); next != nullptr)
        base_path.assign(next->begin(), next->end());
    }
  }

  // Validate dependencies and schedule waves before spawning anything.
  replay::RestorePlan plan;
  if (!plan.build(dec.created, last_error_)) return fail(CL_INVALID_VALUE);

  const cl_int err = rt_.respawn_proxy(target, 0);
  if (err != CL_SUCCESS) return fail(err);
  if (breakdown != nullptr) {
    breakdown->spawn_ns = target.ipc.spawn_ns;
    breakdown->read_ns = initial_read_ns + chain_read_ns;
  }
  rt_.client()->sim_advance_host_ns(initial_read_ns + chain_read_ns);
  last_checkpoint_path_ = path;

  // restore registered app regions if the caller re-registered them
  for (const auto& reg : rt_.app_regions()) {
    if (const auto* data = snap.get("app." + reg.name);
        data != nullptr && data->size() == reg.len)
      std::memcpy(reg.ptr, data->data(), reg.len);
  }

  const cl_int rerr = run_plan(plan, breakdown);
  if (rerr != CL_SUCCESS) return fail(rerr);  // executor already rolled back remotes
  rt_.resync_supervision();
  if (handle_map != nullptr) *handle_map = std::move(dec.map);
  return CL_SUCCESS;
}

}  // namespace checl::cpr
