#include "core/cpr.h"

#include <algorithm>
#include <cstring>

#include "core/runtime.h"
#include "ipc/serial.h"

namespace checl::cpr {

namespace {

constexpr std::uint32_t kDbVersion = 1;

std::string mem_section_name(std::uint64_t id) {
  return "mem." + std::to_string(id);
}

}  // namespace

std::uint64_t Engine::now_ns() {
  cl_ulong t = 0;
  if (proxy::Client* c = rt_.client(); c != nullptr) c->sim_get_host_time_ns(t);
  return t;
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> Engine::serialize_db() {
  ipc::Writer w;
  w.u32(kDbVersion);
  ObjectDB& db = rt_.db();

  const auto platforms = db.all_of<PlatformObj>();
  w.u32(static_cast<std::uint32_t>(platforms.size()));
  for (const PlatformObj* p : platforms) {
    w.u64(p->id);
    w.str(p->name);
    w.u32(p->index);
  }

  const auto devices = db.all_of<DeviceObj>();
  w.u32(static_cast<std::uint32_t>(devices.size()));
  for (const DeviceObj* d : devices) {
    w.u64(d->id);
    w.u64(d->platform != nullptr ? d->platform->id : 0);
    w.u64(d->type);
    w.u32(d->index_in_type);
    w.str(d->name);
  }

  const auto contexts = db.all_of<ContextObj>();
  w.u32(static_cast<std::uint32_t>(contexts.size()));
  for (const ContextObj* c : contexts) {
    w.u64(c->id);
    w.u32(static_cast<std::uint32_t>(c->devices.size()));
    for (const DeviceObj* d : c->devices) w.u64(d->id);
    w.u32(static_cast<std::uint32_t>(c->properties.size()));
    for (const std::int64_t p : c->properties) w.i64(p);
  }

  const auto queues = db.all_of<QueueObj>();
  w.u32(static_cast<std::uint32_t>(queues.size()));
  for (const QueueObj* q : queues) {
    w.u64(q->id);
    w.u64(q->ctx != nullptr ? q->ctx->id : 0);
    w.u64(q->dev != nullptr ? q->dev->id : 0);
    w.u64(q->properties);
  }

  const auto mems = db.all_of<MemObj>();
  w.u32(static_cast<std::uint32_t>(mems.size()));
  for (const MemObj* m : mems) {
    w.u64(m->id);
    w.u64(m->ctx != nullptr ? m->ctx->id : 0);
    w.u64(m->flags);
    w.u64(m->size);
    w.boolean(m->is_image);
    w.u32(m->format.image_channel_order);
    w.u32(m->format.image_channel_data_type);
    w.u64(m->width);
    w.u64(m->height);
    w.u64(m->row_pitch);
    w.boolean(m->use_host_ptr != nullptr);
  }

  const auto samplers = db.all_of<SamplerObj>();
  w.u32(static_cast<std::uint32_t>(samplers.size()));
  for (const SamplerObj* s : samplers) {
    w.u64(s->id);
    w.u64(s->ctx != nullptr ? s->ctx->id : 0);
    w.u32(s->normalized);
    w.u32(s->addressing);
    w.u32(s->filter);
  }

  const auto programs = db.all_of<ProgramObj>();
  w.u32(static_cast<std::uint32_t>(programs.size()));
  for (const ProgramObj* p : programs) {
    w.u64(p->id);
    w.u64(p->ctx != nullptr ? p->ctx->id : 0);
    w.str(p->source);
    w.str(p->build_options);
    w.boolean(p->built);
    w.boolean(p->from_binary);
    w.bytes(p->binary);
  }

  const auto kernels = db.all_of<KernelObj>();
  w.u32(static_cast<std::uint32_t>(kernels.size()));
  for (const KernelObj* k : kernels) {
    w.u64(k->id);
    w.u64(k->prog != nullptr ? k->prog->id : 0);
    w.str(k->name);
    w.u32(static_cast<std::uint32_t>(k->args.size()));
    for (const KernelObj::ArgRec& a : k->args) {
      w.u8(static_cast<std::uint8_t>(a.kind));
      switch (a.kind) {
        case KernelObj::ArgRec::Kind::Bytes: w.bytes(a.bytes); break;
        case KernelObj::ArgRec::Kind::Mem:
          w.u64(a.mem != nullptr ? a.mem->id : 0);
          break;
        case KernelObj::ArgRec::Kind::Sampler:
          w.u64(a.sampler != nullptr ? a.sampler->id : 0);
          break;
        case KernelObj::ArgRec::Kind::Local: w.u64(a.local_size); break;
        case KernelObj::ArgRec::Kind::Unset: break;
      }
    }
  }

  const auto events = db.all_of<EventObj>();
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const EventObj* e : events) {
    w.u64(e->id);
    w.u64(e->queue != nullptr ? e->queue->id : 0);
    w.u32(e->command_type);
  }

  return w.take();
}

// ---------------------------------------------------------------------------
// checkpoint
// ---------------------------------------------------------------------------

snapstore::Store* Engine::store() {
  const std::string& root =
      rt_.store_root.empty() ? "/tmp/checl_snapstore" : rt_.store_root;
  if (store_ != nullptr && store_->is_open() && store_->root() == root)
    return store_.get();
  auto st = std::make_unique<snapstore::Store>();
  if (const snapstore::Status s = st->open(root, rt_.store_options); !s.ok()) {
    last_error_ = "cannot open snapstore: " + s.message;
    return nullptr;
  }
  store_ = std::move(st);
  return store_.get();
}

cl_int Engine::checkpoint(const std::string& path, PhaseTimes* times) {
  last_error_.clear();
  if (rt_.ensure_proxy() != CL_SUCCESS) return CL_DEVICE_NOT_AVAILABLE;
  proxy::Client& c = *rt_.client();
  ObjectDB& db = rt_.db();
  PhaseTimes pt;

  // 1. synchronize: drain any client-side batched calls (they may carry
  // kernel-arg and enqueue state the snapshot must reflect), then complete
  // every enqueued command in every queue
  const std::uint64_t t0 = now_ns();
  c.sync();
  for (QueueObj* q : db.all_of<QueueObj>()) {
    if (q->remote != 0) c.finish(q->remote);
  }
  const std::uint64_t t1 = now_ns();
  pt.sync_ns = t1 - t0;

  // Incremental mode: only buffers dirtied since the previous checkpoint are
  // copied out and written; the snapshot references its base for the rest.
  // Store mode subsumes it — every buffer is captured, but unchanged chunks
  // dedup against the pool, so each manifest stays self-contained.
  const bool store_mode = rt_.store_checkpoints;
  const bool incremental = !store_mode && rt_.incremental_checkpoints &&
                           !last_checkpoint_path_.empty() &&
                           last_checkpoint_path_ != path;

  // 2. preprocess: copy all user data in device memory to host memory
  const auto queues = db.all_of<QueueObj>();
  for (MemObj* m : db.all_of<MemObj>()) {
    if (m->remote == 0) continue;
    if (incremental && !m->dirty) continue;
    m->snapshot.resize(m->size);
    // find a queue on this context (or make a scratch one)
    proxy::RemoteHandle qh = 0;
    bool scratch = false;
    for (QueueObj* q : queues) {
      if (q->ctx == m->ctx && q->remote != 0) {
        qh = q->remote;
        break;
      }
    }
    if (qh == 0 && m->ctx != nullptr && !m->ctx->devices.empty()) {
      if (c.create_queue(m->ctx->remote, m->ctx->devices[0]->remote, 0, qh) !=
          CL_SUCCESS)
        continue;
      scratch = true;
    }
    if (qh == 0) continue;
    proxy::RemoteHandle ev = 0;
    c.enqueue_read(qh, m->remote, 0, m->size, m->snapshot.data(), false, ev);
    if (scratch) c.retain_release(proxy::Op::ReleaseCommandQueue, qh);
  }
  const std::uint64_t t2 = now_ns();
  pt.pre_ns = t2 - t1;

  // 3. write: dump "the host memory image" — object DB, buffer copies, and
  // the application's registered regions — through the storage model
  slimcr::Snapshot snap;
  snap.set("checl.db", serialize_db());
  if (incremental) {
    snap.set("checl.base",
             std::vector<std::uint8_t>(last_checkpoint_path_.begin(),
                                       last_checkpoint_path_.end()));
  }
  std::uint64_t data_bytes = 0;
  for (const MemObj* m : db.all_of<MemObj>()) {
    if (m->snapshot.empty()) continue;
    snap.set(mem_section_name(m->id), m->snapshot);
    data_bytes += m->snapshot.size();
  }
  for (const auto& reg : rt_.app_regions()) {
    std::vector<std::uint8_t> data(static_cast<const std::uint8_t*>(reg.ptr),
                                   static_cast<const std::uint8_t*>(reg.ptr) + reg.len);
    data_bytes += data.size();
    snap.set("app." + reg.name, std::move(data));
  }
  pt.logical_bytes = snap.payload_bytes();
  if (store_mode) {
    snapstore::Store* st = store();
    if (st == nullptr) return CL_OUT_OF_RESOURCES;  // last_error_ set
    const snapstore::PutResult pr = st->put(path, snap, rt_.node().storage);
    if (!pr.status.ok()) {
      last_error_ = pr.status.message;
      return CL_OUT_OF_RESOURCES;
    }
    c.sim_advance_host_ns(pr.duration_ns);
    pt.write_ns = pr.duration_ns;
    pt.file_bytes = pr.stored_bytes;  // post-dedup, post-compression
  } else {
    const slimcr::IoResult io = snap.save(path, rt_.node().storage);
    if (!io.ok) {
      last_error_ = io.error;
      return CL_OUT_OF_RESOURCES;
    }
    c.sim_advance_host_ns(io.duration_ns);
    pt.write_ns = io.duration_ns;
    pt.file_bytes = io.bytes;
  }

  // 4. postprocess: delete the host copies to save memory
  for (MemObj* m : db.all_of<MemObj>()) {
    m->snapshot.clear();
    m->snapshot.shrink_to_fit();
  }
  // freeing is nearly free: a fixed cost plus memory-bandwidth-ish per byte
  const std::uint64_t post = 20'000 + data_bytes / 50;
  c.sim_advance_host_ns(post);
  pt.post_ns = post;

  // everything on the device now matches this checkpoint
  for (MemObj* m : db.all_of<MemObj>()) m->dirty = false;
  last_checkpoint_path_ = path;

  if (times != nullptr) *times = pt;
  return CL_SUCCESS;
}

std::uint64_t Engine::load_with_base_chain(const std::string& path,
                                           const slimcr::StorageModel& storage,
                                           slimcr::Snapshot& out, bool* ok) {
  *ok = false;
  slimcr::IoResult io = out.load(path, storage);
  if (!io.ok) {
    last_error_ = io.error;
    return 0;
  }
  std::uint64_t read_ns = io.duration_ns;

  // which mem sections does the DB still need?
  std::vector<std::uint64_t> missing;
  for (const MemObj* m : rt_.db().all_of<MemObj>()) {
    if (out.get(mem_section_name(m->id)) == nullptr) missing.push_back(m->id);
  }
  std::string base_path;
  if (const auto* base = out.get("checl.base"); base != nullptr)
    base_path.assign(base->begin(), base->end());
  int depth = 0;
  while (!missing.empty() && !base_path.empty() && depth++ < 16) {
    slimcr::Snapshot prev;
    io = prev.load(base_path, storage);
    if (!io.ok) {  // broken chain: say exactly which base is gone
      last_error_ = "incremental base snapshot missing or unreadable: " +
                    base_path + " (" + io.error + ")";
      return 0;
    }
    read_ns += io.duration_ns;
    std::vector<std::uint64_t> still_missing;
    for (const std::uint64_t id : missing) {
      if (const auto* data = prev.get(mem_section_name(id)); data != nullptr)
        out.set(mem_section_name(id), *data);
      else
        still_missing.push_back(id);
    }
    missing = std::move(still_missing);
    base_path.clear();
    if (const auto* next = prev.get("checl.base"); next != nullptr)
      base_path.assign(next->begin(), next->end());
  }
  *ok = true;
  return read_ns;
}

// ---------------------------------------------------------------------------
// restart
// ---------------------------------------------------------------------------

cl_int Engine::recreate_platforms() {
  proxy::Client& c = *rt_.client();
  std::vector<proxy::RemoteHandle> remotes;
  cl_uint total = 0;
  if (c.get_platform_ids(16, remotes, total) != CL_SUCCESS || remotes.empty())
    return CL_INVALID_PLATFORM;
  // fetch names once
  std::vector<std::string> names;
  names.reserve(remotes.size());
  for (const proxy::RemoteHandle h : remotes) {
    char buf[256] = {};
    c.get_info(proxy::Op::GetPlatformInfo, h, CL_PLATFORM_NAME, sizeof buf, buf,
               nullptr);
    names.emplace_back(buf);
  }
  for (PlatformObj* p : rt_.db().all_of<PlatformObj>()) {
    p->remote = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == p->name) {
        p->remote = remotes[i];
        break;
      }
    }
    if (p->remote == 0)
      p->remote = remotes[std::min<std::size_t>(p->index, remotes.size() - 1)];
  }
  return CL_SUCCESS;
}

cl_int Engine::recreate_devices() {
  proxy::Client& c = *rt_.client();
  std::vector<proxy::RemoteHandle> all_platforms;
  cl_uint total = 0;
  c.get_platform_ids(16, all_platforms, total);

  for (DeviceObj* d : rt_.db().all_of<DeviceObj>()) {
    d->remote = 0;
    const cl_device_type want =
        rt_.retarget_device_type.value_or(d->type);
    std::vector<proxy::RemoteHandle> devs;
    cl_uint n = 0;
    // 1) same platform, wanted type
    if (d->platform != nullptr && d->platform->remote != 0 &&
        c.get_device_ids(d->platform->remote, want, 16, devs, n) == CL_SUCCESS &&
        !devs.empty()) {
      d->remote = devs[d->index_in_type % devs.size()];
      continue;
    }
    // 2) any platform, wanted type
    bool found = false;
    for (const proxy::RemoteHandle ph : all_platforms) {
      if (c.get_device_ids(ph, want, 16, devs, n) == CL_SUCCESS && !devs.empty()) {
        d->remote = devs[d->index_in_type % devs.size()];
        found = true;
        break;
      }
    }
    if (found) continue;
    // 3) any device anywhere (cross-device migration, e.g. GPU -> CPU node)
    for (const proxy::RemoteHandle ph : all_platforms) {
      if (c.get_device_ids(ph, CL_DEVICE_TYPE_ALL, 16, devs, n) == CL_SUCCESS &&
          !devs.empty()) {
        d->remote = devs[0];
        found = true;
        break;
      }
    }
    if (!found) return CL_DEVICE_NOT_FOUND;
  }
  return CL_SUCCESS;
}

cl_int Engine::recreate_contexts() {
  proxy::Client& c = *rt_.client();
  for (ContextObj* ctx : rt_.db().all_of<ContextObj>()) {
    std::vector<proxy::RemoteHandle> devs;
    devs.reserve(ctx->devices.size());
    for (const DeviceObj* d : ctx->devices) devs.push_back(d->remote);
    // rewrite any CL_CONTEXT_PLATFORM property to the new platform handle
    std::vector<std::int64_t> props = ctx->properties;
    for (std::size_t i = 0; i + 1 < props.size(); i += 2) {
      if (props[i] == CL_CONTEXT_PLATFORM && !ctx->devices.empty() &&
          ctx->devices[0]->platform != nullptr) {
        props[i + 1] =
            static_cast<std::int64_t>(ctx->devices[0]->platform->remote);
      }
    }
    proxy::RemoteHandle h = 0;
    const cl_int err = c.create_context(props, devs, h);
    if (err != CL_SUCCESS) return err;
    ctx->remote = h;
  }
  return CL_SUCCESS;
}

cl_int Engine::recreate_queues() {
  proxy::Client& c = *rt_.client();
  for (QueueObj* q : rt_.db().all_of<QueueObj>()) {
    proxy::RemoteHandle h = 0;
    const cl_int err =
        c.create_queue(q->ctx->remote, q->dev->remote, q->properties, h);
    if (err != CL_SUCCESS) return err;
    q->remote = h;
  }
  return CL_SUCCESS;
}

cl_int Engine::recreate_mems() {
  proxy::Client& c = *rt_.client();
  for (MemObj* m : rt_.db().all_of<MemObj>()) {
    proxy::RemoteHandle h = 0;
    // strip host-pointer flags: the data is uploaded from the snapshot copy
    const cl_mem_flags flags =
        m->flags & ~static_cast<cl_mem_flags>(CL_MEM_USE_HOST_PTR |
                                              CL_MEM_COPY_HOST_PTR);
    std::span<const std::uint8_t> data{m->snapshot.data(), m->snapshot.size()};
    cl_int err;
    if (m->is_image) {
      err = c.create_image2d(m->ctx->remote, flags, m->format, m->width,
                             m->height, m->row_pitch, data, h);
    } else {
      err = c.create_buffer(m->ctx->remote, flags, m->size, data, h);
    }
    if (err != CL_SUCCESS) return err;
    m->remote = h;
    m->snapshot.clear();
    m->snapshot.shrink_to_fit();
    m->dirty = false;  // device contents equal the restored checkpoint
  }
  return CL_SUCCESS;
}

cl_int Engine::recreate_samplers() {
  proxy::Client& c = *rt_.client();
  for (SamplerObj* s : rt_.db().all_of<SamplerObj>()) {
    proxy::RemoteHandle h = 0;
    const cl_int err = c.create_sampler(s->ctx->remote, s->normalized,
                                        s->addressing, s->filter, h);
    if (err != CL_SUCCESS) return err;
    s->remote = h;
  }
  return CL_SUCCESS;
}

cl_int Engine::recreate_programs() {
  proxy::Client& c = *rt_.client();
  for (ProgramObj* p : rt_.db().all_of<ProgramObj>()) {
    proxy::RemoteHandle h = 0;
    std::vector<proxy::RemoteHandle> devs;
    for (const DeviceObj* d : p->ctx->devices) devs.push_back(d->remote);
    cl_int err;
    if (p->from_binary && !p->binary.empty()) {
      cl_int status = CL_SUCCESS;
      err = c.create_program_with_binary(p->ctx->remote, devs, p->binary,
                                         status, h);
    } else {
      err = c.create_program_with_source(p->ctx->remote, p->source, h);
    }
    if (err != CL_SUCCESS) return err;
    p->remote = h;
    if (p->built) {
      // the recompilation the paper highlights in Figure 7
      err = c.build_program(h, devs, p->build_options);
      if (err != CL_SUCCESS) return err;
    }
  }
  return CL_SUCCESS;
}

cl_int Engine::recreate_kernels() {
  proxy::Client& c = *rt_.client();
  for (KernelObj* k : rt_.db().all_of<KernelObj>()) {
    proxy::RemoteHandle h = 0;
    const cl_int err = c.create_kernel(k->prog->remote, k->name, h);
    if (err != CL_SUCCESS) return err;
    k->remote = h;
    // re-apply recorded state changes (clSetKernelArg history)
    for (std::size_t i = 0; i < k->args.size(); ++i) {
      const KernelObj::ArgRec& a = k->args[i];
      const auto idx = static_cast<cl_uint>(i);
      switch (a.kind) {
        case KernelObj::ArgRec::Kind::Bytes:
          c.set_kernel_arg_bytes(h, idx, a.bytes);
          break;
        case KernelObj::ArgRec::Kind::Mem:
          if (a.mem != nullptr) c.set_kernel_arg_mem(h, idx, a.mem->remote);
          break;
        case KernelObj::ArgRec::Kind::Sampler:
          if (a.sampler != nullptr)
            c.set_kernel_arg_sampler(h, idx, a.sampler->remote);
          break;
        case KernelObj::ArgRec::Kind::Local:
          c.set_kernel_arg_local(h, idx, a.local_size);
          break;
        case KernelObj::ArgRec::Kind::Unset: break;
      }
    }
  }
  return CL_SUCCESS;
}

cl_int Engine::recreate_events() {
  proxy::Client& c = *rt_.client();
  for (EventObj* e : rt_.db().all_of<EventObj>()) {
    e->remote = 0;
    if (e->queue == nullptr || e->queue->remote == 0) continue;
    // There is no API to create an arbitrary event; get a dummy via
    // clEnqueueMarker — complete immediately, blocks nobody (Section III-C).
    proxy::RemoteHandle ev = 0;
    if (c.enqueue_marker(e->queue->remote, ev) == CL_SUCCESS) e->remote = ev;
  }
  return CL_SUCCESS;
}

cl_int Engine::recreate_all(RestartBreakdown* breakdown) {
  struct Step {
    ObjType type;
    cl_int (Engine::*fn)();
  };
  const Step steps[] = {
      {ObjType::Platform, &Engine::recreate_platforms},
      {ObjType::Device, &Engine::recreate_devices},
      {ObjType::Context, &Engine::recreate_contexts},
      {ObjType::Queue, &Engine::recreate_queues},
      {ObjType::Mem, &Engine::recreate_mems},
      {ObjType::Sampler, &Engine::recreate_samplers},
      {ObjType::Program, &Engine::recreate_programs},
      {ObjType::Kernel, &Engine::recreate_kernels},
      {ObjType::Event, &Engine::recreate_events},
  };
  for (const Step& s : steps) {
    const std::uint64_t t0 = now_ns();
    const cl_int err = (this->*s.fn)();
    if (err != CL_SUCCESS) return err;
    if (breakdown != nullptr)
      breakdown->class_ns[static_cast<std::size_t>(s.type)] = now_ns() - t0;
  }
  return CL_SUCCESS;
}

cl_int Engine::restart_in_place(const std::string& path,
                                const std::optional<NodeConfig>& new_node,
                                RestartBreakdown* breakdown) {
  last_error_.clear();
  // remember where the timeline was (if the proxy is still reachable)
  const std::uint64_t resume = rt_.proxy_alive() ? now_ns() : 0;

  // Load everything BEFORE touching the proxy or any registered region, so a
  // bad checkpoint leaves the running process fully intact.
  slimcr::Snapshot snap;
  const NodeConfig& target = new_node.value_or(rt_.node());
  std::uint64_t read_ns = 0;
  if (rt_.store_checkpoints) {
    snapstore::Store* st = store();
    if (st == nullptr) return CL_INVALID_VALUE;  // last_error_ set
    const snapstore::GetResult gr = st->get(path, snap, target.storage);
    if (!gr.status.ok()) {
      last_error_ = gr.status.message;
      return CL_INVALID_VALUE;
    }
    read_ns = gr.duration_ns;
  } else {
    bool load_ok = false;
    read_ns = load_with_base_chain(path, target.storage, snap, &load_ok);
    if (!load_ok) return CL_INVALID_VALUE;
  }

  const cl_int err = rt_.respawn_proxy(target, resume);
  if (err != CL_SUCCESS) return err;
  if (breakdown != nullptr) {
    breakdown->spawn_ns = target.ipc.spawn_ns;
    breakdown->read_ns = read_ns;
  }
  rt_.client()->sim_advance_host_ns(read_ns);
  last_checkpoint_path_ = path;  // future incrementals chain off this file

  // refill buffer snapshots from the checkpoint file
  for (MemObj* m : rt_.db().all_of<MemObj>()) {
    if (const auto* data = snap.get(mem_section_name(m->id)); data != nullptr)
      m->snapshot = *data;
  }
  // restore registered application regions (BLCR would have done this as part
  // of the memory image)
  for (const auto& reg : rt_.app_regions()) {
    if (const auto* data = snap.get("app." + reg.name);
        data != nullptr && data->size() == reg.len)
      std::memcpy(reg.ptr, data->data(), reg.len);
  }

  return recreate_all(breakdown);
}

cl_int Engine::restore_fresh(const std::string& path,
                             const std::optional<NodeConfig>& new_node,
                             RestartBreakdown* breakdown,
                             std::unordered_map<std::uint64_t, Object*>* handle_map) {
  last_error_.clear();
  slimcr::Snapshot snap;
  const NodeConfig& target = new_node.value_or(rt_.node());
  std::uint64_t initial_read_ns = 0;
  if (rt_.store_checkpoints) {
    snapstore::Store* st = store();
    if (st == nullptr) return CL_INVALID_VALUE;  // last_error_ set
    const snapstore::GetResult gr = st->get(path, snap, target.storage);
    if (!gr.status.ok()) {
      last_error_ = gr.status.message;
      return CL_INVALID_VALUE;
    }
    initial_read_ns = gr.duration_ns;
  } else {
    const slimcr::IoResult io = snap.load(path, target.storage);
    if (!io.ok) {
      last_error_ = io.error;
      return CL_INVALID_VALUE;
    }
    initial_read_ns = io.duration_ns;
  }
  const auto* db_bytes = snap.get("checl.db");
  if (db_bytes == nullptr) return CL_INVALID_VALUE;

  ipc::Reader r(*db_bytes);
  if (r.u32() != kDbVersion) return CL_INVALID_VALUE;

  std::unordered_map<std::uint64_t, Object*> map;
  ObjectDB& db = rt_.db();
  auto link = [&map](std::uint64_t old_id) -> Object* {
    const auto it = map.find(old_id);
    return it != map.end() ? it->second : nullptr;
  };

  for (std::uint32_t n = r.u32(); n-- > 0;) {
    auto* p = new PlatformObj();
    const std::uint64_t old_id = r.u64();
    p->name = r.str();
    p->index = r.u32();
    db.add(p);
    map[old_id] = p;
  }
  for (std::uint32_t n = r.u32(); n-- > 0;) {
    auto* d = new DeviceObj();
    const std::uint64_t old_id = r.u64();
    d->platform = static_cast<PlatformObj*>(link(r.u64()));
    if (d->platform != nullptr) d->platform->retain();
    d->type = r.u64();
    d->index_in_type = r.u32();
    d->name = r.str();
    db.add(d);
    map[old_id] = d;
  }
  for (std::uint32_t n = r.u32(); n-- > 0;) {
    auto* c = new ContextObj();
    const std::uint64_t old_id = r.u64();
    for (std::uint32_t nd = r.u32(); nd-- > 0;) {
      auto* d = static_cast<DeviceObj*>(link(r.u64()));
      if (d != nullptr) {
        d->retain();
        c->devices.push_back(d);
      }
    }
    for (std::uint32_t np = r.u32(); np-- > 0;) c->properties.push_back(r.i64());
    db.add(c);
    map[old_id] = c;
  }
  for (std::uint32_t n = r.u32(); n-- > 0;) {
    auto* q = new QueueObj();
    const std::uint64_t old_id = r.u64();
    q->ctx = static_cast<ContextObj*>(link(r.u64()));
    q->dev = static_cast<DeviceObj*>(link(r.u64()));
    if (q->ctx != nullptr) q->ctx->retain();
    if (q->dev != nullptr) q->dev->retain();
    q->properties = r.u64();
    db.add(q);
    map[old_id] = q;
  }
  std::vector<std::pair<MemObj*, std::uint64_t>> missing_mem_data;
  for (std::uint32_t n = r.u32(); n-- > 0;) {
    auto* m = new MemObj();
    const std::uint64_t old_id = r.u64();
    m->ctx = static_cast<ContextObj*>(link(r.u64()));
    if (m->ctx != nullptr) m->ctx->retain();
    m->flags = r.u64();
    m->size = r.u64();
    m->is_image = r.boolean();
    m->format.image_channel_order = r.u32();
    m->format.image_channel_data_type = r.u32();
    m->width = r.u64();
    m->height = r.u64();
    m->row_pitch = r.u64();
    const bool had_host_ptr = r.boolean();
    (void)had_host_ptr;  // app memory is gone in a fresh process; demoted
    if (const auto* data = snap.get(mem_section_name(old_id)); data != nullptr)
      m->snapshot = *data;
    else
      missing_mem_data.emplace_back(m, old_id);  // incremental: in the base chain
    db.add(m);
    map[old_id] = m;
  }
  for (std::uint32_t n = r.u32(); n-- > 0;) {
    auto* s = new SamplerObj();
    const std::uint64_t old_id = r.u64();
    s->ctx = static_cast<ContextObj*>(link(r.u64()));
    if (s->ctx != nullptr) s->ctx->retain();
    s->normalized = r.u32();
    s->addressing = r.u32();
    s->filter = r.u32();
    db.add(s);
    map[old_id] = s;
  }
  for (std::uint32_t n = r.u32(); n-- > 0;) {
    auto* p = new ProgramObj();
    const std::uint64_t old_id = r.u64();
    p->ctx = static_cast<ContextObj*>(link(r.u64()));
    if (p->ctx != nullptr) p->ctx->retain();
    p->source = r.str();
    p->build_options = r.str();
    p->built = r.boolean();
    p->from_binary = r.boolean();
    p->binary = r.bytes();
    if (!p->source.empty())
      p->signatures = ksig::parse_signatures(p->source, p->build_options);
    db.add(p);
    map[old_id] = p;
  }
  for (std::uint32_t n = r.u32(); n-- > 0;) {
    auto* k = new KernelObj();
    const std::uint64_t old_id = r.u64();
    k->prog = static_cast<ProgramObj*>(link(r.u64()));
    if (k->prog != nullptr) k->prog->retain();
    k->name = r.str();
    if (k->prog != nullptr) k->sig = k->prog->signatures.find(k->name);
    for (std::uint32_t na = r.u32(); na-- > 0;) {
      KernelObj::ArgRec a;
      a.kind = static_cast<KernelObj::ArgRec::Kind>(r.u8());
      switch (a.kind) {
        case KernelObj::ArgRec::Kind::Bytes: a.bytes = r.bytes(); break;
        case KernelObj::ArgRec::Kind::Mem:
          a.mem = static_cast<MemObj*>(link(r.u64()));
          if (a.mem != nullptr) a.mem->retain();
          break;
        case KernelObj::ArgRec::Kind::Sampler:
          a.sampler = static_cast<SamplerObj*>(link(r.u64()));
          if (a.sampler != nullptr) a.sampler->retain();
          break;
        case KernelObj::ArgRec::Kind::Local: a.local_size = r.u64(); break;
        case KernelObj::ArgRec::Kind::Unset: break;
      }
      k->args.push_back(std::move(a));
    }
    db.add(k);
    map[old_id] = k;
  }
  for (std::uint32_t n = r.u32(); n-- > 0;) {
    auto* e = new EventObj();
    const std::uint64_t old_id = r.u64();
    e->queue = static_cast<QueueObj*>(link(r.u64()));
    if (e->queue != nullptr) e->queue->retain();
    e->command_type = r.u32();
    db.add(e);
    map[old_id] = e;
  }
  if (!r.ok()) return CL_INVALID_VALUE;

  // incremental checkpoints: pull missing buffer data from the base chain
  std::uint64_t chain_read_ns = 0;
  {
    std::string base_path;
    if (const auto* base = snap.get("checl.base"); base != nullptr)
      base_path.assign(base->begin(), base->end());
    int depth = 0;
    while (!missing_mem_data.empty() && !base_path.empty() && depth++ < 16) {
      slimcr::Snapshot prev;
      const slimcr::IoResult bio = prev.load(base_path, target.storage);
      if (!bio.ok) {
        last_error_ = "incremental base snapshot missing or unreadable: " +
                      base_path + " (" + bio.error + ")";
        return CL_INVALID_VALUE;
      }
      chain_read_ns += bio.duration_ns;
      std::vector<std::pair<MemObj*, std::uint64_t>> still_missing;
      for (auto& [m, old_id] : missing_mem_data) {
        if (const auto* data = prev.get(mem_section_name(old_id)); data != nullptr)
          m->snapshot = *data;
        else
          still_missing.emplace_back(m, old_id);
      }
      missing_mem_data = std::move(still_missing);
      base_path.clear();
      if (const auto* next = prev.get("checl.base"); next != nullptr)
        base_path.assign(next->begin(), next->end());
    }
  }

  const cl_int err = rt_.respawn_proxy(target, 0);
  if (err != CL_SUCCESS) return err;
  if (breakdown != nullptr) {
    breakdown->spawn_ns = target.ipc.spawn_ns;
    breakdown->read_ns = initial_read_ns + chain_read_ns;
  }
  rt_.client()->sim_advance_host_ns(initial_read_ns + chain_read_ns);
  last_checkpoint_path_ = path;

  // restore registered app regions if the caller re-registered them
  for (const auto& reg : rt_.app_regions()) {
    if (const auto* data = snap.get("app." + reg.name);
        data != nullptr && data->size() == reg.len)
      std::memcpy(reg.ptr, data->data(), reg.len);
  }

  const cl_int rerr = recreate_all(breakdown);
  if (rerr != CL_SUCCESS) return rerr;
  if (handle_map != nullptr) *handle_map = std::move(map);
  return CL_SUCCESS;
}

}  // namespace checl::cpr
